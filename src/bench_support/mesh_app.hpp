#pragma once

#include <cstdint>
#include <string>

#include "mesh/subdomain.hpp"

/// \file mesh_app.hpp
/// The paper's "real-world" application (§5): parallel adaptive mesh
/// generation. The unit cube is cut into grid x grid x grid box subdomains,
/// block-distributed over the processors as mobile objects. Each phase, a
/// coordinator object broadcasts the current crack-tip position; every
/// subdomain re-meshes itself with the tip-induced sizing (real advancing-
/// front work) and reports back; when all have, the tip moves and the next
/// phase starts. Subdomains near the tip are an order of magnitude more
/// expensive — and the tip's walk is unpredictable, so hint-based balancing
/// has nothing to go on.
///
/// Three drivers: PREMA (work stealing, implicit or explicit polling),
/// stop-and-repartition, and no balancing. The paper reports PREMA ~15%
/// ahead of stop-and-repartition and ~42% ahead of no balancing, with < 1%
/// runtime overhead; the paper did not run this application on Charm++ —
/// neither do we.

namespace prema::bench {

struct MeshAppConfig {
  int nprocs = 16;
  /// Subdomain grid resolution per axis (grid^3 subdomains).
  int grid = 10;
  int phases = 5;
  /// Boundary divisions per subdomain (>= 2 for general position).
  int boundary_divisions = 2;
  /// Crack sizing: fine size at the tip, background size, influence radius
  /// (all in domain units; subdomain edge is 1/grid).
  double h_min = 0.018;
  double h_max = 0.18;
  double crack_radius = 0.18;
  double proc_mflops = 333.0;
  double poll_interval_s = 10e-3;
  /// Stop-and-repartition tuning. The default cooldown approximates the
  /// classic usage the paper describes (§1): repartition once per refinement
  /// phase (phases here run ~10 s). Smaller cooldowns turn the baseline into
  /// a quasi-continuous rebalancer — see the cooldown sweep printed by
  /// bench/mesh_generator.
  double srp_cooldown_s = 10.0;
  double srp_min_outstanding = 0.02;
  std::uint64_t seed = 77;
};

enum class MeshSystem : std::uint8_t {
  kNoLB = 0,
  kPremaImplicit,
  kPremaExplicit,
  kStopRepartition,
};

const char* mesh_system_name(MeshSystem s);

struct MeshAppReport {
  MeshSystem system{};
  std::string label;
  double makespan = 0.0;
  std::int64_t total_tets = 0;   ///< real elements generated, all phases
  std::int64_t refinements = 0;  ///< subdomain-phase executions
  std::uint64_t migrations = 0;
  double comp_total = 0.0;
  double overhead_total = 0.0;   ///< messaging + scheduling + polling
  double sync_total = 0.0;
  double overhead_pct = 0.0;
  double comp_stddev = 0.0;
};

/// Run the mesh application under one system on the emulated machine.
MeshAppReport run_mesh_app(MeshSystem sys, const MeshAppConfig& cfg);

}  // namespace prema::bench
