#include "bench_support/mesh_app.hpp"

#include <memory>

#include "bench_support/stop_repartition.hpp"
#include "dmcs/sim_machine.hpp"
#include "prema/runtime.hpp"
#include "support/stats.hpp"

namespace prema::bench {

using mesh::CrackTipSizing;
using mesh::MeshSubdomain;
using mesh::Vec3;
using util::ByteReader;
using util::ByteWriter;
using util::TimeCategory;

const char* mesh_system_name(MeshSystem s) {
  switch (s) {
    case MeshSystem::kNoLB: return "No Load Balancing";
    case MeshSystem::kPremaImplicit: return "PREMA (implicit / preemptive)";
    case MeshSystem::kPremaExplicit: return "PREMA (explicit polling)";
    case MeshSystem::kStopRepartition: return "Stop-and-repartition";
  }
  return "?";
}

namespace {

/// Phase coordinator: a (deliberately immobile: its work carries no weight)
/// mobile object on rank 0 counting per-phase completions. It also keeps the
/// last element count per subdomain: the next phase's messages carry those
/// as weight hints — the best prediction an adaptive application has, and
/// stale by exactly one crack step (paper §5: hint-based prediction fails
/// under adaptivity).
class Coordinator : public mol::MobileObject {
 public:
  static constexpr std::uint32_t kTypeId = 8;
  [[nodiscard]] std::uint32_t type_id() const override { return kTypeId; }
  void serialize(util::ByteWriter& w) const override {
    w.put<std::int32_t>(remaining);
    w.put<std::int32_t>(phase);
    w.put_vector(weights);
  }
  static std::unique_ptr<mol::MobileObject> make(ByteReader& r) {
    auto c = std::make_unique<Coordinator>();
    c->remaining = r.get<std::int32_t>();
    c->phase = r.get<std::int32_t>();
    c->weights = r.get_vector<double>();
    return c;
  }
  std::int32_t remaining = 0;
  std::int32_t phase = 0;
  std::vector<double> weights;  ///< last phase's cost (seconds) per subdomain
};

/// Shared geometry of the decomposition (block distribution over ranks).
struct Layout {
  int nprocs;
  int n_subs;
  int per_rank;

  explicit Layout(const MeshAppConfig& cfg)
      : nprocs(cfg.nprocs),
        n_subs(cfg.grid * cfg.grid * cfg.grid),
        per_rank((n_subs + cfg.nprocs - 1) / cfg.nprocs) {}

  [[nodiscard]] ProcId rank_of(int g) const {
    return std::min<ProcId>(g / per_rank, nprocs - 1);
  }
  /// Mobile pointer of subdomain g, assuming each rank creates its block in
  /// ascending order (rank 0 creates the coordinator first, at index 0).
  [[nodiscard]] mol::MobilePtr ptr_of(int g) const {
    const ProcId r = rank_of(g);
    std::uint32_t index = static_cast<std::uint32_t>(g - r * per_rank);
    if (r == 0) ++index;  // the coordinator holds index 0
    return {r, index};
  }
  [[nodiscard]] static mol::MobilePtr coordinator_ptr() { return {0, 0}; }
};

/// Statistics every driver collects identically.
struct Counters {
  std::int64_t total_tets = 0;
  std::int64_t refinements = 0;
};

CrackTipSizing sizing_for(const MeshAppConfig& cfg, int phase) {
  return CrackTipSizing(mesh::crack_tip_position(phase, cfg.seed), cfg.h_min,
                        cfg.h_max, cfg.crack_radius);
}

/// Subdomain box for global index g.
void box_of(const MeshAppConfig& cfg, int g, Vec3& lo, Vec3& hi) {
  const int gx = g % cfg.grid;
  const int gy = (g / cfg.grid) % cfg.grid;
  const int gz = g / (cfg.grid * cfg.grid);
  const double s = 1.0 / cfg.grid;
  lo = {gx * s, gy * s, gz * s};
  hi = {(gx + 1) * s, (gy + 1) * s, (gz + 1) * s};
}

std::vector<std::uint8_t> refine_payload(int phase, int g) {
  ByteWriter w;
  w.put<std::int32_t>(phase);
  w.put<std::int32_t>(g);
  return w.take();
}

void fill_report(MeshAppReport& rep, dmcs::Machine& machine, int nprocs) {
  util::RunningStats comp;
  for (ProcId p = 0; p < nprocs; ++p) {
    const auto& l = machine.ledger(p);
    comp.add(l.get(TimeCategory::kComputation));
    rep.comp_total += l.get(TimeCategory::kComputation);
    rep.overhead_total += l.get(TimeCategory::kMessaging) +
                          l.get(TimeCategory::kScheduling) +
                          l.get(TimeCategory::kPolling);
    rep.sync_total += l.get(TimeCategory::kSynchronization);
  }
  rep.comp_stddev = comp.stddev();
  if (rep.comp_total > 0) {
    rep.overhead_pct = 100.0 * rep.overhead_total / rep.comp_total;
  }
}

/// The driver body is identical for PREMA and SRP up to the runtime types;
/// express it once against the common surface both expose.
template <typename Runtime, typename Context>
MeshAppReport drive(Runtime& rt, dmcs::Machine& machine, MeshSystem sys,
                    const MeshAppConfig& cfg, Counters& counters) {
  const Layout layout(cfg);
  rt.object_types().add(MeshSubdomain::kTypeId, MeshSubdomain::deserialize);
  rt.object_types().add(Coordinator::kTypeId, Coordinator::make);

  // Forward declaration knot: refine sends to done, done sends to refine.
  auto refine_id = std::make_shared<mol::ObjectHandlerId>(0);

  const auto done_h = rt.register_object_handler(
      "mesh.done",
      [&cfg, &layout, refine_id](Context& ctx, mol::MobileObject& obj,
                                 ByteReader& r, const mol::Delivery&) {
        auto& coord = static_cast<Coordinator&>(obj);
        const auto g_done = r.get<std::int32_t>();
        const auto seconds = r.get<double>();
        coord.weights[static_cast<std::size_t>(g_done)] = seconds;
        if (--coord.remaining > 0) return;
        ++coord.phase;
        if (coord.phase >= cfg.phases) return;  // all done
        coord.remaining = layout.n_subs;
        for (int g = 0; g < layout.n_subs; ++g) {
          // The hint is last phase's measured cost — already stale, since
          // the crack tip has moved on.
          const double hint =
              std::max(0.05, coord.weights[static_cast<std::size_t>(g)]);
          ctx.message(layout.ptr_of(g), *refine_id,
                      refine_payload(coord.phase, g), hint);
        }
      });

  *refine_id = rt.register_object_handler(
      "mesh.refine",
      [&cfg, &counters, done_h](Context& ctx, mol::MobileObject& obj,
                                ByteReader& r, const mol::Delivery&) {
        auto& sub = static_cast<MeshSubdomain&>(obj);
        const auto phase = r.get<std::int32_t>();
        const auto g = r.get<std::int32_t>();
        const auto sizing = sizing_for(cfg, phase);
        const auto stats = sub.refine(sizing);  // the real mesher runs here
        const double mflop = mesh::refine_cost_mflop(stats.tets_created);
        ctx.compute(mflop);
        counters.total_tets += stats.tets_created;
        ++counters.refinements;
        // Report measured cost; zero weight so no balancer ever moves the
        // coordinator around.
        ByteWriter w;
        w.put<std::int32_t>(g);
        w.put<double>(mflop / cfg.proc_mflops);
        ctx.message(Layout::coordinator_ptr(), done_h, w.take(), 0.0);
      });

  rt.set_main([&cfg, &layout, refine_id](Context& ctx) {
    if (ctx.rank() == 0) {
      auto coord = std::make_unique<Coordinator>();
      coord->remaining = layout.n_subs;
      coord->phase = 0;
      coord->weights.assign(static_cast<std::size_t>(layout.n_subs), 1.0);
      ctx.add_object(std::move(coord));
    }
    for (int g = 0; g < layout.n_subs; ++g) {
      if (layout.rank_of(g) != ctx.rank()) continue;
      Vec3 lo, hi;
      box_of(cfg, g, lo, hi);
      ctx.add_object(std::make_unique<MeshSubdomain>(
          lo, hi, cfg.boundary_divisions,
          cfg.seed * 1315423911ULL + static_cast<std::uint64_t>(g)));
    }
    if (ctx.rank() == 0) {
      for (int g = 0; g < layout.n_subs; ++g) {
        ctx.message(layout.ptr_of(g), *refine_id, refine_payload(0, g), 1.0);
      }
    }
  });

  MeshAppReport rep;
  rep.system = sys;
  rep.label = mesh_system_name(sys);
  rep.makespan = rt.run();
  rep.total_tets = counters.total_tets;
  rep.refinements = counters.refinements;
  fill_report(rep, machine, cfg.nprocs);
  return rep;
}

}  // namespace

MeshAppReport run_mesh_app(MeshSystem sys, const MeshAppConfig& cfg) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = cfg.nprocs;
  mcfg.mflops = cfg.proc_mflops;
  mcfg.seed = cfg.seed;
  Counters counters;

  if (sys == MeshSystem::kStopRepartition) {
    dmcs::SimMachine machine(mcfg);
    srp::SrpConfig scfg;
    scfg.cooldown_s = cfg.srp_cooldown_s;
    scfg.min_outstanding_fraction = cfg.srp_min_outstanding;
    scfg.proc_mflops = cfg.proc_mflops;
    srp::Runtime rt(machine, scfg);
    rt.set_total_units(static_cast<std::int64_t>(cfg.grid) * cfg.grid * cfg.grid *
                       cfg.phases);
    auto rep = drive<srp::Runtime, srp::Context>(rt, machine, sys, cfg, counters);
    rep.migrations = rt.migrations();
    return rep;
  }

  dmcs::PollingConfig pcfg;
  pcfg.mode = sys == MeshSystem::kPremaImplicit ? dmcs::PollingMode::kPreemptive
                                                : dmcs::PollingMode::kExplicit;
  pcfg.interval_s = cfg.poll_interval_s;
  dmcs::SimMachine machine(mcfg, pcfg);
  RuntimeConfig rcfg;
  rcfg.policy = sys == MeshSystem::kNoLB ? "null" : "work_stealing";
  Runtime rt(machine, rcfg);
  auto rep = drive<Runtime, prema::Context>(rt, machine, sys, cfg, counters);
  for (ProcId p = 0; p < cfg.nprocs; ++p) {
    rep.migrations += rt.mol_at(p).stats().migrations_in;
  }
  return rep;
}

}  // namespace prema::bench
