#include "bench_support/synthetic.hpp"

#include <memory>
#include <ostream>

#include <algorithm>
#include <cmath>

#include "bench_support/stop_repartition.hpp"
#include "charm/charmlite.hpp"
#include "dmcs/sim_machine.hpp"
#include "dmcs/thread_machine.hpp"
#include "fault/fault_plan.hpp"
#include "ilb/policies/work_stealing.hpp"
#include "prema/runtime.hpp"
#include "support/stats.hpp"
#include "trace/export.hpp"

namespace prema::bench {

using util::ByteReader;
using util::ByteWriter;
using util::TimeCategory;

const char* system_name(System s) {
  switch (s) {
    case System::kNoLB: return "No Load Balancing";
    case System::kPremaExplicit: return "PREMA (explicit polling)";
    case System::kPremaImplicit: return "PREMA (implicit / preemptive)";
    case System::kStopRepartition: return "ParMETIS-style stop-and-repartition";
    case System::kCharmNoSync: return "Charm++-style, no sync points";
    case System::kCharmSync: return "Charm++-style, with sync points";
  }
  return "?";
}

const char* system_panel(System s) {
  switch (s) {
    case System::kNoLB: return "(a)";
    case System::kPremaExplicit: return "(b)";
    case System::kPremaImplicit: return "(c)";
    case System::kStopRepartition: return "(d)";
    case System::kCharmNoSync: return "(e)";
    case System::kCharmSync: return "(f)";
  }
  return "?";
}

namespace {

/// The benchmark's work unit as a PREMA/SRP mobile object: its cost and a
/// data blob that makes migration cost realistic.
class WorkUnit : public mol::MobileObject {
 public:
  WorkUnit(double mflop, std::size_t blob_bytes)
      : mflop_(mflop), blob_(blob_bytes, 0x5A) {}
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(ByteWriter& w) const override {
    w.put<double>(mflop_);
    w.put_bytes(blob_);
  }
  static std::unique_ptr<mol::MobileObject> make(ByteReader& r) {
    const double m = r.get<double>();
    auto obj = std::make_unique<WorkUnit>(m, 0);
    obj->blob_ = r.get_bytes();
    return obj;
  }

  double mflop_;
  std::vector<std::uint8_t> blob_;
};

/// Charm element: cost, phase counter, blob.
class WorkChare : public charmlite::Chare {
 public:
  WorkChare(double mflop, int total_phases, std::size_t blob_bytes)
      : mflop_(mflop), total_phases_(total_phases), blob_(blob_bytes, 0x5A) {}
  void serialize(ByteWriter& w) const override {
    w.put<double>(mflop_);
    w.put<std::int32_t>(total_phases_);
    w.put<std::int32_t>(phase_);
    w.put_bytes(blob_);
  }
  static std::unique_ptr<charmlite::Chare> from(ByteReader& r) {
    const double m = r.get<double>();
    const auto total = r.get<std::int32_t>();
    auto c = std::make_unique<WorkChare>(m, total, 0);
    c->phase_ = r.get<std::int32_t>();
    c->blob_ = r.get_bytes();
    return c;
  }

  double mflop_;
  std::int32_t total_phases_;
  std::int32_t phase_ = 0;
  std::vector<std::uint8_t> blob_;
};

/// Install the configured fault plan (if any) on `machine`. Must run before
/// Machine::run so the backends create their reliable links at startup.
void maybe_install_fault_plan(dmcs::Machine& machine, const SyntheticConfig& cfg) {
  if (cfg.fault_profile.empty() || cfg.fault_profile == "none") return;
  machine.set_fault_plan(std::make_shared<fault::FaultPlan>(
      fault::make_fault_profile(cfg.fault_profile), cfg.fault_seed, cfg.nprocs));
}

/// Attach a trace recorder to `machine` if the config asks for one. Works for
/// all three runtimes because the hooks live at the Node/Machine layer.
void maybe_enable_trace(dmcs::Machine& machine, const SyntheticConfig& cfg) {
  if (cfg.trace_out.empty()) return;
  trace::TraceConfig tcfg;
  tcfg.enabled = true;
  machine.enable_tracing(tcfg);
}

/// Export the recorded trace (if any) and note the file in the report.
void maybe_export_trace(dmcs::Machine& machine, const SyntheticConfig& cfg,
                        RunReport& rep) {
  const auto* rec = machine.tracer();
  if (rec == nullptr || cfg.trace_out.empty()) return;
  const std::string path = trace_output_path(cfg.trace_out, rep.system);
  if (trace::write_chrome_trace_file(path, *rec)) rep.trace_file = path;
}

double unit_mflop(const SyntheticConfig& cfg, std::int64_t global_index,
                  std::int64_t total) {
  const auto heavy_count = static_cast<std::int64_t>(cfg.heavy_fraction * total);
  return global_index < heavy_count ? cfg.heavy_mflop : cfg.light_mflop;
}

void finalize(RunReport& r, const SyntheticConfig& cfg) {
  util::RunningStats comp;
  for (const auto& l : r.ledgers) {
    comp.add(l.get(TimeCategory::kComputation));
    r.comp_total += l.get(TimeCategory::kComputation);
    r.overhead_total += l.get(TimeCategory::kMessaging) +
                        l.get(TimeCategory::kScheduling) +
                        l.get(TimeCategory::kPolling);
    r.sync_total += l.get(TimeCategory::kSynchronization);
    r.partition_total += l.get(TimeCategory::kPartitionCalc);
    r.idle_total += l.get(TimeCategory::kIdle);
  }
  r.comp_stddev = comp.stddev();
  if (r.comp_total > 0) {
    r.overhead_pct = 100.0 * r.overhead_total / r.comp_total;
    r.sync_pct = 100.0 * r.sync_total / r.comp_total;
  }
  (void)cfg;
}

/// Unit coordinates for the topology-aware policies: units laid out on a
/// cubic grid in creation order, so curve locality mirrors index locality.
/// Registration is unconditional — a no-op unless the policy wants topology.
mol::Coords unit_coords(std::int64_t g, std::int64_t total) {
  const auto side = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(std::cbrt(static_cast<double>(total)))));
  const double inv = 1.0 / static_cast<double>(side);
  mol::Coords c;
  c.x = (static_cast<double>(g % side) + 0.5) * inv;
  c.y = (static_cast<double>((g / side) % side) + 0.5) * inv;
  c.z = (static_cast<double>(g / (side * side)) + 0.5) * inv;
  return c;
}

RunReport run_prema_family(System sys, const SyntheticConfig& cfg) {
  const bool sim_backend = cfg.backend != "thread";
  dmcs::PollingConfig pcfg;
  pcfg.mode = sys == System::kPremaImplicit ? dmcs::PollingMode::kPreemptive
                                            : dmcs::PollingMode::kExplicit;
  pcfg.interval_s = cfg.poll_interval_s;

  std::unique_ptr<dmcs::Machine> owner;
  if (sim_backend) {
    sim::MachineConfig mcfg;
    mcfg.nprocs = cfg.nprocs;
    mcfg.mflops = cfg.proc_mflops;
    mcfg.seed = cfg.seed;
    owner = std::make_unique<dmcs::SimMachine>(mcfg, pcfg);
  } else {
    dmcs::ThreadConfig tcfg;
    tcfg.nprocs = cfg.nprocs;
    tcfg.mflops = cfg.thread_mflops;
    tcfg.polling = pcfg;
    tcfg.seed = cfg.seed;
    owner = std::make_unique<dmcs::ThreadMachine>(tcfg);
  }
  dmcs::Machine& machine = *owner;
  maybe_install_fault_plan(machine, cfg);

  RuntimeConfig rcfg;
  rcfg.trace.enabled = !cfg.trace_out.empty();
  std::string policy = cfg.policy;
  if (policy.empty()) policy = sys == System::kNoLB ? "null" : "work_stealing";
  rcfg.policy = policy;
  rcfg.balancer.low_watermark = cfg.low_watermark;
  rcfg.balancer.donate_threshold = 2 * cfg.low_watermark;
  if (policy == "work_stealing") {
    ilb::WorkStealingParams params;
    params.max_objects_per_grant = cfg.max_grant_objects;
    rcfg.policy_factory = [params] {
      return std::make_unique<ilb::WorkStealingPolicy>(params);
    };
  }
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, WorkUnit::make);

  // Indexed by executing rank: each worker thread writes only its own slot,
  // so the counters are race-free on both backends.
  std::vector<std::int64_t> executed_by(static_cast<std::size_t>(cfg.nprocs), 0);
  const auto work = rt.register_object_handler(
      "bench.work", [&executed_by](Context& ctx, mol::MobileObject& obj,
                                   ByteReader&, const mol::Delivery&) {
        ctx.compute(static_cast<WorkUnit&>(obj).mflop_);
        ++executed_by[static_cast<std::size_t>(ctx.rank())];
      });

  const std::int64_t total = static_cast<std::int64_t>(cfg.nprocs) * cfg.units_per_proc;
  rt.set_main([&rt, &cfg, work, total](Context& ctx) {
    // Block distribution: this rank creates & seeds its slice of the units.
    const std::int64_t first = static_cast<std::int64_t>(ctx.rank()) * cfg.units_per_proc;
    for (std::int64_t i = 0; i < cfg.units_per_proc; ++i) {
      const std::int64_t g = first + i;
      const double mflop = unit_mflop(cfg, g, total);
      auto ptr = ctx.add_object(
          std::make_unique<WorkUnit>(mflop, cfg.unit_payload_bytes));
      ctx.set_coords(ptr, unit_coords(g, total));
      const double hint = cfg.accurate_hints ? mflop / cfg.light_mflop : 1.0;
      ctx.message(ptr, work, {}, hint);
    }
    (void)rt;
  });

  RunReport rep;
  rep.system = sys;
  rep.label = system_name(sys);
  rep.policy = policy;
  rep.backend = sim_backend ? "sim" : "thread";
  rep.makespan = rt.run();
  for (ProcId p = 0; p < cfg.nprocs; ++p) {
    rep.executed += executed_by[static_cast<std::size_t>(p)];
    rep.ledgers.push_back(machine.ledger(p));
    rep.migrations += rt.mol_at(p).stats().migrations_in;
    rep.resident += rt.mol_at(p).local_count();
    rep.in_transit += rt.mol_at(p).in_transit_count();
  }
  rep.audit_ok = rep.executed == total &&
                 rep.resident == static_cast<std::size_t>(total) &&
                 rep.in_transit == 0;
  if (machine.fault_plan() != nullptr) {
    // Delivery-ledger checks: under any fault plan the run must still execute
    // every unit exactly once and end with every mobile object resident at
    // exactly one processor and no migration handoff left open.
    PREMA_CHECK_MSG(rep.executed == total,
                    "delivery ledger: units executed != units created");
    PREMA_CHECK_MSG(rep.resident == static_cast<std::size_t>(total),
                    "delivery ledger: mobile objects lost or cloned");
    PREMA_CHECK_MSG(rep.in_transit == 0,
                    "delivery ledger: migration handoffs left open");
  }
  finalize(rep, cfg);
  maybe_export_trace(machine, cfg, rep);
  return rep;
}

RunReport run_srp(const SyntheticConfig& cfg) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = cfg.nprocs;
  mcfg.mflops = cfg.proc_mflops;
  mcfg.seed = cfg.seed;
  dmcs::SimMachine machine(mcfg);  // explicit polling
  maybe_install_fault_plan(machine, cfg);
  maybe_enable_trace(machine, cfg);

  srp::SrpConfig scfg;
  scfg.low_watermark = cfg.low_watermark;
  scfg.min_outstanding_fraction = cfg.srp_min_outstanding;
  scfg.cooldown_s = cfg.srp_cooldown_s;
  scfg.alpha = cfg.srp_alpha;
  scfg.proc_mflops = cfg.proc_mflops;
  srp::Runtime rt(machine, scfg);
  rt.object_types().add(1, WorkUnit::make);

  std::int64_t executed = 0;
  const auto work = rt.register_object_handler(
      "bench.work", [&executed](srp::Context& ctx, mol::MobileObject& obj,
                                ByteReader&, const mol::Delivery&) {
        ctx.compute(static_cast<WorkUnit&>(obj).mflop_);
        ++executed;
      });

  const std::int64_t total = static_cast<std::int64_t>(cfg.nprocs) * cfg.units_per_proc;
  rt.set_total_units(total);
  rt.set_main([&cfg, work, total](srp::Context& ctx) {
    const std::int64_t first = static_cast<std::int64_t>(ctx.rank()) * cfg.units_per_proc;
    for (std::int64_t i = 0; i < cfg.units_per_proc; ++i) {
      const std::int64_t g = first + i;
      const double mflop = unit_mflop(cfg, g, total);
      auto ptr = ctx.add_object(
          std::make_unique<WorkUnit>(mflop, cfg.unit_payload_bytes));
      const double hint = cfg.accurate_hints ? mflop / cfg.light_mflop : 1.0;
      ctx.message(ptr, work, {}, hint);
    }
  });

  RunReport rep;
  rep.system = System::kStopRepartition;
  rep.label = system_name(rep.system);
  rep.makespan = rt.run();
  rep.executed = executed;
  rep.migrations = rt.migrations();
  for (ProcId p = 0; p < cfg.nprocs; ++p) rep.ledgers.push_back(machine.ledger(p));
  finalize(rep, cfg);
  maybe_export_trace(machine, cfg, rep);
  return rep;
}

RunReport run_charm(System sys, const SyntheticConfig& cfg) {
  const int phases = sys == System::kCharmSync ? cfg.charm_sync_points : 1;
  const std::int64_t total = static_cast<std::int64_t>(cfg.nprocs) * cfg.units_per_proc;
  const auto n_chares = static_cast<charmlite::ChareIdx>(total / phases);

  sim::MachineConfig mcfg;
  mcfg.nprocs = cfg.nprocs;
  mcfg.mflops = cfg.proc_mflops;
  mcfg.seed = cfg.seed;
  dmcs::SimMachine machine(mcfg);  // Charm never preempts entries
  maybe_install_fault_plan(machine, cfg);
  maybe_enable_trace(machine, cfg);

  charmlite::CharmConfig ccfg;
  ccfg.strategy = charmlite::Strategy::kGreedy;
  charmlite::Runtime rt(machine, ccfg);

  std::int64_t executed = 0;
  const auto work = rt.register_entry(
      "bench.work",
      [&executed, phases](charmlite::ChareContext& ctx, charmlite::Chare& c,
                          ByteReader&) {
        auto& w = static_cast<WorkChare&>(c);
        ctx.compute(w.mflop_);
        ++executed;
        ++w.phase_;
        if (w.phase_ < phases) ctx.at_sync();
      });
  rt.set_chare_factory(
      [](charmlite::ChareIdx, ByteReader& r) { return WorkChare::from(r); });
  rt.create_array(
      n_chares,
      [&cfg, n_chares, phases](charmlite::ChareIdx idx) {
        // Heavy elements are the low indices, matching the unit layout.
        const double mflop =
            unit_mflop(cfg, idx, n_chares);
        return std::make_unique<WorkChare>(mflop, phases, cfg.unit_payload_bytes);
      },
      /*resume_entry=*/work);
  rt.set_main([n_chares, work](charmlite::ChareContext& ctx) {
    if (ctx.rank() != 0) return;
    for (charmlite::ChareIdx i = 0; i < n_chares; ++i) ctx.send(i, work);
  });

  RunReport rep;
  rep.system = sys;
  rep.label = system_name(sys);
  rep.makespan = rt.run();
  rep.executed = executed;
  rep.migrations = rt.migrations();
  for (ProcId p = 0; p < cfg.nprocs; ++p) rep.ledgers.push_back(machine.ledger(p));
  finalize(rep, cfg);
  maybe_export_trace(machine, cfg, rep);
  return rep;
}

}  // namespace

std::string trace_output_path(const std::string& base, System sys) {
  const char letter = system_panel(sys)[1];  // "(a)" -> 'a'
  const auto dot = base.find_last_of('.');
  std::string out = base;
  if (dot == std::string::npos || base.find('/', dot) != std::string::npos) {
    out += std::string("-") + letter;
  } else {
    out.insert(dot, std::string("-") + letter);
  }
  return out;
}

RunReport run_synthetic(System sys, const SyntheticConfig& cfg) {
  switch (sys) {
    case System::kNoLB:
    case System::kPremaExplicit:
    case System::kPremaImplicit:
      return run_prema_family(sys, cfg);
    case System::kStopRepartition:
      PREMA_CHECK_MSG(cfg.backend != "thread",
                      "stop-and-repartition runs on the sim backend only");
      return run_srp(cfg);
    case System::kCharmNoSync:
    case System::kCharmSync:
      PREMA_CHECK_MSG(cfg.backend != "thread",
                      "the Charm panels run on the sim backend only");
      return run_charm(sys, cfg);
  }
  PREMA_CHECK_MSG(false, "unknown system");
  return {};
}

void print_panel(std::ostream& os, const RunReport& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s %s\n", system_panel(r.system),
                r.label.c_str());
  os << buf;
  std::snprintf(buf, sizeof buf, "    total runtime (makespan): %10.1f s\n",
                r.makespan);
  os << buf;
  const TimeCategory cats[] = {
      TimeCategory::kComputation,   TimeCategory::kCallback,
      TimeCategory::kScheduling,    TimeCategory::kMessaging,
      TimeCategory::kPolling,       TimeCategory::kPartitionCalc,
      TimeCategory::kSynchronization, TimeCategory::kIdle};
  for (const auto cat : cats) {
    util::RunningStats s;
    for (const auto& l : r.ledgers) s.add(l.get(cat));
    if (s.max() <= 0.0) continue;
    std::snprintf(buf, sizeof buf,
                  "    %-22s per-proc mean %9.2f s   min %9.2f   max %9.2f\n",
                  std::string(util::time_category_name(cat)).c_str(), s.mean(),
                  s.min(), s.max());
    os << buf;
  }
  std::snprintf(buf, sizeof buf,
                "    computation stddev across procs: %.2f s\n", r.comp_stddev);
  os << buf;
  std::snprintf(
      buf, sizeof buf,
      "    LB overhead: %.4f%% of computation;  synchronization: %.3f%%;  "
      "migrations: %llu;  units executed: %lld\n",
      r.overhead_pct, r.sync_pct, static_cast<unsigned long long>(r.migrations),
      static_cast<long long>(r.executed));
  os << buf;
  if (!r.trace_file.empty()) {
    os << "    trace written to " << r.trace_file << "\n";
  }
}

void print_comparison(std::ostream& os, const std::vector<RunReport>& rs) {
  os << "    panel  system                                   makespan   "
        "comp-stddev   overhead%   sync%   migrations\n";
  char buf[256];
  for (const auto& r : rs) {
    std::snprintf(buf, sizeof buf,
                  "    %-5s  %-40s %8.1f s %10.2f %10.4f %8.3f %11llu\n",
                  system_panel(r.system), r.label.c_str(), r.makespan,
                  r.comp_stddev, r.overhead_pct, r.sync_pct,
                  static_cast<unsigned long long>(r.migrations));
    os << buf;
  }
}

}  // namespace prema::bench
