#include "bench_support/service_harness.hpp"

#include <memory>

#include "dmcs/sim_machine.hpp"
#include "dmcs/thread_machine.hpp"
#include "fault/fault_plan.hpp"
#include "prema/runtime.hpp"
#include "support/assert.hpp"
#include "trace/export.hpp"

namespace prema::bench {

using util::ByteReader;
using util::ByteWriter;
using util::TimeCategory;

namespace {

/// A request shard: the mobile unit of service-mode load balancing. Carries
/// no per-request state — just a blob that makes migration cost realistic —
/// so the balancer's decision is purely about where its traffic should land.
class RequestShard : public mol::MobileObject {
 public:
  explicit RequestShard(std::size_t blob_bytes) : blob_(blob_bytes, 0x53) {}
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(ByteWriter& w) const override { w.put_bytes(blob_); }
  static std::unique_ptr<mol::MobileObject> make(ByteReader& r) {
    auto obj = std::make_unique<RequestShard>(0);
    obj->blob_ = r.get_bytes();
    return obj;
  }

  std::vector<std::uint8_t> blob_;
};

/// Client -> shard slot: SplitMix64-style finalizer so adjacent client ids
/// spread across shards (plain modulo would map the hot prefix to shard 0).
std::uint64_t mix_client(std::uint64_t c) {
  c = (c ^ (c >> 30)) * 0xbf58476d1ce4e5b9ULL;
  c = (c ^ (c >> 27)) * 0x94d049bb133111ebULL;
  return c ^ (c >> 31);
}

void maybe_install_fault_plan(dmcs::Machine& machine, const ServiceScenario& sc) {
  if (sc.fault_profile.empty() || sc.fault_profile == "none") return;
  machine.set_fault_plan(std::make_shared<fault::FaultPlan>(
      fault::make_fault_profile(sc.fault_profile), sc.fault_seed, sc.nprocs));
}

ServiceReport run_on(dmcs::Machine& machine, const ServiceScenario& sc,
                     bool sim_backend, double mflops) {
  RuntimeConfig rcfg;
  rcfg.policy = sc.policy;
  rcfg.balancer.low_watermark = sc.low_watermark;
  rcfg.balancer.donate_threshold = 2 * sc.low_watermark;
  rcfg.trace.enabled = !sc.trace_out.empty();
  rcfg.trace.buffer_capacity = sc.trace_capacity;
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, RequestShard::make);

  service::ServiceLedger ledger(sc.nprocs);

  // Per-rank accumulators, indexed by the executing rank: each worker thread
  // writes only its own slot, so no lock is needed on either backend.
  std::vector<double> comp_by_rank(static_cast<std::size_t>(sc.nprocs), 0.0);

  const fault::FaultPlan* plan = machine.fault_plan();
  const auto request_h = rt.register_object_handler(
      "service.work",
      [&ledger, &comp_by_rank, plan, sim_backend, mflops](
          Context& ctx, mol::MobileObject&, ByteReader& r, const mol::Delivery&) {
        // wire:service.request unpack r
        const double t_arr = r.get<double>();
        const double cost = r.get<double>();
        const auto client = r.get<std::uint64_t>();
        // Accounted compute time of this request on the executing node: the
        // fault plan's slowdown factor is part of the machine's reality.
        const double factor =
            plan != nullptr ? plan->compute_factor(ctx.rank()) : 1.0;
        const double service_s = cost / mflops * factor;
        double sojourn = 0.0;
        if (sim_backend) {
          // Deferred-cost execution: now() is the activity's start; the body
          // runs before the emulated clock advances across the unit.
          sojourn = (ctx.now() - t_arr) + service_s;
          ctx.compute(cost);
        } else {
          ctx.compute(cost);  // spins for real
          sojourn = ctx.now() - t_arr;
        }
        ledger.at(ctx.rank()).record_completion(sojourn);
        comp_by_rank[static_cast<std::size_t>(ctx.rank())] += service_s;
        if (auto* ts = ctx.node().trace()) {
          ts->service_complete(ctx.now(), client, sojourn);
        }
      });

  // Shards, block-distributed: slot [rank][i]. Each rank fills its own inner
  // vector in main(); the outer vector is pre-sized so no reallocation races.
  std::vector<std::vector<mol::MobilePtr>> shards(
      static_cast<std::size_t>(sc.nprocs));
  rt.set_main([&shards, &sc](Context& ctx) {
    auto& mine = shards[static_cast<std::size_t>(ctx.rank())];
    mine.reserve(static_cast<std::size_t>(sc.shards_per_proc));
    for (int i = 0; i < sc.shards_per_proc; ++i) {
      mine.push_back(ctx.add_object(
          std::make_unique<RequestShard>(sc.shard_payload_bytes)));
      // Shard coordinates: ranks along x, slots along y. A no-op unless a
      // scheduled policy wants topology, so registration is unconditional.
      mol::Coords c;
      c.x = (static_cast<double>(ctx.rank()) + 0.5) / ctx.nprocs();
      c.y = (static_cast<double>(i) + 0.5) / sc.shards_per_proc;
      c.z = 0.5;
      ctx.set_coords(mine.back(), c);
    }
  });

  ServiceConfig svc;
  svc.duration_s = sc.duration_s;
  svc.epoch_s = sc.epoch_s;
  svc.arrivals = sc.arrivals;
  svc.ledger = &ledger;
  for (const auto& [t, name] : sc.policy_switches) {
    svc.policy_switches.push_back({t, name});
  }
  svc.on_arrival = [&shards, &sc, request_h](Context& ctx,
                                             const service::Arrival& a) {
    const auto& mine = shards[static_cast<std::size_t>(ctx.rank())];
    const auto slot = static_cast<std::size_t>(
        mix_client(a.client) % static_cast<std::uint64_t>(sc.shards_per_proc));
    ByteWriter w;
    // wire:service.request pack w
    w.put<double>(ctx.now());
    w.put<double>(a.cost_mflop);
    w.put<std::uint64_t>(a.client);
    ctx.message(mine[slot], request_h, w.take(), a.cost_mflop);
  };

  ServiceReport rep;
  rep.backend = sc.backend;
  rep.policy = sc.policy;
  for (const auto& [t, name] : sc.policy_switches) {
    (void)t;
    rep.policy += "->" + name;  // e.g. "work_stealing->sfc"
  }
  rep.model = std::string(service::arrival_model_name(sc.arrivals.model));
  rep.fault_profile = sc.fault_profile;
  rep.offered_rate = sc.arrivals.rate_per_proc;
  rep.duration_s = sc.duration_s;
  rep.makespan = rt.run_service(std::move(svc));

  const service::ServiceTotals totals = ledger.totals();
  rep.arrivals = totals.arrivals;
  rep.completions = totals.completions;

  std::size_t resident = 0;
  std::size_t in_transit = 0;
  for (ProcId p = 0; p < sc.nprocs; ++p) {
    rep.migrations += rt.mol_at(p).stats().migrations_in;
    resident += rt.mol_at(p).local_count();
    in_transit += rt.mol_at(p).in_transit_count();
    rep.request_comp_s += comp_by_rank[static_cast<std::size_t>(p)];
    rep.ledger_comp_s += machine.ledger(p).get(TimeCategory::kComputation);
    rep.load_series.push_back(ledger.at(p).load_series());
  }
  const auto total_shards =
      static_cast<std::size_t>(sc.nprocs) * static_cast<std::size_t>(sc.shards_per_proc);
  rep.audit_ok = totals.completions == totals.arrivals &&
                 resident == total_shards && in_transit == 0;
  rep.term_waves = rt.termination_waves();
  if (rep.request_comp_s > 0.0) {
    rep.ledger_delta_pct =
        100.0 * (rep.ledger_comp_s - rep.request_comp_s) / rep.request_comp_s;
  }

  rep.histogram = ledger.merged_histogram();
  rep.mean_ms = rep.histogram.mean() * 1e3;
  rep.p50_ms = rep.histogram.percentile(0.50) * 1e3;
  rep.p99_ms = rep.histogram.percentile(0.99) * 1e3;
  rep.p999_ms = rep.histogram.percentile(0.999) * 1e3;
  rep.max_ms = rep.histogram.max() * 1e3;
  rep.throughput_rps =
      static_cast<double>(rep.completions) / sc.duration_s;

  if (const auto* rec = machine.tracer(); rec != nullptr && !sc.trace_out.empty()) {
    if (trace::write_chrome_trace_file(sc.trace_out, *rec)) {
      rep.trace_file = sc.trace_out;
    }
  }
  return rep;
}

}  // namespace

ServiceReport run_service_scenario(const ServiceScenario& sc) {
  PREMA_CHECK_MSG(sc.backend == "sim" || sc.backend == "thread",
                  "service backend must be sim or thread");
  if (sc.backend == "sim") {
    sim::MachineConfig mcfg;
    mcfg.nprocs = sc.nprocs;
    mcfg.mflops = sc.proc_mflops;
    mcfg.seed = sc.seed;
    dmcs::PollingConfig pcfg;
    pcfg.mode = dmcs::PollingMode::kPreemptive;
    dmcs::SimMachine machine(mcfg, pcfg);
    maybe_install_fault_plan(machine, sc);
    return run_on(machine, sc, /*sim_backend=*/true, sc.proc_mflops);
  }
  dmcs::ThreadConfig tcfg;
  tcfg.nprocs = sc.nprocs;
  tcfg.mflops = sc.thread_mflops;
  tcfg.polling.mode = dmcs::PollingMode::kPreemptive;
  tcfg.seed = sc.seed;
  dmcs::ThreadMachine machine(tcfg);
  maybe_install_fault_plan(machine, sc);
  return run_on(machine, sc, /*sim_backend=*/false, sc.thread_mflops);
}

}  // namespace prema::bench
