#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dmcs/machine.hpp"
#include "ilb/scheduler.hpp"
#include "mol/mol.hpp"
#include "partition/adaptive.hpp"

/// \file stop_repartition.hpp
/// The "ParMETIS" baseline of the paper's evaluation (§3.1, §5): explicit
/// stop-and-repartition over the same MOL/scheduler substrate PREMA uses.
///
/// Protocol (paper §5): work executes with no balancing until a processor's
/// queued load falls below the water-mark; it notifies the root. The root —
/// which tracks completed work units — decides whether enough outstanding
/// work warrants balancing. If so it halts every processor (each joins at its
/// next poll point: a long work unit delays the whole machine — the
/// synchronization penalty), gathers the weighted object graph, runs the
/// Unified Repartitioning algorithm (|Ecut| + alpha * |Vmove|), broadcasts
/// the new assignment, migrates objects, and resumes. If the outstanding
/// fraction is too small it resumes without moving anything — the paper's
/// Figure 4(d) pathology, where the synchronization is paid repeatedly for
/// nothing.

namespace prema::srp {

class Runtime;

/// Application-facing context (mirrors prema::Context for this runtime).
class Context {
 public:
  [[nodiscard]] ProcId rank() const { return node_->rank(); }
  [[nodiscard]] int nprocs() const { return node_->nprocs(); }
  [[nodiscard]] double now() const { return node_->now(); }
  [[nodiscard]] dmcs::Node& node() { return *node_; }

  mol::MobilePtr add_object(std::unique_ptr<mol::MobileObject> obj);
  /// Send a work message; `weight` is the hint the repartitioner will see.
  void message(const mol::MobilePtr& target, mol::ObjectHandlerId handler,
               std::vector<std::uint8_t> payload = {}, double weight = 1.0);
  void compute(double mflop) {
    node_->compute(mflop, util::TimeCategory::kComputation);
  }
  [[nodiscard]] mol::MobileObject* local(const mol::MobilePtr& ptr);

 private:
  friend class Runtime;
  Runtime* rt_ = nullptr;
  dmcs::Node* node_ = nullptr;
  mol::Mol* mol_ = nullptr;
};

using ObjectHandler = std::function<void(Context&, mol::MobileObject&,
                                         util::ByteReader&, const mol::Delivery&)>;

struct SrpConfig {
  /// Queued load below which a processor notifies the root.
  double low_watermark = 2.0;
  /// Use weight hints (true) or unit counts for the load/notify decision.
  bool use_weight = true;
  /// The root declines to balance when the outstanding fraction of total
  /// work-unit count drops below this.
  double min_outstanding_fraction = 0.10;
  /// Minimum time between two global exchanges.
  double cooldown_s = 15.0;
  /// Relative Cost Factor for the unified repartitioner.
  double alpha = 1.0;
  /// Completion counts are batched to the root every this many units.
  int completion_batch = 32;
  /// Emulated compute rate used for the modeled partitioner cost.
  double proc_mflops = 333.0;
};

class Runtime {
 public:
  Runtime(dmcs::Machine& machine, SrpConfig cfg = {});
  ~Runtime();

  [[nodiscard]] mol::ObjectTypeRegistry& object_types() { return mol_layer_->types(); }
  mol::ObjectHandlerId register_object_handler(const std::string& name,
                                               ObjectHandler fn);
  void set_main(std::function<void(Context&)> fn) { main_ = std::move(fn); }

  /// Total work units the application will create (drives the root's
  /// outstanding-work estimate).
  void set_total_units(std::int64_t n) { total_units_ = n; }

  double run();

  // -- introspection --------------------------------------------------------
  [[nodiscard]] int exchanges() const { return exchanges_; }
  [[nodiscard]] int repartitions() const { return repartitions_; }
  [[nodiscard]] int declined() const { return exchanges_ - repartitions_; }
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] mol::Mol& mol_at(ProcId p) { return mol_layer_->at(p); }
  [[nodiscard]] ilb::Scheduler& scheduler_at(ProcId p);
  [[nodiscard]] const SrpConfig& config() const { return cfg_; }

 private:
  struct NodeRt;
  class Program;

  NodeRt& rt(ProcId p);
  void exec_wrapper(dmcs::Node& n, dmcs::Message&& msg);
  void on_low(dmcs::Node& n, dmcs::Message&& msg);
  void on_halt(dmcs::Node& n, dmcs::Message&& msg);
  void on_report(dmcs::Node& n, dmcs::Message&& msg);
  void on_assign(dmcs::Node& n, dmcs::Message&& msg);
  void on_migdone(dmcs::Node& n, dmcs::Message&& msg);
  void on_resume(dmcs::Node& n, dmcs::Message&& msg);
  void on_completed(dmcs::Node& n, dmcs::Message&& msg);
  void maybe_notify_low(dmcs::Node& n);
  void send_report_if_halted(dmcs::Node& n);
  void check_migration_done(dmcs::Node& n);
  void root_finish_gather(dmcs::Node& n);

  dmcs::Machine& machine_;
  SrpConfig cfg_;
  std::unique_ptr<mol::MolLayer> mol_layer_;
  std::vector<std::unique_ptr<NodeRt>> nodes_;
  std::vector<ObjectHandler> handlers_;
  std::vector<std::string> handler_names_;
  std::function<void(Context&)> main_;
  std::int64_t total_units_ = 0;

  dmcs::HandlerId exec_h_{}, low_h_{}, halt_h_{}, report_h_{}, assign_h_{},
      migdone_h_{}, resume_h_{}, completed_h_{};

  // Root state.
  bool exchange_active_ = false;
  bool low_retry_pending_ = false;
  double last_exchange_end_ = -1e18;
  int reports_ = 0;
  int migdone_reports_ = 0;
  std::int64_t completed_units_ = 0;
  int exchanges_ = 0;
  int repartitions_ = 0;
  std::uint64_t migrations_ = 0;
  struct Reported {
    mol::MobilePtr ptr;
    double weight;
    ProcId owner;
  };
  std::vector<Reported> gathered_;
  bool ran_ = false;
};

}  // namespace prema::srp
