#pragma once

#include <string>
#include <utility>
#include <vector>

#include "service/arrivals.hpp"
#include "service/latency.hpp"
#include "service/ledger.hpp"

/// \file service_harness.hpp
/// Scenario driver for open-loop service mode (Runtime::run_service): builds
/// a machine (emulated or real threads), a fleet of request-shard mobile
/// objects, and an arrival stream, runs the service window, and distills the
/// latency ledger into the SLO numbers the sweep reports — p50/p99/p999
/// sojourn, throughput, per-node load series — plus the audits that make the
/// numbers trustworthy: arrivals == completions (open-loop conservation) and
/// a TimeLedger reconciliation (requests' nominal compute seconds vs the
/// machine's accounted computation).
///
/// Requests route by client hash onto shards created on the client's home
/// rank; once the balancer migrates a shard, MOL forwarding keeps routing
/// requests to it wherever it lives — so a migrated hot shard takes its
/// traffic with it, which is exactly the behavior under test.

namespace prema::bench {

struct ServiceScenario {
  std::string backend = "sim";  ///< "sim" | "thread"
  int nprocs = 16;
  /// Emulated processor speed (sim backend; paper's 333 Mflops).
  double proc_mflops = 333.0;
  /// Real-thread compute conversion rate (thread backend).
  double thread_mflops = 2000.0;

  service::ArrivalConfig arrivals;
  double duration_s = 0.5;
  double epoch_s = 25e-3;

  /// Request shards per rank. Few and coarse: a hot shard is worth moving.
  int shards_per_proc = 8;
  std::size_t shard_payload_bytes = 512;

  /// Balancing policy registry name ("null" disables balancing).
  std::string policy = "work_stealing";
  double low_watermark = 1.0;

  /// Mid-window policy switches, applied in time order at epoch ticks (see
  /// ServiceConfig::policy_switches). The topology-aware policies (sfc,
  /// cluster) are the natural switch *targets*: they ignore stray in-flight
  /// scalar wire tags, and the Balancer absorbs topology-range tags that an
  /// early-switching rank sends to a peer still running a scalar policy.
  std::vector<std::pair<double, std::string>> policy_switches;

  /// Canned fault profile; "mid-pause" is the elasticity scenario (node 1
  /// leaves mid-run). Anything but "none" engages reliable transport.
  std::string fault_profile = "none";
  std::uint64_t fault_seed = 7;

  /// When non-empty, record and export a Chrome trace to this path.
  std::string trace_out;
  std::size_t trace_capacity = 1 << 16;

  std::uint64_t seed = 2003;
};

struct ServiceReport {
  std::string backend;
  std::string policy;
  std::string model;          ///< arrival model name
  std::string fault_profile;
  double offered_rate = 0.0;  ///< requests/s per proc (config echo)
  double duration_s = 0.0;
  double makespan = 0.0;      ///< injection window + drain tail

  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  bool audit_ok = false;      ///< arrivals == completions (+ object census)

  double throughput_rps = 0.0;  ///< completions / duration, whole machine
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;

  std::uint64_t migrations = 0;
  std::uint64_t term_waves = 0;

  /// TimeLedger reconciliation: nominal request compute seconds vs the
  /// machine's accounted kComputation (percent difference; ~0 on sim,
  /// slowdown faults legitimately inflate the accounted side).
  double request_comp_s = 0.0;
  double ledger_comp_s = 0.0;
  double ledger_delta_pct = 0.0;

  /// Epoch-sampled per-node load series (one vector per rank).
  std::vector<std::vector<service::LoadSample>> load_series;
  /// Merged sojourn histogram (for goldens / further percentiles).
  service::LatencyHistogram histogram;

  std::string trace_file;
};

/// Run one service scenario end to end and distill the report. Audit results
/// land in ServiceReport::audit_ok (callers assert as appropriate).
ServiceReport run_service_scenario(const ServiceScenario& sc);

}  // namespace prema::bench
