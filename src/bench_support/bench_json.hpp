#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

/// \file bench_json.hpp
/// Shared JSON emission for every bench binary (BENCH_*.json files and
/// --json-out flags). One writer, one number format, so benchmark output is
/// machine-readable and diffable: two runs that measured the same numbers
/// emit byte-identical files regardless of which binary wrote them.
///
/// Deliberately minimal — objects, arrays, scalar fields, streaming only
/// (no DOM). The writer tracks nesting and comma placement; keys and
/// structure are the caller's responsibility to match up, with a depth check
/// at destruction catching unbalanced begin/end in debug runs.

namespace prema::bench {

class JsonWriter {
 public:
  /// Writes to `os` as begin/end/field calls come in. Indented two spaces
  /// per level; fields emit as `"key": value`.
  explicit JsonWriter(std::ostream& os);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // -- structure ------------------------------------------------------------
  /// Open an object/array. `key` is required inside an object and must be
  /// null at the top level and inside arrays.
  void begin_object(const char* key = nullptr);
  void end_object();
  void begin_array(const char* key = nullptr);
  void end_array();

  // -- scalar fields (inside an object) ------------------------------------
  void field(const char* key, double v);
  void field(const char* key, std::uint64_t v);
  void field(const char* key, std::int64_t v);
  void field(const char* key, int v);
  void field(const char* key, bool v);
  void field(const char* key, const std::string& v);
  void field(const char* key, const char* v);

  // -- scalar elements (inside an array) ------------------------------------
  void element(double v);
  void element(std::uint64_t v);
  void element(const std::string& v);

  /// Shortest decimal form that round-trips a double ("%.17g with trailing
  /// precision trimmed"); shared so hand-rolled emitters match the writer.
  static std::string format_double(double v);

 private:
  void separator(const char* key);

  std::ostream& os_;
  /// One char per open scope: '{' or '['; parallel flag = "wrote a child".
  std::vector<char> stack_;
  std::vector<bool> has_child_;
};

/// The envelope every BENCH_*.json shares: a top-level object carrying
/// "benchmark" and "description", optional extra scalar fields, and a "runs"
/// array of per-scenario objects. Construction opens the file and writes the
/// header; destruction closes whatever is open — so a bench binary is just
///
///   BenchReport report(path, "name", "what it measures");
///   report.json().field("extra", value);       // optional header fields
///   report.begin_runs();
///   for (...) { report.json().begin_object(); ... }
class BenchReport {
 public:
  BenchReport(const std::string& path, const char* benchmark,
              const char* description);
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// False if the output file could not be opened.
  [[nodiscard]] bool ok() const { return static_cast<bool>(os_); }

  /// The writer, positioned inside the top-level object (or, after
  /// begin_runs(), inside the "runs" array).
  [[nodiscard]] JsonWriter& json() { return jw_; }

  /// Open the "runs" array. Call once, after any extra header fields.
  void begin_runs();

 private:
  std::ofstream os_;
  JsonWriter jw_;
  bool runs_open_ = false;
};

}  // namespace prema::bench
