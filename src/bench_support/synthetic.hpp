#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/time_ledger.hpp"

/// \file synthetic.hpp
/// The paper's synthetic benchmark (§5) and the six system configurations of
/// Figures 3-6:
///   (a) no load balancing            (d) ParMETIS stop-and-repartition
///   (b) PREMA, explicit polling      (e) Charm++, no synchronization points
///   (c) PREMA, implicit polling      (f) Charm++, 4 synchronization points
///
/// Work units are created block-distributed (unit u on processor
/// u / units_per_proc); the first heavy_fraction * N units are "heavy".
/// Hint-based balancers are fed deliberately inaccurate hints (every unit
/// weighs 1.0) to mimic an adaptive application that cannot predict its own
/// future (§5). There is no communication between units.

namespace prema::bench {

enum class System {
  kNoLB = 0,
  kPremaExplicit,
  kPremaImplicit,
  kStopRepartition,
  kCharmNoSync,
  kCharmSync,
};

const char* system_name(System s);
const char* system_panel(System s);  ///< (a)..(f) per the paper's figures

struct SyntheticConfig {
  int nprocs = 128;
  int units_per_proc = 864;
  /// Balancing-policy registry name for the PREMA systems. Empty keeps the
  /// legacy mapping (kNoLB -> "null", the other panels -> "work_stealing"
  /// with the grant-size tuning below); any ilb::make_policy name — including
  /// the topology-aware "sfc" and "cluster" — overrides it. Units always
  /// register grid coordinates (a no-op unless the policy wants topology).
  std::string policy;
  /// Machine backend for the PREMA systems: "sim" (emulated, deterministic)
  /// or "thread" (real OS threads). SRP/Charm panels are sim-only.
  std::string backend = "sim";
  /// Real-thread compute conversion rate (backend == "thread").
  double thread_mflops = 2000.0;
  /// Fraction of all work units that are heavy (0.5 or 0.1 in the paper).
  double heavy_fraction = 0.5;
  double heavy_mflop = 500.0;
  double light_mflop = 250.0;
  /// Emulated processor speed (333 MHz UltraSPARC IIi).
  double proc_mflops = 333.0;
  /// Hints the balancers see: false = all units claim weight 1.0 (the
  /// paper's deliberately inaccurate setting), true = true Mflop.
  bool accurate_hints = false;
  /// Data carried by each work unit (object migration size).
  std::size_t unit_payload_bytes = 1024;
  /// PREMA implicit-mode polling-thread period.
  double poll_interval_s = 10e-3;
  /// Low water-mark (in hint units ~= queued work units). The default begs
  /// only once the queue has run dry — the paper's hard case (§4.1: with
  /// inaccurate hints a safe cushion cannot be chosen). Implicit polling is
  /// insensitive to this (§4.2: balancing starts while the last unit runs);
  /// explicit polling pays a full request round-trip of idleness per steal.
  double low_watermark = 1.0;
  /// Objects migrated per steal grant. The benchmark's units are coarse
  /// grained (paper §4: "a single mobile object may be migrated"), so grants
  /// are small — which is precisely what makes explicit polling suffer.
  std::size_t max_grant_objects = 2;
  /// Charm++ configuration: number of balancing points for kCharmSync.
  int charm_sync_points = 4;
  /// Stop-and-repartition tuning (§3.1 / §5).
  double srp_min_outstanding = 0.06;
  double srp_cooldown_s = 15.0;
  double srp_alpha = 1.0;
  std::uint64_t seed = 2003;
  /// When non-empty, record an event trace of each run and export Chrome
  /// trace-event JSON to a per-panel file derived from this base path (see
  /// trace_output_path). Empty = tracing off, zero overhead.
  std::string trace_out;
  /// Canned fault-injection profile ("none" | "lossy1pct" | "burst-reorder" |
  /// "one-slow-node", see src/fault/fault_plan.hpp and EXPERIMENTS.md).
  /// Anything but "none" turns on the reliable transport and, after the run,
  /// the delivery-ledger checks (exactly-once execution, no lost or cloned
  /// mobile objects, no open migration handoffs).
  std::string fault_profile = "none";
  /// Seed for the fault plan's per-link RNG streams (independent of `seed`).
  std::uint64_t fault_seed = 7;
};

struct RunReport {
  System system{};
  std::string label;
  std::string policy;   ///< resolved policy name (PREMA systems; "" otherwise)
  std::string backend;  ///< "sim" | "thread"
  double makespan = 0.0;
  std::vector<util::TimeLedger> ledgers;

  // Derived quantities reported by the paper.
  double comp_stddev = 0.0;     ///< stddev of per-proc computation time
  double comp_total = 0.0;      ///< proc-seconds of useful computation
  double overhead_total = 0.0;  ///< messaging + scheduling + polling
  double sync_total = 0.0;
  double partition_total = 0.0;
  double idle_total = 0.0;
  double overhead_pct = 0.0;    ///< overhead_total / comp_total * 100
  double sync_pct = 0.0;        ///< sync_total / comp_total * 100
  std::uint64_t migrations = 0;
  std::int64_t executed = 0;

  /// Conservation audit (PREMA systems): every unit executed exactly once,
  /// every mobile object resident at exactly one processor, no migration
  /// handoff left open. Checked fatally under fault plans; always reported.
  std::size_t resident = 0;
  std::size_t in_transit = 0;
  bool audit_ok = false;

  /// Path the Chrome trace was written to ("" when tracing was off).
  std::string trace_file;
};

/// Per-panel trace file name: inserts "-<panel letter>" before the extension
/// of `base` (e.g. "fig3.json" + panel (c) -> "fig3-c.json").
std::string trace_output_path(const std::string& base, System sys);

/// Run one system configuration on the emulated machine.
RunReport run_synthetic(System sys, const SyntheticConfig& cfg);

/// Print one panel in the style of the paper's figures: the per-category
/// breakdown plus the summary lines the text quotes.
void print_panel(std::ostream& os, const RunReport& r);

/// Print a one-line-per-system comparison table.
void print_comparison(std::ostream& os, const std::vector<RunReport>& rs);

}  // namespace prema::bench
