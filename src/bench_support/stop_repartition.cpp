#include "bench_support/stop_repartition.hpp"

#include <algorithm>
#include <map>

#include "graph/csr_graph.hpp"
#include "partition/multilevel.hpp"
#include "support/assert.hpp"

namespace prema::srp {

using dmcs::Message;
using dmcs::MsgKind;
using util::ByteReader;
using util::ByteWriter;
using util::TimeCategory;

namespace {

void put_ptr(ByteWriter& w, const mol::MobilePtr& p) {
  w.put<ProcId>(p.home);
  w.put<std::uint32_t>(p.index);
}

mol::MobilePtr get_ptr(ByteReader& r) {
  mol::MobilePtr p;
  p.home = r.get<ProcId>();
  p.index = r.get<std::uint32_t>();
  return p;
}

}  // namespace

struct Runtime::NodeRt {
  Context ctx;
  dmcs::Node* node = nullptr;
  mol::Mol* mol = nullptr;
  ilb::Scheduler sched;

  mol::Delivery current;
  bool has_current = false;

  bool halted = false;
  bool low_notified = false;
  int completions_since_report = 0;

  // During a migration phase: the objects this processor must end up owning.
  std::vector<mol::MobilePtr> expected;
  bool migdone_sent = false;
};

class Runtime::Program final : public dmcs::Program {
 public:
  Program(Runtime& rt, NodeRt& node) : rt_(rt), node_(node) {}

  void main(dmcs::Node&) override {
    if (rt_.main_) rt_.main_(node_.ctx);
  }

  bool service(dmcs::Node& n) override {
    if (node_.halted) return false;
    rt_.maybe_notify_low(n);
    auto d = node_.sched.pick();
    if (!d) return false;
    node_.current = std::move(*d);
    node_.has_current = true;
    n.execute(Message{rt_.exec_h_, n.rank(), MsgKind::kApp, {}}, [this, &n] {
      node_.sched.complete();
      ++node_.completions_since_report;
      if (node_.completions_since_report >= rt_.cfg_.completion_batch) {
        ByteWriter w;
        w.put<std::int64_t>(node_.completions_since_report);
        node_.completions_since_report = 0;
        n.send(0, Message{rt_.completed_h_, n.rank(), MsgKind::kSystem, w.take()});
      }
    });
    return true;
  }

  void on_idle(dmcs::Node& n) override {
    // Flush the completion batch so the root's outstanding estimate is fresh.
    if (node_.completions_since_report > 0) {
      ByteWriter w;
      w.put<std::int64_t>(node_.completions_since_report);
      node_.completions_since_report = 0;
      n.send(0, Message{rt_.completed_h_, n.rank(), MsgKind::kSystem, w.take()});
    }
    if (!node_.halted) rt_.maybe_notify_low(n);
  }

 private:
  Runtime& rt_;
  NodeRt& node_;
};

Runtime::Runtime(dmcs::Machine& machine, SrpConfig cfg)
    : machine_(machine), cfg_(cfg) {
  mol_layer_ = std::make_unique<mol::MolLayer>(machine_);
  auto& reg = machine_.registry();
  exec_h_ = reg.add("srp.exec", [this](dmcs::Node& n, Message&& m) {
    exec_wrapper(n, std::move(m));
  });
  low_h_ = reg.add("srp.low", [this](dmcs::Node& n, Message&& m) {
    on_low(n, std::move(m));
  });
  halt_h_ = reg.add("srp.halt", [this](dmcs::Node& n, Message&& m) {
    on_halt(n, std::move(m));
  });
  report_h_ = reg.add("srp.report", [this](dmcs::Node& n, Message&& m) {
    on_report(n, std::move(m));
  });
  assign_h_ = reg.add("srp.assign", [this](dmcs::Node& n, Message&& m) {
    on_assign(n, std::move(m));
  });
  migdone_h_ = reg.add("srp.migdone", [this](dmcs::Node& n, Message&& m) {
    on_migdone(n, std::move(m));
  });
  resume_h_ = reg.add("srp.resume", [this](dmcs::Node& n, Message&& m) {
    on_resume(n, std::move(m));
  });
  completed_h_ = reg.add("srp.completed", [this](dmcs::Node& n, Message&& m) {
    on_completed(n, std::move(m));
  });

  nodes_.reserve(static_cast<std::size_t>(machine_.nprocs()));
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    auto rt = std::make_unique<NodeRt>();
    rt->node = &machine_.node(p);
    rt->mol = &mol_layer_->at(p);
    rt->ctx.rt_ = this;
    rt->ctx.node_ = rt->node;
    rt->ctx.mol_ = rt->mol;
    nodes_.push_back(std::move(rt));
  }
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    NodeRt* r = nodes_[static_cast<std::size_t>(p)].get();
    mol::Mol::Hooks hooks;
    hooks.on_delivery = [r](mol::Delivery&& d) {
      r->sched.enqueue(std::move(d));
      r->low_notified = false;  // fresh work: the dry spell ended
    };
    hooks.take_queued = [r](const mol::MobilePtr& ptr) {
      return r->sched.take_queued(ptr);
    };
    hooks.on_installed = [this, r](const mol::MobilePtr&) {
      check_migration_done(*r->node);
    };
    r->mol->set_hooks(std::move(hooks));
  }
}

Runtime::~Runtime() = default;

Runtime::NodeRt& Runtime::rt(ProcId p) {
  PREMA_CHECK(p >= 0 && p < static_cast<ProcId>(nodes_.size()));
  return *nodes_[static_cast<std::size_t>(p)];
}

ilb::Scheduler& Runtime::scheduler_at(ProcId p) { return rt(p).sched; }

mol::ObjectHandlerId Runtime::register_object_handler(const std::string& name,
                                                      ObjectHandler fn) {
  for (const auto& existing : handler_names_) {
    PREMA_CHECK_MSG(existing != name, "duplicate object-handler name");
  }
  handlers_.push_back(std::move(fn));
  handler_names_.push_back(name);
  return static_cast<mol::ObjectHandlerId>(handlers_.size());
}

void Runtime::exec_wrapper(dmcs::Node& n, Message&&) {
  NodeRt& r = rt(n.rank());
  PREMA_CHECK_MSG(r.has_current, "exec without a picked unit");
  mol::Delivery d = std::move(r.current);
  r.has_current = false;
  auto* obj = r.mol->find(d.target);
  PREMA_CHECK_MSG(obj != nullptr, "executing unit's object is not resident");
  PREMA_CHECK(d.handler != 0 && d.handler <= handlers_.size());
  ByteReader reader(d.payload);
  handlers_[d.handler - 1](r.ctx, *obj, reader, d);
}

double Runtime::run() {
  PREMA_CHECK_MSG(!ran_, "srp Runtime::run may only be called once");
  ran_ = true;
  return machine_.run([this](ProcId p) {
    return std::make_unique<Program>(*this, rt(p));
  });
}

void Runtime::maybe_notify_low(dmcs::Node& n) {
  NodeRt& r = rt(n.rank());
  if (r.low_notified || r.halted) return;
  if (r.sched.load(cfg_.use_weight) >= cfg_.low_watermark) return;
  r.low_notified = true;
  n.send(0, Message{low_h_, n.rank(), MsgKind::kSystem, {}});
}

void Runtime::on_low(dmcs::Node& n, Message&&) {
  PREMA_CHECK_MSG(n.rank() == 0, "low-water notification reached a non-root");
  if (exchange_active_) return;
  const double since = n.now() - last_exchange_end_;
  if (since < cfg_.cooldown_s) {
    // Re-examine once the cooldown expires (the starved processor will not
    // ask again on its own).
    if (!low_retry_pending_) {
      low_retry_pending_ = true;
      n.send_self_after(cfg_.cooldown_s - since + 1e-6,
                        Message{low_h_, 0, MsgKind::kSystem, {}});
    }
    return;
  }
  low_retry_pending_ = false;
  if (total_units_ > 0) {
    const double outstanding =
        1.0 - static_cast<double>(completed_units_) /
                  static_cast<double>(total_units_);
    if (outstanding <= 0.0) return;  // nothing left at all
  }
  // Start a global exchange: every processor halts at its next poll point
  // and reports its weighted object list.
  exchange_active_ = true;
  ++exchanges_;
  reports_ = 0;
  gathered_.clear();
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    n.send(p, Message{halt_h_, 0, MsgKind::kSystem, {}});
  }
}

void Runtime::on_halt(dmcs::Node& n, Message&&) {
  NodeRt& r = rt(n.rank());
  r.halted = true;
  n.set_wait_category(TimeCategory::kSynchronization);
  send_report_if_halted(n);
}

void Runtime::send_report_if_halted(dmcs::Node& n) {
  NodeRt& r = rt(n.rank());
  PREMA_CHECK(r.halted);
  const auto loads = r.sched.migratable_loads();
  ByteWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(loads.size()));
  for (const auto& l : loads) {
    put_ptr(w, l.ptr);
    w.put<double>(l.weight);
  }
  n.send(0, Message{report_h_, n.rank(), MsgKind::kSystem, w.take()});
}

void Runtime::on_report(dmcs::Node& n, Message&& msg) {
  PREMA_CHECK_MSG(n.rank() == 0, "workload report reached a non-root");
  ByteReader r(msg.payload);
  const auto count = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    Reported rep;
    rep.ptr = get_ptr(r);
    rep.weight = r.get<double>();
    rep.owner = msg.src;
    gathered_.push_back(rep);
  }
  ++reports_;
  if (reports_ == machine_.nprocs()) root_finish_gather(n);
}

void Runtime::root_finish_gather(dmcs::Node& n) {
  // Decide whether there is enough outstanding work to warrant moving
  // anything (paper §5: the Figure 4(d) case declines here).
  bool balance = true;
  if (total_units_ > 0) {
    const double outstanding =
        1.0 - static_cast<double>(completed_units_) /
                  static_cast<double>(total_units_);
    balance = outstanding >= cfg_.min_outstanding_fraction;
  }
  if (!balance || gathered_.empty()) {
    last_exchange_end_ = n.now();
    exchange_active_ = false;
    for (ProcId p = 0; p < machine_.nprocs(); ++p) {
      n.send(p, Message{resume_h_, 0, MsgKind::kSystem, {}});
    }
    return;
  }
  ++repartitions_;

  // Deterministic vertex order.
  std::sort(gathered_.begin(), gathered_.end(),
            [](const Reported& a, const Reported& b) { return a.ptr < b.ptr; });
  graph::GraphBuilder gb(static_cast<graph::VertexId>(gathered_.size()));
  graph::Partition old_part(gathered_.size());
  for (std::size_t i = 0; i < gathered_.size(); ++i) {
    gb.set_vertex_weight(static_cast<graph::VertexId>(i),
                         std::max(1e-9, gathered_[i].weight));
    old_part[i] = gathered_[i].owner;
  }
  const auto g = gb.build();
  part::AdaptiveOptions aopts;
  aopts.k = machine_.nprocs();
  aopts.alpha = cfg_.alpha;
  const auto res = part::adaptive_repartition(g, old_part, aopts);

  // The repartitioner runs in parallel on all processors; each is charged a
  // share of the modeled cost (the figures' "Partition Calculation Time").
  const double calc_s =
      part::modeled_partition_seconds(g, machine_.nprocs(), cfg_.proc_mflops) /
          machine_.nprocs() +
      5e-3;
  // Each processor only needs its slice: the objects it must send away and
  // the objects it will own afterwards.
  struct Slice {
    std::vector<std::pair<mol::MobilePtr, ProcId>> moves;  // (ptr, to)
    std::vector<mol::MobilePtr> expected;
  };
  std::vector<Slice> slices(static_cast<std::size_t>(machine_.nprocs()));
  for (std::size_t i = 0; i < gathered_.size(); ++i) {
    const auto dst = static_cast<ProcId>(res.partition[i]);
    const auto owner = gathered_[i].owner;
    slices[static_cast<std::size_t>(dst)].expected.push_back(gathered_[i].ptr);
    if (dst != owner) {
      slices[static_cast<std::size_t>(owner)].moves.emplace_back(gathered_[i].ptr, dst);
    }
  }
  migdone_reports_ = 0;
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    const Slice& s = slices[static_cast<std::size_t>(p)];
    ByteWriter w(24 * (s.moves.size() + s.expected.size()) + 24);
    w.put<double>(calc_s);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(s.moves.size()));
    for (const auto& [ptr, dst] : s.moves) {
      put_ptr(w, ptr);
      w.put<ProcId>(dst);
    }
    w.put<std::uint32_t>(static_cast<std::uint32_t>(s.expected.size()));
    for (const auto& ptr : s.expected) put_ptr(w, ptr);
    n.send(p, Message{assign_h_, 0, MsgKind::kSystem, w.take()});
  }
}

void Runtime::on_assign(dmcs::Node& n, Message&& msg) {
  NodeRt& r = rt(n.rank());
  ByteReader reader(msg.payload);
  const double calc_s = reader.get<double>();
  n.compute_seconds(calc_s, TimeCategory::kPartitionCalc);
  r.expected.clear();
  r.migdone_sent = false;
  const auto n_moves = reader.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_moves; ++i) {
    const auto ptr = get_ptr(reader);
    const auto dst = reader.get<ProcId>();
    if (r.mol->is_local(ptr)) {
      r.mol->migrate(ptr, dst);
      ++migrations_;
    }
  }
  const auto n_expected = reader.get<std::uint32_t>();
  r.expected.reserve(n_expected);
  for (std::uint32_t i = 0; i < n_expected; ++i) r.expected.push_back(get_ptr(reader));
  check_migration_done(n);
}

void Runtime::check_migration_done(dmcs::Node& n) {
  NodeRt& r = rt(n.rank());
  if (!r.halted || r.migdone_sent) return;
  for (const auto& ptr : r.expected) {
    if (!r.mol->is_local(ptr)) return;
  }
  r.migdone_sent = true;
  n.send(0, Message{migdone_h_, n.rank(), MsgKind::kSystem, {}});
}

void Runtime::on_migdone(dmcs::Node& n, Message&&) {
  PREMA_CHECK_MSG(n.rank() == 0, "migration report reached a non-root");
  ++migdone_reports_;
  if (migdone_reports_ < machine_.nprocs()) return;
  migdone_reports_ = 0;
  last_exchange_end_ = n.now();
  exchange_active_ = false;
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    n.send(p, Message{resume_h_, 0, MsgKind::kSystem, {}});
  }
}

void Runtime::on_resume(dmcs::Node& n, Message&&) {
  NodeRt& r = rt(n.rank());
  r.halted = false;
  r.expected.clear();
  r.low_notified = r.sched.load(cfg_.use_weight) < cfg_.low_watermark;
  // A processor that is still starved after the exchange may notify again
  // (after the root's cooldown) — the repeated-synchronization pathology.
  r.low_notified = false;
  n.set_wait_category(TimeCategory::kIdle);
}

void Runtime::on_completed(dmcs::Node& n, Message&& msg) {
  PREMA_CHECK_MSG(n.rank() == 0, "completion report reached a non-root");
  ByteReader r(msg.payload);
  completed_units_ += r.get<std::int64_t>();
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

mol::MobilePtr Context::add_object(std::unique_ptr<mol::MobileObject> obj) {
  return mol_->add_object(std::move(obj));
}

void Context::message(const mol::MobilePtr& target, mol::ObjectHandlerId handler,
                      std::vector<std::uint8_t> payload, double weight) {
  mol_->message(target, handler, std::move(payload), weight);
}

mol::MobileObject* Context::local(const mol::MobilePtr& ptr) {
  return mol_->find(ptr);
}

}  // namespace prema::srp
