#include "bench_support/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "support/assert.hpp"

namespace prema::bench {

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

JsonWriter::~JsonWriter() {
  PREMA_CHECK_MSG(stack_.empty(), "JsonWriter destroyed with open scopes");
}

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[40];
  // Shortest representation that round-trips: try increasing precision.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

void JsonWriter::separator(const char* key) {
  const bool in_object = !stack_.empty() && stack_.back() == '{';
  PREMA_CHECK_MSG(stack_.empty() || (key != nullptr) == in_object,
                  "JsonWriter: key required inside objects, forbidden in arrays");
  if (!stack_.empty()) {
    if (has_child_.back()) os_ << ",";
    has_child_.back() = true;
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  if (key != nullptr && in_object) os_ << "\"" << key << "\": ";
}

void JsonWriter::begin_object(const char* key) {
  separator(key);
  os_ << "{";
  stack_.push_back('{');
  has_child_.push_back(false);
}

void JsonWriter::end_object() {
  PREMA_CHECK_MSG(!stack_.empty() && stack_.back() == '{',
                  "JsonWriter: end_object without begin_object");
  const bool had = has_child_.back();
  stack_.pop_back();
  has_child_.pop_back();
  if (had) {
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  os_ << "}";
  if (stack_.empty()) os_ << "\n";
}

void JsonWriter::begin_array(const char* key) {
  separator(key);
  os_ << "[";
  stack_.push_back('[');
  has_child_.push_back(false);
}

void JsonWriter::end_array() {
  PREMA_CHECK_MSG(!stack_.empty() && stack_.back() == '[',
                  "JsonWriter: end_array without begin_array");
  const bool had = has_child_.back();
  stack_.pop_back();
  has_child_.pop_back();
  if (had) {
    os_ << "\n";
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }
  os_ << "]";
}

namespace {
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += *s; break;
    }
  }
  return out;
}
}  // namespace

void JsonWriter::field(const char* key, double v) {
  separator(key);
  os_ << format_double(v);
}

void JsonWriter::field(const char* key, std::uint64_t v) {
  separator(key);
  os_ << v;
}

void JsonWriter::field(const char* key, std::int64_t v) {
  separator(key);
  os_ << v;
}

void JsonWriter::field(const char* key, int v) {
  separator(key);
  os_ << v;
}

void JsonWriter::field(const char* key, bool v) {
  separator(key);
  os_ << (v ? "true" : "false");
}

void JsonWriter::field(const char* key, const std::string& v) {
  field(key, v.c_str());
}

void JsonWriter::field(const char* key, const char* v) {
  separator(key);
  os_ << "\"" << json_escape(v) << "\"";
}

void JsonWriter::element(double v) {
  separator(nullptr);
  os_ << format_double(v);
}

void JsonWriter::element(std::uint64_t v) {
  separator(nullptr);
  os_ << v;
}

void JsonWriter::element(const std::string& v) {
  separator(nullptr);
  os_ << "\"" << json_escape(v.c_str()) << "\"";
}

BenchReport::BenchReport(const std::string& path, const char* benchmark,
                         const char* description)
    : os_(path), jw_(os_) {
  jw_.begin_object();
  jw_.field("benchmark", benchmark);
  jw_.field("description", description);
}

void BenchReport::begin_runs() {
  PREMA_CHECK_MSG(!runs_open_, "BenchReport: begin_runs called twice");
  jw_.begin_array("runs");
  runs_open_ = true;
}

BenchReport::~BenchReport() {
  if (runs_open_) jw_.end_array();
  jw_.end_object();
}

}  // namespace prema::bench
