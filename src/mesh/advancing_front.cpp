#include "mesh/advancing_front.hpp"

#include <algorithm>
#include <cmath>

#include "mesh/spatial_grid.hpp"
#include "support/assert.hpp"

namespace prema::mesh {

double TetMesh::total_volume() const {
  double vol = 0.0;
  for (const auto& t : tets) {
    vol += signed_volume(points[static_cast<std::size_t>(t.v[0])],
                         points[static_cast<std::size_t>(t.v[1])],
                         points[static_cast<std::size_t>(t.v[2])],
                         points[static_cast<std::size_t>(t.v[3])]);
  }
  return vol;
}

double TetMesh::min_quality() const {
  double q = 1.0;
  for (const auto& t : tets) {
    q = std::min(q, tet_quality(points[static_cast<std::size_t>(t.v[0])],
                                points[static_cast<std::size_t>(t.v[1])],
                                points[static_cast<std::size_t>(t.v[2])],
                                points[static_cast<std::size_t>(t.v[3])]));
  }
  return q;
}

class AdvancingFront::SpatialIndexes {
 public:
  explicit SpatialIndexes(double cell) : points(cell) {}
  SpatialGrid points;
};

AdvancingFront::~AdvancingFront() = default;

std::uint64_t AdvancingFront::face_key(const Face& f) {
  std::array<PointId, 3> s = f.v;
  std::sort(s.begin(), s.end());
  PREMA_CHECK_MSG(s[2] < (1 << 21), "advancing front supports < 2^21 points");
  return (static_cast<std::uint64_t>(s[0]) << 42) |
         (static_cast<std::uint64_t>(s[1]) << 21) |
         static_cast<std::uint64_t>(s[2]);
}

AdvancingFront::AdvancingFront(std::vector<Vec3> points,
                               std::vector<Face> boundary_faces,
                               AftOptions options)
    : opts_(options) {
  mesh_.points = std::move(points);
  PREMA_CHECK_MSG(!mesh_.points.empty(), "mesher needs points");
  Vec3 lo = mesh_.points[0], hi = mesh_.points[0];
  for (const auto& p : mesh_.points) {
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
  }
  domain_diag_ = std::max(1e-12, distance(lo, hi));
  double min_edge = domain_diag_;
  for (const auto& f : boundary_faces) {
    min_edge =
        std::min(min_edge, distance(mesh_.points[static_cast<std::size_t>(f.v[0])],
                                    mesh_.points[static_cast<std::size_t>(f.v[1])]));
  }
  idx_ = std::make_unique<SpatialIndexes>(std::max(1e-9, min_edge));
  for (std::size_t i = 0; i < mesh_.points.size(); ++i) {
    idx_->points.insert(static_cast<std::int32_t>(i), mesh_.points[i]);
  }
  for (const auto& f : boundary_faces) push_front(f);
}

std::size_t AdvancingFront::front_size() const { return on_front_.size(); }

void AdvancingFront::push_front(const Face& f) {
  FrontFace ff;
  ff.face = f;
  ff.area = triangle_area(pt(f.v[0]), pt(f.v[1]), pt(f.v[2]));
  const std::size_t idx = faces_.size();
  const auto key = face_key(f);
  PREMA_CHECK_MSG(on_front_.find(key) == on_front_.end(),
                  "duplicate face pushed to the front");
  faces_.push_back(ff);
  on_front_.emplace(key, idx);
  heap_.push_back(idx);
  std::push_heap(heap_.begin(), heap_.end(), [this](std::size_t x, std::size_t y) {
    return faces_[x].area > faces_[y].area;
  });
}

void AdvancingFront::add_or_cancel(const Face& f) {
  const auto key = face_key(f);
  auto it = on_front_.find(key);
  if (it != on_front_.end()) {
    faces_[it->second].alive = false;
    on_front_.erase(it);
    closed_.insert(key);
    return;
  }
  PREMA_CHECK_MSG(closed_.count(key) == 0, "re-opening an interior face");
  push_front(f);
}

PointId AdvancingFront::delaunay_apex(const Face& f) {
  const Vec3 &a = pt(f.v[0]), &b = pt(f.v[1]), &c = pt(f.v[2]);
  const Vec3 centroid = triangle_centroid(a, b, c);
  const Vec3 normal = triangle_normal(a, b, c);
  const double local = std::sqrt(std::max(1e-30, 2.0 * triangle_area(a, b, c)));
  const double vol_eps = 1e-12 * local * local * local;

  auto is_face_vertex = [&](PointId id) {
    return id == f.v[0] || id == f.v[1] || id == f.v[2];
  };

  // Among positive-side candidates, the Delaunay neighbour minimizes the
  // signed height of the circumcenter along the face normal.
  PointId best = -1;
  double best_h = 1e300;
  auto consider = [&](std::int32_t id, const Vec3& p) {
    if (is_face_vertex(id)) return;
    if (signed_volume(a, b, c, p) <= vol_eps) return;
    Vec3 center;
    double r2;
    if (!tet_circumsphere(a, b, c, p, center, r2)) return;
    const double h = dot(center - centroid, normal);
    if (h < best_h - 1e-12 * local ||
        (std::abs(h - best_h) <= 1e-12 * local && (best < 0 || id < best))) {
      best = id;
      best_h = h;
    }
  };

  double radius = opts_.search_factor * local;
  while (best < 0 && radius < 4.0 * domain_diag_) {
    idx_->points.for_each_in_ball(centroid, radius, consider);
    radius *= 2.0;
  }
  if (best < 0) return -1;

  // Verify / repair: the chosen tet's circumsphere must be empty. A strictly
  // interior positive-side point is a better neighbour; take it and re-check.
  for (int iter = 0; iter < 64; ++iter) {
    const Vec3& d = pt(best);
    Vec3 center;
    double r2;
    if (!tet_circumsphere(a, b, c, d, center, r2)) return best;
    PointId violator = -1;
    double deepest = r2 * (1.0 - 1e-10);
    idx_->points.for_each_in_ball(
        center, std::sqrt(r2), [&](std::int32_t id, const Vec3& p) {
          if (is_face_vertex(id) || id == best) return;
          if (signed_volume(a, b, c, p) <= vol_eps) return;  // wrong side
          const double d2 = norm2(p - center);
          if (d2 < deepest) {
            deepest = d2;
            violator = id;
          }
        });
    if (violator < 0) return best;
    best = violator;
  }
  return best;
}

bool AdvancingFront::commit_tet(const Face& f, PointId apex) {
  // Topological gate: a side triangle must be brand new, or the exact mirror
  // of a live front face (which it then cancels). A triangle already interior
  // or already on the front with the same orientation means the point set has
  // a (near-)degeneracy the Delaunay criterion resolved inconsistently —
  // reject and let the face retry with the conflict resolved elsewhere.
  const std::array<Face, 3> new_faces = {Face{{f.v[0], f.v[1], apex}},
                                         Face{{f.v[1], f.v[2], apex}},
                                         Face{{f.v[2], f.v[0], apex}}};
  for (const Face& nf : new_faces) {
    const auto key = face_key(nf);
    if (closed_.count(key) != 0) return false;
    auto it = on_front_.find(key);
    if (it == on_front_.end()) continue;
    const auto& existing = faces_[it->second].face.v;
    for (int r = 0; r < 3; ++r) {
      if (existing[0] == nf.v[static_cast<std::size_t>(r)] &&
          existing[1] == nf.v[static_cast<std::size_t>((r + 1) % 3)] &&
          existing[2] == nf.v[static_cast<std::size_t>((r + 2) % 3)]) {
        return false;  // same orientation already on the front
      }
    }
  }

  mesh_.tets.push_back(Tet{{f.v[0], f.v[1], f.v[2], apex}});
  ++stats_.tets_created;
  closed_.insert(face_key(f));
  for (const Face& nf : new_faces) add_or_cancel(nf);
  return true;
}

AftStats AdvancingFront::run() {
  const std::int64_t max_steps =
      opts_.max_steps_per_point *
      static_cast<std::int64_t>(std::max<std::size_t>(mesh_.points.size(), 1));
  auto heap_cmp = [this](std::size_t x, std::size_t y) {
    return faces_[x].area > faces_[y].area;
  };

  std::int64_t steps = 0;
  while (!heap_.empty() && steps < max_steps) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
    const std::size_t fi = heap_.back();
    heap_.pop_back();
    const auto key = face_key(faces_[fi].face);
    auto it = on_front_.find(key);
    if (!faces_[fi].alive || it == on_front_.end() || it->second != fi) continue;
    ++steps;
    ++stats_.faces_processed;

    const Face f = faces_[fi].face;
    const PointId apex = delaunay_apex(f);
    bool built = false;
    if (apex >= 0) {
      // Retire the face first; commit_tet's gate sees a consistent front.
      faces_[fi].alive = false;
      on_front_.erase(it);
      built = commit_tet(f, apex);
      if (!built) {
        faces_[fi].alive = true;
        on_front_.emplace(key, fi);
      }
    }
    if (!built) {
      ++stats_.postponed;
      faces_[fi].area *= 1.7;  // sink it; neighbours may resolve the conflict
      heap_.push_back(fi);
      std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
    }
  }
  stats_.completed = on_front_.empty();
  return stats_;
}

// ---------------------------------------------------------------------------
// Point / surface generators
// ---------------------------------------------------------------------------

namespace {

/// True if p is strictly inside the circumcircle of coplanar triangle (a,b,c).
bool in_circumcircle(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& p) {
  const Vec3 ab = b - a, ac = c - a;
  const Vec3 n = cross(ab, ac);
  const double n2 = norm2(n);
  if (n2 <= 0.0) return false;
  const Vec3 cc =
      a + (cross(n, ab) * norm2(ac) + cross(ac, n) * norm2(ab)) / (2.0 * n2);
  const double r2 = norm2(a - cc);
  return norm2(p - cc) < r2 * (1.0 - 1e-12);
}

}  // namespace

void box_surface(const Vec3& lo, const Vec3& hi, int divisions,
                 std::vector<Vec3>& points, std::vector<Face>& faces,
                 std::uint64_t seed) {
  PREMA_CHECK(divisions >= 1);
  PREMA_CHECK(hi.x > lo.x && hi.y > lo.y && hi.z > lo.z);
  points.clear();
  faces.clear();
  const int n = divisions;
  const Vec3 step{(hi.x - lo.x) / n, (hi.y - lo.y) / n, (hi.z - lo.z) / n};
  std::unordered_map<std::int64_t, PointId> ids;
  auto lattice_id = [n](int i, int j, int k) {
    return (static_cast<std::int64_t>(i) * (n + 1) + j) * (n + 1) + k;
  };
  auto get = [&](int i, int j, int k) -> PointId {
    const auto lid = lattice_id(i, j, k);
    auto it = ids.find(lid);
    if (it != ids.end()) return it->second;
    Vec3 p{lo.x + step.x * i, lo.y + step.y * j, lo.z + step.z * k};
    // Jitter tangentially: free axes are those not pinned to a box face, so
    // every point stays exactly on the surface and the volume stays exact.
    util::SplitMix64 sm(seed ^ static_cast<std::uint64_t>(lid) * 0x9E3779B97F4A7C15ULL);
    auto jit = [&sm](double amplitude) {
      return amplitude * (static_cast<double>(sm.next() >> 11) * 0x1.0p-53 - 0.5);
    };
    if (i != 0 && i != n) p.x += jit(0.35 * step.x);
    if (j != 0 && j != n) p.y += jit(0.35 * step.y);
    if (k != 0 && k != n) p.z += jit(0.35 * step.z);
    const auto id = static_cast<PointId>(points.size());
    points.push_back(p);
    ids.emplace(lid, id);
    return id;
  };
  // Each surface quad is split along its locally Delaunay diagonal so the
  // boundary triangulation conforms to the 3-D Delaunay complex.
  auto quad = [&](PointId p00, PointId p10, PointId p11, PointId p01) {
    const Vec3 &a = points[static_cast<std::size_t>(p00)],
               &b = points[static_cast<std::size_t>(p10)],
               &c = points[static_cast<std::size_t>(p11)],
               &d = points[static_cast<std::size_t>(p01)];
    if (in_circumcircle(a, b, c, d) || in_circumcircle(a, c, d, b)) {
      faces.push_back(Face{{p10, p11, p01}});
      faces.push_back(Face{{p10, p01, p00}});
    } else {
      faces.push_back(Face{{p00, p10, p11}});
      faces.push_back(Face{{p00, p11, p01}});
    }
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      quad(get(i, j, 0), get(i + 1, j, 0), get(i + 1, j + 1, 0), get(i, j + 1, 0));
      quad(get(i, j, n), get(i, j + 1, n), get(i + 1, j + 1, n), get(i + 1, j, n));
      quad(get(i, 0, j), get(i, 0, j + 1), get(i + 1, 0, j + 1), get(i + 1, 0, j));
      quad(get(i, n, j), get(i + 1, n, j), get(i + 1, n, j + 1), get(i, n, j + 1));
      quad(get(0, i, j), get(0, i + 1, j), get(0, i + 1, j + 1), get(0, i, j + 1));
      quad(get(n, i, j), get(n, i, j + 1), get(n, i + 1, j + 1), get(n, i + 1, j));
    }
  }
}

namespace {

void octree_points(const Vec3& lo, const Vec3& hi, const SizingField& sizing,
                   util::SplitMix64& sm, int depth, int max_depth,
                   std::vector<Vec3>& out) {
  const Vec3 center = (lo + hi) * 0.5;
  const double size = std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z});
  if (depth >= max_depth || size <= sizing.size_at(center)) {
    auto jit = [&sm](double amplitude) {
      return amplitude * (static_cast<double>(sm.next() >> 11) * 0x1.0p-53 - 0.5);
    };
    out.push_back(center + Vec3{jit(0.5 * size), jit(0.5 * size), jit(0.5 * size)});
    return;
  }
  for (int oct = 0; oct < 8; ++oct) {
    const Vec3 clo{(oct & 1) != 0 ? center.x : lo.x, (oct & 2) != 0 ? center.y : lo.y,
                   (oct & 4) != 0 ? center.z : lo.z};
    const Vec3 chi{(oct & 1) != 0 ? hi.x : center.x, (oct & 2) != 0 ? hi.y : center.y,
                   (oct & 4) != 0 ? hi.z : center.z};
    octree_points(clo, chi, sizing, sm, depth + 1, max_depth, out);
  }
}

}  // namespace

std::vector<Vec3> interior_points(const Vec3& lo, const Vec3& hi,
                                  const SizingField& sizing, std::uint64_t seed,
                                  int max_depth) {
  std::vector<Vec3> out;
  util::SplitMix64 sm(seed);
  // Shrink the sampled box so interior points keep a margin from the
  // boundary lattice (where they would fight the surface triangulation).
  const Vec3 extent = hi - lo;
  const double margin_frac = 0.08;
  const Vec3 mlo = lo + extent * margin_frac;
  const Vec3 mhi = hi - extent * margin_frac;
  octree_points(mlo, mhi, sizing, sm, 0, max_depth, out);
  return out;
}

}  // namespace prema::mesh
