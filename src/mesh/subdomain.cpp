#include "mesh/subdomain.hpp"

#include "support/assert.hpp"

namespace prema::mesh {

MeshSubdomain::MeshSubdomain(Vec3 lo, Vec3 hi, int boundary_divisions,
                             std::uint64_t seed)
    : lo_(lo), hi_(hi), divisions_(boundary_divisions), seed_(seed) {
  PREMA_CHECK_MSG(boundary_divisions >= 2,
                  "subdomains need >= 2 boundary divisions (general position)");
}

AftStats MeshSubdomain::refine(const SizingField& sizing) {
  std::vector<Vec3> points;
  std::vector<Face> faces;
  box_surface(lo_, hi_, divisions_, points, faces,
              seed_ + static_cast<std::uint64_t>(phases_done_));
  auto interior = interior_points(lo_, hi_, sizing,
                                  seed_ * 31 + static_cast<std::uint64_t>(phases_done_));
  points.insert(points.end(), interior.begin(), interior.end());
  AdvancingFront aft(std::move(points), std::move(faces));
  const AftStats stats = aft.run();
  last_mesh_ = aft.take_mesh();
  total_tets_ += stats.tets_created;
  ++phases_done_;
  return stats;
}

void MeshSubdomain::serialize(util::ByteWriter& w) const {
  w.put<double>(lo_.x);
  w.put<double>(lo_.y);
  w.put<double>(lo_.z);
  w.put<double>(hi_.x);
  w.put<double>(hi_.y);
  w.put<double>(hi_.z);
  w.put<std::int32_t>(divisions_);
  w.put<std::uint64_t>(seed_);
  w.put<std::int64_t>(total_tets_);
  w.put<std::int32_t>(phases_done_);
  // The last mesh travels too: migration cost must reflect the data a real
  // subdomain carries.
  w.put<std::uint64_t>(last_mesh_.points.size());
  for (const auto& p : last_mesh_.points) {
    w.put<double>(p.x);
    w.put<double>(p.y);
    w.put<double>(p.z);
  }
  w.put<std::uint64_t>(last_mesh_.tets.size());
  for (const auto& t : last_mesh_.tets) {
    for (const auto v : t.v) w.put<PointId>(v);
  }
}

std::unique_ptr<mol::MobileObject> MeshSubdomain::deserialize(util::ByteReader& r) {
  Vec3 lo, hi;
  lo.x = r.get<double>();
  lo.y = r.get<double>();
  lo.z = r.get<double>();
  hi.x = r.get<double>();
  hi.y = r.get<double>();
  hi.z = r.get<double>();
  const auto divisions = r.get<std::int32_t>();
  const auto seed = r.get<std::uint64_t>();
  auto sub = std::make_unique<MeshSubdomain>(lo, hi, divisions, seed);
  sub->total_tets_ = r.get<std::int64_t>();
  sub->phases_done_ = r.get<std::int32_t>();
  const auto npts = r.get<std::uint64_t>();
  sub->last_mesh_.points.resize(npts);
  for (auto& p : sub->last_mesh_.points) {
    p.x = r.get<double>();
    p.y = r.get<double>();
    p.z = r.get<double>();
  }
  const auto ntets = r.get<std::uint64_t>();
  sub->last_mesh_.tets.resize(ntets);
  for (auto& t : sub->last_mesh_.tets) {
    for (auto& v : t.v) v = r.get<PointId>();
  }
  return sub;
}

Vec3 crack_tip_position(int phase, std::uint64_t seed) {
  // A deterministic walk that stays inside the unit cube: low-discrepancy
  // hops so consecutive phases land in different subdomain neighbourhoods.
  util::SplitMix64 sm(seed + 0x1234ULL * static_cast<std::uint64_t>(phase));
  auto u = [&sm] { return static_cast<double>(sm.next() >> 11) * 0x1.0p-53; };
  return Vec3{0.1 + 0.8 * u(), 0.1 + 0.8 * u(), 0.1 + 0.8 * u()};
}

double refine_cost_mflop(std::int64_t tets) {
  // 0.5 Mflop of generator work per element: deliberately on the heavy side
  // so that the modest meshes we can afford to build for real (thousands of
  // elements per subdomain) represent the paper's production-sized
  // subdomains on the emulated 333 Mflop/s processor — seconds per hot
  // subdomain, tenths of a second for background ones.
  return 0.5 * static_cast<double>(tets);
}

}  // namespace prema::mesh
