#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mesh/vec3.hpp"

/// \file spatial_grid.hpp
/// Uniform hash grid over 3-D points: the advancing front's proximity index
/// (nearest-vertex candidates, "is anything too close to this apex" checks).

namespace prema::mesh {

class SpatialGrid {
 public:
  /// `cell` is the bucket edge length; pick it near the smallest feature
  /// size so neighbourhood queries touch O(1) buckets.
  explicit SpatialGrid(double cell);

  /// Insert point `id` at position p (positions are stored by the caller;
  /// the grid keeps (id, position) pairs for query convenience).
  void insert(std::int32_t id, const Vec3& p);

  /// Remove a previously inserted point (exact position required).
  void remove(std::int32_t id, const Vec3& p);

  /// Visit every point within `radius` of `center` (conservative: visits
  /// candidates in overlapping buckets, filters by true distance).
  void for_each_in_ball(const Vec3& center, double radius,
                        const std::function<void(std::int32_t, const Vec3&)>& fn) const;

  /// Ids of all points within `radius` of `center`.
  [[nodiscard]] std::vector<std::int32_t> query_ball(const Vec3& center,
                                                     double radius) const;

  /// Nearest point to `center` within `max_radius`, or -1.
  [[nodiscard]] std::int32_t nearest(const Vec3& center, double max_radius) const;

  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  struct Key {
    std::int64_t x, y, z;
    auto operator<=>(const Key&) const = default;
  };

  [[nodiscard]] Key key_of(const Vec3& p) const;

  double cell_;
  /// Ordered map: for_each_in_ball's huge-radius path iterates every bucket
  /// feeding the caller's callback, so iteration order must be deterministic.
  std::map<Key, std::vector<std::pair<std::int32_t, Vec3>>> buckets_;
  std::size_t count_ = 0;
};

}  // namespace prema::mesh
