#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/vec3.hpp"

/// \file geometry.hpp
/// Geometric predicates and measures used by the advancing-front
/// tetrahedralizer. Double precision with epsilon tolerances: the domains we
/// mesh (axis-aligned boxes with smooth sizing) stay far away from the
/// degeneracies that demand exact arithmetic.

namespace prema::mesh {

using PointId = std::int32_t;

/// A tetrahedron as 4 point indices; (t1, t2, t3) seen from outside t0 form
/// a counter-clockwise triangle (positive signed volume).
struct Tet {
  std::array<PointId, 4> v;
};

/// An oriented triangle face of the advancing front: the region still to be
/// meshed lies on the side its normal points into.
struct Face {
  std::array<PointId, 3> v;
};

/// Signed volume of the tetrahedron (a, b, c, d): positive when d lies on
/// the side of triangle (a,b,c) that its counter-clockwise normal points to.
double signed_volume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);

/// Area of triangle (a, b, c).
double triangle_area(const Vec3& a, const Vec3& b, const Vec3& c);

/// Unit normal of triangle (a, b, c) by the right-hand rule.
Vec3 triangle_normal(const Vec3& a, const Vec3& b, const Vec3& c);

/// Centroid of triangle (a, b, c).
Vec3 triangle_centroid(const Vec3& a, const Vec3& b, const Vec3& c);

/// Tetrahedron quality in (0, 1]: normalized ratio of volume to the cube of
/// the RMS edge length (1 for the regular tet, -> 0 for slivers). Negative
/// volume yields a negative quality.
double tet_quality(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);

/// Circumcenter and squared circumradius of tetrahedron (a, b, c, d).
/// Returns false for (near-)degenerate tets.
bool tet_circumsphere(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                      Vec3& center, double& radius2);

/// True if p is strictly inside the tetrahedron (a, b, c, d) given the tet
/// has positive orientation.
bool point_in_tet(const Vec3& p, const Vec3& a, const Vec3& b, const Vec3& c,
                  const Vec3& d, double eps = 1e-12);

/// Squared distance from point p to triangle (a, b, c).
double point_triangle_distance2(const Vec3& p, const Vec3& a, const Vec3& b,
                                const Vec3& c);

/// True if segment (p, q) properly intersects triangle (a, b, c) —
/// endpoints touching the triangle's plane within eps do not count.
bool segment_intersects_triangle(const Vec3& p, const Vec3& q, const Vec3& a,
                                 const Vec3& b, const Vec3& c,
                                 double eps = 1e-12);

/// True if the two triangles are (nearly) coplanar AND their interiors
/// overlap with positive area. Triangles that merely share an edge or a
/// vertex do not count. The advancing front uses this to reject tets whose
/// side face would lie on top of an existing front face with a different
/// triangulation (the classic boundary-plane leak).
bool coplanar_triangles_overlap(const Vec3& a1, const Vec3& b1, const Vec3& c1,
                                const Vec3& a2, const Vec3& b2, const Vec3& c2);

}  // namespace prema::mesh
