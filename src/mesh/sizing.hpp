#pragma once

#include <memory>

#include "mesh/vec3.hpp"

/// \file sizing.hpp
/// Target element-size fields driving the advancing front. Adaptivity enters
/// the mesher entirely through these: a crack-tip field makes the subdomains
/// near the (moving) tip explode in element count — the paper's motivating
/// multi-scale scenario (§1).

namespace prema::mesh {

/// h(x): desired local edge length at point x. Implementations must be
/// smooth enough that neighbouring elements differ by a bounded factor.
class SizingField {
 public:
  virtual ~SizingField() = default;
  [[nodiscard]] virtual double size_at(const Vec3& p) const = 0;
};

/// Constant size everywhere.
class UniformSizing final : public SizingField {
 public:
  explicit UniformSizing(double h) : h_(h) {}
  [[nodiscard]] double size_at(const Vec3&) const override { return h_; }

 private:
  double h_;
};

/// Fine resolution near a point (the crack tip), graded back to the coarse
/// background size. Inside the core (core_fraction * radius around the tip)
/// the size is pinned to h_min — the fully refined process zone — and grades
/// linearly up to h_max at the influence radius.
class CrackTipSizing final : public SizingField {
 public:
  CrackTipSizing(Vec3 tip, double h_min, double h_max, double radius,
                 double core_fraction = 0.4)
      : tip_(tip),
        h_min_(h_min),
        h_max_(h_max),
        radius_(radius),
        core_(core_fraction) {}

  [[nodiscard]] double size_at(const Vec3& p) const override {
    const double d = distance(p, tip_);
    if (d >= radius_) return h_max_;
    const double t = d / radius_;
    if (t <= core_) return h_min_;
    return h_min_ + (h_max_ - h_min_) * (t - core_) / (1.0 - core_);
  }

  void set_tip(const Vec3& tip) { tip_ = tip; }
  [[nodiscard]] const Vec3& tip() const { return tip_; }

 private:
  Vec3 tip_;
  double h_min_;
  double h_max_;
  double radius_;
  double core_;
};

}  // namespace prema::mesh
