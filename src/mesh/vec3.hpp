#pragma once

#include <cmath>

/// \file vec3.hpp
/// Minimal 3-D vector for the advancing-front mesher.

namespace prema::mesh {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  friend Vec3 operator+(const Vec3& a, const Vec3& b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3 operator-(const Vec3& a, const Vec3& b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3 operator*(const Vec3& a, double s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend Vec3 operator*(double s, const Vec3& a) { return a * s; }
  friend Vec3 operator/(const Vec3& a, double s) {
    return {a.x / s, a.y / s, a.z / s};
  }
  Vec3& operator+=(const Vec3& b) {
    x += b.x;
    y += b.y;
    z += b.z;
    return *this;
  }

  friend bool operator==(const Vec3&, const Vec3&) = default;
};

inline double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

inline double norm2(const Vec3& a) { return dot(a, a); }
inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }

inline Vec3 normalized(const Vec3& a) {
  const double n = norm(a);
  return n > 0.0 ? a / n : Vec3{};
}

inline double distance(const Vec3& a, const Vec3& b) { return norm(a - b); }

}  // namespace prema::mesh
