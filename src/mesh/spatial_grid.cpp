#include "mesh/spatial_grid.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace prema::mesh {

SpatialGrid::SpatialGrid(double cell) : cell_(cell) {
  PREMA_CHECK_MSG(cell > 0.0, "grid cell must be positive");
}

SpatialGrid::Key SpatialGrid::key_of(const Vec3& p) const {
  return {static_cast<std::int64_t>(std::floor(p.x / cell_)),
          static_cast<std::int64_t>(std::floor(p.y / cell_)),
          static_cast<std::int64_t>(std::floor(p.z / cell_))};
}

void SpatialGrid::insert(std::int32_t id, const Vec3& p) {
  buckets_[key_of(p)].emplace_back(id, p);
  ++count_;
}

void SpatialGrid::remove(std::int32_t id, const Vec3& p) {
  auto it = buckets_.find(key_of(p));
  PREMA_CHECK_MSG(it != buckets_.end(), "removing a point the grid never saw");
  auto& v = it->second;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i].first == id) {
      v[i] = v.back();
      v.pop_back();
      --count_;
      if (v.empty()) buckets_.erase(it);
      return;
    }
  }
  PREMA_CHECK_MSG(false, "removing a point the grid never saw");
}

void SpatialGrid::for_each_in_ball(
    const Vec3& center, double radius,
    const std::function<void(std::int32_t, const Vec3&)>& fn) const {
  const double r2 = radius * radius;
  const Key lo = key_of({center.x - radius, center.y - radius, center.z - radius});
  const Key hi = key_of({center.x + radius, center.y + radius, center.z + radius});
  // Huge balls (e.g. circumspheres of near-degenerate faces) would touch far
  // more cells than exist: iterating the occupied buckets directly caps the
  // cost at O(#points) regardless of the radius.
  const double cells = static_cast<double>(hi.x - lo.x + 1) *
                       static_cast<double>(hi.y - lo.y + 1) *
                       static_cast<double>(hi.z - lo.z + 1);
  if (cells > 2.0 * static_cast<double>(buckets_.size()) + 16.0) {
    for (const auto& [key, bucket] : buckets_) {
      for (const auto& [id, p] : bucket) {
        if (norm2(p - center) <= r2) fn(id, p);
      }
    }
    return;
  }
  for (std::int64_t x = lo.x; x <= hi.x; ++x) {
    for (std::int64_t y = lo.y; y <= hi.y; ++y) {
      for (std::int64_t z = lo.z; z <= hi.z; ++z) {
        auto it = buckets_.find(Key{x, y, z});
        if (it == buckets_.end()) continue;
        for (const auto& [id, p] : it->second) {
          if (norm2(p - center) <= r2) fn(id, p);
        }
      }
    }
  }
}

std::vector<std::int32_t> SpatialGrid::query_ball(const Vec3& center,
                                                  double radius) const {
  std::vector<std::int32_t> out;
  for_each_in_ball(center, radius,
                   [&out](std::int32_t id, const Vec3&) { out.push_back(id); });
  return out;
}

std::int32_t SpatialGrid::nearest(const Vec3& center, double max_radius) const {
  std::int32_t best = -1;
  double best_d2 = max_radius * max_radius;
  for_each_in_ball(center, max_radius, [&](std::int32_t id, const Vec3& p) {
    const double d2 = norm2(p - center);
    if (d2 <= best_d2) {
      best_d2 = d2;
      best = id;
    }
  });
  return best;
}

}  // namespace prema::mesh
