#include "mesh/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace prema::mesh {

double signed_volume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  return dot(cross(b - a, c - a), d - a) / 6.0;
}

double triangle_area(const Vec3& a, const Vec3& b, const Vec3& c) {
  return 0.5 * norm(cross(b - a, c - a));
}

Vec3 triangle_normal(const Vec3& a, const Vec3& b, const Vec3& c) {
  return normalized(cross(b - a, c - a));
}

Vec3 triangle_centroid(const Vec3& a, const Vec3& b, const Vec3& c) {
  return (a + b + c) / 3.0;
}

double tet_quality(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  const double vol = signed_volume(a, b, c, d);
  const double e2 = norm2(b - a) + norm2(c - a) + norm2(d - a) + norm2(c - b) +
                    norm2(d - b) + norm2(d - c);
  if (e2 <= 0.0) return 0.0;
  const double rms = std::sqrt(e2 / 6.0);
  // Regular tet: vol = edge^3 / (6 * sqrt(2)); normalize so it scores 1.
  return vol * 6.0 * std::sqrt(2.0) / (rms * rms * rms);
}

bool tet_circumsphere(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d,
                      Vec3& center, double& radius2) {
  // Solve 2 * (p_i - a) . x = |p_i|^2 - |a|^2 for the circumcenter.
  const Vec3 ab = b - a, ac = c - a, ad = d - a;
  const double m[3][3] = {{ab.x, ab.y, ab.z}, {ac.x, ac.y, ac.z}, {ad.x, ad.y, ad.z}};
  const double rhs[3] = {0.5 * norm2(ab), 0.5 * norm2(ac), 0.5 * norm2(ad)};
  const double det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
                     m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
                     m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  const double scale = std::max({norm2(ab), norm2(ac), norm2(ad)});
  if (std::abs(det) < 1e-12 * scale * std::sqrt(scale)) return false;
  // Cramer's rule.
  auto det3 = [](const double mm[3][3]) {
    return mm[0][0] * (mm[1][1] * mm[2][2] - mm[1][2] * mm[2][1]) -
           mm[0][1] * (mm[1][0] * mm[2][2] - mm[1][2] * mm[2][0]) +
           mm[0][2] * (mm[1][0] * mm[2][1] - mm[1][1] * mm[2][0]);
  };
  double mx[3][3], my[3][3], mz[3][3];
  for (int i = 0; i < 3; ++i) {
    mx[i][0] = rhs[i];
    mx[i][1] = m[i][1];
    mx[i][2] = m[i][2];
    my[i][0] = m[i][0];
    my[i][1] = rhs[i];
    my[i][2] = m[i][2];
    mz[i][0] = m[i][0];
    mz[i][1] = m[i][1];
    mz[i][2] = rhs[i];
  }
  const Vec3 rel{det3(mx) / det, det3(my) / det, det3(mz) / det};
  center = a + rel;
  radius2 = norm2(rel);
  return true;
}

bool point_in_tet(const Vec3& p, const Vec3& a, const Vec3& b, const Vec3& c,
                  const Vec3& d, double eps) {
  return signed_volume(a, b, c, p) > eps && signed_volume(a, b, p, d) > eps &&
         signed_volume(a, p, c, d) > eps && signed_volume(p, b, c, d) > eps;
}

double point_triangle_distance2(const Vec3& p, const Vec3& a, const Vec3& b,
                                const Vec3& c) {
  // Ericson, Real-Time Collision Detection: closest point on triangle.
  const Vec3 ab = b - a, ac = c - a, ap = p - a;
  const double d1 = dot(ab, ap), d2 = dot(ac, ap);
  if (d1 <= 0.0 && d2 <= 0.0) return norm2(ap);
  const Vec3 bp = p - b;
  const double d3 = dot(ab, bp), d4 = dot(ac, bp);
  if (d3 >= 0.0 && d4 <= d3) return norm2(bp);
  const double vc = d1 * d4 - d3 * d2;
  if (vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0) {
    const double v = d1 / (d1 - d3);
    return norm2(ap - ab * v);
  }
  const Vec3 cp = p - c;
  const double d5 = dot(ab, cp), d6 = dot(ac, cp);
  if (d6 >= 0.0 && d5 <= d6) return norm2(cp);
  const double vb = d5 * d2 - d1 * d6;
  if (vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0) {
    const double w = d2 / (d2 - d6);
    return norm2(ap - ac * w);
  }
  const double va = d3 * d6 - d5 * d4;
  if (va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0) {
    const double w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
    return norm2(bp - (c - b) * w);
  }
  const double denom = 1.0 / (va + vb + vc);
  const double v = vb * denom, w = vc * denom;
  return norm2(p - (a + ab * v + ac * w));
}

bool segment_intersects_triangle(const Vec3& p, const Vec3& q, const Vec3& a,
                                 const Vec3& b, const Vec3& c, double eps) {
  // Moller-Trumbore with strict interior tests.
  const Vec3 dir = q - p;
  const Vec3 e1 = b - a, e2 = c - a;
  const Vec3 pv = cross(dir, e2);
  const double det = dot(e1, pv);
  if (std::abs(det) < eps) return false;  // parallel
  const double inv = 1.0 / det;
  const Vec3 tv = p - a;
  const double u = dot(tv, pv) * inv;
  if (u <= eps || u >= 1.0 - eps) return false;
  const Vec3 qv = cross(tv, e1);
  const double v = dot(dir, qv) * inv;
  if (v <= eps || u + v >= 1.0 - eps) return false;
  const double t = dot(e2, qv) * inv;
  return t > eps && t < 1.0 - eps;
}

bool coplanar_triangles_overlap(const Vec3& a1, const Vec3& b1, const Vec3& c1,
                                const Vec3& a2, const Vec3& b2, const Vec3& c2) {
  const Vec3 n = cross(b1 - a1, c1 - a1);
  const double nlen = norm(n);
  if (nlen <= 0.0) return false;  // degenerate first triangle
  const Vec3 un = n / nlen;
  const double scale = std::sqrt(nlen);  // ~ edge length
  const double plane_eps = 1e-6 * scale;
  for (const Vec3* p : {&a2, &b2, &c2}) {
    if (std::abs(dot(*p - a1, un)) > plane_eps) return false;  // not coplanar
  }
  // Project both onto an in-plane orthonormal basis and run the separating-
  // axis test over the 6 edge normals. Overlap must be *proper*: shared
  // edges/vertices (zero-area contact) do not count.
  Vec3 u = b1 - a1;
  u = normalized(u);
  const Vec3 v = cross(un, u);
  auto project = [&](const Vec3& p) {
    return std::pair<double, double>{dot(p - a1, u), dot(p - a1, v)};
  };
  const std::array<std::pair<double, double>, 3> t1 = {project(a1), project(b1),
                                                       project(c1)};
  const std::array<std::pair<double, double>, 3> t2 = {project(a2), project(b2),
                                                       project(c2)};
  // SAT projections scale with (coordinate x edge length) ~ nlen; anything
  // shallower than this is contact, not overlap.
  const double margin = 1e-7 * nlen;
  auto separated_by_edges_of = [&](const auto& tri, const auto& other) {
    for (int i = 0; i < 3; ++i) {
      const auto& p0 = tri[static_cast<std::size_t>(i)];
      const auto& p1 = tri[static_cast<std::size_t>((i + 1) % 3)];
      // In-plane edge normal.
      const double ax = -(p1.second - p0.second);
      const double ay = p1.first - p0.first;
      double lo1 = 1e300, hi1 = -1e300, lo2 = 1e300, hi2 = -1e300;
      for (const auto& q : tri) {
        const double s = ax * q.first + ay * q.second;
        lo1 = std::min(lo1, s);
        hi1 = std::max(hi1, s);
      }
      for (const auto& q : other) {
        const double s = ax * q.first + ay * q.second;
        lo2 = std::min(lo2, s);
        hi2 = std::max(hi2, s);
      }
      // Overlap depth on this axis; <= margin means touching only.
      if (std::min(hi1, hi2) - std::max(lo1, lo2) <= margin) return true;
    }
    return false;
  };
  return !separated_by_edges_of(t1, t2) && !separated_by_edges_of(t2, t1);
}

}  // namespace prema::mesh
