#pragma once

#include <cstdint>

#include "mesh/advancing_front.hpp"
#include "mol/mobile_object.hpp"

/// \file subdomain.hpp
/// The parallel mesh-generation application (paper §5): the domain is an
/// axis-aligned box cut into a grid of box subdomains, each registered with
/// the runtime as a mobile object. A refinement phase sends every subdomain
/// a "refine" message carrying the current crack-tip position; the handler
/// runs the real advancing-front mesher over the subdomain at the sizing the
/// crack field induces there and charges compute proportional to the
/// elements it actually created. Subdomains near the tip explode in cost —
/// unpredictably, as the tip moves between phases — which is exactly the
/// highly adaptive, irregular behaviour the balancers are judged on.

namespace prema::mesh {

/// One box subdomain of the global meshing problem, migratable between
/// processors with its accumulated statistics.
class MeshSubdomain : public mol::MobileObject {
 public:
  static constexpr std::uint32_t kTypeId = 7;

  MeshSubdomain(Vec3 lo, Vec3 hi, int boundary_divisions, std::uint64_t seed);

  /// Re-mesh this subdomain under the given sizing field (real work) and
  /// return the step's stats. Accumulates totals.
  AftStats refine(const SizingField& sizing);

  [[nodiscard]] std::uint32_t type_id() const override { return kTypeId; }
  void serialize(util::ByteWriter& w) const override;
  static std::unique_ptr<mol::MobileObject> deserialize(util::ByteReader& r);

  [[nodiscard]] const Vec3& lo() const { return lo_; }
  [[nodiscard]] const Vec3& hi() const { return hi_; }
  [[nodiscard]] Vec3 center() const { return (lo_ + hi_) * 0.5; }
  [[nodiscard]] std::int64_t total_tets() const { return total_tets_; }
  [[nodiscard]] int phases_done() const { return phases_done_; }
  /// The last completed mesh (kept for inspection; not serialized).
  [[nodiscard]] const TetMesh& last_mesh() const { return last_mesh_; }

 private:
  Vec3 lo_, hi_;
  int divisions_;
  std::uint64_t seed_;
  std::int64_t total_tets_ = 0;
  int phases_done_ = 0;
  TetMesh last_mesh_;
};

/// Crack-walk scenario shared by the examples and the mesh benchmark: the
/// crack tip moves through the unit-cube domain along a deterministic
/// pseudo-random walk, one step per phase.
Vec3 crack_tip_position(int phase, std::uint64_t seed);

/// Compute cost (Mflop) the emulated processor is charged for a refinement
/// that created `tets` elements — the paper-era constant of a few tens of
/// kflop of mesh generation work per element.
double refine_cost_mflop(std::int64_t tets);

}  // namespace prema::mesh
