#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mesh/geometry.hpp"
#include "mesh/sizing.hpp"
#include "mesh/vec3.hpp"
#include "support/rng.hpp"

/// \file advancing_front.hpp
/// A 3-D advancing-front tetrahedral mesher of the *Delaunay-wall* family:
/// the point set is fixed up front (boundary lattice + sizing-driven interior
/// points, both deterministically jittered into general position), and the
/// front marches by taking a face and attaching the point chosen by the
/// empty-circumsphere criterion — i.e. the face's Delaunay neighbour. Because
/// every accepted tetrahedron belongs to the (unique) Delaunay
/// tetrahedralization of the point set, tets cannot overlap, opposite fronts
/// match exactly, and the march fills the convex domain completely.
///
/// This is the application class the paper evaluates (a 3-D advancing front
/// mesh generator); see mesh/subdomain.hpp for how subdomains of a larger
/// domain become PREMA mobile objects. Adaptivity enters through the sizing
/// field, which controls the interior point density.

namespace prema::mesh {

/// The produced mesh.
struct TetMesh {
  std::vector<Vec3> points;
  std::vector<Tet> tets;

  [[nodiscard]] double total_volume() const;
  [[nodiscard]] double min_quality() const;
};

struct AftOptions {
  /// Initial candidate-search radius as a multiple of the local face size.
  double search_factor = 2.0;
  /// Hard cap on front steps relative to the point count (safety valve).
  std::int64_t max_steps_per_point = 64;
};

struct AftStats {
  std::int64_t faces_processed = 0;
  std::int64_t tets_created = 0;
  std::int64_t postponed = 0;
  bool completed = false;  ///< front emptied
};

class AdvancingFront {
 public:
  /// `points`: every vertex the mesh may use (boundary first, then interior
  /// Steiner points). `boundary_faces`: a closed oriented surface over the
  /// boundary points whose normals (right-hand rule) point INTO the volume.
  /// Points must be in general position — use the jittered generators below.
  AdvancingFront(std::vector<Vec3> points, std::vector<Face> boundary_faces,
                 AftOptions options = {});
  ~AdvancingFront();

  /// March to completion (or the safety cap). The mesh is in mesh().
  AftStats run();

  [[nodiscard]] const TetMesh& mesh() const { return mesh_; }
  [[nodiscard]] TetMesh&& take_mesh() { return std::move(mesh_); }
  [[nodiscard]] std::size_t front_size() const;

 private:
  struct FrontFace {
    Face face;
    double area;
    bool alive = true;
  };

  [[nodiscard]] const Vec3& pt(PointId id) const {
    return mesh_.points[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] static std::uint64_t face_key(const Face& f);

  void push_front(const Face& f);
  void add_or_cancel(const Face& f);
  /// The Delaunay apex of `f`: the positive-side point whose circumsphere
  /// with the face is empty. Returns -1 if no positive-side point exists.
  [[nodiscard]] PointId delaunay_apex(const Face& f);
  bool commit_tet(const Face& f, PointId apex);

  std::vector<FrontFace> faces_;
  std::vector<std::size_t> heap_;
  std::unordered_map<std::uint64_t, std::size_t> on_front_;
  std::unordered_set<std::uint64_t> closed_;

  class SpatialIndexes;
  std::unique_ptr<SpatialIndexes> idx_;

  AftOptions opts_;
  TetMesh mesh_;
  AftStats stats_;
  double domain_diag_ = 1.0;
};

/// Oriented boundary triangulation of the axis-aligned box [lo, hi] with
/// each edge split into `divisions` segments; normals point inward. Surface
/// points are jittered tangentially (deterministically, from `seed`) into
/// general position; corners stay exact, so the enclosed volume is exactly
/// the box.
void box_surface(const Vec3& lo, const Vec3& hi, int divisions,
                 std::vector<Vec3>& points, std::vector<Face>& faces,
                 std::uint64_t seed = 0x5EEDULL);

/// Sizing-driven interior Steiner points for the box (lo, hi): an adaptive
/// octree is subdivided until each leaf is smaller than the local target
/// size; each leaf emits its jittered centre. Deterministic in `seed`.
std::vector<Vec3> interior_points(const Vec3& lo, const Vec3& hi,
                                  const SizingField& sizing,
                                  std::uint64_t seed = 0x5EEDULL,
                                  int max_depth = 12);

}  // namespace prema::mesh
