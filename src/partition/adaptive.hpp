#pragma once

#include "partition/multilevel.hpp"

/// \file adaptive.hpp
/// The Unified Repartitioning Algorithm (Schloegel-Karypis-Kumar; paper
/// §3.1): when a partitioned workload has drifted out of balance, compute
/// both a scratch-remap candidate (fresh partition, labels remapped to
/// minimize data movement) and a diffusive candidate (tweak the existing
/// partition), score each with |Ecut| + alpha * |Vmove|, and keep the better.
/// `alpha` is the application-supplied Relative Cost Factor trading
/// communication cost against redistribution cost.

namespace prema::part {

struct AdaptiveOptions {
  int k = 2;
  /// Relative Cost Factor (alpha) in |Ecut| + alpha * |Vmove|.
  double alpha = 1.0;
  double imbalance_tolerance = 1.05;
  std::uint64_t seed = 0x51CEDULL;
  int refine_passes = 8;
};

struct AdaptiveResult {
  graph::Partition partition;
  double cost = 0.0;            ///< unified cost of the winner
  double edge_cut = 0.0;
  double migration = 0.0;       ///< |Vmove|
  bool chose_scratch_remap = false;
};

/// Repartition `g` given the current assignment `old_part`.
AdaptiveResult adaptive_repartition(const graph::CsrGraph& g,
                                    const graph::Partition& old_part,
                                    const AdaptiveOptions& opts);

/// Remap part labels of `fresh` to maximize weight overlap with `old_part`
/// (greedy assignment on the k x k overlap matrix) — the "remap" in
/// scratch-remap. Returns the relabelled partition.
graph::Partition remap_labels(const graph::CsrGraph& g,
                              const graph::Partition& old_part,
                              const graph::Partition& fresh, int k);

}  // namespace prema::part
