#include "partition/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace prema::part {

using graph::CsrGraph;
using graph::Partition;
using graph::VertexId;

Partition remap_labels(const CsrGraph& g, const Partition& old_part,
                       const Partition& fresh, int k) {
  // overlap[new][old] = vertex weight assigned to `new` in fresh and `old`
  // in old_part.
  std::vector<double> overlap(static_cast<std::size_t>(k) * k, 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nf = fresh[static_cast<std::size_t>(v)];
    const auto no = old_part[static_cast<std::size_t>(v)];
    overlap[static_cast<std::size_t>(nf) * k + no] += g.vertex_weight(v);
  }
  // Greedy max-overlap assignment new-label -> old-label.
  struct Cell {
    double w;
    int nf, no;
  };
  std::vector<Cell> cells;
  cells.reserve(overlap.size());
  for (int nf = 0; nf < k; ++nf) {
    for (int no = 0; no < k; ++no) {
      cells.push_back({overlap[static_cast<std::size_t>(nf) * k + no], nf, no});
    }
  }
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    if (a.w != b.w) return a.w > b.w;
    if (a.nf != b.nf) return a.nf < b.nf;
    return a.no < b.no;
  });
  std::vector<int> relabel(static_cast<std::size_t>(k), -1);
  std::vector<char> taken(static_cast<std::size_t>(k), 0);
  int assigned = 0;
  for (const auto& c : cells) {
    if (assigned == k) break;
    if (relabel[static_cast<std::size_t>(c.nf)] >= 0 ||
        taken[static_cast<std::size_t>(c.no)]) {
      continue;
    }
    relabel[static_cast<std::size_t>(c.nf)] = c.no;
    taken[static_cast<std::size_t>(c.no)] = 1;
    ++assigned;
  }
  for (int nf = 0; nf < k; ++nf) {
    if (relabel[static_cast<std::size_t>(nf)] < 0) {
      for (int no = 0; no < k; ++no) {
        if (!taken[static_cast<std::size_t>(no)]) {
          relabel[static_cast<std::size_t>(nf)] = no;
          taken[static_cast<std::size_t>(no)] = 1;
          break;
        }
      }
    }
  }
  Partition out(fresh.size());
  for (std::size_t v = 0; v < fresh.size(); ++v) {
    out[v] = relabel[static_cast<std::size_t>(fresh[v])];
  }
  return out;
}

AdaptiveResult adaptive_repartition(const CsrGraph& g, const Partition& old_part,
                                    const AdaptiveOptions& opts) {
  PREMA_CHECK(old_part.size() == static_cast<std::size_t>(g.num_vertices()));
  RefineOptions ropts;
  ropts.imbalance_tolerance = opts.imbalance_tolerance;
  ropts.max_passes = opts.refine_passes;
  ropts.alpha = opts.alpha;

  // Candidate 1: scratch-remap. Partition from scratch, then relabel to sit
  // as close to the old assignment as possible.
  PartitionOptions popts;
  popts.k = opts.k;
  popts.imbalance_tolerance = opts.imbalance_tolerance;
  popts.seed = opts.seed;
  popts.refine_passes = opts.refine_passes;
  Partition scratch = remap_labels(g, old_part, multilevel_kway(g, popts), opts.k);

  // Candidate 2: diffusive. Start from the old partition, push weight out of
  // overloaded parts, then refine with alpha-weighted gains anchored at the
  // old assignment (so needless movement is penalized).
  Partition diffusive = old_part;
  rebalance_kway(g, diffusive, opts.k, ropts);
  refine_kway(g, diffusive, opts.k, ropts, &old_part);

  const double cost_scratch =
      graph::unified_cost(g, old_part, scratch, opts.alpha);
  const double cost_diffusive =
      graph::unified_cost(g, old_part, diffusive, opts.alpha);
  const double bal_scratch = graph::imbalance(g, scratch, opts.k);
  const double bal_diffusive = graph::imbalance(g, diffusive, opts.k);

  // Prefer the cheaper candidate among those meeting the balance tolerance;
  // if neither is balanced, prefer the more balanced one.
  const double tol = opts.imbalance_tolerance + 1e-9;
  bool pick_scratch;
  if (bal_scratch <= tol && bal_diffusive <= tol) {
    pick_scratch = cost_scratch < cost_diffusive;
  } else if (bal_scratch <= tol) {
    pick_scratch = true;
  } else if (bal_diffusive <= tol) {
    pick_scratch = false;
  } else {
    pick_scratch = bal_scratch < bal_diffusive;
  }

  AdaptiveResult res;
  res.chose_scratch_remap = pick_scratch;
  res.partition = pick_scratch ? std::move(scratch) : std::move(diffusive);
  res.edge_cut = graph::edge_cut(g, res.partition);
  res.migration = graph::migration_volume(g, old_part, res.partition);
  res.cost = res.edge_cut + opts.alpha * res.migration;
  return res;
}

}  // namespace prema::part
