#include "partition/coarsen.hpp"

#include <algorithm>
#include <numeric>

namespace prema::part {

using graph::CsrGraph;
using graph::GraphBuilder;
using graph::VertexId;

CoarseLevel coarsen_once(const CsrGraph& g, util::Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  constexpr VertexId kUnmatched = -1;
  std::vector<VertexId> match(static_cast<std::size_t>(n), kUnmatched);
  for (const VertexId v : order) {
    if (match[static_cast<std::size_t>(v)] != kUnmatched) continue;
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    VertexId best = kUnmatched;
    double best_w = -1.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (match[static_cast<std::size_t>(u)] != kUnmatched) continue;
      if (wgts[i] > best_w) {
        best_w = wgts[i];
        best = u;
      }
    }
    if (best == kUnmatched) {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    } else {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }

  // Number coarse vertices.
  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(n), kUnmatched);
  VertexId coarse_n = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (level.fine_to_coarse[static_cast<std::size_t>(v)] != kUnmatched) continue;
    const VertexId m = match[static_cast<std::size_t>(v)];
    level.fine_to_coarse[static_cast<std::size_t>(v)] = coarse_n;
    level.fine_to_coarse[static_cast<std::size_t>(m)] = coarse_n;
    ++coarse_n;
  }

  GraphBuilder b(coarse_n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
    b.set_vertex_weight(cv, 0.0);
  }
  std::vector<double> cw(static_cast<std::size_t>(coarse_n), 0.0);
  for (VertexId v = 0; v < n; ++v) {
    cw[static_cast<std::size_t>(level.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }
  for (VertexId cv = 0; cv < coarse_n; ++cv) {
    b.set_vertex_weight(cv, cw[static_cast<std::size_t>(cv)]);
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] <= v) continue;  // each fine edge once
      const VertexId cu = level.fine_to_coarse[static_cast<std::size_t>(nbrs[i])];
      if (cu == cv) continue;  // contracted away
      b.add_edge(cv, cu, wgts[i]);
    }
  }
  level.graph = b.build();
  return level;
}

std::vector<CoarseLevel> coarsen_to(const CsrGraph& g, VertexId target_vertices,
                                    util::Rng& rng) {
  std::vector<CoarseLevel> levels;
  const CsrGraph* current = &g;
  while (current->num_vertices() > target_vertices) {
    CoarseLevel next = coarsen_once(*current, rng);
    if (next.graph.num_vertices() >
        static_cast<VertexId>(0.9 * current->num_vertices())) {
      break;  // matching stalled (e.g. edgeless or star-like remainder)
    }
    levels.push_back(std::move(next));
    current = &levels.back().graph;
  }
  return levels;
}

}  // namespace prema::part
