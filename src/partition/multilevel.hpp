#pragma once

#include "graph/partition_metrics.hpp"
#include "partition/refine.hpp"
#include "support/rng.hpp"

/// \file multilevel.hpp
/// Serial multilevel k-way partitioner in the METIS mould: heavy-edge
/// matching coarsening, graph-growing recursive bisection on the coarsest
/// graph, and greedy boundary refinement during uncoarsening. Stands in for
/// METIS as the paper's representative repartitioning substrate (§3.1).

namespace prema::part {

struct PartitionOptions {
  int k = 2;
  double imbalance_tolerance = 1.05;
  std::uint64_t seed = 0x9E3779B9ULL;
  /// Coarsen until at most max(coarse_factor * k, 64) vertices remain.
  int coarse_factor = 16;
  int refine_passes = 8;
  /// Independent graph-growing attempts per bisection; best cut wins.
  int growing_attempts = 4;
};

/// Partition `g` into `opts.k` parts. Handles edgeless graphs (degenerates
/// to LPT number partitioning) and k = 1.
graph::Partition multilevel_kway(const graph::CsrGraph& g,
                                 const PartitionOptions& opts);

/// Greedy LPT (longest processing time) number partitioning on vertex
/// weights — the initial partition for graphs without edges and the
/// tie-breaker substrate for tiny graphs.
graph::Partition lpt_partition(const graph::CsrGraph& g, int k);

/// Modeled CPU cost (seconds) of running the partitioner on `g` on the
/// paper-era hardware; charged as "Partition Calculation Time" by the
/// stop-and-repartition driver.
double modeled_partition_seconds(const graph::CsrGraph& g, int k,
                                 double mflops = 333.0);

}  // namespace prema::part
