#include "partition/multilevel.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "partition/coarsen.hpp"
#include "support/assert.hpp"

namespace prema::part {

using graph::CsrGraph;
using graph::Partition;
using graph::VertexId;

Partition lpt_partition(const CsrGraph& g, int k) {
  PREMA_CHECK(k > 0);
  std::vector<VertexId> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (g.vertex_weight(a) != g.vertex_weight(b)) {
      return g.vertex_weight(a) > g.vertex_weight(b);
    }
    return a < b;
  });
  Partition part(static_cast<std::size_t>(g.num_vertices()), 0);
  // Min-heap of (part weight, part id).
  std::priority_queue<std::pair<double, int>, std::vector<std::pair<double, int>>,
                      std::greater<>>
      heap;
  for (int p = 0; p < k; ++p) heap.emplace(0.0, p);
  for (const VertexId v : order) {
    auto [w, p] = heap.top();
    heap.pop();
    part[static_cast<std::size_t>(v)] = p;
    heap.emplace(w + g.vertex_weight(v), p);
  }
  return part;
}

namespace {

/// 2-way split by graph growing: BFS-grow a region from a random seed,
/// preferring the frontier vertex most connected to the region, until the
/// region holds `target_fraction` of the total weight. Side 0 = region.
Partition grow_bisection(const CsrGraph& g, double target_fraction,
                         util::Rng& rng, int attempts) {
  const VertexId n = g.num_vertices();
  const double target = g.total_vertex_weight() * target_fraction;
  Partition best;
  double best_cut = 0.0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Partition part(static_cast<std::size_t>(n), 1);
    const auto seed = static_cast<VertexId>(rng.below(static_cast<std::uint64_t>(n)));
    // gain[v] = connectivity to the grown region; -1 = already inside.
    std::vector<double> gain(static_cast<std::size_t>(n), 0.0);
    std::vector<char> inside(static_cast<std::size_t>(n), 0);
    double grown = 0.0;
    VertexId next = seed;
    while (grown < target) {
      inside[static_cast<std::size_t>(next)] = 1;
      part[static_cast<std::size_t>(next)] = 0;
      grown += g.vertex_weight(next);
      const auto nbrs = g.neighbors(next);
      const auto wgts = g.edge_weights(next);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (!inside[static_cast<std::size_t>(nbrs[i])]) {
          gain[static_cast<std::size_t>(nbrs[i])] += wgts[i];
        }
      }
      // Pick the most-connected frontier vertex; fall back to any outside
      // vertex when the region's component is exhausted.
      VertexId pick = -1;
      double pick_gain = -1.0;
      for (VertexId v = 0; v < n; ++v) {
        if (inside[static_cast<std::size_t>(v)]) continue;
        if (gain[static_cast<std::size_t>(v)] > pick_gain) {
          pick_gain = gain[static_cast<std::size_t>(v)];
          pick = v;
        }
      }
      if (pick < 0) break;  // everything inside
      next = pick;
    }
    const double cut = graph::edge_cut(g, part);
    if (best.empty() || cut < best_cut) {
      best = std::move(part);
      best_cut = cut;
    }
  }
  return best;
}

/// Recursive bisection into k parts; labels written into `out` restricted to
/// the vertex set `vertices` (global ids), using labels [label0, label0 + k).
void recursive_bisect(const CsrGraph& g, const std::vector<VertexId>& vertices,
                      int k, int label0, Partition& out, util::Rng& rng,
                      const PartitionOptions& opts) {
  if (k == 1) {
    for (const VertexId v : vertices) out[static_cast<std::size_t>(v)] = label0;
    return;
  }
  // Build the induced subgraph.
  std::vector<VertexId> local(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    local[static_cast<std::size_t>(vertices[i])] = static_cast<VertexId>(i);
  }
  graph::GraphBuilder b(static_cast<VertexId>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    b.set_vertex_weight(static_cast<VertexId>(i), g.vertex_weight(v));
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId lu = local[static_cast<std::size_t>(nbrs[j])];
      if (lu < 0 || nbrs[j] <= v) continue;
      b.add_edge(static_cast<VertexId>(i), lu, wgts[j]);
    }
  }
  const CsrGraph sub = b.build();

  const int k0 = k / 2;
  const int k1 = k - k0;
  Partition split;
  if (sub.num_edges() == 0) {
    split = lpt_partition(sub, 2);
    // lpt gives two balanced halves; rescale to the k0:k1 target by a
    // rebalance pass below if needed.
  } else {
    split = grow_bisection(sub, static_cast<double>(k0) / k, rng,
                           opts.growing_attempts);
  }
  RefineOptions ropts;
  ropts.imbalance_tolerance = opts.imbalance_tolerance;
  ropts.max_passes = opts.refine_passes;
  // Two-way refinement with the k0:k1 weight target handled by tolerance on
  // the two-part view (approximation: tolerate the ratio).
  refine_kway(sub, split, 2, ropts);

  std::vector<VertexId> side0, side1;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    (split[i] == 0 ? side0 : side1).push_back(vertices[i]);
  }
  // Degenerate splits (everything on one side) are rescued by LPT.
  if (side0.empty() || side1.empty()) {
    split = lpt_partition(sub, 2);
    side0.clear();
    side1.clear();
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      (split[i] == 0 ? side0 : side1).push_back(vertices[i]);
    }
  }
  recursive_bisect(g, side0, k0, label0, out, rng, opts);
  recursive_bisect(g, side1, k1, label0 + k0, out, rng, opts);
}

}  // namespace

Partition multilevel_kway(const CsrGraph& g, const PartitionOptions& opts) {
  PREMA_CHECK(opts.k > 0);
  const VertexId n = g.num_vertices();
  if (opts.k == 1) return Partition(static_cast<std::size_t>(n), 0);
  if (n == 0) return {};
  util::Rng rng(opts.seed);

  if (g.num_edges() == 0) return lpt_partition(g, opts.k);

  // Coarsen.
  const auto target =
      static_cast<VertexId>(std::max(64, opts.coarse_factor * opts.k));
  const auto levels = coarsen_to(g, target, rng);
  const CsrGraph& coarsest = levels.empty() ? g : levels.back().graph;

  // Initial partition on the coarsest graph.
  std::vector<VertexId> all(static_cast<std::size_t>(coarsest.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  Partition part(static_cast<std::size_t>(coarsest.num_vertices()), 0);
  recursive_bisect(coarsest, all, opts.k, 0, part, rng, opts);

  RefineOptions ropts;
  ropts.imbalance_tolerance = opts.imbalance_tolerance;
  ropts.max_passes = opts.refine_passes;

  // Uncoarsen with refinement at every level.
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const CsrGraph& fine =
        (std::next(it) == levels.rend()) ? g : std::next(it)->graph;
    Partition fine_part(static_cast<std::size_t>(fine.num_vertices()));
    for (VertexId v = 0; v < fine.num_vertices(); ++v) {
      fine_part[static_cast<std::size_t>(v)] =
          part[static_cast<std::size_t>(it->fine_to_coarse[static_cast<std::size_t>(v)])];
    }
    part = std::move(fine_part);
    rebalance_kway(fine, part, opts.k, ropts);
    refine_kway(fine, part, opts.k, ropts);
  }
  if (levels.empty()) {
    rebalance_kway(g, part, opts.k, ropts);
    refine_kway(g, part, opts.k, ropts);
  }
  return part;
}

double modeled_partition_seconds(const CsrGraph& g, int k, double mflops) {
  // Multilevel partitioning is O((V + E) log k)-ish with a healthy constant;
  // ~3 kflop per vertex+edge per level reproduces METIS-era runtimes on a
  // 333 MHz UltraSPARC (seconds for ~100k vertices).
  const double units = static_cast<double>(g.num_vertices()) +
                       static_cast<double>(g.num_edges());
  const double levels = std::max(1.0, std::log2(static_cast<double>(std::max(2, k))));
  const double mflop = 3e-3 * units * levels;
  return mflop / mflops;
}

}  // namespace prema::part
