#include "partition/refine.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "support/assert.hpp"

namespace prema::part {

using graph::CsrGraph;
using graph::Partition;
using graph::VertexId;

namespace {

/// Sum of edge weights from v into each part it touches; returns (weights by
/// part via out-param map-on-stack, internal weight).
struct NeighborParts {
  // Small fixed scan: parts adjacent to a vertex are few; collect pairs.
  std::vector<std::pair<std::int32_t, double>> weights;

  double find(std::int32_t p) const {
    for (const auto& [part, w] : weights) {
      if (part == p) return w;
    }
    return 0.0;
  }
};

NeighborParts neighbor_parts(const CsrGraph& g, const Partition& part, VertexId v) {
  NeighborParts np;
  const auto nbrs = g.neighbors(v);
  const auto wgts = g.edge_weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const auto p = part[static_cast<std::size_t>(nbrs[i])];
    bool found = false;
    for (auto& [q, w] : np.weights) {
      if (q == p) {
        w += wgts[i];
        found = true;
        break;
      }
    }
    if (!found) np.weights.emplace_back(p, wgts[i]);
  }
  return np;
}

}  // namespace

int refine_kway(const CsrGraph& g, Partition& part, int k,
                const RefineOptions& opts, const Partition* anchor) {
  PREMA_CHECK(part.size() == static_cast<std::size_t>(g.num_vertices()));
  auto weights = graph::part_weights(g, part, k);
  const double mean = g.total_vertex_weight() / k;
  const double max_weight = mean * opts.imbalance_tolerance;

  int total_moves = 0;
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    int moves = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto from = part[static_cast<std::size_t>(v)];
      const auto np = neighbor_parts(g, part, v);
      const double internal = np.find(from);
      std::int32_t best_to = from;
      double best_gain = 0.0;
      for (const auto& [to, external] : np.weights) {
        if (to == from) continue;
        if (weights[static_cast<std::size_t>(to)] + g.vertex_weight(v) > max_weight) {
          continue;
        }
        double gain = external - internal;
        if (anchor != nullptr) {
          const auto home = (*anchor)[static_cast<std::size_t>(v)];
          // Moving toward home refunds migration cost; away charges it.
          if (to == home && from != home) gain += opts.alpha * g.vertex_weight(v);
          if (from == home && to != home) gain -= opts.alpha * g.vertex_weight(v);
        }
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_to = to;
        }
      }
      if (best_to != from) {
        weights[static_cast<std::size_t>(from)] -= g.vertex_weight(v);
        weights[static_cast<std::size_t>(best_to)] += g.vertex_weight(v);
        part[static_cast<std::size_t>(v)] = best_to;
        ++moves;
      }
    }
    total_moves += moves;
    if (moves == 0) break;
  }
  return total_moves;
}

namespace {

/// O(n log n) rebalance for graphs without edges (pure number partitioning):
/// overloaded parts shed their heaviest vertices into a pool, which is then
/// LPT-assigned to the lightest parts.
int rebalance_edgeless(const CsrGraph& g, Partition& part, int k,
                       const RefineOptions& opts) {
  auto weights = graph::part_weights(g, part, k);
  const double mean = g.total_vertex_weight() / k;
  const double max_weight = mean * opts.imbalance_tolerance;

  std::vector<std::vector<VertexId>> members(static_cast<std::size_t>(k));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    members[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])].push_back(v);
  }
  std::vector<VertexId> pool;
  for (int p = 0; p < k; ++p) {
    if (weights[static_cast<std::size_t>(p)] <= max_weight) continue;
    auto& vs = members[static_cast<std::size_t>(p)];
    std::sort(vs.begin(), vs.end(), [&](VertexId a, VertexId b) {
      if (g.vertex_weight(a) != g.vertex_weight(b)) {
        return g.vertex_weight(a) > g.vertex_weight(b);
      }
      return a < b;
    });
    for (const VertexId v : vs) {
      if (weights[static_cast<std::size_t>(p)] <= max_weight) break;
      // Never shed below the mean: that would just invert the imbalance.
      if (weights[static_cast<std::size_t>(p)] - g.vertex_weight(v) < mean) continue;
      weights[static_cast<std::size_t>(p)] -= g.vertex_weight(v);
      pool.push_back(v);
    }
  }
  if (pool.empty()) return 0;
  std::sort(pool.begin(), pool.end(), [&](VertexId a, VertexId b) {
    if (g.vertex_weight(a) != g.vertex_weight(b)) {
      return g.vertex_weight(a) > g.vertex_weight(b);
    }
    return a < b;
  });
  std::priority_queue<std::pair<double, int>, std::vector<std::pair<double, int>>,
                      std::greater<>>
      heap;
  for (int p = 0; p < k; ++p) heap.emplace(weights[static_cast<std::size_t>(p)], p);
  for (const VertexId v : pool) {
    auto [w, p] = heap.top();
    heap.pop();
    part[static_cast<std::size_t>(v)] = p;
    heap.emplace(w + g.vertex_weight(v), p);
  }
  return static_cast<int>(pool.size());
}

}  // namespace

int rebalance_kway(const CsrGraph& g, Partition& part, int k,
                   const RefineOptions& opts) {
  PREMA_CHECK(part.size() == static_cast<std::size_t>(g.num_vertices()));
  if (g.num_edges() == 0) return rebalance_edgeless(g, part, k, opts);
  auto weights = graph::part_weights(g, part, k);
  const double mean = g.total_vertex_weight() / k;
  const double max_weight = mean * opts.imbalance_tolerance;

  // Bucket vertices by part once; move out of overweight parts, preferring
  // vertices whose move damages the cut least (or helps it).
  int moves = 0;
  for (int round = 0; round < g.num_vertices(); ++round) {
    // Heaviest overweight part.
    int from = -1;
    double heaviest = max_weight;
    for (int p = 0; p < k; ++p) {
      if (weights[static_cast<std::size_t>(p)] > heaviest) {
        heaviest = weights[static_cast<std::size_t>(p)];
        from = p;
      }
    }
    if (from < 0) break;  // balanced
    // Lightest part as destination.
    const auto to = static_cast<int>(
        std::min_element(weights.begin(), weights.end()) - weights.begin());
    if (to == from) break;

    // Best vertex of `from` to move to `to`: smallest cut damage, and it must
    // not overshoot (leave `to` heavier than `from` was).
    VertexId best_v = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (part[static_cast<std::size_t>(v)] != from) continue;
      const double w = g.vertex_weight(v);
      if (weights[static_cast<std::size_t>(to)] + w >
          weights[static_cast<std::size_t>(from)] - w + 2 * w) {
        // Moving would just swap which side is overweight; allow only if the
        // destination stays within tolerance.
        if (weights[static_cast<std::size_t>(to)] + w > max_weight) continue;
      }
      const auto np = neighbor_parts(g, part, v);
      const double score = np.find(to) - np.find(from);
      if (score > best_score) {
        best_score = score;
        best_v = v;
      }
    }
    if (best_v < 0) break;
    const double w = g.vertex_weight(best_v);
    weights[static_cast<std::size_t>(from)] -= w;
    weights[static_cast<std::size_t>(to)] += w;
    part[static_cast<std::size_t>(best_v)] = to;
    ++moves;
  }
  return moves;
}

}  // namespace prema::part
