#pragma once

#include "graph/partition_metrics.hpp"
#include "support/rng.hpp"

/// \file refine.hpp
/// Partition refinement passes: greedy boundary Kernighan-Lin/Fiduccia-
/// Mattheyses-style moves. Used during uncoarsening (multilevel refinement,
/// paper §3.1 step 3) and as the diffusive half of adaptive repartitioning.

namespace prema::part {

struct RefineOptions {
  /// Maximum allowed max-part/mean-part weight ratio.
  double imbalance_tolerance = 1.05;
  /// Greedy passes over the boundary before giving up.
  int max_passes = 8;
  /// Weight on migration cost: moves away from `anchor` (if provided) pay
  /// alpha * vertex_weight. Used by the unified repartitioner.
  double alpha = 0.0;
};

/// Greedy k-way boundary refinement of `part` in place: repeatedly move
/// boundary vertices to the adjacent part with the largest positive gain
/// (reduction in cut minus alpha-weighted migration against `anchor`),
/// subject to the balance tolerance. Returns the number of moves made.
int refine_kway(const graph::CsrGraph& g, graph::Partition& part, int k,
                const RefineOptions& opts,
                const graph::Partition* anchor = nullptr);

/// Balance-only pass: move vertices out of overweight parts into underweight
/// ones (cheapest cut damage first) until the tolerance holds or no move
/// helps. Returns moves made.
int rebalance_kway(const graph::CsrGraph& g, graph::Partition& part, int k,
                   const RefineOptions& opts);

}  // namespace prema::part
