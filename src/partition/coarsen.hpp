#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "support/rng.hpp"

/// \file coarsen.hpp
/// Multilevel coarsening via heavy-edge matching (HEM) — the first phase of
/// the METIS-style partitioner (paper §3.1: "the graph is coarsened using a
/// local variant of heavy-edge matching").

namespace prema::part {

/// One coarsening level: the coarse graph plus the fine->coarse vertex map.
struct CoarseLevel {
  graph::CsrGraph graph;
  std::vector<graph::VertexId> fine_to_coarse;
};

/// Heavy-edge matching + contraction. Vertices are visited in random order;
/// each unmatched vertex matches its unmatched neighbour along the heaviest
/// edge. Returns the contracted graph; `fine_to_coarse[v]` names v's coarse
/// vertex. Coarse vertex weights are sums; parallel edges are merged by
/// summing weights.
CoarseLevel coarsen_once(const graph::CsrGraph& g, util::Rng& rng);

/// Repeatedly coarsen until the graph has at most `target_vertices` vertices
/// or a level shrinks by less than 10% (diminishing returns). Returns the
/// levels from finest to coarsest (empty if `g` is already small enough).
std::vector<CoarseLevel> coarsen_to(const graph::CsrGraph& g,
                                    graph::VertexId target_vertices,
                                    util::Rng& rng);

}  // namespace prema::part
