#include "trace/trace.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace prema::trace {

std::string_view event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kWorkUnit: return "work-unit";
    case EventKind::kPartition: return "partition";
    case EventKind::kMessageSend: return "send";
    case EventKind::kMessageRecv: return "recv";
    case EventKind::kMigrationOut: return "migrate-out";
    case EventKind::kMigrationIn: return "migrate-in";
    case EventKind::kPolicyDecision: return "policy-decision";
    case EventKind::kPolicyWire: return "policy-msg";
    case EventKind::kPollWakeup: return "poll-wakeup";
    case EventKind::kTermWave: return "term-wave";
    case EventKind::kFault: return "fault";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kAck: return "ack";
    case EventKind::kServiceArrival: return "service-arrival";
    case EventKind::kServiceComplete: return "service-complete";
    case EventKind::kServiceEpoch: return "service-epoch";
    case EventKind::kPolicySfcCut: return "policy.sfc_cut";
    case EventKind::kPolicyClusterMerge: return "policy.cluster_merge";
    case EventKind::kCount: break;
  }
  return "?";
}

std::string_view fault_type_name(FaultType t) {
  switch (t) {
    case FaultType::kDrop: return "drop";
    case FaultType::kDuplicate: return "dup";
    case FaultType::kDelay: return "delay";
    case FaultType::kReorder: return "reorder";
    case FaultType::kCorrupt: return "corrupt";
    case FaultType::kDupDropped: return "dup-dropped";
    case FaultType::kCorruptDropped: return "corrupt-dropped";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

TraceBuffer::TraceBuffer(std::size_t capacity) {
  PREMA_CHECK_MSG(capacity > 0, "trace buffer needs capacity >= 1");
  ring_.resize(capacity);
}

void TraceBuffer::push(const TraceEvent& e) {
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;  // overwrote the oldest retained event
  }
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event sits at head_ once the ring has wrapped, at 0 before.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

TraceSink::TraceSink(TraceRecorder& rec, ProcId proc, std::size_t capacity)
    : rec_(rec), proc_(proc), buf_(capacity) {}

void TraceSink::push(const TraceEvent& e) {
  util::LockGuard g(mu_);
  push_locked(e);
}

void TraceSink::push_locked(const TraceEvent& e) { buf_.push(e); }

void TraceSink::work_begin(double t) {
  util::LockGuard g(mu_);
  work_ = TraceEvent{};
  work_.kind = EventKind::kWorkUnit;
  work_.t0 = t;
  work_open_ = true;
}

void TraceSink::work_annotate(StrId handler_name, double weight) {
  util::LockGuard g(mu_);
  if (!work_open_) return;
  work_.name = handler_name;
  work_.value = weight;
}

void TraceSink::work_end(double t) {
  util::LockGuard g(mu_);
  if (!work_open_) return;
  work_open_ = false;
  work_.dur = std::max(0.0, t - work_.t0);
  push_locked(work_);
  ++counters_.work_units;
  counters_.work_seconds += work_.dur;
}

void TraceSink::span(EventKind kind, double t0, double dur, StrId name) {
  TraceEvent e;
  e.kind = kind;
  e.t0 = t0;
  e.dur = dur;
  e.name = name;
  util::LockGuard g(mu_);
  push_locked(e);
  if (kind == EventKind::kPartition) {
    ++counters_.partitions;
    counters_.partition_seconds += dur;
  }
}

void TraceSink::message_send(double t, ProcId dst, std::size_t bytes, bool system) {
  TraceEvent e;
  e.kind = EventKind::kMessageSend;
  e.t0 = t;
  e.peer = dst;
  e.size = bytes;
  if (system) e.flags |= TraceEvent::kFlagSystem;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.msgs_sent;
  counters_.bytes_sent += bytes;
  counters_.msg_size.add(static_cast<double>(bytes));
}

void TraceSink::message_recv(double t, ProcId src, std::size_t bytes, bool system) {
  TraceEvent e;
  e.kind = EventKind::kMessageRecv;
  e.t0 = t;
  e.peer = src;
  e.size = bytes;
  if (system) e.flags |= TraceEvent::kFlagSystem;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.msgs_received;
  counters_.bytes_received += bytes;
}

void TraceSink::migration_out(double t, ProcId dst, std::size_t bytes) {
  TraceEvent e;
  e.kind = EventKind::kMigrationOut;
  e.t0 = t;
  e.peer = dst;
  e.size = bytes;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.migrations_out;
}

void TraceSink::migration_in(double t, ProcId src, std::size_t bytes) {
  TraceEvent e;
  e.kind = EventKind::kMigrationIn;
  e.t0 = t;
  e.peer = src;
  e.size = bytes;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.migrations_in;
}

void TraceSink::policy_decision(double t, ProcId dst, double weight,
                                StrId policy_name) {
  TraceEvent e;
  e.kind = EventKind::kPolicyDecision;
  e.t0 = t;
  e.peer = dst;
  e.value = weight;
  e.name = policy_name;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.policy_decisions;
}

void TraceSink::policy_wire(double t, ProcId src, std::uint8_t tag) {
  TraceEvent e;
  e.kind = EventKind::kPolicyWire;
  e.t0 = t;
  e.peer = src;
  e.size = tag;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.policy_wire_msgs;
}

void TraceSink::poll_wakeup(double t) {
  TraceEvent e;
  e.kind = EventKind::kPollWakeup;
  e.t0 = t;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.poll_wakeups;
}

void TraceSink::term_wave(double t, std::uint64_t wave) {
  TraceEvent e;
  e.kind = EventKind::kTermWave;
  e.t0 = t;
  e.size = wave;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.term_waves;
}

void TraceSink::fault(double t, ProcId peer, FaultType type, std::size_t bytes) {
  TraceEvent e;
  e.kind = EventKind::kFault;
  e.t0 = t;
  e.peer = peer;
  e.size = bytes;
  e.value = static_cast<double>(type);
  util::LockGuard g(mu_);
  push_locked(e);
  switch (type) {
    case FaultType::kDupDropped: ++counters_.dup_drops; break;
    case FaultType::kCorruptDropped: ++counters_.corrupt_drops; break;
    default: ++counters_.faults_injected; break;
  }
}

void TraceSink::retransmit(double t, ProcId dst, std::uint32_t seq) {
  TraceEvent e;
  e.kind = EventKind::kRetransmit;
  e.t0 = t;
  e.peer = dst;
  e.size = seq;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.retransmits;
}

void TraceSink::ack(double t, ProcId dst, std::uint32_t cumulative) {
  TraceEvent e;
  e.kind = EventKind::kAck;
  e.t0 = t;
  e.peer = dst;
  e.size = cumulative;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.acks_sent;
}

void TraceSink::service_arrival(double t, std::uint64_t client, double mflop) {
  TraceEvent e;
  e.kind = EventKind::kServiceArrival;
  e.t0 = t;
  e.size = client;
  e.value = mflop;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.service_arrivals;
}

void TraceSink::service_complete(double t, std::uint64_t client, double sojourn_s) {
  TraceEvent e;
  e.kind = EventKind::kServiceComplete;
  e.t0 = t;
  e.size = client;
  e.value = sojourn_s;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.service_completions;
}

void TraceSink::service_epoch(double t, double load) {
  TraceEvent e;
  e.kind = EventKind::kServiceEpoch;
  e.t0 = t;
  e.value = load;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.service_epochs;
}

void TraceSink::policy_sfc_cut(double t, std::size_t segments, double imbalance) {
  TraceEvent e;
  e.kind = EventKind::kPolicySfcCut;
  e.t0 = t;
  e.size = segments;
  e.value = imbalance;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.sfc_cuts;
}

void TraceSink::policy_cluster_merge(double t, ProcId dst, std::size_t objects,
                                     double traffic) {
  TraceEvent e;
  e.kind = EventKind::kPolicyClusterMerge;
  e.t0 = t;
  e.peer = dst;
  e.size = objects;
  e.value = traffic;
  util::LockGuard g(mu_);
  push_locked(e);
  ++counters_.cluster_merges;
}

ProcCounters TraceSink::counters() const {
  util::LockGuard g(mu_);
  return counters_;
}

void TraceSink::sample_queue_depth(double queued_units) {
  util::LockGuard g(mu_);
  counters_.queue_depth.add(queued_units);
}

void TraceSink::sample_migrations_round(double objects_moved) {
  util::LockGuard g(mu_);
  counters_.migrations_per_round.add(objects_moved);
}

std::vector<TraceEvent> TraceSink::events() const {
  util::LockGuard g(mu_);
  return buf_.events();
}

std::uint64_t TraceSink::dropped() const {
  util::LockGuard g(mu_);
  return buf_.dropped();
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder(int nprocs, TraceConfig cfg) : cfg_(cfg) {
  PREMA_CHECK_MSG(nprocs > 0, "recorder needs at least one processor");
  strings_.emplace_back();  // id 0 = ""
  sinks_.reserve(static_cast<std::size_t>(nprocs));
  for (ProcId p = 0; p < nprocs; ++p) {
    sinks_.push_back(std::make_unique<TraceSink>(*this, p, cfg_.buffer_capacity));
  }
}

TraceSink& TraceRecorder::sink(ProcId p) {
  PREMA_CHECK_MSG(p >= 0 && p < nprocs(), "trace sink rank out of range");
  return *sinks_[static_cast<std::size_t>(p)];
}

const TraceSink& TraceRecorder::sink(ProcId p) const {
  PREMA_CHECK_MSG(p >= 0 && p < nprocs(), "trace sink rank out of range");
  return *sinks_[static_cast<std::size_t>(p)];
}

StrId TraceRecorder::intern(std::string_view s) {
  if (s.empty()) return 0;
  util::LockGuard g(intern_mu_);
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

std::string_view TraceRecorder::name(StrId id) const {
  util::LockGuard g(intern_mu_);
  if (id >= strings_.size()) return {};
  return strings_[id];
}

std::uint64_t TraceRecorder::total_events() const {
  std::uint64_t n = 0;
  for (const auto& s : sinks_) n += s->events().size();
  return n;
}

std::uint64_t TraceRecorder::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& s : sinks_) n += s->dropped();
  return n;
}

}  // namespace prema::trace
