#include "trace/export.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <utility>
#include <variant>
#include <vector>

#include "support/log.hpp"
#include "support/stats.hpp"

namespace prema::trace {

namespace {

/// Escape a string for a JSON string literal (names are short identifiers,
/// but be safe about quotes, backslashes and control characters).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-format microsecond timestamp: deterministic across runs.
std::string us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  return buf;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

const char* chrome_category(EventKind k) {
  switch (k) {
    case EventKind::kWorkUnit: return "work";
    case EventKind::kPartition: return "partition";
    case EventKind::kMessageSend:
    case EventKind::kMessageRecv: return "msg";
    case EventKind::kMigrationOut:
    case EventKind::kMigrationIn: return "migration";
    case EventKind::kPolicyDecision:
    case EventKind::kPolicyWire: return "policy";
    case EventKind::kPollWakeup: return "polling";
    case EventKind::kTermWave: return "termination";
    case EventKind::kFault: return "fault";
    case EventKind::kRetransmit:
    case EventKind::kAck: return "transport";
    case EventKind::kServiceArrival:
    case EventKind::kServiceComplete:
    case EventKind::kServiceEpoch: return "service";
    case EventKind::kPolicySfcCut:
    case EventKind::kPolicyClusterMerge: return "policy";
    case EventKind::kCount: break;
  }
  return "?";
}

/// Event-specific "args" payload, as a JSON object body (no braces).
std::string chrome_args(const TraceEvent& e) {
  std::string a;
  const bool system = (e.flags & TraceEvent::kFlagSystem) != 0;
  switch (e.kind) {
    case EventKind::kWorkUnit:
      a = "\"weight\":" + num(e.value);
      break;
    case EventKind::kPartition:
      break;
    case EventKind::kMessageSend:
      a = "\"dst\":" + std::to_string(e.peer) +
          ",\"bytes\":" + std::to_string(e.size) +
          ",\"system\":" + (system ? "true" : "false");
      break;
    case EventKind::kMessageRecv:
      a = "\"src\":" + std::to_string(e.peer) +
          ",\"bytes\":" + std::to_string(e.size) +
          ",\"system\":" + (system ? "true" : "false");
      break;
    case EventKind::kMigrationOut:
      a = "\"dst\":" + std::to_string(e.peer) +
          ",\"bytes\":" + std::to_string(e.size);
      break;
    case EventKind::kMigrationIn:
      a = "\"src\":" + std::to_string(e.peer) +
          ",\"bytes\":" + std::to_string(e.size);
      break;
    case EventKind::kPolicyDecision:
      a = "\"dst\":" + std::to_string(e.peer) + ",\"weight\":" + num(e.value);
      break;
    case EventKind::kPolicyWire:
      a = "\"src\":" + std::to_string(e.peer) +
          ",\"tag\":" + std::to_string(e.size);
      break;
    case EventKind::kPollWakeup:
      break;
    case EventKind::kTermWave:
      a = "\"wave\":" + std::to_string(e.size);
      break;
    case EventKind::kFault:
      a = "\"peer\":" + std::to_string(e.peer) + ",\"type\":\"" +
          std::string(fault_type_name(static_cast<FaultType>(e.value))) +
          "\",\"bytes\":" + std::to_string(e.size);
      break;
    case EventKind::kRetransmit:
      a = "\"dst\":" + std::to_string(e.peer) +
          ",\"seq\":" + std::to_string(e.size);
      break;
    case EventKind::kAck:
      a = "\"dst\":" + std::to_string(e.peer) +
          ",\"ack\":" + std::to_string(e.size);
      break;
    case EventKind::kServiceArrival:
      a = "\"client\":" + std::to_string(e.size) + ",\"mflop\":" + num(e.value);
      break;
    case EventKind::kServiceComplete:
      a = "\"client\":" + std::to_string(e.size) +
          ",\"sojourn_s\":" + num(e.value);
      break;
    case EventKind::kServiceEpoch:
      a = "\"load\":" + num(e.value);
      break;
    case EventKind::kPolicySfcCut:
      a = "\"segments\":" + std::to_string(e.size) +
          ",\"imbalance\":" + num(e.value);
      break;
    case EventKind::kPolicyClusterMerge:
      a = "\"dst\":" + std::to_string(e.peer) +
          ",\"objects\":" + std::to_string(e.size) +
          ",\"traffic\":" + num(e.value);
      break;
    case EventKind::kCount:
      break;
  }
  return a;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceRecorder& rec) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) os << ",";
    first = false;
    os << "\n" << line;
  };

  emit("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"prema\"}}");
  for (ProcId p = 0; p < rec.nprocs(); ++p) {
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(p) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"proc " +
         std::to_string(p) + "\"}}");
  }

  for (ProcId p = 0; p < rec.nprocs(); ++p) {
    auto events = rec.sink(p).events();
    // The buffer holds events in *recording* order; spans are recorded when
    // they close, so an instant captured mid-span precedes it. Sort each
    // track by start time (stable: ties keep recording order) so every
    // track's timeline is monotonic.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.t0 < b.t0;
                     });
    const std::string tid = std::to_string(p);
    for (const TraceEvent& e : events) {
      std::string line = "{\"name\":\"";
      const std::string_view custom = rec.name(e.name);
      line += json_escape(custom.empty() ? event_kind_name(e.kind) : custom);
      line += "\",\"cat\":\"";
      line += chrome_category(e.kind);
      line += "\",\"ph\":\"";
      line += e.is_span() ? "X" : "i";
      line += "\",\"pid\":0,\"tid\":" + tid + ",\"ts\":" + us(e.t0);
      if (e.is_span()) {
        line += ",\"dur\":" + us(e.dur);
      } else {
        line += ",\"s\":\"t\"";
      }
      const std::string args = chrome_args(e);
      if (!args.empty()) line += ",\"args\":{" + args + "}";
      line += "}";
      emit(line);
    }
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path, const TraceRecorder& rec) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    PREMA_LOG_WARN("trace: cannot open %s for writing", path.c_str());
    return false;
  }
  write_chrome_trace(f, rec);
  f.flush();
  return static_cast<bool>(f);
}

// ---------------------------------------------------------------------------
// Summary / CSV
// ---------------------------------------------------------------------------

void write_summary(std::ostream& os, const TraceRecorder& rec,
                   std::span<const util::TimeLedger> ledgers) {
  char buf[256];
  os << "trace summary: " << rec.nprocs() << " processors, "
     << rec.total_events() << " events retained, " << rec.total_dropped()
     << " dropped to ring overflow\n";
  os << "  proc  work-units   work-s     msgs-out   msgs-in    bytes-out  "
        "migr-out  migr-in  decisions  wakeups\n";

  ProcCounters all;
  util::RunningStats work_machine;
  for (ProcId p = 0; p < rec.nprocs(); ++p) {
    const ProcCounters& c = rec.sink(p).counters();
    all += c;
    // Per-processor span-duration stats, merged below without re-streaming.
    util::RunningStats work_proc;
    for (const TraceEvent& e : rec.sink(p).events()) {
      if (e.kind == EventKind::kWorkUnit) work_proc.add(e.dur);
    }
    work_machine.merge(work_proc);
    std::snprintf(buf, sizeof buf,
                  "  %4d  %10llu  %9.2f  %9llu  %9llu  %10llu  %8llu  %7llu  "
                  "%9llu  %7llu\n",
                  p, (unsigned long long)c.work_units, c.work_seconds,
                  (unsigned long long)c.msgs_sent,
                  (unsigned long long)c.msgs_received,
                  (unsigned long long)c.bytes_sent,
                  (unsigned long long)c.migrations_out,
                  (unsigned long long)c.migrations_in,
                  (unsigned long long)c.policy_decisions,
                  (unsigned long long)c.poll_wakeups);
    os << buf;
  }

  std::snprintf(buf, sizeof buf,
                "  work-unit spans (retained): n=%zu mean %.4f s  stddev %.4f "
                " min %.4f  max %.4f\n",
                work_machine.count(), work_machine.mean(),
                work_machine.stddev(), work_machine.min(), work_machine.max());
  os << buf;
  if (all.msg_size.count() > 0) {
    std::snprintf(buf, sizeof buf,
                  "  message sizes: n=%llu mean %.0f B  p50~%.0f  p99~%.0f  "
                  "max %.0f\n",
                  (unsigned long long)all.msg_size.count(), all.msg_size.mean(),
                  all.msg_size.approx_quantile(0.5),
                  all.msg_size.approx_quantile(0.99), all.msg_size.max());
    os << buf;
  }
  if (all.migrations_per_round.count() > 0) {
    std::snprintf(buf, sizeof buf,
                  "  migrations per balancing round: n=%llu mean %.2f  max "
                  "%.0f\n",
                  (unsigned long long)all.migrations_per_round.count(),
                  all.migrations_per_round.mean(),
                  all.migrations_per_round.max());
    os << buf;
  }
  if (all.faults_injected + all.retransmits + all.dup_drops +
          all.corrupt_drops >
      0) {
    std::snprintf(buf, sizeof buf,
                  "  reliability: %llu faults injected, %llu retransmits, "
                  "%llu acks, %llu dup drops, %llu corrupt drops\n",
                  (unsigned long long)all.faults_injected,
                  (unsigned long long)all.retransmits,
                  (unsigned long long)all.acks_sent,
                  (unsigned long long)all.dup_drops,
                  (unsigned long long)all.corrupt_drops);
    os << buf;
  }

  if (!ledgers.empty()) {
    // Reconcile exact (drop-proof) span-second counters against the ledger
    // buckets they should shadow. Work spans cover the ledger's Computation
    // bucket; in preemptive polling mode a span also absorbs the polling /
    // messaging slivers of interrupts taken inside it, so a small positive
    // skew is expected — report the delta rather than hiding it.
    double ledger_comp = 0.0;
    double ledger_part = 0.0;
    for (const auto& l : ledgers) {
      ledger_comp += l.get(util::TimeCategory::kComputation);
      ledger_part += l.get(util::TimeCategory::kPartitionCalc);
    }
    const double traced_work = all.work_seconds;
    const double traced_part = all.partition_seconds;
    const auto pct = [](double traced, double ledger) {
      return ledger > 0.0 ? 100.0 * (traced - ledger) / ledger : 0.0;
    };
    std::snprintf(buf, sizeof buf,
                  "  ledger reconciliation: work spans %.2f s vs Computation "
                  "%.2f s (%+.3f%%)\n",
                  traced_work, ledger_comp, pct(traced_work, ledger_comp));
    os << buf;
    if (ledger_part > 0.0 || traced_part > 0.0) {
      std::snprintf(buf, sizeof buf,
                    "                         partition spans %.2f s vs "
                    "Partition Calculation %.2f s (%+.3f%%)\n",
                    traced_part, ledger_part, pct(traced_part, ledger_part));
      os << buf;
    }
  }
}

void write_counters_csv(std::ostream& os, const TraceRecorder& rec) {
  os << "proc,work_units,work_seconds,partitions,partition_seconds,msgs_sent,"
        "msgs_received,bytes_sent,bytes_received,migrations_out,migrations_in,"
        "policy_decisions,policy_wire_msgs,poll_wakeups,term_waves,"
        "faults_injected,retransmits,acks_sent,dup_drops,corrupt_drops,"
        "events_dropped\n";
  char buf[400];
  for (ProcId p = 0; p < rec.nprocs(); ++p) {
    const ProcCounters& c = rec.sink(p).counters();
    std::snprintf(buf, sizeof buf,
                  "%d,%llu,%.9g,%llu,%.9g,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
                  "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
                  p, (unsigned long long)c.work_units, c.work_seconds,
                  (unsigned long long)c.partitions, c.partition_seconds,
                  (unsigned long long)c.msgs_sent,
                  (unsigned long long)c.msgs_received,
                  (unsigned long long)c.bytes_sent,
                  (unsigned long long)c.bytes_received,
                  (unsigned long long)c.migrations_out,
                  (unsigned long long)c.migrations_in,
                  (unsigned long long)c.policy_decisions,
                  (unsigned long long)c.policy_wire_msgs,
                  (unsigned long long)c.poll_wakeups,
                  (unsigned long long)c.term_waves,
                  (unsigned long long)c.faults_injected,
                  (unsigned long long)c.retransmits,
                  (unsigned long long)c.acks_sent,
                  (unsigned long long)c.dup_drops,
                  (unsigned long long)c.corrupt_drops,
                  (unsigned long long)rec.sink(p).dropped());
    os << buf;
  }
}

// ---------------------------------------------------------------------------
// Chrome-trace structural checker (minimal self-contained JSON parser)
// ---------------------------------------------------------------------------

namespace {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::unique_ptr<JsonArray>, std::unique_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] const JsonObject* object() const {
    auto* p = std::get_if<std::unique_ptr<JsonObject>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const JsonArray* array() const {
    auto* p = std::get_if<std::unique_ptr<JsonArray>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const std::string* str() const {
    return std::get_if<std::string>(&v);
  }
  [[nodiscard]] const double* number() const { return std::get_if<double>(&v); }
};

const JsonValue* find(const JsonObject& o, std::string_view key) {
  for (const auto& [k, val] : o) {
    if (k == key) return &val;
  }
  return nullptr;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  bool parse(JsonValue& out, std::string& err) {
    if (!value(out, err)) return false;
    skip_ws();
    if (pos_ != s_.size()) {
      err = "trailing garbage at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(std::string& err, const std::string& what) {
    err = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool value(JsonValue& out, std::string& err) {
    skip_ws();
    if (pos_ >= s_.size()) return fail(err, "unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return object(out, err);
    if (c == '[') return array(out, err);
    if (c == '"') {
      std::string str;
      if (!string(str, err)) return false;
      out.v = std::move(str);
      return true;
    }
    if (literal("true")) { out.v = true; return true; }
    if (literal("false")) { out.v = false; return true; }
    if (literal("null")) { out.v = nullptr; return true; }
    return number(out, err);
  }

  bool number(JsonValue& out, std::string& err) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail(err, "invalid value");
    const std::string text(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
      pos_ = start;
      return fail(err, "invalid number");
    }
    out.v = d;
    return true;
  }

  bool string(std::string& out, std::string& err) {
    if (s_[pos_] != '"') return fail(err, "expected string");
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail(err, "bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail(err, "bad \\u escape");
            // Structural checker: accept and keep the raw escape.
            out += "\\u";
            out.append(s_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default: return fail(err, "bad escape character");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) return fail(err, "unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool object(JsonValue& out, std::string& err) {
    ++pos_;  // '{'
    auto obj = std::make_unique<JsonObject>();
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      out.v = std::move(obj);
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key, err)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail(err, "expected ':'");
      ++pos_;
      JsonValue val;
      if (!value(val, err)) return false;
      obj->emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') { ++pos_; continue; }
      if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; break; }
      return fail(err, "expected ',' or '}'");
    }
    out.v = std::move(obj);
    return true;
  }

  bool array(JsonValue& out, std::string& err) {
    ++pos_;  // '['
    auto arr = std::make_unique<JsonArray>();
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      out.v = std::move(arr);
      return true;
    }
    for (;;) {
      JsonValue val;
      if (!value(val, err)) return false;
      arr->push_back(std::move(val));
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') { ++pos_; continue; }
      if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; break; }
      return fail(err, "expected ',' or ']'");
    }
    out.v = std::move(arr);
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

ChromeTraceCheck check_chrome_trace(std::string_view json) {
  ChromeTraceCheck res;
  JsonValue root;
  std::string err;
  if (!JsonParser(json).parse(root, err)) {
    res.error = "JSON parse error: " + err;
    return res;
  }
  const JsonObject* top = root.object();
  if (!top) {
    res.error = "top-level value is not an object";
    return res;
  }
  const JsonValue* ev = find(*top, "traceEvents");
  if (!ev || !ev->array()) {
    res.error = "missing \"traceEvents\" array";
    return res;
  }

  std::map<std::pair<double, double>, double> last_ts;  // (pid, tid) -> ts
  std::size_t i = 0;
  for (const JsonValue& item : *ev->array()) {
    const JsonObject* e = item.object();
    const std::string at = "event " + std::to_string(i);
    ++i;
    if (!e) {
      res.error = at + " is not an object";
      return res;
    }
    const JsonValue* ph = find(*e, "ph");
    if (!ph || !ph->str()) {
      res.error = at + " has no \"ph\"";
      return res;
    }
    const JsonValue* pid = find(*e, "pid");
    const JsonValue* tid = find(*e, "tid");
    if (!pid || !pid->number() || !tid || !tid->number()) {
      res.error = at + " has no numeric pid/tid";
      return res;
    }
    const std::string& phase = *ph->str();
    if (phase == "M") continue;  // metadata carries no timestamp
    if (phase != "X" && phase != "i") {
      res.error = at + " has unexpected phase \"" + phase + "\"";
      return res;
    }
    const JsonValue* ts = find(*e, "ts");
    if (!ts || !ts->number() || !std::isfinite(*ts->number())) {
      res.error = at + " has no finite \"ts\"";
      return res;
    }
    if (phase == "X") {
      const JsonValue* dur = find(*e, "dur");
      if (!dur || !dur->number() || !(*dur->number() >= 0.0)) {
        res.error = at + " (\"X\") has no non-negative \"dur\"";
        return res;
      }
    }
    const auto key = std::make_pair(*pid->number(), *tid->number());
    const auto it = last_ts.find(key);
    if (it == last_ts.end()) {
      last_ts.emplace(key, *ts->number());
    } else {
      if (*ts->number() < it->second) {
        res.error = at + " breaks per-track ts monotonicity";
        return res;
      }
      it->second = *ts->number();
    }
    ++res.events;
  }
  res.tracks = last_ts.size();
  res.ok = true;
  return res;
}

}  // namespace prema::trace
