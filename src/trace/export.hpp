#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "support/time_ledger.hpp"
#include "trace/trace.hpp"

/// \file export.hpp
/// Exporters over a TraceRecorder:
///  - Chrome trace-event JSON: one track (tid) per processor, work-unit and
///    partition spans as complete ("X") events, everything else as instants.
///    Loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
///  - Text summary: per-processor counter table, machine-wide distributions
///    (via util::RunningStats::merge), and — when the machine's TimeLedgers
///    are supplied — a reconciliation of traced work/partition span time
///    against the corresponding ledger buckets.
///  - CSV counters: one row per processor, machine-readable.
/// Plus a small structural checker for the emitted JSON, used by tests and
/// the `trace_check` tool.
///
/// All output is deterministic: events are sorted per track by timestamp
/// (ties keep recording order) and numbers are printed with fixed formats,
/// so identical runs produce byte-identical files.

namespace prema::trace {

/// Write the whole recorder as Chrome trace-event JSON ("ts" in microseconds).
void write_chrome_trace(std::ostream& os, const TraceRecorder& rec);

/// write_chrome_trace to `path`; returns false (and logs) on I/O failure.
bool write_chrome_trace_file(const std::string& path, const TraceRecorder& rec);

/// Human-readable summary. When `ledgers` is non-empty it must have one
/// entry per processor; the summary then reconciles traced span time against
/// the ledger's Computation (+Callback) and Partition Calculation buckets.
void write_summary(std::ostream& os, const TraceRecorder& rec,
                   std::span<const util::TimeLedger> ledgers = {});

/// Per-processor counters as CSV (header + one row per processor).
void write_counters_csv(std::ostream& os, const TraceRecorder& rec);

/// Result of structurally checking a Chrome trace-event JSON document.
struct ChromeTraceCheck {
  bool ok = false;
  std::string error;        ///< first problem found, empty when ok
  std::size_t events = 0;   ///< "X"/"i" events seen
  std::size_t tracks = 0;   ///< distinct (pid, tid) pairs
};

/// Parse `json` (self-contained minimal JSON parser — no third-party
/// dependency) and verify it is a Chrome trace: top-level object with a
/// "traceEvents" array; every event has "ph"/"pid"/"tid"; "X"/"i" events
/// carry finite "ts" (and "dur" >= 0 for "X"); per-track timestamps are
/// monotonically non-decreasing.
ChromeTraceCheck check_chrome_trace(std::string_view json);

}  // namespace prema::trace
