#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

/// \file counters.hpp
/// Lightweight per-processor counters and log2-bucketed histograms kept by
/// the trace sinks. These survive ring-buffer overflow (events may be
/// dropped; counts never are), so the summary exporter can report exact
/// totals — message counts and sizes, work units, migrations per balancing
/// round, scheduler queue depth — alongside whatever window of events the
/// buffers retained.

namespace prema::trace {

/// Histogram over power-of-two buckets: bucket i counts values in
/// [2^(i-1), 2^i) with bucket 0 taking everything below 1. Good enough for
/// message sizes (bytes) and queue depths (units); exact mean via sum/n.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void add(double v);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  /// Upper edge of bucket i (2^i; bucket 0 covers [0, 1)).
  [[nodiscard]] static double bucket_edge(std::size_t i);

  /// Approximate quantile (q in [0,1]) from the bucket counts: the upper
  /// edge of the bucket containing the q-th value.
  [[nodiscard]] double approx_quantile(double q) const;

  /// Accumulate another histogram into this one (per-proc -> machine-wide).
  Histogram& operator+=(const Histogram& other);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact per-processor event counts plus the distributions worth keeping.
struct ProcCounters {
  std::uint64_t work_units = 0;
  std::uint64_t partitions = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t migrations_out = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t policy_decisions = 0;
  std::uint64_t policy_wire_msgs = 0;
  std::uint64_t poll_wakeups = 0;
  std::uint64_t term_waves = 0;
  // Reliability / fault-injection counters (all zero on a fault-free run):
  std::uint64_t faults_injected = 0;   ///< wire-side drop/dup/delay/reorder/corrupt
  std::uint64_t retransmits = 0;       ///< copies resent after a timeout
  std::uint64_t acks_sent = 0;         ///< bare cumulative acks sent
  std::uint64_t dup_drops = 0;         ///< duplicate copies absorbed on receive
  std::uint64_t corrupt_drops = 0;     ///< checksum-mismatched copies discarded
  // Service mode (all zero on a run-to-quiescence run):
  std::uint64_t service_arrivals = 0;     ///< open-loop requests injected
  std::uint64_t service_completions = 0;  ///< request handlers finished
  std::uint64_t service_epochs = 0;       ///< epoch cadence ticks
  // Topology policies (all zero under scalar-only policies):
  std::uint64_t sfc_cuts = 0;         ///< sfc coordinator curve recuts
  std::uint64_t cluster_merges = 0;   ///< cluster co-migration batches

  double work_seconds = 0.0;       ///< summed work-unit span durations
  double partition_seconds = 0.0;  ///< summed partition span durations

  Histogram msg_size;               ///< bytes per sent message
  Histogram queue_depth;            ///< scheduler queued units at enqueue
  Histogram migrations_per_round;   ///< objects migrated per balancing round

  ProcCounters& operator+=(const ProcCounters& other);
};

}  // namespace prema::trace
