// trace_check: validate a Chrome trace-event JSON file emitted by the trace
// subsystem (or anything else claiming the format). Exit 0 iff the file is a
// structurally valid trace with monotonic per-track timestamps.
//
// Usage: trace_check <trace.json> [--min-events=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/export.hpp"

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::size_t min_events = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-events=", 13) == 0) {
      min_events = static_cast<std::size_t>(std::strtoull(argv[i] + 13, nullptr, 10));
    } else if (!path) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: trace_check <trace.json> [--min-events=N]\n");
      return 2;
    }
  }
  if (!path) {
    std::fprintf(stderr, "usage: trace_check <trace.json> [--min-events=N]\n");
    return 2;
  }

  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string json = ss.str();

  const auto res = prema::trace::check_chrome_trace(json);
  if (!res.ok) {
    std::fprintf(stderr, "trace_check: %s: INVALID: %s\n", path,
                 res.error.c_str());
    return 1;
  }
  if (res.events < min_events) {
    std::fprintf(stderr,
                 "trace_check: %s: valid but only %zu events (< %zu)\n", path,
                 res.events, min_events);
    return 1;
  }
  std::printf("trace_check: %s: OK (%zu events on %zu tracks)\n", path,
              res.events, res.tracks);
  return 0;
}
