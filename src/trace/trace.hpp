#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"
#include "support/thread_annotations.hpp"
#include "trace/counters.hpp"

/// \file trace.hpp
/// Event-level tracing for the runtime stack. The paper's evaluation is all
/// per-processor time attribution (Figs. 3-6); util::TimeLedger gives the
/// summed buckets, this subsystem records the *individual* activities behind
/// them — work-unit executions, message sends/receives, object migrations,
/// balancing-policy decisions, polling wakeups, partition-calculation spans
/// and termination-detector waves — on a per-processor timeline that can be
/// exported to Chrome trace-event JSON (Perfetto / chrome://tracing) or
/// reconciled against the ledger totals (see trace/export.hpp).
///
/// Design constraints:
///  - Near-zero cost when off: tracing is attached per machine via
///    dmcs::Machine::enable_tracing; every instrumentation site is a single
///    null-pointer test on Node::trace() when tracing was never enabled.
///  - Deterministic: recording never advances a virtual clock or perturbs
///    event order, so two sim-backend runs with the same seed emit
///    byte-identical trace files.
///  - Bounded memory: one fixed-capacity ring buffer per processor; on
///    overflow the *oldest* events are dropped (the tail of a run is what you
///    are usually chasing) and a drop counter records the loss.
///
/// Timestamps are seconds since the start of the run in the machine's own
/// clock domain: virtual time on dmcs::SimMachine, steady-clock wall time on
/// dmcs::ThreadMachine.

#ifndef PREMA_TRACE
#define PREMA_TRACE 1
#endif

namespace prema::trace {

/// True when the subsystem is compiled in (CMake option PREMA_TRACE).
/// When false, dmcs::Machine::enable_tracing is a no-op returning nullptr,
/// which turns every instrumentation site back into the untraced path.
inline constexpr bool kCompiledIn = PREMA_TRACE != 0;

/// Interned-string id (see TraceRecorder::intern). 0 is the empty string.
using StrId = std::uint32_t;

enum class EventKind : std::uint8_t {
  kWorkUnit = 0,    ///< span: one scheduled work-unit activity (name=handler)
  kPartition,       ///< span: (re)partitioner execution
  kMessageSend,     ///< instant: peer=dst, size=bytes
  kMessageRecv,     ///< instant: peer=src, size=bytes
  kMigrationOut,    ///< instant: peer=dst, size=serialized bytes
  kMigrationIn,     ///< instant: peer=src, size=serialized bytes
  kPolicyDecision,  ///< instant: policy chose to migrate (peer=dst, name=policy)
  kPolicyWire,      ///< instant: policy protocol message arrived (size=tag)
  kPollWakeup,      ///< instant: preemptive polling-thread wakeup
  kTermWave,        ///< instant: termination-detector wave launched (size=wave)
  kFault,           ///< instant: injected/absorbed fault (value=FaultType, peer, size=bytes)
  kRetransmit,      ///< instant: reliable-transport retransmission (peer=dst, size=seq)
  kAck,             ///< instant: bare cumulative ack sent (peer=dst, size=ack value)
  kServiceArrival,  ///< instant: open-loop request injected (size=client, value=Mflop)
  kServiceComplete, ///< instant: request handler finished (size=client, value=sojourn s)
  kServiceEpoch,    ///< instant: service-mode epoch tick (value=sampled load)
  kPolicySfcCut,    ///< instant: sfc coordinator recut the curve (size=segments, value=imbalance)
  kPolicyClusterMerge,  ///< instant: cluster policy co-migrated a batch (peer=dst, size=objects, value=traffic)
  kCount
};

/// Code stored in TraceEvent::value for EventKind::kFault events. The first
/// five are wire-side injections (recorded on the sender); the last two are
/// receiver-side absorptions by the reliable transport.
enum class FaultType : std::uint8_t {
  kDrop = 0,
  kDuplicate,
  kDelay,
  kReorder,
  kCorrupt,
  kDupDropped,     ///< receiver discarded a duplicate copy
  kCorruptDropped  ///< receiver discarded a checksum-mismatched copy
};

/// Display label for a fault type ("drop", "dup", ...).
std::string_view fault_type_name(FaultType t);

constexpr std::size_t kEventKindCount = static_cast<std::size_t>(EventKind::kCount);

/// Display label for an event kind ("work-unit", "send", ...).
std::string_view event_kind_name(EventKind k);

/// One recorded event. Fixed-size POD so the ring buffer is a flat array.
struct TraceEvent {
  double t0 = 0.0;         ///< start time, seconds
  double dur = 0.0;        ///< span duration (0 for instants)
  std::uint64_t size = 0;  ///< bytes / tag / wave number, per kind
  double value = 0.0;      ///< application weight hint (work units, decisions)
  std::int32_t peer = -1;  ///< the other processor (src or dst), -1 if none
  StrId name = 0;          ///< interned label (handler / policy name)
  EventKind kind = EventKind::kWorkUnit;
  std::uint8_t flags = 0;  ///< kFlagSystem for system-kind messages

  static constexpr std::uint8_t kFlagSystem = 1;

  [[nodiscard]] bool is_span() const {
    return kind == EventKind::kWorkUnit || kind == EventKind::kPartition;
  }
};

/// Fixed-capacity ring of TraceEvents that keeps the *newest* events.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity);

  void push(const TraceEvent& e);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events overwritten because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Copy out the retained events, oldest first (recording order).
  [[nodiscard]] std::vector<TraceEvent> events() const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

struct TraceConfig {
  /// Master switch (RuntimeConfig::trace defaults to off).
  bool enabled = false;
  /// Ring capacity per processor, in events (~48 B each). On overflow the
  /// oldest events are dropped and TraceBuffer::dropped counts them.
  std::size_t buffer_capacity = 1 << 14;
};

class TraceRecorder;

/// Per-processor recording handle. Instrumentation sites reach it through
/// Node::trace(), which is nullptr unless tracing was enabled — so the
/// disabled path costs one pointer test. Thread-safe: on the threaded
/// backend the worker and the polling thread record concurrently.
class TraceSink {
 public:
  TraceSink(TraceRecorder& rec, ProcId proc, std::size_t capacity);

  // -- work-unit spans (one active per processor at a time) ---------------
  /// A work-unit activity began at `t`. The span is held open until
  /// work_end; the runtime layer may fill in handler/weight via
  /// work_annotate while the body runs.
  void work_begin(double t);
  void work_annotate(StrId handler_name, double weight);
  void work_end(double t);

  /// A closed span (partition calculation etc.) that ran [t0, t0+dur].
  void span(EventKind kind, double t0, double dur, StrId name = 0);

  // -- instants -----------------------------------------------------------
  void message_send(double t, ProcId dst, std::size_t bytes, bool system);
  void message_recv(double t, ProcId src, std::size_t bytes, bool system);
  void migration_out(double t, ProcId dst, std::size_t bytes);
  void migration_in(double t, ProcId src, std::size_t bytes);
  void policy_decision(double t, ProcId dst, double weight, StrId policy_name);
  void policy_wire(double t, ProcId src, std::uint8_t tag);
  void poll_wakeup(double t);
  void term_wave(double t, std::uint64_t wave);
  /// A fault was injected on (or absorbed from) the link to/from `peer`.
  void fault(double t, ProcId peer, FaultType type, std::size_t bytes);
  /// The reliable transport retransmitted seq `seq` toward `dst`.
  void retransmit(double t, ProcId dst, std::uint32_t seq);
  /// A bare cumulative ack was sent toward `dst`.
  void ack(double t, ProcId dst, std::uint32_t cumulative);

  // -- service mode (open-loop arrivals, see src/service) -----------------
  /// An arrival-generator request was injected for `client` at cost `mflop`.
  void service_arrival(double t, std::uint64_t client, double mflop);
  /// A request for `client` completed with the given sojourn latency.
  void service_complete(double t, std::uint64_t client, double sojourn_s);
  /// An epoch tick fired; `load` is the scheduler load sampled at the tick.
  void service_epoch(double t, double load);

  // -- topology policies (sfc / cluster, see src/ilb/policies) ------------
  /// The sfc coordinator recut the curve into `segments` pieces; `imbalance`
  /// is max-segment-load / mean-segment-load at the cut.
  void policy_sfc_cut(double t, std::size_t segments, double imbalance);
  /// The cluster policy shipped `objects` co-communicating objects to `dst`;
  /// `traffic` is the mutual traffic (bytes) that bound the batch together.
  void policy_cluster_merge(double t, ProcId dst, std::size_t objects,
                            double traffic);

  // -- counters / introspection ------------------------------------------
  /// Lightweight per-processor counters and histograms, updated under the
  /// sink lock alongside every recorded event. Returns a snapshot copy so
  /// readers never observe a half-updated histogram.
  [[nodiscard]] ProcCounters counters() const;

  /// Distribution samples recorded by layers whose data the event stream
  /// does not carry (the ILB balancer): scheduler queue depth at enqueue and
  /// objects migrated per balancing round.
  void sample_queue_depth(double queued_units);
  void sample_migrations_round(double objects_moved);

  [[nodiscard]] ProcId proc() const { return proc_; }
  [[nodiscard]] TraceRecorder& recorder() { return rec_; }
  /// Snapshot of retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  void push(const TraceEvent& e);
  void push_locked(const TraceEvent& e) PREMA_REQUIRES(mu_);

  TraceRecorder& rec_;
  ProcId proc_;
  mutable util::Mutex mu_;  ///< worker vs polling thread (threaded backend)
  TraceBuffer buf_ PREMA_GUARDED_BY(mu_);
  ProcCounters counters_ PREMA_GUARDED_BY(mu_);

  bool work_open_ PREMA_GUARDED_BY(mu_) = false;
  TraceEvent work_ PREMA_GUARDED_BY(mu_){};
};

/// Machine-wide recorder: one TraceSink per processor plus the shared
/// string-intern table. Owned by dmcs::Machine (see Machine::enable_tracing).
class TraceRecorder {
 public:
  TraceRecorder(int nprocs, TraceConfig cfg);

  [[nodiscard]] int nprocs() const { return static_cast<int>(sinks_.size()); }
  [[nodiscard]] const TraceConfig& config() const { return cfg_; }
  [[nodiscard]] TraceSink& sink(ProcId p);
  [[nodiscard]] const TraceSink& sink(ProcId p) const;

  /// Intern `s`, returning a stable id (thread-safe; same string, same id).
  StrId intern(std::string_view s);
  /// The string behind an id ("" for 0 or out-of-range ids).
  [[nodiscard]] std::string_view name(StrId id) const;

  /// Total events currently retained across all processors.
  [[nodiscard]] std::uint64_t total_events() const;
  /// Total events dropped to overflow across all processors.
  [[nodiscard]] std::uint64_t total_dropped() const;

 private:
  TraceConfig cfg_;
  std::vector<std::unique_ptr<TraceSink>> sinks_;

  mutable util::Mutex intern_mu_;
  /// deque, not vector: name() hands out string_views into the elements, and
  /// deque growth never relocates existing strings.
  std::deque<std::string> strings_ PREMA_GUARDED_BY(intern_mu_);
  std::unordered_map<std::string, StrId> ids_ PREMA_GUARDED_BY(intern_mu_);
};

}  // namespace prema::trace
