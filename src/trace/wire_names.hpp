#pragma once

#include <string_view>

/// \file wire_names.hpp
/// Human-readable display labels for every wire handler in the protocol
/// manifest (PREMA_WIRE_HANDLERS, dmcs/message.hpp). Trace exporters use
/// these when rendering per-handler rows, so a handler without a label shows
/// up as an opaque id in Perfetto. The static analyzer's "protocol" pass
/// keeps this table and the manifest in lockstep: a manifest entry with no
/// label here fails analysis (protocol-untraced), as does a label for a
/// handler the manifest dropped (protocol-stale-label).

namespace prema::trace {

#define PREMA_WIRE_LABELS(X)                         \
  X("prema.exec", "PREMA remote execution")          \
  X("ilb.policy", "ILB policy exchange")             \
  X("prema.term", "termination detection wave")      \
  X("mol.route", "MOL routed message")               \
  X("mol.migrate", "MOL object migration")           \
  X("mol.update", "MOL location update")             \
  X("mol.offer", "MOL migration offer")              \
  X("mol.commit", "MOL migration commit")            \
  X("charm.msg", "chare point-to-point message")     \
  X("charm.exec", "chare entry-method execution")    \
  X("charm.sync", "chare AtSync barrier")            \
  X("charm.assign", "chare rebalance assignment")    \
  X("charm.migrate", "chare migration payload")      \
  X("charm.migdone", "chare migration complete")     \
  X("charm.resume", "chare resume after rebalance")  \
  X("srp.exec", "SRP work execution")                \
  X("srp.low", "SRP low-work signal")                \
  X("srp.halt", "SRP halt broadcast")                \
  X("srp.report", "SRP load report")                 \
  X("srp.assign", "SRP repartition assignment")      \
  X("srp.migdone", "SRP migration complete")         \
  X("srp.resume", "SRP resume broadcast")            \
  X("srp.completed", "SRP work-item completion")     \
  X("service.arrival", "service-mode arrival timer") \
  X("service.epoch", "service-mode epoch tick")

/// Display label for a registered wire-handler name; empty view when the
/// name is not in the table (the caller falls back to the raw name).
inline std::string_view wire_label(std::string_view name) {
#define X(wire, label) \
  if (name == wire) return label;
  PREMA_WIRE_LABELS(X)
#undef X
  return {};
}

}  // namespace prema::trace
