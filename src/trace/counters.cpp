#include "trace/counters.hpp"

#include <algorithm>
#include <cmath>

namespace prema::trace {

void Histogram::add(double v) {
  if (v < 0.0) v = 0.0;
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  sum_ += v;
  std::size_t i = 0;
  if (v >= 1.0) {
    i = static_cast<std::size_t>(std::ceil(std::log2(v + 1e-12))) + 1;
    if (i >= kBuckets) i = kBuckets - 1;
  }
  ++buckets_[i];
}

double Histogram::bucket_edge(std::size_t i) {
  return i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

double Histogram::approx_quantile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) return std::min(bucket_edge(i), max_);
  }
  return max_;
}

Histogram& Histogram::operator+=(const Histogram& other) {
  if (other.n_ == 0) return *this;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  return *this;
}

ProcCounters& ProcCounters::operator+=(const ProcCounters& other) {
  work_units += other.work_units;
  partitions += other.partitions;
  msgs_sent += other.msgs_sent;
  msgs_received += other.msgs_received;
  bytes_sent += other.bytes_sent;
  bytes_received += other.bytes_received;
  migrations_out += other.migrations_out;
  migrations_in += other.migrations_in;
  policy_decisions += other.policy_decisions;
  policy_wire_msgs += other.policy_wire_msgs;
  poll_wakeups += other.poll_wakeups;
  term_waves += other.term_waves;
  faults_injected += other.faults_injected;
  retransmits += other.retransmits;
  acks_sent += other.acks_sent;
  dup_drops += other.dup_drops;
  corrupt_drops += other.corrupt_drops;
  service_arrivals += other.service_arrivals;
  service_completions += other.service_completions;
  service_epochs += other.service_epochs;
  sfc_cuts += other.sfc_cuts;
  cluster_merges += other.cluster_merges;
  work_seconds += other.work_seconds;
  partition_seconds += other.partition_seconds;
  msg_size += other.msg_size;
  queue_depth += other.queue_depth;
  migrations_per_round += other.migrations_per_round;
  return *this;
}

}  // namespace prema::trace
