#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// \file stats.hpp
/// Descriptive statistics used by the experiment harness: the paper reports
/// per-processor time breakdowns, the standard deviation of post-balance
/// computation time (its load-quality metric), and overhead percentages.

namespace prema::util {

/// Single-pass accumulator (Welford) for mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  /// Combine another accumulator into this one (Chan et al. parallel
  /// variance) — merging per-processor stats without re-streaming samples.
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n); matches how the paper characterizes
  /// spread across the fixed set of 128 processors.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Compute a Summary over a sample (copies and sorts internally).
Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile of a *sorted* sample, q in [0, 1].
double percentile_sorted(std::span<const double> sorted, double q);

}  // namespace prema::util
