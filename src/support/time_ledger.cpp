#include "support/time_ledger.hpp"

#include "support/assert.hpp"

namespace prema::util {

std::string_view time_category_name(TimeCategory c) {
  switch (c) {
    case TimeCategory::kComputation: return "Computation";
    case TimeCategory::kCallback: return "Callback Routine";
    case TimeCategory::kScheduling: return "Scheduling";
    case TimeCategory::kMessaging: return "Messaging";
    case TimeCategory::kPolling: return "Polling Thread";
    case TimeCategory::kPartitionCalc: return "Partition Calculation";
    case TimeCategory::kSynchronization: return "Synchronization";
    case TimeCategory::kIdle: return "Idle";
    case TimeCategory::kCount: break;
  }
  return "?";
}

void TimeLedger::charge(TimeCategory c, double seconds) {
  PREMA_CHECK_MSG(seconds >= 0.0, "negative time charge");
  PREMA_CHECK(c != TimeCategory::kCount);
  buckets_[static_cast<std::size_t>(c)] += seconds;
}

double TimeLedger::total() const {
  double t = 0.0;
  for (double b : buckets_) t += b;
  return t;
}

double TimeLedger::busy() const {
  return total() - get(TimeCategory::kIdle);
}

double TimeLedger::overhead() const {
  return busy() - get(TimeCategory::kComputation) - get(TimeCategory::kCallback);
}

TimeLedger& TimeLedger::operator+=(const TimeLedger& other) {
  for (std::size_t i = 0; i < kTimeCategoryCount; ++i) buckets_[i] += other.buckets_[i];
  return *this;
}

}  // namespace prema::util
