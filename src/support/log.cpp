#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/thread_annotations.hpp"

namespace prema::util {
namespace {

/// The output sink. Guarded so concurrent logf calls from thread-backend
/// workers cannot interleave the prefix / body / newline writes of a line.
struct SinkState {
  util::Mutex mu;
  std::FILE* stream PREMA_GUARDED_BY(mu) = nullptr;  ///< nullptr = stderr
};

SinkState& sink() {
  static SinkState s;
  return s;
}

LogLevel initial_level() {
  const char* env = std::getenv("PREMA_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

// Relaxed on both sides: the level is an isolated verbosity knob — readers
// want a recent value, nothing else is published through it, and the hot
// log_level() check must not fence every call site.
void set_log_level(LogLevel lvl) {
  std::atomic<int>& level = level_storage();
  level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

LogLevel log_level() {
  std::atomic<int>& level = level_storage();
  return static_cast<LogLevel>(level.load(std::memory_order_relaxed));
}

void set_log_sink(std::FILE* stream) {
  SinkState& s = sink();
  util::LockGuard g(s.mu);
  s.stream = stream;
}

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  SinkState& s = sink();
  util::LockGuard g(s.mu);
  std::FILE* out = s.stream != nullptr ? s.stream : stderr;
  std::fprintf(out, "[prema %s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(out, fmt, args);
  va_end(args);
  std::fputc('\n', out);
}

}  // namespace prema::util
