#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace prema::util {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("PREMA_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { level_storage().store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load()); }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[prema %s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace prema::util
