#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace prema::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  mean_ += delta * m / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double q) {
  PREMA_CHECK(!sorted.empty());
  PREMA_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  RunningStats rs;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  for (double x : xs) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.sum = rs.sum();
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p95 = percentile_sorted(sorted, 0.95);
  return s;
}

}  // namespace prema::util
