#pragma once

#include <cstdarg>
#include <cstdio>

/// \file log.hpp
/// Minimal leveled logging. Default level is Warn so tests and benchmarks stay
/// quiet; set PREMA_LOG=debug|info|warn|error in the environment or call
/// set_log_level to change it.

namespace prema::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global log threshold.
void set_log_level(LogLevel level);

/// Current global log threshold (initialized from the PREMA_LOG env var).
LogLevel log_level();

/// Redirect log output to `stream` (nullptr restores the default, stderr).
/// The thread-backend workers log concurrently, so the sink is mutex-guarded
/// and each logf line is emitted atomically.
void set_log_sink(std::FILE* stream);

/// printf-style log statement; drops the message if below the threshold.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace prema::util

#define PREMA_LOG_DEBUG(...) ::prema::util::logf(::prema::util::LogLevel::kDebug, __VA_ARGS__)
#define PREMA_LOG_INFO(...) ::prema::util::logf(::prema::util::LogLevel::kInfo, __VA_ARGS__)
#define PREMA_LOG_WARN(...) ::prema::util::logf(::prema::util::LogLevel::kWarn, __VA_ARGS__)
#define PREMA_LOG_ERROR(...) ::prema::util::logf(::prema::util::LogLevel::kError, __VA_ARGS__)
