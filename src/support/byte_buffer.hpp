#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "support/assert.hpp"

/// \file byte_buffer.hpp
/// Flat byte-oriented serialization used for every message payload that
/// crosses a (real or emulated) processor boundary. Mobile objects serialize
/// themselves through a Writer when they migrate and rebuild from a Reader on
/// the destination; keeping the wire format explicit is what lets the thread
/// backend and the discrete-event backend share all protocol code.

namespace prema::util {

/// Append-only serialization sink producing a contiguous byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { bytes_.reserve(reserve); }

  /// Append the raw object representation of a trivially copyable value.
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::put requires a trivially copyable type");
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  /// Append a length-prefixed byte span.
  void put_bytes(std::span<const std::uint8_t> data) {
    put<std::uint64_t>(data.size());
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  /// Append a length-prefixed string.
  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  /// Append a length-prefixed vector of trivially copyable elements.
  template <typename T>
  void put_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(T));
  }

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  /// Move the accumulated bytes out; the writer is left empty.
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential deserialization source over a byte span. Bounds-checked: reading
/// past the end aborts (a malformed message is a protocol bug, not user error).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Read back a trivially copyable value written by ByteWriter::put.
  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    PREMA_CHECK_MSG(pos_ + sizeof(T) <= bytes_.size(), "ByteReader overrun");
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// Read a length-prefixed byte vector written by put_bytes.
  std::vector<std::uint8_t> get_bytes() {
    const auto n = get<std::uint64_t>();
    PREMA_CHECK_MSG(pos_ + n <= bytes_.size(), "ByteReader overrun (bytes)");
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Read a length-prefixed string written by put_string.
  std::string get_string() {
    const auto n = get<std::uint64_t>();
    PREMA_CHECK_MSG(pos_ + n <= bytes_.size(), "ByteReader overrun (string)");
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  /// Read a length-prefixed vector written by put_vector.
  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    PREMA_CHECK_MSG(pos_ + n * sizeof(T) <= bytes_.size(), "ByteReader overrun (vector)");
    std::vector<T> out(n);
    std::memcpy(out.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace prema::util
