#pragma once

#include <array>
#include <cstddef>
#include <string_view>

/// \file time_ledger.hpp
/// Per-processor accounting of where time goes. The categories are exactly the
/// legend entries of the paper's Figures 3-6: each virtual processor charges
/// every activity (or gap) to one category, and the benchmark harness prints
/// the resulting stacked breakdown per processor.

namespace prema::util {

/// Activity categories appearing across all six panel types of Figs. 3-6.
enum class TimeCategory : std::uint8_t {
  kComputation = 0,   ///< useful application work (work-unit bodies)
  kCallback,          ///< application handler/callback bodies outside work units
  kScheduling,        ///< pick-and-process loop, queue management
  kMessaging,         ///< per-message CPU send/receive overhead
  kPolling,           ///< preemptive polling-thread wakeups (PREMA implicit)
  kPartitionCalc,     ///< (re)partitioner execution (ParMETIS panels)
  kSynchronization,   ///< barrier / all-to-all waits inserted for balancing
  kIdle,              ///< no work and nothing arriving
  kCount
};

constexpr std::size_t kTimeCategoryCount = static_cast<std::size_t>(TimeCategory::kCount);

/// Human-readable label matching the paper's figure legends.
std::string_view time_category_name(TimeCategory c);

/// Accumulated seconds per category for one processor.
class TimeLedger {
 public:
  /// Charge `seconds` (>= 0) to category `c`.
  void charge(TimeCategory c, double seconds);

  [[nodiscard]] double get(TimeCategory c) const {
    return buckets_[static_cast<std::size_t>(c)];
  }

  /// Sum over all categories (equals the processor's finish time when every
  /// instant has been charged somewhere).
  [[nodiscard]] double total() const;

  /// Total minus idle: the time the processor was actually doing something.
  [[nodiscard]] double busy() const;

  /// Everything that is neither computation/callback nor idle: the runtime
  /// overhead the paper reports as a percentage of useful computation.
  [[nodiscard]] double overhead() const;

  void clear() { buckets_.fill(0.0); }

  /// Element-wise accumulate another ledger into this one.
  TimeLedger& operator+=(const TimeLedger& other);

 private:
  std::array<double, kTimeCategoryCount> buckets_{};
};

}  // namespace prema::util
