#include "support/byte_buffer.hpp"

// Header-only today; this translation unit anchors the library and keeps a
// place for out-of-line helpers if the wire format grows.
