#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

/// \file thread_annotations.hpp
/// Clang Thread Safety Analysis support for the whole runtime stack.
///
/// Two things live here:
///
///  1. The PREMA_* annotation macros (Clang's `-Wthread-safety` attribute
///     set, https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under
///     any non-Clang compiler they expand to nothing, so GCC builds see
///     plain classes.
///
///  2. Annotated synchronization primitives — `Mutex`, `RecursiveMutex`,
///     `LockGuard`, `UniqueLock`, `RecursiveLock`, `CondVar` — thin wrappers
///     over the `std::` equivalents that carry the capability attributes.
///     All library code uses these instead of raw `std::mutex` /
///     `std::lock_guard`; `prema_lint` enforces that rule, which is what
///     makes the static analysis airtight: a mutex the analysis cannot see
///     cannot exist outside this header.
///
/// The analysis build is `-DPREMA_THREAD_SAFETY=ON` with a Clang toolchain
/// (adds `-Wthread-safety`; combine with the default-on PREMA_WERROR to make
/// findings fatal). See README "Correctness tooling".

#if defined(__clang__)
#define PREMA_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PREMA_THREAD_ANNOTATION__(x)  // non-Clang: annotations compile away
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define PREMA_CAPABILITY(x) PREMA_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define PREMA_SCOPED_CAPABILITY PREMA_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define PREMA_GUARDED_BY(x) PREMA_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field: the pointed-to data is protected by `x`.
#define PREMA_PT_GUARDED_BY(x) PREMA_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define PREMA_REQUIRES(...) \
  PREMA_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not on entry).
#define PREMA_ACQUIRE(...) \
  PREMA_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define PREMA_RELEASE(...) \
  PREMA_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; first arg is the success return value.
#define PREMA_TRY_ACQUIRE(...) \
  PREMA_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held.
#define PREMA_EXCLUDES(...) PREMA_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares (without runtime effect) that the capability is held — the
/// escape hatch for aliasing the analysis cannot follow, e.g. "this NodeRt's
/// `node->state_mutex()` is the same lock the caller acquired through a
/// different expression". Use sparingly and document why at each site.
#define PREMA_ASSERT_CAPABILITY(x) \
  PREMA_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability (lets attribute
/// expressions name a private mutex through an accessor).
#define PREMA_RETURN_CAPABILITY(x) PREMA_THREAD_ANNOTATION__(lock_returned(x))

/// Analyzer-only guard declaration for fields protected by a lock the class
/// cannot name in a Clang attribute — e.g. the inner structs of
/// `ReliableLink` (protected by the enclosing class' `mu_`) or a coordinator
/// struct guarded by its owner's `state_mutex()`. Expands to nothing for
/// every compiler; `prema_analyze`'s lock-flow pass reads it as GUARDED_BY
/// coverage. The argument is documentation: name the guarding lock.
#define PREMA_GUARDED_BY_CONTEXT(x)

/// Opt a function out of the analysis entirely (last resort).
#define PREMA_NO_THREAD_SAFETY_ANALYSIS \
  PREMA_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace prema::util {

/// `std::mutex` carrying the capability attribute.
class PREMA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PREMA_ACQUIRE() { mu_.lock(); }
  void unlock() PREMA_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() PREMA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std:: interop inside this header only.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// `std::recursive_mutex` carrying the capability attribute. Used for the
/// per-node runtime state lock, where protocol layers legitimately nest
/// (policy handler -> MOL migration -> delivery hooks).
class PREMA_CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() PREMA_ACQUIRE() { mu_.lock(); }
  void unlock() PREMA_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() PREMA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  [[nodiscard]] std::recursive_mutex& native() { return mu_; }

 private:
  std::recursive_mutex mu_;
};

/// RAII exclusive lock over `Mutex` (the `std::lock_guard` shape).
class PREMA_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) PREMA_ACQUIRE(m) : mu_(m) { mu_.native().lock(); }
  ~LockGuard() PREMA_RELEASE() { mu_.native().unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Movable/unlockable lock over `Mutex` (the `std::unique_lock` shape);
/// required by `CondVar` waits.
class PREMA_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) PREMA_ACQUIRE(m) : lk_(m.native()) {}
  ~UniqueLock() PREMA_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void unlock() PREMA_RELEASE() { lk_.unlock(); }
  void lock() PREMA_ACQUIRE() { lk_.lock(); }

  /// The wrapped lock, for CondVar interop inside this header only.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

/// RAII lock over `RecursiveMutex`. Returned by value from
/// `dmcs::Node::lock_state()`; guaranteed copy elision means the move
/// constructor never runs in practice.
class PREMA_SCOPED_CAPABILITY RecursiveLock {
 public:
  explicit RecursiveLock(RecursiveMutex& m) PREMA_ACQUIRE(m) : lk_(m.native()) {}
  ~RecursiveLock() PREMA_RELEASE() {}

  RecursiveLock(RecursiveLock&&) noexcept = default;
  RecursiveLock(const RecursiveLock&) = delete;
  RecursiveLock& operator=(const RecursiveLock&) = delete;

  void unlock() PREMA_RELEASE() { lk_.unlock(); }
  void lock() PREMA_ACQUIRE() { lk_.lock(); }

 private:
  std::unique_lock<std::recursive_mutex> lk_;
};

/// Condition variable working with `Mutex`/`UniqueLock`. Only the primitives
/// the runtime actually needs; waits re-establish the capability on return,
/// which matches the analysis' model (the lock is held again when the wait
/// returns), so no annotation is required on the wait functions.
class CondVar {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(UniqueLock& lk) { cv_.wait(lk.native()); }

  template <typename Rep, typename Period>
  void wait_for(UniqueLock& lk, const std::chrono::duration<Rep, Period>& d) {
    cv_.wait_for(lk.native(), d);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace prema::util
