#pragma once

#include <cstdint>

/// \file rng.hpp
/// Deterministic, seedable random number generation. Every stochastic choice
/// in the emulator, the workload generators, and the partitioner goes through
/// these so that experiments replay bit-identically from a seed.

namespace prema::util {

/// SplitMix64: used to expand a single seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator used for all simulation draws.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace prema::util
