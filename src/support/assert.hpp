#pragma once

#include <cstdio>
#include <cstdlib>

/// \file assert.hpp
/// Always-on invariant checks for the runtime. Unlike <cassert>, these fire in
/// release builds too: a runtime system that silently corrupts its directory
/// or message queues is worse than one that aborts loudly.

namespace prema::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "PREMA_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace prema::util

/// Abort with a diagnostic if `expr` is false. Enabled in all build types.
#define PREMA_CHECK(expr)                                                \
  do {                                                                   \
    if (!(expr)) ::prema::util::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

/// Like PREMA_CHECK but with an explanatory message.
#define PREMA_CHECK_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) ::prema::util::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
