#include "graph/generators.hpp"

#include <cmath>
#include <set>

namespace prema::graph {

CsrGraph grid2d(VertexId w, VertexId h, double vwgt, double ewgt) {
  PREMA_CHECK(w > 0 && h > 0);
  GraphBuilder b(w * h, vwgt);
  auto id = [w](VertexId x, VertexId y) { return y * w + x; };
  for (VertexId y = 0; y < h; ++y) {
    for (VertexId x = 0; x < w; ++x) {
      if (x + 1 < w) b.add_edge(id(x, y), id(x + 1, y), ewgt);
      if (y + 1 < h) b.add_edge(id(x, y), id(x, y + 1), ewgt);
    }
  }
  return b.build();
}

CsrGraph grid3d(VertexId w, VertexId h, VertexId d, double vwgt, double ewgt) {
  PREMA_CHECK(w > 0 && h > 0 && d > 0);
  GraphBuilder b(w * h * d, vwgt);
  auto id = [w, h](VertexId x, VertexId y, VertexId z) {
    return (z * h + y) * w + x;
  };
  for (VertexId z = 0; z < d; ++z) {
    for (VertexId y = 0; y < h; ++y) {
      for (VertexId x = 0; x < w; ++x) {
        if (x + 1 < w) b.add_edge(id(x, y, z), id(x + 1, y, z), ewgt);
        if (y + 1 < h) b.add_edge(id(x, y, z), id(x, y + 1, z), ewgt);
        if (z + 1 < d) b.add_edge(id(x, y, z), id(x, y, z + 1), ewgt);
      }
    }
  }
  return b.build();
}

CsrGraph random_geometric(VertexId n, double radius, util::Rng& rng) {
  PREMA_CHECK(n > 0 && radius > 0.0);
  std::vector<std::pair<double, double>> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (VertexId i = 0; i < n; ++i) pts.emplace_back(rng.uniform(), rng.uniform());
  GraphBuilder b(n);
  const double r2 = radius * radius;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      const double dx = pts[static_cast<std::size_t>(i)].first -
                        pts[static_cast<std::size_t>(j)].first;
      const double dy = pts[static_cast<std::size_t>(i)].second -
                        pts[static_cast<std::size_t>(j)].second;
      if (dx * dx + dy * dy <= r2) b.add_edge(i, j);
    }
  }
  return b.build();
}

CsrGraph random_connected(VertexId n, EdgeIdx extra_edges, util::Rng& rng) {
  PREMA_CHECK(n > 1);
  GraphBuilder b(n);
  std::set<std::pair<VertexId, VertexId>> used;
  for (VertexId i = 0; i + 1 < n; ++i) {
    b.add_edge(i, i + 1);
    used.emplace(i, i + 1);
  }
  EdgeIdx added = 0;
  int attempts = 0;
  while (added < extra_edges && attempts < 50 * extra_edges + 100) {
    ++attempts;
    auto u = static_cast<VertexId>(rng.below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<VertexId>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!used.emplace(u, v).second) continue;
    b.add_edge(u, v);
    ++added;
  }
  return b.build();
}

}  // namespace prema::graph
