#include "graph/partition_metrics.hpp"

#include <algorithm>

namespace prema::graph {

double edge_cut(const CsrGraph& g, const Partition& part) {
  PREMA_CHECK(part.size() == static_cast<std::size_t>(g.num_vertices()));
  double cut = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v && part[static_cast<std::size_t>(v)] !=
                             part[static_cast<std::size_t>(nbrs[i])]) {
        cut += wgts[i];
      }
    }
  }
  return cut;
}

double migration_volume(const CsrGraph& g, const Partition& from,
                        const Partition& to) {
  PREMA_CHECK(from.size() == to.size());
  PREMA_CHECK(from.size() == static_cast<std::size_t>(g.num_vertices()));
  double moved = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (from[static_cast<std::size_t>(v)] != to[static_cast<std::size_t>(v)]) {
      moved += g.vertex_weight(v);
    }
  }
  return moved;
}

std::vector<double> part_weights(const CsrGraph& g, const Partition& part, int k) {
  PREMA_CHECK(k > 0);
  std::vector<double> w(static_cast<std::size_t>(k), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto p = part[static_cast<std::size_t>(v)];
    PREMA_CHECK_MSG(p >= 0 && p < k, "part id out of range");
    w[static_cast<std::size_t>(p)] += g.vertex_weight(v);
  }
  return w;
}

double imbalance(const CsrGraph& g, const Partition& part, int k) {
  const auto w = part_weights(g, part, k);
  const double total = g.total_vertex_weight();
  if (total <= 0.0) return 1.0;
  const double mean = total / k;
  const double mx = *std::max_element(w.begin(), w.end());
  return mx / mean;
}

double unified_cost(const CsrGraph& g, const Partition& old_part,
                    const Partition& new_part, double alpha) {
  return edge_cut(g, new_part) + alpha * migration_volume(g, old_part, new_part);
}

}  // namespace prema::graph
