#pragma once

#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

/// \file partition_metrics.hpp
/// Quality metrics of a k-way partition — the quantities the unified
/// repartitioning algorithm optimizes (|Ecut| + alpha * |Vmove|, paper §3.1)
/// and the balance statistics the evaluation reports.

namespace prema::graph {

/// A partition assigns every vertex a part in [0, k).
using Partition = std::vector<std::int32_t>;

/// Sum of edge weights crossing part boundaries (each edge counted once).
double edge_cut(const CsrGraph& g, const Partition& part);

/// Total vertex weight that changed parts between `from` and `to` — the data
/// redistribution cost |Vmove| of adaptive repartitioning.
double migration_volume(const CsrGraph& g, const Partition& from,
                        const Partition& to);

/// Per-part total vertex weight.
std::vector<double> part_weights(const CsrGraph& g, const Partition& part, int k);

/// max(part weight) / mean(part weight); 1.0 is perfect balance.
double imbalance(const CsrGraph& g, const Partition& part, int k);

/// The unified repartitioning objective: |Ecut| + alpha * |Vmove|.
double unified_cost(const CsrGraph& g, const Partition& old_part,
                    const Partition& new_part, double alpha);

}  // namespace prema::graph
