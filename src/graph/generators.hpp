#pragma once

#include "graph/csr_graph.hpp"
#include "support/rng.hpp"

/// \file generators.hpp
/// Deterministic graph generators used by the partitioner tests, the
/// repartitioning baseline, and the benchmark workload builder.

namespace prema::graph {

/// 2-D grid (w x h vertices, 4-neighbour edges) — the classic mesh stand-in.
CsrGraph grid2d(VertexId w, VertexId h, double vwgt = 1.0, double ewgt = 1.0);

/// 3-D grid (w x h x d vertices, 6-neighbour edges).
CsrGraph grid3d(VertexId w, VertexId h, VertexId d, double vwgt = 1.0,
                double ewgt = 1.0);

/// Random geometric graph: n points in the unit square, edges within
/// `radius`. Produces irregular, mesh-like degree distributions.
CsrGraph random_geometric(VertexId n, double radius, util::Rng& rng);

/// Connected random graph: a Hamiltonian path plus `extra_edges` random
/// chords (no duplicates, no self loops).
CsrGraph random_connected(VertexId n, EdgeIdx extra_edges, util::Rng& rng);

}  // namespace prema::graph
