#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

/// \file csr_graph.hpp
/// Compressed-sparse-row graphs with vertex and edge weights — the input
/// format of the multilevel partitioner (src/partition), mirroring what
/// METIS-family tools consume. Vertices model work units / mesh subdomains;
/// vertex weights model computational load; edge weights model communication
/// volume between neighbouring units.

namespace prema::graph {

using VertexId = std::int32_t;
using EdgeIdx = std::int64_t;

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from CSR arrays. `xadj` has n+1 entries; `adjncy[xadj[v]..xadj[v+1])`
  /// are v's neighbours with parallel `adjwgt` weights. The adjacency must be
  /// symmetric (u in adj(v) <=> v in adj(u), equal weights) — checked by
  /// validate().
  CsrGraph(std::vector<EdgeIdx> xadj, std::vector<VertexId> adjncy,
           std::vector<double> vwgt, std::vector<double> adjwgt);

  /// Graph with n vertices and no edges (unit weights).
  static CsrGraph edgeless(VertexId n, double weight = 1.0);

  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(vwgt_.size());
  }
  [[nodiscard]] EdgeIdx num_edges() const {
    return static_cast<EdgeIdx>(adjncy_.size()) / 2;  // stored both directions
  }

  [[nodiscard]] double vertex_weight(VertexId v) const {
    return vwgt_[static_cast<std::size_t>(v)];
  }
  void set_vertex_weight(VertexId v, double w) {
    vwgt_[static_cast<std::size_t>(v)] = w;
  }
  [[nodiscard]] double total_vertex_weight() const;

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {adjncy_.data() + xadj_[static_cast<std::size_t>(v)],
            adjncy_.data() + xadj_[static_cast<std::size_t>(v) + 1]};
  }
  [[nodiscard]] std::span<const double> edge_weights(VertexId v) const {
    return {adjwgt_.data() + xadj_[static_cast<std::size_t>(v)],
            adjwgt_.data() + xadj_[static_cast<std::size_t>(v) + 1]};
  }
  [[nodiscard]] std::size_t degree(VertexId v) const {
    return static_cast<std::size_t>(xadj_[static_cast<std::size_t>(v) + 1] -
                                    xadj_[static_cast<std::size_t>(v)]);
  }

  /// Abort if the CSR structure is inconsistent or asymmetric.
  void validate() const;

 private:
  std::vector<EdgeIdx> xadj_{0};
  std::vector<VertexId> adjncy_;
  std::vector<double> vwgt_;
  std::vector<double> adjwgt_;
};

/// Incremental builder: add undirected edges in any order, then build CSR.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId n, double default_vwgt = 1.0)
      : vwgt_(static_cast<std::size_t>(n), default_vwgt),
        adj_(static_cast<std::size_t>(n)) {}

  void set_vertex_weight(VertexId v, double w) {
    vwgt_[static_cast<std::size_t>(v)] = w;
  }

  /// Add undirected edge {u, v} with weight `w`. Duplicate edges are merged
  /// by summing weights at build time. Self-loops are rejected.
  void add_edge(VertexId u, VertexId v, double w = 1.0);

  [[nodiscard]] CsrGraph build() const;

 private:
  std::vector<double> vwgt_;
  std::vector<std::vector<std::pair<VertexId, double>>> adj_;
};

}  // namespace prema::graph
