#include "graph/csr_graph.hpp"

#include <algorithm>
#include <map>

namespace prema::graph {

CsrGraph::CsrGraph(std::vector<EdgeIdx> xadj, std::vector<VertexId> adjncy,
                   std::vector<double> vwgt, std::vector<double> adjwgt)
    : xadj_(std::move(xadj)),
      adjncy_(std::move(adjncy)),
      vwgt_(std::move(vwgt)),
      adjwgt_(std::move(adjwgt)) {
  PREMA_CHECK_MSG(xadj_.size() == vwgt_.size() + 1, "xadj size mismatch");
  PREMA_CHECK_MSG(adjncy_.size() == adjwgt_.size(), "adjwgt size mismatch");
  PREMA_CHECK_MSG(xadj_.front() == 0 &&
                      xadj_.back() == static_cast<EdgeIdx>(adjncy_.size()),
                  "xadj bounds mismatch");
}

CsrGraph CsrGraph::edgeless(VertexId n, double weight) {
  CsrGraph g;
  g.xadj_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.vwgt_.assign(static_cast<std::size_t>(n), weight);
  return g;
}

double CsrGraph::total_vertex_weight() const {
  double total = 0.0;
  for (double w : vwgt_) total += w;
  return total;
}

void CsrGraph::validate() const {
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    PREMA_CHECK_MSG(xadj_[static_cast<std::size_t>(v)] <=
                        xadj_[static_cast<std::size_t>(v) + 1],
                    "xadj not monotone");
    const auto nbrs = neighbors(v);
    const auto wgts = edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      PREMA_CHECK_MSG(u >= 0 && u < n, "neighbor out of range");
      PREMA_CHECK_MSG(u != v, "self loop");
      // Find the reverse edge with equal weight.
      const auto back = neighbors(u);
      const auto back_w = edge_weights(u);
      bool found = false;
      for (std::size_t j = 0; j < back.size(); ++j) {
        if (back[j] == v && back_w[j] == wgts[i]) {
          found = true;
          break;
        }
      }
      PREMA_CHECK_MSG(found, "asymmetric adjacency");
    }
  }
}

void GraphBuilder::add_edge(VertexId u, VertexId v, double w) {
  PREMA_CHECK_MSG(u != v, "self loops are not allowed");
  PREMA_CHECK_MSG(u >= 0 && v >= 0 &&
                      static_cast<std::size_t>(u) < adj_.size() &&
                      static_cast<std::size_t>(v) < adj_.size(),
                  "edge endpoint out of range");
  adj_[static_cast<std::size_t>(u)].emplace_back(v, w);
  adj_[static_cast<std::size_t>(v)].emplace_back(u, w);
}

CsrGraph GraphBuilder::build() const {
  const auto n = adj_.size();
  std::vector<EdgeIdx> xadj(n + 1, 0);
  std::vector<VertexId> adjncy;
  std::vector<double> adjwgt;
  for (std::size_t v = 0; v < n; ++v) {
    // Merge duplicates deterministically (sorted by neighbor id).
    std::map<VertexId, double> merged;
    for (const auto& [u, w] : adj_[v]) merged[u] += w;
    xadj[v + 1] = xadj[v] + static_cast<EdgeIdx>(merged.size());
    for (const auto& [u, w] : merged) {
      adjncy.push_back(u);
      adjwgt.push_back(w);
    }
  }
  return CsrGraph(std::move(xadj), std::move(adjncy), vwgt_, std::move(adjwgt));
}

}  // namespace prema::graph
