#include "mol/comm_graph.hpp"

namespace prema::mol {

void CommGraph::record_send(const MobilePtr& src, const MobilePtr& dst,
                            ProcId dst_proc, std::size_t bytes) {
  util::LockGuard g(mu_);
  // Writes go through the guarded members directly (not via local
  // references) so the analyzer's guard inheritance covers every field.
  edges_[{src, dst}].msgs += 1;
  edges_[{src, dst}].bytes += bytes;
  by_proc_[dst_proc].msgs += 1;
  by_proc_[dst_proc].bytes += bytes;
  total_msgs_ += 1;
  total_bytes_ += bytes;
}

void CommGraph::set_coords(const MobilePtr& ptr, const Coords& c) {
  util::LockGuard g(mu_);
  coords_[ptr] = c;
}

std::optional<Coords> CommGraph::coords(const MobilePtr& ptr) const {
  util::LockGuard g(mu_);
  const auto it = coords_.find(ptr);
  if (it == coords_.end()) return std::nullopt;
  return it->second;
}

CommGraph::ObjectSlice CommGraph::extract(const MobilePtr& ptr) {
  util::LockGuard g(mu_);
  ObjectSlice slice;
  const auto cit = coords_.find(ptr);
  if (cit != coords_.end()) {
    slice.coords = cit->second;
    coords_.erase(cit);
  }
  // Outgoing edges travel with the object; erase as we collect so the local
  // slab no longer double-counts them once the object is elsewhere.
  auto it = edges_.lower_bound({ptr, MobilePtr{}});
  while (it != edges_.end() && it->first.first == ptr) {
    slice.edges.push_back(CommEdge{it->first.first, it->first.second,
                                   it->second.msgs, it->second.bytes});
    total_msgs_ -= it->second.msgs;
    total_bytes_ -= it->second.bytes;
    it = edges_.erase(it);
  }
  return slice;
}

void CommGraph::install(const MobilePtr& ptr, const ObjectSlice& slice) {
  util::LockGuard g(mu_);
  if (slice.coords) coords_[ptr] = *slice.coords;
  // Additive merge, inlined rather than calling merge_edge: mu_ is not
  // recursive, and install must be one atomic transition.
  for (const CommEdge& e : slice.edges) {
    edges_[{e.src, e.dst}].msgs += e.msgs;
    edges_[{e.src, e.dst}].bytes += e.bytes;
    total_msgs_ += e.msgs;
    total_bytes_ += e.bytes;
  }
}

void CommGraph::merge_edge(const MobilePtr& src, const MobilePtr& dst,
                           std::uint64_t msgs, std::uint64_t bytes) {
  util::LockGuard g(mu_);
  edges_[{src, dst}].msgs += msgs;
  edges_[{src, dst}].bytes += bytes;
  total_msgs_ += msgs;
  total_bytes_ += bytes;
}

std::vector<CommEdge> CommGraph::edges() const {
  util::LockGuard g(mu_);
  std::vector<CommEdge> out;
  out.reserve(edges_.size());
  for (const auto& [key, cnt] : edges_) {
    out.push_back(CommEdge{key.first, key.second, cnt.msgs, cnt.bytes});
  }
  return out;
}

std::vector<ProcTraffic> CommGraph::proc_traffic() const {
  util::LockGuard g(mu_);
  std::vector<ProcTraffic> out;
  out.reserve(by_proc_.size());
  for (const auto& [proc, cnt] : by_proc_) {
    out.push_back(ProcTraffic{proc, cnt.msgs, cnt.bytes});
  }
  return out;
}

CommGraph::Totals CommGraph::totals() const {
  util::LockGuard g(mu_);
  return Totals{total_msgs_, total_bytes_};
}

}  // namespace prema::mol
