#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dmcs/machine.hpp"
#include "mol/comm_graph.hpp"
#include "mol/delivery.hpp"
#include "mol/mobile_object.hpp"
#include "mol/mobile_ptr.hpp"
#include "support/thread_annotations.hpp"

/// \file mol.hpp
/// The Mobile Object Layer (Chrisochoides et al. 2000): a global namespace of
/// migratable objects over the DMCS. Provides
///   - mobile pointers: location-independent names;
///   - transparent migration: an object, its pending (queued) messages, and
///     its ordering state move together;
///   - automatic message forwarding: messages sent to a stale location chase
///     the object along forwarding addresses, and the final receiver lazily
///     updates the sender's location cache;
///   - per-sender FIFO ordering: messages from one sender to one object are
///     delivered in send order even across migrations (sequence numbers and a
///     resequencing buffer that migrates with the object).
///
/// Concurrency: every public method takes the node's state lock itself
/// (Node::state_mutex, recursive) before touching the directory, so callers —
/// MolLayer's registered DMCS handlers, the PREMA runtime facade, balancing
/// policies running on the polling thread — need no locking discipline of
/// their own; holding the state lock already (the runtime does) just nests.
/// Hooks installed via set_hooks are invoked *with the state lock held*.

namespace prema::mol {

/// Per-node Mobile Object Layer state and protocol logic.
class Mol {
 public:
  /// Callbacks into the layer above (the scheduler / PREMA runtime).
  struct Hooks {
    /// An application message was accepted in order for a local object.
    std::function<void(Delivery&&)> on_delivery;
    /// Surrender the not-yet-executed deliveries queued for `ptr`; they will
    /// migrate with the object. May return an empty vector.
    std::function<std::vector<Delivery>(const MobilePtr&)> take_queued;
    /// An object (and its queued deliveries, re-announced via on_delivery)
    /// arrived by migration.
    std::function<void(const MobilePtr&)> on_installed;
    /// The mobile object whose handler is currently executing on this
    /// processor (null when the send comes from main/drivers). Used to
    /// attribute sends to comm-graph edges; may be left unset.
    std::function<MobilePtr()> current_sender;
  };

  struct Stats {
    std::uint64_t accepted = 0;        ///< in-order deliveries handed upward
    std::uint64_t resequenced = 0;     ///< messages held in the reorder buffer
    std::uint64_t forwards = 0;        ///< route messages passed along
    std::uint64_t migrations_out = 0;
    std::uint64_t migrations_in = 0;
    std::uint64_t location_updates = 0;
  };

  Mol(dmcs::Node& node, const ObjectTypeRegistry& types,
      dmcs::HandlerId route_h, dmcs::HandlerId migrate_h, dmcs::HandlerId update_h,
      dmcs::HandlerId offer_h, dmcs::HandlerId commit_h);

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Install a new local object and return its machine-unique mobile pointer
  /// (home = this processor).
  MobilePtr add_object(std::unique_ptr<MobileObject> obj);

  /// Send an application message to the object named by `target`, wherever it
  /// currently lives. `handler` is a PREMA-level object-handler id; `weight`
  /// is the application's load hint for the resulting work unit.
  void message(const MobilePtr& target, ObjectHandlerId handler,
               std::vector<std::uint8_t> payload, double weight = 1.0);

  /// Uninstall a local object and ship it — with its queued deliveries and
  /// ordering state — to `dst`. The caller (balancing policy) must not
  /// migrate an object whose work unit is currently executing.
  void migrate(const MobilePtr& ptr, ProcId dst);

  /// The local object named by `ptr`, or nullptr if it is not resident here.
  /// The pointer stays valid until the object migrates away; callers that can
  /// race a migration (none today — policies only migrate idle objects) must
  /// hold the state lock across use.
  [[nodiscard]] MobileObject* find(const MobilePtr& ptr);
  [[nodiscard]] bool is_local(const MobilePtr& ptr) const;
  [[nodiscard]] std::size_t local_count() const;
  [[nodiscard]] std::vector<MobilePtr> local_ptrs() const;

  /// Snapshot copy (the poller may be mutating counters concurrently).
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] dmcs::Node& node() { return node_; }

  /// DMCS handler bodies (invoked by MolLayer's registered handlers).
  void on_route(dmcs::Message&& msg);
  void on_migrate(dmcs::Message&& msg);
  void on_location_update(dmcs::Message&& msg);
  void on_offer(dmcs::Message&& msg);
  void on_commit(dmcs::Message&& msg);

  /// Migrations offered but not yet commit-acked (transactional handoff).
  /// Zero at quiescence on a correct run — the delivery-ledger checks assert
  /// this after fault-injected experiments.
  [[nodiscard]] std::size_t in_transit_count() const;

  // -- topology accounting (coordinates + communication graph) ---------------

  /// Turn on coordinate/traffic accounting for this run. Must be called
  /// before the run starts and never mid-run: enabling it appends a topology
  /// section to the migrate wire image, so flipping it between runs (or
  /// mid-run) would change traced byte sizes and break sim determinism
  /// comparisons. The runtime enables it machine-wide when the configured
  /// policy (or any policy in a service switch schedule) wants topology.
  void enable_topology() { topology_ = true; }
  [[nodiscard]] bool topology_enabled() const { return topology_; }

  /// Register (or update) an object's spatial coordinates. A no-op unless
  /// topology accounting is enabled — so applications may call it
  /// unconditionally without perturbing scalar-policy runs.
  void set_coords(const MobilePtr& ptr, const Coords& c);
  [[nodiscard]] std::optional<Coords> coords(const MobilePtr& ptr) const;

  /// This processor's coordinate + traffic slab (its own leaf lock).
  [[nodiscard]] CommGraph& comm_graph() { return graph_; }
  [[nodiscard]] const CommGraph& comm_graph() const { return graph_; }

  /// Best-known location of `ptr`: this rank if local, else the forwarding /
  /// cached / home-directory guess.
  [[nodiscard]] ProcId location_hint(const MobilePtr& ptr) const;

 private:
  struct Buffered {
    ObjectHandlerId handler;
    double weight;
    std::vector<std::uint8_t> payload;
  };

  struct LocalEntry {
    std::unique_ptr<MobileObject> obj;
    std::uint64_t next_delivery = 0;
    /// Next seq per sender. Ordered map: migrate_locked serializes this onto
    /// the wire, and hash order would make the packed bytes nondeterministic.
    std::map<ProcId, std::uint32_t> expected;
    std::map<std::pair<ProcId, std::uint32_t>, Buffered> reorder;
  };

  // Locked bodies of the public methods; all directory state is touched here,
  // under the node's state lock (which the public wrappers acquire).
  void message_locked(const MobilePtr& target, ObjectHandlerId handler,
                      std::vector<std::uint8_t> payload, double weight)
      PREMA_REQUIRES(node_.state_mutex());
  void migrate_locked(const MobilePtr& ptr, ProcId dst)
      PREMA_REQUIRES(node_.state_mutex());
  void on_route_locked(dmcs::Message&& msg) PREMA_REQUIRES(node_.state_mutex());
  void on_migrate_locked(dmcs::Message&& msg) PREMA_REQUIRES(node_.state_mutex());
  void on_offer_locked(dmcs::Message&& msg) PREMA_REQUIRES(node_.state_mutex());
  void send_commit(ProcId to, const MobilePtr& ptr, std::uint64_t epoch)
      PREMA_REQUIRES(node_.state_mutex());

  /// Best current guess for where `ptr` lives (never this processor).
  [[nodiscard]] ProcId best_known(const MobilePtr& ptr) const
      PREMA_REQUIRES(node_.state_mutex());
  [[nodiscard]] bool is_local_locked(const MobilePtr& ptr) const
      PREMA_REQUIRES(node_.state_mutex());

  void accept(const MobilePtr& ptr, LocalEntry& entry, ProcId origin,
              std::uint32_t seq, Buffered&& msg)
      PREMA_REQUIRES(node_.state_mutex());
  void deliver(const MobilePtr& ptr, LocalEntry& entry, ProcId origin,
               Buffered&& msg) PREMA_REQUIRES(node_.state_mutex());
  void send_route(ProcId dst, const MobilePtr& target, ProcId origin,
                  std::uint32_t seq, std::uint32_t hops, ObjectHandlerId handler,
                  double weight, std::vector<std::uint8_t>&& payload)
      PREMA_REQUIRES(node_.state_mutex());
  void learn(const MobilePtr& ptr, ProcId loc) PREMA_REQUIRES(node_.state_mutex());

  dmcs::Node& node_;
  const ObjectTypeRegistry& types_;
  dmcs::HandlerId route_h_, migrate_h_, update_h_, offer_h_, commit_h_;
  Hooks hooks_;  ///< installed before run(), then read-only

  // -- directory state, guarded by the node's state lock --------------------
  // The worker thread and the preemptive polling thread both run MOL protocol
  // code (policy handlers on the poller migrate objects; the worker routes
  // application messages), so every map below is shared mutable state.
  Stats stats_ PREMA_GUARDED_BY(node_.state_mutex());
  std::uint32_t next_index_ PREMA_GUARDED_BY(node_.state_mutex()) = 0;
  /// Ordered map: local_ptrs() feeds policy decisions and migrate scans
  /// iterate it, so iteration order must be deterministic.
  std::map<MobilePtr, LocalEntry> local_
      PREMA_GUARDED_BY(node_.state_mutex());
  /// Where each object went from here (forwarding addresses).
  std::unordered_map<MobilePtr, ProcId> forwarding_
      PREMA_GUARDED_BY(node_.state_mutex());
  /// Lazily learned locations.
  std::unordered_map<MobilePtr, ProcId> cache_
      PREMA_GUARDED_BY(node_.state_mutex());
  /// Authoritative directory for the mobile pointers homed here.
  std::unordered_map<std::uint32_t, ProcId> home_dir_
      PREMA_GUARDED_BY(node_.state_mutex());
  /// Next outgoing sequence number, per target.
  std::unordered_map<MobilePtr, std::uint32_t> next_seq_out_
      PREMA_GUARDED_BY(node_.state_mutex());

  // -- transactional migration (used when the node runs reliable transport) --
  /// Offers sent but not yet commit-acked: ptr -> (destination, epoch). The
  /// forwarding address is installed at offer time, so routing keeps working
  /// while the commit is in flight; the entry only tracks the open handoff.
  struct InTransit {
    ProcId dst;
    std::uint64_t epoch;
  };
  std::unordered_map<MobilePtr, InTransit> in_transit_
      PREMA_GUARDED_BY(node_.state_mutex());
  /// Offers already installed here, keyed by (sender, epoch): a duplicated
  /// offer re-sends the commit instead of cloning the object. Bounded by the
  /// number of inbound migrations over the run.
  std::set<std::pair<ProcId, std::uint64_t>> installed_offers_
      PREMA_GUARDED_BY(node_.state_mutex());
  std::uint64_t migration_epoch_ PREMA_GUARDED_BY(node_.state_mutex()) = 0;

  // -- topology accounting ---------------------------------------------------
  /// Set once before the run (see enable_topology); read-only afterwards.
  bool topology_ = false;
  /// Guarded by its own leaf lock (comm_mu), not the state lock: policies
  /// snapshot it from the polling thread without entering the directory.
  CommGraph graph_;
};

/// Machine-wide MOL: registers the DMCS handlers once and owns one Mol per
/// processor.
class MolLayer {
 public:
  explicit MolLayer(dmcs::Machine& machine);

  [[nodiscard]] Mol& at(ProcId p);
  [[nodiscard]] ObjectTypeRegistry& types() { return types_; }

 private:
  ObjectTypeRegistry types_;
  std::vector<std::unique_ptr<Mol>> nodes_;
};

}  // namespace prema::mol
