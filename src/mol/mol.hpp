#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dmcs/machine.hpp"
#include "mol/delivery.hpp"
#include "mol/mobile_object.hpp"
#include "mol/mobile_ptr.hpp"

/// \file mol.hpp
/// The Mobile Object Layer (Chrisochoides et al. 2000): a global namespace of
/// migratable objects over the DMCS. Provides
///   - mobile pointers: location-independent names;
///   - transparent migration: an object, its pending (queued) messages, and
///     its ordering state move together;
///   - automatic message forwarding: messages sent to a stale location chase
///     the object along forwarding addresses, and the final receiver lazily
///     updates the sender's location cache;
///   - per-sender FIFO ordering: messages from one sender to one object are
///     delivered in send order even across migrations (sequence numbers and a
///     resequencing buffer that migrates with the object).
///
/// Concurrency: every public method and handler entry assumes the caller
/// holds the node's state lock (Node::lock_state); MolLayer's registered DMCS
/// handlers take it, as does the PREMA runtime facade.

namespace prema::mol {

/// Per-node Mobile Object Layer state and protocol logic.
class Mol {
 public:
  /// Callbacks into the layer above (the scheduler / PREMA runtime).
  struct Hooks {
    /// An application message was accepted in order for a local object.
    std::function<void(Delivery&&)> on_delivery;
    /// Surrender the not-yet-executed deliveries queued for `ptr`; they will
    /// migrate with the object. May return an empty vector.
    std::function<std::vector<Delivery>(const MobilePtr&)> take_queued;
    /// An object (and its queued deliveries, re-announced via on_delivery)
    /// arrived by migration.
    std::function<void(const MobilePtr&)> on_installed;
  };

  struct Stats {
    std::uint64_t accepted = 0;        ///< in-order deliveries handed upward
    std::uint64_t resequenced = 0;     ///< messages held in the reorder buffer
    std::uint64_t forwards = 0;        ///< route messages passed along
    std::uint64_t migrations_out = 0;
    std::uint64_t migrations_in = 0;
    std::uint64_t location_updates = 0;
  };

  Mol(dmcs::Node& node, const ObjectTypeRegistry& types,
      dmcs::HandlerId route_h, dmcs::HandlerId migrate_h, dmcs::HandlerId update_h);

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Install a new local object and return its machine-unique mobile pointer
  /// (home = this processor).
  MobilePtr add_object(std::unique_ptr<MobileObject> obj);

  /// Send an application message to the object named by `target`, wherever it
  /// currently lives. `handler` is a PREMA-level object-handler id; `weight`
  /// is the application's load hint for the resulting work unit.
  void message(const MobilePtr& target, ObjectHandlerId handler,
               std::vector<std::uint8_t> payload, double weight = 1.0);

  /// Uninstall a local object and ship it — with its queued deliveries and
  /// ordering state — to `dst`. The caller (balancing policy) must not
  /// migrate an object whose work unit is currently executing.
  void migrate(const MobilePtr& ptr, ProcId dst);

  /// The local object named by `ptr`, or nullptr if it is not resident here.
  [[nodiscard]] MobileObject* find(const MobilePtr& ptr);
  [[nodiscard]] bool is_local(const MobilePtr& ptr) const;
  [[nodiscard]] std::size_t local_count() const { return local_.size(); }
  [[nodiscard]] std::vector<MobilePtr> local_ptrs() const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] dmcs::Node& node() { return node_; }

  /// DMCS handler bodies (invoked by MolLayer's registered handlers).
  void on_route(dmcs::Message&& msg);
  void on_migrate(dmcs::Message&& msg);
  void on_location_update(dmcs::Message&& msg);

 private:
  struct Buffered {
    ObjectHandlerId handler;
    double weight;
    std::vector<std::uint8_t> payload;
  };

  struct LocalEntry {
    std::unique_ptr<MobileObject> obj;
    std::uint64_t next_delivery = 0;
    std::unordered_map<ProcId, std::uint32_t> expected;  ///< next seq per sender
    std::map<std::pair<ProcId, std::uint32_t>, Buffered> reorder;
  };

  /// Best current guess for where `ptr` lives (never this processor).
  [[nodiscard]] ProcId best_known(const MobilePtr& ptr) const;

  void accept(const MobilePtr& ptr, LocalEntry& entry, ProcId origin,
              std::uint32_t seq, Buffered&& msg);
  void deliver(const MobilePtr& ptr, LocalEntry& entry, ProcId origin,
               Buffered&& msg);
  void send_route(ProcId dst, const MobilePtr& target, ProcId origin,
                  std::uint32_t seq, std::uint32_t hops, ObjectHandlerId handler,
                  double weight, std::vector<std::uint8_t>&& payload);
  void learn(const MobilePtr& ptr, ProcId loc);

  dmcs::Node& node_;
  const ObjectTypeRegistry& types_;
  dmcs::HandlerId route_h_, migrate_h_, update_h_;
  Hooks hooks_;
  Stats stats_;

  std::uint32_t next_index_ = 0;
  std::unordered_map<MobilePtr, LocalEntry> local_;
  std::unordered_map<MobilePtr, ProcId> forwarding_;  ///< where it went from here
  std::unordered_map<MobilePtr, ProcId> cache_;       ///< lazily learned locations
  std::unordered_map<std::uint32_t, ProcId> home_dir_;  ///< authoritative, for our indices
  std::unordered_map<MobilePtr, std::uint32_t> next_seq_out_;  ///< per target
};

/// Machine-wide MOL: registers the DMCS handlers once and owns one Mol per
/// processor.
class MolLayer {
 public:
  explicit MolLayer(dmcs::Machine& machine);

  [[nodiscard]] Mol& at(ProcId p);
  [[nodiscard]] ObjectTypeRegistry& types() { return types_; }

 private:
  ObjectTypeRegistry types_;
  std::vector<std::unique_ptr<Mol>> nodes_;
};

}  // namespace prema::mol
