#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/byte_buffer.hpp"

/// \file mobile_object.hpp
/// Base class for application data that the runtime may migrate between
/// processors, plus the machine-wide factory registry used to rebuild an
/// object from its wire form on the destination processor.

namespace prema::mol {

/// A migratable unit of application data (a mesh subdomain, a tree node, a
/// chare's state...). Subclasses define how to serialize themselves; the
/// matching factory is registered in the ObjectTypeRegistry under the same
/// type id on every processor.
class MobileObject {
 public:
  virtual ~MobileObject() = default;

  /// Stable type tag used to pick the deserialization factory.
  [[nodiscard]] virtual std::uint32_t type_id() const = 0;

  /// Write the object's full state for migration.
  virtual void serialize(util::ByteWriter& w) const = 0;

  /// Approximate in-memory/wire size; the emulator charges migration
  /// transfer time from the actual serialized size, so this is only used by
  /// balancing policies that prefer cheap-to-move objects.
  [[nodiscard]] virtual std::size_t byte_size() const {
    util::ByteWriter w;
    serialize(w);
    return w.size();
  }
};

using ObjectFactory =
    std::function<std::unique_ptr<MobileObject>(util::ByteReader&)>;

/// Maps type ids to factories. Shared by all processors of a machine; must be
/// fully populated before the machine runs (SPMD registration).
class ObjectTypeRegistry {
 public:
  void add(std::uint32_t type_id, ObjectFactory factory) {
    PREMA_CHECK_MSG(factories_.emplace(type_id, std::move(factory)).second,
                    "duplicate mobile-object type id");
  }

  [[nodiscard]] std::unique_ptr<MobileObject> make(std::uint32_t type_id,
                                                   util::ByteReader& r) const {
    auto it = factories_.find(type_id);
    PREMA_CHECK_MSG(it != factories_.end(), "unknown mobile-object type id");
    return it->second(r);
  }

  [[nodiscard]] bool contains(std::uint32_t type_id) const {
    return factories_.find(type_id) != factories_.end();
  }

 private:
  std::unordered_map<std::uint32_t, ObjectFactory> factories_;
};

}  // namespace prema::mol
