#pragma once

#include <cstdint>
#include <vector>

#include "mol/mobile_ptr.hpp"

/// \file delivery.hpp
/// An application message that the MOL has routed to its target object and
/// accepted in order. Deliveries are what the scheduler above the MOL queues
/// and executes; when an object migrates, its not-yet-executed deliveries
/// travel with it.

namespace prema::mol {

/// Application-level handler id (the PREMA runtime's own handler table, not
/// the DMCS one — DMCS carries MOL envelopes, the MOL carries these).
using ObjectHandlerId = std::uint32_t;

struct Delivery {
  MobilePtr target;
  ObjectHandlerId handler = 0;
  ProcId origin = kNoProc;          ///< the processor that sent the message
  double weight = 1.0;              ///< application load hint
  std::uint64_t delivery_no = 0;    ///< per-object execution order
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t size_bytes() const { return payload.size(); }
};

}  // namespace prema::mol
