#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "mol/mobile_ptr.hpp"
#include "support/thread_annotations.hpp"

/// \file comm_graph.hpp
/// Topology state for communication-aware balancing policies: per-object
/// spatial coordinates and an aggregated object-to-object / proc-to-proc
/// message-traffic graph. One CommGraph per processor; the MOL delivery path
/// bumps edge counters on every application send (when topology accounting
/// is enabled), and migration carries an object's slice of the graph — its
/// coordinates plus its outgoing edges — to the receiving processor, so the
/// counters follow the object the way its queued messages do.
///
/// Concurrency: the graph sits under its own short-hold leaf lock (`comm_mu`
/// in tools/analyze/lock_hierarchy.txt) rather than the node's state lock,
/// because policies snapshot it from the polling thread while the worker is
/// recording sends. All mutators are declared transitions of the `commgraph`
/// protocol spec (tools/analyze/protocols/commgraph.txt).

namespace prema::mol {

/// Spatial position registered by the application for a mobile object. The
/// paper's target applications are mesh refiners; coordinates are whatever
/// embedding the application chooses (element centroid, tile index, ...).
struct Coords {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// One directed object-to-object traffic edge (aggregated counts).
struct CommEdge {
  MobilePtr src;
  MobilePtr dst;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
};

/// Aggregated traffic sent from this processor toward `proc` (by the best
/// location known at send time).
struct ProcTraffic {
  ProcId proc = kNoProc;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
};

class CommGraph {
 public:
  struct EdgeCount {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
  };

  /// Everything about one object that migrates with it: its coordinates and
  /// its outgoing edges (src == the object). Incoming edges stay with their
  /// senders, whose counters they are.
  struct ObjectSlice {
    std::optional<Coords> coords;
    std::vector<CommEdge> edges;
  };

  struct Totals {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
  };

  /// Record one application send from `src` to `dst`, routed toward
  /// `dst_proc`, carrying `bytes` of payload.
  void record_send(const MobilePtr& src, const MobilePtr& dst, ProcId dst_proc,
                   std::size_t bytes);

  /// Register (or move) an object's spatial coordinates.
  void set_coords(const MobilePtr& ptr, const Coords& c);
  [[nodiscard]] std::optional<Coords> coords(const MobilePtr& ptr) const;

  /// Remove and return `ptr`'s slice of the graph (outbound migration).
  [[nodiscard]] ObjectSlice extract(const MobilePtr& ptr);

  /// Install a migrated slice (inbound migration): coordinates overwrite,
  /// edge counts merge additively — so slab merging is associative and the
  /// machine-wide totals are conserved across any migration schedule.
  void install(const MobilePtr& ptr, const ObjectSlice& slice);

  /// Additively merge one edge's counts (slab merge primitive).
  void merge_edge(const MobilePtr& src, const MobilePtr& dst,
                  std::uint64_t msgs, std::uint64_t bytes);

  /// Snapshot of every object-to-object edge, deterministically ordered.
  [[nodiscard]] std::vector<CommEdge> edges() const;
  /// Snapshot of the per-destination-processor traffic tally. Unlike edges,
  /// this stays where it was recorded (it describes this processor's wire).
  [[nodiscard]] std::vector<ProcTraffic> proc_traffic() const;

  /// Machine-total check value: summed over all processors' graphs this is
  /// invariant under migration (conservation tests rely on it).
  [[nodiscard]] Totals totals() const;

 private:
  /// Leaf lock `comm_mu`: below the node's state lock (the delivery path
  /// records under it), above nothing — no other lock is taken while held.
  mutable util::Mutex mu_;
  /// Ordered maps throughout: policies iterate these snapshots to make
  /// migration decisions, so iteration order must be deterministic.
  std::map<std::pair<MobilePtr, MobilePtr>, EdgeCount> edges_
      PREMA_GUARDED_BY(mu_);
  std::map<MobilePtr, Coords> coords_ PREMA_GUARDED_BY(mu_);
  std::map<ProcId, EdgeCount> by_proc_ PREMA_GUARDED_BY(mu_);
  std::uint64_t total_msgs_ PREMA_GUARDED_BY(mu_) = 0;
  std::uint64_t total_bytes_ PREMA_GUARDED_BY(mu_) = 0;
};

}  // namespace prema::mol
