#pragma once

#include <cstdint>
#include <functional>

#include "sim/types.hpp"

/// \file mobile_ptr.hpp
/// The Mobile Object Layer's global name: a `mobile_ptr` identifies an
/// application object independently of which processor currently holds it
/// (Chrisochoides et al., "Mobile object layer", 2000). The pair
/// (home processor, index) is unique machine-wide; the home processor keeps
/// the authoritative forwarding directory for the pointers it allocated.

namespace prema::mol {

struct MobilePtr {
  ProcId home = kNoProc;
  std::uint32_t index = 0;

  [[nodiscard]] bool is_null() const { return home == kNoProc; }

  friend bool operator==(const MobilePtr&, const MobilePtr&) = default;
  friend auto operator<=>(const MobilePtr&, const MobilePtr&) = default;
};

inline constexpr MobilePtr kNullMobilePtr{};

}  // namespace prema::mol

template <>
struct std::hash<prema::mol::MobilePtr> {
  std::size_t operator()(const prema::mol::MobilePtr& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.home)) << 32) |
        p.index);
  }
};
