#include "mol/mol.hpp"

#include <utility>

#include "support/assert.hpp"
#include "support/log.hpp"

namespace prema::mol {

using dmcs::Message;
using dmcs::MsgKind;
using util::ByteReader;
using util::ByteWriter;

namespace {

void put_ptr(ByteWriter& w, const MobilePtr& p) {
  w.put<ProcId>(p.home);
  w.put<std::uint32_t>(p.index);
}

MobilePtr get_ptr(ByteReader& r) {
  MobilePtr p;
  p.home = r.get<ProcId>();
  p.index = r.get<std::uint32_t>();
  return p;
}

}  // namespace

Mol::Mol(dmcs::Node& node, const ObjectTypeRegistry& types, dmcs::HandlerId route_h,
         dmcs::HandlerId migrate_h, dmcs::HandlerId update_h,
         dmcs::HandlerId offer_h, dmcs::HandlerId commit_h)
    : node_(node),
      types_(types),
      route_h_(route_h),
      migrate_h_(migrate_h),
      update_h_(update_h),
      offer_h_(offer_h),
      commit_h_(commit_h) {}

MobilePtr Mol::add_object(std::unique_ptr<MobileObject> obj) {
  PREMA_CHECK_MSG(obj != nullptr, "cannot register a null object");
  util::RecursiveLock g(node_.state_mutex());
  const MobilePtr ptr{node_.rank(), next_index_++};
  local_.emplace(ptr, LocalEntry{std::move(obj), 0, {}, {}});
  home_dir_[ptr.index] = node_.rank();
  return ptr;
}

MobileObject* Mol::find(const MobilePtr& ptr) {
  util::RecursiveLock g(node_.state_mutex());
  auto it = local_.find(ptr);
  return it == local_.end() ? nullptr : it->second.obj.get();
}

bool Mol::is_local(const MobilePtr& ptr) const {
  util::RecursiveLock g(node_.state_mutex());
  return is_local_locked(ptr);
}

bool Mol::is_local_locked(const MobilePtr& ptr) const {
  return local_.find(ptr) != local_.end();
}

std::size_t Mol::local_count() const {
  util::RecursiveLock g(node_.state_mutex());
  return local_.size();
}

std::vector<MobilePtr> Mol::local_ptrs() const {
  util::RecursiveLock g(node_.state_mutex());
  std::vector<MobilePtr> out;
  out.reserve(local_.size());
  for (const auto& [ptr, entry] : local_) out.push_back(ptr);
  return out;
}

Mol::Stats Mol::stats() const {
  util::RecursiveLock g(node_.state_mutex());
  return stats_;
}

ProcId Mol::best_known(const MobilePtr& ptr) const {
  // The home directory is refreshed on every install, so on the home
  // processor it beats a forwarding address recorded when the object left
  // here — unless it still (stalely) points at ourselves because the install
  // notification has not arrived yet. Forwarding addresses always point to a
  // strictly later owner, so chasing them terminates; the directory and the
  // lazily learned cache are entry points into that chain.
  if (ptr.home == node_.rank()) {
    if (auto it = home_dir_.find(ptr.index);
        it != home_dir_.end() && it->second != node_.rank()) {
      return it->second;
    }
  }
  if (auto it = forwarding_.find(ptr); it != forwarding_.end()) return it->second;
  if (auto it = cache_.find(ptr); it != cache_.end()) return it->second;
  return ptr.home;
}

void Mol::message(const MobilePtr& target, ObjectHandlerId handler,
                  std::vector<std::uint8_t> payload, double weight) {
  util::RecursiveLock g(node_.state_mutex());
  message_locked(target, handler, std::move(payload), weight);
}

void Mol::message_locked(const MobilePtr& target, ObjectHandlerId handler,
                         std::vector<std::uint8_t> payload, double weight) {
  PREMA_CHECK_MSG(!target.is_null(), "message to null mobile pointer");
  const std::uint32_t seq = next_seq_out_[target]++;
  const ProcId dst = is_local_locked(target) ? node_.rank() : best_known(target);
  if (topology_ && hooks_.current_sender) {
    // Attribute the send to the executing object's outgoing edge. Routed by
    // best-known location, so the per-proc tally reflects where traffic was
    // *aimed*, which is what a clustering policy can act on.
    const MobilePtr sender = hooks_.current_sender();
    if (!sender.is_null()) {
      graph_.record_send(sender, target, dst, payload.size());
    }
  }
  send_route(dst, target, node_.rank(), seq, 0, handler, weight, std::move(payload));
}

void Mol::send_route(ProcId dst, const MobilePtr& target, ProcId origin,
                     std::uint32_t seq, std::uint32_t hops, ObjectHandlerId handler,
                     double weight, std::vector<std::uint8_t>&& payload) {
  // wire:mol.route pack w
  ByteWriter w(payload.size() + 48);
  put_ptr(w, target);
  w.put<ProcId>(origin);
  w.put<std::uint32_t>(seq);
  w.put<std::uint32_t>(hops);
  w.put<ObjectHandlerId>(handler);
  w.put<double>(weight);
  w.put_bytes(payload);
  node_.send(dst, Message{route_h_, node_.rank(), MsgKind::kApp, w.take()});
}

void Mol::on_route(Message&& msg) {
  util::RecursiveLock g(node_.state_mutex());
  on_route_locked(std::move(msg));
}

void Mol::on_route_locked(Message&& msg) {
  // wire:mol.route unpack r
  ByteReader r(msg.payload);
  const MobilePtr target = get_ptr(r);
  const ProcId origin = r.get<ProcId>();
  const std::uint32_t seq = r.get<std::uint32_t>();
  const std::uint32_t hops = r.get<std::uint32_t>();
  const auto handler = r.get<ObjectHandlerId>();
  const double weight = r.get<double>();
  auto payload = r.get_bytes();

  auto it = local_.find(target);
  if (it != local_.end()) {
    if (hops > 0 && origin != node_.rank()) {
      // The sender's location information was stale; tell it where the
      // object actually lives so future messages go direct.
      // wire:mol.update pack w
      ByteWriter w;
      put_ptr(w, target);
      w.put<ProcId>(node_.rank());
      node_.send(origin, Message{update_h_, node_.rank(), MsgKind::kSystem, w.take()});
      ++stats_.location_updates;
    }
    accept(target, it->second, origin, seq, Buffered{handler, weight, std::move(payload)});
    return;
  }

  // Not here: chase the object.
  const auto hop_limit = static_cast<std::uint32_t>(4 * node_.nprocs() + 16);
  PREMA_CHECK_MSG(hops < hop_limit, "mobile-object route loop detected");
  const ProcId next = best_known(target);
  PREMA_CHECK_MSG(next != node_.rank(), "route stuck: object unknown at its best-known location");
  ++stats_.forwards;
  send_route(next, target, origin, seq, hops + 1, handler, weight, std::move(payload));
}

void Mol::accept(const MobilePtr& ptr, LocalEntry& entry, ProcId origin,
                 std::uint32_t seq, Buffered&& msg) {
  std::uint32_t& expected = entry.expected[origin];
  PREMA_CHECK_MSG(seq >= expected, "duplicate mobile-object message");
  if (seq != expected) {
    entry.reorder.emplace(std::make_pair(origin, seq), std::move(msg));
    ++stats_.resequenced;
    return;
  }
  deliver(ptr, entry, origin, std::move(msg));
  ++expected;
  for (;;) {
    auto it = entry.reorder.find({origin, expected});
    if (it == entry.reorder.end()) break;
    deliver(ptr, entry, origin, std::move(it->second));
    entry.reorder.erase(it);
    ++expected;
  }
}

void Mol::deliver(const MobilePtr& ptr, LocalEntry& entry, ProcId origin,
                  Buffered&& msg) {
  ++stats_.accepted;
  Delivery d;
  d.target = ptr;
  d.handler = msg.handler;
  d.origin = origin;
  d.weight = msg.weight;
  d.delivery_no = entry.next_delivery++;
  d.payload = std::move(msg.payload);
  PREMA_CHECK_MSG(static_cast<bool>(hooks_.on_delivery),
                  "MOL has no delivery sink installed");
  hooks_.on_delivery(std::move(d));
}

void Mol::migrate(const MobilePtr& ptr, ProcId dst) {
  util::RecursiveLock g(node_.state_mutex());
  migrate_locked(ptr, dst);
}

void Mol::migrate_locked(const MobilePtr& ptr, ProcId dst) {
  PREMA_CHECK_MSG(dst >= 0 && dst < node_.nprocs(), "migrate to invalid rank");
  auto it = local_.find(ptr);
  PREMA_CHECK_MSG(it != local_.end(), "cannot migrate a non-local object");
  if (dst == node_.rank()) return;
  LocalEntry entry = std::move(it->second);
  local_.erase(it);

  std::vector<Delivery> queued;
  if (hooks_.take_queued) queued = hooks_.take_queued(ptr);

  // wire:mol.migrate pack w
  ByteWriter w;
  put_ptr(w, ptr);
  w.put<std::uint32_t>(entry.obj->type_id());
  {
    ByteWriter ow;
    entry.obj->serialize(ow);
    w.put_bytes(ow.bytes());
  }
  w.put<std::uint64_t>(entry.next_delivery);
  w.put<std::uint64_t>(entry.expected.size());
  for (const auto& [origin, seq] : entry.expected) {
    w.put<ProcId>(origin);
    w.put<std::uint32_t>(seq);
  }
  w.put<std::uint64_t>(queued.size());
  for (const auto& d : queued) {
    w.put<ObjectHandlerId>(d.handler);
    w.put<ProcId>(d.origin);
    w.put<double>(d.weight);
    w.put<std::uint64_t>(d.delivery_no);
    w.put_bytes(d.payload);
  }
  w.put<std::uint64_t>(entry.reorder.size());
  for (const auto& [key, buffered] : entry.reorder) {
    w.put<ProcId>(key.first);
    w.put<std::uint32_t>(key.second);
    w.put<ObjectHandlerId>(buffered.handler);
    w.put<double>(buffered.weight);
    w.put_bytes(buffered.payload);
  }
  if (topology_) {
    // Topology appendix: the object's coordinates and outgoing comm-graph
    // edges travel with it. Present exactly when topology accounting is on,
    // which is fixed before the run — so traced migration byte sizes stay
    // deterministic within a run and identical across runs of the same
    // configuration.
    const CommGraph::ObjectSlice slice = graph_.extract(ptr);
    w.put<std::uint8_t>(slice.coords ? 1 : 0);
    if (slice.coords) {
      w.put<double>(slice.coords->x);
      w.put<double>(slice.coords->y);
      w.put<double>(slice.coords->z);
    }
    w.put<std::uint64_t>(slice.edges.size());
    for (const CommEdge& e : slice.edges) {
      put_ptr(w, e.dst);
      w.put<std::uint64_t>(e.msgs);
      w.put<std::uint64_t>(e.bytes);
    }
  }

  forwarding_[ptr] = dst;
  cache_.erase(ptr);
  ++stats_.migrations_out;
  if (auto* ts = node_.trace()) ts->migration_out(node_.now(), dst, w.size());

  if (!node_.reliable_transport()) {
    node_.send(dst, Message{migrate_h_, node_.rank(), MsgKind::kSystem, w.take()});
    return;
  }
  // Transactional handoff: wrap the migration image in an *offer* and hold
  // the (ptr, epoch) open until the receiver's commit comes back. The object
  // is installed exactly once at the receiver (duplicated offers are absorbed
  // by its installed-offer ledger), and the open-handoff set here must drain
  // to empty at quiescence — a dropped offer or commit keeps retransmitting
  // at the transport layer until it lands.
  const std::uint64_t epoch = ++migration_epoch_;
  in_transit_[ptr] = InTransit{dst, epoch};
  // wire:mol.offer pack ow
  ByteWriter ow;
  put_ptr(ow, ptr);
  ow.put<std::uint64_t>(epoch);
  ow.put_bytes(w.bytes());
  node_.send(dst, Message{offer_h_, node_.rank(), MsgKind::kSystem, ow.take()});
}

std::size_t Mol::in_transit_count() const {
  util::RecursiveLock g(node_.state_mutex());
  return in_transit_.size();
}

void Mol::on_offer(Message&& msg) {
  util::RecursiveLock g(node_.state_mutex());
  on_offer_locked(std::move(msg));
}

void Mol::on_offer_locked(Message&& msg) {
  const ProcId from = msg.src;
  // wire:mol.offer unpack r
  ByteReader r(msg.payload);
  const MobilePtr ptr = get_ptr(r);
  const auto epoch = r.get<std::uint64_t>();
  if (!installed_offers_.emplace(from, epoch).second) {
    // Already installed this handoff (duplicated offer): just re-ack.
    send_commit(from, ptr, epoch);
    return;
  }
  Message inner;
  inner.handler = migrate_h_;
  inner.src = from;
  inner.kind = MsgKind::kSystem;
  inner.payload = r.get_bytes();
  on_migrate_locked(std::move(inner));
  send_commit(from, ptr, epoch);
}

void Mol::send_commit(ProcId to, const MobilePtr& ptr, std::uint64_t epoch) {
  // wire:mol.commit pack w
  ByteWriter w;
  put_ptr(w, ptr);
  w.put<std::uint64_t>(epoch);
  node_.send(to, Message{commit_h_, node_.rank(), MsgKind::kSystem, w.take()});
}

void Mol::on_commit(Message&& msg) {
  util::RecursiveLock g(node_.state_mutex());
  // wire:mol.commit unpack r
  ByteReader r(msg.payload);
  const MobilePtr ptr = get_ptr(r);
  const auto epoch = r.get<std::uint64_t>();
  auto it = in_transit_.find(ptr);
  if (it != in_transit_.end() && it->second.epoch == epoch) in_transit_.erase(it);
}

void Mol::on_migrate(Message&& msg) {
  util::RecursiveLock g(node_.state_mutex());
  on_migrate_locked(std::move(msg));
}

void Mol::on_migrate_locked(Message&& msg) {
  if (auto* ts = node_.trace()) {
    ts->migration_in(node_.now(), msg.src, msg.payload.size());
  }
  // wire:mol.migrate unpack r
  ByteReader r(msg.payload);
  const MobilePtr ptr = get_ptr(r);
  const auto type_id = r.get<std::uint32_t>();
  auto obj_bytes = r.get_bytes();
  LocalEntry entry;
  {
    ByteReader or_(obj_bytes);
    entry.obj = types_.make(type_id, or_);
  }
  entry.next_delivery = r.get<std::uint64_t>();
  const auto n_expected = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_expected; ++i) {
    const auto origin = r.get<ProcId>();
    const auto seq = r.get<std::uint32_t>();
    entry.expected[origin] = seq;
  }
  std::vector<Delivery> queued;
  const auto n_queued = r.get<std::uint64_t>();
  queued.reserve(n_queued);
  for (std::uint64_t i = 0; i < n_queued; ++i) {
    Delivery d;
    d.target = ptr;
    d.handler = r.get<ObjectHandlerId>();
    d.origin = r.get<ProcId>();
    d.weight = r.get<double>();
    d.delivery_no = r.get<std::uint64_t>();
    d.payload = r.get_bytes();
    queued.push_back(std::move(d));
  }
  const auto n_reorder = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_reorder; ++i) {
    const auto origin = r.get<ProcId>();
    const auto seq = r.get<std::uint32_t>();
    Buffered b;
    b.handler = r.get<ObjectHandlerId>();
    b.weight = r.get<double>();
    b.payload = r.get_bytes();
    entry.reorder.emplace(std::make_pair(origin, seq), std::move(b));
  }
  if (topology_) {
    // Topology appendix (mirrors migrate_locked's pack).
    const auto has_coords = r.get<std::uint8_t>();
    if (has_coords != 0) {
      Coords c;
      c.x = r.get<double>();
      c.y = r.get<double>();
      c.z = r.get<double>();
      graph_.set_coords(ptr, c);
    }
    const auto n_edges = r.get<std::uint64_t>();
    for (std::uint64_t i = 0; i < n_edges; ++i) {
      const MobilePtr edst = get_ptr(r);
      const auto msgs = r.get<std::uint64_t>();
      const auto bytes = r.get<std::uint64_t>();
      graph_.merge_edge(ptr, edst, msgs, bytes);
    }
  }

  // Install. Any forwarding/cache entry from a previous residence epoch is now
  // obsolete: the object is *here*.
  forwarding_.erase(ptr);
  cache_.erase(ptr);
  local_.emplace(ptr, std::move(entry));
  ++stats_.migrations_in;

  // Tell the home processor so new senders find the object directly.
  if (ptr.home != node_.rank()) {
    // wire:mol.update pack w
    ByteWriter w;
    put_ptr(w, ptr);
    w.put<ProcId>(node_.rank());
    node_.send(ptr.home, Message{update_h_, node_.rank(), MsgKind::kSystem, w.take()});
    ++stats_.location_updates;
  } else {
    home_dir_[ptr.index] = node_.rank();
  }

  // Re-announce the queued work units on this processor; delivery numbers
  // were assigned at first acceptance, so execution order is preserved.
  for (auto& d : queued) {
    PREMA_CHECK_MSG(static_cast<bool>(hooks_.on_delivery),
                    "MOL has no delivery sink installed");
    hooks_.on_delivery(std::move(d));
  }
  if (hooks_.on_installed) hooks_.on_installed(ptr);
}

void Mol::on_location_update(Message&& msg) {
  util::RecursiveLock g(node_.state_mutex());
  // wire:mol.update unpack r
  ByteReader r(msg.payload);
  const MobilePtr ptr = get_ptr(r);
  const ProcId loc = r.get<ProcId>();
  learn(ptr, loc);
}

void Mol::learn(const MobilePtr& ptr, ProcId loc) {
  if (is_local_locked(ptr)) return;  // we hold it; updates are stale by definition
  if (ptr.home == node_.rank()) {
    home_dir_[ptr.index] = loc;
    return;
  }
  cache_[ptr] = loc;
}

void Mol::set_coords(const MobilePtr& ptr, const Coords& c) {
  // No-op when topology accounting is off, so applications may register
  // coordinates unconditionally without perturbing scalar-policy runs.
  if (!topology_) return;
  graph_.set_coords(ptr, c);
}

std::optional<Coords> Mol::coords(const MobilePtr& ptr) const {
  if (!topology_) return std::nullopt;
  return graph_.coords(ptr);
}

ProcId Mol::location_hint(const MobilePtr& ptr) const {
  util::RecursiveLock g(node_.state_mutex());
  return is_local_locked(ptr) ? node_.rank() : best_known(ptr);
}

MolLayer::MolLayer(dmcs::Machine& machine) {
  auto& reg = machine.registry();
  // The handler bodies lock the node's state themselves (see mol.hpp), so
  // these registered thunks are plain dispatchers.
  const auto route_h = reg.add("mol.route", [this](dmcs::Node& n, Message&& m) {
    at(n.rank()).on_route(std::move(m));
  });
  const auto migrate_h = reg.add("mol.migrate", [this](dmcs::Node& n, Message&& m) {
    at(n.rank()).on_migrate(std::move(m));
  });
  const auto update_h = reg.add("mol.update", [this](dmcs::Node& n, Message&& m) {
    at(n.rank()).on_location_update(std::move(m));
  });
  // Registered unconditionally (not only under a fault plan) so handler ids
  // stay identical between reliable and fault-free runs.
  const auto offer_h = reg.add("mol.offer", [this](dmcs::Node& n, Message&& m) {
    at(n.rank()).on_offer(std::move(m));
  });
  const auto commit_h = reg.add("mol.commit", [this](dmcs::Node& n, Message&& m) {
    at(n.rank()).on_commit(std::move(m));
  });
  nodes_.reserve(static_cast<std::size_t>(machine.nprocs()));
  for (ProcId p = 0; p < machine.nprocs(); ++p) {
    nodes_.push_back(std::make_unique<Mol>(machine.node(p), types_, route_h,
                                           migrate_h, update_h, offer_h, commit_h));
  }
}

Mol& MolLayer::at(ProcId p) {
  PREMA_CHECK_MSG(p >= 0 && p < static_cast<ProcId>(nodes_.size()),
                  "MOL rank out of range");
  return *nodes_[static_cast<std::size_t>(p)];
}

}  // namespace prema::mol
