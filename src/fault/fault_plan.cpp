#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace prema::fault {

bool FaultProfile::any() const {
  if (link.any() || node.any()) return true;
  for (const auto& [key, lf] : link_overrides) {
    if (lf.any()) return true;
  }
  for (const auto& [p, nf] : node_overrides) {
    if (nf.any()) return true;
  }
  return false;
}

FaultProfile make_fault_profile(const std::string& name) {
  FaultProfile p;
  p.name = name;
  if (name == "none") return p;
  if (name == "lossy1pct") {
    // Uniform light loss: every link drops 1% of messages, duplicates 0.5%,
    // and truncates 0.2% in flight. Exercises retransmit, dedup and the
    // checksum path everywhere without stalling progress.
    p.link.drop_p = 0.01;
    p.link.dup_p = 0.005;
    p.link.corrupt_p = 0.002;
    return p;
  }
  if (name == "burst-reorder") {
    // Aggressive reordering with latency spikes: 15% of messages bypass the
    // FIFO channel and land anywhere in a 2 ms window; 2% take a 5 ms spike.
    // Exercises the resequencing buffers (transport and MOL) hard.
    p.link.reorder_p = 0.15;
    p.link.reorder_window_s = 2e-3;
    p.link.delay_p = 0.02;
    p.link.delay_s = 5e-3;
    p.link.dup_p = 0.002;
    return p;
  }
  if (name == "one-slow-node") {
    // Node 1 is a straggler: 4x compute slowdown plus a recurring 20 ms
    // arrival stall every 250 ms. Its links also drop a little, so the
    // degraded-peer signal (retransmit rate) fires too. Exercises the ILB
    // health view: policies should steer work away from rank 1.
    NodeFaults slow;
    slow.slowdown_factor = 4.0;
    slow.pause_start_s = 0.05;
    slow.pause_len_s = 0.02;
    slow.pause_period_s = 0.25;
    p.node_overrides[1] = slow;
    LinkFaults lossy;
    lossy.drop_p = 0.02;
    p.link_overrides[{kNoProc, 1}] = lossy;  // every link *into* node 1
    p.link_overrides[{1, kNoProc}] = lossy;  // every link *out of* node 1
    return p;
  }
  if (name == "mid-pause") {
    // Elasticity scenario for service mode (EXPERIMENTS.md "Service mode"):
    // node 1 leaves the machine for the middle fifth of a half-second run —
    // a one-shot 100 ms arrival stall starting at 150 ms, plus a 2x compute
    // slowdown so it re-joins as a weaker node. No link faults: the capacity
    // change itself is the event the balancer must route around.
    NodeFaults pause;
    pause.slowdown_factor = 2.0;
    pause.pause_start_s = 0.15;
    pause.pause_len_s = 0.1;
    p.node_overrides[1] = pause;
    return p;
  }
  PREMA_CHECK_MSG(false, "unknown fault profile (try none, lossy1pct, "
                         "burst-reorder, one-slow-node, mid-pause)");
  return p;
}

bool is_fault_profile(const std::string& name) {
  return name == "none" || name == "lossy1pct" || name == "burst-reorder" ||
         name == "one-slow-node" || name == "mid-pause";
}

FaultPlan::FaultPlan(FaultProfile profile, std::uint64_t seed, int nprocs)
    : profile_(std::move(profile)),
      seed_(seed),
      nprocs_(nprocs),
      active_(profile_.any()) {
  PREMA_CHECK_MSG(nprocs > 0, "fault plan needs at least one processor");
  // One independent stream per directed link, all derived from the single
  // fault seed: faults on one link never shift another link's schedule, and
  // the whole schedule is reproducible from (profile, seed).
  util::SplitMix64 sm(seed);
  const auto n = static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs);
  link_rng_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) link_rng_.emplace_back(sm.next());
}

const LinkFaults& FaultPlan::link(ProcId src, ProcId dst) const {
  if (auto it = profile_.link_overrides.find({src, dst});
      it != profile_.link_overrides.end()) {
    return it->second;
  }
  if (auto it = profile_.link_overrides.find({src, kNoProc});
      it != profile_.link_overrides.end()) {
    return it->second;
  }
  if (auto it = profile_.link_overrides.find({kNoProc, dst});
      it != profile_.link_overrides.end()) {
    return it->second;
  }
  return profile_.link;
}

const NodeFaults& FaultPlan::node(ProcId p) const {
  if (auto it = profile_.node_overrides.find(p);
      it != profile_.node_overrides.end()) {
    return it->second;
  }
  return profile_.node;
}

WireFate FaultPlan::on_send(ProcId src, ProcId dst) {
  PREMA_CHECK_MSG(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_,
                  "fault plan rank out of range");
  const LinkFaults& lf = link(src, dst);
  WireFate f;
  if (!lf.any()) return f;
  util::LockGuard g(mu_);
  util::Rng& r = link_rng_[static_cast<std::size_t>(src) *
                               static_cast<std::size_t>(nprocs_) +
                           static_cast<std::size_t>(dst)];
  // Fixed draw order (drop, dup, corrupt, delay, reorder) so the schedule is
  // a pure function of the link stream.
  if (lf.drop_p > 0.0 && r.chance(lf.drop_p)) {
    f.copies = 0;
    return f;
  }
  if (lf.dup_p > 0.0 && r.chance(lf.dup_p)) f.copies = 2;
  if (lf.corrupt_p > 0.0 && r.chance(lf.corrupt_p)) f.corrupt = true;
  if (lf.delay_p > 0.0 && r.chance(lf.delay_p)) {
    f.extra_delay_s = r.uniform(0.0, lf.delay_s);
  }
  if (lf.reorder_p > 0.0 && r.chance(lf.reorder_p)) {
    f.reorder = true;
    f.reorder_jitter_s[0] = r.uniform(0.0, lf.reorder_window_s);
    f.reorder_jitter_s[1] = r.uniform(0.0, lf.reorder_window_s);
  }
  return f;
}

double FaultPlan::compute_factor(ProcId p) const {
  return node(p).slowdown_factor;
}

double FaultPlan::release_time(ProcId p, double t) const {
  const NodeFaults& nf = node(p);
  if (nf.pause_len_s <= 0.0) return t;
  double start = nf.pause_start_s;
  if (nf.pause_period_s > 0.0 && t > start) {
    const double k = std::floor((t - nf.pause_start_s) / nf.pause_period_s);
    start = nf.pause_start_s + std::max(0.0, k) * nf.pause_period_s;
  }
  if (t >= start && t < start + nf.pause_len_s) return start + nf.pause_len_s;
  return t;
}

bool FaultPlan::node_degraded(ProcId p) const {
  const NodeFaults& nf = node(p);
  return nf.slowdown_factor > 1.5 || nf.pause_len_s > 0.0;
}

}  // namespace prema::fault
