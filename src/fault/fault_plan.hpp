#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "support/rng.hpp"
#include "support/thread_annotations.hpp"

/// \file fault_plan.hpp
/// Deterministic fault injection for the DMCS interconnect and nodes. A
/// FaultPlan turns a declarative FaultProfile (per-link drop / duplication /
/// reordering / latency-spike / corruption probabilities, per-node slowdown
/// and pause intervals) into concrete per-message decisions, drawn from
/// per-link xoshiro streams seeded from a single fault seed. Two runs with the
/// same profile, seed and workload therefore inject the *same* fault schedule
/// — fault runs are reproducible and trace-diffable, which is what makes the
/// reliability protocol (dmcs/reliable.hpp) testable at all.
///
/// The plan is consulted by both DMCS backends at the wire layer, underneath
/// the reliable-delivery protocol: a dropped message is simply never
/// delivered (the sender's retransmit timer recovers it), a duplicated one is
/// delivered twice (receiver-side dedup absorbs it), a corrupted one arrives
/// with a truncated payload (the checksum mismatch is detected and the copy
/// discarded), and reordered/delayed copies bypass the emulator's per-channel
/// FIFO clamp (receiver-side resequencing restores order).
///
/// Machines with no plan installed (the default) run the exact pre-fault
/// code path: no sequence numbers, no acks, byte-identical traces.

namespace prema::fault {

/// Fault rules for one directed link (sender -> receiver).
struct LinkFaults {
  double drop_p = 0.0;     ///< message vanishes on the wire
  double dup_p = 0.0;      ///< message is delivered twice
  double reorder_p = 0.0;  ///< copy bypasses FIFO and gets window jitter
  double corrupt_p = 0.0;  ///< payload truncated in flight (checksum catches)
  double delay_p = 0.0;    ///< latency spike
  double delay_s = 0.0;    ///< spike magnitude: uniform in [0, delay_s)
  double reorder_window_s = 0.0;  ///< jitter window for reordered copies

  [[nodiscard]] bool any() const {
    return drop_p > 0.0 || dup_p > 0.0 || reorder_p > 0.0 || corrupt_p > 0.0 ||
           delay_p > 0.0;
  }
};

/// Fault rules for one node (degraded hardware, OS jitter, paging).
struct NodeFaults {
  /// Compute costs on this node are multiplied by this factor (straggler).
  double slowdown_factor = 1.0;
  /// Pause window: arrivals at this node stall until the window ends,
  /// starting at pause_start_s for pause_len_s seconds. With
  /// pause_period_s > 0 the window repeats every period.
  double pause_start_s = 0.0;
  double pause_len_s = 0.0;
  double pause_period_s = 0.0;

  [[nodiscard]] bool any() const {
    return slowdown_factor != 1.0 || pause_len_s > 0.0;
  }
};

/// A declarative fault schedule: defaults plus per-link / per-node overrides.
struct FaultProfile {
  std::string name = "none";
  LinkFaults link;  ///< default for every directed link
  NodeFaults node;  ///< default for every node
  /// Per-link overrides; kNoProc (-1) in either slot is a wildcard, exact
  /// matches win over (src, *) which wins over (*, dst).
  std::map<std::pair<ProcId, ProcId>, LinkFaults> link_overrides;
  std::map<ProcId, NodeFaults> node_overrides;

  [[nodiscard]] bool any() const;
};

/// Canned profiles: "none", "lossy1pct", "burst-reorder", "one-slow-node",
/// "mid-pause" (see EXPERIMENTS.md "Fault injection" and "Service mode").
/// Aborts on an unknown name.
FaultProfile make_fault_profile(const std::string& name);
[[nodiscard]] bool is_fault_profile(const std::string& name);

/// The wire-level fate of one message transmission.
struct WireFate {
  int copies = 1;            ///< 0 = dropped, 2 = duplicated
  bool corrupt = false;      ///< truncate payload (reliable messages only)
  bool reorder = false;      ///< bypass the per-channel FIFO clamp
  double extra_delay_s = 0.0;       ///< latency spike added to every copy
  double reorder_jitter_s[2] = {0.0, 0.0};  ///< per-copy jitter when reordered
};

/// Instantiated fault schedule for one machine: the profile plus one seeded
/// RNG stream per directed link, so fault decisions on one link never perturb
/// another link's schedule. Thread-safe (the threaded backend draws from
/// worker and poller threads concurrently); on the emulated machine the lock
/// is uncontended and the draw order is fixed by the event order.
class FaultPlan {
 public:
  FaultPlan(FaultProfile profile, std::uint64_t seed, int nprocs);

  [[nodiscard]] const FaultProfile& profile() const { return profile_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  /// False when the profile can never inject anything ("none"): machines
  /// treat an inactive plan exactly like no plan at all.
  [[nodiscard]] bool active() const { return active_; }

  /// Draw the fate of one message transmission on link src -> dst.
  [[nodiscard]] WireFate on_send(ProcId src, ProcId dst);

  /// Compute-cost multiplier for node `p` (1.0 = healthy).
  [[nodiscard]] double compute_factor(ProcId p) const;

  /// Earliest time >= t at which node `p` is not paused (arrival release).
  [[nodiscard]] double release_time(ProcId p, double t) const;

  /// Static health oracle: true when the plan marks `p` as a straggler
  /// (slowed or pausing). Balancing policies combine this with the dynamic
  /// retransmit signal (Node::peer_degraded).
  [[nodiscard]] bool node_degraded(ProcId p) const;

  [[nodiscard]] const LinkFaults& link(ProcId src, ProcId dst) const;
  [[nodiscard]] const NodeFaults& node(ProcId p) const;

 private:
  FaultProfile profile_;
  std::uint64_t seed_;
  int nprocs_;
  bool active_;
  mutable util::Mutex mu_;
  std::vector<util::Rng> link_rng_ PREMA_GUARDED_BY(mu_);
};

}  // namespace prema::fault
