#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hpp"

/// \file event_queue.hpp
/// Deterministic pending-event set. Events firing at equal times are ordered
/// by insertion sequence number, so a run is a pure function of the seed and
/// the program — the property every experiment in EXPERIMENTS.md relies on.

namespace prema::sim {

/// Handle that can be used to cancel a scheduled event (lazy cancellation).
using EventId = std::uint64_t;

inline constexpr EventId kNoEvent = 0;

class EventQueue {
 public:
  /// Schedule `fn` to fire at absolute time `t`. Returns a cancellation id.
  EventId schedule(SimTime t, std::function<void()> fn);

  /// Lazily cancel a scheduled event. Cancelling an already-fired or unknown
  /// id is allowed and does nothing.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pop and run the earliest live event, returning its time.
  SimTime run_next();

  /// Pop the earliest live event without running it. Lets the caller update
  /// its notion of "now" before firing the callback.
  std::pair<SimTime, std::function<void()>> pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;
    }
  };

  /// Pop cancelled entries off the top so the head is a live event.
  void skim() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;
  std::size_t live_count_ = 0;
  EventId next_id_ = 1;
};

}  // namespace prema::sim
