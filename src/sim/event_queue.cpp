#include "sim/event_queue.hpp"

#include <utility>

#include "support/assert.hpp"

namespace prema::sim {

EventId EventQueue::schedule(SimTime t, std::function<void()> fn) {
  PREMA_CHECK_MSG(t >= 0.0, "event scheduled at negative time");
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  live_.insert(id);
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kNoEvent) return;
  // Ignore ids that already fired or were already cancelled; only a live,
  // still-queued event turns into a tombstone.
  if (live_.erase(id) == 0) return;
  cancelled_.insert(id);
  --live_count_;
}

void EventQueue::skim() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  skim();
  PREMA_CHECK_MSG(!heap_.empty(), "next_time on empty event queue");
  return heap_.top().time;
}

std::pair<SimTime, std::function<void()>> EventQueue::pop() {
  skim();
  PREMA_CHECK_MSG(!heap_.empty(), "pop on empty event queue");
  // Move the entry out before firing: the callback may schedule new events,
  // which would invalidate references into the heap.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  live_.erase(entry.id);
  --live_count_;
  return {entry.time, std::move(entry.fn)};
}

SimTime EventQueue::run_next() {
  auto [time, fn] = pop();
  fn();
  return time;
}

}  // namespace prema::sim
