#include "sim/engine.hpp"

#include <utility>

#include "support/assert.hpp"

namespace prema::sim {

void ProcState::advance(util::TimeCategory cat, double seconds) {
  PREMA_CHECK_MSG(seconds >= 0.0, "negative activity duration");
  ledger_.charge(cat, seconds);
  clock_ += seconds;
}

void ProcState::catch_up(SimTime t, util::TimeCategory gap_cat) {
  if (t <= clock_) return;
  ledger_.charge(gap_cat, t - clock_);
  clock_ = t;
}

Engine::Engine(MachineConfig cfg) : cfg_(cfg) {
  PREMA_CHECK_MSG(cfg_.nprocs > 0, "machine needs at least one processor");
  PREMA_CHECK_MSG(cfg_.mflops > 0.0, "compute rate must be positive");
  util::SplitMix64 sm(cfg_.seed);
  procs_.reserve(static_cast<std::size_t>(cfg_.nprocs));
  for (ProcId p = 0; p < cfg_.nprocs; ++p) {
    procs_.emplace_back(p, sm.next());
  }
}

ProcState& Engine::proc(ProcId p) {
  PREMA_CHECK_MSG(p >= 0 && p < cfg_.nprocs, "proc id out of range");
  return procs_[static_cast<std::size_t>(p)];
}

const ProcState& Engine::proc(ProcId p) const {
  PREMA_CHECK_MSG(p >= 0 && p < cfg_.nprocs, "proc id out of range");
  return procs_[static_cast<std::size_t>(p)];
}

EventId Engine::at(SimTime t, std::function<void()> fn) {
  PREMA_CHECK_MSG(t >= now_, "event scheduled in the past");
  return queue_.schedule(t, std::move(fn));
}

EventId Engine::after(SimTime delay, std::function<void()> fn) {
  PREMA_CHECK_MSG(delay >= 0.0, "negative event delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

RunStats Engine::run(std::uint64_t max_events, SimTime max_time) {
  RunStats stats;
  while (!queue_.empty()) {
    if (stats.events >= max_events) {
      stats.hit_event_limit = true;
      break;
    }
    if (queue_.next_time() > max_time) {
      stats.hit_time_limit = true;
      break;
    }
    auto [time, fn] = queue_.pop();
    now_ = time;  // callbacks observe the time they fire at
    fn();
    ++stats.events;
  }
  stats.end_time = now_;
  return stats;
}

}  // namespace prema::sim
