#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"
#include "support/time_ledger.hpp"

/// \file engine.hpp
/// The cluster emulator: a discrete-event engine over a set of virtual
/// processors. Substitutes for the paper's 128-node UltraSPARC/Fast-Ethernet
/// testbed (see DESIGN.md). Each processor owns a local clock and a TimeLedger;
/// runtime layers (DMCS/MOL/ILB, charmlite, the repartitioning driver) advance
/// the clock by charging activities, and the engine sequences the processors
/// through a global event queue.
///
/// Execution model: all protocol code runs as ordinary C++ inside event
/// callbacks. Long-running *work units* use deferred-cost execution — the
/// handler body runs (mutating real data structures) at the activity's start
/// and declares its compute cost; the runtime then models the activity as a
/// timed interval during which it can be "interrupted" by a polling thread
/// (PREMA implicit mode). See dmcs/sim_machine.hpp.

namespace prema::sim {

/// Parameters of the emulated machine.
struct MachineConfig {
  /// Number of virtual processors (the paper uses 128).
  int nprocs = 128;
  /// Per-processor compute rate in Mflop/s (333 MHz UltraSPARC IIi ~ 333).
  double mflops = 333.0;
  /// Interconnect cost model.
  NetworkModel net;
  /// Master seed; every per-proc RNG stream derives from it.
  std::uint64_t seed = 0x5EEDULL;

  /// Seconds of compute represented by `mflop` Mflop of work.
  [[nodiscard]] double compute_seconds(double mflop) const { return mflop / mflops; }
};

/// Per-processor emulated state: the local clock (time through which this
/// processor's timeline has been charged) and the category ledger.
class ProcState {
 public:
  ProcState(ProcId id, std::uint64_t seed) : id_(id), rng_(seed) {}

  [[nodiscard]] ProcId id() const { return id_; }
  [[nodiscard]] SimTime clock() const { return clock_; }
  [[nodiscard]] util::TimeLedger& ledger() { return ledger_; }
  [[nodiscard]] const util::TimeLedger& ledger() const { return ledger_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  /// Charge `seconds` to `cat` and advance the local clock by that much.
  void advance(util::TimeCategory cat, double seconds);

  /// If the local clock is behind `t`, charge the gap to `gap_cat` (Idle by
  /// default; Synchronization while blocked in a balancing barrier) and move
  /// the clock to `t`. A clock already at or past `t` is left untouched.
  void catch_up(SimTime t, util::TimeCategory gap_cat = util::TimeCategory::kIdle);

 private:
  ProcId id_;
  SimTime clock_ = 0.0;
  util::TimeLedger ledger_;
  util::Rng rng_;
};

/// Result of running the engine to completion (or hitting a safety limit).
struct RunStats {
  std::uint64_t events = 0;
  SimTime end_time = 0.0;
  bool hit_event_limit = false;
  bool hit_time_limit = false;
};

class Engine {
 public:
  explicit Engine(MachineConfig cfg);

  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  [[nodiscard]] int nprocs() const { return cfg_.nprocs; }
  [[nodiscard]] SimTime now() const { return now_; }

  [[nodiscard]] ProcState& proc(ProcId p);
  [[nodiscard]] const ProcState& proc(ProcId p) const;

  /// Schedule `fn` at absolute virtual time `t` (must be >= now()).
  EventId at(SimTime t, std::function<void()> fn);
  /// Schedule `fn` `delay` seconds from now.
  EventId after(SimTime delay, std::function<void()> fn);
  void cancel(EventId id) { queue_.cancel(id); }

  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Run events until the queue drains or a safety limit trips.
  RunStats run(std::uint64_t max_events = UINT64_MAX,
               SimTime max_time = 1e18);

 private:
  MachineConfig cfg_;
  EventQueue queue_;
  std::vector<ProcState> procs_;
  SimTime now_ = 0.0;
};

}  // namespace prema::sim
