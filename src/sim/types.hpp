#pragma once

#include <cstdint>

/// \file types.hpp
/// Basic identifiers shared by the emulator and everything above it.

namespace prema {

/// Virtual processor rank, 0 .. nprocs-1 (the paper's "Processor ID" axis).
using ProcId = std::int32_t;

inline constexpr ProcId kNoProc = -1;

namespace sim {

/// Virtual time in seconds since the start of the run.
using SimTime = double;

}  // namespace sim
}  // namespace prema
