#pragma once

#include <cstddef>

#include "sim/types.hpp"

/// \file network_model.hpp
/// LogGP-flavoured cost model of the cluster interconnect. The paper's testbed
/// was 128 nodes on switched Fast Ethernet under LAM/MPI; the defaults below
/// are parameterized to that class of network. The model splits every message
/// into (a) CPU overhead on the sender, (b) wire/transfer time, and (c) CPU
/// overhead on the receiver — the CPU parts are what the figures charge to
/// "Messaging Time".

namespace prema::sim {

struct NetworkModel {
  /// One-way wire latency between any two nodes (switched network, flat).
  double latency_s = 100e-6;
  /// Sustained point-to-point bandwidth in bytes/second (Fast Ethernet ~100
  /// Mbit/s minus protocol overhead).
  double bandwidth_Bps = 11.0e6;
  /// Fixed CPU cost on the sender per message (LAM/MPI send path, ~tens of us
  /// on a 333 MHz UltraSPARC).
  double send_overhead_s = 30e-6;
  /// Fixed CPU cost on the receiver per message.
  double recv_overhead_s = 30e-6;
  /// Additional CPU cost per payload byte (packing/copy), both ends.
  double per_byte_cpu_s = 4e-9;
  /// Fixed size of the runtime's wire header, added to every payload.
  std::size_t header_bytes = 64;

  /// Time from "wire send" to "arrival at receiver NIC" for `bytes` of payload.
  [[nodiscard]] double transfer_time(std::size_t payload_bytes) const {
    return latency_s +
           static_cast<double>(payload_bytes + header_bytes) / bandwidth_Bps;
  }

  /// CPU seconds charged on the sender for a message of `bytes` payload.
  /// The wire header is packed/copied by the same CPU path as the payload,
  /// so it is charged here exactly as transfer_time charges it on the wire
  /// (it used to be free, which understated small-message CPU cost).
  [[nodiscard]] double send_cpu(std::size_t payload_bytes) const {
    return send_overhead_s +
           static_cast<double>(payload_bytes + header_bytes) * per_byte_cpu_s;
  }

  /// CPU seconds charged on the receiver for a message of `bytes` payload.
  /// Includes header_bytes, matching send_cpu and transfer_time.
  [[nodiscard]] double recv_cpu(std::size_t payload_bytes) const {
    return recv_overhead_s +
           static_cast<double>(payload_bytes + header_bytes) * per_byte_cpu_s;
  }
};

}  // namespace prema::sim
