#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dmcs/machine.hpp"
#include "ilb/balancer.hpp"
#include "ilb/scheduler.hpp"
#include "mol/mol.hpp"
#include "service/arrivals.hpp"
#include "service/ledger.hpp"

/// \file runtime.hpp
/// PREMA: the Parallel Runtime Environment for Multicomputer Applications —
/// the paper's contribution, assembled from the substrates below it:
///
///   DMCS  (src/dmcs)  active messages, explicit/preemptive polling
///   MOL   (src/mol)   global namespace, migration, forwarding, ordering
///   ILB   (src/ilb)   scheduler + pluggable balancing policies
///
/// An application: registers mobile-object types and object handlers, gives
/// each rank a main() that creates objects and sends them messages, then
/// calls run(). Messages to objects become scheduled work units; the chosen
/// policy moves objects (with their pending work) between processors; a
/// Mattern-style quiescence detector confirms global termination.
///
/// See examples/quickstart.cpp for the paper's Figure 2 rendered against
/// this API.

namespace prema {

class Runtime;

/// Per-processor view handed to application code (main functions and object
/// handlers). Thin veneer over the node + its MOL instance.
class Context {
 public:
  [[nodiscard]] ProcId rank() const { return node_->rank(); }
  [[nodiscard]] int nprocs() const { return node_->nprocs(); }
  [[nodiscard]] double now() const { return node_->now(); }
  [[nodiscard]] util::Rng& rng() { return node_->rng(); }
  [[nodiscard]] Runtime& runtime() { return *runtime_; }
  [[nodiscard]] dmcs::Node& node() { return *node_; }

  /// Install a new mobile object on this processor.
  mol::MobilePtr add_object(std::unique_ptr<mol::MobileObject> obj);

  /// Send an application message to a mobile object, wherever it lives. The
  /// registered handler runs with the object when the destination scheduler
  /// picks the resulting work unit. `weight` is the load hint the balancer
  /// sees (the paper feeds deliberately inaccurate hints to study adaptivity).
  void message(const mol::MobilePtr& target, mol::ObjectHandlerId handler,
               std::vector<std::uint8_t> payload = {}, double weight = 1.0);

  /// Register (or update) an object's spatial coordinates for topology-aware
  /// policies (sfc / cluster). A no-op unless the run's policy wants
  /// topology, so applications may call it unconditionally.
  void set_coords(const mol::MobilePtr& ptr, const mol::Coords& c) {
    mol_->set_coords(ptr, c);
  }

  /// Account `mflop` Mflop of application computation (defines the enclosing
  /// work unit's duration on the emulated machine; spins on the real one).
  void compute(double mflop) {
    node_->compute(mflop, util::TimeCategory::kComputation);
  }

  /// The local instance of `ptr`, or nullptr if it is not resident here.
  [[nodiscard]] mol::MobileObject* local(const mol::MobilePtr& ptr);
  [[nodiscard]] bool is_local(const mol::MobilePtr& ptr);

 private:
  friend class Runtime;
  Runtime* runtime_ = nullptr;
  dmcs::Node* node_ = nullptr;
  mol::Mol* mol_ = nullptr;
};

/// Signature of an application object handler: runs on the processor that
/// currently holds `obj`, with the message payload and delivery metadata.
using ObjectHandler = std::function<void(Context&, mol::MobileObject&,
                                         util::ByteReader&, const mol::Delivery&)>;

struct RuntimeConfig {
  ilb::BalancerConfig balancer;
  /// Balancing policy registry name (see ilb::make_policy).
  std::string policy = "work_stealing";
  /// Overrides `policy` when set: builds one policy instance per processor
  /// (for tuned parameters the registry defaults don't cover).
  std::function<std::unique_ptr<ilb::Policy>()> policy_factory;
  /// Run the quiescence detector (a few extra control messages).
  bool termination_detection = true;
  /// Event tracing (src/trace). Off by default; when enabled the runtime
  /// attaches a recorder to the machine before run().
  trace::TraceConfig trace;
};

/// Open-loop service mode (run_service): instead of seeding all work in
/// main() and running to quiescence, each rank owns a deterministic arrival
/// generator whose stream injects requests for `duration_s` of machine time
/// while the balancer rebalances on an `epoch_s` cadence. Termination
/// detection is held off until every clock passes the deadline, then the
/// normal Mattern waves drain the tail and end the run.
struct ServiceConfig {
  /// Arrival injection window, seconds of machine time. No arrival fires at
  /// or after the deadline; in-flight work then drains to quiescence.
  double duration_s = 1.0;
  /// Rebalancing cadence: every epoch each rank polls its balancer and
  /// samples its load, independent of whether its queue ran dry.
  double epoch_s = 50e-3;
  service::ArrivalConfig arrivals;
  /// Application sink for each generated request: typically hashes
  /// `a.client` to a mobile object and sends it a message carrying the
  /// arrival timestamp and cost. Runs on the arrival rank, lock held.
  std::function<void(Context&, const service::Arrival&)> on_arrival;
  /// Optional latency ledger; when set, arrivals and epoch load samples are
  /// recorded per rank (completions are the application's to record, since
  /// only it knows when a request's handler ran).
  service::ServiceLedger* ledger = nullptr;

  /// Mid-window policy switch: at machine time `t`, every rank swaps its
  /// balancer's policy for a fresh `make_policy(policy)` instance.
  struct PolicySwitch {
    double t = 0.0;
    std::string policy;
  };
  /// Applied at the first epoch tick at or after each entry's time (sorted
  /// by the runtime). If any scheduled policy wants topology, MOL topology
  /// accounting is enabled from the start of the run — switching never flips
  /// it mid-run, which would change traced migration byte sizes.
  std::vector<PolicySwitch> policy_switches;
};

class Runtime {
 public:
  explicit Runtime(dmcs::Machine& machine, RuntimeConfig cfg = {});
  ~Runtime();  // out-of-line: NodeRt/TermCoordinator are incomplete here

  /// Register a mobile-object factory (must happen on construction path,
  /// before run(), identically on every build of the same application).
  [[nodiscard]] mol::ObjectTypeRegistry& object_types() { return mol_layer_->types(); }

  /// Register an application object handler under a stable name; returns the
  /// id to pass to Context::message.
  mol::ObjectHandlerId register_object_handler(const std::string& name,
                                               ObjectHandler fn);

  /// Per-rank application entry point, run once at start.
  void set_main(std::function<void(Context&)> fn) { main_ = std::move(fn); }

  /// Execute to quiescence; returns the makespan in seconds.
  double run();

  /// Execute in open-loop service mode (see ServiceConfig); returns the
  /// makespan in seconds (injection window plus drain tail).
  double run_service(ServiceConfig svc);

  // -- post-run / introspection -------------------------------------------
  [[nodiscard]] dmcs::Machine& machine() { return machine_; }
  [[nodiscard]] Context& context(ProcId p);
  [[nodiscard]] mol::Mol& mol_at(ProcId p) { return mol_layer_->at(p); }
  [[nodiscard]] ilb::Scheduler& scheduler_at(ProcId p);
  [[nodiscard]] ilb::Balancer& balancer_at(ProcId p);
  /// Post-run, single-threaded reads of coordinator state (the workers have
  /// joined by the time run() returns, so no lock is taken).
  [[nodiscard]] bool termination_detected() const
      PREMA_NO_THREAD_SAFETY_ANALYSIS {
    return term_detected_;
  }
  [[nodiscard]] std::uint64_t termination_waves() const
      PREMA_NO_THREAD_SAFETY_ANALYSIS {
    return term_waves_;
  }
  [[nodiscard]] const RuntimeConfig& config() const { return cfg_; }

 private:
  class NodeProgram;
  struct NodeRt;

  // Termination detection (Mattern-style counting waves, coordinator rank 0).
  struct TermCoordinator;
  void term_send(ProcId from, ProcId to, std::vector<std::uint8_t> payload);
  void term_on_idle(NodeRt& rt);
  void term_on_wire(NodeRt& rt, dmcs::Message&& msg);
  void term_consider_wave(NodeRt& r0);
  void term_start_wave(NodeRt& r0, std::uint64_t snapshot);
  void term_schedule_retry(NodeRt& r0);
  void term_record_ack(NodeRt& r0, std::uint64_t wave, std::uint64_t sent,
                       std::uint64_t recv, bool idle);

  // Service mode (open-loop arrivals + epoch cadence).
  void service_start(NodeRt& r);
  void service_on_arrival(NodeRt& r);
  void service_on_epoch(NodeRt& r);

  void exec_wrapper(dmcs::Node& n, dmcs::Message&& msg);
  NodeRt& rt(ProcId p);

  dmcs::Machine& machine_;
  RuntimeConfig cfg_;
  std::unique_ptr<mol::MolLayer> mol_layer_;
  std::vector<std::unique_ptr<NodeRt>> nodes_;
  std::vector<ObjectHandler> object_handlers_;
  std::vector<std::string> object_handler_names_;
  /// Interned trace names for object handlers, parallel to the vectors above
  /// (filled at run() when tracing is enabled).
  std::vector<trace::StrId> handler_name_ids_;
  std::function<void(Context&)> main_;

  dmcs::HandlerId exec_h_ = dmcs::kNoHandler;
  dmcs::HandlerId policy_h_ = dmcs::kNoHandler;
  dmcs::HandlerId term_h_ = dmcs::kNoHandler;
  dmcs::HandlerId svc_arrival_h_ = dmcs::kNoHandler;
  dmcs::HandlerId svc_epoch_h_ = dmcs::kNoHandler;

  /// Set by run_service before the workers start, then read-only for the
  /// whole run; null in run-to-quiescence mode.
  std::unique_ptr<ServiceConfig> svc_;

  /// The capability guarding all coordinator-side termination state: the
  /// detector runs entirely inside rank 0's message handlers / idle hook, so
  /// rank 0's state mutex is what those paths already hold.
  [[nodiscard]] util::RecursiveMutex& coord_mutex()
      PREMA_RETURN_CAPABILITY(machine_.node(0).state_mutex()) {
    return machine_.node(0).state_mutex();
  }
  /// Annotation shim for out-of-line coordinator paths (term_consider_wave
  /// and friends), mirroring NodeRt::assert_state_held.
  void assert_coord_held() PREMA_ASSERT_CAPABILITY(coord_mutex()) {}

  std::unique_ptr<TermCoordinator> term_ PREMA_GUARDED_BY(coord_mutex());
  bool term_detected_ PREMA_GUARDED_BY(coord_mutex()) = false;
  std::uint64_t term_waves_ PREMA_GUARDED_BY(coord_mutex()) = 0;
  bool ran_ = false;
};

}  // namespace prema
