#include "prema/runtime.hpp"

#include <algorithm>
#include <utility>

#include "ilb/policy.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"

namespace prema {

using dmcs::Message;
using dmcs::MsgKind;
using util::ByteReader;
using util::ByteWriter;

namespace {

constexpr std::uint8_t kTermReport = 1;
constexpr std::uint8_t kTermProbe = 2;
constexpr std::uint8_t kTermAck = 3;
constexpr std::uint8_t kTermDone = 4;
constexpr std::uint8_t kTermRetry = 5;

/// Coordinator re-probe period when a wave fails under reliable transport
/// (longer than the transport's initial RTO so a retransmit round can finish
/// before the next wave looks).
constexpr double kTermRetryDelayS = 5e-3;

}  // namespace

/// Per-processor runtime state. The worker thread and (in implicit polling
/// mode) the polling thread both run code that touches it — a policy handler
/// dispatched by the poller enqueues stolen work into the same scheduler the
/// worker is picking from — so the mutable fields are guarded by the node's
/// state lock. Thread-safety analysis cannot see that a lock taken through
/// one alias (the handler's `n.lock_state()`) covers fields named through
/// another (`rt.node->state_mutex()`), so entry points re-establish the fact
/// with assert_state_held().
struct Runtime::NodeRt {
  Context ctx;                    ///< wired in the Runtime ctor, then read-only
  dmcs::Node* node = nullptr;     ///< wired in the Runtime ctor, then read-only
  mol::Mol* mol = nullptr;        ///< wired in the Runtime ctor, then read-only
  ilb::Scheduler sched PREMA_GUARDED_BY(node->state_mutex());
  /// The pointer is wired in the ctor and never reseated; the Balancer's own
  /// state is mutated only under the node's state lock (all its entry points
  /// — poll, on_wire, work_arrived, unit_started — are reached from code
  /// holding it).
  std::unique_ptr<ilb::Balancer> balancer;

  // Slot for the work unit currently being executed (see exec_wrapper).
  mol::Delivery current PREMA_GUARDED_BY(node->state_mutex());
  bool has_current PREMA_GUARDED_BY(node->state_mutex()) = false;

  // Termination-detection state.
  std::uint64_t term_sent PREMA_GUARDED_BY(node->state_mutex()) = 0;
  std::uint64_t term_recv PREMA_GUARDED_BY(node->state_mutex()) = 0;
  std::int64_t reported_sent PREMA_GUARDED_BY(node->state_mutex()) = -1;
  std::int64_t reported_recv PREMA_GUARDED_BY(node->state_mutex()) = -1;
  /// Activity since the last idle report.
  bool did_work PREMA_GUARDED_BY(node->state_mutex()) = true;

  /// Service mode only: this rank's arrival stream (null otherwise). Created
  /// in run_service before the workers start; the stream state is advanced
  /// only from service handlers, which hold the node's state lock.
  std::unique_ptr<service::ArrivalGenerator> arrivals
      PREMA_GUARDED_BY(node->state_mutex());

  /// Service mode only: index of the next ServiceConfig::policy_switches
  /// entry this rank has yet to apply (the schedule is sorted by time).
  std::size_t next_switch PREMA_GUARDED_BY(node->state_mutex()) = 0;

  /// Tell the analysis the node's state lock is held. Used where the lock
  /// was demonstrably taken through an alias the analysis cannot connect to
  /// this struct's guard expression (see struct comment).
  void assert_state_held() const PREMA_ASSERT_CAPABILITY(node->state_mutex()) {}

  [[nodiscard]] std::uint64_t eff_sent() const
      PREMA_REQUIRES(node->state_mutex()) {
    return node->stats().sent - term_sent;
  }
  [[nodiscard]] std::uint64_t eff_recv() const
      PREMA_REQUIRES(node->state_mutex()) {
    return node->stats().received - term_recv;
  }
  [[nodiscard]] bool locally_quiet() const PREMA_REQUIRES(node->state_mutex()) {
    // transport_quiet guards the counting wave against reliable-delivery
    // state: a message that was acked into a resequencing buffer (or is
    // awaiting retransmit) is counted as in-flight even though no inbox
    // holds it yet, so a wave cannot balance while recovery is pending.
    return !sched.has_work() && !node->executing() && node->inbox_size() == 0 &&
           node->transport_quiet();
  }
};

/// Rank-0 state for the counting-wave quiescence detector.
struct Runtime::TermCoordinator {
  std::vector<std::int64_t> sent;
  std::vector<std::int64_t> recv;
  int reported = 0;

  std::uint64_t wave = 0;
  bool wave_active = false;
  bool retry_armed = false;
  int acks = 0;
  bool all_idle = true;
  std::uint64_t ack_sent_sum = 0;
  std::uint64_t ack_recv_sum = 0;
  std::uint64_t snap_sent_sum = 0;
};

class Runtime::NodeProgram final : public dmcs::Program {
 public:
  NodeProgram(Runtime& rt, NodeRt& node) : rt_(rt), node_(node) {}

  void main(dmcs::Node&) override {
    node_.balancer->init();
    if (rt_.main_) rt_.main_(node_.ctx);
    if (rt_.svc_) rt_.service_start(node_);
  }

  bool service(dmcs::Node& n) override {
    auto lock = n.lock_state();
    node_.assert_state_held();  // n is node_.node; see NodeRt's struct comment
    node_.balancer->poll();
    auto d = node_.sched.pick();
    if (!d) return false;
    node_.current = std::move(*d);
    node_.has_current = true;
    lock.unlock();
    n.execute(Message{rt_.exec_h_, n.rank(), MsgKind::kApp, {}}, [this, &n] {
      auto g = n.lock_state();
      node_.assert_state_held();
      node_.sched.complete();
      node_.did_work = true;
    });
    {
      auto g = n.lock_state();
      node_.balancer->unit_started();
    }
    return true;
  }

  void on_idle(dmcs::Node& n) override {
    auto g = n.lock_state();
    node_.assert_state_held();
    node_.balancer->poll();
    if (rt_.cfg_.termination_detection) rt_.term_on_idle(node_);
  }

 private:
  Runtime& rt_;
  NodeRt& node_;
};

Runtime::Runtime(dmcs::Machine& machine, RuntimeConfig cfg)
    : machine_(machine), cfg_(std::move(cfg)) {
  if (cfg_.trace.enabled) machine_.enable_tracing(cfg_.trace);
  mol_layer_ = std::make_unique<mol::MolLayer>(machine_);

  exec_h_ = machine_.registry().add("prema.exec", [this](dmcs::Node& n, Message&& m) {
    exec_wrapper(n, std::move(m));
  });
  policy_h_ = machine_.registry().add("ilb.policy", [this](dmcs::Node& n, Message&& m) {
    auto g = n.lock_state();
    rt(n.rank()).balancer->on_wire(std::move(m));
  });
  term_h_ = machine_.registry().add("prema.term", [this](dmcs::Node& n, Message&& m) {
    auto g = n.lock_state();
    term_on_wire(rt(n.rank()), std::move(m));
  });
  // Service-mode timer handlers (empty payloads; the handler id itself is
  // the message). Registered unconditionally so the wire manifest holds in
  // run-to-quiescence builds too; they only ever fire under run_service.
  svc_arrival_h_ =
      machine_.registry().add("service.arrival", [this](dmcs::Node& n, Message&&) {
        auto g = n.lock_state();
        service_on_arrival(rt(n.rank()));
      });
  svc_epoch_h_ =
      machine_.registry().add("service.epoch", [this](dmcs::Node& n, Message&&) {
        auto g = n.lock_state();
        service_on_epoch(rt(n.rank()));
      });

  // Construction is single-threaded (no workers yet); the assert only tells
  // the thread-safety analysis so.
  assert_coord_held();
  term_ = std::make_unique<TermCoordinator>();
  term_->sent.assign(static_cast<std::size_t>(machine_.nprocs()), -1);
  term_->recv.assign(static_cast<std::size_t>(machine_.nprocs()), -1);

  nodes_.reserve(static_cast<std::size_t>(machine_.nprocs()));
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    auto node_rt = std::make_unique<NodeRt>();
    node_rt->node = &machine_.node(p);
    node_rt->mol = &mol_layer_->at(p);
    node_rt->ctx.runtime_ = this;
    node_rt->ctx.node_ = node_rt->node;
    node_rt->ctx.mol_ = node_rt->mol;
    node_rt->balancer = std::make_unique<ilb::Balancer>(
        *node_rt->node, *node_rt->mol, node_rt->sched,
        cfg_.policy_factory ? cfg_.policy_factory() : ilb::make_policy(cfg_.policy),
        cfg_.balancer, policy_h_);
    nodes_.push_back(std::move(node_rt));
  }

  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    NodeRt* r = nodes_[static_cast<std::size_t>(p)].get();
    mol::Mol::Hooks hooks;
    // MOL invokes the hooks with the node's state lock held (see mol.hpp);
    // the analysis cannot see that through the callback boundary.
    hooks.on_delivery = [r](mol::Delivery&& d) {
      r->assert_state_held();
      r->sched.enqueue(std::move(d));
      r->did_work = true;
      r->balancer->work_arrived();
    };
    hooks.take_queued = [r](const mol::MobilePtr& ptr) {
      r->assert_state_held();
      return r->sched.take_queued(ptr);
    };
    hooks.on_installed = [r](const mol::MobilePtr&) {
      r->assert_state_held();
      r->did_work = true;
      r->balancer->work_arrived();
    };
    hooks.current_sender = [r]() -> mol::MobilePtr {
      r->assert_state_held();
      // The scheduler, not NodeRt::has_current, knows who is executing:
      // exec_wrapper clears has_current before the handler body runs.
      return r->sched.executing() ? r->sched.executing_ptr() : mol::kNullMobilePtr;
    };
    r->mol->set_hooks(std::move(hooks));
  }

  // Topology accounting is machine-wide and fixed before the run (it gates
  // the migrate wire image — see Mol::enable_topology). Enabled here when
  // the configured policy consumes it; run_service extends this to policies
  // scheduled by mid-window switches.
  bool wants_topology = false;
  for (const auto& nr : nodes_) {
    wants_topology = wants_topology || nr->balancer->policy().wants_topology();
  }
  if (wants_topology) {
    for (const auto& nr : nodes_) nr->mol->enable_topology();
  }
}

Runtime::~Runtime() = default;

Runtime::NodeRt& Runtime::rt(ProcId p) {
  PREMA_CHECK_MSG(p >= 0 && p < static_cast<ProcId>(nodes_.size()), "bad rank");
  return *nodes_[static_cast<std::size_t>(p)];
}

Context& Runtime::context(ProcId p) { return rt(p).ctx; }

ilb::Scheduler& Runtime::scheduler_at(ProcId p) { return rt(p).sched; }

ilb::Balancer& Runtime::balancer_at(ProcId p) { return *rt(p).balancer; }

mol::ObjectHandlerId Runtime::register_object_handler(const std::string& name,
                                                      ObjectHandler fn) {
  PREMA_CHECK_MSG(!ran_, "handlers must be registered before run()");
  for (const auto& existing : object_handler_names_) {
    PREMA_CHECK_MSG(existing != name, "duplicate object-handler name");
  }
  object_handlers_.push_back(std::move(fn));
  object_handler_names_.push_back(name);
  return static_cast<mol::ObjectHandlerId>(object_handlers_.size());  // 1-based
}

void Runtime::exec_wrapper(dmcs::Node& n, Message&&) {
  NodeRt& r = rt(n.rank());
  mol::Delivery d;
  mol::MobileObject* obj = nullptr;
  {
    auto g = n.lock_state();
    r.assert_state_held();
    PREMA_CHECK_MSG(r.has_current, "exec wrapper without a picked unit");
    d = std::move(r.current);
    r.has_current = false;
    obj = r.mol->find(d.target);
  }
  PREMA_CHECK_MSG(obj != nullptr, "executing unit's object is not resident");
  PREMA_CHECK_MSG(d.handler != 0 && d.handler <= object_handlers_.size(),
                  "unknown object handler id");
  ByteReader reader(d.payload);
  if (auto* ts = n.trace()) {
    // Under deferred-cost execution the body runs at activity start, so the
    // span the node just opened can still be annotated with who ran.
    const trace::StrId name = d.handler <= handler_name_ids_.size()
                                  ? handler_name_ids_[d.handler - 1]
                                  : 0;
    ts->work_annotate(name, d.weight);
  }
  object_handlers_[d.handler - 1](r.ctx, *obj, reader, d);
}

double Runtime::run() {
  PREMA_CHECK_MSG(!ran_, "Runtime::run may only be called once");
  ran_ = true;
  if (auto* rec = machine_.tracer()) {
    handler_name_ids_.clear();
    handler_name_ids_.reserve(object_handler_names_.size());
    for (const auto& nm : object_handler_names_) {
      handler_name_ids_.push_back(rec->intern(nm));
    }
  }
  return machine_.run([this](ProcId p) {
    return std::make_unique<NodeProgram>(*this, rt(p));
  });
}

double Runtime::run_service(ServiceConfig svc) {
  PREMA_CHECK_MSG(!ran_, "Runtime::run_service may only be called once");
  PREMA_CHECK_MSG(svc.duration_s > 0.0 && svc.epoch_s > 0.0,
                  "service mode needs positive duration and epoch");
  PREMA_CHECK_MSG(static_cast<bool>(svc.on_arrival),
                  "service mode needs an on_arrival sink");
  svc_ = std::make_unique<ServiceConfig>(std::move(svc));
  // Apply switches oldest-first, and enable topology accounting up front if
  // any scheduled policy will want it: flipping it mid-run would change the
  // migrate wire image under the running machine.
  std::stable_sort(svc_->policy_switches.begin(), svc_->policy_switches.end(),
                   [](const ServiceConfig::PolicySwitch& a,
                      const ServiceConfig::PolicySwitch& b) { return a.t < b.t; });
  bool switch_wants_topology = false;
  for (const auto& sw : svc_->policy_switches) {
    const auto probe = ilb::make_policy(sw.policy);  // validates the name too
    switch_wants_topology = switch_wants_topology || probe->wants_topology();
  }
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    NodeRt& r = rt(p);
    // Pre-run is single-threaded (no workers yet); the assert only tells the
    // thread-safety analysis so, matching the ctor's assert_coord_held.
    r.assert_state_held();
    r.arrivals = std::make_unique<service::ArrivalGenerator>(
        svc_->arrivals, p, machine_.nprocs());
    if (switch_wants_topology) r.mol->enable_topology();
  }
  return run();
}

// ---------------------------------------------------------------------------
// Service mode: open-loop arrivals on self-addressed timers, balancer polls
// on an epoch cadence. Timer messages are internal (outside the termination
// counts); the work they inject is ordinary application traffic. Quiescence
// is gated on the clock in term_on_idle, so the Mattern waves cannot conclude
// — and cancel the pending timers — during an arrival lull inside the window.
// ---------------------------------------------------------------------------

void Runtime::service_start(NodeRt& r) {
  auto g = r.node->lock_state();
  r.assert_state_held();
  const double now = r.node->now();
  const double gap = r.arrivals->next_gap(now);
  if (now + gap < svc_->duration_s) {
    r.node->send_self_after(
        gap, Message{svc_arrival_h_, r.node->rank(), MsgKind::kSystem, {}});
  }
  // First epoch tick; the final one is clamped to land exactly on the
  // deadline so every rank's clock provably crosses it (see term_on_idle).
  r.node->send_self_after(
      std::min(svc_->epoch_s, svc_->duration_s),
      Message{svc_epoch_h_, r.node->rank(), MsgKind::kSystem, {}});
}

void Runtime::service_on_arrival(NodeRt& r) {
  r.assert_state_held();  // handler thunk takes the node's state lock
  const double t = r.node->now();
  const service::Arrival a = r.arrivals->next_arrival();
  if (auto* ts = r.node->trace()) ts->service_arrival(t, a.client, a.cost_mflop);
  if (svc_->ledger) svc_->ledger->at(r.node->rank()).record_arrival(t);
  svc_->on_arrival(r.ctx, a);
  r.did_work = true;
  const double gap = r.arrivals->next_gap(t);
  if (t + gap < svc_->duration_s) {
    r.node->send_self_after(
        gap, Message{svc_arrival_h_, r.node->rank(), MsgKind::kSystem, {}});
  }
}

void Runtime::service_on_epoch(NodeRt& r) {
  r.assert_state_held();  // handler thunk takes the node's state lock
  const double t = r.node->now();
  // Apply any policy switches that have come due (sorted by run_service);
  // the swap happens at the epoch tick, so every rank changes policy at the
  // same epoch boundary of its own clock.
  while (r.next_switch < svc_->policy_switches.size() &&
         t >= svc_->policy_switches[r.next_switch].t) {
    r.balancer->switch_policy(
        ilb::make_policy(svc_->policy_switches[r.next_switch].policy));
    ++r.next_switch;
  }
  r.balancer->poll();
  const double load = r.sched.load(r.balancer->config().use_weight);
  if (auto* ts = r.node->trace()) ts->service_epoch(t, load);
  if (svc_->ledger) svc_->ledger->at(r.node->rank()).sample_load(t, load);
  const double remaining = svc_->duration_s - t;
  if (remaining > 1e-9) {
    r.node->send_self_after(
        std::min(svc_->epoch_s, remaining),
        Message{svc_epoch_h_, r.node->rank(), MsgKind::kSystem, {}});
  }
}

// ---------------------------------------------------------------------------
// Quiescence detection: counting waves (Mattern). Nodes report their
// (sent, received) message counts — net of detector traffic — whenever they
// go idle after doing something. When rank 0 sees balanced sums it probes
// everyone; if every ack is idle with the same balanced sums, no application
// message can be in flight (counts are monotone), and termination is certain.
// ---------------------------------------------------------------------------

void Runtime::term_send(ProcId from, ProcId to, std::vector<std::uint8_t> payload) {
  NodeRt& r = rt(from);
  r.assert_state_held();  // callers hold `from`'s state lock (handler / on_idle)
  ++r.term_sent;
  // The matching receive is counted when the message is processed.
  r.node->send(to, Message{term_h_, from, MsgKind::kSystem, std::move(payload)});
}

void Runtime::term_on_idle(NodeRt& r) {
  r.assert_state_held();  // reached from on_idle / handlers, lock held
  // Service mode: hold all idle reports until this rank's clock passes the
  // injection deadline. No wave can start before every rank has reported, so
  // quiescence cannot be declared — and the pending arrival/epoch timers
  // cannot be cancelled — during a lull inside the service window. The
  // clamped final epoch tick guarantees the clock does reach the deadline.
  if (svc_ && r.node->now() < svc_->duration_s) return;
  const auto sent = static_cast<std::int64_t>(r.eff_sent());
  const auto recv = static_cast<std::int64_t>(r.eff_recv());
  if (!r.did_work && sent == r.reported_sent && recv == r.reported_recv) return;
  r.did_work = false;
  r.reported_sent = sent;
  r.reported_recv = recv;
  ByteWriter w;
  w.put<std::uint8_t>(kTermReport);
  // wire:prema.term.report pack w
  w.put<std::int64_t>(sent);
  w.put<std::int64_t>(recv);
  if (r.node->rank() == 0) {
    assert_coord_held();  // rank 0's state lock *is* the coordinator lock
    term_->sent[0] = sent;
    term_->recv[0] = recv;
    term_consider_wave(r);
    return;
  }
  term_send(r.node->rank(), 0, w.take());
}

void Runtime::term_consider_wave(NodeRt& r0) {
  r0.assert_state_held();
  PREMA_CHECK(r0.node->rank() == 0);
  assert_coord_held();
  auto& c = *term_;
  if (c.wave_active || term_detected_) return;
  std::int64_t sent_sum = 0;
  std::int64_t recv_sum = 0;
  for (ProcId p = 0; p < static_cast<ProcId>(c.sent.size()); ++p) {
    if (c.sent[static_cast<std::size_t>(p)] < 0 && p != 0) return;  // not all reported
    sent_sum += std::max<std::int64_t>(0, c.sent[static_cast<std::size_t>(p)]);
    recv_sum += std::max<std::int64_t>(0, c.recv[static_cast<std::size_t>(p)]);
  }
  if (c.sent[0] < 0) return;
  PREMA_LOG_DEBUG("term: wave check sent=%lld recv=%lld", (long long)sent_sum,
                  (long long)recv_sum);
  if (sent_sum != recv_sum) return;

  term_start_wave(r0, static_cast<std::uint64_t>(sent_sum));
}

void Runtime::term_start_wave(NodeRt& r0, std::uint64_t snapshot) {
  r0.assert_state_held();
  assert_coord_held();
  auto& c = *term_;
  ++c.wave;
  ++term_waves_;
  if (auto* ts = r0.node->trace()) ts->term_wave(r0.node->now(), c.wave);
  c.wave_active = true;
  c.acks = 0;
  c.all_idle = true;
  c.ack_sent_sum = 0;
  c.ack_recv_sum = 0;
  c.snap_sent_sum = snapshot;

  // Rank 0 answers its own probe locally — evaluated *before* the probes go
  // out, because under reliable transport the freshly sent (not yet acked)
  // probes would otherwise make rank 0's own link non-quiet and fail every
  // wave it starts. eff counts are unaffected by the probe sends (term
  // traffic is netted out), so the evaluation order is invisible otherwise.
  const std::uint64_t self_sent = r0.eff_sent();
  const std::uint64_t self_recv = r0.eff_recv();
  const bool self_idle = r0.locally_quiet();

  ByteWriter w;
  w.put<std::uint8_t>(kTermProbe);
  // wire:prema.term.probe pack w
  w.put<std::uint64_t>(c.wave);
  for (ProcId p = 1; p < static_cast<ProcId>(c.sent.size()); ++p) {
    term_send(0, p, w.bytes());
  }
  term_record_ack(r0, c.wave, self_sent, self_recv, self_idle);
}

void Runtime::term_record_ack(NodeRt& r0, std::uint64_t wave, std::uint64_t sent,
                              std::uint64_t recv, bool idle) {
  r0.assert_state_held();
  assert_coord_held();
  auto& c = *term_;
  if (!c.wave_active || wave != c.wave || term_detected_) return;
  ++c.acks;
  c.all_idle = c.all_idle && idle;
  c.ack_sent_sum += sent;
  c.ack_recv_sum += recv;
  if (c.acks < static_cast<int>(c.sent.size())) return;
  PREMA_LOG_DEBUG("term: wave %llu done idle=%d acks=%llu/%llu snap=%llu",
                  (unsigned long long)wave, (int)c.all_idle,
                  (unsigned long long)c.ack_sent_sum,
                  (unsigned long long)c.ack_recv_sum,
                  (unsigned long long)c.snap_sent_sum);
  c.wave_active = false;
  if (!c.all_idle || c.ack_sent_sum != c.ack_recv_sum) {
    // Still active. Under reliable transport a wave can fail on *transient*
    // recovery state — a node awaiting the ack of its last term report, or a
    // message parked in a resequencing buffer — after which no count ever
    // changes again, so no report will re-trigger a wave. Re-probe on a
    // timer.
    if (r0.node->reliable_transport()) {
      term_schedule_retry(r0);
      return;
    }
    // Without it, a report that landed *while this wave was in flight* was
    // absorbed by the wave_active gate above and will never be re-examined:
    // if that report carried the final counts, the machine goes silent with
    // no trigger left and termination is missed. Re-examine the report sums
    // now; if they are not balanced yet, the next report re-triggers as
    // before (a no-op here, preserving fault-free event sequences).
    term_consider_wave(r0);
    return;
  }
  if (c.ack_sent_sum == c.snap_sent_sum) {
    // Two observations with identical monotone counts and every processor
    // idle in between: nothing is in flight anywhere. Terminated.
    term_detected_ = true;
    ByteWriter w;
    w.put<std::uint8_t>(kTermDone);
    for (ProcId p = 1; p < static_cast<ProcId>(c.sent.size()); ++p) {
      term_send(0, p, w.bytes());
    }
    // Locally wind down rank 0: no further balancing wakeups.
    r0.balancer->stop();
    r0.node->cancel_timers();
    return;
  }
  // Balanced and idle but the counts moved past our snapshot (Mattern's
  // stale-wave case): confirm with a fresh wave anchored at what we just saw.
  term_start_wave(r0, c.ack_sent_sum);
}

void Runtime::term_schedule_retry(NodeRt& r0) {
  r0.assert_state_held();
  assert_coord_held();
  auto& c = *term_;
  if (c.retry_armed) return;
  c.retry_armed = true;
  ByteWriter w;
  w.put<std::uint8_t>(kTermRetry);
  // A self-addressed timer, not term_send: internal messages bypass the
  // sent/received stats, so the detector's own counts stay untouched.
  r0.node->send_self_after(kTermRetryDelayS,
                           Message{term_h_, 0, MsgKind::kSystem, w.take()});
}

void Runtime::term_on_wire(NodeRt& r, Message&& msg) {
  r.assert_state_held();  // handler thunk takes the node's state lock
  // Timer (internal) messages were never counted as received, so they must
  // not be netted out either.
  if (!msg.internal) ++r.term_recv;
  ByteReader reader(msg.payload);
  const auto tag = reader.get<std::uint8_t>();
  switch (tag) {
    case kTermReport: {
      PREMA_CHECK_MSG(r.node->rank() == 0, "termination report at non-coordinator");
      assert_coord_held();
      // wire:prema.term.report unpack reader
      const auto sent = reader.get<std::int64_t>();
      const auto recv = reader.get<std::int64_t>();
      auto& c = *term_;
      c.sent[static_cast<std::size_t>(msg.src)] = sent;
      c.recv[static_cast<std::size_t>(msg.src)] = recv;
      term_consider_wave(r);
      return;
    }
    case kTermProbe: {
      // wire:prema.term.probe unpack reader
      const auto wave = reader.get<std::uint64_t>();
      ByteWriter w;
      w.put<std::uint8_t>(kTermAck);
      // wire:prema.term.ack pack w
      w.put<std::uint64_t>(wave);
      w.put<std::uint64_t>(r.eff_sent());
      w.put<std::uint64_t>(r.eff_recv());
      w.put<std::uint8_t>(r.locally_quiet() ? 1 : 0);
      term_send(r.node->rank(), 0, w.take());
      return;
    }
    case kTermAck: {
      PREMA_CHECK_MSG(r.node->rank() == 0, "termination ack at non-coordinator");
      // wire:prema.term.ack unpack reader
      const auto wave = reader.get<std::uint64_t>();
      const auto sent = reader.get<std::uint64_t>();
      const auto recv = reader.get<std::uint64_t>();
      const bool idle = reader.get<std::uint8_t>() != 0;
      term_record_ack(r, wave, sent, recv, idle);
      return;
    }
    case kTermDone:
      // The run is over: silence balancing retries so their timers do not
      // keep the machine (and its idle clocks) running.
      r.balancer->stop();
      r.node->cancel_timers();
      return;
    case kTermRetry: {
      PREMA_CHECK_MSG(r.node->rank() == 0, "termination retry at non-coordinator");
      assert_coord_held();
      term_->retry_armed = false;
      if (!term_detected_ && !term_->wave_active) term_consider_wave(r);
      return;
    }
    default:
      PREMA_CHECK_MSG(false, "unknown termination message tag");
  }
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

// MOL's public methods lock the node state themselves (see mol.hpp), so these
// veneers are plain delegations.

mol::MobilePtr Context::add_object(std::unique_ptr<mol::MobileObject> obj) {
  return mol_->add_object(std::move(obj));
}

void Context::message(const mol::MobilePtr& target, mol::ObjectHandlerId handler,
                      std::vector<std::uint8_t> payload, double weight) {
  mol_->message(target, handler, std::move(payload), weight);
}

mol::MobileObject* Context::local(const mol::MobilePtr& ptr) {
  return mol_->find(ptr);
}

bool Context::is_local(const mol::MobilePtr& ptr) {
  return mol_->is_local(ptr);
}

}  // namespace prema
