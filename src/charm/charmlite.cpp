#include "charm/charmlite.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <queue>
#include <set>

#include "partition/adaptive.hpp"
#include "partition/multilevel.hpp"
#include "support/assert.hpp"

namespace prema::charmlite {

using dmcs::Message;
using dmcs::MsgKind;
using util::ByteReader;
using util::ByteWriter;
using util::TimeCategory;

namespace {

struct Invocation {
  EntryId entry = 0;
  std::vector<std::uint8_t> payload;
};

}  // namespace

/// Per-processor charmlite state.
struct Runtime::NodeState {
  std::unordered_map<ChareIdx, std::unique_ptr<Chare>> chares;
  std::unordered_map<ChareIdx, std::deque<Invocation>> queues;
  std::deque<ChareIdx> ready;
  std::vector<ProcId> location;          ///< global view, refreshed per sync
  std::unordered_map<ChareIdx, double> measured;  ///< LB database (this phase)
  std::set<ChareIdx> synced;
  bool contributed = false;
  bool mig_done_sent = false;
  bool waiting_resume = false;
  int expected_owned = -1;

  // The invocation currently being executed (set before Node::execute).
  ChareIdx current = -1;
  std::optional<Invocation> current_inv;
  double current_cost_mflop = 0.0;
};

class Runtime::Program final : public dmcs::Program {
 public:
  Program(Runtime& rt, ProcId rank) : rt_(rt), rank_(rank) {}

  void main(dmcs::Node& n) override {
    if (rt_.main_) {
      ChareContext ctx;
      ctx.rt_ = &rt_;
      ctx.node_ = &n;
      ctx.index_ = -1;
      rt_.main_(ctx);
    }
  }

  bool service(dmcs::Node& n) override {
    NodeState& s = rt_.ns(rank_);
    if (s.waiting_resume) return false;
    while (!s.ready.empty()) {
      const ChareIdx idx = s.ready.front();
      s.ready.pop_front();
      auto qit = s.queues.find(idx);
      if (qit == s.queues.end() || qit->second.empty()) continue;
      if (s.synced.count(idx) != 0) continue;  // parked until resume
      n.compute_seconds(rt_.cfg_.scheduling_cost_s, TimeCategory::kScheduling);
      s.current = idx;
      s.current_inv = std::move(qit->second.front());
      qit->second.pop_front();
      if (qit->second.empty()) s.queues.erase(qit);
      rt_.execute_next(n);
      return true;
    }
    return false;
  }

  void on_idle(dmcs::Node& n) override {
    // A processor that owns no elements still has to join the barrier.
    rt_.maybe_contribute(n);
  }

 private:
  Runtime& rt_;
  ProcId rank_;
};

// ---------------------------------------------------------------------------
// ChareContext
// ---------------------------------------------------------------------------

ProcId ChareContext::rank() const { return node_->rank(); }
int ChareContext::nprocs() const { return node_->nprocs(); }
double ChareContext::now() const { return node_->now(); }

void ChareContext::compute(double mflop) {
  node_->compute(mflop, TimeCategory::kComputation);
  if (index_ >= 0) {
    // Runtime instrumentation: the LB database records what each chare
    // actually consumed this phase (§3.2, measurement-based prediction).
    rt_->ns(node_->rank()).measured[index_] += mflop;
  }
}

void ChareContext::send(ChareIdx idx, EntryId entry,
                        std::vector<std::uint8_t> payload) {
  PREMA_CHECK_MSG(idx >= 0 && idx < rt_->array_n_, "chare index out of range");
  ByteWriter w(payload.size() + 16);
  w.put<ChareIdx>(idx);
  w.put<EntryId>(entry);
  w.put_bytes(payload);
  auto& s = rt_->ns(node_->rank());
  const ProcId dst = s.location[static_cast<std::size_t>(idx)];
  node_->send(dst, Message{rt_->msg_h_, node_->rank(), MsgKind::kApp, w.take()});
}

void ChareContext::at_sync() {
  PREMA_CHECK_MSG(index_ >= 0, "at_sync outside an entry method");
  rt_->ns(node_->rank()).synced.insert(index_);
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

Runtime::Runtime(dmcs::Machine& machine, CharmConfig cfg)
    : machine_(machine), cfg_(cfg) {
  auto& reg = machine_.registry();
  msg_h_ = reg.add("charm.msg", [this](dmcs::Node& n, Message&& m) {
    deliver_to_chare(n, std::move(m));
  });
  exec_h_ = reg.add("charm.exec", [this](dmcs::Node& n, Message&&) {
    NodeState& s = ns(n.rank());
    PREMA_CHECK_MSG(s.current >= 0 && s.current_inv.has_value(),
                    "charm exec without a picked invocation");
    Invocation inv = std::move(*s.current_inv);
    s.current_inv.reset();
    auto it = s.chares.find(s.current);
    PREMA_CHECK_MSG(it != s.chares.end(), "entry method for a missing element");
    PREMA_CHECK_MSG(inv.entry != 0 && inv.entry <= entries_.size(),
                    "unknown entry id");
    ChareContext ctx;
    ctx.rt_ = this;
    ctx.node_ = &n;
    ctx.index_ = s.current;
    ByteReader r(inv.payload);
    entries_[inv.entry - 1](ctx, *it->second, r);
  });
  sync_h_ = reg.add("charm.sync", [this](dmcs::Node& n, Message&& m) {
    handle_sync_contribution(n, std::move(m));
  });
  assign_h_ = reg.add("charm.assign", [this](dmcs::Node& n, Message&& m) {
    handle_assignment(n, std::move(m));
  });
  migrate_h_ = reg.add("charm.migrate", [this](dmcs::Node& n, Message&& m) {
    handle_migrate(n, std::move(m));
  });
  mig_done_h_ = reg.add("charm.migdone", [this](dmcs::Node& n, Message&& m) {
    handle_mig_done(n, std::move(m));
  });
  resume_h_ = reg.add("charm.resume", [this](dmcs::Node& n, Message&& m) {
    handle_resume(n, std::move(m));
  });
  nodes_.reserve(static_cast<std::size_t>(machine_.nprocs()));
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    nodes_.push_back(std::make_unique<NodeState>());
  }
}

Runtime::~Runtime() = default;

Runtime::NodeState& Runtime::ns(ProcId p) {
  PREMA_CHECK(p >= 0 && p < static_cast<ProcId>(nodes_.size()));
  return *nodes_[static_cast<std::size_t>(p)];
}

EntryId Runtime::register_entry(const std::string& name, EntryMethod fn) {
  for (const auto& existing : entry_names_) {
    PREMA_CHECK_MSG(existing != name, "duplicate entry name");
  }
  entries_.push_back(std::move(fn));
  entry_names_.push_back(name);
  return static_cast<EntryId>(entries_.size());
}

ProcId Runtime::initial_home(ChareIdx idx) const {
  const int p = machine_.nprocs();
  const ChareIdx per = (array_n_ + p - 1) / p;  // block distribution
  return std::min<ProcId>(idx / per, p - 1);
}

void Runtime::create_array(ChareIdx n, ChareInit init, EntryId resume_entry) {
  PREMA_CHECK_MSG(array_n_ == 0, "charmlite supports one chare array per run");
  PREMA_CHECK(n > 0);
  array_n_ = n;
  init_ = std::move(init);
  resume_entry_ = resume_entry;
  db_load_.assign(static_cast<std::size_t>(n), 0.0);
  db_where_.assign(static_cast<std::size_t>(n), 0);
  for (ChareIdx i = 0; i < n; ++i) {
    db_where_[static_cast<std::size_t>(i)] = initial_home(i);
  }
}

ProcId Runtime::location(ChareIdx idx) const {
  return db_where_[static_cast<std::size_t>(idx)];
}

double Runtime::measured_load(ChareIdx idx) const {
  return db_load_[static_cast<std::size_t>(idx)];
}

double Runtime::run() {
  PREMA_CHECK_MSG(!ran_, "charmlite Runtime::run may only be called once");
  PREMA_CHECK_MSG(array_n_ > 0, "create_array before run");
  ran_ = true;
  // Build the elements at their initial homes and set the location views.
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    NodeState& s = ns(p);
    s.location.assign(static_cast<std::size_t>(array_n_), 0);
    for (ChareIdx i = 0; i < array_n_; ++i) {
      s.location[static_cast<std::size_t>(i)] = initial_home(i);
    }
  }
  for (ChareIdx i = 0; i < array_n_; ++i) {
    ns(initial_home(i)).chares.emplace(i, init_(i));
  }
  return machine_.run(
      [this](ProcId p) { return std::make_unique<Program>(*this, p); });
}

void Runtime::deliver_to_chare(dmcs::Node& n, Message&& msg) {
  ByteReader r(msg.payload);
  const auto idx = r.get<ChareIdx>();
  const auto entry = r.get<EntryId>();
  auto payload = r.get_bytes();
  NodeState& s = ns(n.rank());
  auto it = s.chares.find(idx);
  if (it == s.chares.end()) {
    // Stale location (the chare moved at the last sync): forward.
    const ProcId next = s.location[static_cast<std::size_t>(idx)];
    PREMA_CHECK_MSG(next != n.rank(), "charm message stuck: unknown element");
    n.send(next, std::move(msg));
    return;
  }
  const bool was_empty = s.queues[idx].empty();
  s.queues[idx].push_back(Invocation{entry, std::move(payload)});
  if (was_empty) s.ready.push_back(idx);
}

void Runtime::execute_next(dmcs::Node& n) {
  n.execute(Message{exec_h_, n.rank(), MsgKind::kApp, {}}, [this, &n] {
    NodeState& st = ns(n.rank());
    // If the element still has work and did not park itself, requeue it.
    if (st.queues.count(st.current) != 0 && st.synced.count(st.current) == 0) {
      st.ready.push_back(st.current);
    }
    st.current = -1;
    maybe_contribute(n);
  });
}

void Runtime::maybe_contribute(dmcs::Node& n) {
  NodeState& s = ns(n.rank());
  if (s.contributed || s.waiting_resume) return;
  // Loaded processors join the barrier when all their elements have parked
  // themselves with at_sync; element-less processors join eagerly so the
  // barrier can complete (and are released by the resume broadcast).
  if (!s.chares.empty() && s.synced.size() != s.chares.size()) return;
  s.contributed = true;
  s.waiting_resume = true;
  // From here the processor is blocked in the balancing barrier.
  n.set_wait_category(util::TimeCategory::kSynchronization);
  ByteWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(s.chares.size()));
  for (const auto& [idx, chare] : s.chares) {
    w.put<ChareIdx>(idx);
    w.put<double>(s.measured.count(idx) ? s.measured.at(idx) : 0.0);
  }
  n.send(0, Message{sync_h_, n.rank(), MsgKind::kSystem, w.take()});
}

void Runtime::handle_sync_contribution(dmcs::Node& n, Message&& msg) {
  PREMA_CHECK_MSG(n.rank() == 0, "sync contribution reached a non-root");
  ByteReader r(msg.payload);
  const auto count = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto idx = r.get<ChareIdx>();
    const double load = r.get<double>();
    db_load_[static_cast<std::size_t>(idx)] = load;
    db_where_[static_cast<std::size_t>(idx)] = msg.src;
  }
  ++contributions_;
  if (contributions_ < machine_.nprocs()) return;
  contributions_ = 0;
  ++sync_rounds_;

  // Balancing step: run the strategy on the measured database.
  const auto assignment = run_strategy(db_load_, db_where_);
  // Charge the decision cost as Partition Calculation time on the root.
  graph::GraphBuilder gb(array_n_);
  for (ChareIdx i = 0; i < array_n_; ++i) {
    gb.set_vertex_weight(i, std::max(1e-9, db_load_[static_cast<std::size_t>(i)]));
  }
  n.compute_seconds(
      part::modeled_partition_seconds(gb.build(), machine_.nprocs()) *
          (cfg_.strategy == Strategy::kMetis ? 1.0 : 0.3),
      TimeCategory::kPartitionCalc);

  ByteWriter w;
  w.put_vector(assignment);
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    n.send(p, Message{assign_h_, 0, MsgKind::kSystem, w.bytes()});
  }
  mig_done_reports_ = 0;
  db_where_ = assignment;
}

std::vector<ProcId> Runtime::run_strategy(const std::vector<double>& loads,
                                          const std::vector<ProcId>& where) {
  const int p = machine_.nprocs();
  std::vector<ProcId> out = where;
  switch (cfg_.strategy) {
    case Strategy::kNone:
      return out;
    case Strategy::kRotate:
      for (auto& loc : out) loc = (loc + 1) % p;
      return out;
    case Strategy::kGreedy: {
      std::vector<ChareIdx> order(loads.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](ChareIdx a, ChareIdx b) {
        if (loads[static_cast<std::size_t>(a)] != loads[static_cast<std::size_t>(b)]) {
          return loads[static_cast<std::size_t>(a)] > loads[static_cast<std::size_t>(b)];
        }
        return a < b;
      });
      std::priority_queue<std::pair<double, ProcId>,
                          std::vector<std::pair<double, ProcId>>, std::greater<>>
          heap;
      for (ProcId q = 0; q < p; ++q) heap.emplace(0.0, q);
      for (const ChareIdx c : order) {
        auto [w, q] = heap.top();
        heap.pop();
        out[static_cast<std::size_t>(c)] = q;
        heap.emplace(w + loads[static_cast<std::size_t>(c)], q);
      }
      return out;
    }
    case Strategy::kRefine: {
      std::vector<double> proc_load(static_cast<std::size_t>(p), 0.0);
      double total = 0.0;
      for (std::size_t i = 0; i < loads.size(); ++i) {
        proc_load[static_cast<std::size_t>(out[i])] += loads[i];
        total += loads[i];
      }
      const double limit = cfg_.refine_threshold * total / p;
      // For each overloaded processor, shed heaviest chares to the lightest
      // processors until at or below the threshold (§3.2 Refinement).
      for (ProcId q = 0; q < p; ++q) {
        while (proc_load[static_cast<std::size_t>(q)] > limit) {
          ChareIdx heaviest = -1;
          for (std::size_t i = 0; i < loads.size(); ++i) {
            if (out[i] != q) continue;
            if (heaviest < 0 || loads[i] > loads[static_cast<std::size_t>(heaviest)]) {
              heaviest = static_cast<ChareIdx>(i);
            }
          }
          if (heaviest < 0) break;
          const auto lightest = static_cast<ProcId>(
              std::min_element(proc_load.begin(), proc_load.end()) -
              proc_load.begin());
          if (lightest == q) break;
          const double w = loads[static_cast<std::size_t>(heaviest)];
          if (proc_load[static_cast<std::size_t>(lightest)] + w >
              proc_load[static_cast<std::size_t>(q)]) {
            break;  // moving would not help
          }
          out[static_cast<std::size_t>(heaviest)] = lightest;
          proc_load[static_cast<std::size_t>(q)] -= w;
          proc_load[static_cast<std::size_t>(lightest)] += w;
        }
      }
      return out;
    }
    case Strategy::kMetis: {
      graph::GraphBuilder gb(array_n_);
      for (ChareIdx i = 0; i < array_n_; ++i) {
        gb.set_vertex_weight(i, std::max(1e-9, loads[static_cast<std::size_t>(i)]));
      }
      for (const auto& [a, b, w] : edges_) gb.add_edge(a, b, w);
      const auto g = gb.build();
      part::PartitionOptions popts;
      popts.k = p;
      graph::Partition old_as_part(where.begin(), where.end());
      auto fresh = part::multilevel_kway(g, popts);
      fresh = part::remap_labels(g, old_as_part, fresh, p);
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        out[i] = static_cast<ProcId>(fresh[i]);
      }
      return out;
    }
  }
  return out;
}

void Runtime::handle_assignment(dmcs::Node& n, Message&& msg) {
  ByteReader r(msg.payload);
  const auto assignment = r.get_vector<ProcId>();
  NodeState& s = ns(n.rank());
  s.location.assign(assignment.begin(), assignment.end());
  s.expected_owned = 0;
  for (const auto loc : assignment) {
    if (loc == n.rank()) ++s.expected_owned;
  }
  // Ship away elements that no longer belong here, with their parked queues.
  std::vector<ChareIdx> leaving;
  for (const auto& [idx, chare] : s.chares) {
    if (assignment[static_cast<std::size_t>(idx)] != n.rank()) {
      leaving.push_back(idx);
    }
  }
  for (const ChareIdx idx : leaving) {
    ByteWriter w;
    w.put<ChareIdx>(idx);
    {
      ByteWriter body;
      s.chares.at(idx)->serialize(body);
      w.put_bytes(body.bytes());
    }
    auto qit = s.queues.find(idx);
    const auto pending =
        static_cast<std::uint32_t>(qit == s.queues.end() ? 0 : qit->second.size());
    w.put<std::uint32_t>(pending);
    if (qit != s.queues.end()) {
      for (const auto& inv : qit->second) {
        w.put<EntryId>(inv.entry);
        w.put_bytes(inv.payload);
      }
      s.queues.erase(qit);
    }
    s.chares.erase(idx);
    s.synced.erase(idx);
    s.measured.erase(idx);
    n.send(s.location[static_cast<std::size_t>(idx)],
           Message{migrate_h_, n.rank(), MsgKind::kSystem, w.take()});
  }
  s.ready.clear();  // rebuilt on resume
  migrations_ += leaving.size();
  handle_mig_check(n);
}

void Runtime::handle_migrate(dmcs::Node& n, Message&& msg) {
  ByteReader r(msg.payload);
  const auto idx = r.get<ChareIdx>();
  auto body = r.get_bytes();
  {
    ByteReader br(body);
    PREMA_CHECK_MSG(static_cast<bool>(factory_), "no chare factory registered");
    NodeState& s = ns(n.rank());
    s.chares.emplace(idx, factory_(idx, br));
    const auto pending = r.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < pending; ++i) {
      Invocation inv;
      inv.entry = r.get<EntryId>();
      inv.payload = r.get_bytes();
      s.queues[idx].push_back(std::move(inv));
    }
    s.synced.insert(idx);  // arrived parked; resume un-parks
  }
  handle_mig_check(n);
}

void Runtime::handle_mig_check(dmcs::Node& n) {
  NodeState& s = ns(n.rank());
  if (s.expected_owned < 0 || s.mig_done_sent) return;
  if (static_cast<int>(s.chares.size()) != s.expected_owned) return;
  s.mig_done_sent = true;
  n.send(0, Message{mig_done_h_, n.rank(), MsgKind::kSystem, {}});
}

void Runtime::handle_mig_done(dmcs::Node& n, Message&&) {
  PREMA_CHECK_MSG(n.rank() == 0, "migration report reached a non-root");
  ++mig_done_reports_;
  if (mig_done_reports_ < machine_.nprocs()) return;
  mig_done_reports_ = 0;
  for (ProcId p = 0; p < machine_.nprocs(); ++p) {
    n.send(p, Message{resume_h_, 0, MsgKind::kSystem, {}});
  }
}

void Runtime::handle_resume(dmcs::Node& n, Message&&) {
  NodeState& s = ns(n.rank());
  n.set_wait_category(util::TimeCategory::kIdle);
  s.waiting_resume = false;
  s.contributed = false;
  s.mig_done_sent = false;
  s.expected_owned = -1;
  s.synced.clear();
  s.measured.clear();  // fresh profile for the next phase
  s.ready.clear();
  for (const auto& [idx, q] : s.queues) {
    if (!q.empty()) s.ready.push_back(idx);
  }
  if (resume_entry_ != 0) {
    for (const auto& [idx, chare] : s.chares) {
      const bool was_empty = s.queues[idx].empty();
      s.queues[idx].push_back(Invocation{resume_entry_, {}});
      if (was_empty) s.ready.push_back(idx);
    }
  }
}

}  // namespace prema::charmlite
