#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dmcs/machine.hpp"
#include "graph/csr_graph.hpp"
#include "support/byte_buffer.hpp"

/// \file charmlite.hpp
/// "charmlite": a Charm++-style baseline runtime (paper §3.2), built on the
/// same DMCS substrate as PREMA so the two are compared apples-to-apples.
/// It reproduces the properties the paper measures:
///
///  - the application is decomposed into a 1-D *chare array* much larger
///    than the processor count; messages invoke *entry methods* on elements;
///  - a pick-and-process loop executes entry methods **atomically** — there
///    is no preemption, so runtime messages wait behind coarse entries;
///  - load balancing is *measurement-based*: the runtime records each
///    chare's execution time into a distributed LB database (the principle
///    of persistent computation), and rebalances only at **AtSync barriers**
///    using a pluggable strategy (Greedy / Refine / Metis-based — §3.2).

namespace prema::charmlite {

using ChareIdx = std::int32_t;
using EntryId = std::uint32_t;

/// A migratable array element.
class Chare {
 public:
  virtual ~Chare() = default;
  virtual void serialize(util::ByteWriter& w) const = 0;
};

class Runtime;

/// What an entry method sees while executing on some processor.
class ChareContext {
 public:
  [[nodiscard]] ProcId rank() const;
  [[nodiscard]] int nprocs() const;
  [[nodiscard]] double now() const;
  [[nodiscard]] ChareIdx index() const { return index_; }

  /// Account application computation (defines this entry's duration).
  void compute(double mflop);

  /// Send a message to array element `idx`, invoking `entry` there.
  void send(ChareIdx idx, EntryId entry, std::vector<std::uint8_t> payload = {});

  /// Signal that this chare reached its synchronization point; when every
  /// chare has, the runtime runs the balancing strategy and then invokes the
  /// array's resume entry on every element (Charm++'s AtSync/ResumeFromSync).
  void at_sync();

 private:
  friend class Runtime;
  Runtime* rt_ = nullptr;
  dmcs::Node* node_ = nullptr;
  ChareIdx index_ = -1;
};

using EntryMethod = std::function<void(ChareContext&, Chare&, util::ByteReader&)>;
using ChareFactory =
    std::function<std::unique_ptr<Chare>(ChareIdx idx, util::ByteReader&)>;
using ChareInit = std::function<std::unique_ptr<Chare>(ChareIdx idx)>;

enum class Strategy : std::uint8_t {
  kNone = 0,   ///< AtSync barriers release immediately; nothing moves
  kGreedy,     ///< sort chares by measured load, heaviest to lightest proc
  kRefine,     ///< move chares off overloaded procs until near the average
  kMetis,      ///< our multilevel partitioner on the chare graph
  kRotate      ///< shift every chare one proc (testing / worst case)
};

struct CharmConfig {
  Strategy strategy = Strategy::kGreedy;
  /// RefineLB threshold: a processor is overloaded above this multiple of
  /// the average measured load.
  double refine_threshold = 1.05;
  /// Extra per-entry scheduling overhead (pick-and-process bookkeeping).
  double scheduling_cost_s = 2e-6;
};

class Runtime {
 public:
  Runtime(dmcs::Machine& machine, CharmConfig cfg = {});
  ~Runtime();

  /// Register the element type's migration factory (once, before run()).
  void set_chare_factory(ChareFactory factory) { factory_ = std::move(factory); }

  /// Register an entry method under a stable name; ids are dense from 1.
  EntryId register_entry(const std::string& name, EntryMethod fn);

  /// Declare the (single) 1-D chare array: `n` elements built block-
  /// distributed across processors by `init`; `resume_entry` runs on every
  /// element after each AtSync rebalancing step (0 = none).
  void create_array(ChareIdx n, ChareInit init, EntryId resume_entry = 0);

  /// Optional communication structure between chares, used by MetisLB.
  void set_chare_edges(std::vector<std::tuple<ChareIdx, ChareIdx, double>> edges) {
    edges_ = std::move(edges);
  }

  /// Per-rank application entry point (typically rank 0 seeds messages).
  void set_main(std::function<void(ChareContext&)> fn) { main_ = std::move(fn); }

  /// Execute to quiescence; returns the makespan.
  double run();

  // -- introspection --------------------------------------------------------
  [[nodiscard]] ProcId location(ChareIdx idx) const;
  [[nodiscard]] int sync_rounds() const { return sync_rounds_; }
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] const CharmConfig& config() const { return cfg_; }
  [[nodiscard]] double measured_load(ChareIdx idx) const;

 private:
  friend class ChareContext;
  struct NodeState;
  class Program;

  [[nodiscard]] ProcId initial_home(ChareIdx idx) const;
  NodeState& ns(ProcId p);
  void deliver_to_chare(dmcs::Node& n, dmcs::Message&& msg);
  void execute_next(dmcs::Node& n);
  void handle_sync_contribution(dmcs::Node& n, dmcs::Message&& msg);
  void handle_assignment(dmcs::Node& n, dmcs::Message&& msg);
  void handle_migrate(dmcs::Node& n, dmcs::Message&& msg);
  void handle_mig_check(dmcs::Node& n);
  void handle_mig_done(dmcs::Node& n, dmcs::Message&& msg);
  void handle_resume(dmcs::Node& n, dmcs::Message&& msg);
  void maybe_contribute(dmcs::Node& n);
  std::vector<ProcId> run_strategy(const std::vector<double>& loads,
                                   const std::vector<ProcId>& where);

  dmcs::Machine& machine_;
  CharmConfig cfg_;
  ChareFactory factory_;
  ChareInit init_;
  std::function<void(ChareContext&)> main_;
  std::vector<EntryMethod> entries_;
  std::vector<std::string> entry_names_;
  std::vector<std::tuple<ChareIdx, ChareIdx, double>> edges_;
  ChareIdx array_n_ = 0;
  EntryId resume_entry_ = 0;

  dmcs::HandlerId msg_h_ = dmcs::kNoHandler;
  dmcs::HandlerId exec_h_ = dmcs::kNoHandler;
  dmcs::HandlerId sync_h_ = dmcs::kNoHandler;
  dmcs::HandlerId assign_h_ = dmcs::kNoHandler;
  dmcs::HandlerId migrate_h_ = dmcs::kNoHandler;
  dmcs::HandlerId mig_done_h_ = dmcs::kNoHandler;
  dmcs::HandlerId resume_h_ = dmcs::kNoHandler;

  std::vector<std::unique_ptr<NodeState>> nodes_;

  // Central LB coordinator state (rank 0).
  int contributions_ = 0;
  std::vector<double> db_load_;      ///< measured load per chare (the LB db)
  std::vector<ProcId> db_where_;     ///< current location per chare
  int mig_done_reports_ = 0;
  int sync_rounds_ = 0;
  std::uint64_t migrations_ = 0;
  bool ran_ = false;
};

}  // namespace prema::charmlite
