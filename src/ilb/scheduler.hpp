#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "mol/delivery.hpp"

/// \file scheduler.hpp
/// PREMA's per-processor work-unit scheduler: the queue behind the
/// pick-and-process loop. Application messages accepted by the MOL become
/// queued work units here; the runtime picks them round-robin across target
/// objects (FIFO within an object, which together with MOL delivery numbers
/// preserves per-sender order).
///
/// The scheduler is also the load model: the balancing framework reads the
/// queued weight (application hints) or unit count, and migration surrenders
/// an object's queued units via take_queued.

namespace prema::ilb {

class Scheduler {
 public:
  struct ObjectLoad {
    mol::MobilePtr ptr;
    std::size_t units = 0;
    double weight = 0.0;
  };

  /// Queue an accepted delivery (MOL on_delivery hook).
  void enqueue(mol::Delivery&& d);

  /// Pop the next work unit (round-robin over ready objects) and mark its
  /// target as the currently executing object.
  std::optional<mol::Delivery> pick();

  /// The work unit picked last has finished executing.
  void complete();

  /// Remove and return every queued unit targeting `ptr` (object migration).
  /// The executing object cannot surrender its units.
  std::vector<mol::Delivery> take_queued(const mol::MobilePtr& ptr);

  [[nodiscard]] bool has_work() const { return !ready_.empty(); }
  [[nodiscard]] std::size_t queued_units() const { return total_units_; }
  [[nodiscard]] double queued_weight() const { return total_weight_; }
  [[nodiscard]] bool executing() const { return executing_; }
  [[nodiscard]] const mol::MobilePtr& executing_ptr() const { return executing_ptr_; }

  /// Per-object queued load, excluding the currently executing object —
  /// exactly the set a balancing policy may migrate.
  [[nodiscard]] std::vector<ObjectLoad> migratable_loads() const;

  /// Load visible to the balancer: queued work only (the running unit is
  /// committed to this processor either way).
  [[nodiscard]] double load(bool use_weight) const {
    return use_weight ? total_weight_ : static_cast<double>(total_units_);
  }

 private:
  /// Re-anchor the weight aggregate after removals: summing arbitrary
  /// application weights in and out leaves floating-point residue, and a
  /// drained queue must report *exactly* zero load — policies compare loads
  /// against watermarks and sentinels, and a stray -1e-16 reads as "below
  /// every threshold" or, worse, as a negative load.
  void settle_weight() {
    if (total_units_ == 0) {
      total_weight_ = 0.0;
    } else if (total_weight_ < 0.0) {
      total_weight_ = 0.0;
    }
  }

  /// Ordered map: migratable_loads() iterates it to build the policy's view
  /// of movable work, so iteration order must be deterministic.
  std::map<mol::MobilePtr, std::deque<mol::Delivery>> per_object_;
  std::deque<mol::MobilePtr> ready_;  ///< each object with queued units, once
  std::size_t total_units_ = 0;
  double total_weight_ = 0.0;
  bool executing_ = false;
  mol::MobilePtr executing_ptr_;
};

}  // namespace prema::ilb
