#include "ilb/scheduler.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace prema::ilb {

void Scheduler::enqueue(mol::Delivery&& d) {
  auto [it, inserted] = per_object_.try_emplace(d.target);
  auto& q = it->second;
  if (!q.empty()) {
    // Delivery numbers are assigned at first acceptance and preserved across
    // migrations, so within an object they must arrive monotonically.
    PREMA_CHECK_MSG(q.back().delivery_no < d.delivery_no,
                    "out-of-order delivery reached the scheduler");
  }
  ++total_units_;
  total_weight_ += d.weight;
  const bool was_empty = q.empty();
  q.push_back(std::move(d));
  if (was_empty) ready_.push_back(it->first);
}

std::optional<mol::Delivery> Scheduler::pick() {
  PREMA_CHECK_MSG(!executing_, "pick() while a unit is executing");
  if (ready_.empty()) return std::nullopt;
  const mol::MobilePtr ptr = ready_.front();
  ready_.pop_front();
  auto it = per_object_.find(ptr);
  PREMA_CHECK(it != per_object_.end());
  mol::Delivery d = std::move(it->second.front());
  it->second.pop_front();
  --total_units_;
  total_weight_ -= d.weight;
  settle_weight();
  if (it->second.empty()) {
    per_object_.erase(it);
  } else {
    ready_.push_back(ptr);  // round-robin across objects
  }
  executing_ = true;
  executing_ptr_ = ptr;
  return d;
}

void Scheduler::complete() {
  PREMA_CHECK_MSG(executing_, "complete() without a picked unit");
  executing_ = false;
  executing_ptr_ = mol::kNullMobilePtr;
}

std::vector<mol::Delivery> Scheduler::take_queued(const mol::MobilePtr& ptr) {
  PREMA_CHECK_MSG(!(executing_ && executing_ptr_ == ptr),
                  "cannot take the executing object's queue");
  auto it = per_object_.find(ptr);
  if (it == per_object_.end()) return {};
  std::vector<mol::Delivery> out(std::make_move_iterator(it->second.begin()),
                                 std::make_move_iterator(it->second.end()));
  for (const auto& d : out) {
    --total_units_;
    total_weight_ -= d.weight;
  }
  settle_weight();
  per_object_.erase(it);
  ready_.erase(std::remove(ready_.begin(), ready_.end(), ptr), ready_.end());
  return out;
}

std::vector<Scheduler::ObjectLoad> Scheduler::migratable_loads() const {
  std::vector<ObjectLoad> out;
  out.reserve(per_object_.size());
  for (const auto& [ptr, q] : per_object_) {
    if (executing_ && ptr == executing_ptr_) continue;
    ObjectLoad l;
    l.ptr = ptr;
    l.units = q.size();
    for (const auto& d : q) l.weight += d.weight;
    // Zero-weight queues (pure control messages, e.g. a coordinator object)
    // carry no movable load; migrating them helps nobody.
    if (l.weight <= 0.0) continue;
    out.push_back(l);
  }
  // Deterministic order for policies that iterate (hash map order is not).
  std::sort(out.begin(), out.end(), [](const ObjectLoad& a, const ObjectLoad& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.ptr < b.ptr;
  });
  return out;
}

}  // namespace prema::ilb
