#include "ilb/sfc_key.hpp"

#include <algorithm>

namespace prema::ilb {

namespace {

/// Spread the low 21 bits of `v` so bit i moves to bit 3i.
std::uint64_t spread3(std::uint32_t v) {
  std::uint64_t x = v & kSfcCellMax;
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

/// Map one coordinate into [0, kSfcCellMax] within the box extent.
std::uint32_t to_cell(double v, double lo, double hi) {
  if (!(hi > lo)) return 0;  // degenerate axis (or NaN extent): one cell
  double f = (v - lo) / (hi - lo);
  f = std::clamp(f, 0.0, 1.0);
  const auto cell = static_cast<std::uint64_t>(f * static_cast<double>(kSfcCellMax + 1ull));
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(cell, kSfcCellMax));
}

}  // namespace

std::uint64_t morton_from_cells(std::uint32_t x, std::uint32_t y,
                                std::uint32_t z) {
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

std::uint64_t hilbert_from_cells(std::uint32_t x, std::uint32_t y,
                                 std::uint32_t z) {
  // Skilling, "Programming the Hilbert curve" (AIP Conf. Proc. 707, 2004):
  // transform the axes in place so that interleaving them afterwards yields
  // the Hilbert index (transposed form).
  std::array<std::uint32_t, 3> a{x & kSfcCellMax, y & kSfcCellMax,
                                 z & kSfcCellMax};
  constexpr int b = kSfcBitsPerDim;
  const std::uint32_t m = 1u << (b - 1);

  // Inverse undo: gray-decode the axes top bit down.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if ((a[i] & q) != 0) {
        a[0] ^= p;  // invert
      } else {
        const std::uint32_t t = (a[0] ^ a[i]) & p;
        a[0] ^= t;  // exchange
        a[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (std::size_t i = 1; i < a.size(); ++i) a[i] ^= a[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if ((a[2] & q) != 0) t ^= q - 1;
  }
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= t;

  // Interleave the transposed axes MSB-first: key bit (3*(b-1-j) + 2 - i)
  // takes bit (b-1-j) of axis i, axis 0 being the most significant.
  std::uint64_t key = 0;
  for (int j = b - 1; j >= 0; --j) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      key = (key << 1) | ((a[i] >> j) & 1u);
    }
  }
  return key;
}

std::uint64_t morton_key(const mol::Coords& c, const SfcBox& box) {
  return morton_from_cells(to_cell(c.x, box.min.x, box.max.x),
                           to_cell(c.y, box.min.y, box.max.y),
                           to_cell(c.z, box.min.z, box.max.z));
}

std::uint64_t hilbert_key(const mol::Coords& c, const SfcBox& box) {
  return hilbert_from_cells(to_cell(c.x, box.min.x, box.max.x),
                            to_cell(c.y, box.min.y, box.max.y),
                            to_cell(c.z, box.min.z, box.max.z));
}

}  // namespace prema::ilb
