#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ilb/policy.hpp"

/// \file cluster.hpp
/// Communication-aware self-clustering (after D'Angelo's adaptive
/// entity-migration scheme, arXiv:1610.01295): each processor watches its
/// objects' traffic through the comm graph and migrates an object toward the
/// processor it talks to the most — but only when that external traffic
/// outweighs the object's local (internal) traffic, so chatty cliques
/// consolidate instead of oscillating. Objects that talk mostly to a local
/// partner are co-migrated with it, keeping the clique together.
///
/// Purely local decisions: no policy wire protocol at all. Remote load comes
/// from the framework's gossip digests, which bound how far a migration can
/// overshoot an already-loaded destination.

namespace prema::ilb {

struct ClusterParams {
  /// Evaluation cadence per processor (also the poll re-arm period).
  double eval_interval_s = 10e-3;
  /// Migrate only when external traffic exceeds internal by this factor.
  double affinity_ratio = 1.5;
  /// Ignore candidates below this many bytes of external traffic (noise).
  std::uint64_t min_traffic_bytes = 1024;
  /// Max objects shipped per evaluation (primary moves; co-migrations ride
  /// along on top).
  int max_moves_per_round = 4;
  /// Co-migrate a local partner when at least this fraction of its total
  /// traffic is with the departing object.
  double co_migrate_fraction = 0.5;
  /// Never migrate to a peer whose gossiped load exceeds ours by this factor.
  double overshoot_factor = 1.0;
  /// Stop re-arming the poll timer after this many consecutive evaluations
  /// with nothing to do (lets run-to-quiescence workloads terminate).
  int max_idle_rounds = 3;
};

class ClusterPolicy final : public Policy {
 public:
  explicit ClusterPolicy(ClusterParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "cluster"; }
  [[nodiscard]] bool wants_topology() const override { return true; }
  void init(PolicyContext& ctx) override;
  void on_poll(PolicyContext& ctx) override;
  void on_message(PolicyContext&, ProcId, PolicyTag, util::ByteReader&) override {
    // No wire protocol of its own; stray tags from a pre-switch policy are
    // deliberately ignored.
  }
  void on_work_arrived(PolicyContext& ctx) override;
  void on_gossip(PolicyContext&, const GossipSummary&) override {}

  struct Stats {
    std::uint64_t evaluations = 0;
    std::uint64_t objects_moved = 0;
    std::uint64_t co_migrations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void evaluate(PolicyContext& ctx);

  ClusterParams params_;
  Stats stats_;
  double next_eval_ = 0.0;
  int idle_rounds_ = 0;
};

}  // namespace prema::ilb
