#pragma once

#include <unordered_map>
#include <vector>

#include "ilb/policies/stateless.hpp"

/// \file diffusion.hpp
/// Cybenko-style diffusion (paper reference [7]): each processor exchanges
/// load levels with a small fixed neighbourhood (hypercube when nprocs is a
/// power of two, ring otherwise) and pushes a fraction of any load gap to
/// lighter neighbours. Announcements are hysteresis-throttled so the protocol
/// quiesces once loads stop changing.

namespace prema::ilb {

struct DiffusionParams {
  /// Fraction of the load gap pushed per exchange (classic alpha).
  double alpha = 0.5;
  /// Minimum relative load change before re-announcing to neighbours.
  double announce_hysteresis = 0.25;
  /// Minimum absolute load gap worth acting on.
  double min_gap = 1.0;
};

class DiffusionPolicy final : public StatelessPolicy {
 public:
  explicit DiffusionPolicy(DiffusionParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "diffusion"; }
  void init(PolicyContext& ctx) override;
  void on_poll(PolicyContext& ctx) override;
  void on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                  util::ByteReader& body) override;

  [[nodiscard]] const std::vector<ProcId>& neighbors() const { return neighbors_; }

 private:
  static constexpr PolicyTag kLoad = 1;

  void announce_if_changed(PolicyContext& ctx);
  void push_towards(PolicyContext& ctx, ProcId neighbor);

  DiffusionParams params_;
  std::vector<ProcId> neighbors_;
  std::unordered_map<ProcId, double> neighbor_load_;
  /// Explicit first-announcement flag: the load itself is not a usable
  /// sentinel, since accumulated-weight arithmetic can legitimately settle
  /// at (or drift near) zero.
  bool announced_ = false;
  double last_announced_ = 0.0;
};

}  // namespace prema::ilb
