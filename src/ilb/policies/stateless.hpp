#pragma once

#include "ilb/policy.hpp"

namespace prema::ilb {

/// Base for scalar-only policies: defaults the topology half of the Policy
/// interface in one place so the five paper policies (and null) don't each
/// stub it. A StatelessPolicy never asks for topology accounting, so runs
/// under it keep byte-identical traces with the pre-topology framework
/// (test_determinism's ScalarPoliciesByteIdentical locks this in).
class StatelessPolicy : public Policy {
 public:
  [[nodiscard]] bool wants_topology() const final { return false; }
  void on_gossip(PolicyContext&, const GossipSummary&) final {}
};

}  // namespace prema::ilb
