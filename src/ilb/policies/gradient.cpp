#include "ilb/policies/gradient.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace prema::ilb {

using util::ByteReader;
using util::ByteWriter;

std::uint32_t GradientPolicy::infinity(const PolicyContext& ctx) const {
  return static_cast<std::uint32_t>(ctx.nprocs());
}

void GradientPolicy::init(PolicyContext& ctx) {
  const int p = ctx.nprocs();
  const ProcId me = ctx.rank();
  if (p == 1) return;
  neighbors_.push_back((me + 1) % p);
  if (p > 2) neighbors_.push_back((me + p - 1) % p);
  proximity_ = infinity(ctx);
}

void GradientPolicy::refresh(PolicyContext& ctx, bool allow_increase) {
  if (neighbors_.empty()) return;
  std::uint32_t next;
  if (ctx.local_load() < ctx.low_watermark()) {
    next = 0;
  } else {
    std::uint32_t best = infinity(ctx);
    for (ProcId n : neighbors_) {
      auto it = neighbor_prox_.find(n);
      const std::uint32_t p = it == neighbor_prox_.end() ? infinity(ctx) : it->second;
      best = std::min(best, p);
    }
    next = std::min(infinity(ctx), best + 1);
  }
  if (next == proximity_ && announced_once_) return;
  proximity_ = next;  // act on the fresh value locally right away
  // Announcements are throttled per node: an un-damped gradient surface
  // count-up floods the machine with O(P^2) messages per load change (the
  // distance-vector pathology). Deferred changes coalesce into the next
  // wakeup's announcement.
  (void)allow_increase;
  const double now = ctx.now();
  if (announced_once_ && now - last_announce_ < params_.announce_interval_s) {
    ctx.request_poll_after(params_.announce_interval_s - (now - last_announce_));
    return;
  }
  announced_once_ = true;
  last_announce_ = now;
  ByteWriter w;
  w.put<std::uint32_t>(proximity_);
  for (ProcId n : neighbors_) ctx.send_policy(n, kProximity, w.bytes());
}

void GradientPolicy::maybe_push(PolicyContext& ctx) {
  if (neighbors_.empty()) return;
  const double mine = ctx.local_load();
  if (mine <= ctx.donate_threshold()) return;
  // Downhill neighbour: strictly smaller proximity than ours.
  ProcId best_n = kNoProc;
  std::uint32_t best_p = proximity_;
  for (ProcId n : neighbors_) {
    auto it = neighbor_prox_.find(n);
    if (it == neighbor_prox_.end()) continue;
    if (it->second < best_p) {
      best_p = it->second;
      best_n = n;
    }
  }
  if (best_n == kNoProc) return;
  const double quota = params_.transfer_fraction * (mine - ctx.donate_threshold());
  auto objects = ctx.migratable();
  std::reverse(objects.begin(), objects.end());  // lightest first
  double moved = 0.0;
  for (const auto& obj : objects) {
    if (moved > 0.0 && moved + obj.weight > quota) break;
    if (obj.weight > quota && moved > 0.0) break;
    ctx.migrate_object(obj.ptr, best_n);
    moved += obj.weight;
    if (moved >= quota) break;
  }
  // The receiver is now less starved than its proximity suggested; bump our
  // cached value so we do not flood it before its next announcement.
  if (moved > 0.0) neighbor_prox_[best_n] = proximity_;
}

void GradientPolicy::on_poll(PolicyContext& ctx) {
  refresh(ctx, /*allow_increase=*/true);
  maybe_push(ctx);
}

void GradientPolicy::on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                                ByteReader& body) {
  PREMA_CHECK_MSG(tag == kProximity, "unknown gradient message tag");
  neighbor_prox_[from] = body.get<std::uint32_t>();
  refresh(ctx, /*allow_increase=*/false);
  maybe_push(ctx);
}

void GradientPolicy::on_work_arrived(PolicyContext& ctx) {
  refresh(ctx, /*allow_increase=*/false);
}

}  // namespace prema::ilb
