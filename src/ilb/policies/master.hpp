#pragma once

#include <deque>
#include <vector>

#include "ilb/policies/stateless.hpp"

/// \file master.hpp
/// Centralized manager policy: rank 0 keeps an (eventually consistent) view
/// of every processor's load from hysteresis-throttled reports and matches
/// starved processors with the heaviest known donor. Included as the
/// classical centralized baseline the asynchronous policies are measured
/// against — it balances well at small scale and bottlenecks on the manager
/// as the machine grows.

namespace prema::ilb {

struct MasterParams {
  /// Minimum relative load change before re-reporting to the manager.
  double report_hysteresis = 0.3;
};

class MasterPolicy final : public StatelessPolicy {
 public:
  explicit MasterPolicy(MasterParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "master"; }
  void init(PolicyContext& ctx) override;
  void on_poll(PolicyContext& ctx) override;
  void on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                  util::ByteReader& body) override;
  void on_work_arrived(PolicyContext& ctx) override;

 private:
  static constexpr PolicyTag kReport = 1;
  static constexpr PolicyTag kNeedWork = 2;
  static constexpr PolicyTag kPush = 3;

  void report_if_changed(PolicyContext& ctx);
  void serve_pending(PolicyContext& ctx);  // manager side

  MasterParams params_;
  double last_reported_ = -1.0;
  bool needwork_sent_ = false;

  // Manager (rank 0) state.
  std::vector<double> loads_;
  std::deque<ProcId> pending_;
};

}  // namespace prema::ilb
