#pragma once

#include <deque>
#include <map>
#include <vector>

#include "ilb/policies/stateless.hpp"

/// \file multilist.hpp
/// Multi-list scheduling in the spirit of Wu's thesis (paper reference [23]):
/// processors are organized into groups, each with a leader that maintains
/// the group's scheduling list (member load levels) and pairs starved members
/// with loaded ones. Leaders in turn report aggregate group load to a global
/// coordinator that brokers cross-group transfers, so balancing cost scales
/// with the group size rather than the machine size.

namespace prema::ilb {

struct MultiListParams {
  /// Group size; 0 = ceil(sqrt(nprocs)).
  int group_size = 0;
  /// Minimum relative load change before re-reporting to the leader.
  double report_hysteresis = 0.3;
};

class MultiListPolicy final : public StatelessPolicy {
 public:
  explicit MultiListPolicy(MultiListParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "multilist"; }
  void init(PolicyContext& ctx) override;
  void on_poll(PolicyContext& ctx) override;
  void on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                  util::ByteReader& body) override;
  void on_work_arrived(PolicyContext& ctx) override;

  [[nodiscard]] ProcId leader() const { return leader_; }

 private:
  static constexpr PolicyTag kReport = 1;      ///< member -> leader {load}
  static constexpr PolicyTag kAsk = 2;         ///< member -> leader {load}
  static constexpr PolicyTag kPush = 3;        ///< leader -> donor {needy, load}
  static constexpr PolicyTag kGroupReport = 4; ///< leader -> coordinator {total}
  static constexpr PolicyTag kAskGlobal = 5;   ///< leader -> coordinator {needy}
  static constexpr PolicyTag kPushGroup = 6;   ///< coordinator -> donor leader {needy}

  [[nodiscard]] int group_size(const PolicyContext& ctx) const;
  [[nodiscard]] ProcId leader_of(ProcId p, const PolicyContext& ctx) const;
  void report_if_changed(PolicyContext& ctx);
  void leader_serve(PolicyContext& ctx);
  void leader_report_group(PolicyContext& ctx);
  void coordinator_serve(PolicyContext& ctx);
  void donate_to(PolicyContext& ctx, ProcId needy, double needy_load);

  MultiListParams params_;
  ProcId leader_ = 0;
  double last_reported_ = -1.0;
  bool asked_ = false;

  // Leader state. Ordered maps: serve/report scans pick donors and targets
  // by iterating these, so hash order would leak into migration decisions.
  std::map<ProcId, double> member_load_;
  std::deque<ProcId> pending_;
  double last_group_reported_ = -1.0;
  bool asked_global_ = false;

  // Coordinator (rank 0) state.
  std::map<ProcId, double> group_load_;             ///< by leader rank
  std::deque<ProcId> pending_groups_;               ///< leaders with starved members
};

}  // namespace prema::ilb
