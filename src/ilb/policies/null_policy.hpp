#pragma once

#include "ilb/policies/stateless.hpp"

/// \file null_policy.hpp
/// The "no load balancing" baseline: ignores every event. Work executes where
/// it was initially placed, which is panel (a) of the paper's Figures 3-6.

namespace prema::ilb {

class NullPolicy final : public StatelessPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "null"; }
  void on_message(PolicyContext&, ProcId, PolicyTag, util::ByteReader&) override {}
};

}  // namespace prema::ilb
