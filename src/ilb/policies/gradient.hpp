#pragma once

#include <unordered_map>
#include <vector>

#include "ilb/policies/stateless.hpp"

/// \file gradient.hpp
/// Gradient-model balancing (Lin & Keller): every processor maintains a
/// *proximity* — its hop distance, over a ring neighbourhood, to the nearest
/// underloaded processor (0 if it is itself underloaded). Proximities
/// propagate between neighbours on change; overloaded processors ship work to
/// the neighbour whose proximity points downhill toward starvation.

namespace prema::ilb {

struct GradientParams {
  /// Fraction of the surplus above the donate threshold moved per transfer.
  double transfer_fraction = 0.5;
  /// Minimum spacing between a node's proximity announcements (damps the
  /// distance-vector count-up storms; deferred changes coalesce).
  double announce_interval_s = 20e-3;
};

class GradientPolicy final : public StatelessPolicy {
 public:
  explicit GradientPolicy(GradientParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "gradient"; }
  void init(PolicyContext& ctx) override;
  void on_poll(PolicyContext& ctx) override;
  void on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                  util::ByteReader& body) override;
  void on_work_arrived(PolicyContext& ctx) override;

  [[nodiscard]] std::uint32_t proximity() const { return proximity_; }

 private:
  static constexpr PolicyTag kProximity = 1;
  /// Proximity value meaning "no underloaded processor known".
  [[nodiscard]] std::uint32_t infinity(const PolicyContext& ctx) const;

  void refresh(PolicyContext& ctx, bool allow_increase);
  void maybe_push(PolicyContext& ctx);

  GradientParams params_;
  std::vector<ProcId> neighbors_;
  std::unordered_map<ProcId, std::uint32_t> neighbor_prox_;
  std::uint32_t proximity_ = 0;
  bool announced_once_ = false;
  double last_announce_ = -1e18;
};

}  // namespace prema::ilb
