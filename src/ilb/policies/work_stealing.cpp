#include "ilb/policies/work_stealing.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace prema::ilb {

using util::ByteReader;
using util::ByteWriter;

void WorkStealingPolicy::init(PolicyContext& ctx) {
  // Initial pairing: neighbour by rank-flip, as in paired work stealing.
  partner_ = ctx.rank() ^ 1;
  if (partner_ >= ctx.nprocs()) partner_ = (ctx.rank() + 1) % ctx.nprocs();
  if (ctx.nprocs() == 1) partner_ = kNoProc;
}

void WorkStealingPolicy::on_poll(PolicyContext& ctx) {
  if (passive_ && ctx.now() >= dormant_until_ &&
      dormant_rounds_ <= params_.max_dormant_rounds &&
      ctx.local_load() < ctx.low_watermark()) {
    // The dormant-retry period elapsed: resume begging at a fresh partner.
    passive_ = false;
    consecutive_denials_ = 0;
  }
  maybe_request(ctx);
}

void WorkStealingPolicy::maybe_request(PolicyContext& ctx) {
  if (partner_ == kNoProc) return;
  if (passive_ || outstanding_) return;
  if (ctx.local_load() >= ctx.low_watermark()) return;
  if (ctx.peer_degraded(partner_)) {
    // Degraded partner: rotate to the next healthy rank instead of begging a
    // slowed/pausing node. If every peer is degraded, keep the current one —
    // a slow grant still beats starving.
    const int n = ctx.nprocs();
    for (int i = 1; i < n; ++i) {
      const auto cand = static_cast<ProcId>((partner_ + i) % n);
      if (cand == ctx.rank()) continue;
      if (!ctx.peer_degraded(cand)) {
        partner_ = cand;
        break;
      }
    }
  }
  ByteWriter w;
  w.put<double>(ctx.local_load());
  ctx.send_policy(partner_, kRequest, w.take());
  outstanding_ = true;
  ++stats_.requests_sent;
}

void WorkStealingPolicy::handle_request(PolicyContext& ctx, ProcId from,
                                        double their_load) {
  const double mine = ctx.local_load();
  auto deny = [&] {
    ctx.send_policy(from, kDeny, {});
    ++stats_.denials;
  };
  if (mine <= ctx.donate_threshold() || mine <= their_load) {
    deny();
    return;
  }
  if (ctx.peer_degraded(from)) {
    // Never donate into a degraded node: its pause/slowdown would strand the
    // migrated work behind the fault.
    deny();
    return;
  }
  const double target = params_.grant_fraction * (mine - their_load);
  auto objects = ctx.migratable();  // heaviest first
  if (objects.empty()) {
    deny();
    return;
  }
  // Accumulate lightest-first so a single huge object does not overshoot the
  // transfer; always grant at least one object.
  std::reverse(objects.begin(), objects.end());
  double granted = 0.0;
  std::uint32_t count = 0;
  for (const auto& obj : objects) {
    if (count > 0 && (granted >= target || count >= params_.max_objects_per_grant)) break;
    // Keep a cushion of pending work for ourselves (paper §4.1).
    if (count > 0 && mine - granted - obj.weight < ctx.low_watermark()) break;
    ctx.migrate_object(obj.ptr, from);
    granted += obj.weight;
    ++count;
  }
  ByteWriter w;
  w.put<std::uint32_t>(count);
  ctx.send_policy(from, kGrant, w.take());
  ++stats_.grants;
}

void WorkStealingPolicy::on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                                    ByteReader& body) {
  switch (tag) {
    case kRequest: {
      const double their_load = body.get<double>();
      handle_request(ctx, from, their_load);
      return;
    }
    case kDeny: {
      outstanding_ = false;
      ++consecutive_denials_;
      // Pick a different partner for whatever comes next.
      if (ctx.nprocs() > 2) {
        ProcId next = partner_;
        while (next == partner_ || next == ctx.rank()) {
          next = static_cast<ProcId>(ctx.rng().below(
              static_cast<std::uint64_t>(ctx.nprocs())));
        }
        partner_ = next;
      }
      if (consecutive_denials_ >= params_.passive_after_denials) {
        // Everyone we asked was dry: go dormant, but wake up occasionally —
        // loads change. Dormant rounds back off geometrically and are capped
        // so a finished machine eventually goes fully quiet.
        passive_ = true;
        consecutive_denials_ = 0;
        ++stats_.went_passive;
        ++dormant_rounds_;
        if (dormant_rounds_ <= params_.max_dormant_rounds) {
          const double delay = params_.dormant_backoff_s *
                               static_cast<double>(1 << std::min(dormant_rounds_, 10));
          dormant_until_ = ctx.now() + delay;
          ctx.request_poll_after(delay);
        } else {
          dormant_until_ = 1e300;  // out of retries: only new work wakes us
        }
        return;
      }
      // Denial is cheap: retry the new partner immediately (paper §4).
      maybe_request(ctx);
      return;
    }
    case kGrant: {
      // Channels are FIFO, so the granted objects were delivered before this
      // message: nothing remains in flight, and if the arrivals were not
      // enough the next poll may request again immediately.
      outstanding_ = false;
      consecutive_denials_ = 0;
      dormant_rounds_ = 0;
      (void)body.get<std::uint32_t>();
      return;
    }
    default:
      PREMA_CHECK_MSG(false, "unknown work-stealing message tag");
  }
}

void WorkStealingPolicy::on_work_arrived(PolicyContext&) {
  passive_ = false;
  consecutive_denials_ = 0;
  dormant_rounds_ = 0;
  dormant_until_ = 0.0;
}

}  // namespace prema::ilb
