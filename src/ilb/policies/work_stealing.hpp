#pragma once

#include "ilb/policies/stateless.hpp"

/// \file work_stealing.hpp
/// The Work Stealing policy the paper's evaluation uses (§4): processors are
/// paired with a partner; a processor whose load falls below the low
/// water-mark sends the partner a request, the partner either uninstalls and
/// migrates some mobile objects (a grant) or answers with a negative
/// acknowledgement, and on denial the requester picks another partner. After
/// enough consecutive denials the requester goes passive until new work
/// arrives, which is what lets the machine reach quiescence when the global
/// work pool is exhausted.

namespace prema::ilb {

struct WorkStealingParams {
  /// Fraction of the load gap the donor tries to hand over per grant.
  double grant_fraction = 0.5;
  /// Consecutive denials before the requester goes dormant (paper: the
  /// requester "may choose another partner" on denial — retries are
  /// immediate until this limit).
  int passive_after_denials = 16;
  /// First dormant-retry delay; doubles per dormant round.
  double dormant_backoff_s = 25e-3;
  /// Dormant retries before giving up entirely (bounds the message tail when
  /// no quiescence detector is running to cut it short).
  int max_dormant_rounds = 8;
  /// Cap on objects per grant (the paper notes coarse-grained applications
  /// may migrate a single object at a time).
  std::size_t max_objects_per_grant = SIZE_MAX;
};

class WorkStealingPolicy final : public StatelessPolicy {
 public:
  explicit WorkStealingPolicy(WorkStealingParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "work_stealing"; }
  void init(PolicyContext& ctx) override;
  void on_poll(PolicyContext& ctx) override;
  void on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                  util::ByteReader& body) override;
  void on_work_arrived(PolicyContext& ctx) override;

  struct Stats {
    std::uint64_t requests_sent = 0;
    std::uint64_t grants = 0;
    std::uint64_t denials = 0;
    std::uint64_t went_passive = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  static constexpr PolicyTag kRequest = 1;
  static constexpr PolicyTag kDeny = 2;
  static constexpr PolicyTag kGrant = 3;

  void maybe_request(PolicyContext& ctx);
  void handle_request(PolicyContext& ctx, ProcId from, double their_load);

  WorkStealingParams params_;
  Stats stats_;
  ProcId partner_ = kNoProc;
  bool outstanding_ = false;  ///< a request is in flight
  bool passive_ = false;      ///< dormant; woken by new work or a slow retry
  int consecutive_denials_ = 0;
  int dormant_rounds_ = 0;
  double dormant_until_ = 0.0;  ///< earliest time a poll may end dormancy
};

}  // namespace prema::ilb
