#include "ilb/policies/diffusion.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace prema::ilb {

using util::ByteReader;
using util::ByteWriter;

namespace {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

void DiffusionPolicy::init(PolicyContext& ctx) {
  const int p = ctx.nprocs();
  const ProcId me = ctx.rank();
  if (p == 1) return;
  if (is_power_of_two(p)) {
    for (int bit = 1; bit < p; bit <<= 1) neighbors_.push_back(me ^ bit);
  } else {
    neighbors_.push_back((me + 1) % p);
    if (p > 2) neighbors_.push_back((me + p - 1) % p);
  }
}

void DiffusionPolicy::on_poll(PolicyContext& ctx) {
  announce_if_changed(ctx);
  for (ProcId n : neighbors_) push_towards(ctx, n);
}

void DiffusionPolicy::announce_if_changed(PolicyContext& ctx) {
  const double load = ctx.local_load();
  if (announced_) {
    const double delta = std::abs(load - last_announced_);
    const double floor =
        std::max(params_.min_gap, params_.announce_hysteresis * last_announced_);
    if (delta < floor) return;
  }
  announced_ = true;
  last_announced_ = load;
  ByteWriter w;
  w.put<double>(load);
  for (ProcId n : neighbors_) ctx.send_policy(n, kLoad, w.bytes());
}

void DiffusionPolicy::push_towards(PolicyContext& ctx, ProcId neighbor) {
  auto it = neighbor_load_.find(neighbor);
  if (it == neighbor_load_.end()) return;  // never heard from them
  const double mine = ctx.local_load();
  const double theirs = it->second;
  const double gap = mine - theirs;
  if (gap < 2 * params_.min_gap || mine <= ctx.donate_threshold()) return;
  const double quota = params_.alpha * gap / 2.0;
  auto objects = ctx.migratable();
  std::reverse(objects.begin(), objects.end());  // lightest first
  double moved = 0.0;
  for (const auto& obj : objects) {
    if (moved + obj.weight > quota && moved > 0.0) break;
    // Never move more than half the gap: shifting weight w changes the gap
    // by 2w, so anything past gap/2 *inverts* the imbalance and the object
    // ping-pongs between the two neighbours forever (each sees the other as
    // overloaded in turn). Coarse objects that would overshoot stay put.
    if (2.0 * (moved + obj.weight) > gap) break;
    ctx.migrate_object(obj.ptr, neighbor);
    moved += obj.weight;
  }
  if (moved > 0.0) {
    // Optimistically account the transfer so we do not re-push before the
    // neighbour's next announcement.
    it->second += moved;
  }
}

void DiffusionPolicy::on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                                 ByteReader& body) {
  PREMA_CHECK_MSG(tag == kLoad, "unknown diffusion message tag");
  neighbor_load_[from] = body.get<double>();
  push_towards(ctx, from);
}

}  // namespace prema::ilb
