#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ilb/policy.hpp"
#include "ilb/sfc_key.hpp"

/// \file sfc.hpp
/// Space-filling-curve curve-cut rebalancing (Eibl & Rüde, arXiv:1808.00829):
/// every object gets a 1-D key from its spatial coordinates (Morton or
/// Hilbert order), the global load is prefix-summed along the curve, and the
/// curve is cut into nprocs equal-load segments; each processor then ships
/// its out-of-segment objects to the segment owner. Locality comes for free —
/// a curve segment is a spatially compact blob.
///
/// Distributed realization: processors periodically report a sparse
/// key-bucket load histogram to a coordinator (rank 0); the coordinator
/// merges, prefix-sums, recuts when the segment imbalance warrants it, and
/// broadcasts the cut table. Objects without registered coordinates hash to
/// a deterministic bucket so they still land somewhere stable.

namespace prema::ilb {

struct SfcParams {
  /// Use Hilbert keys (true) or Morton keys (false).
  bool hilbert = true;
  /// Coordinate normalization box; applications registering coordinates
  /// outside it are clamped to the faces. Default unit cube.
  SfcBox box{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  /// Histogram report cadence per processor (also the poll re-arm period).
  double report_interval_s = 10e-3;
  /// Recut only when max-rank-load / mean-rank-load exceeds this.
  double recut_threshold = 1.05;
  /// ...and only when the proposed cuts beat the current placement by a
  /// real margin (proposed imbalance < factor * current imbalance), so
  /// bucket-quantization wobble can't keep re-shipping boundary buckets.
  double improvement_factor = 0.95;
  /// Minimum spacing between recuts. Shipped objects are invisible to load
  /// reports while in transit, so deciding again before the previous wave
  /// lands would chase a phantom imbalance of its own making.
  double min_recut_interval_s = 100e-3;
  /// Stop re-arming the poll timer after this many consecutive reports with
  /// zero local load (lets run-to-quiescence workloads terminate); any new
  /// work re-arms.
  int max_idle_reports = 3;
};

class SfcPolicy final : public Policy {
 public:
  /// Number of key buckets in the reported histogram (top bits of the key).
  /// Histograms are sparse maps, so the wire/memory cost scales with the
  /// number of *occupied* buckets (bounded by the object count), not with
  /// kBuckets — so this can be generous. It must be: each bucket is an
  /// unsplittable cut unit, and the top B bits of an interleaved 3-D key
  /// give only B/3 octree levels of resolution per axis. 10 bits (~3 levels)
  /// collapses a line of objects into ~8 usable cells, merging neighboring
  /// processors' loads into single buckets that no cut can separate; 20 bits
  /// (~6.7 levels) resolves ~100 cells along a line.
  static constexpr int kBucketBits = 20;
  static constexpr std::uint32_t kBuckets = 1u << kBucketBits;

  explicit SfcPolicy(SfcParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const override { return "sfc"; }
  [[nodiscard]] bool wants_topology() const override { return true; }
  void init(PolicyContext& ctx) override;
  void on_poll(PolicyContext& ctx) override;
  void on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                  util::ByteReader& body) override;
  void on_work_arrived(PolicyContext& ctx) override;
  void on_gossip(PolicyContext&, const GossipSummary&) override {}

  /// Bucket index for one object (key top bits; coordless objects hash).
  [[nodiscard]] std::uint32_t bucket_of(PolicyContext& ctx,
                                        const mol::MobilePtr& ptr) const;

  struct Stats {
    std::uint64_t reports_sent = 0;
    std::uint64_t cuts_broadcast = 0;  ///< coordinator only
    std::uint64_t objects_shipped = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // Tags chosen outside the scalar policies' 1..6 range so stray in-flight
  // messages from a pre-switch policy are recognizably foreign (ignored).
  static constexpr PolicyTag kHist = 20;
  static constexpr PolicyTag kCuts = 21;

  void report(PolicyContext& ctx);
  void maybe_recut(PolicyContext& ctx);
  void apply_cuts(PolicyContext& ctx);
  /// The rank owning `bucket` under the current cut table.
  [[nodiscard]] ProcId owner_of(std::uint32_t bucket) const;

  SfcParams params_;
  Stats stats_;
  double next_report_ = 0.0;
  double next_recut_ = 0.0;  ///< coordinator only
  int idle_reports_ = 0;

  /// Segment start buckets, one per rank (start_[0] == 0); empty until the
  /// first cut table arrives.
  std::vector<std::uint32_t> start_;

  // -- coordinator state (rank 0 only) -------------------------------------
  /// Latest sparse histogram per reporting rank (ordered for determinism).
  std::map<ProcId, std::map<std::uint32_t, double>> reports_;
};

}  // namespace prema::ilb
