#include "ilb/policies/sfc.hpp"

#include <algorithm>

namespace prema::ilb {

using util::ByteReader;
using util::ByteWriter;

void SfcPolicy::init(PolicyContext& ctx) {
  next_report_ = ctx.now();
  next_recut_ = ctx.now();
  idle_reports_ = 0;
}

std::uint32_t SfcPolicy::bucket_of(PolicyContext& ctx,
                                   const mol::MobilePtr& ptr) const {
  if (const auto c = ctx.object_coords(ptr)) {
    const std::uint64_t key =
        params_.hilbert ? hilbert_key(*c, params_.box) : morton_key(*c, params_.box);
    return static_cast<std::uint32_t>(key >> (3 * kSfcBitsPerDim - kBucketBits));
  }
  // No coordinates registered: hash the mobile pointer to a stable bucket so
  // the object has a fixed place on the curve (Knuth multiplicative hash).
  const std::uint64_t h =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ptr.home)) * 2654435761u) ^
      (static_cast<std::uint64_t>(ptr.index) * 2246822519u);
  return static_cast<std::uint32_t>(h % kBuckets);
}

void SfcPolicy::on_poll(PolicyContext& ctx) {
  const double t = ctx.now();
  if (t >= next_report_) {
    next_report_ = t + params_.report_interval_s;
    report(ctx);
    if (ctx.rank() == 0) maybe_recut(ctx);
  }
  // Keep the cadence alive while the machine has work; go quiet after a few
  // idle reports so run-to-quiescence workloads can terminate.
  if (idle_reports_ < params_.max_idle_reports) {
    ctx.request_poll_after(params_.report_interval_s);
  }
}

void SfcPolicy::on_work_arrived(PolicyContext& ctx) {
  if (idle_reports_ >= params_.max_idle_reports) {
    idle_reports_ = 0;
    ctx.request_poll_after(0.0);
  }
}

void SfcPolicy::report(PolicyContext& ctx) {
  std::map<std::uint32_t, double> hist;
  double total = 0.0;
  for (const auto& obj : ctx.migratable()) {
    hist[bucket_of(ctx, obj.ptr)] += obj.weight;
    total += obj.weight;
  }
  if (total <= 0.0 && ctx.local_load() <= 0.0) {
    ++idle_reports_;
  } else {
    idle_reports_ = 0;
  }
  ++stats_.reports_sent;
  if (ctx.rank() == 0) {
    reports_[0] = std::move(hist);
    return;  // the coordinator's own report never touches the wire
  }
  // wire:ilb.sfc-hist pack w
  ByteWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(hist.size()));
  for (const auto& [bucket, load] : hist) {
    w.put<std::uint32_t>(bucket);
    w.put<double>(load);
  }
  ctx.send_policy(0, kHist, w.take());
}

void SfcPolicy::maybe_recut(PolicyContext& ctx) {
  // Wait until every rank has reported at least once since the last cut:
  // recutting from a partial picture migrates against stale load. Also let
  // the previous wave of shipments land first (min_recut_interval_s) — an
  // object in transit is on nobody's report, so back-to-back decisions
  // would chase the hole the last decision made.
  if (static_cast<int>(reports_.size()) < ctx.nprocs()) return;
  if (ctx.now() < next_recut_) return;

  std::map<std::uint32_t, double> merged;
  double total = 0.0;
  double current_max = 0.0;  // heaviest rank under the *current* placement
  for (const auto& [rank, hist] : reports_) {
    double rank_load = 0.0;
    for (const auto& [bucket, load] : hist) {
      merged[bucket] += load;
      rank_load += load;
    }
    total += rank_load;
    current_max = std::max(current_max, rank_load);
  }
  if (total <= 0.0) return;  // machine is draining; nothing to cut

  // Equal-load cuts by prefix sum along the curve: rank p's segment starts
  // where the running load first reaches p * total / nprocs.
  const int nprocs = ctx.nprocs();
  const double share = total / nprocs;
  std::vector<std::uint32_t> start(static_cast<std::size_t>(nprocs), 0);
  std::vector<double> seg_load(static_cast<std::size_t>(nprocs), 0.0);
  int seg = 0;
  double prefix = 0.0;
  for (const auto& [bucket, load] : merged) {
    // Advance to the segment this bucket's prefix midpoint belongs to; a
    // bucket is never split, so segments are contiguous bucket ranges.
    while (seg + 1 < nprocs && prefix + load / 2.0 >= (seg + 1) * share) {
      ++seg;
      start[static_cast<std::size_t>(seg)] = bucket;
    }
    seg_load[static_cast<std::size_t>(seg)] += load;
    prefix += load;
  }
  const double max_seg = *std::max_element(seg_load.begin(), seg_load.end());
  const double imbalance = max_seg / share;
  // Recut only when the *current* placement is out of balance AND the
  // proposed cuts strictly improve it. Gating on the proposal alone
  // thrashes: proposed cuts equalize by construction, so once bucket
  // quantization alone exceeds the threshold (small shares near the drain
  // tail) every report round would re-ship the boundary buckets.
  const double current_imbalance = current_max / share;
  if (current_imbalance <= params_.recut_threshold) return;
  // Require a real improvement margin, not just any improvement.
  if (imbalance >= params_.improvement_factor * current_imbalance) return;
  next_recut_ = ctx.now() + params_.min_recut_interval_s;

  ++stats_.cuts_broadcast;
  ctx.trace_sfc_cut(static_cast<std::size_t>(nprocs), imbalance);
  // wire:ilb.sfc-cuts pack w
  ByteWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    w.put<std::uint32_t>(start[static_cast<std::size_t>(p)]);
  }
  const auto body = w.take();
  for (ProcId p = 1; p < nprocs; ++p) ctx.send_policy(p, kCuts, body);
  start_ = std::move(start);
  apply_cuts(ctx);
  // Demand a fresh round of reports before the next recut.
  reports_.clear();
}

ProcId SfcPolicy::owner_of(std::uint32_t bucket) const {
  // start_ is ascending; the owner is the last rank whose segment starts at
  // or below the bucket.
  ProcId owner = 0;
  for (std::size_t p = 1; p < start_.size(); ++p) {
    if (start_[p] <= bucket) owner = static_cast<ProcId>(p);
  }
  return owner;
}

void SfcPolicy::apply_cuts(PolicyContext& ctx) {
  if (start_.empty()) return;
  const ProcId me = ctx.rank();
  for (const auto& obj : ctx.migratable()) {
    const ProcId owner = owner_of(bucket_of(ctx, obj.ptr));
    if (owner == me || ctx.peer_degraded(owner)) continue;
    ctx.migrate_object(obj.ptr, owner);
    ++stats_.objects_shipped;
  }
}

void SfcPolicy::on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                           ByteReader& body) {
  if (tag == kHist) {
    if (ctx.rank() != 0) return;  // stale report after a coordinator change
    // wire:ilb.sfc-hist unpack body
    std::map<std::uint32_t, double> hist;
    const auto n = body.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto bucket = body.get<std::uint32_t>();
      const auto load = body.get<double>();
      hist[bucket] += load;
    }
    reports_[from] = std::move(hist);
    maybe_recut(ctx);
    return;
  }
  if (tag == kCuts) {
    // wire:ilb.sfc-cuts unpack body
    const auto n = body.get<std::uint32_t>();
    std::vector<std::uint32_t> start(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      start[i] = body.get<std::uint32_t>();
    }
    start_ = std::move(start);
    apply_cuts(ctx);
    return;
  }
  // Foreign tag: a stray in-flight message from a pre-switch policy
  // (service-mode switch schedules). Deliberately ignored.
}

}  // namespace prema::ilb
