#include "ilb/policies/multilist.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace prema::ilb {

using util::ByteReader;
using util::ByteWriter;

int MultiListPolicy::group_size(const PolicyContext& ctx) const {
  if (params_.group_size > 0) return params_.group_size;
  return std::max(2, static_cast<int>(std::ceil(std::sqrt(ctx.nprocs()))));
}

ProcId MultiListPolicy::leader_of(ProcId p, const PolicyContext& ctx) const {
  return (p / group_size(ctx)) * group_size(ctx);
}

void MultiListPolicy::init(PolicyContext& ctx) {
  leader_ = leader_of(ctx.rank(), ctx);
}

void MultiListPolicy::report_if_changed(PolicyContext& ctx) {
  const double load = ctx.local_load();
  if (last_reported_ >= 0.0) {
    const double floor = std::max(1.0, params_.report_hysteresis * last_reported_);
    if (std::abs(load - last_reported_) < floor) return;
  }
  last_reported_ = load;
  if (ctx.rank() == leader_) {
    member_load_[ctx.rank()] = load;
    leader_serve(ctx);
    leader_report_group(ctx);
    return;
  }
  ByteWriter w;
  w.put<double>(load);
  ctx.send_policy(leader_, kReport, w.take());
}

void MultiListPolicy::on_poll(PolicyContext& ctx) {
  report_if_changed(ctx);
  if (!asked_ && ctx.local_load() < ctx.low_watermark()) {
    asked_ = true;
    if (ctx.rank() == leader_) {
      member_load_[ctx.rank()] = ctx.local_load();
      if (std::find(pending_.begin(), pending_.end(), ctx.rank()) == pending_.end()) {
        pending_.push_back(ctx.rank());
      }
      leader_serve(ctx);
    } else {
      ByteWriter w;
      w.put<double>(ctx.local_load());
      ctx.send_policy(leader_, kAsk, w.take());
    }
  }
}

void MultiListPolicy::leader_serve(PolicyContext& ctx) {
  while (!pending_.empty()) {
    const ProcId needy = pending_.front();
    // Drop stale requests (e.g. the eager asks at startup, before the
    // asker's own work arrived) based on the list's current view.
    if (member_load_.count(needy) != 0 &&
        member_load_.at(needy) >= ctx.low_watermark()) {
      pending_.pop_front();
      continue;
    }
    // Heaviest member of this group's list.
    ProcId donor = kNoProc;
    double donor_load = ctx.donate_threshold();
    for (const auto& [p, l] : member_load_) {
      if (l > donor_load) {
        donor_load = l;
        donor = p;
      }
    }
    if (donor == needy) {
      pending_.pop_front();
      continue;
    }
    if (donor == kNoProc) {
      // Nothing movable inside the group: escalate once to the coordinator.
      if (!asked_global_ && leader_ != 0) {
        asked_global_ = true;
        ByteWriter w;
        w.put<ProcId>(needy);
        ctx.send_policy(0, kAskGlobal, w.take());
      }
      return;
    }
    pending_.pop_front();
    const double needy_load = member_load_.count(needy) ? member_load_[needy] : 0.0;
    if (donor == ctx.rank()) {
      donate_to(ctx, needy, needy_load);
    } else {
      ByteWriter w;
      w.put<ProcId>(needy);
      w.put<double>(needy_load);
      ctx.send_policy(donor, kPush, w.take());
    }
    member_load_[donor] = donor_load / 2.0;  // optimistic, until next report
  }
}

void MultiListPolicy::leader_report_group(PolicyContext& ctx) {
  if (ctx.rank() != leader_) return;
  double total = 0.0;
  for (const auto& [p, l] : member_load_) total += l;
  const double floor = std::max(1.0, params_.report_hysteresis *
                                         std::max(0.0, last_group_reported_));
  if (last_group_reported_ >= 0.0 && std::abs(total - last_group_reported_) < floor) {
    return;
  }
  last_group_reported_ = total;
  if (leader_ == 0) {
    // Rank 0 is both a group leader and the coordinator: record our own
    // group's load directly and try to serve any starved groups.
    group_load_[0] = total;
    coordinator_serve(ctx);
    return;
  }
  ByteWriter w;
  w.put<double>(total);
  ctx.send_policy(0, kGroupReport, w.take());
}

void MultiListPolicy::coordinator_serve(PolicyContext& ctx) {
  while (!pending_groups_.empty()) {
    ProcId donor_leader = kNoProc;
    double best = 0.0;
    for (const auto& [l, total] : group_load_) {
      if (total > best) {
        best = total;
        donor_leader = l;
      }
    }
    const ProcId needy_leader = pending_groups_.front();
    if (donor_leader == kNoProc || donor_leader == needy_leader) return;
    pending_groups_.pop_front();
    if (donor_leader == 0) {
      // We are the donor group's leader ourselves.
      ByteWriter w;
      w.put<ProcId>(needy_leader);
      util::ByteReader r(w.bytes());
      on_message(ctx, 0, kPushGroup, r);
    } else {
      ByteWriter w;
      w.put<ProcId>(needy_leader);
      ctx.send_policy(donor_leader, kPushGroup, w.take());
    }
    group_load_[donor_leader] = best / 2.0;
  }
}

void MultiListPolicy::donate_to(PolicyContext& ctx, ProcId needy, double needy_load) {
  const double mine = ctx.local_load();
  if (mine <= ctx.donate_threshold()) {
    report_if_changed(ctx);
    return;
  }
  const double quota = (mine - needy_load) / 2.0;
  auto objects = ctx.migratable();
  std::reverse(objects.begin(), objects.end());  // lightest first
  double moved = 0.0;
  for (const auto& obj : objects) {
    if (moved > 0.0 && moved + obj.weight > quota) break;
    ctx.migrate_object(obj.ptr, needy);
    moved += obj.weight;
  }
  report_if_changed(ctx);
}

void MultiListPolicy::on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                                 ByteReader& body) {
  switch (tag) {
    case kReport: {
      member_load_[from] = body.get<double>();
      leader_serve(ctx);
      leader_report_group(ctx);
      return;
    }
    case kAsk: {
      member_load_[from] = body.get<double>();
      if (std::find(pending_.begin(), pending_.end(), from) == pending_.end()) {
        pending_.push_back(from);
      }
      leader_serve(ctx);
      return;
    }
    case kPush: {
      const auto needy = body.get<ProcId>();
      const double needy_load = body.get<double>();
      donate_to(ctx, needy, needy_load);
      return;
    }
    case kGroupReport: {
      PREMA_CHECK_MSG(ctx.rank() == 0, "group report reached a non-coordinator");
      group_load_[from] = body.get<double>();
      coordinator_serve(ctx);
      return;
    }
    case kAskGlobal: {
      PREMA_CHECK_MSG(ctx.rank() == 0, "global ask reached a non-coordinator");
      const auto needy = body.get<ProcId>();
      (void)needy;  // the transfer lands at the asking group's leader
      if (std::find(pending_groups_.begin(), pending_groups_.end(), from) ==
          pending_groups_.end()) {
        pending_groups_.push_back(from);
      }
      coordinator_serve(ctx);
      return;
    }
    case kPushGroup: {
      // We are the heaviest group's leader: ship from our heaviest member to
      // the starved group's leader, whose list redistributes it locally.
      const auto needy_leader = body.get<ProcId>();
      ProcId donor = kNoProc;
      double donor_load = ctx.donate_threshold();
      for (const auto& [p, l] : member_load_) {
        if (l > donor_load) {
          donor_load = l;
          donor = p;
        }
      }
      if (donor == ctx.rank() || (donor == kNoProc && ctx.local_load() > ctx.donate_threshold())) {
        donate_to(ctx, needy_leader, 0.0);
      } else if (donor != kNoProc) {
        ByteWriter w;
        w.put<ProcId>(needy_leader);
        w.put<double>(0.0);
        ctx.send_policy(donor, kPush, w.take());
        member_load_[donor] = donor_load / 2.0;
      }
      return;
    }
    default:
      PREMA_CHECK_MSG(false, "unknown multilist message tag");
  }
}

void MultiListPolicy::on_work_arrived(PolicyContext&) {
  asked_ = false;
  asked_global_ = false;
}

}  // namespace prema::ilb
