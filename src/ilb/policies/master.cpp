#include "ilb/policies/master.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace prema::ilb {

using util::ByteReader;
using util::ByteWriter;

void MasterPolicy::init(PolicyContext& ctx) {
  if (ctx.rank() == 0) {
    loads_.assign(static_cast<std::size_t>(ctx.nprocs()), 0.0);
  }
}

void MasterPolicy::on_poll(PolicyContext& ctx) {
  report_if_changed(ctx);
  if (!needwork_sent_ && ctx.local_load() < ctx.low_watermark()) {
    ByteWriter w;
    w.put<double>(ctx.local_load());
    ctx.send_policy(0, kNeedWork, w.take());
    needwork_sent_ = true;
  }
}

void MasterPolicy::report_if_changed(PolicyContext& ctx) {
  const double load = ctx.local_load();
  if (last_reported_ >= 0.0) {
    const double floor = std::max(1.0, params_.report_hysteresis * last_reported_);
    if (std::abs(load - last_reported_) < floor) return;
  }
  last_reported_ = load;
  ByteWriter w;
  w.put<double>(load);
  ctx.send_policy(0, kReport, w.take());
}

void MasterPolicy::serve_pending(PolicyContext& ctx) {
  while (!pending_.empty()) {
    const ProcId needy = pending_.front();
    // A request goes stale when the asker has found work since (e.g. the
    // eager asks every processor makes at startup, before its own units
    // arrive). Reports keep loads_ fresh enough to spot that.
    if (loads_[static_cast<std::size_t>(needy)] >= ctx.low_watermark()) {
      pending_.pop_front();
      continue;
    }
    const auto donor_it = std::max_element(loads_.begin(), loads_.end());
    const double donor_load = *donor_it;
    if (donor_load <= ctx.donate_threshold()) return;  // nothing to hand out yet
    const auto donor = static_cast<ProcId>(donor_it - loads_.begin());
    if (donor == needy) {
      pending_.pop_front();
      continue;
    }
    pending_.pop_front();
    ByteWriter w;
    w.put<ProcId>(needy);
    w.put<double>(loads_[static_cast<std::size_t>(needy)]);
    ctx.send_policy(donor, kPush, w.take());
    // Optimistic accounting until the donor's next report.
    *donor_it = donor_load / 2.0;
  }
}

void MasterPolicy::on_message(PolicyContext& ctx, ProcId from, PolicyTag tag,
                              ByteReader& body) {
  switch (tag) {
    case kReport: {
      PREMA_CHECK_MSG(ctx.rank() == 0, "load report reached a non-manager");
      loads_[static_cast<std::size_t>(from)] = body.get<double>();
      serve_pending(ctx);
      return;
    }
    case kNeedWork: {
      PREMA_CHECK_MSG(ctx.rank() == 0, "work request reached a non-manager");
      loads_[static_cast<std::size_t>(from)] = body.get<double>();
      if (std::find(pending_.begin(), pending_.end(), from) == pending_.end()) {
        pending_.push_back(from);
      }
      serve_pending(ctx);
      return;
    }
    case kPush: {
      const auto needy = body.get<ProcId>();
      const double needy_load = body.get<double>();
      const double mine = ctx.local_load();
      if (mine <= ctx.donate_threshold()) {
        report_if_changed(ctx);  // correct the manager's stale view
        return;
      }
      const double quota = (mine - needy_load) / 2.0;
      auto objects = ctx.migratable();
      std::reverse(objects.begin(), objects.end());  // lightest first
      double moved = 0.0;
      for (const auto& obj : objects) {
        if (moved > 0.0 && moved + obj.weight > quota) break;
        ctx.migrate_object(obj.ptr, needy);
        moved += obj.weight;
      }
      report_if_changed(ctx);
      return;
    }
    default:
      PREMA_CHECK_MSG(false, "unknown master-policy message tag");
  }
}

void MasterPolicy::on_work_arrived(PolicyContext&) { needwork_sent_ = false; }

}  // namespace prema::ilb
