#include "ilb/policies/cluster.hpp"

#include <algorithm>
#include <set>

namespace prema::ilb {

void ClusterPolicy::init(PolicyContext& ctx) {
  next_eval_ = ctx.now();
  idle_rounds_ = 0;
}

void ClusterPolicy::on_poll(PolicyContext& ctx) {
  const double t = ctx.now();
  if (t >= next_eval_) {
    next_eval_ = t + params_.eval_interval_s;
    evaluate(ctx);
  }
  if (idle_rounds_ < params_.max_idle_rounds) {
    ctx.request_poll_after(params_.eval_interval_s);
  }
}

void ClusterPolicy::on_work_arrived(PolicyContext& ctx) {
  if (idle_rounds_ >= params_.max_idle_rounds) {
    idle_rounds_ = 0;
    ctx.request_poll_after(0.0);
  }
}

void ClusterPolicy::evaluate(PolicyContext& ctx) {
  ++stats_.evaluations;
  const ProcId me = ctx.rank();
  const auto migratable = ctx.migratable();
  const auto edges = ctx.comm_edges();
  if (migratable.empty() || edges.empty()) {
    ++idle_rounds_;
    return;
  }

  std::set<mol::MobilePtr> movable;
  for (const auto& obj : migratable) movable.insert(obj.ptr);

  // Split each local object's outgoing traffic into internal (the peer
  // object lives here too) and external per destination processor, by the
  // MOL's best-known location. Totals feed the co-migration fraction.
  struct Traffic {
    std::uint64_t internal = 0;
    std::uint64_t total = 0;
    std::map<ProcId, std::uint64_t> external;
    std::map<mol::MobilePtr, std::uint64_t> local_partner;
  };
  std::map<mol::MobilePtr, Traffic> traffic;
  for (const auto& e : edges) {
    if (movable.find(e.src) == movable.end()) continue;
    Traffic& tr = traffic[e.src];
    tr.total += e.bytes;
    const ProcId loc = ctx.object_location(e.dst);
    if (loc == me) {
      tr.internal += e.bytes;
      tr.local_partner[e.dst] += e.bytes;
    } else if (loc != kNoProc) {
      tr.external[loc] += e.bytes;
    }
  }

  // Gossiped peer loads gate destinations (bounded-staleness view).
  std::map<ProcId, double> peer_load;
  for (const auto& s : ctx.gossip()) peer_load[s.proc] = s.load;
  const double my_load = ctx.local_load();

  std::set<mol::MobilePtr> shipped;
  int moves = 0;
  for (const auto& [ptr, tr] : traffic) {
    if (moves >= params_.max_moves_per_round) break;
    if (shipped.count(ptr) != 0) continue;
    // Best external partner processor for this object.
    ProcId best = kNoProc;
    std::uint64_t best_bytes = 0;
    for (const auto& [proc, bytes] : tr.external) {
      if (bytes > best_bytes) {
        best = proc;
        best_bytes = bytes;
      }
    }
    if (best == kNoProc || best_bytes < params_.min_traffic_bytes) continue;
    if (static_cast<double>(best_bytes) <=
        params_.affinity_ratio * static_cast<double>(tr.internal)) {
      continue;
    }
    if (ctx.peer_degraded(best)) continue;
    // Don't pile onto a processor the gossip says is already busier.
    const auto pl = peer_load.find(best);
    if (pl != peer_load.end() &&
        pl->second > params_.overshoot_factor * my_load) {
      continue;
    }

    ctx.migrate_object(ptr, best);
    shipped.insert(ptr);
    ++stats_.objects_moved;
    ++moves;
    double batch_traffic = static_cast<double>(best_bytes);
    std::size_t batch = 1;

    // Co-migrate local partners that mostly talk to the departing object,
    // so the clique moves as one instead of re-discovering the affinity a
    // round later (and paying another migration).
    for (const auto& [partner, bytes] : tr.local_partner) {
      if (shipped.count(partner) != 0 || movable.find(partner) == movable.end()) {
        continue;
      }
      const auto pit = traffic.find(partner);
      const std::uint64_t partner_total = pit != traffic.end()
                                              ? pit->second.total + bytes
                                              : bytes;
      if (static_cast<double>(bytes) <
          params_.co_migrate_fraction * static_cast<double>(partner_total)) {
        continue;
      }
      ctx.migrate_object(partner, best);
      shipped.insert(partner);
      ++stats_.co_migrations;
      batch_traffic += static_cast<double>(bytes);
      ++batch;
    }
    ctx.trace_cluster_merge(best, batch, batch_traffic);
  }

  if (shipped.empty() && my_load <= 0.0) {
    ++idle_rounds_;
  } else {
    idle_rounds_ = 0;
  }
}

}  // namespace prema::ilb
