#pragma once

#include <array>
#include <cstdint>

#include "mol/comm_graph.hpp"

/// \file sfc_key.hpp
/// Space-filling-curve keys for the sfc balancing policy: map a 3-D position
/// to a 1-D key whose ordering is the curve traversal order. Two curves are
/// provided — Morton (Z-order; cheap bit interleave, some long jumps) and
/// Hilbert (locality-preserving; Skilling's transposed-form algorithm) — at
/// 21 bits per dimension, so a full key fits in 63 bits of a uint64_t.
/// Curve-cut balancing by key prefix-sum follows Eibl & Rüde's SFC scheme
/// (arXiv:1808.00829).

namespace prema::ilb {

/// Bits of resolution per dimension (3*21 = 63 key bits).
inline constexpr int kSfcBitsPerDim = 21;
inline constexpr std::uint32_t kSfcCellMax = (1u << kSfcBitsPerDim) - 1;

/// Axis-aligned box used to normalize application coordinates into the
/// [0, 2^21) integer cell grid. Degenerate extents (max <= min) collapse
/// that axis to cell 0, so 1-D and 2-D embeddings work unchanged.
struct SfcBox {
  mol::Coords min;
  mol::Coords max;
};

/// Morton (Z-order) key: bit i of x lands at key bit 3i, y at 3i+1, z at
/// 3i+2. Cells beyond kSfcCellMax are clamped.
[[nodiscard]] std::uint64_t morton_from_cells(std::uint32_t x, std::uint32_t y,
                                              std::uint32_t z);

/// Hilbert key via Skilling's AxestoTranspose: same 63-bit range as Morton,
/// but consecutive keys are always face-adjacent cells.
[[nodiscard]] std::uint64_t hilbert_from_cells(std::uint32_t x, std::uint32_t y,
                                               std::uint32_t z);

/// Normalize `c` into `box` and take the Morton / Hilbert key of its cell.
[[nodiscard]] std::uint64_t morton_key(const mol::Coords& c, const SfcBox& box);
[[nodiscard]] std::uint64_t hilbert_key(const mol::Coords& c, const SfcBox& box);

}  // namespace prema::ilb
