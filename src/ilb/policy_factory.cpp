#include "ilb/policy.hpp"

#include "ilb/policies/cluster.hpp"
#include "ilb/policies/diffusion.hpp"
#include "ilb/policies/gradient.hpp"
#include "ilb/policies/master.hpp"
#include "ilb/policies/multilist.hpp"
#include "ilb/policies/null_policy.hpp"
#include "ilb/policies/sfc.hpp"
#include "ilb/policies/work_stealing.hpp"
#include "support/assert.hpp"

namespace prema::ilb {

std::unique_ptr<Policy> make_policy(const std::string& name) {
  if (name == "null") return std::make_unique<NullPolicy>();
  if (name == "work_stealing") return std::make_unique<WorkStealingPolicy>();
  if (name == "diffusion") return std::make_unique<DiffusionPolicy>();
  if (name == "gradient") return std::make_unique<GradientPolicy>();
  if (name == "master") return std::make_unique<MasterPolicy>();
  if (name == "multilist") return std::make_unique<MultiListPolicy>();
  if (name == "sfc") return std::make_unique<SfcPolicy>();
  if (name == "cluster") return std::make_unique<ClusterPolicy>();
  PREMA_CHECK_MSG(false, "unknown balancing policy name");
  return nullptr;
}

}  // namespace prema::ilb
