#include "ilb/balancer.hpp"

#include <utility>

#include "support/assert.hpp"

namespace prema::ilb {

using util::ByteReader;
using util::ByteWriter;

Balancer::Balancer(dmcs::Node& node, mol::Mol& mol, Scheduler& sched,
                   std::unique_ptr<Policy> policy, BalancerConfig cfg,
                   dmcs::HandlerId policy_wire_h)
    : node_(node),
      mol_(mol),
      sched_(sched),
      policy_(std::move(policy)),
      cfg_(cfg),
      wire_h_(policy_wire_h) {
  PREMA_CHECK_MSG(policy_ != nullptr, "balancer needs a policy (use \"null\")");
}

void Balancer::init() {
  if (cfg_.enabled) policy_->init(*this);
}

void Balancer::poll() {
  if (!cfg_.enabled || stopped_) return;
  ++stats_.polls;
  charge_seconds(cfg_.decision_cost_s);
  maybe_gossip();
  policy_->on_poll(*this);
  if (auto* ts = node_.trace(); ts && migrations_this_round_ > 0) {
    ts->sample_migrations_round(static_cast<double>(migrations_this_round_));
    migrations_this_round_ = 0;
  }
}

void Balancer::on_wire(dmcs::Message&& msg) {
  if (!cfg_.enabled) return;
  ++stats_.wire_messages;
  ByteReader r(msg.payload);
  const auto tag = r.get<PolicyTag>();
  if (tag == 0) {
    // Self-addressed polling-thread tick (see unit_started): behave exactly
    // like a poll point, which is what the polling thread does on wakeup.
    self_tick_armed_ = false;
    poll();
    return;
  }
  if (tag == kGossipTag) {
    // Framework gossip channel: decode the peer's digest, retain the latest
    // per sender, and notify the policy. Absorbed silently when the active
    // policy is scalar-only (possible around a mid-run policy switch).
    // wire:ilb.gossip unpack r
    GossipSummary s;
    s.proc = msg.src;
    s.t = r.get<double>();
    s.load = r.get<double>();
    s.objects = r.get<std::uint64_t>();
    s.centroid.x = r.get<double>();
    s.centroid.y = r.get<double>();
    s.centroid.z = r.get<double>();
    if (!policy_->wants_topology()) return;
    charge_seconds(cfg_.decision_cost_s);
    gossip_[s.proc] = s;
    policy_->on_gossip(*this, s);
    return;
  }
  if (tag >= kTopologyTagBase && !policy_->wants_topology()) {
    // A topology policy's message reaching a scalar policy: around a mid-run
    // switch, ranks swap on their own clocks, so an early-switching rank's
    // first sfc report can land here before this rank switches. Absorb it
    // framework-side — scalar policies keep their fail-fast abort for junk
    // inside their own tag range.
    return;
  }
  charge_seconds(cfg_.decision_cost_s);
  if (auto* ts = node_.trace()) ts->policy_wire(node_.now(), msg.src, tag);
  policy_->on_message(*this, msg.src, tag, r);
}

void Balancer::work_arrived() {
  if (!cfg_.enabled) return;
  if (auto* ts = node_.trace()) {
    ts->sample_queue_depth(static_cast<double>(sched_.queued_units()));
  }
  policy_->on_work_arrived(*this);
}

void Balancer::unit_started() {
  if (!cfg_.enabled) return;
  // Paper §4.2: with preemptive message processing, "load balancing begins
  // when the underloaded processor begins work on its last local work unit".
  // Arm the polling thread by sending ourselves a system message; it will be
  // handled at the next polling tick (implicit mode) or — degenerating
  // gracefully — at the next poll operation (explicit mode).
  if (local_load() >= cfg_.low_watermark) return;
  request_poll_after(0.0);
}

void Balancer::request_poll_after(double seconds) {
  if (!cfg_.enabled || stopped_ || self_tick_armed_) return;
  self_tick_armed_ = true;
  ByteWriter w;
  w.put<PolicyTag>(0);
  node_.send_self_after(
      seconds, dmcs::Message{wire_h_, node_.rank(), dmcs::MsgKind::kSystem, w.take()});
}

void Balancer::migrate_object(const mol::MobilePtr& ptr, ProcId dst) {
  ++stats_.objects_migrated;
  if (auto* ts = node_.trace()) {
    // The policy just decided to move work: record the decision itself,
    // attributed to the policy by name. (Mol::migrate records the transfer.)
    if (policy_name_id_ == 0) {
      policy_name_id_ = ts->recorder().intern(policy_->name());
    }
    double weight = 0.0;
    for (const auto& load : sched_.migratable_loads()) {
      if (load.ptr == ptr) {
        weight = load.weight;
        break;
      }
    }
    ts->policy_decision(node_.now(), dst, weight, policy_name_id_);
    ++migrations_this_round_;
  }
  mol_.migrate(ptr, dst);
}

void Balancer::send_policy(ProcId dst, PolicyTag tag,
                           std::vector<std::uint8_t> body) {
  ByteWriter w(body.size() + 1);
  w.put<PolicyTag>(tag);
  for (std::uint8_t b : body) w.put<std::uint8_t>(b);
  node_.send(dst, dmcs::Message{wire_h_, node_.rank(), dmcs::MsgKind::kSystem, w.take()});
}

void Balancer::charge_seconds(double seconds) {
  node_.compute_seconds(seconds, util::TimeCategory::kScheduling);
}

std::vector<GossipSummary> Balancer::gossip() const {
  std::vector<GossipSummary> out;
  out.reserve(gossip_.size());
  for (const auto& [proc, s] : gossip_) out.push_back(s);
  return out;
}

void Balancer::maybe_gossip() {
  if (!policy_->wants_topology()) return;
  const double t = node_.now();
  if (t < next_gossip_) return;
  next_gossip_ = t + cfg_.gossip_interval_s;

  GossipSummary s;
  s.proc = node_.rank();
  s.t = t;
  s.load = local_load();
  std::uint64_t with_coords = 0;
  for (const mol::MobilePtr& ptr : mol_.local_ptrs()) {
    ++s.objects;
    if (const auto c = mol_.coords(ptr)) {
      s.centroid.x += c->x;
      s.centroid.y += c->y;
      s.centroid.z += c->z;
      ++with_coords;
    }
  }
  if (with_coords > 0) {
    s.centroid.x /= static_cast<double>(with_coords);
    s.centroid.y /= static_cast<double>(with_coords);
    s.centroid.z /= static_cast<double>(with_coords);
  }

  // wire:ilb.gossip pack w
  ByteWriter w;
  w.put<double>(s.t);
  w.put<double>(s.load);
  w.put<std::uint64_t>(s.objects);
  w.put<double>(s.centroid.x);
  w.put<double>(s.centroid.y);
  w.put<double>(s.centroid.z);
  const auto body = w.take();
  for (ProcId p = 0; p < node_.nprocs(); ++p) {
    if (p == node_.rank()) continue;
    send_policy(p, kGossipTag, body);
  }
}

void Balancer::switch_policy(std::unique_ptr<Policy> policy) {
  PREMA_CHECK_MSG(policy != nullptr, "cannot switch to a null policy");
  policy_ = std::move(policy);
  policy_name_id_ = 0;       // re-intern the new name lazily
  gossip_.clear();           // stale digests belong to the old policy
  next_gossip_ = node_.now();  // gossip immediately if the new policy wants it
  if (cfg_.enabled) policy_->init(*this);
}

void Balancer::trace_sfc_cut(std::size_t segments, double imbalance) {
  if (auto* ts = node_.trace()) {
    ts->policy_sfc_cut(node_.now(), segments, imbalance);
  }
}

void Balancer::trace_cluster_merge(ProcId dst, std::size_t objects,
                                   double traffic) {
  if (auto* ts = node_.trace()) {
    ts->policy_cluster_merge(node_.now(), dst, objects, traffic);
  }
}

}  // namespace prema::ilb
