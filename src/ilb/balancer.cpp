#include "ilb/balancer.hpp"

#include <utility>

#include "support/assert.hpp"

namespace prema::ilb {

using util::ByteReader;
using util::ByteWriter;

Balancer::Balancer(dmcs::Node& node, mol::Mol& mol, Scheduler& sched,
                   std::unique_ptr<Policy> policy, BalancerConfig cfg,
                   dmcs::HandlerId policy_wire_h)
    : node_(node),
      mol_(mol),
      sched_(sched),
      policy_(std::move(policy)),
      cfg_(cfg),
      wire_h_(policy_wire_h) {
  PREMA_CHECK_MSG(policy_ != nullptr, "balancer needs a policy (use \"null\")");
}

void Balancer::init() {
  if (cfg_.enabled) policy_->init(*this);
}

void Balancer::poll() {
  if (!cfg_.enabled || stopped_) return;
  ++stats_.polls;
  charge_seconds(cfg_.decision_cost_s);
  policy_->on_poll(*this);
  if (auto* ts = node_.trace(); ts && migrations_this_round_ > 0) {
    ts->sample_migrations_round(static_cast<double>(migrations_this_round_));
    migrations_this_round_ = 0;
  }
}

void Balancer::on_wire(dmcs::Message&& msg) {
  if (!cfg_.enabled) return;
  ++stats_.wire_messages;
  ByteReader r(msg.payload);
  const auto tag = r.get<PolicyTag>();
  if (tag == 0) {
    // Self-addressed polling-thread tick (see unit_started): behave exactly
    // like a poll point, which is what the polling thread does on wakeup.
    self_tick_armed_ = false;
    poll();
    return;
  }
  charge_seconds(cfg_.decision_cost_s);
  if (auto* ts = node_.trace()) ts->policy_wire(node_.now(), msg.src, tag);
  policy_->on_message(*this, msg.src, tag, r);
}

void Balancer::work_arrived() {
  if (!cfg_.enabled) return;
  if (auto* ts = node_.trace()) {
    ts->sample_queue_depth(static_cast<double>(sched_.queued_units()));
  }
  policy_->on_work_arrived(*this);
}

void Balancer::unit_started() {
  if (!cfg_.enabled) return;
  // Paper §4.2: with preemptive message processing, "load balancing begins
  // when the underloaded processor begins work on its last local work unit".
  // Arm the polling thread by sending ourselves a system message; it will be
  // handled at the next polling tick (implicit mode) or — degenerating
  // gracefully — at the next poll operation (explicit mode).
  if (local_load() >= cfg_.low_watermark) return;
  request_poll_after(0.0);
}

void Balancer::request_poll_after(double seconds) {
  if (!cfg_.enabled || stopped_ || self_tick_armed_) return;
  self_tick_armed_ = true;
  ByteWriter w;
  w.put<PolicyTag>(0);
  node_.send_self_after(
      seconds, dmcs::Message{wire_h_, node_.rank(), dmcs::MsgKind::kSystem, w.take()});
}

void Balancer::migrate_object(const mol::MobilePtr& ptr, ProcId dst) {
  ++stats_.objects_migrated;
  if (auto* ts = node_.trace()) {
    // The policy just decided to move work: record the decision itself,
    // attributed to the policy by name. (Mol::migrate records the transfer.)
    if (policy_name_id_ == 0) {
      policy_name_id_ = ts->recorder().intern(policy_->name());
    }
    double weight = 0.0;
    for (const auto& load : sched_.migratable_loads()) {
      if (load.ptr == ptr) {
        weight = load.weight;
        break;
      }
    }
    ts->policy_decision(node_.now(), dst, weight, policy_name_id_);
    ++migrations_this_round_;
  }
  mol_.migrate(ptr, dst);
}

void Balancer::send_policy(ProcId dst, PolicyTag tag,
                           std::vector<std::uint8_t> body) {
  ByteWriter w(body.size() + 1);
  w.put<PolicyTag>(tag);
  for (std::uint8_t b : body) w.put<std::uint8_t>(b);
  node_.send(dst, dmcs::Message{wire_h_, node_.rank(), dmcs::MsgKind::kSystem, w.take()});
}

void Balancer::charge_seconds(double seconds) {
  node_.compute_seconds(seconds, util::TimeCategory::kScheduling);
}

}  // namespace prema::ilb
