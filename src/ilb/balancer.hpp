#pragma once

#include <map>
#include <memory>
#include <optional>

#include "dmcs/node.hpp"
#include "ilb/policy.hpp"
#include "ilb/scheduler.hpp"
#include "mol/mol.hpp"
#include "trace/trace.hpp"

/// \file balancer.hpp
/// Glue between one processor's scheduler, its Mobile Object Layer, and the
/// plugged-in balancing policy. The balancer implements PolicyContext, feeds
/// the policy its events, and carries PREMA's water-mark logic, including the
/// implicit-mode trick from paper §4.2: when the processor starts running its
/// *last* queued unit, the balancer arms a self-addressed system message so
/// the polling thread initiates balancing *during* the unit instead of after
/// it — this is exactly why implicit PREMA keeps processors fed.

namespace prema::ilb {

struct BalancerConfig {
  /// Load below which this processor asks for work (in weight-hint units or
  /// unit counts, per `use_weight`).
  double low_watermark = 2.0;
  /// Load above which a processor is willing to donate.
  double donate_threshold = 4.0;
  /// Use application weight hints (true) or unit counts (false) as load.
  bool use_weight = true;
  /// CPU cost charged (Scheduling) per policy decision event.
  double decision_cost_s = 5e-6;
  /// Master switch; off = "no load balancing" baseline.
  bool enabled = true;
  /// Period of the framework's gossip broadcast (topology policies only):
  /// every interval each processor sends its GossipSummary to all peers, so
  /// a remote digest is at most one interval plus one message latency stale.
  double gossip_interval_s = 50e-3;
};

class Balancer final : public PolicyContext {
 public:
  /// Framework-reserved policy wire tag for GossipSummary broadcasts;
  /// intercepted by on_wire before policy dispatch (policies use 1..254).
  static constexpr PolicyTag kGossipTag = 255;

  Balancer(dmcs::Node& node, mol::Mol& mol, Scheduler& sched,
           std::unique_ptr<Policy> policy, BalancerConfig cfg,
           dmcs::HandlerId policy_wire_h);

  // -- events from the runtime's Program --------------------------------
  void init();
  /// A poll point (service pass, polling tick, or idle transition).
  void poll();
  /// A policy wire message arrived (dispatched from the DMCS handler).
  void on_wire(dmcs::Message&& msg);
  /// The scheduler accepted new local work.
  void work_arrived();
  /// A work unit just started; if the queue ran dry behind it, arm the
  /// polling-thread wakeup (implicit mode) via a self system message.
  void unit_started();

  [[nodiscard]] const BalancerConfig& config() const { return cfg_; }
  [[nodiscard]] Policy& policy() { return *policy_; }

  /// Swap in a new policy mid-run (service-mode switch schedules). The old
  /// policy's in-flight wire messages may still arrive and are delivered to
  /// the new policy — so a switch target must tolerate stray tags (sfc and
  /// cluster do; the scalar paper policies assert on unknown tags and are
  /// only safe as the *first* policy in a schedule). Gossip state and the
  /// interned trace name are reset; the new policy is init()-ed. Switching
  /// does NOT toggle MOL topology accounting — the runtime enables it up
  /// front when any scheduled policy wants it.
  void switch_policy(std::unique_ptr<Policy> policy);

  /// Global termination has been detected: stop initiating balancing (poll
  /// events and timer wakeups become no-ops).
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t wire_messages = 0;
    std::uint64_t objects_migrated = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // -- PolicyContext ------------------------------------------------------
  [[nodiscard]] ProcId rank() const override { return node_.rank(); }
  [[nodiscard]] int nprocs() const override { return node_.nprocs(); }
  [[nodiscard]] double now() const override { return node_.now(); }
  [[nodiscard]] util::Rng& rng() override { return node_.rng(); }
  [[nodiscard]] double local_load() const override {
    return sched_.load(cfg_.use_weight);
  }
  [[nodiscard]] double low_watermark() const override { return cfg_.low_watermark; }
  [[nodiscard]] double donate_threshold() const override { return cfg_.donate_threshold; }
  [[nodiscard]] std::vector<Scheduler::ObjectLoad> migratable() const override {
    return sched_.migratable_loads();
  }
  void migrate_object(const mol::MobilePtr& ptr, ProcId dst) override;
  void send_policy(ProcId dst, PolicyTag tag,
                   std::vector<std::uint8_t> body) override;
  void charge_seconds(double seconds) override;
  void request_poll_after(double seconds) override;
  [[nodiscard]] bool peer_degraded(ProcId p) const override {
    return node_.peer_degraded(p);
  }
  [[nodiscard]] bool topology_enabled() const override {
    return mol_.topology_enabled();
  }
  [[nodiscard]] std::optional<mol::Coords> object_coords(
      const mol::MobilePtr& ptr) const override {
    return mol_.coords(ptr);
  }
  [[nodiscard]] std::vector<mol::CommEdge> comm_edges() const override {
    return mol_.comm_graph().edges();
  }
  [[nodiscard]] std::vector<mol::ProcTraffic> proc_traffic() const override {
    return mol_.comm_graph().proc_traffic();
  }
  [[nodiscard]] ProcId object_location(const mol::MobilePtr& ptr) const override {
    return mol_.location_hint(ptr);
  }
  [[nodiscard]] std::vector<GossipSummary> gossip() const override;
  void trace_sfc_cut(std::size_t segments, double imbalance) override;
  void trace_cluster_merge(ProcId dst, std::size_t objects,
                           double traffic) override;

 private:
  /// Broadcast this processor's GossipSummary to every peer when due.
  void maybe_gossip();
  dmcs::Node& node_;
  mol::Mol& mol_;
  Scheduler& sched_;
  std::unique_ptr<Policy> policy_;
  BalancerConfig cfg_;
  dmcs::HandlerId wire_h_;
  Stats stats_;
  bool self_tick_armed_ = false;
  bool stopped_ = false;

  // Tracing: interned policy name (lazy) and the count of objects migrated
  // since the last poll — one "balancing round" for the histogram.
  trace::StrId policy_name_id_ = 0;
  std::uint64_t migrations_this_round_ = 0;

  // Gossip: latest digest per remote processor (ordered for deterministic
  // policy iteration) and the next broadcast due-time. Only populated when
  // the active policy wants topology. Touched only from under the node's
  // state lock (poll and wire handlers both run there).
  std::map<ProcId, GossipSummary> gossip_;
  double next_gossip_ = 0.0;
};

}  // namespace prema::ilb
