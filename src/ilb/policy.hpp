#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "ilb/scheduler.hpp"
#include "mol/comm_graph.hpp"
#include "mol/mobile_ptr.hpp"
#include "support/byte_buffer.hpp"
#include "support/rng.hpp"

/// \file policy.hpp
/// PREMA's load-balancing framework [Barker et al., TPDS'03]: policies are
/// pluggable strategy objects driven by three kinds of events — poll points
/// (the scheduler's pick-and-process loop, or a polling-thread wakeup in
/// implicit mode), policy wire messages, and local load transitions. The
/// framework, not the policy, decides *when* these fire (explicitly at poll
/// operations or preemptively); the policy decides *what* moves *where*.

namespace prema::ilb {

/// Tag namespace for a policy's own wire messages (one byte on the wire).
/// Tag 0 is the Balancer's self-tick; 255 is the framework's gossip channel
/// (Balancer::kGossipTag). Scalar policies use 1..19 and abort on anything
/// else in that range (fail-fast on corrupt traffic); topology policies use
/// 20..254 (kTopologyTagBase up). The Balancer absorbs topology-range tags
/// before a scalar policy ever sees them: around a mid-run policy switch,
/// ranks swap on their own clocks, so an early-switching rank's first sfc
/// report can reach a rank whose scalar policy is still active.
using PolicyTag = std::uint8_t;

/// First tag reserved for topology-aware policies (see PolicyTag).
inline constexpr PolicyTag kTopologyTagBase = 20;

/// One processor's periodic topology digest, broadcast by the framework's
/// gossip hook when the active policy wants topology. Staleness is bounded:
/// a summary is at most one gossip interval plus one message latency old
/// (see DESIGN.md "Policy layer").
struct GossipSummary {
  ProcId proc = kNoProc;
  /// Sender-local time at which the summary was taken.
  double t = 0.0;
  /// Queued load on the sender at that time (same units as local_load()).
  double load = 0.0;
  /// Resident mobile objects on the sender.
  std::uint64_t objects = 0;
  /// Centroid of the sender's registered object coordinates (zeros when the
  /// sender has no coordinates registered).
  mol::Coords centroid;
};

/// What a policy sees and may do. Implemented by the Balancer.
class PolicyContext {
 public:
  virtual ~PolicyContext() = default;

  [[nodiscard]] virtual ProcId rank() const = 0;
  [[nodiscard]] virtual int nprocs() const = 0;
  [[nodiscard]] virtual double now() const = 0;
  [[nodiscard]] virtual util::Rng& rng() = 0;

  /// Queued local load (application weight hints or unit count, per the
  /// balancer's configuration). Does not include the executing unit.
  [[nodiscard]] virtual double local_load() const = 0;

  /// The configured low water-mark below which this processor counts as
  /// underloaded (paper §4.1).
  [[nodiscard]] virtual double low_watermark() const = 0;

  /// Load above which this processor is willing to donate work.
  [[nodiscard]] virtual double donate_threshold() const = 0;

  /// Per-object migratable load (excludes the executing object).
  [[nodiscard]] virtual std::vector<Scheduler::ObjectLoad> migratable() const = 0;

  /// Uninstall `ptr` (with its queued work) and ship it to `dst`.
  virtual void migrate_object(const mol::MobilePtr& ptr, ProcId dst) = 0;

  /// Send a policy wire message (system kind — eligible for preemptive
  /// processing at the destination).
  virtual void send_policy(ProcId dst, PolicyTag tag,
                           std::vector<std::uint8_t> body) = 0;

  /// Charge decision-making CPU to the Scheduling category.
  virtual void charge_seconds(double seconds) = 0;

  /// Ask the framework for another on_poll roughly `seconds` from now — the
  /// polling thread's periodic wakeup, used for balancing retries/backoff.
  /// Collapses to a single pending wakeup if called repeatedly.
  virtual void request_poll_after(double seconds) = 0;

  /// Per-node health: true when `p` is currently a poor balancing partner —
  /// its fault plan marks it slowed/pausing, or this node's reliable link to
  /// it is retransmitting. Policies should avoid stealing from or donating
  /// to degraded peers. Always false on a fault-free run.
  [[nodiscard]] virtual bool peer_degraded(ProcId) const { return false; }

  // --- Topology view (defaulted: scalar-only policies never see it) -------

  /// True when the MOL is accounting coordinates and message traffic for
  /// this run. All accessors below return empty views when false.
  [[nodiscard]] virtual bool topology_enabled() const { return false; }

  /// Application-registered coordinates for a locally known object.
  [[nodiscard]] virtual std::optional<mol::Coords> object_coords(
      const mol::MobilePtr&) const {
    return std::nullopt;
  }

  /// Snapshot of this processor's object-to-object traffic edges.
  [[nodiscard]] virtual std::vector<mol::CommEdge> comm_edges() const {
    return {};
  }

  /// Snapshot of this processor's outbound per-processor traffic tally.
  [[nodiscard]] virtual std::vector<mol::ProcTraffic> proc_traffic() const {
    return {};
  }

  /// Best-known location of `ptr` (local rank, a forwarding hint, or the
  /// home directory's guess); kNoProc when nothing is known.
  [[nodiscard]] virtual ProcId object_location(const mol::MobilePtr&) const {
    return kNoProc;
  }

  /// Latest gossip digest per remote processor (bounded staleness; may be
  /// empty early in the run, before the first gossip interval elapses).
  [[nodiscard]] virtual std::vector<GossipSummary> gossip() const {
    return {};
  }

  /// Trace hooks for the topology policies' decision events. No-ops when
  /// tracing is off (and on contexts that do not implement them).
  virtual void trace_sfc_cut(std::size_t /*segments*/, double /*imbalance*/) {}
  virtual void trace_cluster_merge(ProcId /*dst*/, std::size_t /*objects*/,
                                   double /*traffic*/) {}
};

/// A pluggable dynamic load-balancing strategy.
class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once before the run starts.
  virtual void init(PolicyContext&) {}

  /// A poll point on this processor: between work units in explicit mode,
  /// plus polling-thread wakeups in implicit mode, plus idle transitions.
  virtual void on_poll(PolicyContext&) {}

  /// A policy wire message sent by a peer's send_policy.
  virtual void on_message(PolicyContext&, ProcId from, PolicyTag tag,
                          util::ByteReader& body) = 0;

  /// New work (message or migrated object) arrived locally.
  virtual void on_work_arrived(PolicyContext&) {}

  /// Whether this policy consumes the topology view. When true, the runtime
  /// turns on MOL coordinate/traffic accounting before the run starts and
  /// the Balancer broadcasts periodic GossipSummary digests. Scalar-only
  /// policies inherit `false` from StatelessPolicy, which keeps their wire
  /// and trace bytes identical to the pre-topology framework.
  [[nodiscard]] virtual bool wants_topology() const = 0;

  /// A peer's gossip digest arrived (framework channel, tag 255). Only
  /// fires for policies with wants_topology() == true.
  virtual void on_gossip(PolicyContext&, const GossipSummary&) = 0;
};

/// Instantiate a policy from its registry name:
///   "null" | "work_stealing" | "diffusion" | "gradient" | "master" |
///   "multilist" | "sfc" | "cluster"
/// Aborts on unknown names. `params` is an optional policy-specific knob
/// string (currently unused; policies take their defaults).
std::unique_ptr<Policy> make_policy(const std::string& name);

}  // namespace prema::ilb
