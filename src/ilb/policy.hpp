#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "ilb/scheduler.hpp"
#include "mol/mobile_ptr.hpp"
#include "support/byte_buffer.hpp"
#include "support/rng.hpp"

/// \file policy.hpp
/// PREMA's load-balancing framework [Barker et al., TPDS'03]: policies are
/// pluggable strategy objects driven by three kinds of events — poll points
/// (the scheduler's pick-and-process loop, or a polling-thread wakeup in
/// implicit mode), policy wire messages, and local load transitions. The
/// framework, not the policy, decides *when* these fire (explicitly at poll
/// operations or preemptively); the policy decides *what* moves *where*.

namespace prema::ilb {

/// Tag namespace for a policy's own wire messages (one byte on the wire).
using PolicyTag = std::uint8_t;

/// What a policy sees and may do. Implemented by the Balancer.
class PolicyContext {
 public:
  virtual ~PolicyContext() = default;

  [[nodiscard]] virtual ProcId rank() const = 0;
  [[nodiscard]] virtual int nprocs() const = 0;
  [[nodiscard]] virtual double now() const = 0;
  [[nodiscard]] virtual util::Rng& rng() = 0;

  /// Queued local load (application weight hints or unit count, per the
  /// balancer's configuration). Does not include the executing unit.
  [[nodiscard]] virtual double local_load() const = 0;

  /// The configured low water-mark below which this processor counts as
  /// underloaded (paper §4.1).
  [[nodiscard]] virtual double low_watermark() const = 0;

  /// Load above which this processor is willing to donate work.
  [[nodiscard]] virtual double donate_threshold() const = 0;

  /// Per-object migratable load (excludes the executing object).
  [[nodiscard]] virtual std::vector<Scheduler::ObjectLoad> migratable() const = 0;

  /// Uninstall `ptr` (with its queued work) and ship it to `dst`.
  virtual void migrate_object(const mol::MobilePtr& ptr, ProcId dst) = 0;

  /// Send a policy wire message (system kind — eligible for preemptive
  /// processing at the destination).
  virtual void send_policy(ProcId dst, PolicyTag tag,
                           std::vector<std::uint8_t> body) = 0;

  /// Charge decision-making CPU to the Scheduling category.
  virtual void charge_seconds(double seconds) = 0;

  /// Ask the framework for another on_poll roughly `seconds` from now — the
  /// polling thread's periodic wakeup, used for balancing retries/backoff.
  /// Collapses to a single pending wakeup if called repeatedly.
  virtual void request_poll_after(double seconds) = 0;

  /// Per-node health: true when `p` is currently a poor balancing partner —
  /// its fault plan marks it slowed/pausing, or this node's reliable link to
  /// it is retransmitting. Policies should avoid stealing from or donating
  /// to degraded peers. Always false on a fault-free run.
  [[nodiscard]] virtual bool peer_degraded(ProcId) const { return false; }
};

/// A pluggable dynamic load-balancing strategy.
class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once before the run starts.
  virtual void init(PolicyContext&) {}

  /// A poll point on this processor: between work units in explicit mode,
  /// plus polling-thread wakeups in implicit mode, plus idle transitions.
  virtual void on_poll(PolicyContext&) {}

  /// A policy wire message sent by a peer's send_policy.
  virtual void on_message(PolicyContext&, ProcId from, PolicyTag tag,
                          util::ByteReader& body) = 0;

  /// New work (message or migrated object) arrived locally.
  virtual void on_work_arrived(PolicyContext&) {}
};

/// Instantiate a policy from its registry name:
///   "null" | "work_stealing" | "diffusion" | "gradient" | "master" |
///   "multilist"
/// Aborts on unknown names. `params` is an optional policy-specific knob
/// string (currently unused; policies take their defaults).
std::unique_ptr<Policy> make_policy(const std::string& name);

}  // namespace prema::ilb
