#include "service/latency.hpp"

#include <cmath>
#include <limits>

namespace prema::service {

LatencyHistogram::LatencyHistogram() : counts_(kBuckets, 0) {}

std::size_t LatencyHistogram::bucket_index(double seconds) {
  if (!(seconds >= kBaseSeconds)) return 0;  // underflow (also NaN, negatives)
  const double scaled = seconds / kBaseSeconds;
  int exp = 0;
  const double m = std::frexp(scaled, &exp);  // scaled = m * 2^exp, m in [0.5, 1)
  const int octave = exp - 1;                 // scaled in [2^octave, 2^(octave+1))
  if (octave >= kOctaves) return kBuckets - 1;  // overflow
  // Mantissa m in [0.5, 1) -> linear sub-bucket in [0, kSubBuckets).
  auto sub = static_cast<int>((2.0 * m - 1.0) * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + static_cast<std::size_t>(octave) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double LatencyHistogram::bucket_lower(std::size_t index) {
  if (index == 0) return 0.0;
  if (index >= kBuckets - 1) {
    return kBaseSeconds * std::ldexp(1.0, kOctaves);  // overflow floor
  }
  const std::size_t i = index - 1;
  const auto octave = static_cast<int>(i / kSubBuckets);
  const auto sub = static_cast<int>(i % kSubBuckets);
  const double lo = std::ldexp(1.0, octave);  // 2^octave in base units
  return kBaseSeconds * (lo + lo * static_cast<double>(sub) / kSubBuckets);
}

double LatencyHistogram::bucket_upper(std::size_t index) {
  if (index == 0) return kBaseSeconds;
  if (index >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  const std::size_t i = index - 1;
  const auto octave = static_cast<int>(i / kSubBuckets);
  const auto sub = static_cast<int>(i % kSubBuckets);
  const double lo = std::ldexp(1.0, octave);
  return kBaseSeconds * (lo + lo * static_cast<double>(sub + 1) / kSubBuckets);
}

void LatencyHistogram::record(double seconds) {
  ++counts_[bucket_index(seconds)];
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    if (seconds < min_) min_ = seconds;
    if (seconds > max_) max_ = seconds;
  }
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
  }
}

namespace {
/// Deterministic representative of a bucket: the arithmetic midpoint of its
/// bounds (underflow reports half the floor; overflow reports its floor).
double representative(std::size_t index) {
  const double lo = LatencyHistogram::bucket_lower(index);
  const double hi = LatencyHistogram::bucket_upper(index);
  if (!std::isfinite(hi)) return lo;
  return 0.5 * (lo + hi);
}
}  // namespace

double LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) return representative(i);
  }
  return representative(kBuckets - 1);
}

double LatencyHistogram::mean() const {
  if (count_ == 0) return 0.0;
  // Bucket-representative mean, accumulated in fixed (index) order — the
  // same value regardless of how the histogram was merged together.
  double sum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] != 0) {
      sum += representative(i) * static_cast<double>(counts_[i]);
    }
  }
  return sum / static_cast<double>(count_);
}

}  // namespace prema::service
