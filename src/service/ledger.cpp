#include "service/ledger.hpp"

namespace prema::service {

void ProcService::record_arrival(double t) {
  util::LockGuard g(mu_);
  ++arrivals_;
  if (first_arrival_t_ < 0.0) first_arrival_t_ = t;
  last_arrival_t_ = t;
}

void ProcService::record_completion(double sojourn_s) {
  util::LockGuard g(mu_);
  ++completions_;
  hist_.record(sojourn_s);
}

void ProcService::sample_load(double t, double load) {
  util::LockGuard g(mu_);
  series_.push_back({t, load});
}

std::uint64_t ProcService::arrivals() const {
  util::LockGuard g(mu_);
  return arrivals_;
}

std::uint64_t ProcService::completions() const {
  util::LockGuard g(mu_);
  return completions_;
}

LatencyHistogram ProcService::histogram() const {
  util::LockGuard g(mu_);
  return hist_;
}

std::vector<LoadSample> ProcService::load_series() const {
  util::LockGuard g(mu_);
  return series_;
}

double ProcService::first_arrival_t() const {
  util::LockGuard g(mu_);
  return first_arrival_t_;
}

double ProcService::last_arrival_t() const {
  util::LockGuard g(mu_);
  return last_arrival_t_;
}

ServiceTotals ServiceLedger::totals() const {
  ServiceTotals t;
  for (const ProcService& p : procs_) {
    t.arrivals += p.arrivals();
    t.completions += p.completions();
  }
  return t;
}

LatencyHistogram ServiceLedger::merged_histogram() const {
  LatencyHistogram h;
  for (const ProcService& p : procs_) h.merge(p.histogram());
  return h;
}

}  // namespace prema::service
