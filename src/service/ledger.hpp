#pragma once

#include <cstdint>
#include <vector>

#include "service/latency.hpp"
#include "support/thread_annotations.hpp"

/// \file ledger.hpp
/// The service-mode latency ledger: one ProcService slab per processor,
/// recording arrivals, completions, sojourn latencies (into the fixed-bucket
/// LatencyHistogram) and an epoch-sampled per-node load time-series.
///
/// Concurrency model: each slab carries its own `util::Mutex mu_` — the
/// `service_mu` rank of the lock hierarchy (see DESIGN.md and
/// tools/analyze/lock_hierarchy.txt). Recording methods take it briefly and
/// call nothing that locks, so `service_mu` sits near the leaf of the order:
/// below the node state and ledger locks that are held while handlers run,
/// above only the trace/log leaves. On the sim backend the lock is
/// uncontended (single-threaded engine); on the thread backend it serializes
/// a node's worker thread against the report reader at run end.
///
/// Aggregation (`totals`, `merged_histogram`) walks the slabs in fixed rank
/// order; combined with the histogram's integer merge this makes the report
/// independent of execution interleaving, so determinism tests can compare
/// reports byte for byte.

namespace prema::service {

/// One epoch sample of a node's instantaneous load.
struct LoadSample {
  double t = 0.0;      ///< virtual time of the epoch tick
  double load = 0.0;   ///< scheduler load metric at that instant
};

/// Aggregated counters across all slabs.
struct ServiceTotals {
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
};

/// Per-processor service statistics slab.
class ProcService {
 public:
  void record_arrival(double t);
  void record_completion(double sojourn_s);
  void sample_load(double t, double load);

  [[nodiscard]] std::uint64_t arrivals() const;
  [[nodiscard]] std::uint64_t completions() const;
  [[nodiscard]] LatencyHistogram histogram() const;
  [[nodiscard]] std::vector<LoadSample> load_series() const;
  [[nodiscard]] double first_arrival_t() const;
  [[nodiscard]] double last_arrival_t() const;

 private:
  mutable util::Mutex mu_;
  std::uint64_t arrivals_ PREMA_GUARDED_BY(mu_) = 0;
  std::uint64_t completions_ PREMA_GUARDED_BY(mu_) = 0;
  double first_arrival_t_ PREMA_GUARDED_BY(mu_) = -1.0;
  double last_arrival_t_ PREMA_GUARDED_BY(mu_) = -1.0;
  LatencyHistogram hist_ PREMA_GUARDED_BY(mu_);
  std::vector<LoadSample> series_ PREMA_GUARDED_BY(mu_);
};

/// The machine-wide ledger: a fixed array of slabs, one per processor,
/// allocated before the run starts so recording never reallocates.
class ServiceLedger {
 public:
  explicit ServiceLedger(int nprocs) : procs_(static_cast<std::size_t>(nprocs)) {}

  [[nodiscard]] int nprocs() const { return static_cast<int>(procs_.size()); }
  [[nodiscard]] ProcService& at(int p) { return procs_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] const ProcService& at(int p) const {
    return procs_[static_cast<std::size_t>(p)];
  }

  /// Sum of per-slab counters, walked in rank order.
  [[nodiscard]] ServiceTotals totals() const;

  /// All slabs' histograms merged in rank order (deterministic by
  /// construction — integer merge is order-independent anyway).
  [[nodiscard]] LatencyHistogram merged_histogram() const;

 private:
  std::vector<ProcService> procs_;
};

}  // namespace prema::service
