#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file latency.hpp
/// Fixed-bucket log-scale latency histogram (HDR-histogram style). The bucket
/// layout is a compile-time constant — `kOctaves` powers of two above a
/// `kBaseSeconds` resolution floor, each split into `kSubBuckets` linear
/// sub-buckets — so every histogram ever built is mergeable with every other,
/// and a merge is pure unsigned integer addition. That makes aggregation
/// associative and commutative: per-node histograms can be merged in any
/// order (or re-merged hierarchically) and yield bit-identical totals, which
/// is what lets the service-mode determinism tests byte-compare reports.
///
/// Deliberately absent: a floating-point running sum. Accumulating doubles in
/// merge order would reintroduce the order dependence the integer buckets
/// exist to remove. The mean is reconstructed from bucket representative
/// values, and min/max (order-independent reductions) are tracked exactly.
///
/// Bucket indexing is integer frexp math, not log(): for a sojourn d, the
/// octave is the exponent of d/kBaseSeconds and the sub-bucket is a linear
/// slice of the mantissa. Relative error of any reported quantile is bounded
/// by 1/kSubBuckets within an octave (~6% at 16 sub-buckets).

namespace prema::service {

class LatencyHistogram {
 public:
  static constexpr double kBaseSeconds = 1e-6;  ///< resolution floor: 1 us
  static constexpr int kOctaves = 36;           ///< covers up to ~68,719 s
  static constexpr int kSubBuckets = 16;        ///< linear slices per octave
  /// underflow [0, base) + kOctaves*kSubBuckets log-linear + overflow.
  static constexpr std::size_t kBuckets =
      1 + static_cast<std::size_t>(kOctaves) * kSubBuckets + 1;

  LatencyHistogram();

  /// Record one sample (seconds). Negative samples clamp to the underflow
  /// bucket; samples beyond the top octave land in overflow.
  void record(double seconds);

  /// Integer-add another histogram's buckets into this one. Associative and
  /// commutative: any merge order yields identical state.
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  /// Quantile q in (0, 1]: walks buckets to the sample with 1-based rank
  /// ceil(q * count) and returns that bucket's representative (midpoint)
  /// value. Deterministic; 0 on an empty histogram.
  [[nodiscard]] double percentile(double q) const;

  /// Mean reconstructed from bucket representatives (order-independent).
  [[nodiscard]] double mean() const;

  /// Bucket geometry, exposed for tests: index a sample resolves to, and the
  /// [lower, upper) bounds of a bucket index.
  [[nodiscard]] static std::size_t bucket_index(double seconds);
  [[nodiscard]] static double bucket_lower(std::size_t index);
  [[nodiscard]] static double bucket_upper(std::size_t index);

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return counts_; }
  [[nodiscard]] bool operator==(const LatencyHistogram& o) const {
    return counts_ == o.counts_ && count_ == o.count_;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace prema::service
