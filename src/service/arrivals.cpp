#include "service/arrivals.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace prema::service {

std::string_view arrival_model_name(ArrivalModel m) {
  switch (m) {
    case ArrivalModel::kPoisson:
      return "poisson";
    case ArrivalModel::kBursty:
      return "bursty";
    case ArrivalModel::kDiurnal:
      return "diurnal";
  }
  return "?";
}

bool parse_arrival_model(std::string_view name, ArrivalModel& out) {
  if (name == "poisson") {
    out = ArrivalModel::kPoisson;
  } else if (name == "bursty") {
    out = ArrivalModel::kBursty;
  } else if (name == "diurnal") {
    out = ArrivalModel::kDiurnal;
  } else {
    return false;
  }
  return true;
}

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Stream seed for a rank: decorrelate the shared seed with SplitMix64 so
/// adjacent ranks do not walk correlated xoshiro states.
std::uint64_t stream_seed(std::uint64_t seed, int rank) {
  util::SplitMix64 sm(seed ^ (0xA44F1A11ULL * static_cast<std::uint64_t>(rank + 1)));
  return sm.next();
}

}  // namespace

ArrivalGenerator::ArrivalGenerator(const ArrivalConfig& cfg, int rank, int nprocs)
    : cfg_(cfg), rank_(rank), nprocs_(nprocs), rng_(stream_seed(cfg.seed, rank)) {
  PREMA_CHECK(nprocs > 0 && rank >= 0 && rank < nprocs);
  PREMA_CHECK(cfg.rate_per_proc > 0.0);
  PREMA_CHECK(cfg.diurnal_amplitude >= 0.0 && cfg.diurnal_amplitude < 1.0);
  const std::uint64_t per = cfg.num_clients / static_cast<std::uint64_t>(nprocs);
  client_first_ = per * static_cast<std::uint64_t>(rank);
  client_count_ = per > 0 ? per : 1;
  diurnal_phase_ = kTwoPi * static_cast<double>(rank) / static_cast<double>(nprocs);
  // Duty-weighted mean of the MMPP rate multiplier; dividing the phase rates
  // by it makes rate_per_proc the long-run average, as documented.
  const double dwell = cfg.mean_on_s + cfg.mean_off_s;
  if (dwell > 0.0) {
    mmpp_norm_ = (cfg.mean_on_s * cfg.burst_factor +
                  cfg.mean_off_s * cfg.idle_factor) /
                 dwell;
    PREMA_CHECK_MSG(mmpp_norm_ > 0.0, "MMPP rate multipliers must not both be zero");
  }
}

double ArrivalGenerator::exp_gap(double rate) {
  // Inverse-CDF exponential; 1-u keeps the argument of log strictly positive.
  return -std::log(1.0 - rng_.uniform()) / rate;
}

double ArrivalGenerator::next_gap(double now) {
  switch (cfg_.model) {
    case ArrivalModel::kPoisson:
      return exp_gap(cfg_.rate_per_proc);

    case ArrivalModel::kBursty: {
      // Two-state MMPP: walk exponential phase dwells, accumulating gap time
      // at the phase-appropriate rate until an arrival lands inside a phase.
      double gap = 0.0;
      for (;;) {
        if (phase_left_s_ <= 0.0) {
          burst_on_ = !burst_on_;
          phase_left_s_ = exp_gap(1.0 / (burst_on_ ? cfg_.mean_on_s : cfg_.mean_off_s));
        }
        const double rate = cfg_.rate_per_proc / mmpp_norm_ *
                            (burst_on_ ? cfg_.burst_factor : cfg_.idle_factor);
        const double g = exp_gap(rate);
        if (g <= phase_left_s_) {
          phase_left_s_ -= g;
          return gap + g;
        }
        gap += phase_left_s_;
        phase_left_s_ = 0.0;
      }
    }

    case ArrivalModel::kDiurnal: {
      // Thinning (Lewis-Shedler): draw candidates at the peak rate and accept
      // with probability rate(t)/peak. The per-rank phase offset rotates the
      // load crest around the machine over one diurnal period.
      const double peak = cfg_.rate_per_proc * (1.0 + cfg_.diurnal_amplitude);
      double t = now;
      for (;;) {
        t += exp_gap(peak);
        const double rate =
            cfg_.rate_per_proc *
            (1.0 + cfg_.diurnal_amplitude *
                       std::sin(kTwoPi * t / cfg_.diurnal_period_s + diurnal_phase_));
        if (rng_.uniform() * peak <= rate) return t - now;
      }
    }
  }
  return exp_gap(cfg_.rate_per_proc);
}

Arrival ArrivalGenerator::next_arrival() {
  Arrival a;
  // Hot prefix: a fixed share of traffic concentrates on the first few
  // percent of this rank's client range.
  const auto hot = static_cast<std::uint64_t>(
      cfg_.hot_client_fraction * static_cast<double>(client_count_));
  if (hot > 0 && rng_.chance(cfg_.hot_client_weight)) {
    a.client = client_first_ + rng_.below(hot);
  } else {
    a.client = client_first_ + rng_.below(client_count_);
  }
  // Bimodal cost: light exponential body plus a heavy tail of multiplied
  // requests — the irregular-granularity mix the balancer must absorb.
  const double light = -cfg_.cost_mean_mflop * std::log(1.0 - rng_.uniform());
  a.cost_mflop = rng_.chance(cfg_.heavy_fraction) ? light * cfg_.heavy_mult : light;
  return a;
}

}  // namespace prema::service
