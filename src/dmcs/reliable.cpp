#include "dmcs/reliable.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/assert.hpp"

namespace prema::dmcs {

std::uint64_t message_checksum(const Message& m) {
  // FNV-1a over the fields the wire could damage. The envelope itself (seq,
  // ack) is modeled as protected header state and not covered.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint8_t>(m.kind));
  for (int i = 0; i < 4; ++i) {
    mix(static_cast<std::uint8_t>((m.handler >> (8 * i)) & 0xFF));
  }
  for (const std::uint8_t b : m.payload) mix(b);
  return h;
}

ReliableLink::ReliableLink(ProcId self, int nprocs, ReliableConfig cfg)
    : self_(self), cfg_(cfg) {
  PREMA_CHECK_MSG(nprocs > 0, "reliable link needs at least one processor");
  tx_.resize(static_cast<std::size_t>(nprocs));
  rx_.resize(static_cast<std::size_t>(nprocs));
}

void ReliableLink::stamp(ProcId dst, Message& msg, double now_s) {
  util::LockGuard g(mu_);
  Tx& tx = tx_[static_cast<std::size_t>(dst)];
  msg.seq = tx.next_seq++;
  msg.rflags |= Message::kReliable;
  msg.checksum = message_checksum(msg);
  msg.ack = rx_[static_cast<std::size_t>(dst)].expected;  // piggyback
  Pending p;
  p.msg = msg;  // copy retained until acked
  p.rto = cfg_.rto_initial_s;
  p.deadline = now_s + p.rto;
  tx.pending.emplace(msg.seq, std::move(p));
}

std::vector<ReliableLink::Retransmit> ReliableLink::due_retransmits(
    double now_s) {
  util::LockGuard g(mu_);
  std::vector<Retransmit> out;
  for (std::size_t dst = 0; dst < tx_.size(); ++dst) {
    // Head-of-window only: acks are cumulative, so the receiver is missing
    // nothing *before* the lowest unacked seq, and everything after it is
    // either in flight or already buffered receiver-side. Resending only the
    // head recovers the gap with one copy, and the cumulative ack that
    // follows clears every buffered successor at once. Retransmitting the
    // whole window instead (classic go-back-N) turns one drop into
    // O(window) redundant copies and collapses under bursty senders.
    auto it = tx_[dst].pending.begin();
    if (it == tx_[dst].pending.end()) continue;
    Pending& p = it->second;
    if (p.deadline > now_s) continue;
    ++p.retries;
    PREMA_CHECK_MSG(p.retries <= cfg_.max_retries,
                    "reliable transport: retry budget exhausted (link dead?)");
    p.rto = std::min(p.rto * 2.0, cfg_.rto_max_s);
    p.deadline = now_s + p.rto;
    Retransmit r;
    r.dst = static_cast<ProcId>(dst);
    r.msg = p.msg;  // fresh copy; refresh the piggybacked cumulative ack
    r.msg.ack = rx_[dst].expected;
    r.msg.rflags |= Message::kRetransmit;
    out.push_back(std::move(r));
  }
  return out;
}

double ReliableLink::next_deadline() const {
  util::LockGuard g(mu_);
  double d = std::numeric_limits<double>::infinity();
  for (const Tx& tx : tx_) {
    // Only window heads are retransmit candidates (see due_retransmits).
    const auto it = tx.pending.begin();
    if (it != tx.pending.end()) d = std::min(d, it->second.deadline);
  }
  return d;
}

void ReliableLink::note_wire_time(ProcId dst, std::uint32_t seq,
                                  double wire_time_s) {
  util::LockGuard g(mu_);
  auto& pending = tx_[static_cast<std::size_t>(dst)].pending;
  const auto it = pending.find(seq);
  if (it == pending.end()) return;  // already acked
  Pending& p = it->second;
  p.deadline = std::max(p.deadline, wire_time_s + p.rto);
}

void ReliableLink::on_ack(ProcId peer, std::uint32_t cumulative) {
  util::LockGuard g(mu_);
  auto& pending = tx_[static_cast<std::size_t>(peer)].pending;
  pending.erase(pending.begin(), pending.lower_bound(cumulative));
}

ReliableLink::Accepted ReliableLink::accept(Message&& msg) {
  util::LockGuard g(mu_);
  Accepted out;
  Rx& rx = rx_[static_cast<std::size_t>(msg.src)];
  out.ack_value = rx.expected;
  if (message_checksum(msg) != msg.checksum) {
    out.corrupt = true;
    return out;
  }
  if (msg.seq < rx.expected || rx.buffer.count(msg.seq) != 0) {
    out.duplicate = true;  // already released (or already held); re-ack only
    return out;
  }
  if (msg.seq != rx.expected) {
    rx.buffer.emplace(msg.seq, std::move(msg));
    return out;
  }
  ++rx.expected;
  out.deliver.push_back(std::move(msg));
  for (;;) {
    auto it = rx.buffer.find(rx.expected);
    if (it == rx.buffer.end()) break;
    out.deliver.push_back(std::move(it->second));
    rx.buffer.erase(it);
    ++rx.expected;
  }
  out.ack_value = rx.expected;
  return out;
}

std::uint32_t ReliableLink::cumulative(ProcId peer) const {
  util::LockGuard g(mu_);
  return rx_[static_cast<std::size_t>(peer)].expected;
}

bool ReliableLink::quiet() const {
  util::LockGuard g(mu_);
  for (const Tx& tx : tx_) {
    if (!tx.pending.empty()) return false;
  }
  for (const Rx& rx : rx_) {
    if (!rx.buffer.empty()) return false;
  }
  return true;
}

std::size_t ReliableLink::pending_to(ProcId peer) const {
  util::LockGuard g(mu_);
  return tx_[static_cast<std::size_t>(peer)].pending.size();
}

bool ReliableLink::peer_lossy(ProcId peer) const {
  util::LockGuard g(mu_);
  for (const auto& [seq, p] : tx_[static_cast<std::size_t>(peer)].pending) {
    if (p.retries > 0) return true;
  }
  return false;
}

}  // namespace prema::dmcs
