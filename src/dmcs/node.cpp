#include "dmcs/node.hpp"

namespace prema::dmcs {

void Node::dispatch(Message&& msg) {
  const Handler& h = registry().handler(msg.handler);
  h(*this, std::move(msg));
}

}  // namespace prema::dmcs
