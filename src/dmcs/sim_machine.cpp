#include "dmcs/sim_machine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/assert.hpp"
#include "support/log.hpp"

namespace prema::dmcs {

using util::TimeCategory;

SimNode::SimNode(SimMachine& machine, ProcId rank, int nprocs)
    : Node(rank, nprocs),
      machine_(machine),
      eng_(machine.engine()),
      proc_(machine.engine().proc(rank)),
      channel_clock_(static_cast<std::size_t>(nprocs), 0.0) {}

double SimNode::now() const { return proc_.clock(); }

sim::SimTime SimNode::clock() const { return proc_.clock(); }

util::Rng& SimNode::rng() { return proc_.rng(); }

util::TimeLedger& SimNode::ledger() { return proc_.ledger(); }

const PollingConfig& SimNode::polling() const { return machine_.polling(); }

HandlerRegistry& SimNode::registry() { return machine_.registry(); }

void SimNode::start(Program* program) {
  program_ = program;
  if (machine_.reliable()) {
    rlink_ = std::make_unique<ReliableLink>(rank_, nprocs_);
  }
}

bool SimNode::reliable_transport() const { return machine_.reliable(); }

bool SimNode::transport_quiet() const { return !rlink_ || rlink_->quiet(); }

bool SimNode::peer_degraded(ProcId p) const {
  if (p == rank_) return false;
  auto* plan = machine_.fault_plan();
  if (plan == nullptr) return false;
  if (plan->node_degraded(p)) return true;
  return rlink_ != nullptr && rlink_->peer_lossy(p);
}

void SimNode::send(ProcId dst, Message msg) {
  PREMA_CHECK_MSG(dst >= 0 && dst < nprocs_, "send to invalid rank");
  msg.src = rank_;
  if (capturing_) {
    // The sender is logically still inside a work unit whose span ends at the
    // activity's completion; hold the message until then.
    deferred_sends_.emplace_back(dst, std::move(msg));
    return;
  }
  do_send(dst, std::move(msg));
}

void SimNode::do_send(ProcId dst, Message&& msg) {
  const auto& net = machine_.config().net;
  proc_.advance(TimeCategory::kMessaging, net.send_cpu(msg.size_bytes()));
  ++stats_.sent;  // logical sends only: retransmits and acks never re-count
  if (trace_) {
    trace_->message_send(proc_.clock(), dst, msg.size_bytes(),
                         msg.kind == MsgKind::kSystem);
  }
  if (rlink_ != nullptr && dst != rank_) {
    rlink_->stamp(dst, msg, proc_.clock());
    wire_send(dst, std::move(msg));
    schedule_retransmit();
    return;
  }
  wire_send(dst, std::move(msg));
}

void SimNode::wire_send(ProcId dst, Message&& msg) {
  const auto& net = machine_.config().net;
  SimNode& target = machine_.sim_node(dst);
  const double transfer = dst == rank_ ? 1e-9 : net.transfer_time(msg.size_bytes());
  auto* plan = machine_.fault_plan();
  if (plan == nullptr || dst == rank_) {
    // Legacy delivery; arithmetic and event order are byte-identical to the
    // pre-fault-injection backend when no plan is installed.
    sim::SimTime arrival = proc_.clock() + transfer;
    auto& chan = channel_clock_[static_cast<std::size_t>(dst)];
    arrival = std::max(arrival, chan + 1e-12);
    chan = arrival;
    eng_.at(arrival, [&target, m = std::move(msg)]() mutable {
      target.on_wire(std::move(m));
    });
    return;
  }

  // Retransmits fire at engine time, which may be ahead of this processor's
  // charged clock; never schedule an arrival in the past.
  const sim::SimTime base = std::max(proc_.clock(), eng_.now());
  const auto fate = plan->on_send(rank_, dst);
  const std::size_t bytes = msg.size_bytes();
  if (fate.copies == 0) {
    if (trace_) trace_->fault(base, dst, trace::FaultType::kDrop, bytes);
    if (rlink_ != nullptr && (msg.rflags & Message::kReliable) != 0) {
      // The copy died on the wire, but the timeout should still run from
      // when it would have arrived, not from the (possibly much earlier)
      // stamp time — otherwise a backed-up link retransmits before the
      // first copy could ever have been acked.
      rlink_->note_wire_time(dst, msg.seq, base + transfer);
    }
    return;
  }
  if (trace_) {
    if (fate.copies > 1) trace_->fault(base, dst, trace::FaultType::kDuplicate, bytes);
    if (fate.corrupt) trace_->fault(base, dst, trace::FaultType::kCorrupt, bytes);
    if (fate.extra_delay_s > 0.0) trace_->fault(base, dst, trace::FaultType::kDelay, bytes);
    if (fate.reorder) trace_->fault(base, dst, trace::FaultType::kReorder, bytes);
  }
  for (int i = 0; i < fate.copies; ++i) {
    Message m = (i + 1 == fate.copies) ? std::move(msg) : msg;
    if (fate.corrupt && (m.rflags & Message::kReliable) != 0) {
      // Model in-flight payload truncation; the receiver's checksum test
      // catches it and the copy is discarded (no ack -> retransmit recovers).
      if (!m.payload.empty()) {
        m.payload.resize(m.payload.size() / 2);
      } else {
        m.checksum ^= 0x1;
      }
    }
    sim::SimTime arrival = base + transfer + fate.extra_delay_s;
    if (fate.reorder) {
      // Reordered copies bypass the FIFO channel clamp: each lands at an
      // independently jittered point inside the reorder window.
      arrival = plan->release_time(dst, arrival + fate.reorder_jitter_s[i & 1]);
    } else {
      arrival = plan->release_time(dst, arrival);
      auto& chan = channel_clock_[static_cast<std::size_t>(dst)];
      arrival = std::max(arrival, chan + 1e-12);
      chan = arrival;
    }
    if (rlink_ != nullptr && (m.rflags & Message::kReliable) != 0) {
      // Start the retransmit clock from the copy's actual wire arrival:
      // under a burst the per-link FIFO can hold a message for far longer
      // than the RTO, and timing out while it is still queued just injects
      // redundant copies behind it.
      rlink_->note_wire_time(dst, m.seq, arrival);
    }
    eng_.at(arrival, [&target, m2 = std::move(m)]() mutable {
      target.on_wire(std::move(m2));
    });
  }
}

void SimNode::on_wire(Message&& msg) {
  if (rlink_ == nullptr || msg.internal) {
    on_arrival(std::move(msg));
    return;
  }
  if ((msg.rflags & (Message::kReliable | Message::kBareAck)) != 0) {
    rlink_->on_ack(msg.src, msg.ack);
  }
  if ((msg.rflags & Message::kBareAck) != 0) return;
  if ((msg.rflags & Message::kReliable) == 0) {
    on_arrival(std::move(msg));  // self-sends are never stamped
    return;
  }
  const ProcId peer = msg.src;
  auto res = rlink_->accept(std::move(msg));
  if (trace_) {
    const double t = eng_.now();
    if (res.corrupt) trace_->fault(t, peer, trace::FaultType::kCorruptDropped, 0);
    if (res.duplicate) trace_->fault(t, peer, trace::FaultType::kDupDropped, 0);
  }
  if (!res.corrupt) send_bare_ack(peer, res.ack_value);
  for (auto& m : res.deliver) on_arrival(std::move(m));
}

void SimNode::send_bare_ack(ProcId to, std::uint32_t cumulative) {
  Message a;
  a.src = rank_;
  a.kind = MsgKind::kSystem;
  a.rflags = Message::kBareAck;
  a.ack = cumulative;
  if (trace_) trace_->ack(eng_.now(), to, cumulative);
  // Acks are transport-internal: no stats, no CPU charge, not retransmitted.
  wire_send(to, std::move(a));
}

void SimNode::schedule_retransmit() {
  if (rlink_ == nullptr) return;
  const double d = rlink_->next_deadline();
  if (d >= retx_at_) return;  // an earlier (or equal) wakeup is already armed
  if (retx_event_ != sim::kNoEvent) eng_.cancel(retx_event_);
  retx_at_ = d;
  retx_event_ = eng_.at(std::max(d, eng_.now()), [this] { on_retransmit_timer(); });
}

void SimNode::on_retransmit_timer() {
  retx_event_ = sim::kNoEvent;
  retx_at_ = std::numeric_limits<double>::infinity();
  if (rlink_ == nullptr) return;
  auto due = rlink_->due_retransmits(eng_.now());
  for (auto& r : due) {
    if (trace_) trace_->retransmit(eng_.now(), r.dst, r.msg.seq);
    wire_send(r.dst, std::move(r.msg));
  }
  schedule_retransmit();
}

void SimNode::send_self_after(double delay_s, Message msg) {
  PREMA_CHECK_MSG(delay_s >= 0.0, "negative timer delay");
  msg.src = rank_;
  msg.internal = true;
  const sim::SimTime arrival =
      std::max(proc_.clock(), eng_.now()) + std::max(delay_s, 1e-9);
  auto id_box = std::make_shared<sim::EventId>(sim::kNoEvent);
  *id_box = eng_.at(arrival, [this, id_box, m = std::move(msg)]() mutable {
    timer_events_.erase(*id_box);
    on_arrival(std::move(m));
  });
  timer_events_.insert(*id_box);
}

void SimNode::cancel_timers() {
  for (const auto id : timer_events_) eng_.cancel(id);
  timer_events_.clear();
}

void SimNode::flush_deferred_sends() {
  auto sends = std::move(deferred_sends_);
  deferred_sends_.clear();
  for (auto& [dst, msg] : sends) do_send(dst, std::move(msg));
}

void SimNode::compute(double mflop, TimeCategory cat) {
  compute_seconds(machine_.config().compute_seconds(mflop), cat);
}

void SimNode::compute_seconds(double seconds, TimeCategory cat) {
  PREMA_CHECK_MSG(seconds >= 0.0, "negative compute cost");
  // Degraded-node emulation: a slowdown factor stretches every charged
  // compute interval (scaled before capture so deferred activities stretch
  // too). Identity when no fault plan is installed.
  if (auto* plan = machine_.fault_plan()) {
    seconds *= plan->compute_factor(rank_);
  }
  if (capturing_) {
    captured_s_ += seconds;
    return;
  }
  const sim::SimTime t0 = proc_.clock();
  proc_.advance(cat, seconds);
  // The (re)partitioner charges its execution here; surface it as a span so
  // the ParMETIS panels show *when* partitioning ran, not just its total.
  if (trace_ && cat == TimeCategory::kPartitionCalc && seconds > 0.0) {
    trace_->span(trace::EventKind::kPartition, t0, seconds);
  }
}

void SimNode::on_arrival(Message&& msg) {
  if (!msg.internal) ++stats_.received;
  const bool system = msg.kind == MsgKind::kSystem;
  inbox_.push_back(std::move(msg));
  if (active_) {
    if (system) schedule_interrupt(eng_.now());
    return;
  }
  ensure_service(std::max(eng_.now(), proc_.clock()));
}

void SimNode::ensure_service(sim::SimTime t) {
  if (pending_service_ != sim::kNoEvent) {
    if (t >= pending_service_time_) return;
    eng_.cancel(pending_service_);
  }
  pending_service_time_ = t;
  pending_service_ = eng_.at(t, [this, t] { do_service(t); });
}

void SimNode::drain_inbox() {
  while (!inbox_.empty()) {
    Message msg = std::move(inbox_.front());
    inbox_.pop_front();
    proc_.advance(TimeCategory::kMessaging,
                  machine_.config().net.recv_cpu(msg.size_bytes()));
    if (trace_) {
      trace_->message_recv(proc_.clock(), msg.src, msg.size_bytes(),
                           msg.kind == MsgKind::kSystem);
    }
    if (msg.kind == MsgKind::kSystem) {
      program_->deliver_system(*this, std::move(msg));
    } else {
      program_->deliver_app(*this, std::move(msg));
    }
  }
}

void SimNode::do_service(sim::SimTime t) {
  pending_service_ = sim::kNoEvent;
  if (active_) return;  // activity completion will run the next pass
  proc_.catch_up(t, wait_cat_);
  drain_inbox();
  while (!active_) {
    if (!program_->service(*this)) break;
  }
  if (active_) return;
  PREMA_CHECK_MSG(inbox_.empty(), "inbox grew during a sequential service pass");
  program_->on_idle(*this);
}

void SimNode::execute(Message&& msg, std::function<void()> on_complete) {
  PREMA_CHECK_MSG(!active_, "execute() while a work unit is already active");
  PREMA_CHECK_MSG(!capturing_, "execute() from inside a work-unit body");
  ++stats_.work_units_executed;

  // The span opens before the body runs so the runtime layer can annotate it
  // (handler name, weight) from inside the dispatch.
  if (trace_) trace_->work_begin(proc_.clock());
  capturing_ = true;
  captured_s_ = 0.0;
  dispatch(std::move(msg));
  capturing_ = false;
  const double duration = captured_s_;

  if (duration <= 0.0) {
    if (trace_) trace_->work_end(proc_.clock());
    flush_deferred_sends();
    if (on_complete) on_complete();
    return;
  }

  active_ = true;
  ++activity_gen_;
  remaining_s_ = duration;
  total_duration_s_ = duration;
  tick_base_ = proc_.clock();
  interrupts_ = 0;
  on_complete_ = std::move(on_complete);
  end_event_ = eng_.at(proc_.clock() + duration,
                       [this, gen = activity_gen_] { finish_activity(gen); });
  // System messages that were already queued when the activity began (e.g.
  // arrived during main()) are picked up at the first polling tick.
  if (polling().mode == PollingMode::kPreemptive && inbox_has_system()) {
    schedule_interrupt(proc_.clock());
  }
}

bool SimNode::inbox_has_system() const {
  return std::any_of(inbox_.begin(), inbox_.end(),
                     [](const Message& m) { return m.kind == MsgKind::kSystem; });
}

void SimNode::schedule_interrupt(sim::SimTime arrival) {
  if (polling().mode != PollingMode::kPreemptive) return;
  const double period = polling().interval_s;
  double k = std::ceil((arrival - tick_base_) / period);
  if (k < 1.0) k = 1.0;
  const sim::SimTime tick = tick_base_ + k * period;
  if (tick >= proc_.clock() + remaining_s_) return;  // handled at completion
  eng_.at(tick, [this, gen = activity_gen_] { on_interrupt(gen); });
}

void SimNode::on_interrupt(std::uint64_t gen) {
  if (!active_ || gen != activity_gen_) return;
  if (!inbox_has_system()) return;  // an earlier tick already serviced them

  const double elapsed = std::max(0.0, eng_.now() - proc_.clock());
  PREMA_CHECK_MSG(elapsed <= remaining_s_ + 1e-9, "interrupt past activity end");
  proc_.advance(TimeCategory::kComputation, elapsed);
  remaining_s_ = std::max(0.0, remaining_s_ - elapsed);

  proc_.advance(TimeCategory::kPolling, polling().tick_cost_s);
  ++interrupts_;
  if (trace_) trace_->poll_wakeup(proc_.clock());

  // Hand every queued system message to the program; application messages
  // stay queued for the next service pass (single-threaded model preserved).
  for (auto it = inbox_.begin(); it != inbox_.end();) {
    if (it->kind != MsgKind::kSystem) {
      ++it;
      continue;
    }
    Message msg = std::move(*it);
    it = inbox_.erase(it);
    proc_.advance(TimeCategory::kMessaging,
                  machine_.config().net.recv_cpu(msg.size_bytes()));
    if (trace_) {
      trace_->message_recv(proc_.clock(), msg.src, msg.size_bytes(), true);
    }
    program_->deliver_system(*this, std::move(msg));
  }

  eng_.cancel(end_event_);
  end_event_ = eng_.at(proc_.clock() + remaining_s_,
                       [this, gen] { finish_activity(gen); });
}

void SimNode::finish_activity(std::uint64_t gen) {
  if (!active_ || gen != activity_gen_) return;
  end_event_ = sim::kNoEvent;
  proc_.advance(TimeCategory::kComputation, remaining_s_);
  remaining_s_ = 0.0;
  // Close the span before the bulk silent-tick charge below: those ticks
  // belong to the whole activity, not to its final instant.
  if (trace_) trace_->work_end(proc_.clock());

  if (polling().mode == PollingMode::kPreemptive) {
    const auto ticks =
        static_cast<int>(std::floor(total_duration_s_ / polling().interval_s));
    const int silent = std::max(0, ticks - interrupts_);
    if (silent > 0) {
      proc_.advance(TimeCategory::kPolling,
                    static_cast<double>(silent) * polling().silent_tick_cost_s);
    }
  }

  active_ = false;
  flush_deferred_sends();
  auto done = std::move(on_complete_);
  on_complete_ = nullptr;
  if (done) done();
  do_service(proc_.clock());
}

SimMachine::SimMachine(sim::MachineConfig cfg, PollingConfig polling)
    : engine_(cfg), polling_(polling) {
  nodes_.reserve(static_cast<std::size_t>(cfg.nprocs));
  for (ProcId p = 0; p < cfg.nprocs; ++p) {
    nodes_.push_back(std::make_unique<SimNode>(*this, p, cfg.nprocs));
  }
}

SimNode& SimMachine::sim_node(ProcId p) {
  PREMA_CHECK_MSG(p >= 0 && p < nprocs(), "node id out of range");
  return *nodes_[static_cast<std::size_t>(p)];
}

const util::TimeLedger& SimMachine::ledger(ProcId p) const {
  return engine_.proc(p).ledger();
}

double SimMachine::run(const ProgramFactory& factory) {
  PREMA_CHECK_MSG(!ran_, "SimMachine::run may only be called once");
  ran_ = true;

  programs_.reserve(nodes_.size());
  for (ProcId p = 0; p < nprocs(); ++p) {
    programs_.push_back(factory(p));
    nodes_[static_cast<std::size_t>(p)]->start(programs_.back().get());
  }
  for (ProcId p = 0; p < nprocs(); ++p) {
    SimNode* n = nodes_[static_cast<std::size_t>(p)].get();
    engine_.at(0.0, [n] {
      n->program_->main(*n);
      n->do_service(n->proc_.clock());
    });
  }

  run_stats_ = engine_.run(max_events_);
  PREMA_CHECK_MSG(!run_stats_.hit_event_limit,
                  "emulation exceeded the event budget (protocol livelock?)");

  sim::SimTime makespan = 0.0;
  for (ProcId p = 0; p < nprocs(); ++p) {
    makespan = std::max(makespan, nodes_[static_cast<std::size_t>(p)]->clock());
  }
  for (ProcId p = 0; p < nprocs(); ++p) {
    SimNode& n = *nodes_[static_cast<std::size_t>(p)];
    engine_.proc(p).catch_up(makespan, n.wait_category());
  }
  return makespan;
}

}  // namespace prema::dmcs
