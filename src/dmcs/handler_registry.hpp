#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dmcs/message.hpp"

/// \file handler_registry.hpp
/// Maps handler ids to callable handlers. Handler ids must agree across all
/// processors of a machine (they travel in message headers), so registration
/// is by name: registering the same name twice returns the same id only if the
/// registration is marked idempotent-safe via lookup, otherwise it aborts.

namespace prema::dmcs {

class Node;

/// An active-message handler. Runs on the destination processor with the
/// destination's Node context; may send further messages and charge compute.
using Handler = std::function<void(Node&, Message&&)>;

class HandlerRegistry {
 public:
  /// Register `fn` under `name` and return its id. Aborts on duplicate names:
  /// a machine's handler set must be assembled exactly once.
  HandlerId add(const std::string& name, Handler fn);

  /// Id of a previously registered handler; aborts if missing.
  [[nodiscard]] HandlerId id_of(const std::string& name) const;

  /// True if `name` has been registered.
  [[nodiscard]] bool contains(const std::string& name) const;

  /// The handler registered under `id`; aborts if out of range.
  [[nodiscard]] const Handler& handler(HandlerId id) const;

  /// Name registered under `id` (for diagnostics).
  [[nodiscard]] const std::string& name_of(HandlerId id) const;

  [[nodiscard]] std::size_t size() const { return handlers_.size(); }

 private:
  std::vector<Handler> handlers_;        // index = id - 1 (0 is kNoHandler)
  std::vector<std::string> names_;
  std::unordered_map<std::string, HandlerId> by_name_;
};

}  // namespace prema::dmcs
