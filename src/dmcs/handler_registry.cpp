#include "dmcs/handler_registry.hpp"

#include <utility>

#include "support/assert.hpp"

namespace prema::dmcs {

HandlerId HandlerRegistry::add(const std::string& name, Handler fn) {
  PREMA_CHECK_MSG(!name.empty(), "handler name must be non-empty");
  PREMA_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                  "duplicate handler registration");
  handlers_.push_back(std::move(fn));
  names_.push_back(name);
  const auto id = static_cast<HandlerId>(handlers_.size());  // ids start at 1
  by_name_.emplace(name, id);
  return id;
}

HandlerId HandlerRegistry::id_of(const std::string& name) const {
  auto it = by_name_.find(name);
  PREMA_CHECK_MSG(it != by_name_.end(), "unknown handler name");
  return it->second;
}

bool HandlerRegistry::contains(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

const Handler& HandlerRegistry::handler(HandlerId id) const {
  PREMA_CHECK_MSG(id != kNoHandler && id <= handlers_.size(), "bad handler id");
  return handlers_[id - 1];
}

const std::string& HandlerRegistry::name_of(HandlerId id) const {
  PREMA_CHECK_MSG(id != kNoHandler && id <= names_.size(), "bad handler id");
  return names_[id - 1];
}

}  // namespace prema::dmcs
