#pragma once

#include <atomic>
#include <functional>

#include "dmcs/handler_registry.hpp"
#include "dmcs/message.hpp"
#include "support/rng.hpp"
#include "support/thread_annotations.hpp"
#include "support/time_ledger.hpp"

namespace prema::trace {
class TraceSink;
}

/// \file node.hpp
/// The per-processor view of the DMCS. All protocol code above this layer
/// (mobile object layer, load balancing framework, charmlite, the benchmark
/// drivers) is written against `Node` + `Program` and therefore runs unchanged
/// on the emulated 128-proc machine and on the real threaded machine.

namespace prema::dmcs {

class Machine;

/// When and how load-balancing (system) messages get CPU time.
enum class PollingMode : std::uint8_t {
  /// Paper §4.1 — explicit: system messages are handled only when the
  /// application reaches a poll point (between work units).
  kExplicit = 0,
  /// Paper §4.2 — implicit: a polling thread wakes at a fixed period during
  /// long-running work units and handles pending system messages preemptively.
  kPreemptive = 1
};

struct PollingConfig {
  PollingMode mode = PollingMode::kExplicit;
  /// Polling-thread wakeup period (implicit mode only).
  double interval_s = 10e-3;
  /// CPU cost of a wakeup that finds pending system messages.
  double tick_cost_s = 15e-6;
  /// CPU cost of a wakeup that finds nothing (charged in bulk per activity).
  double silent_tick_cost_s = 3e-6;
};

/// Per-node message counters (used by quiescence detection and the reports).
/// Atomic because on the threaded backend the worker and the polling thread
/// both send and receive (a system handler dispatched by the poller may call
/// Node::send concurrently with the worker's own sends).
struct NodeStats {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> work_units_executed{0};
};

/// One processor's runtime context. Handlers and Program hooks receive the
/// Node of the processor they are running on.
class Node {
 public:
  virtual ~Node() = default;

  [[nodiscard]] ProcId rank() const { return rank_; }
  [[nodiscard]] int nprocs() const { return nprocs_; }

  /// Seconds since the start of the run: virtual time on the emulated
  /// machine, wall time on the threaded machine.
  [[nodiscard]] virtual double now() const = 0;

  [[nodiscard]] virtual util::Rng& rng() = 0;
  [[nodiscard]] virtual util::TimeLedger& ledger() = 0;
  [[nodiscard]] virtual const PollingConfig& polling() const = 0;
  [[nodiscard]] virtual HandlerRegistry& registry() = 0;
  [[nodiscard]] NodeStats& stats() { return stats_; }

  /// Send an active message to `dst` (self-sends allowed). Charges the
  /// sender-side CPU cost to Messaging and delivers asynchronously.
  virtual void send(ProcId dst, Message msg) = 0;

  /// Deliver `msg` to this processor `delay_s` seconds from now — the timer
  /// primitive behind balancing retries and the polling thread's periodic
  /// work (no network cost; the message never leaves the node).
  virtual void send_self_after(double delay_s, Message msg) = 0;

  /// Drop every not-yet-delivered timer armed with send_self_after. Called
  /// when global termination has been detected so pending balancing retries
  /// cannot keep the machine (or its clocks) alive.
  virtual void cancel_timers() = 0;

  /// Account `mflop` Mflop of CPU work to `cat`. Inside a work-unit body
  /// (see execute) the cost defines the unit's duration; anywhere else it is
  /// charged immediately.
  virtual void compute(double mflop,
                       util::TimeCategory cat = util::TimeCategory::kCallback) = 0;

  /// Like compute(), but in raw seconds instead of Mflop.
  virtual void compute_seconds(double seconds,
                               util::TimeCategory cat = util::TimeCategory::kCallback) = 0;

  /// Execute an application work unit: dispatch `msg` to its handler as the
  /// body of a timed, non-migratable activity. In implicit polling mode the
  /// activity can be preempted by the polling thread for *system* messages.
  /// `on_complete` runs when the activity (body + declared compute) finishes.
  /// Only one work unit can be active at a time; callable from
  /// Program::service only.
  virtual void execute(Message&& msg, std::function<void()> on_complete) = 0;

  /// True while a work unit activity is in flight.
  [[nodiscard]] virtual bool executing() const = 0;

  /// Number of messages that have arrived but not yet been handed to the
  /// program (used by quiescence detection: a processor with a non-empty
  /// inbox is not idle even if its scheduler is empty).
  [[nodiscard]] virtual std::size_t inbox_size() const = 0;

  /// Category charged while this processor waits (Idle by default;
  /// Synchronization while blocked in a balancing barrier). The emulated
  /// machine uses it for gap accounting; the threaded machine ignores it.
  virtual void set_wait_category(util::TimeCategory) {}

  /// True when the machine runs the reliable-delivery protocol (an active
  /// fault plan is installed — see Machine::set_fault_plan). Layers above
  /// gate their own hardening on this: MOL switches migration to the
  /// two-phase offer/commit handoff.
  [[nodiscard]] virtual bool reliable_transport() const { return false; }

  /// True when this node's reliable transport has nothing in flight: no
  /// unacked sends, no out-of-order arrivals held back. Always true on a
  /// fault-free machine. Termination detection treats a non-quiet transport
  /// as in-flight work (an acked-but-unreleased message must keep the
  /// machine alive until it reaches an inbox).
  [[nodiscard]] virtual bool transport_quiet() const { return true; }

  /// Health view of a peer, consumed by balancing policies: true when the
  /// fault plan marks `p` as degraded (slowed / pausing) or when this node's
  /// link to `p` is currently retransmitting. Always false on a fault-free
  /// machine.
  [[nodiscard]] virtual bool peer_degraded(ProcId) const { return false; }

  /// Run `msg`'s handler right now in the caller's context.
  void dispatch(Message&& msg);

  /// Lock guarding the runtime state (MOL directory, scheduler queues) that
  /// the polling thread may touch concurrently with the worker (threaded
  /// machine only; uncontended on the emulated machine, where everything is
  /// sequential). Recursive because runtime layers nest: a policy handler
  /// entered under the lock may call back into MOL migration, which locks
  /// again.
  [[nodiscard]] util::RecursiveLock lock_state() PREMA_ACQUIRE(state_mutex_) {
    return util::RecursiveLock(state_mutex_);
  }

  /// The state capability itself, so other layers (MOL, PREMA runtime) can
  /// name it in PREMA_GUARDED_BY / PREMA_REQUIRES annotations.
  [[nodiscard]] util::RecursiveMutex& state_mutex()
      PREMA_RETURN_CAPABILITY(state_mutex_) {
    return state_mutex_;
  }

  /// This processor's trace sink, or nullptr when tracing is off (the
  /// common case — instrumentation sites test this one pointer and skip).
  /// Installed by Machine::enable_tracing before the run starts.
  [[nodiscard]] trace::TraceSink* trace() const { return trace_; }
  void set_trace_sink(trace::TraceSink* sink) { trace_ = sink; }

  /// Opaque slot for the runtime layer built on top of DMCS (e.g. the PREMA
  /// runtime stores its per-node state here).
  void set_user(void* user) { user_ = user; }
  template <typename T>
  [[nodiscard]] T& user() {
    return *static_cast<T*>(user_);
  }

 protected:
  Node(ProcId rank, int nprocs) : rank_(rank), nprocs_(nprocs) {}

  ProcId rank_;
  int nprocs_;
  NodeStats stats_;
  trace::TraceSink* trace_ = nullptr;  ///< installed before run(), then read-only
  void* user_ = nullptr;               ///< installed before run(), then read-only
  util::RecursiveMutex state_mutex_;
};

/// The behaviour a runtime layer plugs into each node. The backend drives the
/// node through these hooks:
///   - main()          once at start of run
///   - deliver_app()   for each application message at a poll point
///   - deliver_system() for each system message (poll point, or polling-thread
///                      wakeup in implicit mode)
///   - service()       drained & idle: do one unit of local work; return false
///                      if there is nothing to do
///   - on_idle()       transitioned to idle (no messages, service() == false)
class Program {
 public:
  virtual ~Program() = default;
  virtual void main(Node&) {}
  virtual void deliver_app(Node& n, Message&& m) { n.dispatch(std::move(m)); }
  virtual void deliver_system(Node& n, Message&& m) { n.dispatch(std::move(m)); }
  virtual bool service(Node&) { return false; }
  virtual void on_idle(Node&) {}
};

}  // namespace prema::dmcs
