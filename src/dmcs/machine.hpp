#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "dmcs/node.hpp"
#include "fault/fault_plan.hpp"
#include "trace/trace.hpp"

/// \file machine.hpp
/// A machine = N processors + an interconnect + a handler registry. Two
/// implementations: SimMachine (discrete-event emulation of the paper's
/// cluster, any nprocs) and ThreadMachine (real threads, laptop scale).

namespace prema::dmcs {

/// Builds the per-node Program instance for rank `p`. Most runtimes return
/// the same subclass for every rank; SPMD style.
using ProgramFactory = std::function<std::unique_ptr<Program>(ProcId p)>;

class Machine {
 public:
  virtual ~Machine() = default;

  [[nodiscard]] virtual int nprocs() const = 0;
  [[nodiscard]] virtual Node& node(ProcId p) = 0;
  [[nodiscard]] virtual HandlerRegistry& registry() = 0;

  /// Run a program to quiescence: instantiate one Program per node, call
  /// main() on every node, then drive message delivery and service until no
  /// node has work and no messages are in flight. Returns the makespan (time
  /// at which the last processor went quiet).
  virtual double run(const ProgramFactory& factory) = 0;

  /// Ledger of processor `p` after (or during) a run.
  [[nodiscard]] virtual const util::TimeLedger& ledger(ProcId p) const = 0;

  /// Attach an event recorder and hand each node its per-processor sink
  /// (call before run()). Honors cfg.enabled and the PREMA_TRACE compile
  /// switch; returns the recorder, or nullptr when tracing stays off.
  /// Idempotent: a second call returns the existing recorder.
  trace::TraceRecorder* enable_tracing(trace::TraceConfig cfg) {
    if (!trace::kCompiledIn || !cfg.enabled) return tracer_.get();
    if (!tracer_) {
      tracer_ = std::make_unique<trace::TraceRecorder>(nprocs(), cfg);
      for (ProcId p = 0; p < nprocs(); ++p) {
        node(p).set_trace_sink(&tracer_->sink(p));
      }
    }
    return tracer_.get();
  }

  /// The attached recorder, or nullptr when tracing was never enabled.
  [[nodiscard]] trace::TraceRecorder* tracer() const { return tracer_.get(); }

  /// Install a fault plan (call before run()). An active plan switches both
  /// backends into reliable-transport mode: messages are stamped with
  /// sequence numbers and checksums, acked, retransmitted, deduplicated and
  /// resequenced (dmcs/reliable.hpp), and the wire consults the plan for
  /// every transmission. A null or inactive plan ("none" profile) leaves the
  /// legacy loss-free path byte-identical to a machine with no plan at all.
  void set_fault_plan(std::shared_ptr<fault::FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }

  /// The active fault plan, or nullptr when the machine runs fault-free
  /// (inactive plans read as nullptr so the wire never consults them).
  [[nodiscard]] fault::FaultPlan* fault_plan() const {
    return fault_plan_ && fault_plan_->active() ? fault_plan_.get() : nullptr;
  }

  /// True when the reliable-delivery protocol is engaged.
  [[nodiscard]] bool reliable() const { return fault_plan() != nullptr; }

 private:
  std::unique_ptr<trace::TraceRecorder> tracer_;
  std::shared_ptr<fault::FaultPlan> fault_plan_;
};

}  // namespace prema::dmcs
