#include "dmcs/thread_machine.hpp"

#include <chrono>

#include "support/assert.hpp"
#include "support/log.hpp"

namespace prema::dmcs {

using util::TimeCategory;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Busy-spin for `seconds` (durations here are micro/milliseconds; sleeping
/// would be too coarse and would free the core, which misrepresents compute).
void spin_for(double seconds) {
  const auto until = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(seconds));
  while (Clock::now() < until) {
    // burn
  }
}

}  // namespace

ThreadNode::ThreadNode(ThreadMachine& machine, ProcId rank, int nprocs,
                       std::uint64_t seed)
    : Node(rank, nprocs), machine_(machine), rng_(seed) {}

double ThreadNode::now() const { return machine_.elapsed_s(); }

const PollingConfig& ThreadNode::polling() const { return machine_.config().polling; }

HandlerRegistry& ThreadNode::registry() { return machine_.registry(); }

void ThreadNode::charge(TimeCategory cat, double seconds) {
  util::LockGuard g(ledger_mutex_);
  ledger_.charge(cat, seconds);
}

void ThreadNode::send(ProcId dst, Message msg) {
  PREMA_CHECK_MSG(dst >= 0 && dst < nprocs_, "send to invalid rank");
  msg.src = rank_;
  ++stats_.sent;  // logical sends only: retransmits and acks never re-count
  if (trace_) {
    trace_->message_send(now(), dst, msg.size_bytes(),
                         msg.kind == MsgKind::kSystem);
  }
  if (rlink_ != nullptr && dst != rank_) {
    // In-flight accounting moves to the receiver: transport_accept bumps the
    // counter per message actually released to an inbox. Until the ack lands
    // the sender's link is non-quiet, which quiescent() also checks.
    rlink_->stamp(dst, msg, now());
    wire_send(dst, std::move(msg));
    return;
  }
  machine_.inflight_.fetch_add(1, std::memory_order_acq_rel);
  static_cast<ThreadNode&>(machine_.node(dst)).enqueue(std::move(msg));
}

bool ThreadNode::peer_degraded(ProcId p) const {
  if (p == rank_) return false;
  auto* plan = machine_.fault_plan();
  if (plan == nullptr) return false;
  if (plan->node_degraded(p)) return true;
  return rlink_ != nullptr && rlink_->peer_lossy(p);
}

void ThreadNode::wire_send(ProcId dst, Message&& msg) {
  auto& target = static_cast<ThreadNode&>(machine_.node(dst));
  auto* plan = machine_.fault_plan();
  if (plan == nullptr) {  // defensive: rlink_ implies an active plan
    target.transport_accept(std::move(msg));
    return;
  }
  const auto fate = plan->on_send(rank_, dst);
  const std::size_t bytes = msg.size_bytes();
  if (fate.copies == 0) {
    if (trace_) trace_->fault(now(), dst, trace::FaultType::kDrop, bytes);
    return;
  }
  // Delay/reorder knobs are sim-only; real thread scheduling already
  // reorders freely. Drop, duplication, and corruption apply here.
  if (trace_) {
    if (fate.copies > 1) trace_->fault(now(), dst, trace::FaultType::kDuplicate, bytes);
    if (fate.corrupt) trace_->fault(now(), dst, trace::FaultType::kCorrupt, bytes);
  }
  for (int i = 0; i < fate.copies; ++i) {
    Message m = (i + 1 == fate.copies) ? std::move(msg) : msg;
    if (fate.corrupt && (m.rflags & Message::kReliable) != 0) {
      if (!m.payload.empty()) {
        m.payload.resize(m.payload.size() / 2);
      } else {
        m.checksum ^= 0x1;
      }
    }
    target.transport_accept(std::move(m));
  }
}

void ThreadNode::transport_accept(Message&& msg) {
  const ProcId peer = msg.src;
  if ((msg.rflags & (Message::kReliable | Message::kBareAck)) != 0) {
    rlink_->on_ack(peer, msg.ack);
  }
  if ((msg.rflags & Message::kBareAck) != 0) return;
  if ((msg.rflags & Message::kReliable) == 0) {
    machine_.inflight_.fetch_add(1, std::memory_order_acq_rel);
    enqueue(std::move(msg));
    return;
  }
  auto res = rlink_->accept(std::move(msg));
  if (trace_) {
    if (res.corrupt) trace_->fault(now(), peer, trace::FaultType::kCorruptDropped, 0);
    if (res.duplicate) trace_->fault(now(), peer, trace::FaultType::kDupDropped, 0);
  }
  // Release before acking: once the sender sees this ack its link goes
  // quiet, so every message the ack covers must already be counted
  // in-flight or the quiescence detector could fire early.
  for (auto& m : res.deliver) {
    machine_.inflight_.fetch_add(1, std::memory_order_acq_rel);
    enqueue(std::move(m));
  }
  if (!res.corrupt) {
    Message a;
    a.src = rank_;
    a.kind = MsgKind::kSystem;
    a.rflags = Message::kBareAck;
    a.ack = res.ack_value;
    if (trace_) trace_->ack(now(), peer, res.ack_value);
    wire_send(peer, std::move(a));
  }
}

void ThreadNode::drain_retransmits() {
  if (rlink_ == nullptr) return;
  auto due = rlink_->due_retransmits(now());
  for (auto& r : due) {
    if (trace_) trace_->retransmit(now(), r.dst, r.msg.seq);
    wire_send(r.dst, std::move(r.msg));
  }
}

void ThreadNode::send_self_after(double delay_s, Message msg) {
  msg.src = rank_;
  msg.internal = true;
  machine_.inflight_.fetch_add(1, std::memory_order_acq_rel);
  const auto due = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(delay_s));
  util::LockGuard g(timed_mutex_);
  timed_.emplace_back(due, std::move(msg));
}

void ThreadNode::cancel_timers() {
  util::LockGuard g(timed_mutex_);
  machine_.inflight_.fetch_sub(static_cast<std::int64_t>(timed_.size()),
                               std::memory_order_acq_rel);
  timed_.clear();
}

void ThreadNode::drain_due_timers() {
  std::vector<Message> due;
  {
    util::LockGuard g(timed_mutex_);
    const auto now = Clock::now();
    for (auto it = timed_.begin(); it != timed_.end();) {
      if (it->first <= now) {
        due.push_back(std::move(it->second));
        it = timed_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& msg : due) enqueue(std::move(msg));
}

void ThreadNode::enqueue(Message&& msg) {
  {
    util::LockGuard g(inbox_mutex_);
    inbox_.push_back(std::move(msg));
  }
  inbox_cv_.notify_all();
}

void ThreadNode::compute(double mflop, TimeCategory cat) {
  compute_seconds(mflop / machine_.config().mflops, cat);
}

void ThreadNode::compute_seconds(double seconds, TimeCategory cat) {
  PREMA_CHECK_MSG(seconds >= 0.0, "negative compute cost");
  // Degraded-node emulation: stretch compute by the plan's slowdown factor.
  if (auto* plan = machine_.fault_plan()) {
    seconds *= plan->compute_factor(rank_);
  }
  const double t0 = now();
  spin_for(seconds);
  charge(cat, seconds);
  if (trace_ && cat == TimeCategory::kPartitionCalc && seconds > 0.0) {
    trace_->span(trace::EventKind::kPartition, t0, seconds);
  }
}

void ThreadNode::execute(Message&& msg, std::function<void()> on_complete) {
  // On the real machine the body simply runs; preemption is provided by the
  // concurrently running polling thread, not by the backend.
  executing_.store(true, std::memory_order_release);
  ++stats_.work_units_executed;
  if (trace_) trace_->work_begin(now());
  dispatch(std::move(msg));
  if (trace_) trace_->work_end(now());
  executing_.store(false, std::memory_order_release);
  if (on_complete) on_complete();
}

int ThreadNode::drain(bool system_only) {
  int handled = 0;
  for (;;) {
    Message msg;
    {
      util::LockGuard g(inbox_mutex_);
      if (system_only) {
        auto it = inbox_.begin();
        while (it != inbox_.end() && it->kind != MsgKind::kSystem) ++it;
        if (it == inbox_.end()) break;
        msg = std::move(*it);
        inbox_.erase(it);
      } else {
        if (inbox_.empty()) break;
        msg = std::move(inbox_.front());
        inbox_.pop_front();
      }
    }
    if (!msg.internal) ++stats_.received;
    if (trace_) {
      trace_->message_recv(now(), msg.src, msg.size_bytes(),
                           msg.kind == MsgKind::kSystem);
    }
    if (msg.kind == MsgKind::kSystem) {
      program_->deliver_system(*this, std::move(msg));
    } else {
      program_->deliver_app(*this, std::move(msg));
    }
    machine_.inflight_.fetch_sub(1, std::memory_order_acq_rel);
    ++handled;
  }
  return handled;
}

void ThreadNode::worker_loop() {
  program_->main(*this);
  while (!machine_.done_.load(std::memory_order_acquire)) {
    drain_due_timers();
    drain_retransmits();
    const auto t0 = Clock::now();
    const int handled = drain(/*system_only=*/false);
    if (handled > 0) {
      charge(TimeCategory::kMessaging, seconds_between(t0, Clock::now()));
    }
    const auto t1 = Clock::now();
    const bool did = program_->service(*this);
    if (!did) charge(TimeCategory::kScheduling, seconds_between(t1, Clock::now()));
    if (did || handled > 0) {
      idle_.store(false, std::memory_order_release);
      continue;
    }
    program_->on_idle(*this);
    idle_.store(true, std::memory_order_release);
    const auto t2 = Clock::now();
    {
      util::UniqueLock g(inbox_mutex_);
      // No wait predicate: a spurious or timed-out wakeup just re-enters the
      // drain loop above, so waiting "at most 1 ms unless something arrives"
      // is all we need.
      if (inbox_.empty()) inbox_cv_.wait_for(g, std::chrono::milliseconds(1));
    }
    charge(TimeCategory::kIdle, seconds_between(t2, Clock::now()));
    idle_.store(false, std::memory_order_release);
  }
}

void ThreadNode::poller_loop() {
  const auto period = std::chrono::duration<double>(polling().interval_s);
  while (!machine_.done_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    drain_retransmits();
    const auto t0 = Clock::now();
    const int handled = drain(/*system_only=*/true);
    if (handled > 0) {
      charge(TimeCategory::kPolling, seconds_between(t0, Clock::now()));
      if (trace_) trace_->poll_wakeup(now());
    }
  }
}

ThreadMachine::ThreadMachine(ThreadConfig cfg) : cfg_(cfg) {
  PREMA_CHECK_MSG(cfg_.nprocs > 0, "machine needs at least one processor");
  util::SplitMix64 sm(cfg_.seed);
  nodes_.reserve(static_cast<std::size_t>(cfg_.nprocs));
  for (ProcId p = 0; p < cfg_.nprocs; ++p) {
    nodes_.push_back(std::make_unique<ThreadNode>(*this, p, cfg_.nprocs, sm.next()));
  }
}

Node& ThreadMachine::node(ProcId p) {
  PREMA_CHECK_MSG(p >= 0 && p < nprocs(), "node id out of range");
  return *nodes_[static_cast<std::size_t>(p)];
}

// Post-run accessor: called after run() has joined the worker threads (or
// before it started them), so the ledger is no longer shared.
const util::TimeLedger& ThreadMachine::ledger(ProcId p) const
    PREMA_NO_THREAD_SAFETY_ANALYSIS {
  PREMA_CHECK_MSG(p >= 0 && p < nprocs(), "node id out of range");
  return nodes_[static_cast<std::size_t>(p)]->ledger_;
}

double ThreadMachine::elapsed_s() const {
  return seconds_between(start_, Clock::now());
}

bool ThreadMachine::quiescent() const {
  if (inflight_.load(std::memory_order_acquire) != 0) return false;
  for (const auto& n : nodes_) {
    if (!n->idle_.load(std::memory_order_acquire)) return false;
    // A non-quiet link means an unacked (possibly dropped) message still
    // needs retransmitting, or a resequencing buffer holds data.
    if (n->rlink_ != nullptr && !n->rlink_->quiet()) return false;
  }
  // Check in-flight again: a message sent while we scanned the idle flags
  // would have bumped the counter before waking its target.
  return inflight_.load(std::memory_order_acquire) == 0;
}

double ThreadMachine::run(const ProgramFactory& factory) {
  PREMA_CHECK_MSG(!ran_, "ThreadMachine::run may only be called once");
  ran_ = true;
  start_ = Clock::now();

  programs_.reserve(nodes_.size());
  for (ProcId p = 0; p < nprocs(); ++p) {
    programs_.push_back(factory(p));
    nodes_[static_cast<std::size_t>(p)]->program_ = programs_.back().get();
    if (reliable()) {
      nodes_[static_cast<std::size_t>(p)]->rlink_ =
          std::make_unique<ReliableLink>(p, nprocs());
    }
  }
  for (auto& n : nodes_) {
    n->worker_ = std::thread([node = n.get()] { node->worker_loop(); });
    if (cfg_.polling.mode == PollingMode::kPreemptive) {
      n->poller_ = std::thread([node = n.get()] { node->poller_loop(); });
    }
  }

  // Quiescence must hold across two observations separated by a full idle
  // period before we declare the run finished.
  int stable = 0;
  while (stable < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    stable = quiescent() ? stable + 1 : 0;
  }
  done_.store(true, std::memory_order_release);
  for (auto& n : nodes_) n->inbox_cv_.notify_all();
  for (auto& n : nodes_) {
    if (n->worker_.joinable()) n->worker_.join();
    if (n->poller_.joinable()) n->poller_.join();
  }
  return elapsed_s();
}

}  // namespace prema::dmcs
