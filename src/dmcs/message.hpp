#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

/// \file message.hpp
/// The active-message unit of the Data Movement and Control Substrate
/// (DMCS, Barker et al. 2002). A message names a handler to run at the
/// destination and carries an opaque payload. The `kind` tag is how PREMA
/// separates system-generated (load balancing) traffic from application
/// traffic: system messages may be processed preemptively by the polling
/// thread, application messages only at application poll points (paper §4.2).

namespace prema::dmcs {

/// Identifies a registered handler; stable across processors because every
/// rank registers the same handlers in the same order.
using HandlerId = std::uint32_t;

inline constexpr HandlerId kNoHandler = 0;

enum class MsgKind : std::uint8_t {
  kApp = 0,    ///< application message; delivered at poll points
  kSystem = 1  ///< runtime/load-balancer message; may be delivered preemptively
};

struct Message {
  HandlerId handler = kNoHandler;
  ProcId src = kNoProc;
  MsgKind kind = MsgKind::kApp;
  std::vector<std::uint8_t> payload;
  /// Local timer wakeup (Node::send_self_after): never crosses the network
  /// and is excluded from the message counts quiescence detection observes.
  bool internal = false;

  // -- reliability envelope (dmcs/reliable.hpp) -----------------------------
  // Populated only when the machine runs with an active fault plan; with no
  // plan installed every field keeps its default and the transport takes the
  // exact legacy path. Modeled as out-of-band header state (the wire cost of
  // the envelope is covered by NetworkModel::header_bytes), so size_bytes()
  // is unchanged.
  std::uint32_t seq = 0;       ///< per-(sender,receiver) sequence number
  std::uint32_t ack = 0;       ///< cumulative ack: peer accepted all seq < ack
  std::uint64_t checksum = 0;  ///< FNV-1a over handler/kind/payload
  std::uint8_t rflags = 0;     ///< kReliable / kBareAck / kRetransmit

  static constexpr std::uint8_t kReliable = 1;    ///< tracked by seq/ack/retransmit
  static constexpr std::uint8_t kBareAck = 2;     ///< carries only an ack; never delivered
  static constexpr std::uint8_t kRetransmit = 4;  ///< a retransmitted copy

  [[nodiscard]] std::size_t size_bytes() const { return payload.size(); }
};

}  // namespace prema::dmcs
