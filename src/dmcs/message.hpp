#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

/// \file message.hpp
/// The active-message unit of the Data Movement and Control Substrate
/// (DMCS, Barker et al. 2002). A message names a handler to run at the
/// destination and carries an opaque payload. The `kind` tag is how PREMA
/// separates system-generated (load balancing) traffic from application
/// traffic: system messages may be processed preemptively by the polling
/// thread, application messages only at application poll points (paper §4.2).

namespace prema::dmcs {

/// Identifies a registered handler; stable across processors because every
/// rank registers the same handlers in the same order.
using HandlerId = std::uint32_t;

inline constexpr HandlerId kNoHandler = 0;

enum class MsgKind : std::uint8_t {
  kApp = 0,    ///< application message; delivered at poll points
  kSystem = 1  ///< runtime/load-balancer message; may be delivered preemptively
};

struct Message {
  HandlerId handler = kNoHandler;
  ProcId src = kNoProc;
  MsgKind kind = MsgKind::kApp;
  std::vector<std::uint8_t> payload;
  /// Local timer wakeup (Node::send_self_after): never crosses the network
  /// and is excluded from the message counts quiescence detection observes.
  bool internal = false;

  // -- reliability envelope (dmcs/reliable.hpp) -----------------------------
  // Populated only when the machine runs with an active fault plan; with no
  // plan installed every field keeps its default and the transport takes the
  // exact legacy path. Modeled as out-of-band header state (the wire cost of
  // the envelope is covered by NetworkModel::header_bytes), so size_bytes()
  // is unchanged.
  std::uint32_t seq = 0;       ///< per-(sender,receiver) sequence number
  std::uint32_t ack = 0;       ///< cumulative ack: peer accepted all seq < ack
  std::uint64_t checksum = 0;  ///< FNV-1a over handler/kind/payload
  std::uint8_t rflags = 0;     ///< kReliable / kBareAck / kRetransmit

  static constexpr std::uint8_t kReliable = 1;    ///< tracked by seq/ack/retransmit
  static constexpr std::uint8_t kBareAck = 2;     ///< carries only an ack; never delivered
  static constexpr std::uint8_t kRetransmit = 4;  ///< a retransmitted copy

  [[nodiscard]] std::size_t size_bytes() const { return payload.size(); }
};

/// The wire-protocol manifest: every cross-processor handler name the stack
/// registers, one X-macro entry per name. This is the source of truth the
/// static analyzer (tools/analyze, "protocol" pass) cross-checks against the
/// actual HandlerRegistry::add sites and the trace label table
/// (trace/wire_names.hpp) — adding a handler means adding it in all three
/// places, and the analyzer fails the build when they drift. The first
/// argument is a stable symbol for enumerating; the second is the registered
/// name string.
#define PREMA_WIRE_HANDLERS(X)             \
  X(kPremaExec, "prema.exec")              \
  X(kIlbPolicy, "ilb.policy")              \
  X(kPremaTerm, "prema.term")              \
  X(kMolRoute, "mol.route")                \
  X(kMolMigrate, "mol.migrate")            \
  X(kMolUpdate, "mol.update")              \
  X(kMolOffer, "mol.offer")                \
  X(kMolCommit, "mol.commit")              \
  X(kCharmMsg, "charm.msg")                \
  X(kCharmExec, "charm.exec")              \
  X(kCharmSync, "charm.sync")              \
  X(kCharmAssign, "charm.assign")          \
  X(kCharmMigrate, "charm.migrate")        \
  X(kCharmMigdone, "charm.migdone")        \
  X(kCharmResume, "charm.resume")          \
  X(kSrpExec, "srp.exec")                  \
  X(kSrpLow, "srp.low")                    \
  X(kSrpHalt, "srp.halt")                  \
  X(kSrpReport, "srp.report")              \
  X(kSrpAssign, "srp.assign")              \
  X(kSrpMigdone, "srp.migdone")            \
  X(kSrpResume, "srp.resume")              \
  X(kSrpCompleted, "srp.completed")        \
  X(kServiceArrival, "service.arrival")    \
  X(kServiceEpoch, "service.epoch")

}  // namespace prema::dmcs
