#pragma once

#include <deque>
#include <limits>
#include <memory>
#include <set>
#include <vector>

#include "dmcs/machine.hpp"
#include "dmcs/reliable.hpp"
#include "sim/engine.hpp"

/// \file sim_machine.hpp
/// DMCS backend on the discrete-event cluster emulator. This is what all
/// paper-scale experiments run on (128 virtual processors).
///
/// Semantics of a virtual processor:
///  - Messages are delivered into an inbox at their modeled arrival time.
///  - A *service pass* (the runtime's poll point) drains the inbox — charging
///    per-message receive cost to Messaging — and then asks the Program to do
///    one unit of local work.
///  - Work units run under *deferred-cost execution*: the handler body runs
///    at the start of the activity (its data-structure work is real), the
///    Mflop it declares via Node::compute defines the activity's duration,
///    and messages it sends are released when the activity completes.
///  - In preemptive polling mode (paper §4.2), a system message arriving
///    during an activity is handled at the next polling-thread tick: the
///    emulator schedules an interrupt at the tick boundary, charges the
///    wakeup to Polling, runs the system handler inline, and pushes the
///    activity's completion out by the time consumed. Ticks that would find
///    no messages are charged in bulk when the activity ends, so the event
///    count stays O(#system messages), not O(duration / tick).
///  - In explicit mode (paper §4.1) system messages simply wait for the next
///    service pass, reproducing the "heavy work units delay message
///    processing" pathology the paper measures.

namespace prema::dmcs {

class SimMachine;

class SimNode final : public Node {
 public:
  SimNode(SimMachine& machine, ProcId rank, int nprocs);

  [[nodiscard]] double now() const override;
  [[nodiscard]] util::Rng& rng() override;
  [[nodiscard]] util::TimeLedger& ledger() override;
  [[nodiscard]] const PollingConfig& polling() const override;
  [[nodiscard]] HandlerRegistry& registry() override;

  void send(ProcId dst, Message msg) override;
  void send_self_after(double delay_s, Message msg) override;
  void cancel_timers() override;
  void compute(double mflop, util::TimeCategory cat) override;
  void compute_seconds(double seconds, util::TimeCategory cat) override;
  void execute(Message&& msg, std::function<void()> on_complete) override;
  [[nodiscard]] bool executing() const override { return active_; }
  [[nodiscard]] std::size_t inbox_size() const override { return inbox_.size(); }

  /// Category charged for the *next* stretch of waiting (Idle by default;
  /// drivers set Synchronization while a processor is blocked in a balancing
  /// barrier). Resets to Idle are the caller's responsibility.
  void set_wait_category(util::TimeCategory cat) override { wait_cat_ = cat; }
  [[nodiscard]] util::TimeCategory wait_category() const { return wait_cat_; }

  [[nodiscard]] bool reliable_transport() const override;
  [[nodiscard]] bool transport_quiet() const override;
  [[nodiscard]] bool peer_degraded(ProcId p) const override;

  /// Local clock: the virtual time through which this processor's timeline
  /// has been charged (>= engine now while busy).
  [[nodiscard]] sim::SimTime clock() const;

 private:
  friend class SimMachine;

  void start(Program* program);
  void on_arrival(Message&& msg);
  void ensure_service(sim::SimTime t);
  void do_service(sim::SimTime t);
  void drain_inbox();
  void do_send(ProcId dst, Message&& msg);
  /// Put one already-stamped message on the wire: model transfer time,
  /// consult the fault plan (drop/dup/delay/reorder/corrupt/pause) and
  /// schedule arrival(s) at the destination's on_wire. With no plan this is
  /// the exact legacy FIFO-channel delivery.
  void wire_send(ProcId dst, Message&& msg);
  /// Wire-level arrival: runs the reliable transport (ack processing, dedup,
  /// resequencing) and releases in-order messages to on_arrival. With no
  /// reliable link it forwards straight to on_arrival.
  void on_wire(Message&& msg);
  void send_bare_ack(ProcId to, std::uint32_t cumulative);
  void schedule_retransmit();
  void on_retransmit_timer();
  void flush_deferred_sends();
  void schedule_interrupt(sim::SimTime arrival);
  void on_interrupt(std::uint64_t gen);
  void finish_activity(std::uint64_t gen);
  [[nodiscard]] bool inbox_has_system() const;

  SimMachine& machine_;
  sim::Engine& eng_;
  sim::ProcState& proc_;
  Program* program_ = nullptr;

  std::deque<Message> inbox_;
  sim::EventId pending_service_ = sim::kNoEvent;
  sim::SimTime pending_service_time_ = 0.0;
  util::TimeCategory wait_cat_ = util::TimeCategory::kIdle;

  // Work-unit activity state (deferred-cost execution).
  bool active_ = false;
  std::uint64_t activity_gen_ = 0;
  double remaining_s_ = 0.0;
  double total_duration_s_ = 0.0;
  sim::SimTime tick_base_ = 0.0;
  int interrupts_ = 0;
  sim::EventId end_event_ = sim::kNoEvent;
  std::function<void()> on_complete_;

  // Cost-capture state while a work-unit body runs.
  bool capturing_ = false;
  double captured_s_ = 0.0;
  std::vector<std::pair<ProcId, Message>> deferred_sends_;

  // Pending send_self_after timer events (cancellable). Ordered set so
  // cancel_timers() walks them deterministically.
  std::set<sim::EventId> timer_events_;

  // Reliable transport (created in start() when a fault plan is active).
  // The retransmit event is deliberately *not* in timer_events_: termination
  // detection cancels application timers, but unacked messages must keep
  // retransmitting until their acks land.
  std::unique_ptr<ReliableLink> rlink_;
  sim::EventId retx_event_ = sim::kNoEvent;
  double retx_at_ = std::numeric_limits<double>::infinity();

  // Per-destination channel clock enforcing FIFO delivery (TCP-like): a small
  // message sent after a large one on the same (src,dst) pair must not
  // overtake it.
  std::vector<sim::SimTime> channel_clock_;
};

class SimMachine final : public Machine {
 public:
  explicit SimMachine(sim::MachineConfig cfg, PollingConfig polling = {});

  [[nodiscard]] int nprocs() const override { return engine_.nprocs(); }
  [[nodiscard]] Node& node(ProcId p) override { return sim_node(p); }
  [[nodiscard]] HandlerRegistry& registry() override { return registry_; }
  double run(const ProgramFactory& factory) override;
  [[nodiscard]] const util::TimeLedger& ledger(ProcId p) const override;

  [[nodiscard]] SimNode& sim_node(ProcId p);
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const sim::MachineConfig& config() const { return engine_.config(); }
  [[nodiscard]] const PollingConfig& polling() const { return polling_; }
  [[nodiscard]] const sim::RunStats& run_stats() const { return run_stats_; }

  /// Safety valve for the event loop; tests lower it to catch protocol
  /// non-termination instead of hanging.
  void set_max_events(std::uint64_t n) { max_events_ = n; }

 private:
  sim::Engine engine_;
  PollingConfig polling_;
  HandlerRegistry registry_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  std::vector<std::unique_ptr<Program>> programs_;
  sim::RunStats run_stats_;
  std::uint64_t max_events_ = 500'000'000;
  bool ran_ = false;
};

}  // namespace prema::dmcs
