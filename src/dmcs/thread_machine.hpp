#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "dmcs/machine.hpp"
#include "dmcs/reliable.hpp"
#include "support/thread_annotations.hpp"

/// \file thread_machine.hpp
/// DMCS backend on real OS threads: one worker thread per virtual processor,
/// shared-memory mailboxes as the interconnect, and — in preemptive polling
/// mode — a real polling thread per processor that wakes on a fixed period
/// and handles pending *system* messages concurrently with the worker, just
/// as PREMA's implicit load balancing does (paper §4.2).
///
/// This backend exists to demonstrate that the protocol stack (MOL, ILB,
/// the policies) is real executable code, not simulation-only logic: tests
/// and examples run it at laptop scale. Paper-scale experiments use
/// SimMachine. Program hooks that touch state shared with the polling thread
/// must guard it with Node::lock_state(); on the emulated machine that lock
/// is uncontended and free.
///
/// Lock hierarchy (see DESIGN.md "Lock hierarchy"): Node::state_mutex() is
/// above the per-node inbox/timed mutexes here, which are above the trace
/// sink mutexes. Locks are only ever taken downward: a handler running under
/// the state lock may enqueue into a peer's inbox; drain() pops the inbox
/// *before* dispatching, so no handler ever runs with an inbox lock held.

namespace prema::dmcs {

class ThreadMachine;

struct ThreadConfig {
  int nprocs = 4;
  /// Rate used to convert Node::compute(mflop) into spin time.
  double mflops = 2000.0;
  PollingConfig polling;
  std::uint64_t seed = 0x5EEDULL;
};

class ThreadNode final : public Node {
 public:
  ThreadNode(ThreadMachine& machine, ProcId rank, int nprocs, std::uint64_t seed);

  [[nodiscard]] double now() const override;
  [[nodiscard]] util::Rng& rng() override { return rng_; }
  /// Post-run accessor: the worker/poller threads charge through charge()
  /// under ledger_mutex_; by the time anyone holds this reference the
  /// machine has joined its threads.
  [[nodiscard]] util::TimeLedger& ledger() override
      PREMA_NO_THREAD_SAFETY_ANALYSIS {
    return ledger_;
  }
  [[nodiscard]] const PollingConfig& polling() const override;
  [[nodiscard]] HandlerRegistry& registry() override;

  void send(ProcId dst, Message msg) override;
  void send_self_after(double delay_s, Message msg) override;
  void cancel_timers() override;
  void compute(double mflop, util::TimeCategory cat) override;
  void compute_seconds(double seconds, util::TimeCategory cat) override;
  void execute(Message&& msg, std::function<void()> on_complete) override;
  // Acquire pairs with the worker's release stores: an observer that sees
  // executing_ == true also sees the unit state the worker published first.
  [[nodiscard]] bool executing() const override {
    return executing_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t inbox_size() const override {
    util::LockGuard g(inbox_mutex_);
    return inbox_.size();
  }

  [[nodiscard]] bool reliable_transport() const override { return rlink_ != nullptr; }
  [[nodiscard]] bool transport_quiet() const override {
    return rlink_ == nullptr || rlink_->quiet();
  }
  [[nodiscard]] bool peer_degraded(ProcId p) const override;

 private:
  friend class ThreadMachine;

  void enqueue(Message&& msg);
  /// Put an already-stamped message on the wire: consult the fault plan
  /// (drop/dup/corrupt; delay/reorder are sim-only — real threads provide
  /// natural reordering) and hand surviving copies to the destination's
  /// transport_accept. Runs in the *sending* node's thread.
  void wire_send(ProcId dst, Message&& msg);
  /// Wire-level arrival on this node (called from the sender's thread): runs
  /// the reliable transport (ack processing, dedup, resequencing), bumps the
  /// in-flight counter for each released message, enqueues it, then acks.
  void transport_accept(Message&& msg);
  void drain_retransmits();
  void worker_loop();
  void poller_loop();
  /// Drain due messages; if `system_only`, leave application messages queued.
  /// Returns the number of messages handled.
  int drain(bool system_only);

  /// Charge `seconds` to the ledger under ledger_mutex_ (the worker and the
  /// polling thread both account time, e.g. Scheduling from a policy handler
  /// dispatched by the poller racing the worker's own Scheduling charge).
  void charge(util::TimeCategory cat, double seconds);

  ThreadMachine& machine_;
  util::Rng rng_;  ///< worker-thread only

  util::Mutex ledger_mutex_;
  util::TimeLedger ledger_ PREMA_GUARDED_BY(ledger_mutex_);

  /// mutable so const observers (inbox_size) can lock it without casting.
  mutable util::Mutex inbox_mutex_;
  util::CondVar inbox_cv_;
  std::deque<Message> inbox_ PREMA_GUARDED_BY(inbox_mutex_);

  /// Timer messages (send_self_after) waiting for their due time; moved into
  /// the inbox by the worker loop.
  util::Mutex timed_mutex_;
  std::vector<std::pair<std::chrono::steady_clock::time_point, Message>> timed_
      PREMA_GUARDED_BY(timed_mutex_);

  void drain_due_timers();

  Program* program_ = nullptr;  ///< installed before the threads start
  /// Reliable transport; created in run() before the threads start when a
  /// fault plan is installed, null otherwise. Internally mutex-guarded, so
  /// the worker, the poller, and sending peers may all touch it.
  std::unique_ptr<ReliableLink> rlink_;
  std::atomic<bool> executing_{false};
  std::atomic<bool> idle_{false};

  std::thread worker_;
  std::thread poller_;
};

class ThreadMachine final : public Machine {
 public:
  explicit ThreadMachine(ThreadConfig cfg);

  [[nodiscard]] int nprocs() const override { return cfg_.nprocs; }
  [[nodiscard]] Node& node(ProcId p) override;
  [[nodiscard]] HandlerRegistry& registry() override { return registry_; }
  double run(const ProgramFactory& factory) override;
  [[nodiscard]] const util::TimeLedger& ledger(ProcId p) const override;

  [[nodiscard]] const ThreadConfig& config() const { return cfg_; }
  [[nodiscard]] double elapsed_s() const;

 private:
  friend class ThreadNode;

  [[nodiscard]] bool quiescent() const;

  ThreadConfig cfg_;
  HandlerRegistry registry_;  ///< handlers registered before run(), then read-only
  std::vector<std::unique_ptr<ThreadNode>> nodes_;
  std::vector<std::unique_ptr<Program>> programs_;
  std::atomic<std::int64_t> inflight_{0};
  std::atomic<bool> done_{false};
  /// Written once in run() before the worker threads are created (the thread
  /// launch provides the happens-before edge for their reads in now()).
  std::chrono::steady_clock::time_point start_;
  bool ran_ = false;  ///< main thread only
};

}  // namespace prema::dmcs
