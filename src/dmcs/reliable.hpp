#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dmcs/message.hpp"
#include "support/thread_annotations.hpp"

/// \file reliable.hpp
/// Reliable-delivery protocol for the DMCS interconnect, engaged only when a
/// machine runs under an active fault plan (fault/fault_plan.hpp). The wire
/// may then drop, duplicate, reorder, delay or truncate messages; this layer
/// restores the contract every protocol above (MOL ordering, Mattern
/// termination counting, the balancing handshakes) was written against:
/// per-(sender,receiver) FIFO and exactly-once delivery into the inbox.
///
/// Mechanism (classic sliding-window, one window per directed link):
///   - The sender stamps every cross-node message with a per-link sequence
///     number and an FNV-1a checksum, keeps a copy, and retransmits it on a
///     timeout with exponential backoff until the receiver's cumulative ack
///     covers it. A bounded retry budget turns a partitioned link into a
///     crash instead of a silent hang.
///   - The receiver discards corrupt copies (checksum mismatch), discards
///     duplicates (seq below the cumulative frontier), buffers out-of-order
///     arrivals, and releases messages to the inbox strictly in seq order.
///   - Acks are cumulative: piggybacked on every reverse-direction data
///     message and also sent as dedicated bare-ack messages (which are
///     themselves unreliable — a lost ack just provokes a retransmit whose
///     duplicate is re-acked).
///
/// Quiescence interaction: NodeStats.sent counts each *logical* send once
/// (never retransmits or acks) and NodeStats.received counts a message when
/// it is released to the inbox — a message sitting in the resequencing
/// buffer, or acked but still unreleased, keeps the global sent/received
/// counts unbalanced, so Mattern-style termination detection cannot fire
/// while anything is in flight. ReliableLink::quiet() additionally gates the
/// threaded backend's quiescence scan and the runtime's local-quiet test.
///
/// Thread-safe: on the threaded backend remote workers, the local worker and
/// the local poller all enter the link concurrently; on the emulated machine
/// the lock is uncontended and the call order is fixed by the event order.

namespace prema::dmcs {

/// Checksum the receiver validates (covers everything the wire could damage).
[[nodiscard]] std::uint64_t message_checksum(const Message& m);

struct ReliableConfig {
  double rto_initial_s = 2e-3;  ///< first retransmit timeout
  double rto_max_s = 250e-3;    ///< backoff ceiling (doubles each retry)
  int max_retries = 30;         ///< budget before declaring the link dead
};

class ReliableLink {
 public:
  ReliableLink(ProcId self, int nprocs, ReliableConfig cfg = {});

  // -- sender side ----------------------------------------------------------

  /// Stamp `msg` (seq, checksum, piggybacked cumulative ack, kReliable) and
  /// remember a copy for retransmission. `now_s` arms the first timeout.
  void stamp(ProcId dst, Message& msg, double now_s);

  struct Retransmit {
    ProcId dst;
    Message msg;  ///< stamped copy, kRetransmit set
  };
  /// Head-of-window messages whose timeout expired: bumps their retry count
  /// and backs off their timeout. Aborts when a message exhausts the budget.
  /// Only the lowest unacked seq per destination is ever retransmitted —
  /// acks are cumulative, so recovering the head releases every successor
  /// the receiver already buffered (no go-back-N duplicate storm).
  [[nodiscard]] std::vector<Retransmit> due_retransmits(double now_s);
  /// Earliest head-of-window retransmit deadline, or +infinity when none.
  [[nodiscard]] double next_deadline() const;

  /// The transport finished serializing a copy of `seq` onto the wire at
  /// `wire_time_s` (which can be far past the stamp time when the link's
  /// FIFO is backed up). Defers the retransmit deadline to at least
  /// `wire_time_s + rto` so the timeout measures the network round-trip,
  /// not the sender's own queueing delay. No-op if already acked.
  void note_wire_time(ProcId dst, std::uint32_t seq, double wire_time_s);

  /// Process a cumulative ack from `peer`: all seq < `cumulative` delivered.
  void on_ack(ProcId peer, std::uint32_t cumulative);

  // -- receiver side --------------------------------------------------------

  struct Accepted {
    /// In-order releases (the arriving message and any buffered successors
    /// it unblocked), to be delivered to the inbox in this order.
    std::vector<Message> deliver;
    bool duplicate = false;  ///< already delivered (or already buffered)
    bool corrupt = false;    ///< checksum mismatch; copy discarded, no ack
    std::uint32_t ack_value = 0;  ///< cumulative ack to return to the sender
  };
  /// Run one arriving reliable message through checksum / dedup /
  /// resequencing. The caller sends a bare ack with `ack_value` unless the
  /// copy was corrupt (a missing ack provokes the retransmit that carries an
  /// intact copy).
  [[nodiscard]] Accepted accept(Message&& msg);

  /// Cumulative ack value for the channel from `peer` (for piggybacking).
  [[nodiscard]] std::uint32_t cumulative(ProcId peer) const;

  // -- health / quiescence --------------------------------------------------

  /// No unacked sends and no buffered out-of-order arrivals: nothing on this
  /// node's links is in flight or held back.
  [[nodiscard]] bool quiet() const;
  /// Unacked messages outstanding toward `peer`.
  [[nodiscard]] std::size_t pending_to(ProcId peer) const;
  /// True while any message toward `peer` has needed at least one
  /// retransmit and is still unacked — the dynamic "this peer (or its link)
  /// is struggling" signal the balancer's health view consumes.
  [[nodiscard]] bool peer_lossy(ProcId peer) const;

 private:
  // The inner structs live inside tx_/rx_ (both GUARDED_BY(mu_)); Clang
  // attributes cannot express that from here, so the analyzer-only
  // GUARDED_BY_CONTEXT spelling records the discipline for lock-flow.
  struct Pending {
    Message msg PREMA_GUARDED_BY_CONTEXT(mu_);
    double deadline PREMA_GUARDED_BY_CONTEXT(mu_) = 0.0;
    double rto PREMA_GUARDED_BY_CONTEXT(mu_) = 0.0;
    int retries PREMA_GUARDED_BY_CONTEXT(mu_) = 0;
  };
  struct Tx {
    std::uint32_t next_seq PREMA_GUARDED_BY_CONTEXT(mu_) = 0;
    /// Ordered: deterministic scans.
    std::map<std::uint32_t, Pending> pending PREMA_GUARDED_BY_CONTEXT(mu_);
  };
  struct Rx {
    /// Cumulative frontier: all < expected done.
    std::uint32_t expected PREMA_GUARDED_BY_CONTEXT(mu_) = 0;
    /// Out-of-order arrivals.
    std::map<std::uint32_t, Message> buffer PREMA_GUARDED_BY_CONTEXT(mu_);
  };

  ProcId self_;
  ReliableConfig cfg_;
  mutable util::Mutex mu_;
  std::vector<Tx> tx_ PREMA_GUARDED_BY(mu_);  ///< indexed by destination rank
  std::vector<Rx> rx_ PREMA_GUARDED_BY(mu_);  ///< indexed by source rank
};

}  // namespace prema::dmcs
