file(REMOVE_RECURSE
  "CMakeFiles/fig5_heavy20pct_imb50.dir/fig5_heavy20pct_imb50.cpp.o"
  "CMakeFiles/fig5_heavy20pct_imb50.dir/fig5_heavy20pct_imb50.cpp.o.d"
  "fig5_heavy20pct_imb50"
  "fig5_heavy20pct_imb50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_heavy20pct_imb50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
