# Empty compiler generated dependencies file for fig5_heavy20pct_imb50.
# This may be replaced when dependencies are built.
