file(REMOVE_RECURSE
  "CMakeFiles/mesh_generator.dir/mesh_generator.cpp.o"
  "CMakeFiles/mesh_generator.dir/mesh_generator.cpp.o.d"
  "mesh_generator"
  "mesh_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
