# Empty compiler generated dependencies file for mesh_generator.
# This may be replaced when dependencies are built.
