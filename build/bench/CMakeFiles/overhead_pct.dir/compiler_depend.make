# Empty compiler generated dependencies file for overhead_pct.
# This may be replaced when dependencies are built.
