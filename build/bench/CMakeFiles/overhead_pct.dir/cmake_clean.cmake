file(REMOVE_RECURSE
  "CMakeFiles/overhead_pct.dir/overhead_pct.cpp.o"
  "CMakeFiles/overhead_pct.dir/overhead_pct.cpp.o.d"
  "overhead_pct"
  "overhead_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
