file(REMOVE_RECURSE
  "CMakeFiles/ablation_polling_interval.dir/ablation_polling_interval.cpp.o"
  "CMakeFiles/ablation_polling_interval.dir/ablation_polling_interval.cpp.o.d"
  "ablation_polling_interval"
  "ablation_polling_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_polling_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
