# Empty dependencies file for ablation_polling_interval.
# This may be replaced when dependencies are built.
