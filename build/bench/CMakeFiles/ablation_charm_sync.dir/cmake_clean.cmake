file(REMOVE_RECURSE
  "CMakeFiles/ablation_charm_sync.dir/ablation_charm_sync.cpp.o"
  "CMakeFiles/ablation_charm_sync.dir/ablation_charm_sync.cpp.o.d"
  "ablation_charm_sync"
  "ablation_charm_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_charm_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
