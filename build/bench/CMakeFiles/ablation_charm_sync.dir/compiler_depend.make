# Empty compiler generated dependencies file for ablation_charm_sync.
# This may be replaced when dependencies are built.
