file(REMOVE_RECURSE
  "CMakeFiles/ablation_watermark.dir/ablation_watermark.cpp.o"
  "CMakeFiles/ablation_watermark.dir/ablation_watermark.cpp.o.d"
  "ablation_watermark"
  "ablation_watermark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_watermark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
