# Empty dependencies file for ablation_watermark.
# This may be replaced when dependencies are built.
