# Empty compiler generated dependencies file for fig4_heavy2x_imb10.
# This may be replaced when dependencies are built.
