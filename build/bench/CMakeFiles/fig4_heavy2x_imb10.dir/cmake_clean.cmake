file(REMOVE_RECURSE
  "CMakeFiles/fig4_heavy2x_imb10.dir/fig4_heavy2x_imb10.cpp.o"
  "CMakeFiles/fig4_heavy2x_imb10.dir/fig4_heavy2x_imb10.cpp.o.d"
  "fig4_heavy2x_imb10"
  "fig4_heavy2x_imb10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_heavy2x_imb10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
