# Empty dependencies file for quality_stddev.
# This may be replaced when dependencies are built.
