file(REMOVE_RECURSE
  "CMakeFiles/quality_stddev.dir/quality_stddev.cpp.o"
  "CMakeFiles/quality_stddev.dir/quality_stddev.cpp.o.d"
  "quality_stddev"
  "quality_stddev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
