# Empty dependencies file for ablation_repart_alpha.
# This may be replaced when dependencies are built.
