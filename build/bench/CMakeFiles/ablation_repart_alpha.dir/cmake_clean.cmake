file(REMOVE_RECURSE
  "CMakeFiles/ablation_repart_alpha.dir/ablation_repart_alpha.cpp.o"
  "CMakeFiles/ablation_repart_alpha.dir/ablation_repart_alpha.cpp.o.d"
  "ablation_repart_alpha"
  "ablation_repart_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_repart_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
