# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_heavy2x_imb50.
