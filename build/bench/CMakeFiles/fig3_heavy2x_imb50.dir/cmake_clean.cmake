file(REMOVE_RECURSE
  "CMakeFiles/fig3_heavy2x_imb50.dir/fig3_heavy2x_imb50.cpp.o"
  "CMakeFiles/fig3_heavy2x_imb50.dir/fig3_heavy2x_imb50.cpp.o.d"
  "fig3_heavy2x_imb50"
  "fig3_heavy2x_imb50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_heavy2x_imb50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
