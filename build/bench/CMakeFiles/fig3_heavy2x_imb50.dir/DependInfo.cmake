
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_heavy2x_imb50.cpp" "bench/CMakeFiles/fig3_heavy2x_imb50.dir/fig3_heavy2x_imb50.cpp.o" "gcc" "bench/CMakeFiles/fig3_heavy2x_imb50.dir/fig3_heavy2x_imb50.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_support/CMakeFiles/prema_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/prema/CMakeFiles/prema_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/charm/CMakeFiles/prema_charm.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/prema_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/prema_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ilb/CMakeFiles/prema_ilb.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/prema_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/mol/CMakeFiles/prema_mol.dir/DependInfo.cmake"
  "/root/repo/build/src/dmcs/CMakeFiles/prema_dmcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prema_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/prema_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
