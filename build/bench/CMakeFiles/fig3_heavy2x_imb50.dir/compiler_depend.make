# Empty compiler generated dependencies file for fig3_heavy2x_imb50.
# This may be replaced when dependencies are built.
