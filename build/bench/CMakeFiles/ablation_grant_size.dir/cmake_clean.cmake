file(REMOVE_RECURSE
  "CMakeFiles/ablation_grant_size.dir/ablation_grant_size.cpp.o"
  "CMakeFiles/ablation_grant_size.dir/ablation_grant_size.cpp.o.d"
  "ablation_grant_size"
  "ablation_grant_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grant_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
