# Empty dependencies file for ablation_grant_size.
# This may be replaced when dependencies are built.
