# Empty compiler generated dependencies file for fig6_heavy20pct_imb10.
# This may be replaced when dependencies are built.
