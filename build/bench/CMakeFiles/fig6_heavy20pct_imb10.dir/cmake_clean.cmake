file(REMOVE_RECURSE
  "CMakeFiles/fig6_heavy20pct_imb10.dir/fig6_heavy20pct_imb10.cpp.o"
  "CMakeFiles/fig6_heavy20pct_imb10.dir/fig6_heavy20pct_imb10.cpp.o.d"
  "fig6_heavy20pct_imb10"
  "fig6_heavy20pct_imb10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_heavy20pct_imb10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
