# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_dmcs[1]_include.cmake")
include("/root/repo/build/tests/test_mol[1]_include.cmake")
include("/root/repo/build/tests/test_ilb[1]_include.cmake")
include("/root/repo/build/tests/test_prema[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_charm[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_srp[1]_include.cmake")
include("/root/repo/build/tests/test_bench[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
