# Empty compiler generated dependencies file for test_dmcs.
# This may be replaced when dependencies are built.
