file(REMOVE_RECURSE
  "CMakeFiles/test_dmcs.dir/test_dmcs.cpp.o"
  "CMakeFiles/test_dmcs.dir/test_dmcs.cpp.o.d"
  "test_dmcs"
  "test_dmcs.pdb"
  "test_dmcs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
