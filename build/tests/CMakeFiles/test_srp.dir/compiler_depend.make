# Empty compiler generated dependencies file for test_srp.
# This may be replaced when dependencies are built.
