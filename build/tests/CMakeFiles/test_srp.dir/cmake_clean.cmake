file(REMOVE_RECURSE
  "CMakeFiles/test_srp.dir/test_srp.cpp.o"
  "CMakeFiles/test_srp.dir/test_srp.cpp.o.d"
  "test_srp"
  "test_srp.pdb"
  "test_srp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
