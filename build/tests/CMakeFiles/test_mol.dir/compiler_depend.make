# Empty compiler generated dependencies file for test_mol.
# This may be replaced when dependencies are built.
