file(REMOVE_RECURSE
  "CMakeFiles/test_mol.dir/test_mol.cpp.o"
  "CMakeFiles/test_mol.dir/test_mol.cpp.o.d"
  "test_mol"
  "test_mol.pdb"
  "test_mol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
