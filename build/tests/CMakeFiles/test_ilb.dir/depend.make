# Empty dependencies file for test_ilb.
# This may be replaced when dependencies are built.
