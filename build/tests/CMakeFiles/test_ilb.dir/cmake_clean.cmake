file(REMOVE_RECURSE
  "CMakeFiles/test_ilb.dir/test_ilb.cpp.o"
  "CMakeFiles/test_ilb.dir/test_ilb.cpp.o.d"
  "test_ilb"
  "test_ilb.pdb"
  "test_ilb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ilb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
