file(REMOVE_RECURSE
  "CMakeFiles/test_prema.dir/test_prema.cpp.o"
  "CMakeFiles/test_prema.dir/test_prema.cpp.o.d"
  "test_prema"
  "test_prema.pdb"
  "test_prema[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
