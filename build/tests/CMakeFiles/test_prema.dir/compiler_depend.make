# Empty compiler generated dependencies file for test_prema.
# This may be replaced when dependencies are built.
