# Empty dependencies file for test_charm.
# This may be replaced when dependencies are built.
