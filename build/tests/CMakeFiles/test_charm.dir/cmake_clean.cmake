file(REMOVE_RECURSE
  "CMakeFiles/test_charm.dir/test_charm.cpp.o"
  "CMakeFiles/test_charm.dir/test_charm.cpp.o.d"
  "test_charm"
  "test_charm.pdb"
  "test_charm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
