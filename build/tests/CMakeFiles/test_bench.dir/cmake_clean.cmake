file(REMOVE_RECURSE
  "CMakeFiles/test_bench.dir/test_bench.cpp.o"
  "CMakeFiles/test_bench.dir/test_bench.cpp.o.d"
  "test_bench"
  "test_bench.pdb"
  "test_bench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
