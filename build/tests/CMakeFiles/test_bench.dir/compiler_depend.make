# Empty compiler generated dependencies file for test_bench.
# This may be replaced when dependencies are built.
