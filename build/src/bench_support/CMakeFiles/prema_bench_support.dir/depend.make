# Empty dependencies file for prema_bench_support.
# This may be replaced when dependencies are built.
