file(REMOVE_RECURSE
  "libprema_bench_support.a"
)
