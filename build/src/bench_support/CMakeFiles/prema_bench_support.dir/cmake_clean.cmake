file(REMOVE_RECURSE
  "CMakeFiles/prema_bench_support.dir/mesh_app.cpp.o"
  "CMakeFiles/prema_bench_support.dir/mesh_app.cpp.o.d"
  "CMakeFiles/prema_bench_support.dir/stop_repartition.cpp.o"
  "CMakeFiles/prema_bench_support.dir/stop_repartition.cpp.o.d"
  "CMakeFiles/prema_bench_support.dir/synthetic.cpp.o"
  "CMakeFiles/prema_bench_support.dir/synthetic.cpp.o.d"
  "libprema_bench_support.a"
  "libprema_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
