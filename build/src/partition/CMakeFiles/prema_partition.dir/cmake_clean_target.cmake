file(REMOVE_RECURSE
  "libprema_partition.a"
)
