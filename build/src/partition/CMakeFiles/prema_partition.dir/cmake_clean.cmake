file(REMOVE_RECURSE
  "CMakeFiles/prema_partition.dir/adaptive.cpp.o"
  "CMakeFiles/prema_partition.dir/adaptive.cpp.o.d"
  "CMakeFiles/prema_partition.dir/coarsen.cpp.o"
  "CMakeFiles/prema_partition.dir/coarsen.cpp.o.d"
  "CMakeFiles/prema_partition.dir/multilevel.cpp.o"
  "CMakeFiles/prema_partition.dir/multilevel.cpp.o.d"
  "CMakeFiles/prema_partition.dir/refine.cpp.o"
  "CMakeFiles/prema_partition.dir/refine.cpp.o.d"
  "libprema_partition.a"
  "libprema_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
