# Empty compiler generated dependencies file for prema_partition.
# This may be replaced when dependencies are built.
