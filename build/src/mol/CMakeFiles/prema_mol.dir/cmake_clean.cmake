file(REMOVE_RECURSE
  "CMakeFiles/prema_mol.dir/mol.cpp.o"
  "CMakeFiles/prema_mol.dir/mol.cpp.o.d"
  "libprema_mol.a"
  "libprema_mol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_mol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
