# Empty compiler generated dependencies file for prema_mol.
# This may be replaced when dependencies are built.
