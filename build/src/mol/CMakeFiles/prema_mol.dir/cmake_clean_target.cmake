file(REMOVE_RECURSE
  "libprema_mol.a"
)
