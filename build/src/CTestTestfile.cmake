# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sim")
subdirs("dmcs")
subdirs("mol")
subdirs("ilb")
subdirs("prema")
subdirs("graph")
subdirs("partition")
subdirs("charm")
subdirs("mesh")
subdirs("bench_support")
