file(REMOVE_RECURSE
  "CMakeFiles/prema_runtime.dir/runtime.cpp.o"
  "CMakeFiles/prema_runtime.dir/runtime.cpp.o.d"
  "libprema_runtime.a"
  "libprema_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
