# Empty dependencies file for prema_runtime.
# This may be replaced when dependencies are built.
