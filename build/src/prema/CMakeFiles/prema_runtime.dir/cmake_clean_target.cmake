file(REMOVE_RECURSE
  "libprema_runtime.a"
)
