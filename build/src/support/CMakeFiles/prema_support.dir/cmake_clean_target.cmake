file(REMOVE_RECURSE
  "libprema_support.a"
)
