file(REMOVE_RECURSE
  "CMakeFiles/prema_support.dir/byte_buffer.cpp.o"
  "CMakeFiles/prema_support.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/prema_support.dir/log.cpp.o"
  "CMakeFiles/prema_support.dir/log.cpp.o.d"
  "CMakeFiles/prema_support.dir/stats.cpp.o"
  "CMakeFiles/prema_support.dir/stats.cpp.o.d"
  "CMakeFiles/prema_support.dir/time_ledger.cpp.o"
  "CMakeFiles/prema_support.dir/time_ledger.cpp.o.d"
  "libprema_support.a"
  "libprema_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
