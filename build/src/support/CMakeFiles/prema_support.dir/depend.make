# Empty dependencies file for prema_support.
# This may be replaced when dependencies are built.
