file(REMOVE_RECURSE
  "libprema_sim.a"
)
