file(REMOVE_RECURSE
  "CMakeFiles/prema_sim.dir/engine.cpp.o"
  "CMakeFiles/prema_sim.dir/engine.cpp.o.d"
  "CMakeFiles/prema_sim.dir/event_queue.cpp.o"
  "CMakeFiles/prema_sim.dir/event_queue.cpp.o.d"
  "libprema_sim.a"
  "libprema_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
