# Empty compiler generated dependencies file for prema_sim.
# This may be replaced when dependencies are built.
