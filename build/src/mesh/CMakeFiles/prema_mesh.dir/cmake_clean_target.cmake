file(REMOVE_RECURSE
  "libprema_mesh.a"
)
