file(REMOVE_RECURSE
  "CMakeFiles/prema_mesh.dir/advancing_front.cpp.o"
  "CMakeFiles/prema_mesh.dir/advancing_front.cpp.o.d"
  "CMakeFiles/prema_mesh.dir/geometry.cpp.o"
  "CMakeFiles/prema_mesh.dir/geometry.cpp.o.d"
  "CMakeFiles/prema_mesh.dir/spatial_grid.cpp.o"
  "CMakeFiles/prema_mesh.dir/spatial_grid.cpp.o.d"
  "CMakeFiles/prema_mesh.dir/subdomain.cpp.o"
  "CMakeFiles/prema_mesh.dir/subdomain.cpp.o.d"
  "libprema_mesh.a"
  "libprema_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
