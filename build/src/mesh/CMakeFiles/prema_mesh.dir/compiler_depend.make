# Empty compiler generated dependencies file for prema_mesh.
# This may be replaced when dependencies are built.
