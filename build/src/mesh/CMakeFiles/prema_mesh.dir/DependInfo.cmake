
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/advancing_front.cpp" "src/mesh/CMakeFiles/prema_mesh.dir/advancing_front.cpp.o" "gcc" "src/mesh/CMakeFiles/prema_mesh.dir/advancing_front.cpp.o.d"
  "/root/repo/src/mesh/geometry.cpp" "src/mesh/CMakeFiles/prema_mesh.dir/geometry.cpp.o" "gcc" "src/mesh/CMakeFiles/prema_mesh.dir/geometry.cpp.o.d"
  "/root/repo/src/mesh/spatial_grid.cpp" "src/mesh/CMakeFiles/prema_mesh.dir/spatial_grid.cpp.o" "gcc" "src/mesh/CMakeFiles/prema_mesh.dir/spatial_grid.cpp.o.d"
  "/root/repo/src/mesh/subdomain.cpp" "src/mesh/CMakeFiles/prema_mesh.dir/subdomain.cpp.o" "gcc" "src/mesh/CMakeFiles/prema_mesh.dir/subdomain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mol/CMakeFiles/prema_mol.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/prema_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dmcs/CMakeFiles/prema_dmcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prema_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
