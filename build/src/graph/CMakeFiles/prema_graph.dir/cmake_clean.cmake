file(REMOVE_RECURSE
  "CMakeFiles/prema_graph.dir/csr_graph.cpp.o"
  "CMakeFiles/prema_graph.dir/csr_graph.cpp.o.d"
  "CMakeFiles/prema_graph.dir/generators.cpp.o"
  "CMakeFiles/prema_graph.dir/generators.cpp.o.d"
  "CMakeFiles/prema_graph.dir/partition_metrics.cpp.o"
  "CMakeFiles/prema_graph.dir/partition_metrics.cpp.o.d"
  "libprema_graph.a"
  "libprema_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
