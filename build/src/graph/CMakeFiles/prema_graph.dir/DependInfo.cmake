
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr_graph.cpp" "src/graph/CMakeFiles/prema_graph.dir/csr_graph.cpp.o" "gcc" "src/graph/CMakeFiles/prema_graph.dir/csr_graph.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/prema_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/prema_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/partition_metrics.cpp" "src/graph/CMakeFiles/prema_graph.dir/partition_metrics.cpp.o" "gcc" "src/graph/CMakeFiles/prema_graph.dir/partition_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/prema_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
