file(REMOVE_RECURSE
  "libprema_graph.a"
)
