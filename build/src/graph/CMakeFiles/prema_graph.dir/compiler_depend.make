# Empty compiler generated dependencies file for prema_graph.
# This may be replaced when dependencies are built.
