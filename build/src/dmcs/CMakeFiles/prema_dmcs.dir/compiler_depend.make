# Empty compiler generated dependencies file for prema_dmcs.
# This may be replaced when dependencies are built.
