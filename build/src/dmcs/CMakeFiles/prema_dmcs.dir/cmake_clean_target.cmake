file(REMOVE_RECURSE
  "libprema_dmcs.a"
)
