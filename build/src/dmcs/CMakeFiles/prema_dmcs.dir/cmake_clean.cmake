file(REMOVE_RECURSE
  "CMakeFiles/prema_dmcs.dir/handler_registry.cpp.o"
  "CMakeFiles/prema_dmcs.dir/handler_registry.cpp.o.d"
  "CMakeFiles/prema_dmcs.dir/node.cpp.o"
  "CMakeFiles/prema_dmcs.dir/node.cpp.o.d"
  "CMakeFiles/prema_dmcs.dir/sim_machine.cpp.o"
  "CMakeFiles/prema_dmcs.dir/sim_machine.cpp.o.d"
  "CMakeFiles/prema_dmcs.dir/thread_machine.cpp.o"
  "CMakeFiles/prema_dmcs.dir/thread_machine.cpp.o.d"
  "libprema_dmcs.a"
  "libprema_dmcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_dmcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
