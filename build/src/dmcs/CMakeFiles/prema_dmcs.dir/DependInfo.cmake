
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dmcs/handler_registry.cpp" "src/dmcs/CMakeFiles/prema_dmcs.dir/handler_registry.cpp.o" "gcc" "src/dmcs/CMakeFiles/prema_dmcs.dir/handler_registry.cpp.o.d"
  "/root/repo/src/dmcs/node.cpp" "src/dmcs/CMakeFiles/prema_dmcs.dir/node.cpp.o" "gcc" "src/dmcs/CMakeFiles/prema_dmcs.dir/node.cpp.o.d"
  "/root/repo/src/dmcs/sim_machine.cpp" "src/dmcs/CMakeFiles/prema_dmcs.dir/sim_machine.cpp.o" "gcc" "src/dmcs/CMakeFiles/prema_dmcs.dir/sim_machine.cpp.o.d"
  "/root/repo/src/dmcs/thread_machine.cpp" "src/dmcs/CMakeFiles/prema_dmcs.dir/thread_machine.cpp.o" "gcc" "src/dmcs/CMakeFiles/prema_dmcs.dir/thread_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/prema_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/prema_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
