file(REMOVE_RECURSE
  "CMakeFiles/prema_ilb.dir/balancer.cpp.o"
  "CMakeFiles/prema_ilb.dir/balancer.cpp.o.d"
  "CMakeFiles/prema_ilb.dir/policies/diffusion.cpp.o"
  "CMakeFiles/prema_ilb.dir/policies/diffusion.cpp.o.d"
  "CMakeFiles/prema_ilb.dir/policies/gradient.cpp.o"
  "CMakeFiles/prema_ilb.dir/policies/gradient.cpp.o.d"
  "CMakeFiles/prema_ilb.dir/policies/master.cpp.o"
  "CMakeFiles/prema_ilb.dir/policies/master.cpp.o.d"
  "CMakeFiles/prema_ilb.dir/policies/multilist.cpp.o"
  "CMakeFiles/prema_ilb.dir/policies/multilist.cpp.o.d"
  "CMakeFiles/prema_ilb.dir/policies/work_stealing.cpp.o"
  "CMakeFiles/prema_ilb.dir/policies/work_stealing.cpp.o.d"
  "CMakeFiles/prema_ilb.dir/policy_factory.cpp.o"
  "CMakeFiles/prema_ilb.dir/policy_factory.cpp.o.d"
  "CMakeFiles/prema_ilb.dir/scheduler.cpp.o"
  "CMakeFiles/prema_ilb.dir/scheduler.cpp.o.d"
  "libprema_ilb.a"
  "libprema_ilb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_ilb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
