# Empty dependencies file for prema_ilb.
# This may be replaced when dependencies are built.
