
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ilb/balancer.cpp" "src/ilb/CMakeFiles/prema_ilb.dir/balancer.cpp.o" "gcc" "src/ilb/CMakeFiles/prema_ilb.dir/balancer.cpp.o.d"
  "/root/repo/src/ilb/policies/diffusion.cpp" "src/ilb/CMakeFiles/prema_ilb.dir/policies/diffusion.cpp.o" "gcc" "src/ilb/CMakeFiles/prema_ilb.dir/policies/diffusion.cpp.o.d"
  "/root/repo/src/ilb/policies/gradient.cpp" "src/ilb/CMakeFiles/prema_ilb.dir/policies/gradient.cpp.o" "gcc" "src/ilb/CMakeFiles/prema_ilb.dir/policies/gradient.cpp.o.d"
  "/root/repo/src/ilb/policies/master.cpp" "src/ilb/CMakeFiles/prema_ilb.dir/policies/master.cpp.o" "gcc" "src/ilb/CMakeFiles/prema_ilb.dir/policies/master.cpp.o.d"
  "/root/repo/src/ilb/policies/multilist.cpp" "src/ilb/CMakeFiles/prema_ilb.dir/policies/multilist.cpp.o" "gcc" "src/ilb/CMakeFiles/prema_ilb.dir/policies/multilist.cpp.o.d"
  "/root/repo/src/ilb/policies/work_stealing.cpp" "src/ilb/CMakeFiles/prema_ilb.dir/policies/work_stealing.cpp.o" "gcc" "src/ilb/CMakeFiles/prema_ilb.dir/policies/work_stealing.cpp.o.d"
  "/root/repo/src/ilb/policy_factory.cpp" "src/ilb/CMakeFiles/prema_ilb.dir/policy_factory.cpp.o" "gcc" "src/ilb/CMakeFiles/prema_ilb.dir/policy_factory.cpp.o.d"
  "/root/repo/src/ilb/scheduler.cpp" "src/ilb/CMakeFiles/prema_ilb.dir/scheduler.cpp.o" "gcc" "src/ilb/CMakeFiles/prema_ilb.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mol/CMakeFiles/prema_mol.dir/DependInfo.cmake"
  "/root/repo/build/src/dmcs/CMakeFiles/prema_dmcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/prema_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/prema_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
