file(REMOVE_RECURSE
  "libprema_ilb.a"
)
