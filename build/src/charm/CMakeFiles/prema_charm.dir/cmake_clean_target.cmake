file(REMOVE_RECURSE
  "libprema_charm.a"
)
