file(REMOVE_RECURSE
  "CMakeFiles/prema_charm.dir/charmlite.cpp.o"
  "CMakeFiles/prema_charm.dir/charmlite.cpp.o.d"
  "libprema_charm.a"
  "libprema_charm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prema_charm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
