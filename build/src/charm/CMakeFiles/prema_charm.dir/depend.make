# Empty dependencies file for prema_charm.
# This may be replaced when dependencies are built.
