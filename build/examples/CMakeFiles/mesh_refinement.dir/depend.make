# Empty dependencies file for mesh_refinement.
# This may be replaced when dependencies are built.
