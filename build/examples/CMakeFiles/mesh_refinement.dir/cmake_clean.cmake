file(REMOVE_RECURSE
  "CMakeFiles/mesh_refinement.dir/mesh_refinement.cpp.o"
  "CMakeFiles/mesh_refinement.dir/mesh_refinement.cpp.o.d"
  "mesh_refinement"
  "mesh_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
