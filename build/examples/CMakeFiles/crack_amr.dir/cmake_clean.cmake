file(REMOVE_RECURSE
  "CMakeFiles/crack_amr.dir/crack_amr.cpp.o"
  "CMakeFiles/crack_amr.dir/crack_amr.cpp.o.d"
  "crack_amr"
  "crack_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crack_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
