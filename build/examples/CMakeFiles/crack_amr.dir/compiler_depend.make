# Empty compiler generated dependencies file for crack_amr.
# This may be replaced when dependencies are built.
