# Empty dependencies file for policy_tour.
# This may be replaced when dependencies are built.
