file(REMOVE_RECURSE
  "CMakeFiles/policy_tour.dir/policy_tour.cpp.o"
  "CMakeFiles/policy_tour.dir/policy_tour.cpp.o.d"
  "policy_tour"
  "policy_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
