# Integration check for the tracing subsystem, run as a ctest case: execute
# an example with --trace-out and validate the emitted Chrome trace JSON with
# the trace_check tool.
#
# Expects: QUICKSTART (example binary), TRACE_CHECK (checker binary),
#          OUT_DIR (scratch directory for the trace file).

if(NOT QUICKSTART OR NOT TRACE_CHECK OR NOT OUT_DIR)
  message(FATAL_ERROR "run_trace_check.cmake needs QUICKSTART, TRACE_CHECK and OUT_DIR")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace_file "${OUT_DIR}/quickstart_trace.json")

execute_process(
  COMMAND "${QUICKSTART}" "--trace-out=${trace_file}"
  RESULT_VARIABLE run_result
  OUTPUT_VARIABLE run_output
  ERROR_VARIABLE run_output
)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "quickstart --trace-out failed (${run_result}):\n${run_output}")
endif()
if(NOT EXISTS "${trace_file}")
  message(FATAL_ERROR "quickstart did not write ${trace_file}")
endif()

execute_process(
  COMMAND "${TRACE_CHECK}" "${trace_file}" "--min-events=100"
  RESULT_VARIABLE check_result
  OUTPUT_VARIABLE check_output
  ERROR_VARIABLE check_output
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "trace_check rejected ${trace_file} (${check_result}):\n${check_output}")
endif()
message(STATUS "${check_output}")
