#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "bench_support/service_harness.hpp"
#include "bench_support/synthetic.hpp"

/// \file test_determinism.cpp
/// The determinism contract behind the paper reproduction: the emulated
/// machine advances virtual time from seeded RNGs only, so two runs of the
/// same configuration must agree bit-for-bit — makespan, ledger totals, and
/// the exported Chrome trace JSON byte-identically. Everything in Figures
/// 3-6 rests on this; a stray wall-clock read or iteration over a
/// pointer-keyed container would break it silently, which is why the trace
/// comparison is byte-wise on the files (and why prema_lint bans
/// steady_clock/rand()/time() outside the thread backend).

namespace prema::bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

SyntheticConfig small_config(const std::string& trace_base) {
  SyntheticConfig cfg;
  cfg.nprocs = 16;
  cfg.units_per_proc = 24;
  cfg.heavy_fraction = 0.5;
  cfg.seed = 2003;
  cfg.trace_out = trace_base;
  return cfg;
}

TEST(Determinism, Fig3WorkloadTracesAreByteIdentical) {
  const auto report_a =
      run_synthetic(System::kPremaImplicit, small_config("determinism_a.json"));
  const auto report_b =
      run_synthetic(System::kPremaImplicit, small_config("determinism_b.json"));

  // The cheap scalar checks first, for a readable failure...
  EXPECT_DOUBLE_EQ(report_a.makespan, report_b.makespan);
  EXPECT_EQ(report_a.migrations, report_b.migrations);
  EXPECT_EQ(report_a.executed, report_b.executed);
  EXPECT_DOUBLE_EQ(report_a.comp_stddev, report_b.comp_stddev);

  // ...then the real contract: the full event streams, byte for byte.
  ASSERT_FALSE(report_a.trace_file.empty());
  ASSERT_FALSE(report_b.trace_file.empty());
  const std::string bytes_a = slurp(report_a.trace_file);
  const std::string bytes_b = slurp(report_b.trace_file);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_TRUE(bytes_a == bytes_b)
      << "trace JSON diverged between two identically seeded runs ("
      << bytes_a.size() << " vs " << bytes_b.size() << " bytes)";
}

TEST(Determinism, FaultInjectedTracesAreByteIdentical) {
  // The fault plan draws every wire fate from seeded per-link RNG streams, so
  // a faulty run is exactly as reproducible as a clean one: same profile +
  // same fault seed = the same drops, duplicates, reorderings, retransmits
  // and acks, event for event, byte for byte in the exported trace.
  auto cfg_a = small_config("determinism_fault_a.json");
  cfg_a.fault_profile = "lossy1pct";
  cfg_a.fault_seed = 13;
  auto cfg_b = small_config("determinism_fault_b.json");
  cfg_b.fault_profile = "lossy1pct";
  cfg_b.fault_seed = 13;

  const auto report_a = run_synthetic(System::kPremaImplicit, cfg_a);
  const auto report_b = run_synthetic(System::kPremaImplicit, cfg_b);
  EXPECT_DOUBLE_EQ(report_a.makespan, report_b.makespan);
  EXPECT_EQ(report_a.executed, report_b.executed);
  ASSERT_FALSE(report_a.trace_file.empty());
  ASSERT_FALSE(report_b.trace_file.empty());
  const std::string bytes_a = slurp(report_a.trace_file);
  const std::string bytes_b = slurp(report_b.trace_file);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_TRUE(bytes_a == bytes_b)
      << "fault-injected trace JSON diverged between two identically seeded "
         "runs ("
      << bytes_a.size() << " vs " << bytes_b.size() << " bytes)";

  // A different fault seed must give a different schedule (the knob works).
  auto cfg_c = small_config("determinism_fault_c.json");
  cfg_c.fault_profile = "lossy1pct";
  cfg_c.fault_seed = 14;
  const auto report_c = run_synthetic(System::kPremaImplicit, cfg_c);
  EXPECT_EQ(report_c.executed, report_a.executed);  // still exactly-once
  EXPECT_TRUE(bytes_a != slurp(report_c.trace_file));
}

TEST(Determinism, ServiceModeTracesAreByteIdentical) {
  // Service mode layers timer-driven arrivals, epoch ticks and a gated
  // termination phase on top of the emulator — all of it still seeded, so
  // the contract extends: identical seeds give byte-identical service
  // traces, arrival for arrival, completion for completion.
  auto scenario = [](const std::string& trace_out) {
    ServiceScenario sc;
    sc.backend = "sim";
    sc.nprocs = 8;
    sc.duration_s = 0.12;
    sc.policy = "work_stealing";
    sc.arrivals.rate_per_proc = 30.0;
    sc.trace_out = trace_out;
    return sc;
  };
  const auto report_a = run_service_scenario(scenario("determinism_svc_a.json"));
  const auto report_b = run_service_scenario(scenario("determinism_svc_b.json"));

  EXPECT_TRUE(report_a.audit_ok);
  EXPECT_DOUBLE_EQ(report_a.makespan, report_b.makespan);
  EXPECT_EQ(report_a.arrivals, report_b.arrivals);
  EXPECT_EQ(report_a.completions, report_b.completions);
  EXPECT_EQ(report_a.migrations, report_b.migrations);

  ASSERT_FALSE(report_a.trace_file.empty());
  ASSERT_FALSE(report_b.trace_file.empty());
  const std::string bytes_a = slurp(report_a.trace_file);
  const std::string bytes_b = slurp(report_b.trace_file);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_TRUE(bytes_a == bytes_b)
      << "service trace JSON diverged between two identically seeded runs ("
      << bytes_a.size() << " vs " << bytes_b.size() << " bytes)";
}

TEST(Determinism, EveryScalarPolicyTraceIsByteIdentical) {
  // The topology-aware PolicyContext refactor must not perturb the scalar
  // paper policies: each of them still produces byte-identical traces across
  // identically seeded runs — with unit coordinates registered (registration
  // is a no-op while topology accounting is off, so the migration wire image
  // and hence every traced byte stays exactly as before the refactor).
  for (const char* policy : {"null", "work_stealing", "diffusion", "gradient",
                             "master", "multilist"}) {
    auto cfg_a = small_config(std::string("determinism_") + policy + "_a.json");
    cfg_a.policy = policy;
    auto cfg_b = small_config(std::string("determinism_") + policy + "_b.json");
    cfg_b.policy = policy;
    const auto report_a = run_synthetic(System::kPremaImplicit, cfg_a);
    const auto report_b = run_synthetic(System::kPremaImplicit, cfg_b);
    EXPECT_TRUE(report_a.audit_ok) << policy;
    EXPECT_DOUBLE_EQ(report_a.makespan, report_b.makespan) << policy;
    EXPECT_EQ(report_a.migrations, report_b.migrations) << policy;
    ASSERT_FALSE(report_a.trace_file.empty());
    ASSERT_FALSE(report_b.trace_file.empty());
    const std::string bytes_a = slurp(report_a.trace_file);
    ASSERT_FALSE(bytes_a.empty());
    EXPECT_TRUE(bytes_a == slurp(report_b.trace_file))
        << "trace JSON diverged for scalar policy " << policy;
  }
}

TEST(Determinism, TopologyPoliciesTracesAreByteIdentical) {
  // The topology-aware policies add coordinate gossip, histogram exchanges,
  // and a migration-image appendix — all of it seeded and map-ordered, so
  // the byte-for-byte contract must extend to them unchanged.
  for (const char* policy : {"sfc", "cluster"}) {
    auto cfg_a = small_config(std::string("determinism_") + policy + "_a.json");
    cfg_a.policy = policy;
    auto cfg_b = small_config(std::string("determinism_") + policy + "_b.json");
    cfg_b.policy = policy;
    const auto report_a = run_synthetic(System::kPremaImplicit, cfg_a);
    const auto report_b = run_synthetic(System::kPremaImplicit, cfg_b);
    EXPECT_TRUE(report_a.audit_ok) << policy;
    EXPECT_DOUBLE_EQ(report_a.makespan, report_b.makespan) << policy;
    ASSERT_FALSE(report_a.trace_file.empty());
    ASSERT_FALSE(report_b.trace_file.empty());
    const std::string bytes_a = slurp(report_a.trace_file);
    ASSERT_FALSE(bytes_a.empty());
    EXPECT_TRUE(bytes_a == slurp(report_b.trace_file))
        << "trace JSON diverged for topology policy " << policy;
  }
}

TEST(Determinism, ExplicitPollingTracesAreByteIdenticalToo) {
  const auto report_a =
      run_synthetic(System::kPremaExplicit, small_config("determinism_c.json"));
  const auto report_b =
      run_synthetic(System::kPremaExplicit, small_config("determinism_d.json"));
  EXPECT_DOUBLE_EQ(report_a.makespan, report_b.makespan);
  ASSERT_FALSE(report_a.trace_file.empty());
  ASSERT_FALSE(report_b.trace_file.empty());
  EXPECT_TRUE(slurp(report_a.trace_file) == slurp(report_b.trace_file));
}

}  // namespace
}  // namespace prema::bench
