#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "dmcs/thread_machine.hpp"
#include "prema/runtime.hpp"

/// \file test_stress_thread.cpp
/// Concurrency stress for the threaded backend. These tests exist to give
/// ThreadSanitizer (ctest -L thread on the tsan preset) real contention to
/// chew on: worker threads sending into each other's inboxes, the preemptive
/// polling thread dispatching system handlers mid-work-unit, and balancing
/// policies migrating objects while senders keep messaging them. Sizes are
/// modest — TSan is ~10x and CI runners are small — but every shared path
/// (inbox, timers, ledger, MOL directory, scheduler, trace sink) gets hit
/// from at least two threads.

namespace prema {
namespace {

using dmcs::HandlerId;
using dmcs::Message;
using dmcs::MsgKind;
using dmcs::Node;
using util::ByteReader;
using util::ByteWriter;

class Widget : public mol::MobileObject {
 public:
  explicit Widget(std::int64_t h = 0) : hits(h) {}
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(util::ByteWriter& w) const override { w.put<std::int64_t>(hits); }
  static std::unique_ptr<mol::MobileObject> make(util::ByteReader& r) {
    return std::make_unique<Widget>(r.get<std::int64_t>());
  }
  std::int64_t hits;
};

Message ttl_msg(HandlerId h, MsgKind kind, std::uint32_t ttl) {
  ByteWriter w;
  w.put<std::uint32_t>(ttl);
  return Message{h, kNoProc, kind, w.take()};
}

/// App messages become FIFO work units (the same minimal program shape the
/// DMCS unit tests use).
class QueueProgram : public dmcs::Program {
 public:
  std::function<void(Node&)> on_main;

  void main(Node& n) override {
    if (on_main) on_main(n);
  }
  void deliver_app(Node&, Message&& m) override { queue_.push_back(std::move(m)); }
  bool service(Node& n) override {
    if (queue_.empty()) return false;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    n.execute(std::move(m), nullptr);
    return true;
  }

 private:
  std::deque<Message> queue_;
};

// ---------------------------------------------------------------------------
// Raw DMCS: app relays on the workers racing system relays on the pollers.
// ---------------------------------------------------------------------------

TEST(ThreadStress, AppAndSystemRelayStorm) {
  constexpr int kProcs = 4;
  constexpr std::uint32_t kTtl = 8;
  constexpr int kAppSeeds = 10;  ///< per rank
  constexpr int kSysSeeds = 5;   ///< per rank

  dmcs::ThreadConfig cfg;
  cfg.nprocs = kProcs;
  cfg.polling.mode = dmcs::PollingMode::kPreemptive;
  cfg.polling.interval_s = 1e-3;
  dmcs::ThreadMachine m(cfg);

  std::atomic<int> app_handled{0};
  std::atomic<int> sys_handled{0};
  HandlerId relay = m.registry().add("relay", [&](Node& n, Message&& msg) {
    ++app_handled;
    ByteReader r(msg.payload);
    const auto ttl = r.get<std::uint32_t>();
    n.compute_seconds(5e-5, util::TimeCategory::kComputation);
    if (ttl > 0) {
      n.send((n.rank() + 1) % kProcs, ttl_msg(msg.handler, MsgKind::kApp, ttl - 1));
    }
  });
  HandlerId sys_relay = m.registry().add("sys_relay", [&](Node& n, Message&& msg) {
    ++sys_handled;
    ByteReader r(msg.payload);
    const auto ttl = r.get<std::uint32_t>();
    if (ttl > 0) {
      n.send((n.rank() + 2) % kProcs,
             ttl_msg(msg.handler, MsgKind::kSystem, ttl - 1));
    }
  });

  m.run([&](ProcId) {
    auto prog = std::make_unique<QueueProgram>();
    prog->on_main = [&, relay, sys_relay](Node& n) {
      for (int i = 0; i < kAppSeeds; ++i) {
        n.send((n.rank() + 1) % kProcs, ttl_msg(relay, MsgKind::kApp, kTtl));
      }
      for (int i = 0; i < kSysSeeds; ++i) {
        n.send((n.rank() + 2) % kProcs, ttl_msg(sys_relay, MsgKind::kSystem, kTtl));
      }
    };
    return prog;
  });

  const int expected_app = kProcs * kAppSeeds * static_cast<int>(kTtl + 1);
  const int expected_sys = kProcs * kSysSeeds * static_cast<int>(kTtl + 1);
  EXPECT_EQ(app_handled.load(), expected_app);
  EXPECT_EQ(sys_handled.load(), expected_sys);

  // Every send was matched by exactly one receive (NodeStats are updated from
  // both the worker and the polling thread; a lost update shows up here).
  std::uint64_t sent = 0, received = 0;
  for (ProcId p = 0; p < kProcs; ++p) {
    sent += m.node(p).stats().sent;
    received += m.node(p).stats().received;
  }
  EXPECT_EQ(sent, received);
  EXPECT_EQ(sent, static_cast<std::uint64_t>(expected_app + expected_sys));
}

// ---------------------------------------------------------------------------
// Full stack: work stealing migrates objects while their handlers keep
// sending them more work, so routes chase forwarding addresses concurrently
// with migration installs.
// ---------------------------------------------------------------------------

TEST(ThreadStress, SelfRefillingUnitsSurviveConcurrentStealing) {
  constexpr int kProcs = 4;
  constexpr int kObjects = 16;
  constexpr std::int64_t kRounds = 4;  ///< messages each object processes

  dmcs::ThreadConfig tcfg;
  tcfg.nprocs = kProcs;
  tcfg.mflops = 2000.0;
  tcfg.polling.mode = dmcs::PollingMode::kPreemptive;
  tcfg.polling.interval_s = 1e-3;
  dmcs::ThreadMachine machine(tcfg);

  RuntimeConfig rcfg;
  rcfg.policy = "work_stealing";
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Widget::make);

  auto executed = std::make_shared<std::atomic<std::int64_t>>(0);
  const auto work = rt.register_object_handler(
      "work", [executed](Context& ctx, mol::MobileObject& obj, ByteReader&,
                         const mol::Delivery& d) {
        auto& widget = static_cast<Widget&>(obj);
        widget.hits++;
        ctx.compute(2.0);  // ~1 ms
        executed->fetch_add(1);
        // Refill: message the object we are running on. It may migrate away
        // before the message lands, forcing a forwarded route.
        if (widget.hits < kRounds) ctx.message(d.target, d.handler, {}, 1.0);
      });

  rt.set_main([&, work](Context& ctx) {
    if (ctx.rank() != 0) return;
    for (int i = 0; i < kObjects; ++i) {
      auto ptr = ctx.add_object(std::make_unique<Widget>());
      ctx.message(ptr, work, {}, 1.0);
    }
  });

  rt.run();
  EXPECT_EQ(executed->load(), kObjects * kRounds);
  EXPECT_TRUE(rt.termination_detected());

  int widgets = 0;
  std::int64_t hit_sum = 0;
  for (ProcId p = 0; p < kProcs; ++p) {
    auto& mol = rt.mol_at(p);
    for (const auto& ptr : mol.local_ptrs()) {
      ++widgets;
      hit_sum += static_cast<Widget*>(mol.find(ptr))->hits;
    }
  }
  EXPECT_EQ(widgets, kObjects);
  EXPECT_EQ(hit_sum, kObjects * kRounds);
}

// ---------------------------------------------------------------------------
// Per-sender FIFO must hold on real threads too, where delivery, stealing and
// the resequencing buffer race for the node state lock.
// ---------------------------------------------------------------------------

TEST(ThreadStress, PerSenderOrderHoldsUnderRealThreads) {
  constexpr int kProcs = 4;
  constexpr int kObjects = 8;
  constexpr std::int64_t kMessages = 6;

  dmcs::ThreadConfig tcfg;
  tcfg.nprocs = kProcs;
  tcfg.mflops = 2000.0;
  tcfg.polling.mode = dmcs::PollingMode::kPreemptive;
  tcfg.polling.interval_s = 1e-3;
  dmcs::ThreadMachine machine(tcfg);

  RuntimeConfig rcfg;
  rcfg.policy = "work_stealing";
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Widget::make);

  struct Seen {
    std::mutex mu;
    std::map<std::uint32_t, std::vector<std::int64_t>> by_object;
  };
  auto seen = std::make_shared<Seen>();
  const auto work = rt.register_object_handler(
      "work", [seen](Context& ctx, mol::MobileObject& obj, ByteReader& r,
                     const mol::Delivery& d) {
        static_cast<Widget&>(obj).hits++;
        {
          std::lock_guard<std::mutex> g(seen->mu);
          seen->by_object[d.target.index].push_back(r.get<std::int64_t>());
        }
        ctx.compute(1.0);
      });

  rt.set_main([&, work](Context& ctx) {
    if (ctx.rank() != 0) return;
    std::vector<mol::MobilePtr> ptrs;
    for (int i = 0; i < kObjects; ++i) {
      ptrs.push_back(ctx.add_object(std::make_unique<Widget>()));
    }
    for (std::int64_t k = 0; k < kMessages; ++k) {
      for (auto& ptr : ptrs) {
        ByteWriter w;
        w.put<std::int64_t>(k);
        ctx.message(ptr, work, w.take(), 1.0);
      }
    }
  });

  rt.run();
  std::lock_guard<std::mutex> g(seen->mu);
  ASSERT_EQ(seen->by_object.size(), static_cast<std::size_t>(kObjects));
  for (const auto& [idx, values] : seen->by_object) {
    ASSERT_EQ(values.size(), static_cast<std::size_t>(kMessages))
        << "object " << idx;
    for (std::int64_t k = 0; k < kMessages; ++k) {
      EXPECT_EQ(values[static_cast<std::size_t>(k)], k) << "object " << idx;
    }
  }
}

}  // namespace
}  // namespace prema
