#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "dmcs/sim_machine.hpp"
#include "dmcs/thread_machine.hpp"
#include "support/byte_buffer.hpp"

namespace prema::dmcs {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::TimeCategory;

Message make_msg(HandlerId h, MsgKind kind, double value) {
  ByteWriter w;
  w.put<double>(value);
  return Message{h, kNoProc, kind, w.take()};
}

double read_value(const Message& m) {
  ByteReader r(m.payload);
  return r.get<double>();
}

/// Minimal PREMA-style program: application messages become queued work units
/// executed FIFO through Node::execute.
class QueueProgram : public Program {
 public:
  std::function<void(QueueProgram&, Node&)> on_main;

  void main(Node& n) override {
    if (on_main) on_main(*this, n);
  }
  void deliver_app(Node&, Message&& m) override { queue_.push_back(std::move(m)); }
  bool service(Node& n) override {
    if (queue_.empty()) return false;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    n.execute(std::move(m), nullptr);
    return true;
  }

  std::deque<Message> queue_;
};

struct Record {
  ProcId rank;
  double time;
};

struct Recorder {
  std::mutex mu;
  std::vector<Record> records;
  void add(ProcId rank, double time) {
    std::lock_guard<std::mutex> g(mu);
    records.push_back({rank, time});
  }
};

// ---------------------------------------------------------------------------
// SimMachine
// ---------------------------------------------------------------------------

TEST(SimDmcs, PingPongRoundTrip) {
  sim::MachineConfig cfg;
  cfg.nprocs = 2;
  SimMachine m(cfg);
  Recorder rec;
  HandlerId pong = m.registry().add("pong", [&](Node& n, Message&&) {
    rec.add(n.rank(), n.now());
  });
  HandlerId ping = m.registry().add("ping", [&, pong](Node& n, Message&& msg) {
    rec.add(n.rank(), n.now());
    n.send(msg.src, Message{pong, kNoProc, MsgKind::kApp, {}});
  });
  const double makespan = m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [&, ping](QueueProgram&, Node& n) {
        n.send(1, Message{ping, kNoProc, MsgKind::kApp, {}});
      };
    }
    return prog;
  });
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[0].rank, 1);
  EXPECT_EQ(rec.records[1].rank, 0);
  // Two one-way trips, each at least the wire latency.
  EXPECT_GE(makespan, 2 * cfg.net.latency_s);
  EXPECT_GT(m.ledger(0).get(TimeCategory::kMessaging), 0.0);
  EXPECT_GT(m.ledger(1).get(TimeCategory::kMessaging), 0.0);
  EXPECT_EQ(m.sim_node(0).stats().sent, 1u);
  EXPECT_EQ(m.sim_node(1).stats().sent, 1u);
}

TEST(SimDmcs, WorkUnitsChargeComputation) {
  sim::MachineConfig cfg;
  cfg.nprocs = 1;
  SimMachine m(cfg);
  HandlerId work = m.registry().add("work", [](Node& n, Message&& msg) {
    n.compute_seconds(read_value(msg), TimeCategory::kComputation);
  });
  const double makespan = m.run([&](ProcId) {
    auto prog = std::make_unique<QueueProgram>();
    prog->on_main = [work](QueueProgram& q, Node&) {
      for (int i = 0; i < 3; ++i) q.queue_.push_back(make_msg(work, MsgKind::kApp, 0.1));
    };
    return prog;
  });
  EXPECT_NEAR(m.ledger(0).get(TimeCategory::kComputation), 0.3, 1e-9);
  EXPECT_NEAR(makespan, 0.3, 1e-3);
  EXPECT_EQ(m.sim_node(0).stats().work_units_executed, 3u);
}

TEST(SimDmcs, ExplicitModeDelaysSystemMessageUntilUnitEnds) {
  sim::MachineConfig cfg;
  cfg.nprocs = 2;
  PollingConfig polling;  // explicit by default
  SimMachine m(cfg, polling);
  Recorder rec;
  HandlerId work = m.registry().add("work", [](Node& n, Message&& msg) {
    n.compute_seconds(read_value(msg), TimeCategory::kComputation);
  });
  HandlerId sys = m.registry().add("sys", [&](Node& n, Message&&) {
    rec.add(n.rank(), n.now());
  });
  m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [work](QueueProgram& q, Node&) {
        q.queue_.push_back(make_msg(work, MsgKind::kApp, 1.0));
      };
    } else {
      prog->on_main = [sys](QueueProgram&, Node& n) {
        n.send(0, Message{sys, kNoProc, MsgKind::kSystem, {}});
      };
    }
    return prog;
  });
  ASSERT_EQ(rec.records.size(), 1u);
  // The system message arrived ~130us in, but explicit polling only sees it
  // after the 1s work unit completes.
  EXPECT_GE(rec.records[0].time, 1.0);
}

TEST(SimDmcs, PreemptiveModeHandlesSystemMessageAtTick) {
  sim::MachineConfig cfg;
  cfg.nprocs = 2;
  PollingConfig polling;
  polling.mode = PollingMode::kPreemptive;
  polling.interval_s = 0.01;
  SimMachine m(cfg, polling);
  Recorder rec;
  HandlerId work = m.registry().add("work", [](Node& n, Message&& msg) {
    n.compute_seconds(read_value(msg), TimeCategory::kComputation);
  });
  HandlerId sys = m.registry().add("sys", [&](Node& n, Message&&) {
    rec.add(n.rank(), n.now());
  });
  const double makespan = m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [work](QueueProgram& q, Node&) {
        q.queue_.push_back(make_msg(work, MsgKind::kApp, 1.0));
      };
    } else {
      prog->on_main = [sys](QueueProgram&, Node& n) {
        n.send(0, Message{sys, kNoProc, MsgKind::kSystem, {}});
      };
    }
    return prog;
  });
  ASSERT_EQ(rec.records.size(), 1u);
  // Handled at a polling tick: after arrival (~130us) but well before the 1s
  // unit completes — within a few polling periods.
  EXPECT_GT(rec.records[0].time, 100e-6);
  EXPECT_LT(rec.records[0].time, 5 * polling.interval_s);
  EXPECT_GT(m.ledger(0).get(TimeCategory::kPolling), 0.0);
  // The unit still runs to completion.
  EXPECT_GE(makespan, 1.0);
  EXPECT_NEAR(m.ledger(0).get(TimeCategory::kComputation), 1.0, 1e-9);
}

TEST(SimDmcs, SilentTicksChargePollingInBulk) {
  sim::MachineConfig cfg;
  cfg.nprocs = 1;
  PollingConfig polling;
  polling.mode = PollingMode::kPreemptive;
  polling.interval_s = 0.01;
  polling.silent_tick_cost_s = 1e-6;
  SimMachine m(cfg, polling);
  HandlerId work = m.registry().add("work", [](Node& n, Message&& msg) {
    n.compute_seconds(read_value(msg), TimeCategory::kComputation);
  });
  m.run([&](ProcId) {
    auto prog = std::make_unique<QueueProgram>();
    prog->on_main = [work](QueueProgram& q, Node&) {
      q.queue_.push_back(make_msg(work, MsgKind::kApp, 1.0));
    };
    return prog;
  });
  // ~100 ticks during the 1s unit, none with pending messages.
  EXPECT_NEAR(m.ledger(0).get(TimeCategory::kPolling), 100e-6, 10e-6);
}

TEST(SimDmcs, WorkUnitSendsAreDeferredToCompletion) {
  sim::MachineConfig cfg;
  cfg.nprocs = 2;
  SimMachine m(cfg);
  Recorder rec;
  HandlerId note = m.registry().add("note", [&](Node& n, Message&&) {
    rec.add(n.rank(), n.now());
  });
  HandlerId work = m.registry().add("work", [note](Node& n, Message&& msg) {
    n.send(1, Message{note, kNoProc, MsgKind::kApp, {}});  // sent "during" the unit
    n.compute_seconds(read_value(msg), TimeCategory::kComputation);
  });
  m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [work](QueueProgram& q, Node&) {
        q.queue_.push_back(make_msg(work, MsgKind::kApp, 0.5));
      };
    }
    return prog;
  });
  ASSERT_EQ(rec.records.size(), 1u);
  // The unit logically occupies [0, 0.5); its output message cannot be seen
  // before the unit's span ends.
  EXPECT_GE(rec.records[0].time, 0.5);
}

TEST(SimDmcs, ZeroCostUnitCompletesInline) {
  sim::MachineConfig cfg;
  cfg.nprocs = 1;
  SimMachine m(cfg);
  int completions = 0;
  HandlerId work = m.registry().add("work", [](Node&, Message&&) {});
  class P : public Program {
   public:
    P(HandlerId work, int* completions) : work_(work), completions_(completions) {}
    void main(Node&) override { pending_ = 5; }
    bool service(Node& n) override {
      if (pending_ == 0) return false;
      --pending_;
      n.execute(Message{work_, kNoProc, MsgKind::kApp, {}}, [this] { ++*completions_; });
      return true;
    }

   private:
    HandlerId work_;
    int* completions_;
    int pending_ = 0;
  };
  const double makespan =
      m.run([&](ProcId) { return std::make_unique<P>(work, &completions); });
  EXPECT_EQ(completions, 5);
  EXPECT_DOUBLE_EQ(makespan, 0.0);
}

TEST(SimDmcs, RunsAreDeterministic) {
  auto run_once = [] {
    sim::MachineConfig cfg;
    cfg.nprocs = 8;
    cfg.seed = 77;
    SimMachine m(cfg);
    HandlerId work = m.registry().add("work", [](Node& n, Message&& msg) {
      n.compute_seconds(read_value(msg), TimeCategory::kComputation);
    });
    const double makespan = m.run([&](ProcId p) {
      auto prog = std::make_unique<QueueProgram>();
      prog->on_main = [work, p](QueueProgram& q, Node& n) {
        for (int i = 0; i < 10; ++i) {
          q.queue_.push_back(make_msg(work, MsgKind::kApp, 0.001 * (p + 1)));
          n.send((p + 1) % 8, make_msg(work, MsgKind::kApp, 0.002));
        }
      };
      return prog;
    });
    return makespan;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(SimDmcs, IdleTailIsChargedToMakespan) {
  sim::MachineConfig cfg;
  cfg.nprocs = 2;
  SimMachine m(cfg);
  HandlerId work = m.registry().add("work", [](Node& n, Message&& msg) {
    n.compute_seconds(read_value(msg), TimeCategory::kComputation);
  });
  const double makespan = m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [work](QueueProgram& q, Node&) {
        q.queue_.push_back(make_msg(work, MsgKind::kApp, 2.0));
      };
    }
    return prog;
  });
  // Node 1 did nothing; its ledger must still sum to the makespan, all idle.
  EXPECT_NEAR(m.ledger(1).total(), makespan, 1e-9);
  EXPECT_NEAR(m.ledger(1).get(TimeCategory::kIdle), makespan, 1e-9);
}

TEST(SimDmcsDeathTest, NestedExecuteAborts) {
  sim::MachineConfig cfg;
  cfg.nprocs = 1;
  auto boom = [&] {
    SimMachine m(cfg);
    HandlerId work = m.registry().add("work", [](Node& n, Message&&) {
      n.execute(Message{1, kNoProc, MsgKind::kApp, {}}, nullptr);
    });
    m.run([&](ProcId) {
      auto prog = std::make_unique<QueueProgram>();
      prog->on_main = [work](QueueProgram& q, Node&) {
        q.queue_.push_back(make_msg(work, MsgKind::kApp, 0.1));
      };
      return prog;
    });
  };
  EXPECT_DEATH(boom(), "work-unit body");
}

// ---------------------------------------------------------------------------
// ThreadMachine
// ---------------------------------------------------------------------------

TEST(ThreadDmcs, PingPongRoundTrip) {
  ThreadConfig cfg;
  cfg.nprocs = 2;
  ThreadMachine m(cfg);
  std::atomic<int> pings{0}, pongs{0};
  HandlerId pong = m.registry().add("pong", [&](Node&, Message&&) { ++pongs; });
  HandlerId ping = m.registry().add("ping", [&, pong](Node& n, Message&& msg) {
    ++pings;
    n.send(msg.src, Message{pong, kNoProc, MsgKind::kApp, {}});
  });
  m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [ping](QueueProgram&, Node& n) {
        n.send(1, Message{ping, kNoProc, MsgKind::kApp, {}});
      };
    }
    return prog;
  });
  EXPECT_EQ(pings.load(), 1);
  EXPECT_EQ(pongs.load(), 1);
}

TEST(ThreadDmcs, AllScatteredWorkExecutes) {
  ThreadConfig cfg;
  cfg.nprocs = 4;
  ThreadMachine m(cfg);
  std::atomic<int> executed{0};
  HandlerId work = m.registry().add("work", [&](Node& n, Message&&) {
    n.compute_seconds(1e-4, TimeCategory::kComputation);
    ++executed;
  });
  m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [work](QueueProgram&, Node& n) {
        for (int i = 0; i < 20; ++i) {
          n.send(i % 4, Message{work, kNoProc, MsgKind::kApp, {}});
        }
      };
    }
    return prog;
  });
  EXPECT_EQ(executed.load(), 20);
}

TEST(ThreadDmcs, PreemptivePollingRunsSystemHandlerDuringWorkUnit) {
  ThreadConfig cfg;
  cfg.nprocs = 2;
  cfg.polling.mode = PollingMode::kPreemptive;
  cfg.polling.interval_s = 2e-3;
  ThreadMachine m(cfg);
  std::atomic<bool> was_executing{false};
  std::atomic<int> sys_runs{0};
  HandlerId sys = m.registry().add("sys", [&](Node& n, Message&&) {
    was_executing.store(n.executing());
    ++sys_runs;
  });
  HandlerId work = m.registry().add("work", [](Node& n, Message&&) {
    n.compute_seconds(0.15, TimeCategory::kComputation);
  });
  m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [work](QueueProgram& q, Node&) {
        q.queue_.push_back(Message{work, kNoProc, MsgKind::kApp, {}});
      };
    } else {
      prog->on_main = [sys](QueueProgram&, Node& n) {
        n.send(0, Message{sys, kNoProc, MsgKind::kSystem, {}});
      };
    }
    return prog;
  });
  EXPECT_EQ(sys_runs.load(), 1);
  // The polling thread handled the system message while the 150ms work unit
  // was still running on the worker thread.
  EXPECT_TRUE(was_executing.load());
}

TEST(ThreadDmcs, ExplicitModeDefersSystemToWorker) {
  ThreadConfig cfg;
  cfg.nprocs = 2;
  ThreadMachine m(cfg);
  std::atomic<bool> was_executing{true};
  HandlerId sys = m.registry().add("sys", [&](Node& n, Message&&) {
    was_executing.store(n.executing());
  });
  HandlerId work = m.registry().add("work", [](Node& n, Message&&) {
    n.compute_seconds(0.05, TimeCategory::kComputation);
  });
  m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [work](QueueProgram& q, Node&) {
        q.queue_.push_back(Message{work, kNoProc, MsgKind::kApp, {}});
      };
    } else {
      prog->on_main = [sys](QueueProgram&, Node& n) {
        n.send(0, Message{sys, kNoProc, MsgKind::kSystem, {}});
      };
    }
    return prog;
  });
  // Without a polling thread, the system handler runs on the worker between
  // units — never concurrently with one.
  EXPECT_FALSE(was_executing.load());
}

}  // namespace
}  // namespace prema::dmcs
