#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "ilb/policies/cluster.hpp"
#include "ilb/policies/diffusion.hpp"
#include "ilb/policies/gradient.hpp"
#include "ilb/policies/master.hpp"
#include "ilb/policies/multilist.hpp"
#include "ilb/policies/sfc.hpp"
#include "ilb/policies/work_stealing.hpp"
#include "ilb/policy.hpp"
#include "ilb/scheduler.hpp"

namespace prema::ilb {
namespace {

mol::Delivery make_delivery(mol::MobilePtr target, double weight,
                            std::uint64_t delivery_no, std::int64_t tagval = 0) {
  mol::Delivery d;
  d.target = target;
  d.handler = 1;
  d.origin = 0;
  d.weight = weight;
  d.delivery_no = delivery_no;
  util::ByteWriter w;
  w.put<std::int64_t>(tagval);
  d.payload = w.take();
  return d;
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(Scheduler, FifoWithinObject) {
  Scheduler s;
  const mol::MobilePtr a{0, 1};
  s.enqueue(make_delivery(a, 1.0, 0, 10));
  s.enqueue(make_delivery(a, 1.0, 1, 11));
  s.enqueue(make_delivery(a, 1.0, 2, 12));
  EXPECT_EQ(s.queued_units(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    auto d = s.pick();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->delivery_no, i);
    s.complete();
  }
  EXPECT_FALSE(s.pick().has_value());
}

TEST(Scheduler, RoundRobinAcrossObjects) {
  Scheduler s;
  const mol::MobilePtr a{0, 1}, b{0, 2};
  s.enqueue(make_delivery(a, 1.0, 0));
  s.enqueue(make_delivery(a, 1.0, 1));
  s.enqueue(make_delivery(b, 1.0, 0));
  s.enqueue(make_delivery(b, 1.0, 1));
  std::vector<mol::MobilePtr> order;
  while (auto d = s.pick()) {
    order.push_back(d->target);
    s.complete();
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[1], b);
  EXPECT_EQ(order[2], a);
  EXPECT_EQ(order[3], b);
}

TEST(Scheduler, LoadTracksWeightsAndCounts) {
  Scheduler s;
  const mol::MobilePtr a{0, 1};
  s.enqueue(make_delivery(a, 2.5, 0));
  s.enqueue(make_delivery(a, 0.5, 1));
  EXPECT_DOUBLE_EQ(s.queued_weight(), 3.0);
  EXPECT_DOUBLE_EQ(s.load(true), 3.0);
  EXPECT_DOUBLE_EQ(s.load(false), 2.0);
  (void)s.pick();
  EXPECT_DOUBLE_EQ(s.queued_weight(), 0.5);
  s.complete();
}

TEST(Scheduler, TakeQueuedRemovesObject) {
  Scheduler s;
  const mol::MobilePtr a{0, 1}, b{0, 2};
  s.enqueue(make_delivery(a, 1.0, 0));
  s.enqueue(make_delivery(a, 1.0, 1));
  s.enqueue(make_delivery(b, 1.0, 0));
  auto taken = s.take_queued(a);
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(s.queued_units(), 1u);
  auto d = s.pick();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->target, b);
  s.complete();
  EXPECT_TRUE(s.take_queued(a).empty());
}

TEST(Scheduler, MigratableLoadsExcludeExecutingObject) {
  Scheduler s;
  const mol::MobilePtr a{0, 1}, b{0, 2};
  s.enqueue(make_delivery(a, 1.0, 0));
  s.enqueue(make_delivery(a, 5.0, 1));
  s.enqueue(make_delivery(b, 2.0, 0));
  auto d = s.pick();  // picks a unit of `a`; `a` still has one queued
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->target, a);
  auto loads = s.migratable_loads();
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0].ptr, b);
  s.complete();
  loads = s.migratable_loads();
  ASSERT_EQ(loads.size(), 2u);
  // Sorted heaviest first.
  EXPECT_EQ(loads[0].ptr, a);
  EXPECT_DOUBLE_EQ(loads[0].weight, 5.0);
}

TEST(SchedulerDeathTest, GuardsMisuse) {
  Scheduler s;
  EXPECT_DEATH(s.complete(), "without a picked unit");
  const mol::MobilePtr a{0, 1};
  s.enqueue(make_delivery(a, 1.0, 0));
  s.enqueue(make_delivery(a, 1.0, 1));
  (void)s.pick();
  EXPECT_DEATH((void)s.pick(), "while a unit is executing");
  EXPECT_DEATH((void)s.take_queued(a), "executing object");
}

TEST(SchedulerDeathTest, OutOfOrderDeliveryAborts) {
  Scheduler s;
  const mol::MobilePtr a{0, 1};
  s.enqueue(make_delivery(a, 1.0, 5));
  EXPECT_DEATH(s.enqueue(make_delivery(a, 1.0, 4)), "out-of-order");
}

// ---------------------------------------------------------------------------
// Policies against a scripted fake context
// ---------------------------------------------------------------------------

struct SentMsg {
  ProcId dst;
  PolicyTag tag;
  std::vector<std::uint8_t> body;
};

struct Migration {
  mol::MobilePtr ptr;
  ProcId dst;
};

class FakeContext final : public PolicyContext {
 public:
  FakeContext(ProcId rank, int nprocs) : rank_(rank), nprocs_(nprocs), rng_(7) {}

  [[nodiscard]] ProcId rank() const override { return rank_; }
  [[nodiscard]] int nprocs() const override { return nprocs_; }
  [[nodiscard]] double now() const override { return now_; }
  [[nodiscard]] util::Rng& rng() override { return rng_; }
  [[nodiscard]] double local_load() const override { return load_; }
  [[nodiscard]] double low_watermark() const override { return 2.0; }
  [[nodiscard]] double donate_threshold() const override { return 4.0; }
  [[nodiscard]] std::vector<Scheduler::ObjectLoad> migratable() const override {
    return objects_;
  }
  void migrate_object(const mol::MobilePtr& ptr, ProcId dst) override {
    migrations_.push_back({ptr, dst});
    for (auto it = objects_.begin(); it != objects_.end(); ++it) {
      if (it->ptr == ptr) {
        load_ -= it->weight;
        objects_.erase(it);
        break;
      }
    }
  }
  void send_policy(ProcId dst, PolicyTag tag, std::vector<std::uint8_t> body) override {
    sent_.push_back({dst, tag, std::move(body)});
  }
  void charge_seconds(double) override {}
  void request_poll_after(double seconds) override {
    poll_requests_.push_back(seconds);
  }

  // --- scripted topology view (empty/off by default, like a scalar run) ---
  [[nodiscard]] bool topology_enabled() const override { return topology_; }
  [[nodiscard]] std::optional<mol::Coords> object_coords(
      const mol::MobilePtr& ptr) const override {
    const auto it = coords_.find(ptr);
    if (it == coords_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::vector<mol::CommEdge> comm_edges() const override {
    return edges_;
  }
  [[nodiscard]] ProcId object_location(const mol::MobilePtr& ptr) const override {
    const auto it = locations_.find(ptr);
    return it == locations_.end() ? kNoProc : it->second;
  }
  [[nodiscard]] std::vector<GossipSummary> gossip() const override {
    return gossip_;
  }
  void trace_sfc_cut(std::size_t segments, double imbalance) override {
    sfc_cuts_.push_back({segments, imbalance});
  }
  void trace_cluster_merge(ProcId dst, std::size_t objects,
                           double traffic) override {
    cluster_merges_.push_back({dst, objects, traffic});
  }

  void set_load(double load) { load_ = load; }
  void add_object(mol::MobilePtr ptr, double weight) {
    objects_.push_back({ptr, 1, weight});
    load_ += weight;
  }

  struct ClusterMergeEvent {
    ProcId dst;
    std::size_t objects;
    double traffic;
  };

  ProcId rank_;
  int nprocs_;
  util::Rng rng_;
  double now_ = 0.0;
  double load_ = 0.0;
  std::vector<Scheduler::ObjectLoad> objects_;
  std::vector<SentMsg> sent_;
  std::vector<Migration> migrations_;
  std::vector<double> poll_requests_;
  bool topology_ = false;
  std::map<mol::MobilePtr, mol::Coords> coords_;
  std::map<mol::MobilePtr, ProcId> locations_;
  std::vector<mol::CommEdge> edges_;
  std::vector<GossipSummary> gossip_;
  std::vector<std::pair<std::size_t, double>> sfc_cuts_;
  std::vector<ClusterMergeEvent> cluster_merges_;
};

util::ByteReader reader_of(const SentMsg& m) { return util::ByteReader(m.body); }

TEST(WorkStealing, RequestsWhenBelowWatermark) {
  FakeContext ctx(2, 8);
  WorkStealingPolicy p;
  p.init(ctx);
  ctx.set_load(1.0);  // below watermark 2.0
  p.on_poll(ctx);
  ASSERT_EQ(ctx.sent_.size(), 1u);
  EXPECT_EQ(ctx.sent_[0].dst, 3);  // rank ^ 1
  EXPECT_EQ(ctx.sent_[0].tag, 1);  // request
  // No duplicate request while one is outstanding.
  p.on_poll(ctx);
  EXPECT_EQ(ctx.sent_.size(), 1u);
}

TEST(WorkStealing, StaysQuietWhenLoaded) {
  FakeContext ctx(0, 4);
  WorkStealingPolicy p;
  p.init(ctx);
  ctx.set_load(10.0);
  p.on_poll(ctx);
  EXPECT_TRUE(ctx.sent_.empty());
}

TEST(WorkStealing, GrantsMigrationsOnRequest) {
  FakeContext ctx(1, 4);
  WorkStealingPolicy p;
  p.init(ctx);
  for (std::uint32_t i = 0; i < 10; ++i) ctx.add_object({1, i}, 1.0);
  // Peer rank 3 asks with load 0.
  util::ByteWriter w;
  w.put<double>(0.0);
  util::ByteReader r(w.bytes());
  p.on_message(ctx, 3, 1, r);
  // Half the gap (10) is 5 objects, all to rank 3, then a grant message.
  EXPECT_EQ(ctx.migrations_.size(), 5u);
  for (const auto& m : ctx.migrations_) EXPECT_EQ(m.dst, 3);
  ASSERT_EQ(ctx.sent_.size(), 1u);
  EXPECT_EQ(ctx.sent_[0].tag, 3);  // grant
  auto rd = reader_of(ctx.sent_[0]);
  EXPECT_EQ(rd.get<std::uint32_t>(), 5u);
}

TEST(WorkStealing, DeniesWhenPoor) {
  FakeContext ctx(1, 4);
  WorkStealingPolicy p;
  p.init(ctx);
  ctx.add_object({1, 0}, 1.0);  // load 1, below donate threshold
  util::ByteWriter w;
  w.put<double>(0.0);
  util::ByteReader r(w.bytes());
  p.on_message(ctx, 3, 1, r);
  EXPECT_TRUE(ctx.migrations_.empty());
  ASSERT_EQ(ctx.sent_.size(), 1u);
  EXPECT_EQ(ctx.sent_[0].tag, 2);  // deny
}

TEST(WorkStealing, RotatesPartnerOnDenyAndGoesPassive) {
  FakeContext ctx(0, 4);
  WorkStealingParams params;
  params.passive_after_denials = 2;
  WorkStealingPolicy p(params);
  p.init(ctx);
  ctx.set_load(0.0);
  p.on_poll(ctx);  // request #1 to partner 1
  ASSERT_EQ(ctx.sent_.size(), 1u);
  const ProcId first = ctx.sent_[0].dst;
  std::vector<std::uint8_t> e1; util::ByteReader r1(e1);
  p.on_message(ctx, first, 2, r1);  // deny -> rotate + immediate retry
  ASSERT_EQ(ctx.sent_.size(), 2u);
  EXPECT_NE(ctx.sent_[1].dst, first);
  std::vector<std::uint8_t> e2; util::ByteReader r2(e2);
  p.on_message(ctx, ctx.sent_[1].dst, 2, r2);  // deny #2 -> dormant
  EXPECT_EQ(ctx.sent_.size(), 2u);  // no further request
  // Dormancy armed a delayed retry wakeup.
  ASSERT_EQ(ctx.poll_requests_.size(), 1u);
  EXPECT_GT(ctx.poll_requests_[0], 0.0);
  p.on_poll(ctx);
  EXPECT_EQ(ctx.sent_.size(), 2u);  // still dormant (retry time not reached)
  p.on_work_arrived(ctx);
  p.on_poll(ctx);
  EXPECT_EQ(ctx.sent_.size(), 3u);  // begging again
  EXPECT_EQ(p.stats().went_passive, 1u);
  // A dormant wakeup after the backoff elapses also resumes begging.
  std::vector<std::uint8_t> e3; util::ByteReader r3(e3);
  p.on_message(ctx, ctx.sent_[2].dst, 2, r3);
  p.on_message(ctx, ctx.sent_[3].dst, 2, r3);  // dormant again
  ctx.now_ = 1e6;  // well past any backoff
  p.on_poll(ctx);
  EXPECT_EQ(ctx.sent_.size(), 5u);
}

TEST(WorkStealing, GrantKeepsCushionForDonor) {
  FakeContext ctx(1, 4);
  WorkStealingPolicy p;
  p.init(ctx);
  for (std::uint32_t i = 0; i < 5; ++i) ctx.add_object({1, i}, 1.0);
  util::ByteWriter w;
  w.put<double>(4.0);  // requester nearly as loaded as we are
  util::ByteReader r(w.bytes());
  p.on_message(ctx, 2, 1, r);
  // Gap is 1, half-gap 0.5: exactly one object moves; donor keeps >= watermark.
  EXPECT_EQ(ctx.migrations_.size(), 1u);
}

TEST(Diffusion, NeighborsHypercubeAndRing) {
  {
    FakeContext ctx(5, 8);
    DiffusionPolicy p;
    p.init(ctx);
    EXPECT_EQ(p.neighbors(), (std::vector<ProcId>{4, 7, 1}));
  }
  {
    FakeContext ctx(0, 6);
    DiffusionPolicy p;
    p.init(ctx);
    EXPECT_EQ(p.neighbors(), (std::vector<ProcId>{1, 5}));
  }
}

TEST(Diffusion, AnnouncesWithHysteresis) {
  FakeContext ctx(0, 4);
  DiffusionPolicy p;
  p.init(ctx);
  ctx.set_load(10.0);
  p.on_poll(ctx);
  const auto after_first = ctx.sent_.size();
  EXPECT_GT(after_first, 0u);
  p.on_poll(ctx);  // unchanged load: silent
  EXPECT_EQ(ctx.sent_.size(), after_first);
  ctx.set_load(20.0);  // big change: re-announce
  p.on_poll(ctx);
  EXPECT_GT(ctx.sent_.size(), after_first);
}

TEST(Diffusion, PushesTowardLighterNeighbor) {
  FakeContext ctx(0, 4);
  DiffusionPolicy p;
  p.init(ctx);
  for (std::uint32_t i = 0; i < 12; ++i) ctx.add_object({0, i}, 1.0);
  util::ByteWriter w;
  w.put<double>(0.0);
  util::ByteReader r(w.bytes());
  p.on_message(ctx, 1, 1, r);  // neighbor 1 announces load 0
  // alpha * gap / 2 = 0.5 * 12 / 2 = 3 units move.
  EXPECT_EQ(ctx.migrations_.size(), 3u);
  for (const auto& m : ctx.migrations_) EXPECT_EQ(m.dst, 1);
  // A second identical announcement must not re-push blindly: the optimistic
  // accounting raised our view of the neighbor.
  const auto before = ctx.migrations_.size();
  p.on_poll(ctx);
  EXPECT_LE(ctx.migrations_.size() - before, 3u);
}

TEST(Gradient, ProximityReflectsLocalState) {
  FakeContext ctx(1, 4);
  GradientPolicy p;
  p.init(ctx);
  ctx.set_load(0.0);  // underloaded
  p.on_poll(ctx);
  EXPECT_EQ(p.proximity(), 0u);
  // Loaded with unknown neighbours: proximity saturates.
  ctx.set_load(50.0);
  p.on_poll(ctx);
  EXPECT_GT(p.proximity(), 0u);
}

TEST(Gradient, PushesDownhill) {
  FakeContext ctx(1, 4);
  GradientPolicy p;
  p.init(ctx);
  for (std::uint32_t i = 0; i < 10; ++i) ctx.add_object({1, i}, 1.0);
  p.on_poll(ctx);
  EXPECT_TRUE(ctx.migrations_.empty());  // nowhere downhill yet
  util::ByteWriter w;
  w.put<std::uint32_t>(0);  // neighbor 2 says: I'm underloaded
  util::ByteReader r(w.bytes());
  p.on_message(ctx, 2, 1, r);
  ASSERT_FALSE(ctx.migrations_.empty());
  for (const auto& m : ctx.migrations_) EXPECT_EQ(m.dst, 2);
}

TEST(Master, WorkersReportAndAsk) {
  FakeContext ctx(3, 4);
  MasterPolicy p;
  p.init(ctx);
  ctx.set_load(0.5);
  p.on_poll(ctx);
  // A report and a need-work message, both to rank 0.
  ASSERT_EQ(ctx.sent_.size(), 2u);
  EXPECT_EQ(ctx.sent_[0].dst, 0);
  EXPECT_EQ(ctx.sent_[0].tag, 1);
  EXPECT_EQ(ctx.sent_[1].dst, 0);
  EXPECT_EQ(ctx.sent_[1].tag, 2);
  // Not repeated while the ask is pending.
  p.on_poll(ctx);
  EXPECT_EQ(ctx.sent_.size(), 2u);
}

TEST(Master, ManagerPairsNeedyWithHeaviest) {
  FakeContext ctx(0, 4);
  MasterPolicy p;
  p.init(ctx);
  // Reports: rank 1 heavy, rank 2 light.
  {
    util::ByteWriter w;
    w.put<double>(50.0);
    util::ByteReader r(w.bytes());
    p.on_message(ctx, 1, 1, r);
  }
  {
    util::ByteWriter w;
    w.put<double>(0.0);
    util::ByteReader r(w.bytes());
    p.on_message(ctx, 2, 2, r);  // need work
  }
  // Manager commands rank 1 to push toward rank 2.
  ASSERT_FALSE(ctx.sent_.empty());
  const auto& cmd = ctx.sent_.back();
  EXPECT_EQ(cmd.dst, 1);
  EXPECT_EQ(cmd.tag, 3);
  auto r = reader_of(cmd);
  EXPECT_EQ(r.get<ProcId>(), 2);
}

TEST(Master, DonorHonoursPushCommand) {
  FakeContext ctx(1, 4);
  MasterPolicy p;
  p.init(ctx);
  for (std::uint32_t i = 0; i < 10; ++i) ctx.add_object({1, i}, 1.0);
  util::ByteWriter w;
  w.put<ProcId>(2);
  w.put<double>(0.0);
  util::ByteReader r(w.bytes());
  p.on_message(ctx, 0, 3, r);
  EXPECT_EQ(ctx.migrations_.size(), 5u);  // half the gap
  for (const auto& m : ctx.migrations_) EXPECT_EQ(m.dst, 2);
}

TEST(MultiList, LeaderMapping) {
  FakeContext ctx(7, 16);  // group size = 4
  MultiListPolicy p;
  p.init(ctx);
  EXPECT_EQ(p.leader(), 4);
  FakeContext ctx2(4, 16);
  MultiListPolicy p2;
  p2.init(ctx2);
  EXPECT_EQ(p2.leader(), 4);
}

TEST(MultiList, StarvedMemberAsksLeader) {
  FakeContext ctx(5, 16);
  MultiListPolicy p;
  p.init(ctx);
  ctx.set_load(0.0);
  p.on_poll(ctx);
  ASSERT_FALSE(ctx.sent_.empty());
  bool asked = false;
  for (const auto& m : ctx.sent_) {
    if (m.tag == 2) {
      asked = true;
      EXPECT_EQ(m.dst, 4);  // its leader
    }
  }
  EXPECT_TRUE(asked);
}

TEST(MultiList, LeaderPairsWithinGroup) {
  FakeContext ctx(4, 16);  // leader of ranks 4..7
  MultiListPolicy p;
  p.init(ctx);
  {
    util::ByteWriter w;
    w.put<double>(40.0);
    util::ByteReader r(w.bytes());
    p.on_message(ctx, 6, 1, r);  // member 6 reports heavy
  }
  {
    util::ByteWriter w;
    w.put<double>(0.0);
    util::ByteReader r(w.bytes());
    p.on_message(ctx, 5, 2, r);  // member 5 asks
  }
  bool pushed = false;
  for (const auto& m : ctx.sent_) {
    if (m.tag == 3) {
      pushed = true;
      EXPECT_EQ(m.dst, 6);
      auto r = reader_of(m);
      EXPECT_EQ(r.get<ProcId>(), 5);
    }
  }
  EXPECT_TRUE(pushed);
}

// ---------------------------------------------------------------------------
// Topology-aware policies (scripted PolicyContext overrides)
// ---------------------------------------------------------------------------

TEST(Sfc, CoordinatorRecutsAndShipsOutOfSegmentObjects) {
  FakeContext ctx(0, 2);
  ctx.topology_ = true;
  SfcPolicy p;
  p.init(ctx);
  // Two objects in opposite corners of the unit cube: a heavy one near the
  // origin, a light one near the far corner.
  const mol::MobilePtr near{0, 0};
  const mol::MobilePtr far{0, 1};
  ctx.coords_[near] = {0.1, 0.1, 0.1};
  ctx.coords_[far] = {0.9, 0.9, 0.9};
  ctx.add_object(near, 9.0);
  ctx.add_object(far, 1.0);
  ASSERT_NE(p.bucket_of(ctx, near), p.bucket_of(ctx, far));

  // The coordinator's own report is taken at the first poll...
  p.on_poll(ctx);
  EXPECT_EQ(p.stats().reports_sent, 1u);
  EXPECT_TRUE(ctx.sent_.empty());  // rank 0 never wires its report to itself
  // ...and once rank 1's (empty) histogram lands, the picture is complete:
  // segment loads 9 vs 1 against a share of 5 is a 1.8 imbalance -> recut.
  util::ByteWriter w;
  w.put<std::uint32_t>(0);
  util::ByteReader r(w.bytes());
  p.on_message(ctx, 1, 20, r);

  EXPECT_EQ(p.stats().cuts_broadcast, 1u);
  ASSERT_EQ(ctx.sent_.size(), 1u);  // the cut table, broadcast to rank 1
  EXPECT_EQ(ctx.sent_[0].dst, 1);
  EXPECT_EQ(ctx.sent_[0].tag, 21);
  // The far-corner object's segment now belongs to rank 1; it ships.
  ASSERT_EQ(ctx.migrations_.size(), 1u);
  EXPECT_EQ(ctx.migrations_[0].ptr, far);
  EXPECT_EQ(ctx.migrations_[0].dst, 1);
  // The decision was traced with the post-cut segment count and imbalance.
  ASSERT_EQ(ctx.sfc_cuts_.size(), 1u);
  EXPECT_EQ(ctx.sfc_cuts_[0].first, 2u);
  EXPECT_DOUBLE_EQ(ctx.sfc_cuts_[0].second, 1.8);
}

TEST(Sfc, MemberAppliesCutTableFromWire) {
  FakeContext ctx(1, 2);
  ctx.topology_ = true;
  SfcPolicy p;
  p.init(ctx);
  const mol::MobilePtr mine{1, 0};
  ctx.coords_[mine] = {0.05, 0.05, 0.05};  // near the origin: rank 0 territory
  ctx.add_object(mine, 2.0);
  // Cut table: rank 0 owns the lower half of the buckets, rank 1 the upper.
  util::ByteWriter w;
  w.put<std::uint32_t>(2);
  w.put<std::uint32_t>(0);
  w.put<std::uint32_t>(SfcPolicy::kBuckets / 2);
  util::ByteReader r(w.bytes());
  p.on_message(ctx, 0, 21, r);
  ASSERT_EQ(ctx.migrations_.size(), 1u);
  EXPECT_EQ(ctx.migrations_[0].dst, 0);
}

TEST(Sfc, IgnoresForeignTagsAndHashesCoordlessObjects) {
  FakeContext ctx(1, 4);
  ctx.topology_ = true;
  SfcPolicy p;
  p.init(ctx);
  // A stray in-flight work_stealing request (tag 1) from before a policy
  // switch must be ignored, not misdecoded or aborted on.
  util::ByteWriter w;
  w.put<double>(0.0);
  util::ByteReader r(w.bytes());
  p.on_message(ctx, 3, 1, r);
  EXPECT_TRUE(ctx.sent_.empty());
  EXPECT_TRUE(ctx.migrations_.empty());
  // Objects without coordinates hash to a stable in-range bucket.
  const mol::MobilePtr coordless{2, 7};
  const auto b = p.bucket_of(ctx, coordless);
  EXPECT_LT(b, SfcPolicy::kBuckets);
  EXPECT_EQ(b, p.bucket_of(ctx, coordless));
}

TEST(Cluster, MigratesTowardDominantPartnerAndCoMigratesClique) {
  FakeContext ctx(0, 2);
  ctx.topology_ = true;
  ClusterPolicy p;
  p.init(ctx);
  const mol::MobilePtr a{0, 0};
  const mol::MobilePtr b{0, 1};
  const mol::MobilePtr c{1, 0};  // remote, on rank 1
  ctx.add_object(a, 1.0);
  ctx.add_object(b, 1.0);
  ctx.locations_[a] = 0;
  ctx.locations_[b] = 0;
  ctx.locations_[c] = 1;
  // a talks to remote c twice as much as to local b; b talks only to a.
  ctx.edges_.push_back({a, c, 10, 6000});
  ctx.edges_.push_back({a, b, 5, 3000});
  GossipSummary s;
  s.proc = 1;
  s.load = 0.0;  // rank 1 is idle: a fine destination
  ctx.gossip_.push_back(s);

  ctx.now_ = 1.0;  // past the first eval deadline
  p.on_poll(ctx);

  // a moves to its dominant partner's processor, and b — whose traffic is
  // entirely with a — rides along so the clique stays together.
  ASSERT_EQ(ctx.migrations_.size(), 2u);
  EXPECT_EQ(ctx.migrations_[0].ptr, a);
  EXPECT_EQ(ctx.migrations_[0].dst, 1);
  EXPECT_EQ(ctx.migrations_[1].ptr, b);
  EXPECT_EQ(ctx.migrations_[1].dst, 1);
  EXPECT_EQ(p.stats().objects_moved, 1u);
  EXPECT_EQ(p.stats().co_migrations, 1u);
  ASSERT_EQ(ctx.cluster_merges_.size(), 1u);
  EXPECT_EQ(ctx.cluster_merges_[0].dst, 1);
  EXPECT_EQ(ctx.cluster_merges_[0].objects, 2u);
  EXPECT_DOUBLE_EQ(ctx.cluster_merges_[0].traffic, 9000.0);
}

TEST(Cluster, StaysPutWhenInternalTrafficDominatesOrPeerIsBusy) {
  FakeContext ctx(0, 2);
  ctx.topology_ = true;
  ClusterPolicy p;
  p.init(ctx);
  const mol::MobilePtr a{0, 0};
  const mol::MobilePtr b{0, 1};
  const mol::MobilePtr c{1, 0};
  ctx.add_object(a, 1.0);
  ctx.add_object(b, 1.0);
  ctx.locations_[a] = 0;
  ctx.locations_[b] = 0;
  ctx.locations_[c] = 1;
  // External traffic exists but does not exceed 1.5x internal: no move.
  ctx.edges_.push_back({a, b, 10, 6000});
  ctx.edges_.push_back({a, c, 10, 6000});
  ctx.now_ = 1.0;
  p.on_poll(ctx);
  EXPECT_TRUE(ctx.migrations_.empty());

  // Dominant external traffic, but the gossiped destination load is higher
  // than ours: the overshoot gate holds the object back.
  ctx.edges_.clear();
  ctx.edges_.push_back({a, c, 20, 60000});
  GossipSummary s;
  s.proc = 1;
  s.load = 100.0;
  ctx.gossip_.push_back(s);
  ctx.now_ = 2.0;
  p.on_poll(ctx);
  EXPECT_TRUE(ctx.migrations_.empty());
}

TEST(PolicyFactory, MakesEveryRegisteredPolicy) {
  for (const char* name :
       {"null", "work_stealing", "diffusion", "gradient", "master",
        "multilist", "sfc", "cluster"}) {
    auto p = make_policy(name);
    ASSERT_NE(p, nullptr);
    if (std::string(name) != "null") {
      EXPECT_EQ(p->name(), name);
    }
    // The topology split: exactly sfc and cluster consume the widened view.
    const bool topo = std::string(name) == "sfc" || std::string(name) == "cluster";
    EXPECT_EQ(p->wants_topology(), topo) << name;
  }
}

TEST(PolicyFactoryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH((void)make_policy("simulated_annealing"), "unknown");
}

}  // namespace
}  // namespace prema::ilb
