#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "dmcs/thread_machine.hpp"
#include "fault/fault_plan.hpp"
#include "support/byte_buffer.hpp"

/// \file test_fault_thread.cpp
/// Fault injection on the *threaded* backend (LABEL thread, so CI also runs
/// it under TSan): real worker and poller threads race the reliable
/// transport's sender, receiver and retransmit paths. The thread backend
/// injects drop / duplication / corruption (delay and reordering are
/// emulator-only — real threads have no virtual clock to jitter), so these
/// tests hammer exactly those, checking exactly-once delivery, per-sender
/// FIFO, and that quiescence detection still lets run() terminate while
/// retransmits are part of the message flow.

namespace prema::fault {
namespace {

using dmcs::Message;
using dmcs::MsgKind;

class QueueProgram : public dmcs::Program {
 public:
  std::function<void(dmcs::Node&)> on_main;
  void main(dmcs::Node& n) override {
    if (on_main) on_main(n);
  }
  void deliver_app(dmcs::Node&, Message&& m) override {
    std::lock_guard<std::mutex> g(mu_);
    queue_.push_back(std::move(m));
  }
  bool service(dmcs::Node& n) override {
    Message m;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (queue_.empty()) return false;
      m = std::move(queue_.front());
      queue_.pop_front();
    }
    n.execute(std::move(m), nullptr);
    return true;
  }

 private:
  std::mutex mu_;
  std::deque<Message> queue_;
};

std::shared_ptr<FaultPlan> lossy_plan(int nprocs, std::uint64_t seed) {
  FaultProfile prof;
  prof.name = "test-thread-lossy";
  prof.link.drop_p = 0.10;
  prof.link.dup_p = 0.10;
  prof.link.corrupt_p = 0.05;
  return std::make_shared<FaultPlan>(prof, seed, nprocs);
}

TEST(ThreadFaults, ExactlyOnceFifoUnderLossyWire) {
  constexpr int kProcs = 3;
  constexpr int kCount = 60;
  dmcs::ThreadConfig cfg;
  cfg.nprocs = kProcs;
  dmcs::ThreadMachine m(cfg);
  m.set_fault_plan(lossy_plan(kProcs, 7));

  std::mutex mu;
  std::vector<std::vector<std::uint32_t>> seen(kProcs);
  const dmcs::HandlerId h =
      m.registry().add("recv", [&](dmcs::Node& n, Message&& msg) {
        util::ByteReader r(msg.payload);
        const auto v = r.get<std::uint32_t>();
        std::lock_guard<std::mutex> g(mu);
        seen[static_cast<std::size_t>(n.rank())].push_back(v);
      });
  m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [&, h](dmcs::Node& n) {
        for (int i = 0; i < kCount; ++i) {
          for (ProcId dst = 1; dst < kProcs; ++dst) {
            util::ByteWriter w;
            w.put<std::uint32_t>(static_cast<std::uint32_t>(i));
            n.send(dst, Message{h, 0, MsgKind::kApp, w.take()});
          }
        }
      };
    }
    return prog;
  });
  for (ProcId p = 1; p < kProcs; ++p) {
    const auto& got = seen[static_cast<std::size_t>(p)];
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount)) << "rank " << p;
    for (int i = 0; i < kCount; ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(i)], static_cast<std::uint32_t>(i))
          << "rank " << p;
    }
  }
}

TEST(ThreadFaults, BidirectionalTrafficQuiescesUnderFaults) {
  // Every rank streams to every other rank; the run ending at all proves the
  // quiescence scan (inflight counter + per-link quiet()) does not declare
  // victory while retransmits are outstanding, and does not hang when the
  // wire keeps eating first copies.
  constexpr int kProcs = 4;
  constexpr int kCount = 25;
  dmcs::ThreadConfig cfg;
  cfg.nprocs = kProcs;
  dmcs::ThreadMachine m(cfg);
  m.set_fault_plan(lossy_plan(kProcs, 23));

  std::atomic<int> delivered{0};
  const dmcs::HandlerId h =
      m.registry().add("recv", [&](dmcs::Node&, Message&&) { ++delivered; });
  m.run([&](ProcId) {
    auto prog = std::make_unique<QueueProgram>();
    prog->on_main = [&, h](dmcs::Node& n) {
      for (int i = 0; i < kCount; ++i) {
        for (ProcId dst = 0; dst < kProcs; ++dst) {
          if (dst == n.rank()) continue;
          n.send(dst, Message{h, n.rank(), MsgKind::kApp, {0xAB, 0xCD}});
        }
      }
    };
    return prog;
  });
  EXPECT_EQ(delivered.load(), kProcs * (kProcs - 1) * kCount);
}

}  // namespace
}  // namespace prema::fault
