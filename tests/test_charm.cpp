#include <gtest/gtest.h>

#include <memory>

#include "charm/charmlite.hpp"
#include "dmcs/sim_machine.hpp"

namespace prema::charmlite {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::TimeCategory;

/// Benchmark-style element: a fixed per-phase cost and a phase counter.
class Worker : public Chare {
 public:
  Worker(double mflop, int total_phases)
      : mflop_(mflop), total_phases_(total_phases) {}
  void serialize(ByteWriter& w) const override {
    w.put<double>(mflop_);
    w.put<std::int32_t>(total_phases_);
    w.put<std::int32_t>(phase_);
  }
  static std::unique_ptr<Chare> from(ByteReader& r) {
    const double m = r.get<double>();
    const auto total = r.get<std::int32_t>();
    auto c = std::make_unique<Worker>(m, total);
    c->phase_ = r.get<std::int32_t>();
    return c;
  }

  double mflop_;
  std::int32_t total_phases_;
  std::int32_t phase_ = 0;
};

struct CharmRun {
  double makespan = 0.0;
  int executions = 0;
  int sync_rounds = 0;
  std::uint64_t migrations = 0;
  double max_sync_time = 0.0;
};

/// Heavy chares land on proc 0 (block distribution puts low indices there);
/// each chare runs `phases` phases of its cost with AtSync between phases.
CharmRun run_charm(Strategy strategy, int nprocs, ChareIdx n_chares,
                   int n_heavy, double heavy_mflop, double light_mflop,
                   int phases) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = nprocs;
  mcfg.mflops = 1000.0;  // 1 Mflop == 1 ms
  dmcs::SimMachine machine(mcfg);  // explicit polling: Charm never preempts
  CharmConfig ccfg;
  ccfg.strategy = strategy;
  Runtime rt(machine, ccfg);

  int executions = 0;
  const EntryId work = rt.register_entry(
      "work", [&executions, phases](ChareContext& ctx, Chare& c, ByteReader&) {
        auto& w = static_cast<Worker&>(c);
        ctx.compute(w.mflop_);
        ++executions;
        ++w.phase_;
        if (w.phase_ < phases) ctx.at_sync();
      });
  rt.set_chare_factory([](ChareIdx, ByteReader& r) { return Worker::from(r); });
  rt.create_array(
      n_chares,
      [&](ChareIdx idx) {
        return std::make_unique<Worker>(
            idx < n_heavy ? heavy_mflop : light_mflop, phases);
      },
      /*resume_entry=*/work);
  rt.set_main([&, n_chares](ChareContext& ctx) {
    if (ctx.rank() != 0) return;
    for (ChareIdx i = 0; i < n_chares; ++i) ctx.send(i, work);
  });

  CharmRun res;
  res.makespan = rt.run();
  res.executions = executions;
  res.sync_rounds = rt.sync_rounds();
  res.migrations = rt.migrations();
  for (ProcId p = 0; p < nprocs; ++p) {
    res.max_sync_time =
        std::max(res.max_sync_time,
                 machine.ledger(p).get(TimeCategory::kSynchronization));
  }
  return res;
}

TEST(Charm, SinglePhaseRunsEveryEntryOnce) {
  const auto r = run_charm(Strategy::kNone, 2, 8, 0, 10.0, 10.0, 1);
  EXPECT_EQ(r.executions, 8);
  EXPECT_EQ(r.sync_rounds, 0);
  EXPECT_EQ(r.migrations, 0u);
  // 8 chares, 4 per proc, 10ms each.
  EXPECT_NEAR(r.makespan, 0.04, 0.01);
}

TEST(Charm, AtSyncBarrierRunsBetweenPhases) {
  const auto r = run_charm(Strategy::kNone, 2, 8, 0, 10.0, 10.0, 3);
  EXPECT_EQ(r.executions, 24);
  EXPECT_EQ(r.sync_rounds, 2);
  EXPECT_GE(r.max_sync_time, 0.0);
}

TEST(Charm, GreedyRebalancesMeasuredLoad) {
  // 16 chares, 4 procs; the 4 heavy ones (100ms) start together on proc 0.
  const auto none = run_charm(Strategy::kNone, 4, 16, 4, 100.0, 10.0, 2);
  const auto greedy = run_charm(Strategy::kGreedy, 4, 16, 4, 100.0, 10.0, 2);
  EXPECT_EQ(none.executions, 32);
  EXPECT_EQ(greedy.executions, 32);
  EXPECT_GT(greedy.migrations, 0u);
  // Phase 1 is imbalanced either way; phase 2 runs balanced under Greedy.
  EXPECT_LT(greedy.makespan, 0.85 * none.makespan);
}

TEST(Charm, RefineMovesLessThanGreedy) {
  const auto greedy = run_charm(Strategy::kGreedy, 4, 32, 4, 50.0, 10.0, 2);
  const auto refine = run_charm(Strategy::kRefine, 4, 32, 4, 50.0, 10.0, 2);
  EXPECT_LE(refine.migrations, greedy.migrations);
  EXPECT_GT(refine.migrations, 0u);
}

TEST(Charm, MetisStrategyBalances) {
  const auto none = run_charm(Strategy::kNone, 4, 16, 4, 100.0, 10.0, 2);
  const auto metis = run_charm(Strategy::kMetis, 4, 16, 4, 100.0, 10.0, 2);
  EXPECT_EQ(metis.executions, 32);
  EXPECT_LT(metis.makespan, 0.9 * none.makespan);
}

TEST(Charm, RotateMovesEverything) {
  const auto r = run_charm(Strategy::kRotate, 2, 6, 0, 5.0, 5.0, 2);
  // Every chare shifts processors at the single balancing step.
  EXPECT_EQ(r.migrations, 6u);
  EXPECT_EQ(r.executions, 12);
}

TEST(Charm, StatePreservedAcrossMigration) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = 2;
  mcfg.mflops = 1000.0;
  dmcs::SimMachine machine(mcfg);
  CharmConfig ccfg;
  ccfg.strategy = Strategy::kRotate;  // force every chare to move
  Runtime rt(machine, ccfg);
  const EntryId work = rt.register_entry(
      "work", [](ChareContext& ctx, Chare& c, ByteReader&) {
        auto& w = static_cast<Worker&>(c);
        ctx.compute(1.0);
        ++w.phase_;
        if (w.phase_ < 3) ctx.at_sync();
      });
  rt.set_chare_factory([](ChareIdx, ByteReader& r) { return Worker::from(r); });
  rt.create_array(4, [](ChareIdx) { return std::make_unique<Worker>(1.0, 3); },
                  work);
  rt.set_main([&](ChareContext& ctx) {
    if (ctx.rank() != 0) return;
    for (ChareIdx i = 0; i < 4; ++i) ctx.send(i, work);
  });
  rt.run();
  // Two sync rounds, each rotating all 4 chares: phase counters intact means
  // serialization round-tripped.
  EXPECT_EQ(rt.migrations(), 8u);
  EXPECT_EQ(rt.sync_rounds(), 2);
}

TEST(Charm, MeasuredLoadsReachTheDatabase) {
  const auto r = run_charm(Strategy::kGreedy, 2, 4, 1, 40.0, 5.0, 2);
  (void)r;
  // run_charm already exercises it; direct check via a dedicated run:
  sim::MachineConfig mcfg;
  mcfg.nprocs = 2;
  mcfg.mflops = 1000.0;
  dmcs::SimMachine machine(mcfg);
  Runtime rt(machine, CharmConfig{});
  const EntryId work = rt.register_entry(
      "work", [](ChareContext& ctx, Chare& c, ByteReader&) {
        auto& w = static_cast<Worker&>(c);
        ctx.compute(w.mflop_);
        ++w.phase_;
        if (w.phase_ < 2) ctx.at_sync();
      });
  rt.set_chare_factory([](ChareIdx, ByteReader& r) { return Worker::from(r); });
  rt.create_array(
      2, [](ChareIdx idx) { return std::make_unique<Worker>(idx == 0 ? 30.0 : 7.0, 2); },
      work);
  rt.set_main([&](ChareContext& ctx) {
    if (ctx.rank() != 0) return;
    ctx.send(0, work);
    ctx.send(1, work);
  });
  rt.run();
  EXPECT_DOUBLE_EQ(rt.measured_load(0), 30.0);
  EXPECT_DOUBLE_EQ(rt.measured_load(1), 7.0);
}

TEST(Charm, SyncTimeIsChargedToSynchronization) {
  // One heavy chare makes everyone else wait at the barrier.
  const auto r = run_charm(Strategy::kGreedy, 4, 8, 1, 200.0, 5.0, 2);
  EXPECT_GT(r.max_sync_time, 0.05);
}

}  // namespace
}  // namespace prema::charmlite
