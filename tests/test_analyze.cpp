// Golden tests for the prema_analyze passes (tools/analyze): each fixture
// under tools/analyze/fixtures/<pass>/<case>/ is a tiny source tree with a
// seeded violation (or none, for the clean case); running every pass over it
// must reproduce EXPECT.txt exactly — rule, file, line and message. The
// analyzer's own --self-test covers the passes as library code on embedded
// snippets; these prove the on-disk pipeline (tree loading, hierarchy
// parsing, finding formatting) end to end and pin the exact diagnostics.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/report.hpp"

namespace {

using namespace prema::analyze;

// Injected by CMake: absolute path of tools/analyze/fixtures.
const std::string kFixtures = PREMA_ANALYZE_FIXTURES;

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Run every pass over the fixture's src/ tree with its (optional) local
/// lock_hierarchy.txt, atomics.txt and protocols/ specs and return the
/// findings formatted one per line, exactly as the CLI prints them.
std::string analyze_fixture(const std::string& rel_case) {
  const std::string dir = kFixtures + "/" + rel_case;
  Tree tree;
  EXPECT_TRUE(load_tree(dir + "/src", tree)) << dir;
  Options opts;
  opts.hierarchy_text = read_file_or_empty(dir + "/lock_hierarchy.txt");
  opts.atomics_text = read_file_or_empty(dir + "/atomics.txt");
  // Fixture-local protocol specs, loaded sorted exactly as the CLI does.
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<fs::path> specs;
  for (const auto& entry : fs::directory_iterator(dir + "/protocols", ec)) {
    if (entry.path().extension() == ".txt") specs.push_back(entry.path());
  }
  std::sort(specs.begin(), specs.end());
  for (const fs::path& p : specs) {
    opts.protocol_specs.emplace_back(p.stem().string(),
                                     read_file_or_empty(p.string()));
  }
  Findings out;
  run_all_passes(tree, opts, out);
  std::string text;
  for (const Finding& f : out) {
    text += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
            f.message + "\n";
  }
  return text;
}

std::string expected(const std::string& rel_case) {
  return read_file_or_empty(kFixtures + "/" + rel_case + "/EXPECT.txt");
}

TEST(AnalyzeFixtures, LockOrderInversion) {
  EXPECT_EQ(analyze_fixture("lock_order/inversion"),
            expected("lock_order/inversion"));
}

TEST(AnalyzeFixtures, LockOrderUnguarded) {
  EXPECT_EQ(analyze_fixture("lock_order/unguarded"),
            expected("lock_order/unguarded"));
}

TEST(AnalyzeFixtures, ProtocolUnregistered) {
  EXPECT_EQ(analyze_fixture("protocol/unregistered"),
            expected("protocol/unregistered"));
}

TEST(AnalyzeFixtures, SerializationAsymmetry) {
  EXPECT_EQ(analyze_fixture("serialization/asymmetry"),
            expected("serialization/asymmetry"));
}

TEST(AnalyzeFixtures, TimeDomainMixing) {
  EXPECT_EQ(analyze_fixture("time_domain/mixing"),
            expected("time_domain/mixing"));
}

TEST(AnalyzeFixtures, LockFlowBlockingSend) {
  EXPECT_EQ(analyze_fixture("lock_flow/blocking_send"),
            expected("lock_flow/blocking_send"));
}

TEST(AnalyzeFixtures, LockFlowRequiresUnheld) {
  EXPECT_EQ(analyze_fixture("lock_flow/requires_unheld"),
            expected("lock_flow/requires_unheld"));
}

TEST(AnalyzeFixtures, ProtocolFsmUndeclaredTransition) {
  EXPECT_EQ(analyze_fixture("protocol_fsm/undeclared_transition"),
            expected("protocol_fsm/undeclared_transition"));
}

TEST(AnalyzeFixtures, ProtocolFsmMissingEmit) {
  EXPECT_EQ(analyze_fixture("protocol_fsm/missing_emit"),
            expected("protocol_fsm/missing_emit"));
}

TEST(AnalyzeFixtures, SimPurityUnorderedIteration) {
  EXPECT_EQ(analyze_fixture("sim_purity/unordered_iter"),
            expected("sim_purity/unordered_iter"));
}

TEST(AnalyzeFixtures, SimPurityWallClock) {
  EXPECT_EQ(analyze_fixture("sim_purity/wallclock"),
            expected("sim_purity/wallclock"));
}

TEST(AnalyzeFixtures, AtomicDisciplineImplicitOrder) {
  EXPECT_EQ(analyze_fixture("atomic_discipline/implicit_order"),
            expected("atomic_discipline/implicit_order"));
}

TEST(AnalyzeFixtures, ReleaseAcquireUnpairedStore) {
  EXPECT_EQ(analyze_fixture("release_acquire/unpaired_store"),
            expected("release_acquire/unpaired_store"));
}

TEST(AnalyzeFixtures, MixedAccessUnlockedRead) {
  EXPECT_EQ(analyze_fixture("mixed_access/unlocked_read"),
            expected("mixed_access/unlocked_read"));
}

TEST(AnalyzeFixtures, CleanTreeHasNoFindings) {
  EXPECT_EQ(analyze_fixture("clean"), expected("clean"));
}

// -- report layer -----------------------------------------------------------

TEST(AnalyzeReport, FingerprintIsLineFree) {
  const Finding a{"rule", "dir/file.cpp", 10, "message"};
  const Finding b{"rule", "dir/file.cpp", 99, "message"};
  EXPECT_EQ(fingerprint(a), "rule|dir/file.cpp|message");
  EXPECT_EQ(fingerprint(a), fingerprint(b));  // survives code motion
}

TEST(AnalyzeReport, BaselineRoundTrip) {
  const Findings all = {{"r1", "f1", 1, "m1"}, {"r2", "f2", 2, "m2"}};
  const auto base = parse_baseline(render_baseline(all));
  EXPECT_TRUE(subtract_baseline(all, base).empty());
  // A finding not in the baseline survives subtraction.
  const Findings fresh = {{"r3", "f3", 3, "m3"}};
  EXPECT_EQ(subtract_baseline(fresh, base).size(), 1u);
}

TEST(AnalyzeReport, SarifMentionsRuleAndFingerprint) {
  const std::string sarif =
      render_sarif({{"demo-rule", "a/b.cpp", 7, "it \"broke\""}});
  EXPECT_NE(sarif.find("\"ruleId\": \"demo-rule\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("premaAnalyze/v1"), std::string::npos);
  EXPECT_NE(sarif.find("\\\"broke\\\""), std::string::npos);
}

}  // namespace
