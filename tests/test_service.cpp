#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bench_support/service_harness.hpp"
#include "service/arrivals.hpp"
#include "service/latency.hpp"
#include "service/ledger.hpp"

/// \file test_service.cpp
/// Service mode (open-loop arrivals, continuous balancing): the histogram's
/// bucket geometry and merge algebra, the arrival generators' determinism
/// contract, and end-to-end sim-backend service runs — including the
/// mid-pause elasticity scenario — whose delivery audit must balance.

namespace prema::service {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram: bucket geometry
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, BucketBoundariesPartitionTheAxis) {
  // Buckets tile [0, inf): each bucket's upper bound is the next one's lower
  // bound, lower < upper throughout, and index 0 starts at zero.
  EXPECT_EQ(LatencyHistogram::bucket_lower(0), 0.0);
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i) {
    EXPECT_LT(LatencyHistogram::bucket_lower(i), LatencyHistogram::bucket_upper(i))
        << "bucket " << i;
    EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_upper(i),
                     LatencyHistogram::bucket_lower(i + 1))
        << "gap/overlap between buckets " << i << " and " << i + 1;
  }
}

TEST(LatencyHistogram, SamplesResolveToTheBucketThatBoundsThem) {
  // A sample indexes into the bucket whose [lower, upper) range contains it,
  // across the whole dynamic range (sub-microsecond to hours).
  for (double s : {0.0, 1e-9, 5e-7, 1e-6, 1.5e-6, 1e-3, 0.0123, 0.5, 1.0,
                   17.0, 3600.0}) {
    const std::size_t i = LatencyHistogram::bucket_index(s);
    ASSERT_LT(i, LatencyHistogram::kBuckets) << "sample " << s;
    EXPECT_GE(s, LatencyHistogram::bucket_lower(i)) << "sample " << s;
    EXPECT_LT(s, LatencyHistogram::bucket_upper(i)) << "sample " << s;
  }
}

TEST(LatencyHistogram, EdgeSamplesLandInUnderflowAndOverflow) {
  // Negative clamps to underflow; beyond the top octave lands in overflow.
  EXPECT_EQ(LatencyHistogram::bucket_index(-1.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(1e300),
            LatencyHistogram::kBuckets - 1);
  LatencyHistogram h;
  h.record(-1.0);
  h.record(1e300);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LatencyHistogram, QuantileErrorIsBoundedBySubBucketWidth) {
  // The representative value returned for a recorded sample is within one
  // sub-bucket's relative error (~1/kSubBuckets within an octave).
  LatencyHistogram h;
  const double sample = 0.0123;
  h.record(sample);
  const double rep = h.percentile(0.5);
  EXPECT_NEAR(rep, sample, sample * (1.0 / LatencyHistogram::kSubBuckets));
}

// ---------------------------------------------------------------------------
// LatencyHistogram: merge algebra
// ---------------------------------------------------------------------------

std::vector<LatencyHistogram> three_histograms() {
  std::vector<LatencyHistogram> h(3);
  for (int i = 0; i < 40; ++i) h[0].record(1e-3 * (i + 1));
  for (int i = 0; i < 25; ++i) h[1].record(5e-2 * (i + 1));
  for (int i = 0; i < 10; ++i) h[2].record(2.0 * (i + 1));
  return h;
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative) {
  const auto h = three_histograms();

  LatencyHistogram ab_c;  // (a + b) + c
  ab_c.merge(h[0]);
  ab_c.merge(h[1]);
  ab_c.merge(h[2]);

  LatencyHistogram c_ba;  // c + (b + a)
  c_ba.merge(h[2]);
  c_ba.merge(h[1]);
  c_ba.merge(h[0]);

  EXPECT_TRUE(ab_c == c_ba);
  EXPECT_EQ(ab_c.count(), 75u);
  // Derived statistics agree exactly, not just approximately: they are
  // recomputed from identical integer bucket state.
  EXPECT_DOUBLE_EQ(ab_c.percentile(0.5), c_ba.percentile(0.5));
  EXPECT_DOUBLE_EQ(ab_c.percentile(0.99), c_ba.percentile(0.99));
  EXPECT_DOUBLE_EQ(ab_c.mean(), c_ba.mean());
}

TEST(LatencyHistogram, MergeMatchesRecordingEverythingIntoOne) {
  const auto h = three_histograms();
  LatencyHistogram merged;
  for (const auto& part : h) merged.merge(part);

  LatencyHistogram direct;
  for (int i = 0; i < 40; ++i) direct.record(1e-3 * (i + 1));
  for (int i = 0; i < 25; ++i) direct.record(5e-2 * (i + 1));
  for (int i = 0; i < 10; ++i) direct.record(2.0 * (i + 1));

  EXPECT_TRUE(merged == direct);
}

TEST(LatencyHistogram, PercentileGoldens) {
  // 1000 samples of exactly 1..1000 ms: quantile q resolves to the sample
  // with rank ceil(q*1000), reported as its bucket's representative value —
  // within one sub-bucket of the exact order statistic.
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);
  const struct {
    double q, exact_s;
  } goldens[] = {{0.50, 0.500}, {0.90, 0.900}, {0.99, 0.990}, {0.999, 0.999},
                 {1.0, 1.000}};
  for (const auto& g : goldens) {
    EXPECT_NEAR(h.percentile(g.q), g.exact_s,
                g.exact_s * (1.0 / LatencyHistogram::kSubBuckets))
        << "q=" << g.q;
  }
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_EQ(h.percentile(0.5), h.percentile(0.5));  // deterministic
  LatencyHistogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.99), 0.0);
}

// ---------------------------------------------------------------------------
// ArrivalGenerator: determinism and model shape
// ---------------------------------------------------------------------------

TEST(ArrivalGenerator, SameSeedSameRankGivesIdenticalSchedule) {
  for (const ArrivalModel m :
       {ArrivalModel::kPoisson, ArrivalModel::kBursty, ArrivalModel::kDiurnal}) {
    ArrivalConfig cfg;
    cfg.model = m;
    ArrivalGenerator a(cfg, 3, 16);
    ArrivalGenerator b(cfg, 3, 16);
    double now = 0.0;
    for (int i = 0; i < 500; ++i) {
      const double ga = a.next_gap(now);
      const double gb = b.next_gap(now);
      ASSERT_DOUBLE_EQ(ga, gb) << arrival_model_name(m) << " draw " << i;
      ASSERT_GT(ga, 0.0);
      now += ga;
      const Arrival ra = a.next_arrival();
      const Arrival rb = b.next_arrival();
      ASSERT_EQ(ra.client, rb.client);
      ASSERT_DOUBLE_EQ(ra.cost_mflop, rb.cost_mflop);
    }
  }
}

TEST(ArrivalGenerator, DifferentRanksDrawIndependentStreams) {
  ArrivalConfig cfg;
  ArrivalGenerator a(cfg, 0, 16);
  ArrivalGenerator b(cfg, 1, 16);
  // Client ranges partition the population...
  EXPECT_EQ(a.client_first() + a.client_count(), b.client_first());
  // ...and the gap sequences decorrelate immediately.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_gap(0.0) == b.next_gap(0.0)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(ArrivalGenerator, ClientsStayInTheRanksRange) {
  ArrivalConfig cfg;
  cfg.num_clients = 1'000'000;
  ArrivalGenerator g(cfg, 5, 16);
  double now = 0.0;
  for (int i = 0; i < 1000; ++i) {
    now += g.next_gap(now);
    const Arrival a = g.next_arrival();
    EXPECT_GE(a.client, g.client_first());
    EXPECT_LT(a.client, g.client_first() + g.client_count());
    EXPECT_GT(a.cost_mflop, 0.0);
  }
}

TEST(ArrivalGenerator, MeanRateIsRespected) {
  // Long-run mean interarrival ~= 1/rate for every model (bursty and diurnal
  // modulate around the same long-run average).
  for (const ArrivalModel m :
       {ArrivalModel::kPoisson, ArrivalModel::kBursty, ArrivalModel::kDiurnal}) {
    ArrivalConfig cfg;
    cfg.model = m;
    cfg.rate_per_proc = 200.0;
    ArrivalGenerator g(cfg, 0, 4);
    double now = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) now += g.next_gap(now);
    const double mean_rate = n / now;
    EXPECT_NEAR(mean_rate, cfg.rate_per_proc, 0.15 * cfg.rate_per_proc)
        << arrival_model_name(m);
  }
}

TEST(ArrivalModelNames, RoundTrip) {
  for (const ArrivalModel m :
       {ArrivalModel::kPoisson, ArrivalModel::kBursty, ArrivalModel::kDiurnal}) {
    ArrivalModel parsed;
    ASSERT_TRUE(parse_arrival_model(arrival_model_name(m), parsed));
    EXPECT_EQ(parsed, m);
  }
  ArrivalModel parsed;
  EXPECT_FALSE(parse_arrival_model("weibull", parsed));
}

// ---------------------------------------------------------------------------
// ServiceLedger
// ---------------------------------------------------------------------------

TEST(ServiceLedger, TotalsAndMergedHistogramAggregateSlabs) {
  ServiceLedger ledger(4);
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i <= p; ++i) {
      ledger.at(p).record_arrival(0.1 * i);
      ledger.at(p).record_completion(1e-3 * (p + 1));
    }
    ledger.at(p).sample_load(0.5, static_cast<double>(p));
  }
  const ServiceTotals t = ledger.totals();
  EXPECT_EQ(t.arrivals, 10u);
  EXPECT_EQ(t.completions, 10u);
  EXPECT_EQ(ledger.merged_histogram().count(), 10u);
  EXPECT_EQ(ledger.at(2).load_series().size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.at(2).load_series()[0].load, 2.0);
}

}  // namespace
}  // namespace prema::service

// ---------------------------------------------------------------------------
// End-to-end service runs (sim backend)
// ---------------------------------------------------------------------------

namespace prema::bench {
namespace {

ServiceScenario small_scenario(const std::string& policy) {
  ServiceScenario sc;
  sc.backend = "sim";
  sc.nprocs = 8;
  sc.duration_s = 0.15;
  sc.epoch_s = 25e-3;
  sc.policy = policy;
  sc.arrivals.rate_per_proc = 30.0;
  return sc;
}

void expect_sane(const ServiceReport& r) {
  // The delivery audit: every injected request completed exactly once and
  // every shard is resident at exactly one processor.
  EXPECT_TRUE(r.audit_ok) << r.policy << "/" << r.fault_profile << ": arrivals="
                          << r.arrivals << " completions=" << r.completions;
  EXPECT_GT(r.arrivals, 0u);
  EXPECT_GE(r.makespan, r.duration_s);  // window plus drain tail
  EXPECT_GT(r.p50_ms, 0.0);
  EXPECT_GE(r.p99_ms, r.p50_ms);
  EXPECT_GE(r.p999_ms, r.p99_ms);
  EXPECT_EQ(r.histogram.count(), r.completions);
  // Epoch sampling produced a load series for every rank.
  for (const auto& series : r.load_series) EXPECT_FALSE(series.empty());
}

TEST(ServiceRun, WorkStealingAuditBalances) {
  const ServiceReport r = run_service_scenario(small_scenario("work_stealing"));
  expect_sane(r);
  // Sim backend, no faults: nominal request compute seconds reconcile with
  // the machine's accounted computation almost exactly.
  EXPECT_LT(std::abs(r.ledger_delta_pct), 1.0);
}

TEST(ServiceRun, DiffusionAuditBalances) {
  const ServiceReport r = run_service_scenario(small_scenario("diffusion"));
  expect_sane(r);
}

TEST(ServiceRun, NullPolicyStillConserves) {
  // No balancing at all: latencies may be worse but conservation holds.
  const ServiceReport r = run_service_scenario(small_scenario("null"));
  expect_sane(r);
  EXPECT_EQ(r.migrations, 0u);
}

TEST(ServiceRun, BurstyAndDiurnalModelsConserve) {
  for (const service::ArrivalModel m :
       {service::ArrivalModel::kBursty, service::ArrivalModel::kDiurnal}) {
    ServiceScenario sc = small_scenario("work_stealing");
    sc.arrivals.model = m;
    const ServiceReport r = run_service_scenario(sc);
    expect_sane(r);
    EXPECT_EQ(r.model, service::arrival_model_name(m));
  }
}

TEST(ServiceRun, MidPauseElasticityUnderStealAndDiffusion) {
  // The elasticity scenario: node 1 runs 2x slow and pauses outright
  // mid-window under the canned "mid-pause" profile. The balancer must route
  // around the paused node and the audit must still balance exactly — under
  // both the pull (steal) and push (diffusion) policies.
  for (const char* policy : {"work_stealing", "diffusion"}) {
    ServiceScenario sc = small_scenario(policy);
    sc.fault_profile = "mid-pause";
    sc.duration_s = 0.3;  // keep the 0.15-0.25 s pause window mid-run
    const ServiceReport r = run_service_scenario(sc);
    expect_sane(r);
    EXPECT_EQ(r.arrivals, r.completions) << policy;
  }
}

TEST(ServiceRun, MidWindowSwitchToSfcAbsorbsSkewedTopologyTags) {
  // Swap every rank from work_stealing to sfc mid-window. Ranks apply the
  // schedule on their own clocks, so an early-switching rank's first sfc
  // histogram report (a topology-range tag) can reach rank 0 while its
  // scalar policy is still active; the Balancer must absorb it rather than
  // let work_stealing's fail-fast abort fire. Long enough window that sfc
  // reports and gossip both flow on each side of the swap.
  ServiceScenario sc = small_scenario("work_stealing");
  sc.duration_s = 0.3;
  sc.policy_switches = {{0.15, "sfc"}};
  const ServiceReport r = run_service_scenario(sc);
  expect_sane(r);
  EXPECT_EQ(r.arrivals, r.completions);
  EXPECT_EQ(r.policy, "work_stealing->sfc");
}

TEST(ServiceRun, ReportsAreDeterministic) {
  // Two identically seeded service runs agree on every scalar the sweep
  // reports (the byte-level trace comparison lives in test_determinism).
  const ServiceReport a = run_service_scenario(small_scenario("work_stealing"));
  const ServiceReport b = run_service_scenario(small_scenario("work_stealing"));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_TRUE(a.histogram == b.histogram);
  EXPECT_DOUBLE_EQ(a.p999_ms, b.p999_ms);
}

}  // namespace
}  // namespace prema::bench
