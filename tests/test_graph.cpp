#include <gtest/gtest.h>

#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "graph/partition_metrics.hpp"

namespace prema::graph {
namespace {

TEST(CsrGraph, BuilderProducesSymmetricGraph) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2, 3.0);
  b.add_edge(0, 1, 1.0);  // duplicate: merged to weight 3
  const CsrGraph g = b.build();
  g.validate();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 2);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1);
  EXPECT_DOUBLE_EQ(g.edge_weights(0)[0], 3.0);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(CsrGraph, VertexWeights) {
  GraphBuilder b(3, 2.0);
  b.set_vertex_weight(1, 5.0);
  const CsrGraph g = b.build();
  EXPECT_DOUBLE_EQ(g.vertex_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(g.vertex_weight(1), 5.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 9.0);
}

TEST(CsrGraph, EdgelessFactory) {
  const CsrGraph g = CsrGraph::edgeless(5, 1.5);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 7.5);
}

TEST(CsrGraphDeathTest, SelfLoopAborts) {
  GraphBuilder b(2);
  EXPECT_DEATH(b.add_edge(1, 1), "self loops");
}

TEST(Generators, Grid2dStructure) {
  const CsrGraph g = grid2d(4, 3);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 4 * 2);  // horizontal + vertical
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior
}

TEST(Generators, Grid3dStructure) {
  const CsrGraph g = grid3d(3, 3, 3);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 27);
  EXPECT_EQ(g.degree(13), 6u);  // center cell
  EXPECT_EQ(g.degree(0), 3u);   // corner
}

TEST(Generators, RandomGeometricIsDeterministic) {
  util::Rng a(5), b(5);
  const CsrGraph g1 = random_geometric(50, 0.2, a);
  const CsrGraph g2 = random_geometric(50, 0.2, b);
  g1.validate();
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
}

TEST(Generators, RandomConnectedHasPathBackbone) {
  util::Rng rng(7);
  const CsrGraph g = random_connected(20, 10, rng);
  g.validate();
  EXPECT_GE(g.num_edges(), 19);
  EXPECT_LE(g.num_edges(), 29);
}

TEST(Metrics, EdgeCutCountsCrossingWeightOnce) {
  const CsrGraph g = grid2d(2, 2);  // square: 4 edges
  Partition part = {0, 0, 1, 1};    // cut the two vertical edges
  EXPECT_DOUBLE_EQ(edge_cut(g, part), 2.0);
  Partition one = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(edge_cut(g, one), 0.0);
}

TEST(Metrics, MigrationVolumeWeighsMovedVertices) {
  GraphBuilder b(3);
  b.set_vertex_weight(0, 1.0);
  b.set_vertex_weight(1, 2.0);
  b.set_vertex_weight(2, 4.0);
  const CsrGraph g = b.build();
  Partition from = {0, 0, 1};
  Partition to = {0, 1, 1};
  EXPECT_DOUBLE_EQ(migration_volume(g, from, to), 2.0);
  EXPECT_DOUBLE_EQ(migration_volume(g, from, from), 0.0);
}

TEST(Metrics, ImbalanceRatio) {
  const CsrGraph g = CsrGraph::edgeless(4);
  Partition perfect = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(imbalance(g, perfect, 2), 1.0);
  Partition skewed = {0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(imbalance(g, skewed, 2), 1.5);
}

TEST(Metrics, UnifiedCostCombinesCutAndMovement) {
  const CsrGraph g = grid2d(2, 2);
  Partition old_part = {0, 0, 1, 1};
  Partition new_part = {0, 1, 1, 0};
  const double cut = edge_cut(g, new_part);
  const double move = migration_volume(g, old_part, new_part);
  EXPECT_DOUBLE_EQ(unified_cost(g, old_part, new_part, 2.0), cut + 2.0 * move);
}

}  // namespace
}  // namespace prema::graph
