#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"

namespace prema::sim {
namespace {

using util::TimeCategory;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(1.0, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSuppressesEvent) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelOfFiredEventIsHarmless) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.run_next();
  q.cancel(a);  // already fired
  q.cancel(kNoEvent);
  EXPECT_TRUE(q.empty());
  // A fresh event still works and counts correctly.
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(1.0);
    q.schedule(1.5, [&] { times.push_back(1.5); });
  });
  while (!q.empty()) times.push_back(q.next_time()), q.run_next();
  // next_time observed before each run: 1.0, then 1.5
  EXPECT_EQ(times.size(), 4u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(NetworkModel, CostsScaleWithSize) {
  NetworkModel net;
  EXPECT_GT(net.transfer_time(100000), net.transfer_time(100));
  EXPECT_GT(net.send_cpu(100000), net.send_cpu(0));
  EXPECT_GT(net.recv_cpu(100000), net.recv_cpu(0));
  // Latency floor: even an empty message takes at least the wire latency.
  EXPECT_GE(net.transfer_time(0), net.latency_s);
}

TEST(Engine, ComputeSecondsConversion) {
  MachineConfig cfg;
  cfg.mflops = 333.0;
  EXPECT_NEAR(cfg.compute_seconds(500.0), 1.5015, 1e-3);
}

TEST(Engine, ProcAdvanceChargesLedger) {
  MachineConfig cfg;
  cfg.nprocs = 2;
  Engine eng(cfg);
  eng.proc(0).advance(TimeCategory::kComputation, 2.5);
  EXPECT_DOUBLE_EQ(eng.proc(0).clock(), 2.5);
  EXPECT_DOUBLE_EQ(eng.proc(0).ledger().get(TimeCategory::kComputation), 2.5);
  EXPECT_DOUBLE_EQ(eng.proc(1).clock(), 0.0);
}

TEST(Engine, CatchUpChargesGapOnce) {
  MachineConfig cfg;
  cfg.nprocs = 1;
  Engine eng(cfg);
  eng.proc(0).catch_up(3.0);
  eng.proc(0).catch_up(2.0);  // already past; no-op
  EXPECT_DOUBLE_EQ(eng.proc(0).clock(), 3.0);
  EXPECT_DOUBLE_EQ(eng.proc(0).ledger().get(TimeCategory::kIdle), 3.0);
}

TEST(Engine, CatchUpHonoursWaitCategory) {
  MachineConfig cfg;
  cfg.nprocs = 1;
  Engine eng(cfg);
  eng.proc(0).catch_up(1.0, TimeCategory::kSynchronization);
  EXPECT_DOUBLE_EQ(eng.proc(0).ledger().get(TimeCategory::kSynchronization), 1.0);
  EXPECT_DOUBLE_EQ(eng.proc(0).ledger().get(TimeCategory::kIdle), 0.0);
}

TEST(Engine, RunDrainsQueueAndReportsStats) {
  MachineConfig c1; c1.nprocs = 1; Engine eng(c1);
  int fired = 0;
  eng.at(1.0, [&] { ++fired; });
  eng.after(2.0, [&] { ++fired; });
  const RunStats stats = eng.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(stats.events, 2u);
  EXPECT_DOUBLE_EQ(stats.end_time, 2.0);
  EXPECT_FALSE(stats.hit_event_limit);
}

TEST(Engine, EventLimitStopsRunawayLoop) {
  MachineConfig c1; c1.nprocs = 1; Engine eng(c1);
  std::function<void()> loop = [&] { eng.after(1.0, loop); };
  eng.at(0.0, loop);
  const RunStats stats = eng.run(/*max_events=*/100);
  EXPECT_TRUE(stats.hit_event_limit);
  EXPECT_EQ(stats.events, 100u);
}

TEST(Engine, TimeLimitStopsRun) {
  MachineConfig c1; c1.nprocs = 1; Engine eng(c1);
  std::function<void()> loop = [&] { eng.after(1.0, loop); };
  eng.at(0.0, loop);
  const RunStats stats = eng.run(UINT64_MAX, /*max_time=*/10.0);
  EXPECT_TRUE(stats.hit_time_limit);
  EXPECT_LE(stats.end_time, 10.0);
}

TEST(Engine, PerProcRngStreamsAreIndependent) {
  MachineConfig cfg;
  cfg.nprocs = 2;
  cfg.seed = 42;
  Engine a(cfg), b(cfg);
  EXPECT_EQ(a.proc(0).rng().next(), b.proc(0).rng().next());
  Engine c(cfg);
  EXPECT_NE(c.proc(0).rng().next(), c.proc(1).rng().next());
}

TEST(EngineDeathTest, PastEventAborts) {
  MachineConfig c1; c1.nprocs = 1; Engine eng(c1);
  eng.at(5.0, [] {});
  eng.run();
  EXPECT_DEATH(eng.at(1.0, [] {}), "past");
}

}  // namespace
}  // namespace prema::sim
