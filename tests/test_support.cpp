#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/byte_buffer.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/time_ledger.hpp"

namespace prema::util {
namespace {

TEST(ByteBuffer, RoundTripsScalars) {
  ByteWriter w;
  w.put<std::uint32_t>(42);
  w.put<double>(3.25);
  w.put<std::int8_t>(-7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), 42u);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::int8_t>(), -7);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, RoundTripsStringsAndVectors) {
  ByteWriter w;
  w.put_string("mobile object layer");
  w.put_vector<std::uint16_t>({1, 2, 3, 65535});
  w.put_string("");
  w.put_bytes(std::vector<std::uint8_t>{9, 8, 7});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "mobile object layer");
  EXPECT_EQ(r.get_vector<std::uint16_t>(), (std::vector<std::uint16_t>{1, 2, 3, 65535}));
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_bytes(), (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, NestedPayloadRoundTrips) {
  // The MOL wraps application payloads inside its own envelope this way.
  ByteWriter inner;
  inner.put<std::uint64_t>(123456789ULL);
  ByteWriter outer;
  outer.put<std::uint32_t>(7);
  outer.put_bytes(inner.bytes());
  ByteReader r(outer.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), 7u);
  auto inner_bytes = r.get_bytes();
  ByteReader ri(inner_bytes);
  EXPECT_EQ(ri.get<std::uint64_t>(), 123456789ULL);
}

TEST(ByteBufferDeathTest, OverrunAborts) {
  ByteWriter w;
  w.put<std::uint16_t>(1);
  ByteReader r(w.bytes());
  (void)r.get<std::uint16_t>();
  EXPECT_DEATH((void)r.get<std::uint32_t>(), "overrun");
}

TEST(ByteBuffer, TakeLeavesWriterEmpty) {
  ByteWriter w;
  w.put<int>(5);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), sizeof(int));
  EXPECT_EQ(w.size(), 0u);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    const double v = r.uniform(2.0, 5.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, RangeCoversEndpoints) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = r.range(3, 6);
    ASSERT_GE(x, 3);
    ASSERT_LE(x, 6);
    saw_lo |= x == 3;
    saw_hi |= x == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(99);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Stats, RunningStatsMatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic example set
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.5), 2.5);
}

TEST(Stats, SummarizeAggregates) {
  std::vector<double> xs = {10.0, 20.0, 30.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 30.0);
  EXPECT_DOUBLE_EQ(s.p50, 20.0);
  EXPECT_DOUBLE_EQ(s.sum, 60.0);
}

TEST(Stats, MergeMatchesSingleAccumulator) {
  // Splitting a sample set across two accumulators and merging must agree
  // with one accumulator that saw everything (Chan et al. parallel variance).
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats whole, left, right;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.add(xs[i]);
    (i < 3 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
  EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Stats, MergeWithEmptyIsIdentity) {
  RunningStats s, empty;
  s.add(1.0);
  s.add(3.0);
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);

  RunningStats t;
  t.merge(s);  // merging into an empty accumulator copies the other side
  EXPECT_EQ(t.count(), 2u);
  EXPECT_DOUBLE_EQ(t.mean(), 2.0);
  EXPECT_DOUBLE_EQ(t.min(), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 3.0);
}

TEST(TimeLedger, ChargesAccumulatePerCategory) {
  TimeLedger l;
  l.charge(TimeCategory::kComputation, 2.0);
  l.charge(TimeCategory::kComputation, 1.0);
  l.charge(TimeCategory::kIdle, 4.0);
  l.charge(TimeCategory::kMessaging, 0.5);
  EXPECT_DOUBLE_EQ(l.get(TimeCategory::kComputation), 3.0);
  EXPECT_DOUBLE_EQ(l.total(), 7.5);
  EXPECT_DOUBLE_EQ(l.busy(), 3.5);
  EXPECT_DOUBLE_EQ(l.overhead(), 0.5);
}

TEST(TimeLedger, CallbackCountsAsUsefulWork) {
  TimeLedger l;
  l.charge(TimeCategory::kCallback, 2.0);
  l.charge(TimeCategory::kScheduling, 0.25);
  EXPECT_DOUBLE_EQ(l.overhead(), 0.25);
}

TEST(TimeLedger, AccumulateMerges) {
  TimeLedger a, b;
  a.charge(TimeCategory::kPolling, 1.0);
  b.charge(TimeCategory::kPolling, 2.0);
  b.charge(TimeCategory::kSynchronization, 3.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.get(TimeCategory::kPolling), 3.0);
  EXPECT_DOUBLE_EQ(a.get(TimeCategory::kSynchronization), 3.0);
}

TEST(TimeLedgerDeathTest, NegativeChargeAborts) {
  TimeLedger l;
  EXPECT_DEATH(l.charge(TimeCategory::kIdle, -1.0), "negative");
}

TEST(TimeLedger, CategoryNamesMatchFigureLegends) {
  EXPECT_EQ(time_category_name(TimeCategory::kPartitionCalc), "Partition Calculation");
  EXPECT_EQ(time_category_name(TimeCategory::kPolling), "Polling Thread");
  EXPECT_EQ(time_category_name(TimeCategory::kCallback), "Callback Routine");
}

TEST(TimeLedger, TotalIsSumOverAllCategories) {
  TimeLedger l;
  double expected = 0.0;
  for (std::size_t c = 0; c < kTimeCategoryCount; ++c) {
    const double seconds = 0.25 * static_cast<double>(c + 1);
    l.charge(static_cast<TimeCategory>(c), seconds);
    expected += seconds;
  }
  double by_get = 0.0;
  for (std::size_t c = 0; c < kTimeCategoryCount; ++c) {
    by_get += l.get(static_cast<TimeCategory>(c));
  }
  EXPECT_DOUBLE_EQ(l.total(), expected);
  EXPECT_DOUBLE_EQ(l.total(), by_get);
}

TEST(TimeLedger, BusyAndOverheadPartitionTotal) {
  TimeLedger l;
  for (std::size_t c = 0; c < kTimeCategoryCount; ++c) {
    l.charge(static_cast<TimeCategory>(c), 1.0 + static_cast<double>(c));
  }
  // busy = total - idle, and overhead excludes useful work and idle.
  EXPECT_DOUBLE_EQ(l.busy(), l.total() - l.get(TimeCategory::kIdle));
  EXPECT_DOUBLE_EQ(l.overhead(), l.busy() - l.get(TimeCategory::kComputation) -
                                     l.get(TimeCategory::kCallback));
  l.clear();
  EXPECT_DOUBLE_EQ(l.total(), 0.0);
  EXPECT_DOUBLE_EQ(l.busy(), 0.0);
  EXPECT_DOUBLE_EQ(l.overhead(), 0.0);
}

TEST(TimeLedger, EveryCategoryHasADistinctName) {
  std::vector<std::string_view> names;
  for (std::size_t c = 0; c < kTimeCategoryCount; ++c) {
    const auto name = time_category_name(static_cast<TimeCategory>(c));
    EXPECT_FALSE(name.empty()) << "category " << c << " lacks a legend name";
    for (const auto& seen : names) EXPECT_NE(name, seen);
    names.push_back(name);
  }
}

}  // namespace
}  // namespace prema::util
