#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dmcs/sim_machine.hpp"
#include "prema/runtime.hpp"
#include "support/time_ledger.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace prema {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::TimeCategory;

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

TEST(TraceBuffer, OverflowKeepsNewestEvents) {
  trace::TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    trace::TraceEvent e;
    e.kind = trace::EventKind::kPollWakeup;
    e.t0 = static_cast<double>(i);
    buf.push(e);
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first iteration over the survivors: 6, 7, 8, 9.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].t0, 6.0 + static_cast<double>(i));
  }
}

TEST(TraceBuffer, NoDropsBelowCapacity) {
  trace::TraceBuffer buf(8);
  trace::TraceEvent e;
  e.kind = trace::EventKind::kTermWave;
  for (int i = 0; i < 8; ++i) buf.push(e);
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// A small traced PREMA application on the emulated machine
// ---------------------------------------------------------------------------

class Blob : public mol::MobileObject {
 public:
  explicit Blob(double mflop = 10.0) : mflop_(mflop) {}
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(ByteWriter& w) const override { w.put<double>(mflop_); }
  static std::unique_ptr<mol::MobileObject> make(ByteReader& r) {
    return std::make_unique<Blob>(r.get<double>());
  }
  double mflop_;
};

struct TracedRun {
  double makespan = 0.0;
  std::string json;
  std::string summary;
  std::vector<util::TimeLedger> ledgers;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
};

/// Run a small unbalanced workload (all objects start on rank 0) with the
/// given settings and return the exported artifacts.
TracedRun traced_run(bool enable_trace, std::uint64_t seed,
                     std::size_t buffer_capacity = 1 << 14) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = 4;
  mcfg.seed = seed;
  dmcs::SimMachine machine(mcfg);  // explicit polling: deterministic ledgers

  RuntimeConfig rcfg;
  rcfg.policy = "work_stealing";
  rcfg.trace.enabled = enable_trace;
  rcfg.trace.buffer_capacity = buffer_capacity;
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Blob::make);

  const auto work = rt.register_object_handler(
      "test.work", [](Context& ctx, mol::MobileObject& obj, ByteReader&,
                      const mol::Delivery&) {
        ctx.compute(static_cast<Blob&>(obj).mflop_);
      });
  rt.set_main([work](Context& ctx) {
    if (ctx.rank() != 0) return;
    for (int i = 0; i < 64; ++i) {
      auto ptr = ctx.add_object(std::make_unique<Blob>(10.0));
      ctx.message(ptr, work);
    }
  });

  TracedRun out;
  out.makespan = rt.run();
  for (ProcId p = 0; p < machine.nprocs(); ++p) {
    out.ledgers.push_back(machine.ledger(p));
  }
  if (const auto* rec = machine.tracer()) {
    std::ostringstream json;
    trace::write_chrome_trace(json, *rec);
    out.json = json.str();
    std::ostringstream summary;
    trace::write_summary(summary, *rec, out.ledgers);
    out.summary = summary.str();
    out.events = rec->total_events();
    out.dropped = rec->total_dropped();
  }
  return out;
}

TEST(TraceRun, ChromeExportIsValidAndCoversEventKinds) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with PREMA_TRACE=0";
  const TracedRun run = traced_run(/*enable_trace=*/true, /*seed=*/7);
  ASSERT_GT(run.events, 0u);

  const auto check = trace::check_chrome_trace(run.json);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.tracks, 4u);
  EXPECT_GE(check.events, 64u);  // at least one span per executed unit

  // All the layers show up: work units (annotated with the handler name),
  // messages, migrations out of the overloaded rank, policy decisions, and
  // the termination detector's waves.
  EXPECT_NE(run.json.find("\"name\":\"test.work\""), std::string::npos);
  EXPECT_NE(run.json.find("\"name\":\"send\""), std::string::npos);
  EXPECT_NE(run.json.find("\"name\":\"recv\""), std::string::npos);
  EXPECT_NE(run.json.find("\"name\":\"migrate-out\""), std::string::npos);
  EXPECT_NE(run.json.find("\"name\":\"migrate-in\""), std::string::npos);
  EXPECT_NE(run.json.find("\"name\":\"work_stealing\""), std::string::npos);
  EXPECT_NE(run.json.find("\"name\":\"term-wave\""), std::string::npos);
}

TEST(TraceRun, SimBackendTracesAreDeterministic) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with PREMA_TRACE=0";
  const TracedRun a = traced_run(/*enable_trace=*/true, /*seed=*/2003);
  const TracedRun b = traced_run(/*enable_trace=*/true, /*seed=*/2003);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.json, b.json);  // byte-identical export for identical runs
  EXPECT_EQ(a.summary, b.summary);
}

TEST(TraceRun, TracingDoesNotPerturbTheEmulation) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with PREMA_TRACE=0";
  const TracedRun off = traced_run(/*enable_trace=*/false, /*seed=*/2003);
  const TracedRun on = traced_run(/*enable_trace=*/true, /*seed=*/2003);
  EXPECT_EQ(off.json, "");
  // Recording never advances the virtual clocks, so the emulated run is
  // bit-identical with tracing on or off.
  EXPECT_DOUBLE_EQ(on.makespan, off.makespan);
  ASSERT_EQ(on.ledgers.size(), off.ledgers.size());
  for (std::size_t p = 0; p < on.ledgers.size(); ++p) {
    for (std::size_t c = 0; c < util::kTimeCategoryCount; ++c) {
      const auto cat = static_cast<TimeCategory>(c);
      EXPECT_DOUBLE_EQ(on.ledgers[p].get(cat), off.ledgers[p].get(cat));
    }
  }
}

TEST(TraceRun, SummaryReconcilesWithTimeLedger) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with PREMA_TRACE=0";
  const TracedRun run = traced_run(/*enable_trace=*/true, /*seed=*/7);
  ASSERT_EQ(run.dropped, 0u);

  // With explicit polling a work span is exactly the unit's computation, so
  // the exact span-seconds counter must match the ledgers' Computation total.
  double ledger_comp = 0.0;
  for (const auto& l : run.ledgers) {
    ledger_comp += l.get(TimeCategory::kComputation);
  }
  EXPECT_GT(ledger_comp, 0.0);
  EXPECT_NE(run.summary.find("ledger reconciliation"), std::string::npos);

  // The reported delta between traced span time and the ledger must be tiny
  // (the summary prints it; here we recompute it from the counters' side by
  // checking the summary quotes a sub-0.01% delta).
  const auto pos = run.summary.find("(%");
  (void)pos;
  std::istringstream is(run.summary);
  std::string line;
  bool found = false;
  while (std::getline(is, line)) {
    if (line.find("ledger reconciliation") == std::string::npos) continue;
    found = true;
    const auto open = line.find('(');
    ASSERT_NE(open, std::string::npos) << line;
    const double delta_pct = std::abs(std::strtod(line.c_str() + open + 1, nullptr));
    EXPECT_LT(delta_pct, 0.01) << line;
  }
  EXPECT_TRUE(found) << run.summary;
}

TEST(TraceRun, RingOverflowIsCountedAndExportStaysValid) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "built with PREMA_TRACE=0";
  // A tiny ring forces drops; the export must stay structurally valid and
  // the recorder must own up to the loss.
  const TracedRun run = traced_run(/*enable_trace=*/true, /*seed=*/7,
                                   /*buffer_capacity=*/32);
  EXPECT_GT(run.dropped, 0u);
  const auto check = trace::check_chrome_trace(run.json);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_NE(run.summary.find("dropped to ring overflow"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checker negative cases
// ---------------------------------------------------------------------------

TEST(ChromeTraceCheck, RejectsMalformedDocuments) {
  EXPECT_FALSE(trace::check_chrome_trace("not json").ok);
  EXPECT_FALSE(trace::check_chrome_trace("{}").ok);
  EXPECT_FALSE(trace::check_chrome_trace("{\"traceEvents\":[{}]}").ok);
  // Non-monotonic timestamps within one track.
  const char* bad =
      "{\"traceEvents\":["
      "{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"name\":\"a\",\"ts\":2.0,\"s\":\"t\"},"
      "{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"name\":\"b\",\"ts\":1.0,\"s\":\"t\"}]}";
  const auto check = trace::check_chrome_trace(bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("monotonic"), std::string::npos);
}

TEST(ChromeTraceCheck, AcceptsMinimalValidTrace) {
  const char* good =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"w\",\"ts\":1.0,\"dur\":2.0},"
      "{\"ph\":\"i\",\"pid\":0,\"tid\":1,\"name\":\"i\",\"ts\":0.5,\"s\":\"t\"}]}";
  const auto check = trace::check_chrome_trace(good);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 2u);
  EXPECT_EQ(check.tracks, 2u);
}

}  // namespace
}  // namespace prema
