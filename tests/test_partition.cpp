#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "partition/adaptive.hpp"
#include "partition/coarsen.hpp"
#include "partition/multilevel.hpp"
#include "partition/refine.hpp"

namespace prema::part {
namespace {

using graph::CsrGraph;
using graph::Partition;
using graph::VertexId;

bool uses_all_parts(const Partition& p, int k) {
  std::set<std::int32_t> seen(p.begin(), p.end());
  return static_cast<int>(seen.size()) == k &&
         *seen.begin() == 0 && *seen.rbegin() == k - 1;
}

TEST(Coarsen, HalvesGridRoughly) {
  util::Rng rng(3);
  const CsrGraph g = graph::grid2d(16, 16);
  const CoarseLevel lvl = coarsen_once(g, rng);
  EXPECT_LT(lvl.graph.num_vertices(), g.num_vertices());
  EXPECT_GE(lvl.graph.num_vertices(), g.num_vertices() / 2);
  // Weight is conserved.
  EXPECT_DOUBLE_EQ(lvl.graph.total_vertex_weight(), g.total_vertex_weight());
  lvl.graph.validate();
  // Mapping covers every fine vertex.
  for (const auto c : lvl.fine_to_coarse) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, lvl.graph.num_vertices());
  }
}

TEST(Coarsen, StopsOnEdgelessGraph) {
  util::Rng rng(3);
  const CsrGraph g = CsrGraph::edgeless(100);
  const auto levels = coarsen_to(g, 10, rng);
  EXPECT_TRUE(levels.empty());  // matching cannot contract anything
}

TEST(Coarsen, ReachesTarget) {
  util::Rng rng(3);
  const CsrGraph g = graph::grid2d(32, 32);
  const auto levels = coarsen_to(g, 128, rng);
  ASSERT_FALSE(levels.empty());
  EXPECT_LE(levels.back().graph.num_vertices(), 2 * 128);
  EXPECT_DOUBLE_EQ(levels.back().graph.total_vertex_weight(),
                   g.total_vertex_weight());
}

TEST(Lpt, BalancesSkewedWeights) {
  graph::GraphBuilder b(5);
  const double w[] = {10, 7, 5, 4, 4};
  for (VertexId v = 0; v < 5; ++v) b.set_vertex_weight(v, w[v]);
  const CsrGraph g = b.build();
  const Partition p = lpt_partition(g, 2);
  // LPT places 10 | 7, then 5 -> lighter (7), 4 -> lighter (10), 4 -> 12:
  // {10, 4} vs {7, 5, 4} = 14 vs 16.
  const auto pw = graph::part_weights(g, p, 2);
  EXPECT_DOUBLE_EQ(std::max(pw[0], pw[1]), 16.0);
  EXPECT_DOUBLE_EQ(std::min(pw[0], pw[1]), 14.0);
}

class MultilevelSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (grid, k)

TEST_P(MultilevelSweep, BalancedAndLocalized) {
  const auto [side, k] = GetParam();
  const CsrGraph g = graph::grid2d(side, side);
  PartitionOptions opts;
  opts.k = k;
  const Partition p = multilevel_kway(g, opts);
  ASSERT_EQ(p.size(), static_cast<std::size_t>(g.num_vertices()));
  EXPECT_TRUE(uses_all_parts(p, k));
  EXPECT_LE(graph::imbalance(g, p, k), 1.12);
  // A sane cut: far below the worst case and within a constant factor of the
  // ideal grid separator (k-1 straight lines of length `side`).
  const double cut = graph::edge_cut(g, p);
  EXPECT_LT(cut, 6.0 * side * k);
}

INSTANTIATE_TEST_SUITE_P(Grids, MultilevelSweep,
                         ::testing::Values(std::make_tuple(16, 2),
                                           std::make_tuple(16, 4),
                                           std::make_tuple(24, 3),
                                           std::make_tuple(32, 8),
                                           std::make_tuple(20, 7)));

TEST(Multilevel, EdgelessFallsBackToLpt) {
  graph::GraphBuilder b(40);
  for (VertexId v = 0; v < 40; ++v) b.set_vertex_weight(v, (v % 4) + 1.0);
  const CsrGraph g = b.build();
  PartitionOptions opts;
  opts.k = 5;
  const Partition p = multilevel_kway(g, opts);
  EXPECT_LE(graph::imbalance(g, p, 5), 1.05);
}

TEST(Multilevel, SingletonAndTrivialCases) {
  const CsrGraph g = graph::grid2d(4, 4);
  PartitionOptions opts;
  opts.k = 1;
  const Partition p = multilevel_kway(g, opts);
  EXPECT_TRUE(std::all_of(p.begin(), p.end(), [](auto x) { return x == 0; }));
}

TEST(Multilevel, DeterministicForFixedSeed) {
  const CsrGraph g = graph::grid2d(20, 20);
  PartitionOptions opts;
  opts.k = 4;
  opts.seed = 99;
  EXPECT_EQ(multilevel_kway(g, opts), multilevel_kway(g, opts));
}

TEST(Refine, ImprovesABadSplit) {
  const CsrGraph g = graph::grid2d(16, 16);
  // Interleaved stripes: terrible cut, perfect balance.
  Partition p(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    p[static_cast<std::size_t>(v)] = (v / 16) % 2;
  }
  const double before = graph::edge_cut(g, p);
  RefineOptions opts;
  refine_kway(g, p, 2, opts);
  const double after = graph::edge_cut(g, p);
  EXPECT_LT(after, before);
  EXPECT_LE(graph::imbalance(g, p, 2), opts.imbalance_tolerance + 1e-9);
}

TEST(Rebalance, FixesOverloadedPart) {
  const CsrGraph g = graph::grid2d(10, 10);
  Partition p(100, 0);
  for (int v = 0; v < 10; ++v) p[static_cast<std::size_t>(v)] = 1;  // 90/10
  RefineOptions opts;
  const int moves = rebalance_kway(g, p, 2, opts);
  EXPECT_GT(moves, 0);
  EXPECT_LE(graph::imbalance(g, p, 2), opts.imbalance_tolerance + 1e-9);
}

TEST(RemapLabels, RecoversAPermutation) {
  const CsrGraph g = graph::grid2d(8, 8);
  PartitionOptions opts;
  opts.k = 4;
  const Partition base = multilevel_kway(g, opts);
  // Permute labels 0->2, 1->3, 2->1, 3->0; remap must undo it exactly.
  const int perm[] = {2, 3, 1, 0};
  Partition shuffled(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    shuffled[i] = perm[base[i]];
  }
  const Partition remapped = remap_labels(g, base, shuffled, 4);
  EXPECT_EQ(remapped, base);
}

TEST(Adaptive, RestoresBalanceAfterWeightDrift) {
  // Balanced partition of a grid; then one region's weights spike 8x (the
  // "crack tip" scenario). AdaptiveRepart must rebalance.
  const CsrGraph base = graph::grid2d(16, 16);
  PartitionOptions popts;
  popts.k = 4;
  const Partition old_part = multilevel_kway(base, popts);

  graph::GraphBuilder b(base.num_vertices());
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    const bool hot = (v % 16) < 4 && (v / 16) < 4;  // 4x4 corner
    b.set_vertex_weight(v, hot ? 8.0 : 1.0);
  }
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    const auto nbrs = base.neighbors(v);
    for (const auto u : nbrs) {
      if (u > v) b.add_edge(v, u, 1.0);
    }
  }
  const CsrGraph drifted = b.build();
  EXPECT_GT(graph::imbalance(drifted, old_part, 4), 1.3);

  AdaptiveOptions aopts;
  aopts.k = 4;
  aopts.alpha = 1.0;
  const AdaptiveResult res = adaptive_repartition(drifted, old_part, aopts);
  EXPECT_LE(graph::imbalance(drifted, res.partition, 4), 1.12);
  EXPECT_GT(res.migration, 0.0);
  EXPECT_DOUBLE_EQ(res.cost, res.edge_cut + aopts.alpha * res.migration);
}

TEST(Adaptive, HighAlphaPrefersLowMigration) {
  // With movement very expensive, the unified objective should pick a
  // partition that moves (weakly) less than the cheap-movement setting.
  const CsrGraph base = graph::grid2d(12, 12);
  PartitionOptions popts;
  popts.k = 3;
  const Partition old_part = multilevel_kway(base, popts);
  graph::GraphBuilder b(base.num_vertices());
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    b.set_vertex_weight(v, (v % 12) < 4 ? 4.0 : 1.0);
  }
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    for (const auto u : base.neighbors(v)) {
      if (u > v) b.add_edge(v, u, 1.0);
    }
  }
  const CsrGraph drifted = b.build();
  AdaptiveOptions cheap;
  cheap.k = 3;
  cheap.alpha = 0.01;
  AdaptiveOptions dear;
  dear.k = 3;
  dear.alpha = 100.0;
  const auto r_cheap = adaptive_repartition(drifted, old_part, cheap);
  const auto r_dear = adaptive_repartition(drifted, old_part, dear);
  EXPECT_LE(r_dear.migration, r_cheap.migration + 1e-9);
}

TEST(Adaptive, NoDriftMeansNoMovement) {
  const CsrGraph g = graph::grid2d(12, 12);
  PartitionOptions popts;
  popts.k = 4;
  const Partition old_part = multilevel_kway(g, popts);
  AdaptiveOptions aopts;
  aopts.k = 4;
  aopts.alpha = 10.0;
  const auto res = adaptive_repartition(g, old_part, aopts);
  // Already balanced: the diffusive candidate should win with (near-)zero
  // migration under a high alpha.
  EXPECT_FALSE(res.chose_scratch_remap);
  EXPECT_LT(res.migration, 0.05 * g.total_vertex_weight());
}

TEST(Adaptive, EdgelessWorkloadRebalances) {
  // The synthetic benchmark's graph: no edges, skewed weights.
  graph::GraphBuilder b(64);
  for (VertexId v = 0; v < 64; ++v) b.set_vertex_weight(v, v < 8 ? 10.0 : 1.0);
  const CsrGraph g = b.build();
  Partition old_part(64);
  for (VertexId v = 0; v < 64; ++v) old_part[static_cast<std::size_t>(v)] = v / 16;
  AdaptiveOptions aopts;
  aopts.k = 4;
  const auto res = adaptive_repartition(g, old_part, aopts);
  EXPECT_LE(graph::imbalance(g, res.partition, 4), 1.1);
}

TEST(ModeledCost, GrowsWithGraphSize) {
  const CsrGraph small = graph::grid2d(8, 8);
  const CsrGraph big = graph::grid2d(64, 64);
  EXPECT_GT(modeled_partition_seconds(big, 8), modeled_partition_seconds(small, 8));
  EXPECT_GT(modeled_partition_seconds(small, 8), 0.0);
}

}  // namespace
}  // namespace prema::part
