#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "dmcs/sim_machine.hpp"
#include "ilb/policies/sfc.hpp"
#include "ilb/sfc_key.hpp"
#include "mol/comm_graph.hpp"
#include "prema/runtime.hpp"

/// \file test_commgraph.cpp
/// The topology slab behind the sfc/cluster policies: edge-counter
/// bookkeeping, the migration slice (extract/install) conservation law, the
/// associativity of slab merging, golden space-filling-curve keys, and an
/// end-to-end run proving the counters follow migrating objects through the
/// full MOL wire path.

namespace prema {
namespace {

using mol::CommGraph;
using mol::Coords;
using mol::MobilePtr;

// ---------------------------------------------------------------------------
// CommGraph unit tests
// ---------------------------------------------------------------------------

TEST(CommGraph, RecordSendAccumulatesEdgesProcTrafficAndTotals) {
  CommGraph g;
  const MobilePtr a{0, 0}, b{0, 1}, c{1, 0};
  g.record_send(a, b, 0, 100);
  g.record_send(a, b, 0, 100);
  g.record_send(a, c, 1, 50);

  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].src, a);
  EXPECT_EQ(edges[0].dst, b);
  EXPECT_EQ(edges[0].msgs, 2u);
  EXPECT_EQ(edges[0].bytes, 200u);
  EXPECT_EQ(edges[1].dst, c);
  EXPECT_EQ(edges[1].bytes, 50u);

  const auto by_proc = g.proc_traffic();
  ASSERT_EQ(by_proc.size(), 2u);
  EXPECT_EQ(by_proc[0].proc, 0);
  EXPECT_EQ(by_proc[0].msgs, 2u);
  EXPECT_EQ(by_proc[1].proc, 1);
  EXPECT_EQ(by_proc[1].bytes, 50u);

  EXPECT_EQ(g.totals().msgs, 3u);
  EXPECT_EQ(g.totals().bytes, 250u);
}

TEST(CommGraph, CoordsRegisterOverwriteAndMiss) {
  CommGraph g;
  const MobilePtr a{0, 0};
  EXPECT_FALSE(g.coords(a).has_value());
  g.set_coords(a, {0.25, 0.5, 0.75});
  auto c = g.coords(a);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->y, 0.5);
  g.set_coords(a, {1.0, 1.0, 1.0});  // idempotent overwrite, not a merge
  c = g.coords(a);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->x, 1.0);
}

TEST(CommGraph, ExtractTakesOutgoingSliceAndShrinksTotals) {
  CommGraph g;
  const MobilePtr a{0, 0}, b{0, 1};
  g.set_coords(a, {0.1, 0.2, 0.3});
  g.record_send(a, b, 0, 10);
  g.record_send(b, a, 0, 20);  // incoming edge: stays with its sender b

  const auto slice = g.extract(a);
  ASSERT_TRUE(slice.coords.has_value());
  EXPECT_DOUBLE_EQ(slice.coords->z, 0.3);
  ASSERT_EQ(slice.edges.size(), 1u);
  EXPECT_EQ(slice.edges[0].src, a);
  EXPECT_EQ(slice.edges[0].bytes, 10u);

  EXPECT_FALSE(g.coords(a).has_value());
  const auto rest = g.edges();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].src, b);
  EXPECT_EQ(g.totals().msgs, 1u);
  EXPECT_EQ(g.totals().bytes, 20u);
}

TEST(CommGraph, ExtractInstallPairConservesMachineTotals) {
  CommGraph src, dst;
  const MobilePtr a{0, 0}, b{0, 1}, c{1, 0};
  src.record_send(a, b, 0, 100);
  src.record_send(a, c, 1, 40);
  src.record_send(b, a, 0, 60);
  dst.record_send(c, a, 0, 7);
  const auto total_before = src.totals().bytes + dst.totals().bytes;
  const auto msgs_before = src.totals().msgs + dst.totals().msgs;

  // Migrate a from src to dst, then b after it: totals are conserved at
  // every step, and a's counters keep growing additively at the new home.
  dst.install(a, src.extract(a));
  EXPECT_EQ(src.totals().bytes + dst.totals().bytes, total_before);
  dst.record_send(a, b, 0, 100);
  dst.install(b, src.extract(b));
  EXPECT_EQ(src.totals().msgs + dst.totals().msgs, msgs_before + 1);
  EXPECT_EQ(src.totals().bytes + dst.totals().bytes, total_before + 100);

  const auto edges = dst.edges();
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0].src, a);
  EXPECT_EQ(edges[0].dst, b);
  EXPECT_EQ(edges[0].msgs, 2u);  // merged: carried slice + local re-record
  EXPECT_EQ(edges[0].bytes, 200u);
}

TEST(CommGraph, SlabMergeIsAssociative) {
  // Three slabs' worth of edge counts merged in two different orders (and
  // groupings) must produce the identical slab — the property that makes the
  // machine-wide graph well defined no matter the migration schedule.
  const MobilePtr a{0, 0}, b{0, 1}, c{1, 0};
  struct Rec {
    MobilePtr src, dst;
    std::uint64_t msgs, bytes;
  };
  const std::vector<std::vector<Rec>> slabs = {
      {{a, b, 1, 10}, {a, c, 2, 20}},
      {{a, b, 3, 30}, {b, c, 1, 5}},
      {{b, c, 4, 40}, {a, c, 1, 1}},
  };
  auto merge_into = [](CommGraph& g, const std::vector<Rec>& slab) {
    for (const auto& r : slab) g.merge_edge(r.src, r.dst, r.msgs, r.bytes);
  };
  CommGraph left;   // (s0 + s1) + s2
  CommGraph right;  // s0 + (s2 + s1) — different order and grouping
  merge_into(left, slabs[0]);
  merge_into(left, slabs[1]);
  merge_into(left, slabs[2]);
  merge_into(right, slabs[2]);
  merge_into(right, slabs[1]);
  merge_into(right, slabs[0]);

  const auto le = left.edges();
  const auto re = right.edges();
  ASSERT_EQ(le.size(), re.size());
  for (std::size_t i = 0; i < le.size(); ++i) {
    EXPECT_EQ(le[i].src, re[i].src);
    EXPECT_EQ(le[i].dst, re[i].dst);
    EXPECT_EQ(le[i].msgs, re[i].msgs);
    EXPECT_EQ(le[i].bytes, re[i].bytes);
  }
  EXPECT_EQ(left.totals().msgs, right.totals().msgs);
  EXPECT_EQ(left.totals().bytes, right.totals().bytes);
  EXPECT_EQ(left.totals().msgs, 12u);
  EXPECT_EQ(left.totals().bytes, 106u);
}

// ---------------------------------------------------------------------------
// Space-filling-curve keys
// ---------------------------------------------------------------------------

TEST(SfcKey, MortonGoldens) {
  // Bit i of x lands at key bit 3i, y at 3i+1, z at 3i+2.
  EXPECT_EQ(ilb::morton_from_cells(0, 0, 0), 0u);
  EXPECT_EQ(ilb::morton_from_cells(1, 0, 0), 1u);
  EXPECT_EQ(ilb::morton_from_cells(0, 1, 0), 2u);
  EXPECT_EQ(ilb::morton_from_cells(0, 0, 1), 4u);
  // (3,5,7): spread3(3)=0b001001, spread3(5)<<1=0b010000010,
  // spread3(7)<<2=0b100100100 -> 431.
  EXPECT_EQ(ilb::morton_from_cells(3, 5, 7), 431u);
  // Cells beyond the 21-bit grid clamp to the last cell.
  EXPECT_EQ(ilb::morton_from_cells(~0u, 0, 0),
            ilb::morton_from_cells(ilb::kSfcCellMax, 0, 0));
}

TEST(SfcKey, BoxNormalizationAndDegenerateAxes) {
  const ilb::SfcBox unit{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  EXPECT_EQ(ilb::morton_key({0.0, 0.0, 0.0}, unit), 0u);
  // Z-order respects octants: the all-low corner precedes the all-high one.
  EXPECT_LT(ilb::morton_key({0.1, 0.1, 0.1}, unit),
            ilb::morton_key({0.9, 0.9, 0.9}, unit));
  // Out-of-box coordinates clamp to the faces instead of wrapping.
  EXPECT_EQ(ilb::morton_key({-3.0, 0.0, 0.0}, unit),
            ilb::morton_key({0.0, 0.0, 0.0}, unit));
  // A degenerate (flat) axis collapses to cell 0: 2-D embeddings work.
  const ilb::SfcBox flat{{0.0, 0.0, 0.5}, {1.0, 1.0, 0.5}};
  EXPECT_EQ(ilb::morton_key({0.3, 0.7, 0.1}, flat),
            ilb::morton_key({0.3, 0.7, 0.9}, flat));
}

TEST(SfcKey, HilbertStartsAtOriginAndVisitsCoarseCellsContiguously) {
  EXPECT_EQ(ilb::hilbert_from_cells(0, 0, 0), 0u);
  // Sample the 4x4x4 coarse grid (top two bits per axis). A correct Hilbert
  // curve traverses each coarse block contiguously, and consecutive blocks
  // are face-adjacent: sorted by key, neighbors must differ by exactly one
  // block step on exactly one axis. Morton fails this (its octant jumps are
  // diagonal); this pins the locality property the sfc policy buys.
  constexpr std::uint32_t kStep = 1u << (ilb::kSfcBitsPerDim - 2);
  std::map<std::uint64_t, std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
      by_key;
  for (std::uint32_t x = 0; x < 4; ++x) {
    for (std::uint32_t y = 0; y < 4; ++y) {
      for (std::uint32_t z = 0; z < 4; ++z) {
        by_key[ilb::hilbert_from_cells(x * kStep, y * kStep, z * kStep)] = {x, y, z};
      }
    }
  }
  ASSERT_EQ(by_key.size(), 64u);  // all keys distinct
  auto prev = by_key.begin();
  for (auto it = std::next(by_key.begin()); it != by_key.end(); ++it, ++prev) {
    const auto [px, py, pz] = prev->second;
    const auto [x, y, z] = it->second;
    const int dx = std::abs(static_cast<int>(x) - static_cast<int>(px));
    const int dy = std::abs(static_cast<int>(y) - static_cast<int>(py));
    const int dz = std::abs(static_cast<int>(z) - static_cast<int>(pz));
    EXPECT_EQ(dx + dy + dz, 1) << "jump between coarse cells (" << px << ","
                               << py << "," << pz << ") and (" << x << "," << y
                               << "," << z << ")";
  }
}

// ---------------------------------------------------------------------------
// End-to-end: counters follow objects through real MOL migrations
// ---------------------------------------------------------------------------

/// Minimal migratable object for the ring workload below.
class Node : public mol::MobileObject {
 public:
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(util::ByteWriter&) const override {}
  static std::unique_ptr<mol::MobileObject> make(util::ByteReader&) {
    return std::make_unique<Node>();
  }
};

TEST(CommGraphIntegration, EdgeCountersConservedUnderSfcMigration) {
  // 16 objects, all born on rank 0, strung along the x axis; each handler
  // passes an 8-byte token to the next object in the ring. The sfc policy
  // recuts the curve and ships objects to their segments mid-run, so the
  // recorded edges must survive extract/install over the real migration
  // wire. Machine-wide totals afterwards equal exactly one edge bump per
  // handler-to-handler send.
  constexpr int kObjects = 16;
  constexpr std::int64_t kHops = 6;
  sim::MachineConfig mcfg;
  mcfg.nprocs = 4;
  mcfg.mflops = 100.0;  // 5 Mflop/unit = 50 ms: slow enough to rebalance
  dmcs::PollingConfig pcfg;
  pcfg.mode = dmcs::PollingMode::kPreemptive;
  pcfg.interval_s = 1e-3;
  dmcs::SimMachine machine(mcfg, pcfg);

  RuntimeConfig rcfg;
  rcfg.policy = "sfc";
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Node::make);
  const auto pass = rt.register_object_handler(
      "pass", [](Context& ctx, mol::MobileObject&, util::ByteReader& r,
                 const mol::Delivery& d) {
        ctx.compute(5.0);
        const auto hops = r.get<std::int64_t>();
        if (hops > 0) {
          const MobilePtr next{0, (d.target.index + 1) % kObjects};
          util::ByteWriter w;
          w.put<std::int64_t>(hops - 1);
          ctx.message(next, d.handler, w.take(), 1.0);
        }
      });

  rt.set_main([&](Context& ctx) {
    if (ctx.rank() != 0) return;
    for (int i = 0; i < kObjects; ++i) {
      const auto ptr = ctx.add_object(std::make_unique<Node>());
      ctx.set_coords(ptr, {(i + 0.5) / kObjects, 0.5, 0.5});
      util::ByteWriter w;
      w.put<std::int64_t>(kHops);
      ctx.message(ptr, pass, w.take(), 1.0);  // main sends are not recorded
    }
  });
  rt.run();
  ASSERT_TRUE(rt.termination_detected());

  CommGraph::Totals sum;
  std::uint64_t migrations = 0;
  int resident = 0, with_coords = 0;
  for (ProcId p = 0; p < mcfg.nprocs; ++p) {
    auto& m = rt.mol_at(p);
    const auto t = m.comm_graph().totals();
    sum.msgs += t.msgs;
    sum.bytes += t.bytes;
    migrations += m.stats().migrations_in;
    for (const auto& ptr : m.local_ptrs()) {
      ++resident;
      if (m.coords(ptr).has_value()) ++with_coords;
    }
  }
  // One recorded send per handler execution that still had hops left: each
  // of the 16 seeded chains makes kHops sends of 8 bytes.
  EXPECT_EQ(sum.msgs, static_cast<std::uint64_t>(kObjects) * kHops);
  EXPECT_EQ(sum.bytes, static_cast<std::uint64_t>(kObjects) * kHops * 8);
  EXPECT_GT(migrations, 0u);  // ...and migrations actually happened
  // Coordinates rode along with every migrated object.
  EXPECT_EQ(resident, kObjects);
  EXPECT_EQ(with_coords, kObjects);
}

TEST(CommGraphIntegration, TopologyAccountingIsOffForScalarPolicies) {
  // With a scalar policy the runtime never enables topology accounting:
  // coordinate registration is a silent no-op and no edges are recorded, so
  // the migrate wire image (and the determinism contract) is untouched.
  sim::MachineConfig mcfg;
  mcfg.nprocs = 2;
  mcfg.mflops = 1000.0;
  dmcs::SimMachine machine(mcfg);
  RuntimeConfig rcfg;
  rcfg.policy = "null";
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Node::make);
  const auto work = rt.register_object_handler(
      "work", [](Context& ctx, mol::MobileObject&, util::ByteReader&,
                 const mol::Delivery& d) {
        ctx.compute(1.0);
        if (d.target.index == 0) ctx.message({0, 1}, d.handler, {}, 1.0);
      });
  MobilePtr first;
  rt.set_main([&](Context& ctx) {
    if (ctx.rank() != 0) return;
    first = ctx.add_object(std::make_unique<Node>());
    ctx.set_coords(first, {0.5, 0.5, 0.5});
    ctx.add_object(std::make_unique<Node>());
    ctx.message(first, work, {}, 1.0);
  });
  rt.run();
  EXPECT_FALSE(rt.mol_at(0).topology_enabled());
  EXPECT_FALSE(rt.mol_at(0).coords(first).has_value());
  EXPECT_EQ(rt.mol_at(0).comm_graph().totals().msgs, 0u);
  (void)work;
}

}  // namespace
}  // namespace prema
