#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "dmcs/sim_machine.hpp"
#include "fault/fault_plan.hpp"
#include "mol/mol.hpp"
#include "support/byte_buffer.hpp"

namespace prema::mol {
namespace {

using dmcs::Message;
using dmcs::MsgKind;
using util::ByteReader;
using util::ByteWriter;

/// Trivial migratable object: a named counter.
class Counter : public MobileObject {
 public:
  explicit Counter(std::int64_t v = 0) : value(v) {}
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(util::ByteWriter& w) const override { w.put<std::int64_t>(value); }
  static std::unique_ptr<MobileObject> make(util::ByteReader& r) {
    return std::make_unique<Counter>(r.get<std::int64_t>());
  }
  std::int64_t value;
};

struct SeenDelivery {
  ProcId at;
  Delivery d;
  double time;
};

/// Harness: SimMachine + MolLayer with recording hooks on every node, plus a
/// "migrate command" handler so tests can ask a remote owner to move an
/// object (a stand-in for what a balancing policy does).
struct MolHarness {
  explicit MolHarness(int nprocs, dmcs::PollingConfig polling = {}) {
    sim::MachineConfig cfg;
    cfg.nprocs = nprocs;
    machine = std::make_unique<dmcs::SimMachine>(cfg, polling);
    layer = std::make_unique<MolLayer>(*machine);
    layer->types().add(1, Counter::make);
    migrate_cmd = machine->registry().add(
        "test.migrate", [this](dmcs::Node& n, Message&& m) {
          ByteReader r(m.payload);
          MobilePtr ptr;
          ptr.home = r.get<ProcId>();
          ptr.index = r.get<std::uint32_t>();
          const auto dst = r.get<ProcId>();
          layer->at(n.rank()).migrate(ptr, dst);
        });
    step_cmd = machine->registry().add(
        "test.step", [this](dmcs::Node& n, Message&& m) {
          ByteReader r(m.payload);
          steps.at(r.get<std::uint32_t>())(n);
        });
    for (ProcId p = 0; p < nprocs; ++p) {
      Mol::Hooks hooks;
      hooks.on_delivery = [this, p](Delivery&& d) {
        seen.push_back({p, std::move(d), machine->sim_node(p).now()});
      };
      hooks.take_queued = [](const MobilePtr&) { return std::vector<Delivery>{}; };
      layer->at(p).set_hooks(std::move(hooks));
    }
  }

  /// Ask `owner` (current holder) to migrate `ptr` to `dst`, from `n`'s rank.
  void send_migrate_cmd(dmcs::Node& n, ProcId owner, const MobilePtr& ptr,
                        ProcId dst) {
    ByteWriter w;
    w.put<ProcId>(ptr.home);
    w.put<std::uint32_t>(ptr.index);
    w.put<ProcId>(dst);
    n.send(owner, Message{migrate_cmd, n.rank(), MsgKind::kApp, w.take()});
  }

  /// Run a registered step function on `dst` as its own handler invocation —
  /// unlike code inside main(), a step observes everything that arrived
  /// before it.
  void send_step(dmcs::Node& n, ProcId dst, std::uint32_t idx) {
    ByteWriter w;
    w.put<std::uint32_t>(idx);
    n.send(dst, Message{step_cmd, n.rank(), MsgKind::kApp, w.take()});
  }

  dmcs::HandlerId migrate_cmd = dmcs::kNoHandler;
  dmcs::HandlerId step_cmd = dmcs::kNoHandler;
  std::vector<std::function<void(dmcs::Node&)>> steps;

  /// Run with per-rank main functions.
  double run(std::vector<std::function<void(dmcs::Node&)>> mains) {
    return machine->run([&, mains](ProcId p) {
      class P : public dmcs::Program {
       public:
        explicit P(std::function<void(dmcs::Node&)> m) : m_(std::move(m)) {}
        void main(dmcs::Node& n) override {
          if (m_) m_(n);
        }

       private:
        std::function<void(dmcs::Node&)> m_;
      };
      return std::make_unique<P>(p < static_cast<ProcId>(mains.size()) ? mains[p]
                                                                       : nullptr);
    });
  }

  std::unique_ptr<dmcs::SimMachine> machine;
  std::unique_ptr<MolLayer> layer;
  std::vector<SeenDelivery> seen;
};

std::vector<std::uint8_t> int_payload(std::int64_t v) {
  ByteWriter w;
  w.put<std::int64_t>(v);
  return w.take();
}

std::int64_t payload_int(const Delivery& d) {
  ByteReader r(d.payload);
  return r.get<std::int64_t>();
}

TEST(MobilePtr, NullAndHashing) {
  EXPECT_TRUE(kNullMobilePtr.is_null());
  MobilePtr a{2, 7}, b{2, 7}, c{2, 8};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<MobilePtr>{}(a), std::hash<MobilePtr>{}(b));
  EXPECT_FALSE(a.is_null());
}

TEST(ObjectTypeRegistry, RoundTripsThroughFactory) {
  ObjectTypeRegistry reg;
  reg.add(1, Counter::make);
  EXPECT_TRUE(reg.contains(1));
  EXPECT_FALSE(reg.contains(2));
  Counter original(42);
  ByteWriter w;
  original.serialize(w);
  ByteReader r(w.bytes());
  auto copy = reg.make(1, r);
  EXPECT_EQ(static_cast<Counter&>(*copy).value, 42);
}

TEST(Mol, LocalObjectRegistrationAndLookup) {
  MolHarness h(2);
  MobilePtr ptr;
  h.run({[&](dmcs::Node&) {
    ptr = h.layer->at(0).add_object(std::make_unique<Counter>(5));
  }});
  EXPECT_EQ(ptr.home, 0);
  EXPECT_TRUE(h.layer->at(0).is_local(ptr));
  EXPECT_FALSE(h.layer->at(1).is_local(ptr));
  auto* obj = h.layer->at(0).find(ptr);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(static_cast<Counter*>(obj)->value, 5);
  EXPECT_EQ(h.layer->at(0).local_count(), 1u);
  EXPECT_EQ(h.layer->at(0).local_ptrs().size(), 1u);
}

TEST(Mol, MessageToLocalObjectDelivers) {
  MolHarness h(1);
  h.run({[&](dmcs::Node&) {
    auto ptr = h.layer->at(0).add_object(std::make_unique<Counter>());
    h.layer->at(0).message(ptr, 7, int_payload(99), 2.5);
  }});
  ASSERT_EQ(h.seen.size(), 1u);
  EXPECT_EQ(h.seen[0].at, 0);
  EXPECT_EQ(h.seen[0].d.handler, 7u);
  EXPECT_EQ(h.seen[0].d.origin, 0);
  EXPECT_DOUBLE_EQ(h.seen[0].d.weight, 2.5);
  EXPECT_EQ(h.seen[0].d.delivery_no, 0u);
  EXPECT_EQ(payload_int(h.seen[0].d), 99);
}

TEST(Mol, MessageToRemoteObjectDelivers) {
  MolHarness h(2);
  MobilePtr ptr;
  h.run({
      [&](dmcs::Node& n) {
        ptr = h.layer->at(0).add_object(std::make_unique<Counter>());
        (void)n;
      },
      [&](dmcs::Node&) {
        // Rank 1 boots after rank 0's main created the object.
        h.layer->at(1).message(ptr, 3, int_payload(11), 1.0);
      },
  });
  ASSERT_EQ(h.seen.size(), 1u);
  EXPECT_EQ(h.seen[0].at, 0);
  EXPECT_EQ(h.seen[0].d.origin, 1);
  EXPECT_EQ(payload_int(h.seen[0].d), 11);
}

TEST(Mol, MigrationMovesObjectStateAndSetsForwarding) {
  MolHarness h(3);
  MobilePtr ptr;
  h.run({
      [&](dmcs::Node&) {
        ptr = h.layer->at(0).add_object(std::make_unique<Counter>(123));
        h.layer->at(0).migrate(ptr, 2);
      },
  });
  EXPECT_FALSE(h.layer->at(0).is_local(ptr));
  ASSERT_TRUE(h.layer->at(2).is_local(ptr));
  EXPECT_EQ(static_cast<Counter*>(h.layer->at(2).find(ptr))->value, 123);
  EXPECT_EQ(h.layer->at(0).stats().migrations_out, 1u);
  EXPECT_EQ(h.layer->at(2).stats().migrations_in, 1u);
}

TEST(Mol, MessagesChaseAMigratedObject) {
  MolHarness h(3);
  MobilePtr ptr;
  h.run({
      [&](dmcs::Node&) {
        ptr = h.layer->at(0).add_object(std::make_unique<Counter>());
        h.layer->at(0).migrate(ptr, 1);
      },
      nullptr,
      [&](dmcs::Node& n) {
        // Rank 2 sends toward the home (rank 0), which must forward to rank 1.
        n.compute_seconds(0.01, util::TimeCategory::kCallback);  // let migration land
        h.layer->at(2).message(ptr, 1, int_payload(7), 1.0);
      },
  });
  ASSERT_EQ(h.seen.size(), 1u);
  EXPECT_EQ(h.seen[0].at, 1);
  EXPECT_EQ(payload_int(h.seen[0].d), 7);
  // Either the home forwarded it, or the home directory already knew; both
  // must leave the object reachable. The home learned the location.
  EXPECT_TRUE(h.layer->at(1).is_local(ptr));
}

TEST(Mol, ForwardingTriggersLocationUpdateToSender) {
  MolHarness h(3);
  MobilePtr ptr;
  // step 0: burn time, then hand off to step 1 as a fresh handler invocation
  // (so the location update that arrived meanwhile is processed in between).
  h.steps.push_back([&](dmcs::Node& n) {
    n.compute_seconds(0.05, util::TimeCategory::kCallback);
    h.send_step(n, 2, 1);
  });
  // step 1: the follow-up message — by now rank 2 knows the real location.
  h.steps.push_back([&](dmcs::Node&) {
    h.layer->at(2).message(ptr, 1, int_payload(2), 1.0);
  });
  h.run({
      [&](dmcs::Node&) {
        ptr = h.layer->at(0).add_object(std::make_unique<Counter>());
        // Move it away immediately; home keeps the directory entry.
        h.layer->at(0).migrate(ptr, 1);
      },
      nullptr,
      [&](dmcs::Node& n) {
        n.compute_seconds(0.01, util::TimeCategory::kCallback);
        h.layer->at(2).message(ptr, 1, int_payload(1), 1.0);  // forwarded
        // Send the follow-up as a separate step so the location update
        // (which arrives while main is still running) gets processed first.
        h.send_step(n, 2, 0);
      },
  });
  ASSERT_EQ(h.seen.size(), 2u);
  EXPECT_EQ(payload_int(h.seen[0].d), 1);
  EXPECT_EQ(payload_int(h.seen[1].d), 2);
  // The second message went straight to rank 1: total forwards in the system
  // stayed at whatever the first message needed.
  const auto total_forwards =
      h.layer->at(0).stats().forwards + h.layer->at(2).stats().forwards;
  EXPECT_EQ(total_forwards, 1u);
}

TEST(Mol, OutOfOrderArrivalsAreResequenced) {
  // Force a genuine overtake across *different* routes: the first message is
  // huge and takes the stale two-hop path (1 -> 0 -> 2); by the time it lands,
  // the sender (also the home) has already learned the new location from the
  // install notification and sent a small second message direct (1 -> 2),
  // which arrives first. The MOL must hold it until the first one shows up.
  MolHarness h(3);
  MobilePtr ptr;
  // step 0 (on rank 1): wait out the install notification, then hop to step 1.
  h.steps.push_back([&](dmcs::Node& n) {
    n.compute_seconds(0.03, util::TimeCategory::kCallback);
    h.send_step(n, 1, 1);
  });
  // step 1 (on rank 1): seq 1, small and — thanks to the refreshed home
  // directory — direct to rank 2, far ahead of the 1 MB seq 0.
  h.steps.push_back([&](dmcs::Node&) {
    h.layer->at(1).message(ptr, 1, int_payload(1), 1.0);
  });
  h.run({
      nullptr,
      [&](dmcs::Node& n) {
        ptr = h.layer->at(1).add_object(std::make_unique<Counter>());
        h.layer->at(1).migrate(ptr, 0);
        n.compute_seconds(0.005, util::TimeCategory::kCallback);
        // seq 0: 1 MB toward rank 0 (stale by the time it lands).
        h.layer->at(1).message(ptr, 1, std::vector<std::uint8_t>(1 << 20, 0xAB), 1.0);
        h.send_step(n, 1, 0);
      },
      [&](dmcs::Node& n) {
        // While seq 0 is on the wire, ask rank 0 to migrate the object here.
        n.compute_seconds(0.007, util::TimeCategory::kCallback);
        h.send_migrate_cmd(n, 0, ptr, 2);
      },
  });
  ASSERT_EQ(h.seen.size(), 2u);
  EXPECT_EQ(h.seen[0].d.delivery_no, 0u);
  EXPECT_EQ(h.seen[1].d.delivery_no, 1u);
  EXPECT_EQ(payload_int(h.seen[1].d), 1);
  EXPECT_EQ(h.seen[0].at, 2);
  EXPECT_EQ(h.seen[1].at, 2);
  // The small message really did arrive early and got buffered.
  EXPECT_EQ(h.layer->at(2).stats().resequenced, 1u);
}

TEST(Mol, PerSenderOrderingHoldsUnderInterleaving) {
  MolHarness h(3);
  MobilePtr ptr;
  h.run({
      [&](dmcs::Node&) {
        ptr = h.layer->at(0).add_object(std::make_unique<Counter>());
      },
      [&](dmcs::Node&) {
        for (int i = 0; i < 5; ++i) h.layer->at(1).message(ptr, 1, int_payload(i), 1.0);
      },
      [&](dmcs::Node&) {
        for (int i = 0; i < 5; ++i) h.layer->at(2).message(ptr, 1, int_payload(i), 1.0);
      },
  });
  ASSERT_EQ(h.seen.size(), 10u);
  std::int64_t next1 = 0, next2 = 0;
  for (const auto& s : h.seen) {
    if (s.d.origin == 1) { EXPECT_EQ(payload_int(s.d), next1++); }
    if (s.d.origin == 2) { EXPECT_EQ(payload_int(s.d), next2++); }
  }
  EXPECT_EQ(next1, 5);
  EXPECT_EQ(next2, 5);
}

TEST(Mol, MigrationCarriesOrderingState) {
  // Send a stream to an object, migrate it mid-stream (from its owner), and
  // check the stream stays in order with continuous delivery numbers.
  MolHarness h(3);
  MobilePtr ptr;
  h.run({
      [&](dmcs::Node&) {
        ptr = h.layer->at(0).add_object(std::make_unique<Counter>());
      },
      [&](dmcs::Node& n) {
        for (int i = 0; i < 3; ++i) h.layer->at(1).message(ptr, 1, int_payload(i), 1.0);
        n.compute_seconds(0.05, util::TimeCategory::kCallback);
        // By now the first batch has been accepted at rank 0. Ask rank 0 to
        // move the object (what a balancing policy would do).
        h.send_migrate_cmd(n, 0, ptr, 2);
        n.compute_seconds(0.05, util::TimeCategory::kCallback);
        for (int i = 3; i < 6; ++i) h.layer->at(1).message(ptr, 1, int_payload(i), 1.0);
      },
  });
  ASSERT_EQ(h.seen.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(payload_int(h.seen[i].d), static_cast<std::int64_t>(i));
    EXPECT_EQ(h.seen[i].d.delivery_no, i);
  }
  EXPECT_EQ(h.seen[0].at, 0);
  EXPECT_EQ(h.seen[5].at, 2);
}

// ---------------------------------------------------------------------------
// Adversarial wire: the same ordering contracts must hold when the network
// itself drops, duplicates and reorders messages (reliable transport +
// two-phase migration absorb the faults).
// ---------------------------------------------------------------------------

/// A deliberately hostile schedule: every link drops 10%, duplicates 15% and
/// reorders 30% of messages inside a 2 ms jitter window.
std::shared_ptr<fault::FaultPlan> hostile_plan(int nprocs,
                                               std::uint64_t seed = 7) {
  fault::FaultProfile prof;
  prof.name = "test-hostile";
  prof.link.drop_p = 0.10;
  prof.link.dup_p = 0.15;
  prof.link.reorder_p = 0.30;
  prof.link.reorder_window_s = 2e-3;
  return std::make_shared<fault::FaultPlan>(prof, seed, nprocs);
}

TEST(MolFaults, PerSenderOrderingHoldsUnderAdversarialWire) {
  MolHarness h(3);
  h.machine->set_fault_plan(hostile_plan(3));
  MobilePtr ptr;
  h.run({
      [&](dmcs::Node&) {
        ptr = h.layer->at(0).add_object(std::make_unique<Counter>());
      },
      [&](dmcs::Node&) {
        for (int i = 0; i < 20; ++i) h.layer->at(1).message(ptr, 1, int_payload(i), 1.0);
      },
      [&](dmcs::Node&) {
        for (int i = 0; i < 20; ++i) h.layer->at(2).message(ptr, 1, int_payload(i), 1.0);
      },
  });
  // Exactly once and per-sender FIFO: each origin's stream reads 0..19.
  ASSERT_EQ(h.seen.size(), 40u);
  std::int64_t next1 = 0, next2 = 0;
  for (const auto& s : h.seen) {
    if (s.d.origin == 1) { EXPECT_EQ(payload_int(s.d), next1++); }
    if (s.d.origin == 2) { EXPECT_EQ(payload_int(s.d), next2++); }
  }
  EXPECT_EQ(next1, 20);
  EXPECT_EQ(next2, 20);
}

TEST(MolFaults, MigrationIsTransactionalUnderDupAndReorder) {
  // Move an object across a hostile wire repeatedly: a dropped offer must be
  // retransmitted, a duplicated offer must install exactly one instance, and
  // every handoff must close (no in-transit entries left open).
  MolHarness h(3);
  h.machine->set_fault_plan(hostile_plan(3, 11));
  MobilePtr ptr;
  h.steps.push_back([&](dmcs::Node& n) {
    n.compute_seconds(0.05, util::TimeCategory::kCallback);
    h.send_migrate_cmd(n, 1, ptr, 2);  // hop 2: rank 1 -> rank 2
  });
  h.run({
      [&](dmcs::Node& n) {
        ptr = h.layer->at(0).add_object(std::make_unique<Counter>(77));
        h.layer->at(0).migrate(ptr, 1);  // hop 1: rank 0 -> rank 1
        h.send_step(n, 0, 0);
      },
  });
  // Exactly one live instance, at the final destination, state intact.
  int resident = 0;
  for (ProcId p = 0; p < 3; ++p) {
    if (h.layer->at(p).is_local(ptr)) ++resident;
    EXPECT_EQ(h.layer->at(p).in_transit_count(), 0u) << "open handoff at " << p;
  }
  EXPECT_EQ(resident, 1);
  ASSERT_TRUE(h.layer->at(2).is_local(ptr));
  EXPECT_EQ(static_cast<Counter*>(h.layer->at(2).find(ptr))->value, 77);
  EXPECT_EQ(h.layer->at(0).stats().migrations_out, 1u);
  EXPECT_EQ(h.layer->at(2).stats().migrations_in, 1u);
}

TEST(MolFaults, StreamSurvivesMigrationUnderAdversarialWire) {
  // MigrationCarriesOrderingState, but with the wire fighting back: the
  // stream must still arrive exactly once, in order, with continuous
  // delivery numbers spanning the handoff.
  MolHarness h(3);
  h.machine->set_fault_plan(hostile_plan(3, 23));
  MobilePtr ptr;
  h.run({
      [&](dmcs::Node&) {
        ptr = h.layer->at(0).add_object(std::make_unique<Counter>());
      },
      [&](dmcs::Node& n) {
        for (int i = 0; i < 3; ++i) h.layer->at(1).message(ptr, 1, int_payload(i), 1.0);
        n.compute_seconds(0.05, util::TimeCategory::kCallback);
        h.send_migrate_cmd(n, 0, ptr, 2);
        n.compute_seconds(0.05, util::TimeCategory::kCallback);
        for (int i = 3; i < 6; ++i) h.layer->at(1).message(ptr, 1, int_payload(i), 1.0);
      },
  });
  ASSERT_EQ(h.seen.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(payload_int(h.seen[i].d), static_cast<std::int64_t>(i));
    EXPECT_EQ(h.seen[i].d.delivery_no, i);
  }
}

TEST(MolDeathTest, MessageToNullPointerAborts) {
  MolHarness h(1);
  EXPECT_DEATH(h.run({[&](dmcs::Node&) {
                 h.layer->at(0).message(kNullMobilePtr, 1, {}, 1.0);
               }}),
               "null mobile pointer");
}

TEST(MolDeathTest, MigrateNonLocalAborts) {
  MolHarness h(2);
  EXPECT_DEATH(h.run({[&](dmcs::Node&) {
                 h.layer->at(0).migrate(MobilePtr{1, 0}, 0);
               }}),
               "non-local");
}

}  // namespace
}  // namespace prema::mol
