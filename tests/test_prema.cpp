#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dmcs/sim_machine.hpp"
#include "dmcs/thread_machine.hpp"
#include "prema/runtime.hpp"

namespace prema {
namespace {

using util::ByteReader;
using util::ByteWriter;

/// Minimal migratable application object: counts handler hits.
class Widget : public mol::MobileObject {
 public:
  explicit Widget(std::int64_t h = 0) : hits(h) {}
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(util::ByteWriter& w) const override { w.put<std::int64_t>(hits); }
  static std::unique_ptr<mol::MobileObject> make(util::ByteReader& r) {
    return std::make_unique<Widget>(r.get<std::int64_t>());
  }
  std::int64_t hits;
};

std::vector<std::uint8_t> mflop_payload(double mflop) {
  ByteWriter w;
  w.put<double>(mflop);
  return w.take();
}

struct RunResult {
  double makespan = 0.0;
  std::int64_t executed = 0;
  std::int64_t hit_sum = 0;  ///< sum of Widget::hits over all residences
  bool termination_detected = false;
  std::uint64_t migrations = 0;
  double total_polling_time = 0.0;
};

/// All work initially on rank 0: `objects` widgets, one `unit_seconds` unit
/// each, on an emulated machine with `nprocs` processors.
RunResult run_imbalanced(const std::string& policy, int nprocs, int objects,
                         double unit_seconds, dmcs::PollingMode mode,
                         double tick_s = 1e-3) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = nprocs;
  mcfg.mflops = 1000.0;  // 1 Mflop == 1 ms
  dmcs::PollingConfig pcfg;
  pcfg.mode = mode;
  pcfg.interval_s = tick_s;
  dmcs::SimMachine machine(mcfg, pcfg);

  RuntimeConfig rcfg;
  rcfg.policy = policy;
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Widget::make);

  auto executed = std::make_shared<std::int64_t>(0);
  const auto work = rt.register_object_handler(
      "work", [executed](Context& ctx, mol::MobileObject& obj, ByteReader& r,
                         const mol::Delivery&) {
        static_cast<Widget&>(obj).hits++;
        ctx.compute(r.get<double>());
        ++*executed;
      });

  rt.set_main([&, work, objects, unit_seconds](Context& ctx) {
    if (ctx.rank() != 0) return;
    for (int i = 0; i < objects; ++i) {
      auto ptr = ctx.add_object(std::make_unique<Widget>());
      ctx.message(ptr, work, mflop_payload(unit_seconds * 1000.0), 1.0);
    }
  });

  RunResult res;
  res.makespan = rt.run();
  res.executed = *executed;
  res.termination_detected = rt.termination_detected();
  for (ProcId p = 0; p < nprocs; ++p) {
    auto& mol = rt.mol_at(p);
    for (const auto& ptr : mol.local_ptrs()) {
      res.hit_sum += static_cast<Widget*>(mol.find(ptr))->hits;
    }
    res.migrations += mol.stats().migrations_in;
    res.total_polling_time +=
        machine.ledger(p).get(util::TimeCategory::kPolling);
  }
  return res;
}

TEST(PremaIntegration, NoBalancingRunsEverythingWhereItStarted) {
  const auto r = run_imbalanced("null", 4, 32, 0.05, dmcs::PollingMode::kExplicit);
  EXPECT_EQ(r.executed, 32);
  EXPECT_EQ(r.hit_sum, 32);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_TRUE(r.termination_detected);
  EXPECT_NEAR(r.makespan, 32 * 0.05, 0.05);
}

TEST(PremaIntegration, WorkStealingSpreadsTheLoad) {
  const auto null_r = run_imbalanced("null", 4, 32, 0.05, dmcs::PollingMode::kExplicit);
  const auto ws =
      run_imbalanced("work_stealing", 4, 32, 0.05, dmcs::PollingMode::kPreemptive);
  EXPECT_EQ(ws.executed, 32);
  EXPECT_EQ(ws.hit_sum, 32);
  EXPECT_GT(ws.migrations, 0u);
  EXPECT_TRUE(ws.termination_detected);
  // Ideal is 0.4s; anything under 60% of the unbalanced run shows real
  // balancing (ramp-up and transfer costs keep it above ideal).
  EXPECT_LT(ws.makespan, 0.6 * null_r.makespan);
  EXPECT_GE(ws.makespan, 0.4);
}

class PolicySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicySweep, CompletesAllWorkAndImproves) {
  const auto null_r = run_imbalanced("null", 8, 64, 0.05, dmcs::PollingMode::kExplicit);
  const auto r =
      run_imbalanced(GetParam(), 8, 64, 0.05, dmcs::PollingMode::kPreemptive);
  EXPECT_EQ(r.executed, 64);
  EXPECT_EQ(r.hit_sum, 64);
  EXPECT_TRUE(r.termination_detected);
  EXPECT_GT(r.migrations, 0u);
  EXPECT_LT(r.makespan, 0.8 * null_r.makespan) << "policy " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values("work_stealing", "diffusion", "gradient",
                                           "master", "multilist"));

TEST(PremaIntegration, ImplicitPollingBeatsExplicit) {
  // Two processors, coarse 0.5s units: under explicit polling the steal
  // request sits behind a running unit (paper §4.1); the polling thread
  // handles it within a tick (§4.2).
  const auto expl =
      run_imbalanced("work_stealing", 2, 12, 0.5, dmcs::PollingMode::kExplicit);
  const auto impl =
      run_imbalanced("work_stealing", 2, 12, 0.5, dmcs::PollingMode::kPreemptive);
  EXPECT_EQ(expl.executed, 12);
  EXPECT_EQ(impl.executed, 12);
  EXPECT_LT(impl.makespan + 0.1, expl.makespan);
  EXPECT_GT(impl.total_polling_time, 0.0);
}

TEST(PremaIntegration, TerminationDetectedOnEmptyRun) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = 4;
  dmcs::SimMachine machine(mcfg);
  Runtime rt(machine);
  rt.set_main([](Context&) {});
  const double makespan = rt.run();
  EXPECT_TRUE(rt.termination_detected());
  EXPECT_LT(makespan, 1.0);  // a few control messages only
}

TEST(PremaIntegration, WidgetStateSurvivesMigration) {
  // Every widget gets 3 messages; stealing moves widgets (with their queues)
  // around; the per-widget hit counters must come out exactly 3 wherever the
  // widgets end up.
  sim::MachineConfig mcfg;
  mcfg.nprocs = 4;
  mcfg.mflops = 1000.0;
  dmcs::PollingConfig pcfg;
  pcfg.mode = dmcs::PollingMode::kPreemptive;
  dmcs::SimMachine machine(mcfg, pcfg);
  RuntimeConfig rcfg;
  rcfg.policy = "work_stealing";
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Widget::make);
  const auto work = rt.register_object_handler(
      "work", [](Context& ctx, mol::MobileObject& obj, ByteReader& r,
                 const mol::Delivery&) {
        static_cast<Widget&>(obj).hits++;
        ctx.compute(r.get<double>());
      });
  rt.set_main([&](Context& ctx) {
    if (ctx.rank() != 0) return;
    for (int i = 0; i < 16; ++i) {
      auto ptr = ctx.add_object(std::make_unique<Widget>());
      for (int k = 0; k < 3; ++k) ctx.message(ptr, work, mflop_payload(20.0), 1.0);
    }
  });
  rt.run();
  int widgets = 0;
  std::uint64_t migrations = 0;
  for (ProcId p = 0; p < 4; ++p) {
    auto& mol = rt.mol_at(p);
    migrations += mol.stats().migrations_in;
    for (const auto& ptr : mol.local_ptrs()) {
      ++widgets;
      EXPECT_EQ(static_cast<Widget*>(mol.find(ptr))->hits, 3);
    }
  }
  EXPECT_EQ(widgets, 16);
  EXPECT_GT(migrations, 0u);
}

TEST(PremaIntegration, PerSenderOrderPreservedUnderStealing) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = 4;
  mcfg.mflops = 1000.0;
  dmcs::PollingConfig pcfg;
  pcfg.mode = dmcs::PollingMode::kPreemptive;
  dmcs::SimMachine machine(mcfg, pcfg);
  RuntimeConfig rcfg;
  rcfg.policy = "work_stealing";
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Widget::make);

  auto seen = std::make_shared<std::map<std::uint32_t, std::vector<std::int64_t>>>();
  const auto work = rt.register_object_handler(
      "work", [seen](Context& ctx, mol::MobileObject& obj, ByteReader& r,
                     const mol::Delivery& d) {
        static_cast<Widget&>(obj).hits++;
        (*seen)[d.target.index].push_back(r.get<std::int64_t>());
        ctx.compute(10.0);
      });

  rt.set_main([&](Context& ctx) {
    if (ctx.rank() != 0) return;
    std::vector<mol::MobilePtr> ptrs;
    for (int i = 0; i < 8; ++i) ptrs.push_back(ctx.add_object(std::make_unique<Widget>()));
    for (int k = 0; k < 6; ++k) {
      for (auto& ptr : ptrs) {
        ByteWriter w;
        w.put<std::int64_t>(k);
        ctx.message(ptr, work, w.take(), 1.0);
      }
    }
  });
  rt.run();
  ASSERT_EQ(seen->size(), 8u);
  for (const auto& [idx, values] : *seen) {
    ASSERT_EQ(values.size(), 6u);
    for (std::int64_t k = 0; k < 6; ++k) EXPECT_EQ(values[static_cast<std::size_t>(k)], k);
  }
}

TEST(PremaIntegration, RunsOnRealThreadsWithPreemptiveStealing) {
  dmcs::ThreadConfig tcfg;
  tcfg.nprocs = 2;
  tcfg.mflops = 2000.0;
  tcfg.polling.mode = dmcs::PollingMode::kPreemptive;
  tcfg.polling.interval_s = 1e-3;
  dmcs::ThreadMachine machine(tcfg);
  RuntimeConfig rcfg;
  rcfg.policy = "work_stealing";
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Widget::make);
  auto executed = std::make_shared<std::atomic<int>>(0);
  const auto work = rt.register_object_handler(
      "work", [executed](Context& ctx, mol::MobileObject& obj, ByteReader& r,
                         const mol::Delivery&) {
        static_cast<Widget&>(obj).hits++;
        ctx.compute(r.get<double>());
        executed->fetch_add(1);
      });
  rt.set_main([&](Context& ctx) {
    if (ctx.rank() != 0) return;
    for (int i = 0; i < 16; ++i) {
      auto ptr = ctx.add_object(std::make_unique<Widget>());
      ctx.message(ptr, work, mflop_payload(10.0), 1.0);  // ~5 ms each
    }
  });
  rt.run();
  EXPECT_EQ(executed->load(), 16);
  int widgets = 0;
  for (ProcId p = 0; p < 2; ++p) {
    auto& mol = rt.mol_at(p);
    widgets += static_cast<int>(mol.local_count());
  }
  EXPECT_EQ(widgets, 16);
  EXPECT_TRUE(rt.termination_detected());
}

TEST(PremaIntegration, DeterministicAcrossRuns) {
  const auto a = run_imbalanced("work_stealing", 8, 64, 0.05,
                                dmcs::PollingMode::kPreemptive);
  const auto b = run_imbalanced("work_stealing", 8, 64, 0.05,
                                dmcs::PollingMode::kPreemptive);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.migrations, b.migrations);
}

}  // namespace
}  // namespace prema
