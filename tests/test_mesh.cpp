#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mesh/advancing_front.hpp"
#include "mesh/geometry.hpp"
#include "mesh/sizing.hpp"
#include "mesh/spatial_grid.hpp"
#include "mesh/subdomain.hpp"

namespace prema::mesh {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ((a + b), (Vec3{5, 7, 9}));
  EXPECT_EQ((b - a), (Vec3{3, 3, 3}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_EQ(cross(Vec3{1, 0, 0}, Vec3{0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
  EXPECT_NEAR(norm(normalized(b)), 1.0, 1e-12);
}

TEST(Geometry, SignedVolumeOrientation) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0, 0, 1};
  EXPECT_NEAR(signed_volume(a, b, c, d), 1.0 / 6.0, 1e-15);
  EXPECT_NEAR(signed_volume(a, c, b, d), -1.0 / 6.0, 1e-15);
}

TEST(Geometry, TriangleMeasures) {
  const Vec3 a{0, 0, 0}, b{2, 0, 0}, c{0, 2, 0};
  EXPECT_DOUBLE_EQ(triangle_area(a, b, c), 2.0);
  EXPECT_EQ(triangle_normal(a, b, c), (Vec3{0, 0, 1}));
  EXPECT_EQ(triangle_centroid(a, b, c), (Vec3{2.0 / 3, 2.0 / 3, 0}));
}

TEST(Geometry, RegularTetHasUnitQuality) {
  // Regular tetrahedron with edge sqrt(2) (positively oriented).
  const Vec3 a{1, 1, 1}, b{0, 1, 0}, c{1, 0, 0}, d{0, 0, 1};
  EXPECT_NEAR(tet_quality(a, b, c, d), 1.0, 1e-9);
  // A sliver scores near zero.
  EXPECT_LT(tet_quality({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0.5, 0.5, 1e-6}), 0.01);
}

TEST(Geometry, Circumsphere) {
  const Vec3 a{1, 0, 0}, b{-1, 0, 0}, c{0, 1, 0}, d{0, 0, 1};
  Vec3 center;
  double r2 = 0;
  ASSERT_TRUE(tet_circumsphere(a, b, c, d, center, r2));
  EXPECT_NEAR(center.x, 0.0, 1e-12);
  EXPECT_NEAR(r2, 1.0, 1e-9);
  // Degenerate (coplanar) tets have none.
  EXPECT_FALSE(tet_circumsphere({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}, center, r2));
}

TEST(Geometry, PointInTet) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0, 0, 1};
  EXPECT_TRUE(point_in_tet({0.1, 0.1, 0.1}, a, b, c, d));
  EXPECT_FALSE(point_in_tet({1, 1, 1}, a, b, c, d));
  EXPECT_FALSE(point_in_tet(a, a, b, c, d));  // vertex is not strictly inside
}

TEST(Geometry, SegmentTriangleIntersection) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0};
  EXPECT_TRUE(segment_intersects_triangle({0.2, 0.2, -1}, {0.2, 0.2, 1}, a, b, c));
  EXPECT_FALSE(segment_intersects_triangle({2, 2, -1}, {2, 2, 1}, a, b, c));
  // Coplanar segments do not "properly" intersect.
  EXPECT_FALSE(segment_intersects_triangle({-1, 0.2, 0}, {2, 0.2, 0}, a, b, c));
}

TEST(Geometry, CoplanarOverlap) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0};
  // Half-squares split along *different* diagonals: proper overlap.
  EXPECT_TRUE(coplanar_triangles_overlap(a, b, c, {1, 1, 0}, {0, 0, 0}, {1, 0, 0}));
  // Shares just an edge: no overlap.
  EXPECT_FALSE(coplanar_triangles_overlap(a, b, c, b, {1, 1, 0}, c));
  // Different plane: no.
  EXPECT_FALSE(coplanar_triangles_overlap(a, b, c, {0, 0, 1}, {1, 0, 1}, {0, 1, 1}));
}

TEST(SpatialGrid, InsertQueryRemove) {
  SpatialGrid g(0.5);
  g.insert(1, {0.1, 0.1, 0.1});
  g.insert(2, {0.9, 0.9, 0.9});
  g.insert(3, {0.15, 0.1, 0.1});
  EXPECT_EQ(g.size(), 3u);
  auto near = g.query_ball({0.1, 0.1, 0.1}, 0.2);
  std::set<std::int32_t> s(near.begin(), near.end());
  EXPECT_EQ(s, (std::set<std::int32_t>{1, 3}));
  EXPECT_EQ(g.nearest({0.14, 0.1, 0.1}, 1.0), 3);
  g.remove(3, {0.15, 0.1, 0.1});
  EXPECT_EQ(g.nearest({0.14, 0.1, 0.1}, 1.0), 1);
}

TEST(SpatialGridDeathTest, RemovingUnknownAborts) {
  SpatialGrid g(1.0);
  EXPECT_DEATH(g.remove(7, {0, 0, 0}), "never saw");
}

TEST(Sizing, CrackTipGradesFromMinToMax) {
  CrackTipSizing s({0.5, 0.5, 0.5}, 0.01, 0.2, 0.3);
  EXPECT_DOUBLE_EQ(s.size_at({0.5, 0.5, 0.5}), 0.01);
  EXPECT_DOUBLE_EQ(s.size_at({0.5, 0.5, 0.9}), 0.2);  // beyond the radius
  const double mid = s.size_at({0.5, 0.5, 0.65});     // halfway out
  EXPECT_GT(mid, 0.01);
  EXPECT_LT(mid, 0.2);
}

TEST(BoxSurface, ClosedOrientedInward) {
  std::vector<Vec3> pts;
  std::vector<Face> faces;
  box_surface({0, 0, 0}, {2, 1, 1}, 3, pts, faces);
  EXPECT_EQ(faces.size(), 6u * 3 * 3 * 2);
  const Vec3 center{1.0, 0.5, 0.5};
  double enclosed = 0.0;
  for (const auto& f : faces) {
    const double v = signed_volume(pts[static_cast<std::size_t>(f.v[0])],
                                   pts[static_cast<std::size_t>(f.v[1])],
                                   pts[static_cast<std::size_t>(f.v[2])], center);
    EXPECT_GT(v, 0.0);  // every normal points inward
    enclosed += v;
  }
  // Cone volumes from the center over a closed surface sum to the volume.
  EXPECT_NEAR(enclosed, 2.0, 1e-9);
  // Every edge appears exactly twice (closed 2-manifold).
  std::map<std::pair<PointId, PointId>, int> edges;
  for (const auto& f : faces) {
    for (int e = 0; e < 3; ++e) {
      auto u = f.v[static_cast<std::size_t>(e)];
      auto v = f.v[static_cast<std::size_t>((e + 1) % 3)];
      if (u > v) std::swap(u, v);
      edges[{u, v}]++;
    }
  }
  for (const auto& [k, count] : edges) EXPECT_EQ(count, 2);
}

TEST(InteriorPoints, DensityFollowsSizing) {
  UniformSizing coarse(0.5), fine(0.12);
  const auto few = interior_points({0, 0, 0}, {1, 1, 1}, coarse);
  const auto many = interior_points({0, 0, 0}, {1, 1, 1}, fine);
  EXPECT_GT(many.size(), 4 * few.size());
  for (const auto& p : many) {
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GT(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
    EXPECT_GT(p.z, 0.0);
    EXPECT_LT(p.z, 1.0);
  }
}

class MesherSweep : public ::testing::TestWithParam<int> {};

TEST_P(MesherSweep, FillsTheBoxExactly) {
  const int div = GetParam();
  std::vector<Vec3> pts;
  std::vector<Face> faces;
  box_surface({0, 0, 0}, {1, 1, 1}, div, pts, faces);
  UniformSizing sizing(1.0 / div);
  auto interior = interior_points({0, 0, 0}, {1, 1, 1}, sizing);
  pts.insert(pts.end(), interior.begin(), interior.end());
  AdvancingFront aft(std::move(pts), std::move(faces));
  const AftStats stats = aft.run();
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(aft.front_size(), 0u);
  EXPECT_NEAR(aft.mesh().total_volume(), 1.0, 1e-9);
  EXPECT_GT(stats.tets_created, 0);
  // Every tet positively oriented.
  EXPECT_GT(aft.mesh().min_quality(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Divisions, MesherSweep, ::testing::Values(2, 3, 4, 6));

TEST(Mesher, AdaptiveSizingCreatesMoreElementsNearTheTip) {
  auto run_with_tip = [](const Vec3& tip) {
    std::vector<Vec3> pts;
    std::vector<Face> faces;
    box_surface({0, 0, 0}, {1, 1, 1}, 4, pts, faces);
    CrackTipSizing sizing(tip, 0.04, 0.25, 0.3);
    auto interior = interior_points({0, 0, 0}, {1, 1, 1}, sizing);
    pts.insert(pts.end(), interior.begin(), interior.end());
    AdvancingFront aft(std::move(pts), std::move(faces));
    const auto stats = aft.run();
    EXPECT_TRUE(stats.completed);
    EXPECT_NEAR(aft.mesh().total_volume(), 1.0, 1e-9);
    return stats.tets_created;
  };
  const auto inside = run_with_tip({0.5, 0.5, 0.5});
  const auto outside = run_with_tip({5.0, 5.0, 5.0});  // far away: no refinement
  EXPECT_GT(inside, 2 * outside);
}

TEST(Mesher, DeterministicForFixedSeed) {
  auto run_once = [] {
    std::vector<Vec3> pts;
    std::vector<Face> faces;
    box_surface({0, 0, 0}, {1, 1, 1}, 3, pts, faces, 42);
    UniformSizing sizing(0.3);
    auto interior = interior_points({0, 0, 0}, {1, 1, 1}, sizing, 42);
    pts.insert(pts.end(), interior.begin(), interior.end());
    AdvancingFront aft(std::move(pts), std::move(faces));
    aft.run();
    return aft.mesh().tets.size();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Subdomain, RefineAccumulatesAndSerializes) {
  MeshSubdomain sub({0, 0, 0}, {0.25, 0.25, 0.25}, 3, 7);
  UniformSizing sizing(0.08);
  const auto s1 = sub.refine(sizing);
  EXPECT_TRUE(s1.completed);
  EXPECT_GT(sub.total_tets(), 0);
  EXPECT_EQ(sub.phases_done(), 1);
  EXPECT_NEAR(sub.last_mesh().total_volume(), 0.25 * 0.25 * 0.25, 1e-9);

  util::ByteWriter w;
  sub.serialize(w);
  util::ByteReader r(w.bytes());
  auto copy = MeshSubdomain::deserialize(r);
  auto& sub2 = static_cast<MeshSubdomain&>(*copy);
  EXPECT_EQ(sub2.total_tets(), sub.total_tets());
  EXPECT_EQ(sub2.phases_done(), 1);
  EXPECT_EQ(sub2.last_mesh().tets.size(), sub.last_mesh().tets.size());

  // Refinement continues on the deserialized copy (the migrated object).
  const auto s2 = sub2.refine(sizing);
  EXPECT_TRUE(s2.completed);
  EXPECT_EQ(sub2.phases_done(), 2);
}

TEST(Subdomain, CrackWalkStaysInDomain) {
  for (int phase = 0; phase < 50; ++phase) {
    const Vec3 tip = crack_tip_position(phase, 99);
    EXPECT_GT(tip.x, 0.0);
    EXPECT_LT(tip.x, 1.0);
    EXPECT_GT(tip.y, 0.0);
    EXPECT_LT(tip.y, 1.0);
    EXPECT_GT(tip.z, 0.0);
    EXPECT_LT(tip.z, 1.0);
  }
  // Different phases land in different places.
  EXPECT_NE(crack_tip_position(0, 99), crack_tip_position(1, 99));
}

TEST(Subdomain, RefineCostScalesWithElements) {
  EXPECT_GT(refine_cost_mflop(10000), refine_cost_mflop(100));
  EXPECT_GT(refine_cost_mflop(1), 0.0);
}

}  // namespace
}  // namespace prema::mesh
