#include <gtest/gtest.h>

#include <sstream>

#include "bench_support/mesh_app.hpp"
#include "bench_support/synthetic.hpp"

namespace prema::bench {
namespace {

SyntheticConfig small_config(double heavy_fraction, double heavy_mflop) {
  SyntheticConfig cfg;
  cfg.nprocs = 16;
  cfg.units_per_proc = 60;
  cfg.heavy_fraction = heavy_fraction;
  cfg.heavy_mflop = heavy_mflop;
  cfg.srp_cooldown_s = 3.0;
  return cfg;
}

TEST(SyntheticBench, EverySystemExecutesAllUnits) {
  const auto cfg = small_config(0.5, 500.0);
  const auto total = static_cast<std::int64_t>(cfg.nprocs) * cfg.units_per_proc;
  for (const System sys :
       {System::kNoLB, System::kPremaExplicit, System::kPremaImplicit,
        System::kStopRepartition, System::kCharmNoSync, System::kCharmSync}) {
    const RunReport r = run_synthetic(sys, cfg);
    EXPECT_EQ(r.executed, total) << r.label;
    EXPECT_GT(r.makespan, 0.0) << r.label;
    EXPECT_EQ(r.ledgers.size(), static_cast<std::size_t>(cfg.nprocs)) << r.label;
    // Useful computation is identical across systems: same workload.
    EXPECT_NEAR(r.comp_total,
                total * (cfg.heavy_fraction * cfg.heavy_mflop +
                         (1 - cfg.heavy_fraction) * cfg.light_mflop) /
                    cfg.proc_mflops,
                1.0)
        << r.label;
  }
}

TEST(SyntheticBench, PaperOrderingHoldsAtFig3Shape) {
  const auto cfg = small_config(0.5, 500.0);
  const auto no_lb = run_synthetic(System::kNoLB, cfg);
  const auto expl = run_synthetic(System::kPremaExplicit, cfg);
  const auto impl = run_synthetic(System::kPremaImplicit, cfg);
  const auto srp = run_synthetic(System::kStopRepartition, cfg);
  const auto charm0 = run_synthetic(System::kCharmNoSync, cfg);

  // Implicit PREMA is the overall winner (paper, all four figures).
  EXPECT_LT(impl.makespan, expl.makespan);
  EXPECT_LT(impl.makespan, srp.makespan);
  EXPECT_LT(impl.makespan, 0.85 * no_lb.makespan);
  // Charm without sync points cannot balance anything.
  EXPECT_NEAR(charm0.makespan, no_lb.makespan, 0.05 * no_lb.makespan);
  // Implicit PREMA produces the best post-balance load quality.
  EXPECT_LT(impl.comp_stddev, expl.comp_stddev);
  EXPECT_LT(impl.comp_stddev, no_lb.comp_stddev);
}

TEST(SyntheticBench, SpikeMakesStopRepartitionDecline) {
  auto cfg = small_config(0.1, 500.0);
  // At this miniature scale the outstanding fraction at trigger time is a
  // little higher than in the 128-proc runs; raise the root's bar so the
  // decline path itself is what gets exercised.
  cfg.srp_min_outstanding = 0.2;
  const auto srp = run_synthetic(System::kStopRepartition, cfg);
  const auto no_lb = run_synthetic(System::kNoLB, cfg);
  // Fig. 4(d): the root keeps synchronizing but declines to move anything.
  EXPECT_EQ(srp.migrations, 0u);
  EXPECT_GT(srp.sync_total, 0.0);
  EXPECT_GE(srp.makespan, 0.95 * no_lb.makespan);
}

TEST(SyntheticBench, ChargesAreConserved) {
  // Every processor's ledger must sum exactly to the makespan: the emulator
  // accounts every instant of every processor to some category.
  const auto cfg = small_config(0.5, 500.0);
  for (const System sys : {System::kPremaImplicit, System::kStopRepartition,
                           System::kCharmSync}) {
    const RunReport r = run_synthetic(sys, cfg);
    for (const auto& ledger : r.ledgers) {
      EXPECT_NEAR(ledger.total(), r.makespan, 1e-6) << r.label;
    }
  }
}

TEST(SyntheticBench, ReportPrintersProduceOutput) {
  const auto cfg = small_config(0.5, 500.0);
  const auto r = run_synthetic(System::kPremaImplicit, cfg);
  std::ostringstream os;
  print_panel(os, r);
  EXPECT_NE(os.str().find("Computation"), std::string::npos);
  EXPECT_NE(os.str().find("makespan"), std::string::npos);
  std::ostringstream cmp;
  print_comparison(cmp, {r});
  EXPECT_NE(cmp.str().find("PREMA"), std::string::npos);
}

TEST(SyntheticBench, DeterministicAcrossRuns) {
  const auto cfg = small_config(0.5, 500.0);
  const auto a = run_synthetic(System::kPremaImplicit, cfg);
  const auto b = run_synthetic(System::kPremaImplicit, cfg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(MeshAppBench, AllSystemsBuildTheSameMesh) {
  MeshAppConfig cfg;
  cfg.nprocs = 8;
  cfg.grid = 4;
  cfg.phases = 2;
  const auto no_lb = run_mesh_app(MeshSystem::kNoLB, cfg);
  const auto prema = run_mesh_app(MeshSystem::kPremaImplicit, cfg);
  const auto srp = run_mesh_app(MeshSystem::kStopRepartition, cfg);
  // The mesh is a pure function of the workload, not of the balancer.
  EXPECT_EQ(no_lb.total_tets, prema.total_tets);
  EXPECT_EQ(no_lb.total_tets, srp.total_tets);
  EXPECT_EQ(no_lb.refinements, static_cast<std::int64_t>(cfg.grid) * cfg.grid *
                                   cfg.grid * cfg.phases);
  EXPECT_EQ(prema.refinements, no_lb.refinements);
  EXPECT_GT(no_lb.total_tets, 0);
  EXPECT_EQ(no_lb.migrations, 0u);
  // The paper-scale benchmark (bench/mesh_generator) shows < 1% overhead;
  // at this miniature scale the fixed costs weigh relatively more.
  EXPECT_LT(prema.overhead_pct, 4.0);
}

}  // namespace
}  // namespace prema::bench
