#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_support/synthetic.hpp"
#include "dmcs/reliable.hpp"
#include "dmcs/sim_machine.hpp"
#include "fault/fault_plan.hpp"
#include "support/byte_buffer.hpp"
#include "trace/trace.hpp"

/// \file test_fault.cpp
/// The fault-injection subsystem (src/fault) and the reliable-delivery
/// protocol (src/dmcs/reliable.hpp) it exists to exercise: plan determinism
/// (same profile + seed = same fault schedule), override precedence, the
/// sliding-window sender/receiver state machine in isolation, and end-to-end
/// sim-backend runs under every canned profile checking the contract the
/// stack depends on — per-sender FIFO and exactly-once delivery — plus the
/// null-plan guarantee that a fault-free run never touches the reliability
/// machinery (all its counters stay zero).

namespace prema::fault {
namespace {

using dmcs::Message;
using dmcs::MsgKind;

// ---------------------------------------------------------------------------
// FaultProfile / FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultProfile, CannedProfilesRegistered) {
  for (const char* name :
       {"none", "lossy1pct", "burst-reorder", "one-slow-node", "mid-pause"}) {
    EXPECT_TRUE(is_fault_profile(name)) << name;
    EXPECT_EQ(make_fault_profile(name).name, name);
  }
  EXPECT_FALSE(is_fault_profile("lossy99pct"));
  EXPECT_FALSE(make_fault_profile("none").any());
  EXPECT_TRUE(make_fault_profile("lossy1pct").any());
}

TEST(FaultProfile, LinkOverridePrecedence) {
  FaultProfile prof;
  prof.link.drop_p = 0.01;  // default for every link
  LinkFaults exact;  exact.drop_p = 0.5;
  LinkFaults by_src; by_src.drop_p = 0.25;
  LinkFaults by_dst; by_dst.drop_p = 0.125;
  prof.link_overrides[{1, 2}] = exact;
  prof.link_overrides[{1, kNoProc}] = by_src;
  prof.link_overrides[{kNoProc, 2}] = by_dst;
  FaultPlan plan(prof, 1, 4);
  EXPECT_DOUBLE_EQ(plan.link(1, 2).drop_p, 0.5);    // exact match wins
  EXPECT_DOUBLE_EQ(plan.link(1, 3).drop_p, 0.25);   // then (src, *)
  EXPECT_DOUBLE_EQ(plan.link(0, 2).drop_p, 0.125);  // then (*, dst)
  EXPECT_DOUBLE_EQ(plan.link(0, 3).drop_p, 0.01);   // else the default
}

TEST(FaultPlan, SameSeedDrawsIdenticalFates) {
  const FaultProfile prof = make_fault_profile("burst-reorder");
  FaultPlan a(prof, 42, 4);
  FaultPlan b(prof, 42, 4);
  for (int i = 0; i < 500; ++i) {
    const ProcId src = static_cast<ProcId>(i % 4);
    const ProcId dst = static_cast<ProcId>((i + 1) % 4);
    const WireFate fa = a.on_send(src, dst);
    const WireFate fb = b.on_send(src, dst);
    EXPECT_EQ(fa.copies, fb.copies);
    EXPECT_EQ(fa.corrupt, fb.corrupt);
    EXPECT_EQ(fa.reorder, fb.reorder);
    EXPECT_DOUBLE_EQ(fa.extra_delay_s, fb.extra_delay_s);
    EXPECT_DOUBLE_EQ(fa.reorder_jitter_s[0], fb.reorder_jitter_s[0]);
    EXPECT_DOUBLE_EQ(fa.reorder_jitter_s[1], fb.reorder_jitter_s[1]);
  }
}

TEST(FaultPlan, LinkStreamsAreIndependent) {
  // Drawing heavily on one link must not perturb another link's schedule:
  // link (0,1)'s fate sequence is the same whether or not (2,3) drew first.
  const FaultProfile prof = make_fault_profile("lossy1pct");
  FaultPlan quiet(prof, 7, 4);
  FaultPlan noisy(prof, 7, 4);
  for (int i = 0; i < 1000; ++i) (void)noisy.on_send(2, 3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(quiet.on_send(0, 1).copies, noisy.on_send(0, 1).copies) << i;
  }
}

TEST(FaultPlan, InactivePlanNeverInjects) {
  FaultPlan plan(make_fault_profile("none"), 7, 4);
  EXPECT_FALSE(plan.active());
  for (int i = 0; i < 100; ++i) {
    const WireFate f = plan.on_send(0, 1);
    EXPECT_EQ(f.copies, 1);
    EXPECT_FALSE(f.corrupt);
    EXPECT_FALSE(f.reorder);
    EXPECT_DOUBLE_EQ(f.extra_delay_s, 0.0);
  }
  EXPECT_FALSE(plan.node_degraded(0));
  EXPECT_DOUBLE_EQ(plan.compute_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(plan.release_time(0, 3.25), 3.25);
}

TEST(FaultPlan, SlowNodeOracle) {
  FaultPlan plan(make_fault_profile("one-slow-node"), 7, 4);
  EXPECT_TRUE(plan.active());
  EXPECT_TRUE(plan.node_degraded(1));
  EXPECT_FALSE(plan.node_degraded(0));
  EXPECT_GT(plan.compute_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(plan.compute_factor(0), 1.0);
  // Inside a pause window arrivals are released at the window's end;
  // outside one they pass through untouched.
  const NodeFaults& nf = plan.node(1);
  ASSERT_GT(nf.pause_len_s, 0.0);
  const double inside = nf.pause_start_s + nf.pause_len_s / 2.0;
  EXPECT_DOUBLE_EQ(plan.release_time(1, inside), nf.pause_start_s + nf.pause_len_s);
  const double before = nf.pause_start_s / 2.0;
  EXPECT_DOUBLE_EQ(plan.release_time(1, before), before);
  EXPECT_DOUBLE_EQ(plan.release_time(0, inside), inside);  // healthy node
}

// ---------------------------------------------------------------------------
// ReliableLink: the sliding-window state machine in isolation
// ---------------------------------------------------------------------------

Message data_msg(ProcId src, std::uint8_t byte) {
  return Message{1, src, MsgKind::kApp, {byte}};
}

TEST(ReliableLink, StampAssignsSequentialSeqsPerLink) {
  dmcs::ReliableLink link(0, 3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    Message m = data_msg(0, 0);
    link.stamp(1, m, 0.0);
    EXPECT_EQ(m.seq, i);
    EXPECT_TRUE(m.rflags & Message::kReliable);
    EXPECT_EQ(m.checksum, dmcs::message_checksum(m));
  }
  Message m = data_msg(0, 0);
  link.stamp(2, m, 0.0);
  EXPECT_EQ(m.seq, 0u);  // each directed link numbers independently
  EXPECT_EQ(link.pending_to(1), 3u);
  EXPECT_EQ(link.pending_to(2), 1u);
  EXPECT_FALSE(link.quiet());
}

TEST(ReliableLink, OutOfOrderArrivalsAreBufferedThenReleasedInOrder) {
  dmcs::ReliableLink sender(0, 2);
  dmcs::ReliableLink receiver(1, 2);
  std::vector<Message> wire;
  for (std::uint8_t i = 0; i < 3; ++i) {
    Message m = data_msg(0, i);
    sender.stamp(1, m, 0.0);
    wire.push_back(std::move(m));
  }
  // Deliver 2, 1, 0: the first two arrive early and must be held back.
  auto a2 = receiver.accept(Message(wire[2]));
  EXPECT_TRUE(a2.deliver.empty());
  EXPECT_EQ(a2.ack_value, 0u);
  auto a1 = receiver.accept(Message(wire[1]));
  EXPECT_TRUE(a1.deliver.empty());
  EXPECT_FALSE(receiver.quiet());  // resequencing buffer non-empty
  auto a0 = receiver.accept(Message(wire[0]));
  ASSERT_EQ(a0.deliver.size(), 3u);  // 0 unblocks the whole run
  for (std::uint8_t i = 0; i < 3; ++i) EXPECT_EQ(a0.deliver[i].payload[0], i);
  EXPECT_EQ(a0.ack_value, 3u);
  EXPECT_TRUE(receiver.quiet());
  EXPECT_EQ(receiver.cumulative(0), 3u);
}

TEST(ReliableLink, DuplicatesAreAbsorbedAndReacked) {
  dmcs::ReliableLink sender(0, 2);
  dmcs::ReliableLink receiver(1, 2);
  Message m = data_msg(0, 9);
  sender.stamp(1, m, 0.0);
  auto first = receiver.accept(Message(m));
  ASSERT_EQ(first.deliver.size(), 1u);
  auto second = receiver.accept(Message(m));
  EXPECT_TRUE(second.duplicate);
  EXPECT_TRUE(second.deliver.empty());
  EXPECT_EQ(second.ack_value, 1u);  // the re-ack covers the lost original ack
}

TEST(ReliableLink, CorruptCopyIsDiscardedWithoutAck) {
  dmcs::ReliableLink sender(0, 2);
  dmcs::ReliableLink receiver(1, 2);
  Message m = data_msg(0, 9);
  sender.stamp(1, m, 0.0);
  Message damaged = m;
  damaged.payload.clear();  // wire truncation; checksum no longer matches
  auto res = receiver.accept(std::move(damaged));
  EXPECT_TRUE(res.corrupt);
  EXPECT_TRUE(res.deliver.empty());
  EXPECT_EQ(receiver.cumulative(0), 0u);  // frontier unmoved: not accepted
  auto intact = receiver.accept(Message(m));  // the retransmit's copy
  ASSERT_EQ(intact.deliver.size(), 1u);
  EXPECT_EQ(intact.ack_value, 1u);
}

TEST(ReliableLink, CumulativeAckClearsPendingAndBackoffDoubles) {
  dmcs::ReliableConfig cfg;
  cfg.rto_initial_s = 1.0;
  cfg.rto_max_s = 8.0;
  dmcs::ReliableLink link(0, 2, cfg);
  Message m0 = data_msg(0, 0);
  Message m1 = data_msg(0, 1);
  link.stamp(1, m0, 0.0);
  link.stamp(1, m1, 0.0);
  EXPECT_DOUBLE_EQ(link.next_deadline(), 1.0);
  EXPECT_FALSE(link.peer_lossy(1));

  // Head-of-window only: both are overdue, but only seq 0 is resent —
  // acks are cumulative, so recovering the head is enough to release
  // everything the receiver buffered behind the gap.
  auto due = link.due_retransmits(1.5);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].msg.seq, 0u);
  EXPECT_TRUE(due[0].msg.rflags & Message::kRetransmit);
  EXPECT_TRUE(link.peer_lossy(1));          // retransmitting = struggling
  EXPECT_DOUBLE_EQ(link.next_deadline(), 1.5 + 2.0);  // head's rto doubled
  EXPECT_TRUE(link.due_retransmits(1.6).empty());     // backed off

  link.on_ack(1, 1);  // peer accepted seq 0; seq 1 becomes the head
  EXPECT_EQ(link.pending_to(1), 1u);
  auto due2 = link.due_retransmits(1.7);  // new head overdue since 1.0
  ASSERT_EQ(due2.size(), 1u);
  EXPECT_EQ(due2[0].msg.seq, 1u);

  link.on_ack(1, 2);  // peer accepted all seq < 2
  EXPECT_EQ(link.pending_to(1), 0u);
  EXPECT_TRUE(link.quiet());
  EXPECT_FALSE(link.peer_lossy(1));
}

TEST(ReliableLink, WireTimeDefersRetransmitDeadline) {
  dmcs::ReliableConfig cfg;
  cfg.rto_initial_s = 1.0;
  dmcs::ReliableLink link(0, 2, cfg);
  Message m = data_msg(0, 0);
  link.stamp(1, m, 0.0);
  EXPECT_DOUBLE_EQ(link.next_deadline(), 1.0);
  // The copy sat in the link's FIFO and only hit the wire at t=5: the
  // timeout must measure the round-trip from there, not from the stamp.
  link.note_wire_time(1, 0, 5.0);
  EXPECT_DOUBLE_EQ(link.next_deadline(), 6.0);
  EXPECT_TRUE(link.due_retransmits(1.5).empty());
  EXPECT_EQ(link.due_retransmits(6.5).size(), 1u);
  link.on_ack(1, 1);
  link.note_wire_time(1, 0, 100.0);  // acked: silently ignored
  EXPECT_TRUE(link.quiet());
}

TEST(ReliableLinkDeathTest, RetryBudgetExhaustionAborts) {
  dmcs::ReliableConfig cfg;
  cfg.rto_initial_s = 1.0;
  cfg.max_retries = 2;
  dmcs::ReliableLink link(0, 2, cfg);
  Message m = data_msg(0, 0);
  link.stamp(1, m, 0.0);
  EXPECT_DEATH(
      {
        double t = 0.0;
        for (int i = 0; i < 10; ++i) (void)link.due_retransmits(t += 100.0);
      },
      "retry budget exhausted");
}

// ---------------------------------------------------------------------------
// End-to-end on the emulated machine
// ---------------------------------------------------------------------------

/// Minimal program: application messages run FIFO through Node::execute.
class QueueProgram : public dmcs::Program {
 public:
  std::function<void(dmcs::Node&)> on_main;
  void main(dmcs::Node& n) override {
    if (on_main) on_main(n);
  }
  void deliver_app(dmcs::Node&, Message&& m) override {
    queue_.push_back(std::move(m));
  }
  bool service(dmcs::Node& n) override {
    if (queue_.empty()) return false;
    Message m = std::move(queue_.front());
    queue_.pop_front();
    n.execute(std::move(m), nullptr);
    return true;
  }

 private:
  std::deque<Message> queue_;
};

/// Rank 0 streams `count` numbered messages to every other rank; each
/// receiver must observe exactly 0, 1, 2, ... in order (FIFO + exactly-once),
/// whatever the wire does underneath.
void run_stream_under_profile(const std::string& profile, int nprocs,
                              int count) {
  sim::MachineConfig cfg;
  cfg.nprocs = nprocs;
  dmcs::SimMachine m(cfg);
  m.set_fault_plan(
      std::make_shared<FaultPlan>(make_fault_profile(profile), 7, nprocs));

  std::vector<std::vector<std::uint32_t>> seen(
      static_cast<std::size_t>(nprocs));
  const dmcs::HandlerId h = m.registry().add("recv", [&](dmcs::Node& n,
                                                         Message&& msg) {
    util::ByteReader r(msg.payload);
    seen[static_cast<std::size_t>(n.rank())].push_back(r.get<std::uint32_t>());
  });
  m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [&, h](dmcs::Node& n) {
        for (int i = 0; i < count; ++i) {
          for (ProcId dst = 1; dst < static_cast<ProcId>(nprocs); ++dst) {
            util::ByteWriter w;
            w.put<std::uint32_t>(static_cast<std::uint32_t>(i));
            n.send(dst, Message{h, 0, MsgKind::kApp, w.take()});
          }
        }
      };
    }
    return prog;
  });
  for (ProcId p = 1; p < static_cast<ProcId>(nprocs); ++p) {
    const auto& got = seen[static_cast<std::size_t>(p)];
    ASSERT_EQ(got.size(), static_cast<std::size_t>(count)) << "rank " << p;
    for (int i = 0; i < count; ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(i)], static_cast<std::uint32_t>(i))
          << "rank " << p;
    }
  }
}

TEST(FaultSim, ExactlyOnceFifoUnderLossy1pct) {
  run_stream_under_profile("lossy1pct", 4, 100);
}

TEST(FaultSim, ExactlyOnceFifoUnderBurstReorder) {
  run_stream_under_profile("burst-reorder", 4, 100);
}

TEST(FaultSim, ExactlyOnceFifoUnderOneSlowNode) {
  run_stream_under_profile("one-slow-node", 4, 100);
}

TEST(FaultSim, FaultFreeRunKeepsReliabilityCountersZero) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  sim::MachineConfig cfg;
  cfg.nprocs = 4;
  dmcs::SimMachine m(cfg);  // no fault plan: legacy transport
  trace::TraceConfig tcfg;
  tcfg.enabled = true;
  m.enable_tracing(tcfg);
  const dmcs::HandlerId h = m.registry().add("noop", [](dmcs::Node&, Message&&) {});
  m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [h](dmcs::Node& n) {
        for (ProcId dst = 1; dst < 4; ++dst) {
          n.send(dst, Message{h, 0, MsgKind::kApp, {}});
        }
      };
    }
    return prog;
  });
  const auto* rec = m.tracer();
  ASSERT_NE(rec, nullptr);
  for (ProcId p = 0; p < 4; ++p) {
    const auto& c = rec->sink(p).counters();
    EXPECT_EQ(c.faults_injected, 0u) << p;
    EXPECT_EQ(c.retransmits, 0u) << p;
    EXPECT_EQ(c.acks_sent, 0u) << p;
    EXPECT_EQ(c.dup_drops, 0u) << p;
    EXPECT_EQ(c.corrupt_drops, 0u) << p;
  }
}

TEST(FaultSim, LossyRunRecordsFaultAndRecoveryCounters) {
  if (!trace::kCompiledIn) GTEST_SKIP() << "tracing compiled out";
  sim::MachineConfig cfg;
  cfg.nprocs = 2;
  dmcs::SimMachine m(cfg);
  // An aggressive custom profile so every counter fires within a short run.
  FaultProfile prof;
  prof.name = "test-hostile";
  prof.link.drop_p = 0.2;
  prof.link.dup_p = 0.2;
  prof.link.corrupt_p = 0.1;
  m.set_fault_plan(std::make_shared<FaultPlan>(prof, 11, cfg.nprocs));
  trace::TraceConfig tcfg;
  tcfg.enabled = true;
  m.enable_tracing(tcfg);
  int delivered = 0;
  const dmcs::HandlerId h =
      m.registry().add("count", [&](dmcs::Node&, Message&&) { ++delivered; });
  m.run([&](ProcId p) {
    auto prog = std::make_unique<QueueProgram>();
    if (p == 0) {
      prog->on_main = [h](dmcs::Node& n) {
        for (int i = 0; i < 200; ++i) {
          n.send(1, Message{h, 0, MsgKind::kApp, {1, 2, 3, 4}});
        }
      };
    }
    return prog;
  });
  EXPECT_EQ(delivered, 200);  // exactly once despite 20% drop / 20% dup / 10% corrupt
  trace::ProcCounters total;
  const auto* rec = m.tracer();
  ASSERT_NE(rec, nullptr);
  for (ProcId p = 0; p < 2; ++p) total += rec->sink(p).counters();
  EXPECT_GT(total.faults_injected, 0u);
  EXPECT_GT(total.retransmits, 0u);  // drops forced timeouts
  EXPECT_GT(total.acks_sent, 0u);
  EXPECT_GT(total.dup_drops, 0u);  // dup faults plus retransmit echoes
}

// ---------------------------------------------------------------------------
// Whole-stack soak: the fig3 workload (shrunk) under every canned profile.
// run_synthetic's delivery-ledger checks abort on any lost or cloned mobile
// object, unexecuted unit, or open migration handoff.
// ---------------------------------------------------------------------------

bench::SyntheticConfig soak_config(const std::string& profile) {
  bench::SyntheticConfig cfg;
  cfg.nprocs = 8;
  cfg.units_per_proc = 16;
  cfg.heavy_fraction = 0.5;
  cfg.fault_profile = profile;
  cfg.fault_seed = 7;
  return cfg;
}

TEST(FaultSoak, Fig3WorkloadCompletesUnderEveryProfile) {
  for (const char* profile : {"lossy1pct", "burst-reorder", "one-slow-node"}) {
    SCOPED_TRACE(profile);
    const auto report =
        bench::run_synthetic(bench::System::kPremaImplicit, soak_config(profile));
    EXPECT_EQ(report.executed, 8 * 16);
    EXPECT_GT(report.makespan, 0.0);
  }
}

TEST(FaultSoak, ExplicitPollingSurvivesLossyLinks) {
  const auto report = bench::run_synthetic(bench::System::kPremaExplicit,
                                           soak_config("lossy1pct"));
  EXPECT_EQ(report.executed, 8 * 16);
}

}  // namespace
}  // namespace prema::fault
