#include <gtest/gtest.h>

#include "bench_support/service_harness.hpp"

/// \file test_service_thread.cpp
/// Service mode on the real-threads backend: the same open-loop scenario the
/// sim tests run, but with real worker/poller threads racing the arrival
/// timers, the balancer cadence and the service_mu-guarded ledger — which is
/// exactly what the TSan job in CI exercises (label "thread").

namespace prema::bench {
namespace {

ServiceScenario thread_scenario(const std::string& policy) {
  ServiceScenario sc;
  sc.backend = "thread";
  sc.nprocs = 4;
  sc.duration_s = 0.1;  // sized for the sanitizer matrix's ~10x slowdown
  sc.epoch_s = 25e-3;
  sc.policy = policy;
  sc.arrivals.rate_per_proc = 120.0;
  return sc;
}

TEST(ServiceThread, WorkStealingAuditBalances) {
  const ServiceReport r = run_service_scenario(thread_scenario("work_stealing"));
  EXPECT_TRUE(r.audit_ok) << "arrivals=" << r.arrivals
                          << " completions=" << r.completions;
  EXPECT_GT(r.arrivals, 0u);
  EXPECT_EQ(r.histogram.count(), r.completions);
  EXPECT_GT(r.p50_ms, 0.0);
  EXPECT_GE(r.p999_ms, r.p50_ms);
  for (const auto& series : r.load_series) EXPECT_FALSE(series.empty());
}

TEST(ServiceThread, DiffusionAuditBalances) {
  const ServiceReport r = run_service_scenario(thread_scenario("diffusion"));
  EXPECT_TRUE(r.audit_ok) << "arrivals=" << r.arrivals
                          << " completions=" << r.completions;
  EXPECT_GT(r.arrivals, 0u);
}

}  // namespace
}  // namespace prema::bench
