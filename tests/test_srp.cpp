#include <gtest/gtest.h>

#include <memory>

#include "bench_support/stop_repartition.hpp"
#include "dmcs/sim_machine.hpp"

namespace prema::srp {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::TimeCategory;

class Unit : public mol::MobileObject {
 public:
  explicit Unit(double m = 0.0) : mflop_(m) {}
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(ByteWriter& w) const override { w.put<double>(mflop_); }
  static std::unique_ptr<mol::MobileObject> make(ByteReader& r) {
    return std::make_unique<Unit>(r.get<double>());
  }
  double mflop_;
};

struct SrpRun {
  double makespan = 0.0;
  std::int64_t executed = 0;
  int exchanges = 0;
  int repartitions = 0;
  std::uint64_t migrations = 0;
  double sync_total = 0.0;
  double partition_total = 0.0;
};

/// Rank 0 heavy (4x unit weight), everyone has `units` units.
SrpRun run_srp(int nprocs, int units, double heavy_factor, SrpConfig scfg) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = nprocs;
  mcfg.mflops = 1000.0;  // 1 Mflop == 1 ms
  dmcs::SimMachine machine(mcfg);
  Runtime rt(machine, scfg);
  rt.object_types().add(1, Unit::make);
  std::int64_t executed = 0;
  const auto work = rt.register_object_handler(
      "work", [&executed](Context& ctx, mol::MobileObject& obj, ByteReader&,
                          const mol::Delivery&) {
        ctx.compute(static_cast<Unit&>(obj).mflop_);
        ++executed;
      });
  rt.set_total_units(static_cast<std::int64_t>(nprocs) * units);
  rt.set_main([work, units, heavy_factor](Context& ctx) {
    const double mflop = ctx.rank() < ctx.nprocs() / 4 + 1 ? 50.0 * heavy_factor : 50.0;
    for (int i = 0; i < units; ++i) {
      ctx.message(ctx.add_object(std::make_unique<Unit>(mflop)), work, {}, 1.0);
    }
  });
  SrpRun res;
  res.makespan = rt.run();
  res.executed = executed;
  res.exchanges = rt.exchanges();
  res.repartitions = rt.repartitions();
  res.migrations = rt.migrations();
  for (ProcId p = 0; p < nprocs; ++p) {
    res.sync_total += machine.ledger(p).get(TimeCategory::kSynchronization);
    res.partition_total += machine.ledger(p).get(TimeCategory::kPartitionCalc);
  }
  return res;
}

TEST(StopRepartition, RebalancesABigImbalance) {
  SrpConfig scfg;
  scfg.cooldown_s = 0.5;
  const auto r = run_srp(8, 64, 6.0, scfg);
  EXPECT_EQ(r.executed, 8 * 64);
  EXPECT_GE(r.repartitions, 1);
  EXPECT_GT(r.migrations, 0u);
  EXPECT_GT(r.sync_total, 0.0);
  EXPECT_GT(r.partition_total, 0.0);
  // No balancing at all would take ~19.2s (300 heavy units of 64ms... sanity:
  // 64 units x 300 Mflop/...); just require a real improvement over the
  // unbalanced bound and completion above the balanced bound.
  SrpConfig off = scfg;
  off.low_watermark = -1.0;  // never notify: the no-balancing control
  const auto control = run_srp(8, 64, 6.0, off);
  EXPECT_EQ(control.repartitions, 0);
  EXPECT_LT(r.makespan, 0.8 * control.makespan);
}

TEST(StopRepartition, DeclinesWhenLittleWorkRemains) {
  SrpConfig scfg;
  scfg.cooldown_s = 0.2;
  scfg.min_outstanding_fraction = 0.95;  // effectively: always too late
  const auto r = run_srp(8, 32, 4.0, scfg);
  EXPECT_EQ(r.executed, 8 * 32);
  EXPECT_GT(r.exchanges, 0);        // it kept synchronizing...
  EXPECT_EQ(r.repartitions, 0);     // ...but never moved anything
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_GT(r.sync_total, 0.0);     // and the barrier bill was still paid
}

TEST(StopRepartition, CooldownBoundsExchangeRate) {
  SrpConfig fast;
  fast.cooldown_s = 0.1;
  fast.min_outstanding_fraction = 0.95;  // every exchange declines
  SrpConfig slow = fast;
  slow.cooldown_s = 5.0;
  const auto many = run_srp(8, 32, 4.0, fast);
  const auto few = run_srp(8, 32, 4.0, slow);
  EXPECT_GT(many.exchanges, few.exchanges);
}

TEST(StopRepartition, QuiescesWithoutImbalance) {
  SrpConfig scfg;
  const auto r = run_srp(4, 16, 1.0, scfg);  // perfectly balanced
  EXPECT_EQ(r.executed, 64);
  EXPECT_EQ(r.migrations, 0u);
}

}  // namespace
}  // namespace prema::srp
