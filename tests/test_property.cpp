// Property-based suites: randomized scenarios sweeping seeds, checking the
// invariants the runtime promises no matter what the workload looks like.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "dmcs/sim_machine.hpp"
#include "graph/generators.hpp"
#include "ilb/scheduler.hpp"
#include "mesh/advancing_front.hpp"
#include "partition/adaptive.hpp"
#include "partition/multilevel.hpp"
#include "prema/runtime.hpp"

namespace prema {
namespace {

using util::ByteReader;
using util::ByteWriter;

// ---------------------------------------------------------------------------
// Runtime-wide property: random bursts of messages from random ranks to
// random objects, under a random policy. Every message is delivered exactly
// once, in per-sender order, objects are conserved, and the run terminates.
// ---------------------------------------------------------------------------

class Cell : public mol::MobileObject {
 public:
  explicit Cell(std::int64_t h = 0) : hits(h) {}
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(ByteWriter& w) const override { w.put<std::int64_t>(hits); }
  static std::unique_ptr<mol::MobileObject> make(ByteReader& r) {
    return std::make_unique<Cell>(r.get<std::int64_t>());
  }
  std::int64_t hits;
};

class RuntimeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeFuzz, DeliversEverythingExactlyOnceInOrder) {
  const std::uint64_t seed = GetParam();
  util::Rng plan(seed);
  const int nprocs = static_cast<int>(2 + plan.below(7));        // 2..8
  const int objects = static_cast<int>(4 + plan.below(29));      // 4..32
  const int messages = static_cast<int>(20 + plan.below(181));   // 20..200
  const char* policies[] = {"work_stealing", "diffusion", "master", "multilist"};
  const char* policy = policies[plan.below(4)];

  sim::MachineConfig mcfg;
  mcfg.nprocs = nprocs;
  mcfg.mflops = 1000.0;
  mcfg.seed = seed;
  dmcs::PollingConfig pcfg;
  pcfg.mode = plan.chance(0.5) ? dmcs::PollingMode::kPreemptive
                               : dmcs::PollingMode::kExplicit;
  dmcs::SimMachine machine(mcfg, pcfg);
  machine.set_max_events(20'000'000);

  RuntimeConfig rcfg;
  rcfg.policy = policy;
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, Cell::make);

  // (object, origin) -> sequence values seen, in order.
  std::map<std::pair<std::uint32_t, ProcId>, std::vector<std::int64_t>> seen;
  std::int64_t delivered = 0;
  const auto work = rt.register_object_handler(
      "work", [&](Context& ctx, mol::MobileObject& obj, ByteReader& r,
                  const mol::Delivery& d) {
        static_cast<Cell&>(obj).hits++;
        seen[{d.target.index + (static_cast<std::uint32_t>(d.target.home) << 16),
              d.origin}]
            .push_back(r.get<std::int64_t>());
        ++delivered;
        ctx.compute(0.2 + 4.8 * ctx.rng().uniform());
      });

  // The plan: each rank creates a slice of objects (round-robin) and sends a
  // random number of numbered messages to random objects.
  std::vector<int> per_rank_sends(static_cast<std::size_t>(nprocs), 0);
  for (int m = 0; m < messages; ++m) {
    per_rank_sends[plan.below(static_cast<std::uint64_t>(nprocs))]++;
  }
  const std::uint64_t scenario_seed = plan.next();

  rt.set_main([&, scenario_seed](Context& ctx) {
    for (int i = ctx.rank(); i < objects; i += ctx.nprocs()) {
      ctx.add_object(std::make_unique<Cell>());
    }
    // Deterministic per-rank plan, decoupled from execution randomness.
    util::Rng mine(scenario_seed ^ static_cast<std::uint64_t>(ctx.rank()) * 0x9E37ULL);
    const int sends = per_rank_sends[static_cast<std::size_t>(ctx.rank())];
    for (int s = 0; s < sends; ++s) {
      const int obj = static_cast<int>(mine.below(static_cast<std::uint64_t>(objects)));
      const ProcId home = obj % ctx.nprocs();
      const auto index = static_cast<std::uint32_t>(obj / ctx.nprocs());
      ByteWriter w;
      w.put<std::int64_t>(s);  // per-sender sequence stamp
      ctx.message(mol::MobilePtr{home, index}, work, w.take(), 1.0);
    }
  });

  rt.run();

  EXPECT_EQ(delivered, messages) << "policy " << policy;
  EXPECT_TRUE(rt.termination_detected());
  // Per (object, origin) streams are subsequences of 0,1,2,... in order.
  for (const auto& [key, values] : seen) {
    for (std::size_t i = 1; i < values.size(); ++i) {
      EXPECT_LT(values[i - 1], values[i]) << "policy " << policy;
    }
  }
  // Objects conserved, and total hits equal deliveries.
  std::size_t object_count = 0;
  std::int64_t hits = 0;
  for (ProcId p = 0; p < nprocs; ++p) {
    auto& mol = rt.mol_at(p);
    for (const auto& ptr : mol.local_ptrs()) {
      ++object_count;
      hits += static_cast<Cell*>(mol.find(ptr))->hits;
    }
  }
  EXPECT_EQ(object_count, static_cast<std::size_t>(objects));
  EXPECT_EQ(hits, delivered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

// ---------------------------------------------------------------------------
// Partitioner properties over random graphs.
// ---------------------------------------------------------------------------

class PartitionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionFuzz, ValidBalancedDeterministic) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  const auto n = static_cast<graph::VertexId>(40 + rng.below(200));
  const auto g = graph::random_geometric(n, 0.25, rng);
  const int k = static_cast<int>(2 + rng.below(7));

  part::PartitionOptions opts;
  opts.k = k;
  opts.seed = seed;
  const auto p1 = part::multilevel_kway(g, opts);
  const auto p2 = part::multilevel_kway(g, opts);
  EXPECT_EQ(p1, p2);  // deterministic
  ASSERT_EQ(p1.size(), static_cast<std::size_t>(n));
  for (const auto part : p1) {
    ASSERT_GE(part, 0);
    ASSERT_LT(part, k);
  }
  // Random geometric graphs may be disconnected; the partitioner still has
  // to respect the balance tolerance (with slack for indivisible chunks).
  EXPECT_LE(graph::imbalance(g, p1, k), 1.35);
}

TEST_P(PartitionFuzz, AdaptiveRestoresBalance) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed ^ 0xABCDEF);
  const auto side = static_cast<graph::VertexId>(10 + rng.below(15));
  const auto base = graph::grid2d(side, side);
  part::PartitionOptions popts;
  popts.k = 4;
  popts.seed = seed;
  const auto old_part = part::multilevel_kway(base, popts);

  // Random hot rectangle with 4..10x weights.
  graph::GraphBuilder b(base.num_vertices());
  const auto hx = rng.below(static_cast<std::uint64_t>(side / 2));
  const auto hy = rng.below(static_cast<std::uint64_t>(side / 2));
  const double factor = 4.0 + rng.uniform(0.0, 6.0);
  for (graph::VertexId v = 0; v < base.num_vertices(); ++v) {
    const auto x = static_cast<std::uint64_t>(v % side);
    const auto y = static_cast<std::uint64_t>(v / side);
    const bool hot = x >= hx && x < hx + static_cast<std::uint64_t>(side) / 3 &&
                     y >= hy && y < hy + static_cast<std::uint64_t>(side) / 3;
    b.set_vertex_weight(v, hot ? factor : 1.0);
  }
  for (graph::VertexId v = 0; v < base.num_vertices(); ++v) {
    for (const auto u : base.neighbors(v)) {
      if (u > v) b.add_edge(v, u);
    }
  }
  const auto drifted = b.build();

  part::AdaptiveOptions aopts;
  aopts.k = 4;
  aopts.seed = seed;
  const auto res = part::adaptive_repartition(drifted, old_part, aopts);
  EXPECT_LE(graph::imbalance(drifted, res.partition, 4),
            graph::imbalance(drifted, old_part, 4) + 1e-9);
  EXPECT_LE(graph::imbalance(drifted, res.partition, 4), 1.25);
  EXPECT_DOUBLE_EQ(res.cost, res.edge_cut + aopts.alpha * res.migration);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

// ---------------------------------------------------------------------------
// Scheduler fuzz: random interleavings of enqueue / pick / complete /
// take_queued keep totals and per-object FIFO intact.
// ---------------------------------------------------------------------------

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, TotalsAndOrderInvariants) {
  util::Rng rng(GetParam());
  ilb::Scheduler s;
  std::map<std::uint32_t, std::uint64_t> next_no;     // per-object next delivery no
  std::map<std::uint32_t, std::uint64_t> last_seen;   // per-object last executed
  std::int64_t enqueued = 0, executed = 0, taken = 0;
  double weight_in = 0.0, weight_out = 0.0;

  for (int step = 0; step < 2000; ++step) {
    const auto action = rng.below(10);
    if (action < 5) {  // enqueue
      const auto obj = static_cast<std::uint32_t>(rng.below(12));
      mol::Delivery d;
      d.target = {0, obj};
      d.handler = 1;
      d.weight = 0.5 + rng.uniform();
      d.delivery_no = next_no[obj]++;
      weight_in += d.weight;
      s.enqueue(std::move(d));
      ++enqueued;
    } else if (action < 9) {  // pick + complete
      if (s.executing()) continue;
      auto d = s.pick();
      if (!d) continue;
      const auto obj = d->target.index;
      auto it = last_seen.find(obj);
      if (it != last_seen.end()) {
        EXPECT_LT(it->second, d->delivery_no);
      }
      last_seen[obj] = d->delivery_no;
      weight_out += d->weight;
      ++executed;
      s.complete();
    } else {  // take a random object's queue (migration)
      if (s.executing()) continue;
      const auto obj = static_cast<std::uint32_t>(rng.below(12));
      for (auto& d : s.take_queued({0, obj})) {
        weight_out += d.weight;
        ++taken;
        // A migrated queue replays elsewhere; locally we just retire it and
        // reset the per-object stream (a fresh residence epoch).
      }
      last_seen.erase(obj);
      next_no[obj] = 0;
      // Re-synchronise our bookkeeping with the scheduler's delivery-number
      // monotonicity requirement: the object restarts from zero only because
      // we also dropped its pending stream entirely.
    }
  }
  while (auto d = s.pick()) {
    weight_out += d->weight;
    ++executed;
    s.complete();
  }
  EXPECT_EQ(enqueued, executed + taken);
  EXPECT_NEAR(weight_in, weight_out, 1e-9);
  EXPECT_EQ(s.queued_units(), 0u);
  EXPECT_NEAR(s.queued_weight(), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(7u, 17u, 27u, 37u, 47u));

// ---------------------------------------------------------------------------
// Mesher property: for random crack positions the mesh always fills the box
// exactly and the front always closes.
// ---------------------------------------------------------------------------

class MesherFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MesherFuzz, AlwaysFillsTheBox) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  const mesh::Vec3 tip{0.1 + 0.8 * rng.uniform(), 0.1 + 0.8 * rng.uniform(),
                       0.1 + 0.8 * rng.uniform()};
  mesh::CrackTipSizing sizing(tip, 0.05 + 0.03 * rng.uniform(), 0.25, 0.3);
  std::vector<mesh::Vec3> pts;
  std::vector<mesh::Face> faces;
  mesh::box_surface({0, 0, 0}, {1, 1, 1}, 4, pts, faces, seed);
  auto interior = mesh::interior_points({0, 0, 0}, {1, 1, 1}, sizing, seed);
  pts.insert(pts.end(), interior.begin(), interior.end());
  mesh::AdvancingFront aft(std::move(pts), std::move(faces));
  const auto stats = aft.run();
  EXPECT_TRUE(stats.completed);
  EXPECT_NEAR(aft.mesh().total_volume(), 1.0, 1e-9);
  EXPECT_GT(aft.mesh().min_quality(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MesherFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

}  // namespace
}  // namespace prema
