// The paper's "real-world" experiment (§5): 3-D parallel advancing-front
// mesh generation under a moving crack tip, comparing PREMA (implicit and
// explicit), stop-and-repartition, and no balancing. The paper reports, for
// PREMA with preemptive load balancing:
//   ~15% faster than stop-and-repartition,
//   ~42% faster than no load balancing,
//   runtime overhead well under 1% of total runtime.
// (The paper did not run this application under Charm++; neither do we.)
//
// Every subdomain runs the real mesher in-process; the element counts are
// identical across systems, so only the balancing differs.
#include <cstdio>

#include "bench_support/mesh_app.hpp"

using namespace prema::bench;

int main() {
  MeshAppConfig cfg;  // 1000 subdomains on 16 emulated procs, 5 crack steps

  std::printf("Parallel adaptive mesh generation: %d^3 subdomains, %d procs, "
              "%d crack phases\n",
              cfg.grid, cfg.nprocs, cfg.phases);
  std::printf("paper: PREMA ~15%% over stop-and-repartition, ~42%% over no "
              "LB, overhead < 1%%\n\n");

  MeshAppReport base{};
  for (const MeshSystem sys :
       {MeshSystem::kNoLB, MeshSystem::kPremaExplicit, MeshSystem::kPremaImplicit,
        MeshSystem::kStopRepartition}) {
    const MeshAppReport r = run_mesh_app(sys, cfg);
    if (sys == MeshSystem::kNoLB) base = r;
    std::printf("%-36s makespan %8.2f s", r.label.c_str(), r.makespan);
    if (sys != MeshSystem::kNoLB && base.makespan > 0) {
      std::printf("  (%+5.1f%% vs no LB)",
                  100.0 * (r.makespan - base.makespan) / base.makespan);
    }
    std::printf("\n");
    std::printf("    tets %lld  refinements %lld  migrations %llu  "
                "overhead %.3f%%  sync %.2f proc-s  comp-stddev %.2f\n",
                static_cast<long long>(r.total_tets),
                static_cast<long long>(r.refinements),
                static_cast<unsigned long long>(r.migrations), r.overhead_pct,
                r.sync_total, r.comp_stddev);
  }

  // How much the stop-and-repartition baseline depends on how often it is
  // allowed to stop the machine: at ~one repartition per phase (the classic
  // usage) it trails PREMA; allowed to repartition continuously it becomes
  // a centralized work redistributor and closes most of the gap — at the
  // price of far more synchronization traffic.
  std::printf("\nstop-and-repartition cooldown sweep (phase length ~10 s):\n");
  for (const double cooldown : {2.0, 5.0, 10.0}) {
    MeshAppConfig scfg = cfg;
    scfg.srp_cooldown_s = cooldown;
    const MeshAppReport r = run_mesh_app(MeshSystem::kStopRepartition, scfg);
    std::printf("  cooldown %5.1f s: makespan %8.2f s, %llu migrations, "
                "sync %.1f proc-s\n",
                cooldown, r.makespan,
                static_cast<unsigned long long>(r.migrations), r.sync_total);
  }
  return 0;
}
