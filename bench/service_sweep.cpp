// Open-loop service mode: continuous load balancing under live traffic.
// Sweeps offered load (as a fraction of per-processor capacity) across both
// machine backends and two balancing policies, reporting the tail-latency SLO
// numbers (p50/p99/p999 sojourn), throughput, and per-node load time-series,
// plus an elasticity scenario where one node pauses mid-run ("mid-pause")
// and the delivery audit must still balance arrivals against completions.
//
// Flags: --smoke           short CI-sized windows (same scenario structure)
//        --out=<path>      JSON report path (default BENCH_service.json)
//        --backend=<name>  sim | thread | both (default both)
//        --policy=<name>   sweep only this policy (any registry name,
//                          including sfc | cluster; default both classics)
//        --policy-switch=t:name  swap every rank's policy to `name` at the
//                          first epoch tick at/after machine time t (repeat
//                          for a schedule). Applied to the mid-window switch
//                          scenario, which defaults to work_stealing -> sfc
//                          halfway through the injection window.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_support/bench_json.hpp"
#include "bench_support/service_harness.hpp"
#include "support/assert.hpp"

using namespace prema::bench;
using prema::service::ArrivalModel;

namespace {

/// Mean request cost implied by the arrival config's bimodal draw.
double mean_cost_mflop(const prema::service::ArrivalConfig& a) {
  return a.cost_mean_mflop *
         ((1.0 - a.heavy_fraction) + a.heavy_fraction * a.heavy_mult);
}

ServiceScenario base_scenario(const std::string& backend, bool smoke) {
  ServiceScenario sc;
  sc.backend = backend;
  if (backend == "thread") {
    sc.nprocs = 4;
    sc.duration_s = smoke ? 0.12 : 0.3;
  } else {
    sc.nprocs = 16;
    sc.duration_s = smoke ? 0.2 : 0.5;
  }
  sc.epoch_s = 25e-3;
  return sc;
}

/// Offered load as a utilization fraction of one processor's capacity.
void set_utilization(ServiceScenario& sc, double util) {
  const double mflops = sc.backend == "thread" ? sc.thread_mflops : sc.proc_mflops;
  sc.arrivals.rate_per_proc = util * mflops / mean_cost_mflop(sc.arrivals);
}

void print_run(const ServiceReport& r, double util) {
  char buf[240];
  std::snprintf(buf, sizeof buf,
                "  %-6s %-13s %-7s %-9s util %.2f  rate %7.1f/s  "
                "p50 %7.3f ms  p99 %8.3f ms  p999 %8.3f ms  thru %8.1f rps  "
                "migr %4llu  %s\n",
                r.backend.c_str(), r.policy.c_str(), r.model.c_str(),
                r.fault_profile.c_str(), util, r.offered_rate, r.p50_ms,
                r.p99_ms, r.p999_ms, r.throughput_rps,
                static_cast<unsigned long long>(r.migrations),
                r.audit_ok ? "audit-ok" : "AUDIT-FAIL");
  std::cout << buf;
}

void emit_run(JsonWriter& jw, const ServiceReport& r, double util) {
  jw.begin_object();
  jw.field("backend", r.backend);
  jw.field("policy", r.policy);
  jw.field("arrival_model", r.model);
  jw.field("fault_profile", r.fault_profile);
  jw.field("utilization", util);
  jw.field("offered_rate_per_proc", r.offered_rate);
  jw.field("duration_s", r.duration_s);
  jw.field("makespan_s", r.makespan);
  jw.field("arrivals", r.arrivals);
  jw.field("completions", r.completions);
  jw.field("audit_ok", r.audit_ok);
  jw.field("throughput_rps", r.throughput_rps);
  jw.field("sojourn_mean_ms", r.mean_ms);
  jw.field("sojourn_p50_ms", r.p50_ms);
  jw.field("sojourn_p99_ms", r.p99_ms);
  jw.field("sojourn_p999_ms", r.p999_ms);
  jw.field("sojourn_max_ms", r.max_ms);
  jw.field("migrations", r.migrations);
  jw.field("term_waves", r.term_waves);
  jw.field("request_comp_s", r.request_comp_s);
  jw.field("ledger_comp_s", r.ledger_comp_s);
  jw.field("ledger_delta_pct", r.ledger_delta_pct);
  jw.begin_array("load_series");
  for (const auto& series : r.load_series) {
    jw.begin_array();
    for (const auto& s : series) {
      jw.begin_object();
      jw.field("t", s.t);
      jw.field("load", s.load);
      jw.end_object();
    }
    jw.end_array();
  }
  jw.end_array();
  jw.end_object();
}

ServiceReport run_and_emit(const ServiceScenario& sc, double util,
                           JsonWriter& jw) {
  const ServiceReport r = run_service_scenario(sc);
  // Open-loop conservation holds for every scenario, faults included: at
  // quiescence every injected request has completed exactly once and every
  // shard is resident at exactly one processor.
  PREMA_CHECK_MSG(r.audit_ok, "service delivery audit failed");
  print_run(r, util);
  emit_run(jw, r, util);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_service.json";
  std::string backend = "both";
  std::string only_policy;
  std::vector<std::pair<double, std::string>> switches;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--backend=", 10) == 0) {
      backend = arg + 10;
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      only_policy = arg + 9;
    } else if (std::strncmp(arg, "--policy-switch=", 16) == 0) {
      const std::string spec = arg + 16;
      const auto colon = spec.find(':');
      char* end = nullptr;
      const double t = std::strtod(spec.c_str(), &end);
      if (colon == std::string::npos || colon == 0 ||
          end != spec.c_str() + colon || colon + 1 >= spec.size()) {
        std::cerr << "bad --policy-switch spec (want t:name): " << spec << "\n";
        return 2;
      }
      switches.emplace_back(t, spec.substr(colon + 1));
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: " << argv[0]
                << " [--smoke] [--out=<path>] [--backend=sim|thread|both]"
                   " [--policy=<name>] [--policy-switch=t:name]...\n";
      return 2;
    }
  }
  if (backend != "sim" && backend != "thread" && backend != "both") {
    std::cerr << "unknown backend: " << backend << "\n";
    return 2;
  }

  std::cout << std::unitbuf;  // progress lines survive a mid-sweep abort

  std::vector<std::string> backends;
  if (backend == "both" || backend == "sim") backends.push_back("sim");
  if (backend == "both" || backend == "thread") backends.push_back("thread");

  BenchReport report(out, "service_sweep",
                     "open-loop service mode: sojourn-latency SLOs vs offered load");
  if (!report.ok()) {
    std::cerr << "cannot open " << out << " for writing\n";
    return 1;
  }
  JsonWriter& jw = report.json();
  jw.field("smoke", smoke);
  report.begin_runs();

  std::cout << "Service-mode sweep (open-loop arrivals, continuous balancing)"
            << (smoke ? " [smoke]" : "") << "\n";

  std::vector<std::string> policies;
  if (only_policy.empty()) {
    policies = {"work_stealing", "diffusion"};
  } else {
    policies = {only_policy};
  }

  const double utils[] = {0.5, 0.7, 0.9};
  for (const auto& be : backends) {
    for (const auto& policy : policies) {
      for (const double util : utils) {
        ServiceScenario sc = base_scenario(be, smoke);
        sc.policy = policy;
        set_utilization(sc, util);
        run_and_emit(sc, util, jw);
      }
    }
    // Arrival-model variety at mid load: bursty (MMPP) and diurnal streams
    // stress the balancer with time-varying offered load.
    for (const ArrivalModel m : {ArrivalModel::kBursty, ArrivalModel::kDiurnal}) {
      ServiceScenario sc = base_scenario(be, smoke);
      sc.policy = policies.front();
      sc.arrivals.model = m;
      set_utilization(sc, 0.7);
      run_and_emit(sc, 0.7, jw);
    }
  }

  // Elasticity: node 1 pauses mid-run (and runs 2x slow) under the canned
  // "mid-pause" profile; the balancer must route around it and the delivery
  // audit must still balance. Sim backend (pause release is emulator-driven).
  if (backend != "thread") {
    for (const auto& policy : policies) {
      ServiceScenario sc = base_scenario("sim", smoke);
      sc.policy = policy;
      sc.fault_profile = "mid-pause";
      sc.duration_s = smoke ? 0.3 : 0.5;  // keep the pause window mid-run
      set_utilization(sc, 0.7);
      run_and_emit(sc, 0.7, jw);
    }
  }

  // Mid-window policy switch: start on work_stealing, swap every rank to a
  // topology-aware policy at an epoch tick (default sfc halfway through the
  // injection window, or the --policy-switch schedule), and score the
  // combined run. Topology accounting is on from t=0 (run_service pre-scans
  // the schedule), and the conservation audit must still balance across the
  // swap — in-flight pre-switch traffic included.
  if (backend != "thread") {
    ServiceScenario sc = base_scenario("sim", smoke);
    sc.policy = "work_stealing";
    if (switches.empty()) switches.emplace_back(sc.duration_s / 2, "sfc");
    sc.policy_switches = switches;
    set_utilization(sc, 0.7);
    run_and_emit(sc, 0.7, jw);
  }

  std::cout << "report written to " << out << "\n";
  return 0;
}
