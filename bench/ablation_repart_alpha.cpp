// Ablation (paper §3.1): the Relative Cost Factor alpha of the Unified
// Repartitioning Algorithm trades edge-cut quality against data movement in
// |Ecut| + alpha * |Vmove|. Low alpha should favour the scratch-remap
// candidate (fresh, low-cut partitions); high alpha the diffusive one
// (minimal movement).
#include <cstdio>

#include "graph/generators.hpp"
#include "partition/adaptive.hpp"

using namespace prema;

int main() {
  // A 48x48 grid, balanced 8-way, then a 12x12 corner becomes 8x hotter —
  // the crack-tip drift scenario.
  const auto base = graph::grid2d(48, 48);
  part::PartitionOptions popts;
  popts.k = 8;
  const auto old_part = part::multilevel_kway(base, popts);

  graph::GraphBuilder b(base.num_vertices());
  for (graph::VertexId v = 0; v < base.num_vertices(); ++v) {
    const bool hot = (v % 48) < 12 && (v / 48) < 12;
    b.set_vertex_weight(v, hot ? 8.0 : 1.0);
  }
  for (graph::VertexId v = 0; v < base.num_vertices(); ++v) {
    for (const auto u : base.neighbors(v)) {
      if (u > v) b.add_edge(v, u);
    }
  }
  const auto drifted = b.build();

  std::printf("Unified repartitioning alpha sweep (48x48 grid, 8 parts, 8x hot corner)\n");
  std::printf("  old partition: cut %.0f, imbalance %.3f\n",
              graph::edge_cut(drifted, old_part),
              graph::imbalance(drifted, old_part, 8));
  std::printf("  %8s  %10s  %10s  %12s  %10s  %s\n", "alpha", "edge cut",
              "|Vmove|", "unified", "imbalance", "winner");
  for (const double alpha : {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0}) {
    part::AdaptiveOptions aopts;
    aopts.k = 8;
    aopts.alpha = alpha;
    const auto res = part::adaptive_repartition(drifted, old_part, aopts);
    std::printf("  %8.2f  %10.0f  %10.0f  %12.1f  %10.3f  %s\n", alpha,
                res.edge_cut, res.migration, res.cost,
                graph::imbalance(drifted, res.partition, 8),
                res.chose_scratch_remap ? "scratch-remap" : "diffusive");
  }
  return 0;
}
