// Reproduces the paper's load-distribution quality comparison (§5 text):
// "Using the standard deviation of the computation times across each
//  processor ... the most successful method is PREMA with preemptive message
//  arrivals, with a standard deviation of just over 10. Charm++ and PREMA
//  with explicit load balancing ... performed comparably with standard
//  deviations of 128 and 100."
// Measured on the Figure 4 workload (10% heavy, 2x weight).
#include <iostream>

#include "bench_support/synthetic.hpp"

using namespace prema::bench;

int main() {
  SyntheticConfig cfg;
  cfg.heavy_fraction = 0.1;
  cfg.heavy_mflop = 500.0;

  std::cout << "Load-distribution quality (stddev of per-processor computation"
               " time, Fig. 4 workload)\n";
  std::cout << "paper: PREMA implicit ~10, PREMA explicit ~100, Charm++ ~128\n\n";
  char buf[160];
  for (const System sys :
       {System::kNoLB, System::kPremaExplicit, System::kPremaImplicit,
        System::kStopRepartition, System::kCharmSync}) {
    const RunReport r = run_synthetic(sys, cfg);
    std::snprintf(buf, sizeof buf, "  %-40s stddev %8.2f s   (makespan %7.1f s)\n",
                  r.label.c_str(), r.comp_stddev, r.makespan);
    std::cout << buf;
  }
  return 0;
}
