// Reproduces the paper's load-distribution quality comparison (§5 text):
// "Using the standard deviation of the computation times across each
//  processor ... the most successful method is PREMA with preemptive message
//  arrivals, with a standard deviation of just over 10. Charm++ and PREMA
//  with explicit load balancing ... performed comparably with standard
//  deviations of 128 and 100."
// Measured on the Figure 4 workload (10% heavy, 2x weight).
//
// Flags: --json-out=<path>  also emit the table as a BENCH-style JSON report
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "bench_support/bench_json.hpp"
#include "bench_support/synthetic.hpp"

using namespace prema::bench;

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n"
                << "usage: " << argv[0] << " [--json-out=<path>]\n";
      return 2;
    }
  }

  std::unique_ptr<BenchReport> report;
  if (!json_out.empty()) {
    report = std::make_unique<BenchReport>(
        json_out, "quality_stddev",
        "load-distribution quality: stddev of per-processor computation time"
        " (Fig. 4 workload)");
    if (!report->ok()) {
      std::cerr << "cannot open " << json_out << " for writing\n";
      return 1;
    }
    report->begin_runs();
  }

  SyntheticConfig cfg;
  cfg.heavy_fraction = 0.1;
  cfg.heavy_mflop = 500.0;

  std::cout << "Load-distribution quality (stddev of per-processor computation"
               " time, Fig. 4 workload)\n";
  std::cout << "paper: PREMA implicit ~10, PREMA explicit ~100, Charm++ ~128\n\n";
  char buf[160];
  for (const System sys :
       {System::kNoLB, System::kPremaExplicit, System::kPremaImplicit,
        System::kStopRepartition, System::kCharmSync}) {
    const RunReport r = run_synthetic(sys, cfg);
    std::snprintf(buf, sizeof buf, "  %-40s stddev %8.2f s   (makespan %7.1f s)\n",
                  r.label.c_str(), r.comp_stddev, r.makespan);
    std::cout << buf;
    if (report) {
      JsonWriter& jw = report->json();
      jw.begin_object();
      jw.field("system", r.label);
      jw.field("comp_stddev_s", r.comp_stddev);
      jw.field("makespan_s", r.makespan);
      jw.field("migrations", r.migrations);
      jw.end_object();
    }
  }
  return 0;
}
