// Reproduces the paper's runtime-overhead comparison (§5 text):
// "For the case of ParMETIS, in Figure 5(d) this [synchronization] comes out
//  to 7.4% of the useful computation time, while in Figure 4(d) this figure
//  swells to 29.9%. ... For the same two tests PREMA overhead works out to
//  0.045% and 0.029% of the useful computation time."
// The shape to reproduce: ParMETIS's synchronization bill is orders of
// magnitude above PREMA's constant sub-0.1% overhead, and it swells when the
// imbalance is a spike the repartitioner declines to fix.
//
// Flags: --json-out=<path>  also emit the table as a BENCH-style JSON report
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "bench_support/bench_json.hpp"
#include "bench_support/synthetic.hpp"

using namespace prema::bench;

namespace {

void one(const char* name, double heavy_fraction, BenchReport* report) {
  SyntheticConfig cfg;
  cfg.heavy_fraction = heavy_fraction;
  cfg.heavy_mflop = heavy_fraction == 0.5 ? 300.0 : 500.0;  // Fig5 / Fig4 setups

  const RunReport srp = run_synthetic(System::kStopRepartition, cfg);
  const RunReport prema = run_synthetic(System::kPremaImplicit, cfg);
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "%s:\n"
                "  ParMETIS-style: synchronization %6.3f%% of computation, "
                "partition calc %6.3f%%\n"
                "  PREMA implicit: runtime overhead %6.4f%% of computation\n",
                name, srp.sync_pct,
                100.0 * srp.partition_total / srp.comp_total, prema.overhead_pct);
  std::cout << buf;
  if (report != nullptr) {
    JsonWriter& jw = report->json();
    jw.begin_object();
    jw.field("workload", name);
    jw.field("heavy_fraction", heavy_fraction);
    jw.field("srp_sync_pct", srp.sync_pct);
    jw.field("srp_partition_pct", 100.0 * srp.partition_total / srp.comp_total);
    jw.field("prema_overhead_pct", prema.overhead_pct);
    jw.end_object();
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n"
                << "usage: " << argv[0] << " [--json-out=<path>]\n";
      return 2;
    }
  }

  std::unique_ptr<BenchReport> report;
  if (!json_out.empty()) {
    report = std::make_unique<BenchReport>(
        json_out, "overhead_pct",
        "runtime overhead as % of useful computation (paper section 5)");
    if (!report->ok()) {
      std::cerr << "cannot open " << json_out << " for writing\n";
      return 1;
    }
    report->begin_runs();
  }

  std::cout << "Runtime overhead as % of useful computation (paper §5)\n"
            << "paper: ParMETIS 7.4% (Fig 5d) -> 29.9% (Fig 4d); PREMA 0.045% /"
               " 0.029%\n\n";
  one("Figure 5 workload (50% heavy, 1.2x)", 0.5, report.get());
  one("Figure 4 workload (10% heavy, 2.0x)", 0.1, report.get());
  return 0;
}
