// Microbenchmarks (google-benchmark, real CPU time): costs of the runtime's
// building blocks — serialization, scheduler operations, MOL bookkeeping,
// and the discrete-event engine itself. These measure the *implementation*,
// complementing the virtual-time experiment binaries.
#include <benchmark/benchmark.h>

#include <memory>

#include "dmcs/sim_machine.hpp"
#include "ilb/scheduler.hpp"
#include "mol/mol.hpp"
#include "sim/event_queue.hpp"
#include "support/byte_buffer.hpp"

namespace {

using namespace prema;

void BM_ByteWriterRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> blob(n, 0xAB);
  for (auto _ : state) {
    util::ByteWriter w(n + 16);
    w.put<std::uint64_t>(42);
    w.put_bytes(blob);
    util::ByteReader r(w.bytes());
    benchmark::DoNotOptimize(r.get<std::uint64_t>());
    benchmark::DoNotOptimize(r.get_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ByteWriterRoundTrip)->Arg(64)->Arg(1024)->Arg(65536);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(static_cast<double>((i * 7919) % 1000), [] {});
    }
    while (!q.empty()) q.run_next();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_SchedulerEnqueuePick(benchmark::State& state) {
  const auto objects = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    ilb::Scheduler s;
    for (std::uint32_t i = 0; i < objects; ++i) {
      mol::Delivery d;
      d.target = {0, i};
      d.handler = 1;
      d.weight = 1.0;
      d.delivery_no = 0;
      s.enqueue(std::move(d));
    }
    while (auto d = s.pick()) {
      benchmark::DoNotOptimize(d->target);
      s.complete();
    }
  }
  state.SetItemsProcessed(state.iterations() * objects);
}
BENCHMARK(BM_SchedulerEnqueuePick)->Arg(64)->Arg(1024);

void BM_MolLocalMessageDelivery(benchmark::State& state) {
  // One emulated processor delivering messages to a local object — the
  // fast path of Figure 2's ilb_message.
  class Obj : public mol::MobileObject {
   public:
    [[nodiscard]] std::uint32_t type_id() const override { return 1; }
    void serialize(util::ByteWriter&) const override {}
  };
  for (auto _ : state) {
    state.PauseTiming();
    sim::MachineConfig cfg;
    cfg.nprocs = 1;
    dmcs::SimMachine machine(cfg);
    mol::MolLayer layer(machine);
    std::uint64_t delivered = 0;
    mol::Mol::Hooks hooks;
    hooks.on_delivery = [&delivered](mol::Delivery&&) { ++delivered; };
    hooks.take_queued = [](const mol::MobilePtr&) {
      return std::vector<mol::Delivery>{};
    };
    layer.at(0).set_hooks(std::move(hooks));
    state.ResumeTiming();

    class P : public dmcs::Program {
     public:
      explicit P(mol::Mol& mol) : mol_(mol) {}
      void main(dmcs::Node&) override {
        auto ptr = mol_.add_object(std::make_unique<Obj>());
        for (int i = 0; i < 1000; ++i) mol_.message(ptr, 1, {}, 1.0);
      }

     private:
      mol::Mol& mol_;
    };
    machine.run([&](ProcId) { return std::make_unique<P>(layer.at(0)); });
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MolLocalMessageDelivery);

void BM_ObjectMigrationSerialize(benchmark::State& state) {
  // Serialization cost of a mobile object of the given payload size.
  class Blob : public mol::MobileObject {
   public:
    explicit Blob(std::size_t n) : data(n, 0x5A) {}
    [[nodiscard]] std::uint32_t type_id() const override { return 1; }
    void serialize(util::ByteWriter& w) const override { w.put_vector(data); }
    std::vector<std::uint8_t> data;
  };
  Blob obj(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    util::ByteWriter w;
    obj.serialize(w);
    benchmark::DoNotOptimize(w.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ObjectMigrationSerialize)->Arg(1024)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
