// Policy-suite benchmark: balancing quality (per-proc computation stddev),
// LB overhead (% of computation), and migration rate for every registry
// policy — the five scalar paper policies plus the topology-aware SFC and
// self-clustering ones — on the Figure-5 workload shape (50% heavy units,
// heavy = 1.2x light), on both machine backends. Emits BENCH_policies.json
// (checked in at the repo root; CI re-generates and uploads it).
//
// Flags: --out=<path>   JSON report path (default BENCH_policies.json)
//        --full         paper-sized sim runs (default is scaled down so the
//                       thread backend finishes in CI time)
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/bench_json.hpp"
#include "bench_support/synthetic.hpp"
#include "support/assert.hpp"

using namespace prema::bench;

namespace {

SyntheticConfig fig5_config(const std::string& backend, bool full) {
  // Figure 5 shape: 50% of units heavy, heavy = 1.2x light.
  SyntheticConfig cfg;
  cfg.backend = backend;
  cfg.heavy_fraction = 0.5;
  if (backend == "thread") {
    cfg.nprocs = 4;
    cfg.units_per_proc = 16;
    cfg.heavy_mflop = 30.0;  // scaled: real spin time must stay CI-sized
    cfg.light_mflop = 25.0;
  } else {
    cfg.nprocs = full ? 128 : 8;
    cfg.units_per_proc = full ? 864 : 24;
    cfg.heavy_mflop = 300.0;
    cfg.light_mflop = 250.0;
  }
  return cfg;
}

void emit_run(JsonWriter& jw, const RunReport& r) {
  jw.begin_object();
  jw.field("backend", r.backend);
  jw.field("policy", r.policy);
  jw.field("makespan_s", r.makespan);
  jw.field("quality_stddev_s", r.comp_stddev);
  jw.field("overhead_pct", r.overhead_pct);
  jw.field("migrations", r.migrations);
  jw.field("migrations_per_sec",
           r.makespan > 0.0 ? static_cast<double>(r.migrations) / r.makespan
                            : 0.0);
  jw.field("executed", r.executed);
  jw.field("audit_ok", r.audit_ok);
  jw.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_policies.json";
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strcmp(arg, "--full") == 0) {
      full = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: " << argv[0] << " [--out=<path>] [--full]\n";
      return 2;
    }
  }

  BenchReport report(out, "bench_policies",
                     "balancing quality, overhead, and migration rate per "
                     "policy on the Figure-5 workload, both backends");
  if (!report.ok()) {
    std::cerr << "cannot open " << out << " for writing\n";
    return 1;
  }
  JsonWriter& jw = report.json();
  jw.field("full", full);
  report.begin_runs();

  std::cout << std::unitbuf;
  std::cout << "Policy benchmark (Figure-5 workload shape)"
            << (full ? " [full]" : "") << "\n";
  char buf[160];
  for (const char* backend : {"sim", "thread"}) {
    for (const char* policy :
         {"work_stealing", "diffusion", "gradient", "master", "multilist",
          "sfc", "cluster"}) {
      SyntheticConfig cfg = fig5_config(backend, full);
      cfg.policy = policy;
      const RunReport r = run_synthetic(System::kPremaImplicit, cfg);
      PREMA_CHECK_MSG(r.audit_ok, "bench_policies: conservation audit failed");
      std::snprintf(buf, sizeof buf,
                    "  %-6s %-15s makespan %8.2f s  stddev %7.3f  overhead "
                    "%7.4f%%  migr %5llu\n",
                    r.backend.c_str(), r.policy.c_str(), r.makespan,
                    r.comp_stddev, r.overhead_pct,
                    static_cast<unsigned long long>(r.migrations));
      std::cout << buf;
      emit_run(jw, r);
    }
  }
  std::cout << "report written to " << out << "\n";
  return 0;
}
