// Ablation (paper §4 footnote): how many mobile objects should one steal
// grant migrate? Coarse-grained applications migrate a single object; large
// grants amortize the request round-trip — which is exactly the latency that
// explicit polling exposes and preemptive polling hides.
#include <iostream>

#include "bench_support/synthetic.hpp"

using namespace prema::bench;

int main() {
  std::cout << "Steal-grant size sweep (32 procs x 200 units, 50% heavy 2x)\n";
  std::cout << "  grant cap   explicit makespan   implicit makespan\n";
  for (const std::size_t cap : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{16}, std::size_t{64},
                                std::size_t{100000}}) {
    SyntheticConfig cfg;
    cfg.nprocs = 32;
    cfg.units_per_proc = 200;
    cfg.max_grant_objects = cap;
    const auto expl = run_synthetic(System::kPremaExplicit, cfg);
    const auto impl = run_synthetic(System::kPremaImplicit, cfg);
    char buf[120];
    std::snprintf(buf, sizeof buf, "  %9zu   %14.1f s   %14.1f s\n", cap,
                  expl.makespan, impl.makespan);
    std::cout << buf;
  }
  return 0;
}
