// Ablation (paper §4.2): polling-thread period in implicit mode. Shorter
// periods react faster to balancing traffic but pay more wakeup overhead;
// at very long periods implicit mode degenerates toward explicit polling.
#include <iostream>

#include "bench_support/synthetic.hpp"

using namespace prema::bench;

int main() {
  std::cout << "Polling-thread period sweep (32 procs x 200 units, 50% heavy 2x)\n";
  std::cout << "  period      makespan    polling overhead (proc-seconds total)\n";
  for (const double period : {1e-3, 5e-3, 10e-3, 50e-3, 200e-3, 1.0}) {
    SyntheticConfig cfg;
    cfg.nprocs = 32;
    cfg.units_per_proc = 200;
    cfg.poll_interval_s = period;
    const auto r = run_synthetic(System::kPremaImplicit, cfg);
    double polling = 0.0;
    for (const auto& l : r.ledgers) {
      polling += l.get(prema::util::TimeCategory::kPolling);
    }
    char buf[120];
    std::snprintf(buf, sizeof buf, "  %6.0f ms   %8.1f s   %10.3f s\n",
                  period * 1e3, r.makespan, polling);
    std::cout << buf;
  }
  return 0;
}
