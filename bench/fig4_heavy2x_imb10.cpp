// Figure 4: 10% of units heavy ("spike"), heavy weight = 2x light.
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return prema::bench::run_figure(
      argc, argv,
      "Figure 4: 10% initial imbalance, heavy = 2x light", 0.1, 500.0,
      "(a) 1329  (b) 951  (c) 672  (d) 1325  (e) 1325  (f) 1052");
}
