// Ablation: PREMA's pluggable policy suite (§4: Work Stealing, Diffusion,
// Multi-list Scheduling, plus Gradient, a centralized Master, and the
// topology-aware SFC and self-clustering policies) on the synthetic
// workload. The framework is the paper's contribution; the policy is a
// plug-in — this shows all of them running unchanged on top of it, on both
// machine backends, with the object-conservation audit enforced per run.
//
// Flags: --policy=<name|all>   one registry policy, or the whole suite
//        --backend=sim|thread|both
//        --smoke               CI-sized workload (same structure)
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/synthetic.hpp"
#include "support/assert.hpp"

using namespace prema::bench;

namespace {

const char* kAllPolicies[] = {"null",   "work_stealing", "diffusion",
                              "gradient", "master",      "multilist",
                              "sfc",    "cluster"};

bool known_policy(const std::string& name) {
  for (const char* p : kAllPolicies) {
    if (name == p) return true;
  }
  return false;
}

SyntheticConfig make_config(const std::string& backend, bool smoke) {
  SyntheticConfig cfg;
  cfg.backend = backend;
  cfg.heavy_fraction = 0.5;
  if (backend == "thread") {
    // Real threads: small fleet, cheap units — the point is exercising the
    // protocol stack, not wall-clock fidelity.
    cfg.nprocs = 4;
    cfg.units_per_proc = smoke ? 12 : 40;
    cfg.heavy_mflop = 100.0;
    cfg.light_mflop = 50.0;
  } else {
    cfg.nprocs = smoke ? 8 : 32;
    cfg.units_per_proc = smoke ? 24 : 200;
    cfg.heavy_mflop = 500.0;
    cfg.light_mflop = 250.0;
  }
  return cfg;
}

void run_one(const std::string& backend, const std::string& policy, bool smoke) {
  SyntheticConfig cfg = make_config(backend, smoke);
  cfg.policy = policy;
  const RunReport r = run_synthetic(System::kPremaImplicit, cfg);
  // Conservation must hold for every policy: each unit executed exactly
  // once, each object resident at exactly one processor, no open handoffs.
  PREMA_CHECK_MSG(r.audit_ok, "policy ablation: object conservation audit failed");
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "  %-6s %-15s makespan %8.2f s  stddev %7.2f  overhead "
                "%7.4f%%  migr %5llu  audit-ok\n",
                r.backend.c_str(), r.policy.c_str(), r.makespan, r.comp_stddev,
                r.overhead_pct, static_cast<unsigned long long>(r.migrations));
  std::cout << buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string policy = "all";
  std::string backend = "sim";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--policy=", 9) == 0) {
      policy = arg + 9;
    } else if (std::strncmp(arg, "--backend=", 10) == 0) {
      backend = arg + 10;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: " << argv[0]
                << " [--policy=<name|all>] [--backend=sim|thread|both]"
                   " [--smoke]\n";
      return 2;
    }
  }
  if (policy != "all" && !known_policy(policy)) {
    std::cerr << "unknown policy: " << policy << "\n";
    return 2;
  }
  if (backend != "sim" && backend != "thread" && backend != "both") {
    std::cerr << "unknown backend: " << backend << "\n";
    return 2;
  }

  std::cout << std::unitbuf;
  std::cout << "Policy suite on the synthetic workload (50% heavy 2x"
            << (smoke ? ", smoke-sized" : "") << ")\n";

  std::vector<std::string> backends;
  if (backend == "both" || backend == "sim") backends.emplace_back("sim");
  if (backend == "both" || backend == "thread") backends.emplace_back("thread");

  for (const auto& be : backends) {
    if (policy == "all") {
      for (const char* p : kAllPolicies) run_one(be, p, smoke);
    } else {
      run_one(be, policy, smoke);
    }
  }
  return 0;
}
