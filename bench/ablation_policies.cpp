// Ablation: PREMA's pluggable policy suite (§4: Work Stealing, Diffusion,
// Multi-list Scheduling, plus Gradient and a centralized Master) on the
// synthetic workload. The framework is the paper's contribution; the policy
// is a plug-in — this shows several of them running unchanged on top of it.
#include <iostream>
#include <memory>

#include "dmcs/sim_machine.hpp"
#include "prema/runtime.hpp"
#include "support/byte_buffer.hpp"

using namespace prema;

namespace {

class WorkUnit : public mol::MobileObject {
 public:
  explicit WorkUnit(double mflop) : mflop_(mflop) {}
  [[nodiscard]] std::uint32_t type_id() const override { return 1; }
  void serialize(util::ByteWriter& w) const override { w.put<double>(mflop_); }
  static std::unique_ptr<mol::MobileObject> make(util::ByteReader& r) {
    return std::make_unique<WorkUnit>(r.get<double>());
  }
  double mflop_;
};

double run_policy(const std::string& policy) {
  sim::MachineConfig mcfg;
  mcfg.nprocs = 32;
  mcfg.mflops = 333.0;
  dmcs::PollingConfig pcfg;
  pcfg.mode = dmcs::PollingMode::kPreemptive;
  dmcs::SimMachine machine(mcfg, pcfg);
  RuntimeConfig rcfg;
  rcfg.policy = policy;
  Runtime rt(machine, rcfg);
  rt.object_types().add(1, WorkUnit::make);
  const auto work = rt.register_object_handler(
      "work", [](Context& ctx, mol::MobileObject& obj, util::ByteReader&,
                 const mol::Delivery&) {
        ctx.compute(static_cast<WorkUnit&>(obj).mflop_);
      });
  rt.set_main([work](Context& ctx) {
    // 50% of processors start with double-weight units (Fig. 3 shape).
    const double mflop = ctx.rank() < ctx.nprocs() / 2 ? 500.0 : 250.0;
    for (int i = 0; i < 200; ++i) {
      auto ptr = ctx.add_object(std::make_unique<WorkUnit>(mflop));
      ctx.message(ptr, work, {}, 1.0);
    }
  });
  return rt.run();
}

}  // namespace

int main() {
  std::cout << "Policy suite on the synthetic workload "
               "(32 procs x 200 units, 50% heavy 2x)\n";
  char buf[120];
  for (const char* policy :
       {"null", "work_stealing", "diffusion", "gradient", "master", "multilist"}) {
    std::snprintf(buf, sizeof buf, "  %-15s makespan %8.1f s\n", policy,
                  run_policy(policy));
    std::cout << buf;
  }
  return 0;
}
