// Ablation (paper §4.1 vs §4.2): sensitivity to the low water-mark.
// Explicit polling needs a well-chosen cushion of pending work to hide the
// steal round-trip; pick it too low and processors run dry, too high and
// objects thrash. Preemptive (implicit) polling starts balancing during the
// last running unit, so it should be nearly flat across the sweep — that
// insensitivity is the paper's core claim.
#include <iostream>

#include "bench_support/synthetic.hpp"

using namespace prema::bench;

int main() {
  std::cout << "Water-mark sensitivity (32 procs x 200 units, 50% heavy 2x)\n";
  std::cout << "  watermark   explicit makespan   implicit makespan\n";
  for (const double wm : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    SyntheticConfig cfg;
    cfg.nprocs = 32;
    cfg.units_per_proc = 200;
    cfg.low_watermark = wm;
    const auto expl = run_synthetic(System::kPremaExplicit, cfg);
    const auto impl = run_synthetic(System::kPremaImplicit, cfg);
    char buf[120];
    std::snprintf(buf, sizeof buf, "  %9.1f   %14.1f s   %14.1f s\n", wm,
                  expl.makespan, impl.makespan);
    std::cout << buf;
  }
  return 0;
}
