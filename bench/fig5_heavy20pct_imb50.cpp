// Figure 5: 50% of units heavy, heavy weight = 1.2x light.
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return prema::bench::run_figure(
      argc, argv,
      "Figure 5: 50% initial imbalance, heavy = 1.2x light", 0.5, 300.0,
      "(a) 760  (b) 762  (c) 663  (d) 710  (e) 763  (f) 751");
}
