#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/synthetic.hpp"

/// \file figure_main.hpp
/// Shared driver for the Figure 3-6 reproduction binaries: runs all six
/// panels of one benchmark configuration and prints the per-panel breakdowns
/// plus the comparison table.
///
/// Flags: --trace-out=<file>  export a Chrome/Perfetto trace per panel
///                            (file gets a "-a".."-f" suffix per system).

namespace prema::bench {

inline int run_figure(int argc, char** argv, const char* title,
                      double heavy_fraction, double heavy_mflop,
                      const char* paper_values) {
  SyntheticConfig cfg;
  cfg.heavy_fraction = heavy_fraction;
  cfg.heavy_mflop = heavy_mflop;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      cfg.trace_out = arg + 12;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: " << argv[0] << " [--trace-out=<file>]\n";
      return 2;
    }
  }

  std::cout << "==========================================================\n"
            << title << "\n"
            << "  128 procs x 864 units, heavy fraction "
            << heavy_fraction * 100 << "%, heavy " << heavy_mflop
            << " Mflop vs light " << cfg.light_mflop << " Mflop\n"
            << "  paper's reported makespans: " << paper_values << "\n"
            << "==========================================================\n";

  std::vector<RunReport> reports;
  for (const System sys :
       {System::kNoLB, System::kPremaExplicit, System::kPremaImplicit,
        System::kStopRepartition, System::kCharmNoSync, System::kCharmSync}) {
    reports.push_back(run_synthetic(sys, cfg));
    print_panel(std::cout, reports.back());
    std::cout << "\n";
  }
  std::cout << "Summary\n";
  print_comparison(std::cout, reports);
  return 0;
}

}  // namespace prema::bench
