#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/synthetic.hpp"
#include "fault/fault_plan.hpp"

/// \file figure_main.hpp
/// Shared driver for the Figure 3-6 reproduction binaries: runs all six
/// panels of one benchmark configuration and prints the per-panel breakdowns
/// plus the comparison table.
///
/// Flags: --smoke                  CI-sized problem (16 procs x 108 units,
///                                 same panel structure); the paper-scale
///                                 default takes minutes per panel, and 20+
///                                 minutes total under --policy=sfc.
///        --trace-out=<file>       export a Chrome/Perfetto trace per panel
///                                 (file gets a "-a".."-f" suffix per system).
///        --fault-profile=<name>   run under a canned fault-injection profile
///                                 (none | lossy1pct | burst-reorder |
///                                 one-slow-node, see EXPERIMENTS.md).
///        --fault-seed=<n>         seed the fault plan's RNG streams.
///        --policy=<name>          override the PREMA panels' balancing
///                                 policy (any registry name, including the
///                                 topology-aware sfc and cluster).

namespace prema::bench {

inline int run_figure(int argc, char** argv, const char* title,
                      double heavy_fraction, double heavy_mflop,
                      const char* paper_values) {
  SyntheticConfig cfg;
  cfg.heavy_fraction = heavy_fraction;
  cfg.heavy_mflop = heavy_mflop;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      cfg.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--fault-profile=", 16) == 0) {
      cfg.fault_profile = arg + 16;
      if (!fault::is_fault_profile(cfg.fault_profile)) {
        std::cerr << "unknown fault profile: " << cfg.fault_profile
                  << " (expected none | lossy1pct | burst-reorder | "
                     "one-slow-node)\n";
        return 2;
      }
    } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
      cfg.fault_seed = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      cfg.policy = arg + 9;
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: " << argv[0]
                << " [--smoke] [--trace-out=<file>] [--fault-profile=<name>]"
                   " [--fault-seed=<n>] [--policy=<name>]\n";
      return 2;
    }
  }
  if (smoke) {
    // Same six panels, CI-sized: the paper-scale problem takes minutes per
    // panel (and --policy=sfc 20+ minutes total), which only EXPERIMENTS.md
    // reproduction runs should pay for.
    cfg.nprocs = 16;
    cfg.units_per_proc = 108;
  }

  std::cout << "==========================================================\n"
            << title << "\n"
            << "  " << cfg.nprocs << " procs x " << cfg.units_per_proc
            << " units, heavy fraction " << heavy_fraction * 100
            << "%, heavy " << heavy_mflop << " Mflop vs light "
            << cfg.light_mflop << " Mflop" << (smoke ? " [smoke]" : "")
            << "\n"
            << "  paper's reported makespans: " << paper_values << "\n";
  if (cfg.fault_profile != "none") {
    std::cout << "  fault profile: " << cfg.fault_profile << " (seed "
              << cfg.fault_seed << ") — reliable transport on\n";
  }
  if (!cfg.policy.empty()) {
    std::cout << "  PREMA policy override: " << cfg.policy << "\n";
  }
  std::cout << "==========================================================\n";

  std::vector<RunReport> reports;
  for (const System sys :
       {System::kNoLB, System::kPremaExplicit, System::kPremaImplicit,
        System::kStopRepartition, System::kCharmNoSync, System::kCharmSync}) {
    reports.push_back(run_synthetic(sys, cfg));
    print_panel(std::cout, reports.back());
    std::cout << "\n";
  }
  std::cout << "Summary\n";
  print_comparison(std::cout, reports);
  return 0;
}

}  // namespace prema::bench
