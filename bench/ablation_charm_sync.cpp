// Ablation (paper §5): how many synchronization points should the Charm-style
// run use? More points give the measurement-based balancer more chances to
// act (the first phase always runs with the initial imbalance) but each
// barrier costs a global wait plus migration traffic.
#include <iostream>

#include "bench_support/synthetic.hpp"

using namespace prema::bench;

int main() {
  std::cout << "Charm-style sync-point sweep (32 procs x 192 units, 50% heavy 2x)\n";
  std::cout << "  sync points   makespan    sync%%    migrations\n";
  for (const int points : {1, 2, 4, 8, 16}) {
    SyntheticConfig cfg;
    cfg.nprocs = 32;
    cfg.units_per_proc = 192;  // divisible by every sweep value
    cfg.charm_sync_points = points;
    const auto r = run_synthetic(
        points == 1 ? System::kCharmNoSync : System::kCharmSync, cfg);
    char buf[120];
    std::snprintf(buf, sizeof buf, "  %11d   %8.1f s   %6.2f   %10llu\n", points,
                  r.makespan, r.sync_pct,
                  static_cast<unsigned long long>(r.migrations));
    std::cout << buf;
  }
  return 0;
}
