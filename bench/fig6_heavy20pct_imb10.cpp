// Figure 6: 10% of units heavy, heavy weight = 1.2x light.
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return prema::bench::run_figure(
      argc, argv,
      "Figure 6: 10% initial imbalance, heavy = 1.2x light", 0.1, 300.0,
      "(a) 751  (b) 750  (c) 610  (d) 753  (e) 716  (f) 751");
}
