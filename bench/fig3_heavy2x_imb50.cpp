// Figure 3: 50% of units heavy, heavy weight = 2x light.
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return prema::bench::run_figure(
      argc, argv,
      "Figure 3: 50% initial imbalance, heavy = 2x light", 0.5, 500.0,
      "(a) 1296  (b) 1306  (c) 902  (d) 973  (e) 1253  (f) n/a");
}
