// Microbenchmarks of the partitioning substrate on real CPU time: the
// multilevel k-way partitioner, the adaptive (unified) repartitioner, and
// the refinement passes, on mesh-like grids.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "partition/adaptive.hpp"
#include "partition/multilevel.hpp"

namespace {

using namespace prema;

void BM_MultilevelKway(benchmark::State& state) {
  const auto side = static_cast<graph::VertexId>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const auto g = graph::grid2d(side, side);
  part::PartitionOptions opts;
  opts.k = k;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part::multilevel_kway(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_MultilevelKway)->Args({32, 4})->Args({64, 8})->Args({128, 16});

void BM_LptEdgeless(benchmark::State& state) {
  const auto n = static_cast<graph::VertexId>(state.range(0));
  graph::GraphBuilder b(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    b.set_vertex_weight(v, (v % 7) + 1.0);
  }
  const auto g = b.build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(part::lpt_partition(g, 128));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LptEdgeless)->Arg(10000)->Arg(110592);

void BM_AdaptiveRepartition(benchmark::State& state) {
  const auto side = static_cast<graph::VertexId>(state.range(0));
  const auto base = graph::grid2d(side, side);
  part::PartitionOptions popts;
  popts.k = 8;
  const auto old_part = part::multilevel_kway(base, popts);
  graph::GraphBuilder b(base.num_vertices());
  for (graph::VertexId v = 0; v < base.num_vertices(); ++v) {
    b.set_vertex_weight(v, (v % side) < side / 4 ? 6.0 : 1.0);
  }
  for (graph::VertexId v = 0; v < base.num_vertices(); ++v) {
    for (const auto u : base.neighbors(v)) {
      if (u > v) b.add_edge(v, u);
    }
  }
  const auto drifted = b.build();
  part::AdaptiveOptions aopts;
  aopts.k = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part::adaptive_repartition(drifted, old_part, aopts));
  }
  state.SetItemsProcessed(state.iterations() * drifted.num_vertices());
}
BENCHMARK(BM_AdaptiveRepartition)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
