// Seeded violation: the store spells no memory order, silently buying a
// seq_cst fence the manifest never reviewed.
class Gate {
 public:
  void open() { flag_.store(true); }
  bool is_open() const { return flag_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> flag_{false};
};
