// Seeded violation: a wire send while holding the noblock trace lock. The
// lock-flow pass must report the blocking call and name the lock.
void flush(N* n) {
  util::LockGuard g(trace_mu_);
  n->send(0, m);
}
