// Seeded violation: calling a PREMA_REQUIRES function without holding the
// declared lock on any path into the call.
void route_locked() PREMA_REQUIRES(state_mutex_) { touch(); }

void handler() { route_locked(); }
