// Seeded violation: library code reachable from the simulated event loop
// reading the host's wall clock (also a conventions-pass determinism hit —
// both diagnostics are pinned here).
double jitter_seed() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
