// Seeded violation: a balancing policy iterating an unordered container —
// hash order leaks into migration decisions on the simulated machine.
class DemoPolicy {
 public:
  void serve() {
    for (const auto& kv : member_load_) {
      consider(kv);
    }
  }

 private:
  std::unordered_map<int, double> member_load_;
};
