// Seeded violation: wall-clock elapsed seconds added to virtual time.
void mix(Node* n) {
  double deadline = machine_.elapsed_s() + n->now();
  schedule(deadline);
}
