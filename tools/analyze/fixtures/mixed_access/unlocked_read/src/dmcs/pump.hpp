// Seeded violation: the worker thread writes n_ under mu_, but show() reads
// it with no lock held — a locked-write/unlocked-read race inside the
// ThreadMachine closure.
class Pump {
 public:
  void worker_loop() {
    bump();
    show();
  }
  void bump() {
    util::LockGuard g(mu_);
    n_ = n_ + 1;
  }
  void show() { use(n_); }

 private:
  util::Mutex mu_;
  int n_ PREMA_GUARDED_BY(mu_) = 0;
};
