// Seeded violation: rogue_install mutates the migration directory but is not
// a declared transition in protocols/migration.txt.
void Mol::migrate_locked(Ptr ptr, int dst) {
  local_.erase(ptr);
  forwarding_[ptr] = dst;
  trace_->migration_out(1.0, dst, 0);
}

void Mol::rogue_install(Ptr ptr) {
  local_[ptr] = 1;
}
