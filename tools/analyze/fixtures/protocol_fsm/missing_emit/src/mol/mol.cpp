// Seeded violation: the migrate transition performs its declared writes but
// never emits the bound migration_out trace event.
void Mol::migrate_locked(Ptr ptr, int dst) {
  local_.erase(ptr);
  forwarding_[ptr] = dst;
}
