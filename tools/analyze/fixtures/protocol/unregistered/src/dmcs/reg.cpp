void install(Registry& reg) {
  reg.add("demo.ping", nullptr);
}
