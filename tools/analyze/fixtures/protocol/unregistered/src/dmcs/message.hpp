// Seeded violation: demo.pong is in the manifest but never registered.
#define PREMA_WIRE_HANDLERS(X) \
  X(kPing, "demo.ping")        \
  X(kPong, "demo.pong")
