#define PREMA_WIRE_LABELS(X)  \
  X("demo.ping", "demo ping") \
  X("demo.pong", "demo pong")
