// Seeded violation: acquires the outer lock while holding the inner one.
void inverted() {
  util::LockGuard g1(b_mu_);
  util::LockGuard g2(a_mu_);
}
