// Seeded violation: a declared mutex with no thread-safety annotation.
class Gadget {
 public:
  void poke();

 private:
  util::Mutex mu_;
  int counter_ = 0;
};
