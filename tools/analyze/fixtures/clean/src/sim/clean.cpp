// A legal file: nested locks in hierarchy order, symmetric wire schema,
// and arithmetic kept inside one clock domain.
void nested() {
  util::LockGuard g1(a_mu_);
  util::LockGuard g2(b_mu_);
}

void pack_ok(ByteWriter& w) {
  // wire:demo.ok pack w
  w.put<double>(1.0);
}

void unpack_ok(ByteReader& r) {
  // wire:demo.ok unpack r
  const double v = r.get<double>();
}

void virtual_only(Node* n) {
  double later = n->now() + 0.25;
  schedule(later);
}
