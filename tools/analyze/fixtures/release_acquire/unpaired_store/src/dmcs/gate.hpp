// Seeded violation: the release store publishes, but no site anywhere loads
// the flag — the acquire partner was refactored away.
class Gate {
 public:
  void open() { flag_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};
