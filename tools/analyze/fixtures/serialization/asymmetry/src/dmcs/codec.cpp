// Seeded violation: the unpack side reads a different first field type.
void pack_demo(ByteWriter& w) {
  // wire:demo.blob pack w
  w.put<std::uint32_t>(1);
  w.put_bytes(body);
}

void unpack_demo(ByteReader& r) {
  // wire:demo.blob unpack r
  const auto a = r.get<std::uint64_t>();
  auto body = r.get_bytes();
}
