// Interprocedural lock-flow analysis, built on the whole-program index
// (core.hpp): lock-sets are propagated transitively over resolved call
// edges (entry(callee) ⊇ holds-at-call-site(caller), to a fixed point), and
// three rule families are checked against them:
//
//  lock-flow-blocking   a lock whose hierarchy entry is marked `noblock`
//                       is held across a blocking operation — a wire send,
//                       a condition wait, a retransmit-backoff sleep — or
//                       across a call that transitively reaches one. A
//                       condition wait releases its own guard, so the lock
//                       bound to the wait's guard argument is exempt.
//  lock-flow-requires   a call site reaches a PREMA_REQUIRES(m) function
//                       without `m` in the caller's lock-set (lexical holds
//                       + assert-capability grants + propagated entry
//                       context). The static counterpart of the runtime's
//                       assert_state_held() discipline.
//  lock-flow-unguarded  a shared field — reached through a member chain,
//                       a reference rebind of one, or a file-local shared
//                       struct passed by reference — is written while a
//                       lock is held, but its declaration carries no
//                       PREMA_GUARDED_BY / PREMA_GUARDED_BY_CONTEXT (and is
//                       not atomic).
//
// The analysis is a may-analysis over a heuristic index: unresolved or
// ambiguous calls propagate nothing, unknown roots are skipped. That keeps
// it quiet enough for an empty baseline while still proving the properties
// the lock-free-refactor roadmap item needs diffable.

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {
namespace {

const std::set<std::string>& blocking_ops() {
  static const std::set<std::string> ops = {
      "send",     "wire_send",  "send_self_after", "wait",
      "wait_for", "wait_until", "sleep_for",       "sleep_until"};
  return ops;
}

bool is_wait_op(const std::string& name) {
  return name == "wait" || name == "wait_for" || name == "wait_until";
}

/// The lock exempted at a condition wait: `cv.wait_for(g, ...)` releases
/// whatever `g` guards for the duration of the wait.
std::string wait_guard_lock(const Index& idx, const CallSite& call) {
  const FunctionDef& fn = idx.funcs[static_cast<std::size_t>(call.caller)];
  const SourceFile& f = idx.tree->files[static_cast<std::size_t>(fn.file)];
  const std::string_view code = f.code;
  std::size_t open = call.pos + call.name.size();
  open = skip_ws(code, open);
  if (open >= code.size() || code[open] != '(') return "";
  std::size_t p = skip_ws(code, open + 1);
  std::size_t end = p;
  while (end < code.size() && ident_char(code[end])) ++end;
  if (end == p) return "";
  const std::string var(code.substr(p, end - p));
  for (const LockAcq& acq : fn.acquisitions) {
    if (!acq.guard_var.empty() && acq.guard_var == var &&
        acq.pos <= call.pos && call.pos < acq.end) {
      return acq.base;
    }
  }
  return "";
}

/// True when the write's access chain reaches shared state: a member
/// component (trailing '_' / this), a reference rebind that resolves to one,
/// or a by-reference parameter of a file-locally declared class.
bool root_is_shared(const Index& idx, const SourceFile& f,
                    const FunctionDef& fn, const WriteSite& site) {
  for (std::size_t i = 0; i + 1 < site.chain.size(); ++i) {
    const std::string& comp = site.chain[i];
    if (comp == "this" || (!comp.empty() && comp.back() == '_')) return true;
  }
  if (site.chain.size() == 1 && site.chain[0].back() == '_') return true;
  const std::string_view code = f.code;
  std::string root = site.chain[0];
  for (int depth = 0; depth < 4; ++depth) {
    if (!root.empty() && root.back() == '_') return true;
    if (root == "this") return true;
    bool rebound = false;
    std::size_t from = fn.name_pos;
    while (true) {
      const std::size_t pos = find_ident(code, root, from, false, false);
      if (pos == std::string_view::npos || pos >= site.pos) break;
      from = pos + 1;
      std::size_t r = pos;
      while (r > 0 && std::isspace(static_cast<unsigned char>(code[r - 1]))) --r;
      if (r == 0) continue;
      const char before = code[r - 1];
      if (before == '&' || before == '*') {
        // `T& root = rhs;` rebind, or `T& root` parameter.
        std::size_t after = skip_ws(code, pos + root.size());
        if (after < code.size() && code[after] == '=') {
          std::size_t q = skip_ws(code, after + 1);
          while (q < code.size() &&
                 (code[q] == '*' || code[q] == '&' || code[q] == '(')) {
            q = skip_ws(code, q + 1);
          }
          std::size_t e2 = q;
          while (e2 < code.size() && ident_char(code[e2])) ++e2;
          if (e2 == q) return false;
          root = std::string(code.substr(q, e2 - q));
          rebound = true;
          break;
        }
        if (pos < fn.body_begin) {
          // Reference parameter: shared when its class is declared in this
          // same file (the file-local shared-struct idiom, e.g. a
          // coordinator struct owned by the translation unit).
          std::size_t tb = r;
          while (tb > 0 && (code[tb - 1] == '&' || code[tb - 1] == '*')) --tb;
          while (tb > 0 && std::isspace(static_cast<unsigned char>(code[tb - 1]))) {
            --tb;
          }
          std::size_t te = tb;
          while (tb > 0 && ident_char(code[tb - 1])) --tb;
          const std::string cls(code.substr(tb, te - tb));
          for (const ClassRegion& region : idx.classes) {
            if (region.name == cls && region.file == fn.file) return true;
          }
          return false;
        }
        continue;
      }
      if (ident_char(before)) return false;  // value declaration, local copy
    }
    if (!rebound) return false;
  }
  return false;
}

/// Class hint for the written field: the declared type of the chain
/// component preceding it, the enclosing class for bare member writes.
std::string field_class_hint(const Index& idx, const SourceFile& f,
                             const FunctionDef& fn, const WriteSite& site) {
  if (site.chain.size() >= 2) {
    const std::string& recv = site.chain[site.chain.size() - 2];
    if (const auto it = idx.member_types.find(recv);
        it != idx.member_types.end()) {
      return it->second;
    }
    std::size_t from = fn.name_pos;
    const std::string_view code = f.code;
    while (true) {
      const std::size_t pos = find_ident(code, recv, from, false, false);
      if (pos == std::string_view::npos || pos >= site.pos) break;
      from = pos + 1;
      std::size_t r = pos;
      while (r > 0 && std::isspace(static_cast<unsigned char>(code[r - 1]))) --r;
      while (r > 0 && (code[r - 1] == '&' || code[r - 1] == '*')) --r;
      while (r > 0 && std::isspace(static_cast<unsigned char>(code[r - 1]))) --r;
      std::size_t tb = r;
      while (tb > 0 && ident_char(code[tb - 1])) --tb;
      const std::string word(code.substr(tb, r - tb));
      if (idx.class_names.count(word) != 0) return word;
    }
    return "";
  }
  const std::size_t sep = fn.qual.rfind("::");
  return sep == std::string::npos ? "" : fn.qual.substr(0, sep);
}

}  // namespace

void pass_lock_flow(const Tree& tree, const Options& opts, Findings& out) {
  const std::vector<LockEntry> entries = parse_hierarchy(opts.hierarchy_text);
  std::optional<Index> local;
  const Index& idx =
      opts.index != nullptr ? *opts.index : local.emplace(build_index(tree));
  const std::vector<std::set<std::string>> entry = propagate_entry_locks(idx);

  auto noblock = [&](const std::string& base, std::string_view rel) {
    const int e = resolve_lock(entries, rel, base);
    return e >= 0 && entries[static_cast<std::size_t>(e)].noblock;
  };

  // Transitive may-block: a function with a direct blocking op, then every
  // function that (transitively) calls one through resolved edges.
  std::vector<char> may_block(idx.funcs.size(), 0);
  for (const CallSite& call : idx.calls) {
    if (blocking_ops().count(call.name) != 0) {
      may_block[static_cast<std::size_t>(call.caller)] = 1;
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const CallSite& call : idx.calls) {
      if (call.callee < 0) continue;
      if (may_block[static_cast<std::size_t>(call.callee)] != 0 &&
          may_block[static_cast<std::size_t>(call.caller)] == 0) {
        may_block[static_cast<std::size_t>(call.caller)] = 1;
        changed = true;
      }
    }
  }

  std::set<std::string> reported_blocking;
  std::set<std::string> reported_requires;
  for (const CallSite& call : idx.calls) {
    const FunctionDef& caller = idx.funcs[static_cast<std::size_t>(call.caller)];
    const SourceFile& f = idx.tree->files[static_cast<std::size_t>(caller.file)];

    // -- lock-flow-blocking -------------------------------------------------
    const bool direct = blocking_ops().count(call.name) != 0;
    const bool transitive =
        call.callee >= 0 && may_block[static_cast<std::size_t>(call.callee)] != 0;
    if (!entries.empty() && (direct || transitive)) {
      std::set<std::string> held = held_at(idx, entry, call.caller, call.pos);
      if (direct && is_wait_op(call.name)) {
        held.erase(wait_guard_lock(idx, call));
      }
      for (const std::string& lock : held) {
        if (!noblock(lock, f.rel)) continue;
        if (allow_comment(f, call.pos, "lock-flow-blocking")) continue;
        const std::string key = caller.qual + "|" + call.name + "|" + lock;
        if (!reported_blocking.insert(key).second) continue;
        out.push_back({"lock-flow-blocking", f.rel, line_of(f.code, call.pos),
                       "'" + caller.qual + "' reaches blocking operation '" +
                           call.name + "' while holding '" + lock +
                           "' (marked noblock in lock_hierarchy.txt)"});
      }
    }

    // -- lock-flow-requires -------------------------------------------------
    if (call.callee < 0) continue;
    const FunctionDef& callee = idx.funcs[static_cast<std::size_t>(call.callee)];
    if (callee.requires_locks.empty()) continue;
    const std::set<std::string> held =
        held_at(idx, entry, call.caller, call.pos);
    for (const std::string& need : callee.requires_locks) {
      if (held.count(need) != 0) continue;
      if (allow_comment(f, call.pos, "lock-flow-requires")) continue;
      const std::string key = caller.qual + "|" + callee.qual + "|" + need;
      if (!reported_requires.insert(key).second) continue;
      out.push_back({"lock-flow-requires", f.rel, line_of(f.code, call.pos),
                     "'" + caller.qual + "' calls '" + callee.qual +
                         "' (PREMA_REQUIRES " + need + ") without holding '" +
                         need + "'"});
    }
  }

  // -- lock-flow-unguarded --------------------------------------------------
  // This rule wants *direct* evidence that the writer runs under a lock: its
  // own PREMA_REQUIRES facts, an assert-capability grant, or a lexical RAII
  // hold. Caller-propagated entry sets are deliberately not used here — a
  // may-hold union would drag every value type called from under a lock
  // (histograms, byte buffers, the sim engine) into the annotation burden.
  std::vector<std::set<std::string>> direct(idx.funcs.size());
  for (std::size_t fi = 0; fi < idx.funcs.size(); ++fi) {
    direct[fi].insert(idx.funcs[fi].requires_locks.begin(),
                      idx.funcs[fi].requires_locks.end());
  }
  std::set<std::string> reported_fields;
  for (std::size_t fi = 0; fi < idx.funcs.size(); ++fi) {
    const FunctionDef& fn = idx.funcs[fi];
    const SourceFile& f = idx.tree->files[static_cast<std::size_t>(fn.file)];
    // Constructor bodies initialize, they don't race: skip them.
    const std::size_t sep = fn.qual.rfind("::");
    if (sep != std::string::npos && fn.qual.substr(0, sep) == fn.name) continue;
    for (const WriteSite& site :
         collect_writes(f, fn.body_begin, fn.body_end)) {
      const std::set<std::string> held =
          held_at(idx, direct, static_cast<int>(fi), site.pos);
      if (held.empty()) continue;
      if (!root_is_shared(idx, f, fn, site)) continue;
      const std::string hint = field_class_hint(idx, f, fn, site);
      const FieldDecl* field =
          idx.find_field(hint, fn.file, site.chain.back());
      if (field == nullptr || field->guarded) continue;
      // Guard inheritance: writing through a guarded aggregate member
      // (`work_.dur = ...` where `work_` is GUARDED_BY) is covered — the
      // outer annotation owns every field reached through it.
      const std::size_t cls_sep = fn.qual.rfind("::");
      const std::string own_cls =
          cls_sep == std::string::npos ? "" : fn.qual.substr(0, cls_sep);
      bool inherited = false;
      for (std::size_t i = 0; i + 1 < site.chain.size(); ++i) {
        const FieldDecl* outer =
            idx.find_field(i == 0 ? own_cls : "", fn.file, site.chain[i]);
        if (outer != nullptr && outer->guarded) {
          inherited = true;
          break;
        }
      }
      if (inherited) continue;
      const SourceFile& df = idx.tree->files[static_cast<std::size_t>(field->file)];
      if (allow_comment(f, site.pos, "lock-flow-unguarded") ||
          allow_comment(df, field->pos, "lock-flow-unguarded")) {
        continue;
      }
      const std::string key = field->cls + "::" + field->name;
      if (!reported_fields.insert(key).second) continue;
      out.push_back(
          {"lock-flow-unguarded", df.rel, field->line,
           "field '" + field->name + "' of '" + field->cls +
               "' is written on locked paths (e.g. holding '" + *held.begin() +
               "' in '" + fn.qual +
               "') but carries no PREMA_GUARDED_BY / PREMA_GUARDED_BY_CONTEXT"});
    }
  }
}

}  // namespace prema::analyze
