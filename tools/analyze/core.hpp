#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

/// \file core.hpp
/// Shared substrate of prema_analyze (tools/analyze): source loading, the
/// comment/literal-stripping lexer, the identifier-level scanning helpers
/// every pass is built from, and the whole-program symbol index (function
/// definitions, call graph, lock acquisitions/releases, class/field tables)
/// that the interprocedural passes — lock-flow, protocol-fsm, sim-purity —
/// are built on. No libclang: the passes work on a byte-offset preserving
/// "code view" of each file (comments and literals blanked out, so positions
/// in the code view index the raw bytes too, which is how string literal
/// arguments are recovered after a match).

namespace prema::analyze {

/// One source file of the analyzed tree.
struct SourceFile {
  std::string rel;   ///< path relative to the scanned root, forward slashes
  std::string raw;   ///< original bytes
  std::string code;  ///< raw with comments/literals blanked (same length)
};

struct Tree {
  std::vector<SourceFile> files;
};

/// One analyzer finding. `message` must be deterministic and line-free so the
/// baseline fingerprint survives unrelated edits to the same file.
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

/// Stable identity of a finding for baseline suppression: rule|file|message
/// (no line number, so findings don't churn when code moves within a file).
std::string fingerprint(const Finding& f);

struct Index;

/// Inputs shared by the passes. Empty text disables the dependent checks
/// (fixtures provide their own hierarchy; a missing DESIGN.md skips the
/// drift check; no protocol specs disables protocol-fsm; an empty atomics
/// manifest disables the atomic-discipline and release-acquire passes).
struct Options {
  std::string hierarchy_text;  ///< contents of tools/analyze/lock_hierarchy.txt
  std::string design_text;     ///< contents of DESIGN.md (drift check)
  std::string atomics_text;    ///< contents of tools/analyze/atomics.txt
  /// Protocol state-machine specs (tools/analyze/protocols/*.txt), as
  /// (spec-name, contents) pairs in deterministic order.
  std::vector<std::pair<std::string, std::string>> protocol_specs;
  /// Prebuilt whole-program index shared across passes (set by the engine and
  /// by run_all_passes). Passes that need the index build their own when
  /// null, so fixtures can still call a single pass directly.
  const Index* index = nullptr;
};

// ---------------------------------------------------------------------------
// Lock hierarchy (tools/analyze/lock_hierarchy.txt)
// ---------------------------------------------------------------------------

struct LockMatcher {
  std::string path;   ///< rel-path substring qualifier ("" = any file)
  std::string ident;  ///< canonical base name (lock_base_name form)
};

struct LockEntry {
  std::string name;
  std::vector<LockMatcher> matchers;
  bool recursive = false;  ///< may be re-acquired while held
  bool noblock = false;    ///< must never be held across a blocking operation
};

/// lock_hierarchy.txt: one entry per line, ordered top (outermost) to bottom
/// (innermost). `name  matcher[,matcher...]  [recursive] [noblock]` where a
/// matcher is `ident` or `path-substring!ident`. '#' starts a comment.
std::vector<LockEntry> parse_hierarchy(std::string_view text);

/// Hierarchy entry index for a canonical lock name acquired in `rel`;
/// -1 when nothing matches.
int resolve_lock(const std::vector<LockEntry>& entries, std::string_view rel,
                 std::string_view base);

// ---------------------------------------------------------------------------
// Protocol state-machine specs (tools/analyze/protocols/*.txt)
// ---------------------------------------------------------------------------

struct ProtocolTransition {
  std::string name;
  std::string fn;                   ///< function implementing the transition
  std::string files;                ///< rel-path prefix override ("" = spec's)
  std::vector<std::string> writes;  ///< protocol vars this transition may write
  std::string emits;                ///< trace event the fn must call ("" = none)
  int line = 0;                     ///< line in the spec file
};

struct ProtocolSpec {
  std::string name;
  std::string files;  ///< rel-path prefix owning the protocol state
  std::vector<std::string> vars;
  std::vector<ProtocolTransition> transitions;
};

/// Parse one spec file. Grammar (one directive per line, '#' comments):
///   protocol <name>
///   files <rel-path-prefix>
///   var <ident> [<ident>...]
///   transition <name> fn=<ident> [files=<prefix>] [writes=<a,b,..>]
///              [emits=<event>]
/// Malformed directives are reported into `errors` (file = `spec_name`).
std::optional<ProtocolSpec> parse_protocol_spec(const std::string& spec_name,
                                                std::string_view text,
                                                std::vector<Finding>& errors);

// ---------------------------------------------------------------------------
// Atomics manifest (tools/analyze/atomics.txt)
// ---------------------------------------------------------------------------

/// One registered std::atomic declaration. `role` constrains which operations
/// are legitimate (read-modify-writes only on counters), `orders` is the set
/// of memory-order suffixes (`relaxed`, `acquire`, `release`, `acq_rel`,
/// `seq_cst`) its operations may spell explicitly.
struct AtomicEntry {
  std::string name;               ///< declared identifier (trailing '_' kept)
  std::string role;               ///< flag | counter | seqcount | published-ptr
  std::set<std::string> orders;   ///< allowed explicit memory-order suffixes
  std::string cls;                ///< owning-class qualifier ("" = any)
  std::string path;               ///< rel-path substring qualifier ("" = any)
  int line = 0;                   ///< line in the manifest
};

/// Parse atomics.txt. Grammar (one entry per line, '#' comments):
///   <name> role=<flag|counter|seqcount|published-ptr> orders=<o1[,o2...]>
///          [class=<Class>] [file=<rel-path-substring>]
/// Malformed lines are reported into `errors` (rule `atomic-manifest`,
/// file = `manifest_name`); well-formed entries are always returned.
std::vector<AtomicEntry> parse_atomics_manifest(const std::string& manifest_name,
                                                std::string_view text,
                                                std::vector<Finding>& errors);

/// Manifest entry index for atomic `name` declared in class `cls` (may be ""
/// for function-local statics / unresolved receivers) in file `rel`; -1 when
/// nothing matches. A class qualifier only discriminates when both sides are
/// known; a path qualifier always must match.
int resolve_atomic(const std::vector<AtomicEntry>& entries, std::string_view rel,
                   std::string_view cls, std::string_view name);

/// A `std::atomic<T> name` declaration discovered in the tree: class fields,
/// function-local statics and namespace-scope objects alike.
struct AtomicDecl {
  std::string name;
  std::string cls;  ///< innermost enclosing class ("" for non-members)
  int file = -1;
  int line = 0;
  std::size_t pos = 0;    ///< offset of the declared name
  bool annotated = false;  ///< PREMA_GUARDED_BY also present on the statement
};

/// Every atomic declaration in the tree, in (file, offset) order. Reference
/// and pointer bindings (`std::atomic<int>&`) and function declarations
/// returning an atomic are not declarations of a new atomic object.
std::vector<AtomicDecl> collect_atomic_decls(const Index& idx);

/// One operation on a (suspected) atomic object: a member call such as
/// `x.load(...)` / `x.fetch_add(...)`, or an operator form (`++x`, `x = v`).
struct AtomicOp {
  std::string field;                ///< final chain component (the object)
  std::string cls;                  ///< resolved receiver class ("" unknown)
  std::string op;     ///< "load", "store", "fetch_add", ..., "++", "--", "="
  int file = -1;
  std::size_t pos = 0;              ///< offset of the op (or written name)
  int args = 0;                     ///< argument count (member calls only)
  std::vector<std::string> orders;  ///< explicit memory_order_* suffixes
};

/// True for exchange / compare_exchange_* / fetch_* / ++ / -- / compound ops.
bool atomic_op_is_rmw(const std::string& op);

/// True when the op spells no memory order but could: `load()` with no
/// argument, `store(v)` / `exchange(v)` / `fetch_*(v)` with one, a plain
/// `=` assignment. Operator increments cannot spell an order and are exempt.
bool atomic_op_is_implicit(const AtomicOp& op);

/// Scan the whole tree for operations whose receiver's final component is in
/// `names`. Receiver classes are resolved through the index (member types,
/// enclosing class for bare members); unresolvable receivers get cls "".
/// Sorted by (file, pos).
std::vector<AtomicOp> collect_atomic_ops(const Index& idx,
                                         const std::set<std::string>& names);

// ---------------------------------------------------------------------------
// Lexing / scanning helpers
// ---------------------------------------------------------------------------

/// Replace comments, string literals (including raw strings) and char
/// literals with spaces, preserving newlines and byte offsets so line numbers
/// and raw-text lookups survive.
std::string strip_comments_and_literals(std::string_view in);

/// True for [A-Za-z0-9_].
bool ident_char(char c);

/// First position >= `from` where `needle` occurs as a whole identifier.
/// Member access (`msg.time`, `obj->time`) never matches — that names
/// someone else's `time`, not ::time. `allow_scope_prefix` permits a
/// preceding "::" (so `std::time` is caught too); without it any scope
/// qualification disqualifies the match. `require_call` additionally demands
/// a following '(' (possibly after whitespace).
std::size_t find_ident(std::string_view hay, std::string_view needle,
                       std::size_t from, bool allow_scope_prefix,
                       bool require_call);

/// Like find_ident but the identifier must be reached through member access
/// (`x.name` / `x->name`) and be called — how handler registrations
/// (`reg.add("...")`) and state-lock acquisitions (`n.lock_state()`) appear.
std::size_t find_member_call(std::string_view hay, std::string_view needle,
                             std::size_t from);

/// 1-based line number of byte offset `pos`.
int line_of(std::string_view text, std::size_t pos);

/// Position past any whitespace starting at `pos`.
std::size_t skip_ws(std::string_view text, std::size_t pos);

/// Offset of the ')' matching the '(' at `open`; npos if unbalanced.
std::size_t matching_paren(std::string_view code, std::size_t open);

/// Offset of the '}' matching the '{' at `open`; npos if unbalanced.
std::size_t matching_brace(std::string_view code, std::size_t open);

/// First string-literal argument of a call whose '(' sits at `open` in the
/// code view: reads the quoted value back out of `raw` (the code view has it
/// blanked). nullopt when the first argument is not a string literal.
std::optional<std::string> call_string_arg(const SourceFile& f, std::size_t open);

/// Split an annotation argument list at top-level commas.
std::vector<std::string> split_args(std::string_view args);

/// Walk a member-access chain backwards from `end` (exclusive end of the
/// final identifier). Appends components front-first into `chain` (`a.b->c`
/// yields {"a","b","c"}); returns the offset of the chain's first component,
/// or npos on failure (the chain starts from a call/temporary).
std::size_t parse_chain_back(std::string_view code, std::size_t end,
                             std::vector<std::string>& chain);

/// Canonical base name of a lock expression: `node_.state_mutex()` ->
/// "state_mutex", `mu_` -> "mu" (member access, call parens, `&`, `this->`
/// and one trailing underscore stripped).
std::string lock_base_name(std::string_view expr);

/// True when the raw line containing `pos` (or the line above it) carries an
/// `analyze:allow(<rule>)` suppression comment for `rule`.
bool allow_comment(const SourceFile& f, std::size_t pos, std::string_view rule);

/// Load every .hpp/.cpp/.h/.cc under `root` (sorted, rel paths generic).
/// Returns false when root is not a directory.
bool load_tree(const std::string& root, Tree& out);

/// Run a single in-memory file through the same pipeline (self-tests,
/// fixtures assembled from snippets).
SourceFile make_file(std::string rel, std::string raw);

// ---------------------------------------------------------------------------
// Whole-program symbol index / call graph
// ---------------------------------------------------------------------------
//
// Built once per interprocedural pass from the code views alone. Function
// discovery is heuristic (identifier + balanced parens + a conservative
// trailing-token walk to the body '{'), which is exact enough for this
// repo's idiom: out-of-line `Class::method` definitions, inline methods
// inside class bodies, and free functions. Lambdas are intentionally *not*
// separate functions — their bodies belong to the enclosing definition, so
// facts established inside a registration lambda (e.g. an
// assert-capability call) stay attached to the function that created it.

/// A `class X {` / `struct X {` body range.
struct ClassRegion {
  std::string name;
  int file = -1;
  std::size_t body_begin = 0;  ///< offset of '{'
  std::size_t body_end = 0;    ///< offset of matching '}'
};

/// A data-member declaration inside a class region.
struct FieldDecl {
  std::string cls;   ///< owning class
  std::string name;
  std::string type;  ///< declaration text left of the name (whitespace-packed)
  int file = -1;
  int line = 0;
  std::size_t pos = 0;  ///< offset of the name in the file
  bool guarded = false;  ///< GUARDED_BY / GUARDED_BY_CONTEXT / std::atomic
};

/// One RAII lock hold (or assert-capability grant) inside a function body.
struct LockAcq {
  std::size_t pos = 0;  ///< acquisition offset
  std::size_t end = 0;  ///< hold ends here (explicit .unlock() or scope close)
  std::string base;     ///< canonical lock name, capability aliases resolved
  std::string guard_var;  ///< RAII guard variable ("" for asserts/lock_state)
};

struct FunctionDef {
  std::string name;  ///< unqualified name
  std::string qual;  ///< "Class::name" when known, else == name
  int file = -1;
  int line = 0;
  std::size_t name_pos = 0;
  std::size_t body_begin = 0;  ///< offset of '{'
  std::size_t body_end = 0;    ///< offset of matching '}'
  std::vector<std::string> requires_locks;  ///< PREMA_REQUIRES facts
  std::vector<LockAcq> acquisitions;        ///< sorted by pos
};

struct CallSite {
  int caller = -1;   ///< index into Index::funcs
  int callee = -1;   ///< resolved index, -1 when unresolved or ambiguous
  std::size_t pos = 0;  ///< offset of the callee name in the caller's file
  std::string name;     ///< callee name as written (last path component)
};

struct Index {
  const Tree* tree = nullptr;
  std::vector<FunctionDef> funcs;
  std::vector<CallSite> calls;                     ///< sorted by (caller, pos)
  std::vector<ClassRegion> classes;
  std::vector<FieldDecl> fields;
  std::map<std::string, std::vector<int>> by_name;  ///< unqualified -> funcs
  std::map<std::string, std::vector<int>> by_qual;  ///< "Class::name" -> funcs
  std::set<std::string> class_names;
  /// Member/field name -> declared class type (for receiver resolution);
  /// only kept when unambiguous across the tree.
  std::map<std::string, std::string> member_types;
  /// fn name -> lock base: PREMA_RETURN_CAPABILITY aliases, so
  /// `coord_mutex()` used as a lock expression resolves to its capability.
  std::map<std::string, std::string> capability_alias;
  /// fn name -> lock base: PREMA_ASSERT_CAPABILITY grantors — calling one
  /// proves the lock is held for the rest of the enclosing scope.
  std::map<std::string, std::string> assert_grants;

  /// Index into funcs of the definition whose body contains (file, pos);
  /// innermost match wins. -1 when outside every body.
  int enclosing(int file, std::size_t pos) const;

  /// Field lookup: prefer `cls_hint`'s region, then classes declared in
  /// `file` or its same-stem header/source pair. nullptr when not found.
  const FieldDecl* find_field(const std::string& cls_hint, int file,
                              const std::string& name) const;
};

/// Minimal parallel-for interface, implemented by the engine's thread pool,
/// so build_index can shard its per-file and per-function phases without the
/// core depending on threads. Implementations must invoke fn(i) exactly once
/// for every i in [0, n) and return only when all invocations finished.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void run(std::size_t n,
                   const std::function<void(std::size_t)>& fn) const = 0;
};

/// Build the whole-program index for `tree`. With an executor, the per-file
/// collection phases (preprocessor blanking, class regions, fields, function
/// discovery) and the per-function phases (acquisitions, call sites) run
/// sharded; results are merged in file/function order, so the index is
/// byte-identical to the serial build.
Index build_index(const Tree& tree, const Executor* exec = nullptr);

/// May-hold lock sets at function entry, propagated to a fixed point over
/// resolved call edges: entry(callee) ⊇ holds-at-call-site(caller). Seeded
/// from each function's PREMA_REQUIRES facts.
std::vector<std::set<std::string>> propagate_entry_locks(const Index& idx);

/// Locks possibly held at `pos` inside funcs[fi]: the propagated entry set
/// plus every lexical hold (RAII guard or assert grant) covering `pos`.
std::set<std::string> held_at(const Index& idx,
                              const std::vector<std::set<std::string>>& entry,
                              int fi, std::size_t pos);

/// A mutation site inside a function body: `chain.back()` (the field) is
/// assigned, incremented/decremented, compound-assigned, or receives a
/// mutating container call (emplace/erase/insert/push_back/clear/resize/...).
struct WriteSite {
  std::size_t pos = 0;               ///< offset of the written field name
  std::vector<std::string> chain;    ///< access chain, e.g. {"tx", "pending"}
  std::string op;                    ///< "=", "++", "+=", "erase", ...
};

/// Collect mutation sites in `f.code[[begin,end))`, sorted by position.
/// Declarations-with-initializer (`auto& x = ...`, `int x = ...`) are not
/// writes; chains are member-access paths of plain identifiers.
std::vector<WriteSite> collect_writes(const SourceFile& f, std::size_t begin,
                                      std::size_t end);

}  // namespace prema::analyze
