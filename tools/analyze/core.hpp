#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file core.hpp
/// Shared substrate of prema_analyze (tools/analyze): source loading, the
/// comment/literal-stripping lexer and the identifier-level scanning helpers
/// every pass is built from. No libclang — the passes work on a byte-offset
/// preserving "code view" of each file (comments and literals blanked out, so
/// positions in the code view index the raw bytes too, which is how string
/// literal arguments are recovered after a match).

namespace prema::analyze {

/// One source file of the analyzed tree.
struct SourceFile {
  std::string rel;   ///< path relative to the scanned root, forward slashes
  std::string raw;   ///< original bytes
  std::string code;  ///< raw with comments/literals blanked (same length)
};

struct Tree {
  std::vector<SourceFile> files;
};

/// One analyzer finding. `message` must be deterministic and line-free so the
/// baseline fingerprint survives unrelated edits to the same file.
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

/// Stable identity of a finding for baseline suppression: rule|file|message
/// (no line number, so findings don't churn when code moves within a file).
std::string fingerprint(const Finding& f);

/// Inputs shared by the passes. Empty text disables the dependent checks
/// (fixtures provide their own hierarchy; a missing DESIGN.md skips the
/// drift check).
struct Options {
  std::string hierarchy_text;  ///< contents of tools/analyze/lock_hierarchy.txt
  std::string design_text;     ///< contents of DESIGN.md (drift check)
};

// ---------------------------------------------------------------------------
// Lexing / scanning helpers
// ---------------------------------------------------------------------------

/// Replace comments, string literals (including raw strings) and char
/// literals with spaces, preserving newlines and byte offsets so line numbers
/// and raw-text lookups survive.
std::string strip_comments_and_literals(std::string_view in);

/// True for [A-Za-z0-9_].
bool ident_char(char c);

/// First position >= `from` where `needle` occurs as a whole identifier.
/// Member access (`msg.time`, `obj->time`) never matches — that names
/// someone else's `time`, not ::time. `allow_scope_prefix` permits a
/// preceding "::" (so `std::time` is caught too); without it any scope
/// qualification disqualifies the match. `require_call` additionally demands
/// a following '(' (possibly after whitespace).
std::size_t find_ident(std::string_view hay, std::string_view needle,
                       std::size_t from, bool allow_scope_prefix,
                       bool require_call);

/// Like find_ident but the identifier must be reached through member access
/// (`x.name` / `x->name`) and be called — how handler registrations
/// (`reg.add("...")`) and state-lock acquisitions (`n.lock_state()`) appear.
std::size_t find_member_call(std::string_view hay, std::string_view needle,
                             std::size_t from);

/// 1-based line number of byte offset `pos`.
int line_of(std::string_view text, std::size_t pos);

/// Position past any whitespace starting at `pos`.
std::size_t skip_ws(std::string_view text, std::size_t pos);

/// Offset of the ')' matching the '(' at `open`; npos if unbalanced.
std::size_t matching_paren(std::string_view code, std::size_t open);

/// First string-literal argument of a call whose '(' sits at `open` in the
/// code view: reads the quoted value back out of `raw` (the code view has it
/// blanked). nullopt when the first argument is not a string literal.
std::optional<std::string> call_string_arg(const SourceFile& f, std::size_t open);

/// Split an annotation argument list at top-level commas.
std::vector<std::string> split_args(std::string_view args);

/// Canonical base name of a lock expression: `node_.state_mutex()` ->
/// "state_mutex", `mu_` -> "mu" (member access, call parens, `&`, `this->`
/// and one trailing underscore stripped).
std::string lock_base_name(std::string_view expr);

/// Load every .hpp/.cpp/.h/.cc under `root` (sorted, rel paths generic).
/// Returns false when root is not a directory.
bool load_tree(const std::string& root, Tree& out);

/// Run a single in-memory file through the same pipeline (self-tests,
/// fixtures assembled from snippets).
SourceFile make_file(std::string rel, std::string raw);

}  // namespace prema::analyze
