// prema_analyze — multi-pass semantic static analyzer for the PREMA runtime.
//
//   prema_analyze <src-root> [--hierarchy F] [--design F] [--baseline F]
//                            [--protocols DIR] [--atomics F] [--sarif OUT]
//                            [--write-baseline F] [--pass NAME]...
//                            [--jobs N] [--cache DIR] [--timings]
//   prema_analyze --list-passes
//   prema_analyze --self-test
//
// Scans the tree rooted at <src-root> with every pass (see passes.hpp),
// subtracts the baseline and reports what is left. `--pass NAME` (repeatable)
// restricts the run to the named passes so CI and local runs can bisect a
// regression. `--jobs N` analyzes on N threads (0 = hardware concurrency) —
// output is byte-identical at any width; `--cache DIR` keeps an incremental
// result cache keyed by (pass, manifest hashes, file content hash);
// `--timings` prints per-pass task time plus engine totals to stderr. Exit 0
// when no new findings, 1 when there are, 2 on usage/IO errors.
//
// Defaults, resolved relative to <src-root>'s parent (the repo root when
// scanning src/): tools/analyze/lock_hierarchy.txt, DESIGN.md,
// tools/analyze/baseline.txt, tools/analyze/atomics.txt and
// tools/analyze/protocols/. A missing *default* file just disables the
// dependent checks; an explicitly given path must exist.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/engine.hpp"
#include "analyze/report.hpp"

namespace {

namespace fs = std::filesystem;
using namespace prema::analyze;

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: prema_analyze <src-root> [--hierarchy F] [--design F]\n"
               "                     [--baseline F] [--protocols DIR] "
               "[--atomics F]\n"
               "                     [--sarif OUT] [--write-baseline F] "
               "[--pass NAME]...\n"
               "                     [--jobs N] [--cache DIR] [--timings]\n"
               "       prema_analyze --list-passes\n"
               "       prema_analyze --self-test\n");
  return 2;
}

/// Load every protocols/*.txt (sorted) as (stem, contents) pairs.
bool load_protocol_specs(const fs::path& dir, bool required, Options& opts) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    if (!required) return true;
    std::fprintf(stderr, "prema_analyze: %s is not a directory\n",
                 dir.string().c_str());
    return false;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".txt") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& p : files) {
    const auto text = read_file(p);
    if (!text) {
      std::fprintf(stderr, "prema_analyze: cannot read %s\n", p.string().c_str());
      return false;
    }
    opts.protocol_specs.emplace_back(p.stem().string(), *text);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--self-test") return run_self_test();
  if (argc == 2 && std::string(argv[1]) == "--list-passes") {
    for (const PassInfo& p : all_passes()) std::printf("%s\n", p.name);
    return 0;
  }
  if (argc < 2 || argv[1][0] == '-') return usage();

  const fs::path root = argv[1];
  std::string hierarchy_path;
  std::string design_path;
  std::string baseline_path;
  std::string protocols_path;
  std::string atomics_path;
  std::string sarif_out;
  std::string write_baseline_out;
  std::string cache_dir;
  std::set<std::string> selected;
  int jobs = 1;
  bool timings = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--timings") {
      timings = true;
      continue;
    }
    if (i + 1 >= argc) return usage();
    const std::string value = argv[++i];
    if (flag == "--hierarchy") {
      hierarchy_path = value;
    } else if (flag == "--design") {
      design_path = value;
    } else if (flag == "--baseline") {
      baseline_path = value;
    } else if (flag == "--protocols") {
      protocols_path = value;
    } else if (flag == "--atomics") {
      atomics_path = value;
    } else if (flag == "--jobs") {
      char* end = nullptr;
      jobs = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      if (end == nullptr || *end != '\0' || jobs < 0) return usage();
    } else if (flag == "--cache") {
      cache_dir = value;
    } else if (flag == "--sarif") {
      sarif_out = value;
    } else if (flag == "--write-baseline") {
      write_baseline_out = value;
    } else if (flag == "--pass") {
      selected.insert(value);
    } else {
      return usage();
    }
  }

  for (const std::string& name : selected) {
    const auto& passes = all_passes();
    const bool known = std::any_of(
        passes.begin(), passes.end(),
        [&](const PassInfo& p) { return name == p.name; });
    if (!known) {
      std::fprintf(stderr,
                   "prema_analyze: unknown pass '%s' (see --list-passes)\n",
                   name.c_str());
      return 2;
    }
  }

  Tree tree;
  if (!load_tree(root.string(), tree)) {
    std::fprintf(stderr, "prema_analyze: %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  // Resolve inputs: explicit paths are required to exist, defaults are
  // optional (an absent default simply disables the dependent checks).
  const fs::path repo = root.parent_path();
  auto resolve = [&](const std::string& given, const fs::path& fallback,
                     std::string& out_text) -> bool {
    const fs::path path = given.empty() ? fallback : fs::path(given);
    const auto text = read_file(path);
    if (!text && !given.empty()) {
      std::fprintf(stderr, "prema_analyze: cannot read %s\n", path.string().c_str());
      return false;
    }
    if (text) out_text = *text;
    return true;
  };

  Options opts;
  std::string baseline_text;
  if (!resolve(hierarchy_path, repo / "tools" / "analyze" / "lock_hierarchy.txt",
               opts.hierarchy_text) ||
      !resolve(design_path, repo / "DESIGN.md", opts.design_text) ||
      !resolve(atomics_path, repo / "tools" / "analyze" / "atomics.txt",
               opts.atomics_text) ||
      !resolve(baseline_path, repo / "tools" / "analyze" / "baseline.txt",
               baseline_text)) {
    return 2;
  }
  if (!load_protocol_specs(protocols_path.empty()
                               ? repo / "tools" / "analyze" / "protocols"
                               : fs::path(protocols_path),
                           !protocols_path.empty(), opts)) {
    return 2;
  }

  EngineOptions eng;
  eng.jobs = jobs;
  eng.cache_dir = cache_dir;
  for (const PassInfo& p : all_passes()) {
    if (selected.empty() || selected.count(p.name) != 0) {
      eng.passes.push_back(p.name);
    }
  }
  Findings all;
  EngineStats stats;
  run_engine(tree, opts, eng, all, &stats);
  const std::size_t passes_run = eng.passes.size();
  if (timings) {
    for (const PassStat& ps : stats.passes) {
      std::fprintf(stderr,
                   "prema_analyze: pass %-17s %8.1f ms  (%zu cached, "
                   "%zu computed)\n",
                   ps.name.c_str(), ps.ms, ps.cache_hits, ps.cache_misses);
    }
    std::fprintf(stderr,
                 "prema_analyze: index %.1f ms, tasks %.1f ms, wall %.1f ms, "
                 "jobs %d, cache %zu/%zu hit(s)\n",
                 stats.index_ms, stats.task_ms, stats.wall_ms, stats.jobs,
                 stats.cache_hits, stats.cache_hits + stats.cache_misses);
  }

  if (!write_baseline_out.empty()) {
    std::ofstream out(write_baseline_out, std::ios::binary);
    out << render_baseline(all);
    if (!out) {
      std::fprintf(stderr, "prema_analyze: cannot write %s\n",
                   write_baseline_out.c_str());
      return 2;
    }
    std::printf("prema_analyze: wrote baseline with %zu finding(s) to %s\n",
                all.size(), write_baseline_out.c_str());
    return 0;
  }

  const Findings fresh = subtract_baseline(all, parse_baseline(baseline_text));

  if (!sarif_out.empty()) {
    std::ofstream out(sarif_out, std::ios::binary);
    out << render_sarif(fresh);
    if (!out) {
      std::fprintf(stderr, "prema_analyze: cannot write %s\n", sarif_out.c_str());
      return 2;
    }
  }

  for (const Finding& f : fresh) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!fresh.empty()) {
    std::fprintf(stderr,
                 "prema_analyze: %zu new finding(s) (%zu suppressed by baseline) "
                 "in %zu file(s) scanned\n",
                 fresh.size(), all.size() - fresh.size(), tree.files.size());
    return 1;
  }
  std::printf("prema_analyze: OK (%zu files scanned, %zu passes, "
              "%zu baseline-suppressed)\n",
              tree.files.size(), passes_run, all.size());
  return 0;
}
