// prema_analyze — multi-pass semantic static analyzer for the PREMA runtime.
//
//   prema_analyze <src-root> [--hierarchy F] [--design F] [--baseline F]
//                            [--sarif OUT] [--write-baseline F]
//   prema_analyze --self-test
//
// Scans the tree rooted at <src-root> with every pass (see passes.hpp),
// subtracts the baseline and reports what is left. Exit 0 when no new
// findings, 1 when there are, 2 on usage/IO errors.
//
// Defaults, resolved relative to <src-root>'s parent (the repo root when
// scanning src/): tools/analyze/lock_hierarchy.txt, DESIGN.md and
// tools/analyze/baseline.txt. A missing *default* file just disables the
// dependent checks; an explicitly given path must exist.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "analyze/report.hpp"

namespace {

namespace fs = std::filesystem;
using namespace prema::analyze;

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: prema_analyze <src-root> [--hierarchy F] [--design F]\n"
               "                     [--baseline F] [--sarif OUT] "
               "[--write-baseline F]\n"
               "       prema_analyze --self-test\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--self-test") return run_self_test();
  if (argc < 2 || argv[1][0] == '-') return usage();

  const fs::path root = argv[1];
  std::string hierarchy_path;
  std::string design_path;
  std::string baseline_path;
  std::string sarif_out;
  std::string write_baseline_out;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return usage();
    const std::string value = argv[++i];
    if (flag == "--hierarchy") {
      hierarchy_path = value;
    } else if (flag == "--design") {
      design_path = value;
    } else if (flag == "--baseline") {
      baseline_path = value;
    } else if (flag == "--sarif") {
      sarif_out = value;
    } else if (flag == "--write-baseline") {
      write_baseline_out = value;
    } else {
      return usage();
    }
  }

  Tree tree;
  if (!load_tree(root.string(), tree)) {
    std::fprintf(stderr, "prema_analyze: %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  // Resolve inputs: explicit paths are required to exist, defaults are
  // optional (an absent default simply disables the dependent checks).
  const fs::path repo = root.parent_path();
  auto resolve = [&](const std::string& given, const fs::path& fallback,
                     std::string& out_text) -> bool {
    const fs::path path = given.empty() ? fallback : fs::path(given);
    const auto text = read_file(path);
    if (!text && !given.empty()) {
      std::fprintf(stderr, "prema_analyze: cannot read %s\n", path.string().c_str());
      return false;
    }
    if (text) out_text = *text;
    return true;
  };

  Options opts;
  std::string baseline_text;
  if (!resolve(hierarchy_path, repo / "tools" / "analyze" / "lock_hierarchy.txt",
               opts.hierarchy_text) ||
      !resolve(design_path, repo / "DESIGN.md", opts.design_text) ||
      !resolve(baseline_path, repo / "tools" / "analyze" / "baseline.txt",
               baseline_text)) {
    return 2;
  }

  Findings all;
  run_all_passes(tree, opts, all);

  if (!write_baseline_out.empty()) {
    std::ofstream out(write_baseline_out, std::ios::binary);
    out << render_baseline(all);
    if (!out) {
      std::fprintf(stderr, "prema_analyze: cannot write %s\n",
                   write_baseline_out.c_str());
      return 2;
    }
    std::printf("prema_analyze: wrote baseline with %zu finding(s) to %s\n",
                all.size(), write_baseline_out.c_str());
    return 0;
  }

  const Findings fresh = subtract_baseline(all, parse_baseline(baseline_text));

  if (!sarif_out.empty()) {
    std::ofstream out(sarif_out, std::ios::binary);
    out << render_sarif(fresh);
    if (!out) {
      std::fprintf(stderr, "prema_analyze: cannot write %s\n", sarif_out.c_str());
      return 2;
    }
  }

  for (const Finding& f : fresh) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!fresh.empty()) {
    std::fprintf(stderr,
                 "prema_analyze: %zu new finding(s) (%zu suppressed by baseline) "
                 "in %zu file(s) scanned\n",
                 fresh.size(), all.size() - fresh.size(), tree.files.size());
    return 1;
  }
  std::printf("prema_analyze: OK (%zu files scanned, %zu passes, "
              "%zu baseline-suppressed)\n",
              tree.files.size(), all_passes().size(), all.size());
  return 0;
}
