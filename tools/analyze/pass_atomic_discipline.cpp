// Atomic discipline — the manifest-driven half of the memory-model layer.
// Every std::atomic in the tree must be registered in
// tools/analyze/atomics.txt with a role and the set of memory orders its
// uses are allowed to spell:
//
//   <name> role=<flag|counter|seqcount|published-ptr> orders=<o1[,o2...]>
//          [class=<Cls>] [file=<rel-path-substring>]
//
// The manifest is the reviewed source of truth: an atomic that is not
// registered has never had its ordering argued about, and an operation
// spelling no order at all silently buys seq_cst — usually by accident,
// occasionally hiding a real acquire/release dependency under the strongest
// (and slowest) fence.
//
//  atomic-unregistered    a std::atomic declaration with no manifest entry.
//  atomic-implicit-order  load()/store(v)/RMW with no memory-order argument,
//                         or a plain `=` assignment routing through the
//                         implicitly-seq_cst store operator. `++`/`+=` are
//                         exempt: counters legitimately use the operator
//                         forms, and non-counter roles hit atomic-rmw.
//  atomic-rmw             read-modify-write on a role that is not counter or
//                         seqcount: flags and published pointers are
//                         store/load protocols, an RMW on one signals a
//                         design change the manifest never reviewed.
//  atomic-order           an explicit memory order outside the entry's
//                         allowed set.
//  atomic-guarded         a field both atomic and PREMA_GUARDED_BY a mutex:
//                         two synchronization regimes on one field.
//  atomic-stale           a manifest entry matching no declaration.
//  atomic-manifest        the manifest itself failed to parse.
//
// Reads that go through the implicit conversion operator (`T x = a;`) carry
// no member call and are out of scope — the release-acquire pass reasons
// about explicitly-ordered sites only.
//
// `// analyze:allow(<rule>)` on the offending line (or the line above)
// acknowledges a reviewed exception.

#include <optional>
#include <set>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {

void pass_atomic_discipline(const Tree& tree, const Options& opts,
                            Findings& out) {
  if (opts.atomics_text.empty()) return;
  std::vector<Finding> manifest_errors;
  const std::vector<AtomicEntry> entries =
      parse_atomics_manifest("atomics.txt", opts.atomics_text, manifest_errors);
  for (const Finding& e : manifest_errors) out.push_back(e);

  std::optional<Index> local;
  const Index& idx =
      opts.index != nullptr ? *opts.index : local.emplace(build_index(tree));

  std::set<std::string> reported;
  auto report = [&](const char* rule, const SourceFile& f, std::size_t pos,
                    const std::string& key, const std::string& message) {
    if (allow_comment(f, pos, rule)) return;
    if (!reported.insert(std::string(rule) + "|" + key).second) return;
    out.push_back({rule, f.rel, line_of(f.code, pos), message});
  };

  // -- declarations vs manifest ---------------------------------------------
  const std::vector<AtomicDecl> decls = collect_atomic_decls(idx);
  std::vector<char> entry_used(entries.size(), 0);
  std::set<std::string> names;
  for (const AtomicEntry& e : entries) names.insert(e.name);
  for (const AtomicDecl& d : decls) {
    names.insert(d.name);
    const SourceFile& f = tree.files[static_cast<std::size_t>(d.file)];
    const std::string qual = d.cls.empty() ? d.name : d.cls + "::" + d.name;
    const int ei = resolve_atomic(entries, f.rel, d.cls, d.name);
    if (ei < 0) {
      report("atomic-unregistered", f, d.pos, qual,
             "atomic '" + qual +
                 "' is not registered in atomics.txt (every std::atomic "
                 "needs a reviewed role and allowed memory-order set)");
    } else {
      entry_used[static_cast<std::size_t>(ei)] = 1;
    }
    if (d.annotated) {
      report("atomic-guarded", f, d.pos, qual,
             "atomic '" + qual +
                 "' is also PREMA_GUARDED_BY a mutex — pick one "
                 "synchronization regime");
    }
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entry_used[i] != 0) continue;
    out.push_back({"atomic-stale", "atomics.txt", entries[i].line,
                   "manifest entry '" + entries[i].name +
                       "' matches no atomic declaration in the tree"});
  }

  // -- operation sites vs the entry's role and order set --------------------
  for (const AtomicOp& op : collect_atomic_ops(idx, names)) {
    const SourceFile& f = tree.files[static_cast<std::size_t>(op.file)];
    const int ei = resolve_atomic(entries, f.rel, op.cls, op.field);
    // Unresolvable sites are same-named plain fields (the manifest's class=
    // and file= qualifiers exclude them) or unregistered atomics already
    // reported at the declaration.
    if (ei < 0) continue;
    const AtomicEntry& e = entries[static_cast<std::size_t>(ei)];
    const std::string qual =
        e.cls.empty() ? e.name : e.cls + "::" + e.name;
    if (atomic_op_is_implicit(op)) {
      const std::string spelled =
          op.op == "=" || op.op.size() == 2
              ? "operator " + op.op
              : op.op + "() with no order argument";
      report("atomic-implicit-order", f, op.pos, qual + "|" + op.op,
             "'" + qual + "' " + spelled +
                 " is an implicit seq_cst operation — spell the memory "
                 "order explicitly");
    }
    for (const std::string& o : op.orders) {
      if (e.orders.count(o) != 0) continue;
      std::string allowed;
      for (const std::string& a : e.orders) {
        allowed += allowed.empty() ? a : ", " + a;
      }
      report("atomic-order", f, op.pos, qual + "|" + o,
             "'" + qual + "' uses memory_order_" + o +
                 ", outside its allowed set {" + allowed + "}");
    }
    if (atomic_op_is_rmw(op.op) && e.role != "counter" &&
        e.role != "seqcount") {
      report("atomic-rmw", f, op.pos, qual + "|rmw",
             "read-modify-write ('" + op.op + "') on '" + qual +
                 "' whose role is '" + e.role +
                 "' — RMWs are reserved for counter/seqcount roles");
    }
  }
}

}  // namespace prema::analyze
