#include "analyze/report.hpp"

#include <algorithm>

namespace prema::analyze {
namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xF]);
          out.push_back(hex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::set<std::string> parse_baseline(std::string_view text) {
  std::set<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    out.insert(line);
  }
  return out;
}

Findings subtract_baseline(const Findings& all, const std::set<std::string>& baseline) {
  Findings fresh;
  for (const Finding& f : all) {
    if (baseline.find(fingerprint(f)) == baseline.end()) fresh.push_back(f);
  }
  return fresh;
}

std::string render_baseline(const Findings& all) {
  std::vector<std::string> prints;
  prints.reserve(all.size());
  for (const Finding& f : all) prints.push_back(fingerprint(f));
  std::sort(prints.begin(), prints.end());
  prints.erase(std::unique(prints.begin(), prints.end()), prints.end());
  std::string out =
      "# prema_analyze baseline: known findings suppressed in CI.\n"
      "# One fingerprint (rule|file|message) per line. Regenerate with\n"
      "#   prema_analyze <src-root> --write-baseline <this file>\n"
      "# The goal is to keep this file EMPTY: entries are temporary debt.\n";
  for (const std::string& p : prints) {
    out += p;
    out += '\n';
  }
  return out;
}

std::string render_sarif(const Findings& findings) {
  // Rule ids, first-seen order.
  std::vector<std::string> rules;
  for (const Finding& f : findings) {
    if (std::find(rules.begin(), rules.end(), f.rule) == rules.end()) {
      rules.push_back(f.rule);
    }
  }
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"prema_analyze\",\n"
      "          \"informationUri\": \"tools/analyze\",\n"
      "          \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "            {\"id\": \"" + json_escape(rules[i]) + "\"}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(f.rule) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + json_escape(f.message) + "\"},\n";
    out += "          \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \"" +
           json_escape(f.file) + "\"}, \"region\": {\"startLine\": " +
           std::to_string(std::max(1, f.line)) + "}}}],\n";
    out += "          \"partialFingerprints\": {\"premaAnalyze/v1\": \"" +
           json_escape(fingerprint(f)) + "\"}\n";
    out += "        }";
  }
  out +=
      "\n      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace prema::analyze
