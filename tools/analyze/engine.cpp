#include "analyze/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>

namespace prema::analyze {

namespace fs = std::filesystem;

namespace {

/// Bump when the cache record format or anything feeding the finding
/// messages changes shape: stale-format entries then simply never hit.
constexpr const char* kCacheHeader = "prema-analyze-cache 1";

std::uint64_t fnv1a(std::string_view data,
                    std::uint64_t h = 1469598103934665603ull) {
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t h) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[h & 0xf];
    h >>= 4;
  }
  return s;
}

/// Work-stealing-by-counter executor: `run` fans `fn(0..n)` over up to
/// `jobs` threads (the caller's thread takes a share). Tasks pull the next
/// index from an atomic counter, so long tasks don't straggle a static
/// partition.
class ThreadPool final : public Executor {
 public:
  explicit ThreadPool(int jobs) : jobs_(jobs) {}

  void run(std::size_t n,
           const std::function<void(std::size_t)>& fn) const override {
    const int width = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs_), n));
    if (width <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::atomic<std::size_t> next{0};
    const auto worker = [&next, &fn, n] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    };
    std::vector<std::thread> extra;
    extra.reserve(static_cast<std::size_t>(width - 1));
    for (int k = 1; k < width; ++k) extra.emplace_back(worker);
    worker();
    for (std::thread& t : extra) t.join();
  }

 private:
  int jobs_;
};

/// One file per entry under `dir`; atomic tmp-write + rename so concurrent
/// writers (tasks in this run, or a second analyzer process) never expose a
/// torn record. Any read problem degrades to a miss.
struct Cache {
  std::string dir;  // "" = disabled

  bool load(const std::string& key, Findings& out) const {
    if (dir.empty()) return false;
    std::ifstream in(fs::path(dir) / (key + ".rec"), std::ios::binary);
    if (!in) return false;
    std::string line;
    if (!std::getline(in, line) || line != kCacheHeader) return false;
    Findings loaded;
    while (std::getline(in, line)) {
      std::vector<std::string> parts;
      std::size_t start = 0;
      while (parts.size() < 3) {
        const std::size_t sep = line.find('\x1f', start);
        if (sep == std::string::npos) break;
        parts.push_back(line.substr(start, sep - start));
        start = sep + 1;
      }
      if (parts.size() != 3) return false;
      Finding f;
      f.rule = parts[0];
      f.file = parts[1];
      f.line = std::atoi(parts[2].c_str());
      f.message = line.substr(start);
      loaded.push_back(std::move(f));
    }
    for (Finding& f : loaded) out.push_back(std::move(f));
    return true;
  }

  void store(const std::string& key, const Findings& findings) const {
    if (dir.empty()) return;
    const fs::path path = fs::path(dir) / (key + ".rec");
    const fs::path tmp =
        fs::path(dir) /
        (key + ".tmp" +
         std::to_string(
             std::hash<std::thread::id>{}(std::this_thread::get_id())));
    {
      std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
      if (!outf) return;
      outf << kCacheHeader << '\n';
      for (const Finding& f : findings) {
        outf << f.rule << '\x1f' << f.file << '\x1f' << f.line << '\x1f'
             << f.message << '\n';
      }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) fs::remove(tmp, ec);
  }
};

}  // namespace

void run_engine(const Tree& tree, const Options& opts,
                const EngineOptions& eopts, Findings& out,
                EngineStats* stats) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const auto ms_between = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  int jobs = eopts.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  const ThreadPool pool(jobs);

  std::vector<const PassInfo*> selected;
  for (const PassInfo& p : all_passes()) {
    if (eopts.passes.empty() ||
        std::find(eopts.passes.begin(), eopts.passes.end(), p.name) !=
            eopts.passes.end()) {
      selected.push_back(&p);
    }
  }

  Cache cache{eopts.cache_dir};
  if (!cache.dir.empty()) {
    std::error_code ec;
    fs::create_directories(cache.dir, ec);
    if (ec) cache.dir.clear();
  }

  // Input hashes: the option texts feed every key; each file's key covers
  // its path and raw bytes; the whole-tree key covers every file.
  std::uint64_t opts_hash = fnv1a(kCacheHeader);
  const auto mix = [&opts_hash](std::string_view label,
                                std::string_view text) {
    opts_hash = fnv1a(label, opts_hash);
    opts_hash = fnv1a("\x1f", opts_hash);
    opts_hash = fnv1a(text, opts_hash);
    opts_hash = fnv1a("\x1e", opts_hash);
  };
  mix("hierarchy", opts.hierarchy_text);
  mix("design", opts.design_text);
  mix("atomics", opts.atomics_text);
  for (const auto& [spec_name, spec_text] : opts.protocol_specs) {
    mix(spec_name, spec_text);
  }
  std::vector<std::uint64_t> file_hashes(tree.files.size());
  pool.run(tree.files.size(), [&](std::size_t i) {
    std::uint64_t h = fnv1a(tree.files[i].rel);
    h = fnv1a("\x1f", h);
    file_hashes[i] = fnv1a(tree.files[i].raw, h);
  });
  std::uint64_t tree_hash = fnv1a("tree");
  for (const std::uint64_t h : file_hashes) {
    tree_hash = fnv1a(hex16(h), tree_hash);
  }
  const auto cache_key = [&](const char* kind, const char* pass,
                             std::uint64_t input) {
    std::uint64_t h = fnv1a(kind);
    h = fnv1a("\x1f", h);
    h = fnv1a(pass, h);
    h = fnv1a("\x1f", h);
    h = fnv1a(hex16(opts_hash), h);
    h = fnv1a("\x1f", h);
    h = fnv1a(hex16(input), h);
    return hex16(h);
  };

  // Result slots, preassigned so concatenation order — (pass registry
  // order, file order) — never depends on task completion order.
  struct Slot {
    Findings findings;
    double ms = 0;
    bool hit = false;
    std::string key;
    const PassInfo* pass = nullptr;
    int file = -1;  ///< -1 = whole tree
  };
  std::vector<std::vector<Slot>> slots(selected.size());
  for (std::size_t pi = 0; pi < selected.size(); ++pi) {
    const PassInfo& p = *selected[pi];
    slots[pi].resize(p.per_file ? tree.files.size() : 1);
    for (std::size_t si = 0; si < slots[pi].size(); ++si) {
      Slot& s = slots[pi][si];
      s.pass = &p;
      if (p.per_file) {
        s.file = static_cast<int>(si);
        s.key = cache_key("file", p.name, file_hashes[si]);
      } else {
        s.key = cache_key("tree", p.name, tree_hash);
      }
      s.hit = cache.load(s.key, s.findings);
    }
  }

  // The shared index is only worth building when an index pass has to run.
  bool need_index = false;
  for (std::size_t pi = 0; pi < selected.size(); ++pi) {
    if (selected[pi]->needs_index && !slots[pi][0].hit) need_index = true;
  }
  std::optional<Index> index;
  if (need_index) {
    const auto i0 = Clock::now();
    index.emplace(build_index(tree, &pool));
    if (stats != nullptr) stats->index_ms = ms_between(i0, Clock::now());
  }

  // Whole-tree tasks first: they are the long poles, so starting them first
  // lets the per-file shards fill the remaining threads.
  std::vector<Slot*> tasks;
  for (std::size_t pi = 0; pi < selected.size(); ++pi) {
    if (!selected[pi]->per_file && !slots[pi][0].hit) {
      tasks.push_back(&slots[pi][0]);
    }
  }
  for (std::size_t pi = 0; pi < selected.size(); ++pi) {
    if (!selected[pi]->per_file) continue;
    for (Slot& s : slots[pi]) {
      if (!s.hit) tasks.push_back(&s);
    }
  }
  Options tree_opts = opts;
  tree_opts.index = need_index ? &*index : nullptr;
  Options file_opts = opts;
  file_opts.index = nullptr;
  pool.run(tasks.size(), [&](std::size_t ti) {
    Slot& s = *tasks[ti];
    const auto s0 = Clock::now();
    if (s.file >= 0) {
      Tree sub;
      sub.files.push_back(tree.files[static_cast<std::size_t>(s.file)]);
      s.pass->fn(sub, file_opts, s.findings);
    } else {
      s.pass->fn(tree, tree_opts, s.findings);
    }
    s.ms = ms_between(s0, Clock::now());
    cache.store(s.key, s.findings);
  });

  for (std::size_t pi = 0; pi < selected.size(); ++pi) {
    PassStat stat;
    stat.name = selected[pi]->name;
    for (Slot& s : slots[pi]) {
      stat.ms += s.ms;
      if (s.hit) {
        ++stat.cache_hits;
      } else {
        ++stat.cache_misses;
      }
      for (Finding& f : s.findings) out.push_back(std::move(f));
    }
    if (stats != nullptr) {
      stats->cache_hits += stat.cache_hits;
      stats->cache_misses += stat.cache_misses;
      stats->task_ms += stat.ms;
      stats->passes.push_back(std::move(stat));
    }
  }
  if (stats != nullptr) {
    stats->jobs = jobs;
    stats->wall_ms = ms_between(t0, Clock::now());
  }
}

}  // namespace prema::analyze
