// Lock-order analysis. Builds an acquisition graph from two sources —
// lexical nesting of RAII lock scopes (util::LockGuard / util::UniqueLock /
// util::RecursiveLock / Node::lock_state()) and PREMA_REQUIRES annotations
// on inline function bodies — and checks every edge against the checked-in
// hierarchy (tools/analyze/lock_hierarchy.txt): a lock acquired while
// another is held must sit strictly *below* the held one, except a lock
// marked `recursive` re-acquiring itself. Independently of the hierarchy,
// the accumulated graph is searched for cycles (potential deadlocks).
//
// Two structural checks ride along:
//  - every declared util::Mutex / util::RecursiveMutex member must resolve
//    to a hierarchy entry (lock-unlisted) and be referenced by at least one
//    thread-safety annotation in its file (lock-unguarded) — the
//    GUARDED_BY-coverage rule that keeps -Wthread-safety airtight;
//  - every hierarchy entry must be named in DESIGN.md's prose hierarchy
//    (lock-hierarchy-drift), so the document and the machine-readable file
//    cannot diverge silently.

#include <algorithm>
#include <iterator>
#include <map>
#include <set>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {
namespace {

// The hierarchy file model (parse_hierarchy / resolve_lock) lives in core —
// the lock-flow pass shares it for its `noblock` attribute.

struct Acquisition {
  std::size_t pos = 0;   ///< event position in the code view
  std::string base;      ///< canonical lock name
  bool at_open_brace = false;  ///< REQUIRES hold: attaches inside the '{' at pos
};

/// True when the identifier token ending just before `pos` (after a "::")
/// is `qual` — e.g. is this `LockGuard` spelled `util::LockGuard`?
bool has_qualifier(std::string_view code, std::size_t pos, std::string_view qual) {
  if (pos < 2 || code[pos - 1] != ':' || code[pos - 2] != ':') return false;
  std::size_t end = pos - 2;
  std::size_t begin = end;
  while (begin > 0 && ident_char(code[begin - 1])) --begin;
  return code.substr(begin, end - begin) == qual;
}

/// Collect RAII acquisitions and REQUIRES holds in one file, sorted by
/// position.
std::vector<Acquisition> collect_acquisitions(const SourceFile& f) {
  std::vector<Acquisition> events;
  const std::string_view code = f.code;

  for (const char* type : {"LockGuard", "UniqueLock", "RecursiveLock"}) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_ident(code, type, from, true, false);
      if (pos == std::string_view::npos) break;
      from = pos + 1;
      if (!has_qualifier(code, pos, "util")) continue;
      std::size_t p = skip_ws(code, pos + std::string_view(type).size());
      while (p < code.size() && ident_char(code[p])) ++p;  // optional var name
      p = skip_ws(code, p);
      if (p >= code.size() || code[p] != '(') continue;  // not a construction
      const std::size_t close = matching_paren(code, p);
      if (close == std::string_view::npos) continue;
      const auto args = split_args(code.substr(p + 1, close - p - 1));
      if (args.empty()) continue;
      events.push_back({pos, lock_base_name(args[0]), false});
    }
  }

  // Node::lock_state() returns an RAII lock over the node's state mutex;
  // member-call sites are acquisitions of `state_mutex`.
  std::size_t from = 0;
  while (true) {
    const std::size_t pos = find_member_call(code, "lock_state", from);
    if (pos == std::string_view::npos) break;
    from = pos + 1;
    events.push_back({pos, "state_mutex", false});
  }

  // PREMA_REQUIRES on an inline definition: the listed capabilities are held
  // for the whole body, so acquisitions inside it create ordering edges.
  from = 0;
  while (true) {
    const std::size_t pos = find_ident(code, "PREMA_REQUIRES", from, false, true);
    if (pos == std::string_view::npos) break;
    from = pos + 1;
    const std::size_t open = code.find('(', pos);
    const std::size_t close = matching_paren(code, open);
    if (close == std::string_view::npos) continue;
    // Find the function body this annotation belongs to; a ';' first means
    // it was a declaration (no body here).
    std::size_t q = close + 1;
    while (q < code.size() && code[q] != '{' && code[q] != ';' && code[q] != '}') ++q;
    if (q >= code.size() || code[q] != '{') continue;
    for (const std::string& arg : split_args(code.substr(open + 1, close - open - 1))) {
      events.push_back({q, lock_base_name(arg), true});
    }
  }

  std::sort(events.begin(), events.end(),
            [](const Acquisition& a, const Acquisition& b) { return a.pos < b.pos; });
  return events;
}

struct Hold {
  int entry = -1;  ///< hierarchy index, -1 unresolved
  std::string base;
  int depth = 0;
};

struct DeclaredMutex {
  std::string rel;
  std::string name;  ///< canonical base
  int line = 0;
};

/// util::Mutex / util::RecursiveMutex member declarations (`util::Mutex x_;`).
std::vector<DeclaredMutex> collect_mutex_decls(const SourceFile& f) {
  std::vector<DeclaredMutex> out;
  const std::string_view code = f.code;
  for (const char* type : {"Mutex", "RecursiveMutex"}) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_ident(code, type, from, true, false);
      if (pos == std::string_view::npos) break;
      from = pos + 1;
      if (!has_qualifier(code, pos, "util")) continue;
      std::size_t p = skip_ws(code, pos + std::string_view(type).size());
      std::size_t name_begin = p;
      while (p < code.size() && ident_char(code[p])) ++p;
      if (p == name_begin) continue;  // `util::Mutex&` — a reference, not a decl
      const std::string name(code.substr(name_begin, p - name_begin));
      p = skip_ws(code, p);
      if (p >= code.size() || code[p] != ';') continue;
      out.push_back({f.rel, lock_base_name(name), line_of(code, pos)});
    }
  }
  return out;
}

/// Canonical base names referenced by any thread-safety annotation in `f`.
std::set<std::string> collect_annotation_refs(const SourceFile& f) {
  static constexpr const char* kMacros[] = {
      "PREMA_GUARDED_BY",      "PREMA_PT_GUARDED_BY", "PREMA_REQUIRES",
      "PREMA_ACQUIRE",         "PREMA_RELEASE",       "PREMA_TRY_ACQUIRE",
      "PREMA_EXCLUDES",        "PREMA_ASSERT_CAPABILITY",
      "PREMA_RETURN_CAPABILITY",                      "PREMA_GUARDED_BY_CONTEXT"};
  std::set<std::string> refs;
  const std::string_view code = f.code;
  for (const char* macro : kMacros) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_ident(code, macro, from, false, true);
      if (pos == std::string_view::npos) break;
      from = pos + 1;
      const std::size_t open = code.find('(', pos);
      const std::size_t close = matching_paren(code, open);
      if (close == std::string_view::npos) continue;
      for (const std::string& arg :
           split_args(code.substr(open + 1, close - open - 1))) {
        const std::string base = lock_base_name(arg);
        if (!base.empty()) refs.insert(base);
      }
    }
  }
  return refs;
}

}  // namespace

void pass_lock_order(const Tree& tree, const Options& opts, Findings& out) {
  const std::vector<LockEntry> entries = parse_hierarchy(opts.hierarchy_text);
  const bool have_hierarchy = !entries.empty();

  // name -> successors, over canonical entry names (unresolved locks keep
  // their base name so cycles are still visible without a hierarchy).
  std::map<std::string, std::set<std::string>> graph;

  for (const SourceFile& f : tree.files) {
    const std::vector<Acquisition> events = collect_acquisitions(f);
    std::vector<Hold> held;
    int depth = 0;
    std::size_t ev = 0;
    const std::string_view code = f.code;
    for (std::size_t p = 0; p <= code.size(); ++p) {
      const bool at_open = p < code.size() && code[p] == '{';
      if (p < code.size() && code[p] == '}') {
        while (!held.empty() && held.back().depth >= depth) held.pop_back();
        --depth;
      }
      if (at_open) ++depth;
      while (ev < events.size() && events[ev].pos == p) {
        const Acquisition& a = events[ev++];
        if (a.at_open_brace && !at_open) continue;  // defensive: must be a '{'
        const int entry = resolve_lock(entries, f.rel, a.base);
        const std::string name = entry >= 0 ? entries[entry].name : a.base;
        const int line = line_of(code, a.pos);
        if (entry < 0 && have_hierarchy && !a.at_open_brace) {
          out.push_back({"lock-unlisted", f.rel, line,
                         "lock acquisition '" + a.base +
                             "' matches no lock_hierarchy.txt entry"});
        }
        for (const Hold& h : held) {
          const std::string held_name =
              h.entry >= 0 ? entries[static_cast<std::size_t>(h.entry)].name : h.base;
          const bool same = held_name == name;
          const bool recursive_ok =
              same && entry >= 0 && entries[static_cast<std::size_t>(entry)].recursive;
          if (!same || !recursive_ok) graph[held_name].insert(name);
          if (entry >= 0 && h.entry >= 0) {
            if (same && !recursive_ok) {
              out.push_back({"lock-order", f.rel, line,
                             "lock '" + name +
                                 "' re-acquired while held but not marked "
                                 "recursive in lock_hierarchy.txt"});
            } else if (!same && entry <= h.entry) {
              out.push_back({"lock-order", f.rel, line,
                             "acquires '" + name + "' while holding '" + held_name +
                                 "', inverting the lock hierarchy (" + name +
                                 " is ordered above " + held_name + ")"});
            }
          }
        }
        held.push_back({entry, a.base, depth});
      }
    }
  }

  // Cycle search over the accumulated graph (DFS, deterministic order).
  std::set<std::string> reported;
  std::map<std::string, int> state;  // 0 unseen, 1 on stack, 2 done
  std::vector<std::string> stack;
  auto dfs = [&](auto&& self, const std::string& node) -> void {
    state[node] = 1;
    stack.push_back(node);
    if (const auto it = graph.find(node); it != graph.end()) {
      for (const std::string& next : it->second) {
        if (state[next] == 1) {
          std::string cycle = next;
          for (auto sit = std::next(std::find(stack.begin(), stack.end(), next));
               sit != stack.end(); ++sit) {
            cycle += " -> " + *sit;
          }
          cycle += " -> " + next;
          if (reported.insert(cycle).second) {
            out.push_back({"lock-order", "<graph>", 0,
                           "lock acquisition cycle (potential deadlock): " + cycle});
          }
        } else if (state[next] == 0) {
          self(self, next);
        }
      }
    }
    stack.pop_back();
    state[node] = 2;
  };
  for (const auto& [node, succs] : graph) {
    if (state[node] == 0) dfs(dfs, node);
  }

  // GUARDED_BY coverage + hierarchy membership of every declared mutex.
  for (const SourceFile& f : tree.files) {
    const auto decls = collect_mutex_decls(f);
    if (decls.empty()) continue;
    const auto refs = collect_annotation_refs(f);
    for (const DeclaredMutex& d : decls) {
      if (have_hierarchy && resolve_lock(entries, d.rel, d.name) < 0) {
        out.push_back({"lock-unlisted", d.rel, d.line,
                       "mutex '" + d.name +
                           "' is not listed in lock_hierarchy.txt"});
      }
      if (refs.find(d.name) == refs.end()) {
        out.push_back({"lock-unguarded", d.rel, d.line,
                       "mutex '" + d.name +
                           "' is never referenced by a thread-safety annotation "
                           "(PREMA_GUARDED_BY / PREMA_REQUIRES / PREMA_ACQUIRE)"});
      }
    }
  }

  // Hierarchy entries must appear in DESIGN.md's prose hierarchy.
  if (have_hierarchy && !opts.design_text.empty()) {
    for (const LockEntry& e : entries) {
      if (opts.design_text.find(e.name) == std::string::npos) {
        out.push_back({"lock-hierarchy-drift", "DESIGN.md", 0,
                       "hierarchy entry '" + e.name +
                           "' is not mentioned in DESIGN.md's lock hierarchy"});
      }
    }
  }
}

}  // namespace prema::analyze
