#pragma once

#include <vector>

#include "analyze/core.hpp"

/// \file passes.hpp
/// The analyzer passes. Each pass is a pure function over the loaded tree:
/// it may not touch the filesystem, so fixtures and self-tests can run it on
/// synthetic trees.
///
///   conventions    the migrated prema_lint rule families (determinism,
///                  randomness, locking, logging)
///   lock-order     acquisition graph vs tools/analyze/lock_hierarchy.txt:
///                  lexical nesting + PREMA_REQUIRES edges must point
///                  strictly down the hierarchy; cycles are reported; every
///                  declared util::Mutex must be listed and carry at least
///                  one thread-safety annotation (GUARDED_BY coverage)
///   protocol       the PREMA_WIRE_HANDLERS manifest (dmcs/message.hpp) vs
///                  actual registry .add("…") registrations vs the trace
///                  label table (trace/wire_names.hpp)
///   serialization  `// wire:<name> <pack|unpack> <var>` marked field
///                  sequences must agree across pack and unpack sites
///   time-domain    statements mixing wall-clock values (steady_clock,
///                  elapsed_s, …) with virtual-time values (now(), SimTime)
///                  outside dmcs/thread_machine.*
///   lock-flow      interprocedural: lock-sets propagated over the call
///                  graph; noblock locks held across blocking operations,
///                  PREMA_REQUIRES callees reached without the lock,
///                  unannotated shared fields written on locked paths
///   protocol-fsm   machine-readable state-machine specs
///                  (tools/analyze/protocols/*.txt) vs the handlers that
///                  mutate protocol state: undeclared transitions, writes
///                  outside a transition's grant, missing bound trace events
///   sim-purity     functions sim-reachable from the SimMachine event loop
///                  must not read wall clocks, construct unowned randomness,
///                  or iterate unordered containers
///   atomic-discipline  every std::atomic declaration must be registered in
///                  tools/analyze/atomics.txt with a role and an allowed
///                  memory-order set; flags unregistered atomics, implicit
///                  seq_cst operations, RMWs on non-counter roles, orders
///                  outside the allowed set, atomics also GUARDED_BY a
///                  mutex, and stale manifest entries
///   release-acquire  every explicit release store of a manifest field must
///                  pair with at least one load on the acquire side, and
///                  every explicit acquire load with a store on the release
///                  side (direct evidence only, like lock-flow)
///   mixed-access   fields of classes reachable from the ThreadMachine
///                  worker/poller closure with locked plain writes but
///                  reads carrying no direct lock evidence

namespace prema::analyze {

using Findings = std::vector<Finding>;

void pass_conventions(const Tree& tree, const Options& opts, Findings& out);
void pass_lock_order(const Tree& tree, const Options& opts, Findings& out);
void pass_protocol(const Tree& tree, const Options& opts, Findings& out);
void pass_serialization(const Tree& tree, const Options& opts, Findings& out);
void pass_time_domain(const Tree& tree, const Options& opts, Findings& out);
void pass_lock_flow(const Tree& tree, const Options& opts, Findings& out);
void pass_protocol_fsm(const Tree& tree, const Options& opts, Findings& out);
void pass_sim_purity(const Tree& tree, const Options& opts, Findings& out);
void pass_atomic_discipline(const Tree& tree, const Options& opts,
                            Findings& out);
void pass_release_acquire(const Tree& tree, const Options& opts, Findings& out);
void pass_mixed_access(const Tree& tree, const Options& opts, Findings& out);

using PassFn = void (*)(const Tree&, const Options&, Findings&);

struct PassInfo {
  const char* name;
  PassFn fn;
  /// Findings depend on one file at a time: the engine shards the pass into
  /// per-file tasks and caches results per (pass, file hash).
  bool per_file = false;
  /// Uses the whole-program index: the engine builds it once and shares it
  /// through Options::index.
  bool needs_index = false;
};

/// All passes, in reporting order.
const std::vector<PassInfo>& all_passes();

/// Run every pass over `tree`, appending findings in pass order.
void run_all_passes(const Tree& tree, const Options& opts, Findings& out);

// -- legacy prema_lint compatibility ----------------------------------------

/// The original prema_lint scan of one in-memory file (conventions rules
/// only), kept callable so the prema_lint alias preserves its exact CLI
/// behavior and self-test snippets.
void lint_content(const std::string& rel, std::string_view raw, Findings& out);

/// Run the original prema_lint self-test snippets. Returns the number of
/// failures; prints each failure to stderr.
int legacy_self_test(std::size_t& cases_out);

/// prema_analyze's own self-test: per-pass positive/negative synthetic
/// trees plus report-layer checks. Returns a process exit code (0 = OK).
int run_self_test();

}  // namespace prema::analyze
