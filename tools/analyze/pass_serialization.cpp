// Serialization-symmetry analysis. Wire payload schemas are declared at the
// pack/unpack sites with marker comments:
//
//     // wire:<name> <pack|unpack> <var>
//
// From each marker, the pass captures the sequence of ByteWriter/ByteReader
// operations performed on <var> — `var.put<T>` / `var.get<T>`,
// `var.put_bytes` / `var.get_bytes`, `var.put_string`, `var.put_vector<T>`
// and the MOL `put_ptr(var, …)` / `get_ptr(var)` helpers — until the block
// enclosing the marker closes. Each op normalizes to a field item ("u32",
// "bytes", "mobileptr", …); pack and unpack sequences of the same <name>
// must be identical, field for field, across the whole tree. Loop bodies
// appear once on each side, so count-prefixed repeated groups compare
// structurally.
//
// A marked name with only one side present is reported too: an unpaired
// schema is how pack/unpack drift starts.
//
// Dispatch-tag bytes read *before* a switch are framing, not schema — the
// convention is to place the marker after the tag is written/consumed, so
// the marked sequences cover exactly the tagged body (see DESIGN.md).

#include <cctype>
#include <map>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {
namespace {

struct Capture {
  std::string rel;
  int line = 0;
  bool pack = false;
  std::vector<std::string> items;
};

/// Normalize one template argument: strip whitespace, drop a leading std::.
std::string norm_type(std::string_view t) {
  std::string s;
  for (const char c : t) {
    if (!std::isspace(static_cast<unsigned char>(c))) s.push_back(c);
  }
  if (s.rfind("std::", 0) == 0) s = s.substr(5);
  return s;
}

/// Parse the marker text after "wire:" — `<name> <pack|unpack> <var>`.
/// Returns false if malformed.
bool parse_marker(std::string_view text, std::string& name, bool& pack,
                  std::string& var) {
  std::vector<std::string> fields;
  std::string cur;
  for (const char c : std::string(text) + " ") {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) fields.push_back(cur);
      cur.clear();
      if (fields.size() == 3) break;
    } else {
      cur.push_back(c);
    }
  }
  if (fields.size() != 3) return false;
  if (fields[1] != "pack" && fields[1] != "unpack") return false;
  name = fields[0];
  pack = fields[1] == "pack";
  var = fields[2];
  return true;
}

/// True when the identifier occupying [pos, pos+len) in `code` is exactly
/// `var` used as a standalone name.
bool is_var_at(std::string_view code, std::size_t pos, std::string_view var) {
  if (code.substr(pos, var.size()) != var) return false;
  if (pos > 0 && (ident_char(code[pos - 1]) || code[pos - 1] == '.')) return false;
  const std::size_t after = pos + var.size();
  return after >= code.size() || !ident_char(code[after]);
}

/// Capture the op sequence for `var` from `start` until the enclosing block
/// closes (depth drops below its level at `start`).
std::vector<std::string> capture_ops(const SourceFile& f, std::size_t start,
                                     const std::string& var) {
  const std::string_view code = f.code;
  std::vector<std::string> items;
  int depth = 0;
  for (std::size_t p = start; p < code.size(); ++p) {
    const char c = code[p];
    if (c == '{') ++depth;
    if (c == '}') {
      if (--depth < 0) break;  // the marker's block closed
      continue;
    }
    // var.put... / var.get...
    if (is_var_at(code, p, var)) {
      std::size_t q = p + var.size();
      if (q >= code.size()) break;
      if (code[q] != '.' && !(code[q] == '-' && q + 1 < code.size() &&
                              code[q + 1] == '>')) {
        continue;
      }
      q += code[q] == '.' ? 1 : 2;
      std::size_t m = q;
      while (m < code.size() && ident_char(code[m])) ++m;
      const std::string_view method = code.substr(q, m - q);
      if (method == "put_bytes" || method == "get_bytes") {
        items.push_back("bytes");
      } else if (method == "put_string" || method == "get_string") {
        items.push_back("string");
      } else if (method == "put" || method == "get" || method == "put_vector" ||
                 method == "get_vector") {
        const std::size_t lt = skip_ws(code, m);
        if (lt >= code.size() || code[lt] != '<') continue;
        int tdepth = 0;
        std::size_t gt = lt;
        for (; gt < code.size(); ++gt) {
          if (code[gt] == '<') ++tdepth;
          if (code[gt] == '>' && --tdepth == 0) break;
        }
        if (gt >= code.size()) continue;
        const std::string t = norm_type(code.substr(lt + 1, gt - lt - 1));
        items.push_back(method == "put" || method == "get"
                            ? t
                            : "vector<" + t + ">");
      }
      p = m - 1;
      continue;
    }
    // put_ptr(var, ...) / get_ptr(var)
    if ((code.compare(p, 8, "put_ptr(") == 0 || code.compare(p, 8, "get_ptr(") == 0) &&
        (p == 0 || (!ident_char(code[p - 1]) && code[p - 1] != '.' &&
                    code[p - 1] != '>'))) {
      const std::size_t arg = skip_ws(code, p + 8);
      if (is_var_at(code, arg, var)) items.push_back("mobileptr");
      p += 7;
      continue;
    }
  }
  return items;
}

std::string joined(const std::vector<std::string>& items) {
  std::string s;
  for (const auto& it : items) {
    if (!s.empty()) s += ", ";
    s += it;
  }
  return s.empty() ? "<empty>" : s;
}

}  // namespace

void pass_serialization(const Tree& tree, const Options&, Findings& out) {
  std::map<std::string, std::vector<Capture>> schemas;
  for (const SourceFile& f : tree.files) {
    std::size_t from = 0;
    while (true) {
      // Markers live in comments, so search the raw text.
      const std::size_t pos = f.raw.find("// wire:", from);
      if (pos == std::string::npos) break;
      const std::size_t eol = std::min(f.raw.find('\n', pos), f.raw.size());
      from = eol;
      std::string name;
      std::string var;
      bool pack = false;
      if (!parse_marker(std::string_view(f.raw).substr(pos + 8, eol - pos - 8),
                        name, pack, var)) {
        out.push_back({"serialization-unpaired", f.rel, line_of(f.raw, pos),
                       "malformed wire marker (want `// wire:<name> "
                       "<pack|unpack> <var>`)"});
        continue;
      }
      Capture cap;
      cap.rel = f.rel;
      cap.line = line_of(f.raw, pos);
      cap.pack = pack;
      cap.items = capture_ops(f, eol, var);
      schemas[name].push_back(std::move(cap));
    }
  }

  for (const auto& [name, caps] : schemas) {
    const Capture* pack_ref = nullptr;
    const Capture* unpack_ref = nullptr;
    for (const Capture& c : caps) {
      if (c.pack && pack_ref == nullptr) pack_ref = &c;
      if (!c.pack && unpack_ref == nullptr) unpack_ref = &c;
    }
    if (pack_ref == nullptr || unpack_ref == nullptr) {
      const Capture& have = caps.front();
      out.push_back({"serialization-unpaired", have.rel, have.line,
                     "wire schema '" + name + "' has " +
                         (pack_ref ? "no unpack" : "no pack") + " side"});
      continue;
    }
    // Every capture must match the canonical pack sequence.
    for (const Capture& c : caps) {
      if (c.items == pack_ref->items) continue;
      std::size_t field = 0;
      const std::size_t n = std::min(c.items.size(), pack_ref->items.size());
      while (field < n && c.items[field] == pack_ref->items[field]) ++field;
      out.push_back(
          {"serialization-asymmetry", c.rel, c.line,
           "wire schema '" + name + "': " + (c.pack ? "pack" : "unpack") +
               " sequence [" + joined(c.items) + "] diverges from pack in " +
               pack_ref->rel + " [" + joined(pack_ref->items) + "] at field " +
               std::to_string(field + 1)});
    }
  }
}

}  // namespace prema::analyze
