// Mixed-access analysis — the gap the GUARDED_BY coverage check cannot see.
// A field written under a mutex on the threaded path and read elsewhere with
// no lock is a data race the annotation layer only catches if someone
// remembered to annotate the field; an atomic would be safe but these are
// the *plain* fields. The scope is the live-thread closure: everything
// reachable from the ThreadMachine worker/poller loops, where a second
// thread actually exists to race with.
//
// Direct-evidence-only, like lock-flow: a read counts as unlocked when the
// reading function neither declares PREMA_REQUIRES nor holds a lexical
// guard at the read site. May-analysis entry-lock sets are deliberately not
// consulted — a finding means "no lock is visible here", not "some caller
// might forget one".
//
//  mixed-access  a non-atomic field with a locked write inside the
//                ThreadMachine closure and a read (in the closure) carrying
//                no direct lock evidence.
//
// `// analyze:allow(<rule>)` on the offending line (or the line above)
// acknowledges a reviewed exception, e.g. a read on a path proven
// single-threaded by construction.

#include <map>
#include <optional>
#include <set>
#include <string>

#include "analyze/passes.hpp"

namespace prema::analyze {
namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Declared class of `recv` at `use`: an unambiguous member/field type, or a
/// preceding local/parameter declaration `Cls[&*] recv`.
std::string receiver_class(const Index& idx, const SourceFile& f,
                           const FunctionDef& fn, const std::string& recv,
                           std::size_t use) {
  if (const auto it = idx.member_types.find(recv);
      it != idx.member_types.end()) {
    return it->second;
  }
  const std::string_view code = f.code;
  std::size_t from = fn.name_pos;
  while (true) {
    const std::size_t pos = find_ident(code, recv, from, false, false);
    if (pos == std::string_view::npos || pos >= use) break;
    from = pos + 1;
    std::size_t r = pos;
    while (r > 0 && std::isspace(static_cast<unsigned char>(code[r - 1]))) --r;
    while (r > 0 && (code[r - 1] == '&' || code[r - 1] == '*')) --r;
    while (r > 0 && std::isspace(static_cast<unsigned char>(code[r - 1]))) --r;
    std::size_t tb = r;
    while (tb > 0 && ident_char(code[tb - 1])) --tb;
    const std::string word(code.substr(tb, r - tb));
    if (idx.class_names.count(word) != 0) return word;
  }
  return "";
}

std::string class_of_qual(const std::string& qual) {
  const std::size_t sep = qual.rfind("::");
  if (sep == std::string::npos) return "";
  const std::string scope = qual.substr(0, sep);
  const std::size_t sep2 = scope.rfind("::");
  return sep2 == std::string::npos ? scope : scope.substr(sep2 + 2);
}

bool is_constructor(const FunctionDef& fn) {
  const std::size_t sep = fn.qual.rfind("::");
  return sep != std::string::npos && fn.qual.substr(sep + 2) == fn.name &&
         class_of_qual(fn.qual) == fn.name;
}

}  // namespace

void pass_mixed_access(const Tree& tree, const Options& opts, Findings& out) {
  std::optional<Index> local;
  const Index& idx =
      opts.index != nullptr ? *opts.index : local.emplace(build_index(tree));

  // Closure roots: the functions a live second thread actually runs.
  std::vector<char> reachable(idx.funcs.size(), 0);
  bool any_root = false;
  for (std::size_t i = 0; i < idx.funcs.size(); ++i) {
    const FunctionDef& fn = idx.funcs[i];
    if (starts_with(fn.qual, "ThreadMachine::") ||
        starts_with(fn.qual, "ThreadNode::") || fn.name == "worker_loop" ||
        fn.name == "poller_loop") {
      reachable[i] = 1;
      any_root = true;
    }
  }
  if (!any_root) return;
  for (bool changed = true; changed;) {
    changed = false;
    for (const CallSite& call : idx.calls) {
      if (call.callee < 0) continue;
      if (reachable[static_cast<std::size_t>(call.caller)] != 0 &&
          reachable[static_cast<std::size_t>(call.callee)] == 0) {
        reachable[static_cast<std::size_t>(call.callee)] = 1;
        changed = true;
      }
    }
  }

  // Direct evidence only: entry sets are each function's own REQUIRES facts.
  std::vector<std::set<std::string>> direct(idx.funcs.size());
  for (std::size_t i = 0; i < idx.funcs.size(); ++i) {
    direct[i].insert(idx.funcs[i].requires_locks.begin(),
                     idx.funcs[i].requires_locks.end());
  }

  // Candidates: non-atomic fields with a locked write inside the closure.
  // Key: cls + "::" + name; value: a lock the writer demonstrably held.
  struct Writer {
    std::string fn_qual;
    std::string lock;
  };
  std::map<std::string, Writer> candidates;
  std::map<std::string, std::set<std::size_t>> write_positions;
  for (std::size_t i = 0; i < idx.funcs.size(); ++i) {
    if (reachable[i] == 0) continue;
    const FunctionDef& fn = idx.funcs[i];
    const SourceFile& f = tree.files[static_cast<std::size_t>(fn.file)];
    for (const WriteSite& site :
         collect_writes(f, fn.body_begin, fn.body_end)) {
      std::string hint;
      if (site.chain.size() >= 2) {
        hint = receiver_class(idx, f, fn, site.chain[site.chain.size() - 2],
                              site.pos);
      } else {
        hint = class_of_qual(fn.qual);
      }
      const FieldDecl* field = idx.find_field(hint, fn.file, site.chain.back());
      if (field == nullptr || field->type.find("atomic") != std::string::npos) {
        continue;
      }
      // Shared state only: a write through a parameter/local of another
      // class (a Message being stamped, a result struct being filled) is a
      // per-object access, not a race candidate — unless the field is
      // annotated, which marks it shared by declaration.
      if (field->cls != class_of_qual(fn.qual) && !field->guarded) continue;
      const std::string key = field->cls + "::" + field->name;
      write_positions[key].insert(site.pos);
      const std::set<std::string> held =
          held_at(idx, direct, static_cast<int>(i), site.pos);
      if (held.empty()) continue;
      candidates.emplace(key, Writer{fn.qual, *held.begin()});
    }
  }
  if (candidates.empty()) return;

  // Reads of a candidate field in the closure with no direct lock evidence.
  std::set<std::string> reported;
  for (std::size_t i = 0; i < idx.funcs.size(); ++i) {
    if (reachable[i] == 0) continue;
    const FunctionDef& fn = idx.funcs[i];
    if (is_constructor(fn)) continue;  // pre-publication initialization
    const SourceFile& f = tree.files[static_cast<std::size_t>(fn.file)];
    const std::string_view code = f.code;
    for (const auto& [key, writer] : candidates) {
      const std::string name = key.substr(key.rfind("::") + 2);
      const std::string cls = key.substr(0, key.rfind("::"));
      std::size_t from = fn.body_begin;
      while (true) {
        const std::size_t pos = code.find(name, from);
        if (pos == std::string_view::npos || pos >= fn.body_end) break;
        from = pos + 1;
        if (pos > 0 && ident_char(code[pos - 1])) continue;
        const std::size_t end = pos + name.size();
        if (end < code.size() && ident_char(code[end])) continue;
        const std::size_t after = skip_ws(code, end);
        if (after < code.size() && code[after] == '(') continue;  // a call
        if (write_positions[key].count(pos) != 0) continue;  // the write side
        // Attribute the access: a member chain must resolve to the field's
        // class, a bare mention must sit inside one of its methods.
        const bool member_access =
            pos > 0 && (code[pos - 1] == '.' ||
                        (pos >= 2 && code[pos - 1] == '>' &&
                         code[pos - 2] == '-'));
        if (member_access) {
          std::vector<std::string> chain;
          if (parse_chain_back(code, end, chain) == std::string_view::npos ||
              chain.size() < 2) {
            continue;
          }
          const std::string recv_cls =
              chain[chain.size() - 2] == "this"
                  ? class_of_qual(fn.qual)
                  : receiver_class(idx, f, fn, chain[chain.size() - 2], pos);
          if (recv_cls != cls) continue;
        } else {
          if (class_of_qual(fn.qual) != cls) continue;
        }
        if (!held_at(idx, direct, static_cast<int>(i), pos).empty()) continue;
        if (allow_comment(f, pos, "mixed-access")) continue;
        if (!reported.insert(key + "|" + fn.qual).second) continue;
        out.push_back(
            {"mixed-access", f.rel, line_of(code, pos),
             "'" + fn.qual + "' reads '" + key +
                 "' with no lock held, but '" + writer.fn_qual +
                 "' writes it under '" + writer.lock +
                 "' on the ThreadMachine path — locked writes with unlocked "
                 "reads race"});
      }
    }
  }
}

}  // namespace prema::analyze
